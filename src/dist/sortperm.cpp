#include "dist/sortperm.hpp"

#include <algorithm>
#include <cmath>

namespace drcm::dist {

namespace {

bool rec_less(const SortRec& a, const SortRec& b) {
  if (a.bucket != b.bucket) return a.bucket < b.bucket;
  if (a.degree != b.degree) return a.degree < b.degree;
  return a.idx < b.idx;
}

/// Emits ranks held in dense slots (indexed by idx - lo) on the support of
/// `x`: the result is sorted by construction.
DistSpVec emit_from_slots(const DistSpVec& x, const std::vector<index_t>& slot) {
  auto out_entries = x.entries();
  for (auto& e : out_entries) {
    e.val = slot[static_cast<std::size_t>(e.idx - x.lo())];
  }
  return x.sibling(std::move(out_entries));
}

/// Two stable counting passes (degree, then bucket) over triples already
/// in ascending-index order; returns the triples in final
/// (bucket, degree, idx) order. Zero comparison sorts. The shadow array
/// of the first pass comes from the workspace.
void lsd_counting_sort(std::vector<SortRec>& arr, index_t dmax, index_t b_lo,
                       index_t b_hi, DistWorkspace& ws) {
  std::vector<index_t> cnt(static_cast<std::size_t>(dmax) + 1, 0);
  for (const auto& rec : arr) ++cnt[static_cast<std::size_t>(rec.degree)];
  index_t run = 0;
  for (auto& c : cnt) {
    const index_t c0 = c;
    c = run;
    run += c0;
  }
  auto& tmp = ws.sort_tmp();
  tmp.resize(arr.size());
  for (const auto& rec : arr) {
    tmp[static_cast<std::size_t>(cnt[static_cast<std::size_t>(rec.degree)]++)] = rec;
  }
  std::vector<index_t> bcnt(static_cast<std::size_t>(b_hi - b_lo), 0);
  for (const auto& rec : tmp) ++bcnt[static_cast<std::size_t>(rec.bucket - b_lo)];
  run = 0;
  for (auto& c : bcnt) {
    const index_t c0 = c;
    c = run;
    run += c0;
  }
  for (const auto& rec : tmp) {
    arr[static_cast<std::size_t>(bcnt[static_cast<std::size_t>(rec.bucket - b_lo)]++)] = rec;
  }
}

/// Routes (idx, rank) pairs to the index owners and emits the result on
/// the support of `x`, sorted by construction via dense local slots.
DistSpVec scatter_ranks_back(const DistSpVec& x,
                             const std::vector<std::vector<VecEntry>>& back,
                             mps::Comm& world, DistWorkspace& ws) {
  const auto got = world.alltoallv(back);
  DRCM_CHECK(got.size() == x.entries().size(),
             "every frontier entry must receive exactly one rank");
  auto& slot = ws.index_scratch(static_cast<std::size_t>(x.hi() - x.lo()));
  for (const auto& e : got) {
    DRCM_DCHECK(e.idx >= x.lo() && e.idx < x.hi(), "rank routed to non-owner");
    slot[static_cast<std::size_t>(e.idx - x.lo())] = e.val;
  }
  world.charge_compute(static_cast<double>(2 * got.size()));
  return emit_from_slots(x, slot);
}

}  // namespace

DistSpVec sortperm_bucket(const DistSpVec& x, const DistDenseVec& degrees,
                          index_t label_lo, index_t label_hi,
                          ProcGrid2D& grid, DistWorkspace* ws) {
  DRCM_CHECK(x.dist() == degrees.dist(),
             "frontier and degree vector must share one distribution");
  DRCM_CHECK(label_hi > label_lo, "empty parent label range");
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();
  const int p = world.size();
  const int q = grid.q();
  const auto& dist = x.dist();
  const index_t nb = label_hi - label_lo;

  if (p == 1) {
    // Degenerate single-rank grid: the entries are already the whole
    // frontier in index order — two counting passes finish the job with
    // no collectives.
    auto& arr = w.sort_scratch();
    arr.reserve(x.entries().size());
    index_t dmax = 0;
    for (const auto& e : x.entries()) {
      DRCM_CHECK(e.val >= label_lo && e.val < label_hi,
                 "parent label outside the frontier's label range");
      const index_t d = degrees.get(e.idx);
      dmax = std::max(dmax, d);
      arr.push_back(SortRec{e.val - label_lo, d, e.idx});
    }
    lsd_counting_sort(arr, dmax, 0, nb, w);
    auto& slot = w.index_scratch(static_cast<std::size_t>(x.hi() - x.lo()));
    for (std::size_t t = 0; t < arr.size(); ++t) {
      slot[static_cast<std::size_t>(arr[t].idx - x.lo())] =
          static_cast<index_t>(t);
    }
    world.charge_compute(static_cast<double>(4 * arr.size()) +
                         static_cast<double>(nb + dmax + 1));
    return emit_from_slots(x, slot);
  }

  // Local bucket histogram (validates the contiguous-range precondition),
  // exchanged sparsely: (bucket, count) pairs in first-touch order — the
  // accumulation below is order-blind, so no emission scan over nb.
  std::vector<index_t> hist(static_cast<std::size_t>(nb), 0);
  std::vector<index_t> touched;
  touched.reserve(x.entries().size());
  for (const auto& e : x.entries()) {
    DRCM_CHECK(e.val >= label_lo && e.val < label_hi,
               "parent label outside the frontier's label range");
    if (hist[static_cast<std::size_t>(e.val - label_lo)]++ == 0) {
      touched.push_back(e.val - label_lo);
    }
  }
  std::vector<VecEntry> sparse_hist;
  sparse_hist.reserve(touched.size());
  for (const index_t b : touched) {
    sparse_hist.push_back(VecEntry{b, hist[static_cast<std::size_t>(b)]});
  }
  const auto all_hist =
      world.allgatherv(std::span<const VecEntry>(sparse_hist));

  // Global start position of every bucket (exclusive prefix, built in
  // place), and the worker that owns it: buckets are dealt to workers in
  // contiguous, load-balanced stripes.
  std::vector<index_t> g_start(static_cast<std::size_t>(nb) + 1, 0);
  index_t m = 0;
  for (const auto& h : all_hist) {
    g_start[static_cast<std::size_t>(h.idx) + 1] += h.val;
    m += h.val;
  }
  world.charge_compute(static_cast<double>(x.entries().size() + nb) +
                       static_cast<double>(all_hist.size()));
  if (m == 0) {
    return x.sibling({});
  }
  for (index_t b = 0; b < nb; ++b) {
    g_start[static_cast<std::size_t>(b) + 1] += g_start[static_cast<std::size_t>(b)];
  }
  const auto worker_of = [&](index_t b) {
    const auto w_of = static_cast<int>((g_start[static_cast<std::size_t>(b)] * p) / m);
    return w_of < p ? w_of : p - 1;
  };

  // Route every element (bucket, degree, idx) to its bucket's worker.
  auto& send = w.sort_route(static_cast<std::size_t>(p));
  for (const auto& e : x.entries()) {
    const index_t b = e.val - label_lo;
    send[static_cast<std::size_t>(worker_of(b))].push_back(
        SortRec{b, degrees.get(e.idx), e.idx});
  }
  std::vector<std::int64_t> recv_counts;
  const auto recv = world.alltoallv(send, &recv_counts);

  // Replay received blocks in (col, row) source order: owned ranges ascend
  // in that order, so the concatenation is globally index-sorted — the
  // stability baseline both counting passes preserve. The degree maximum
  // and my stripe's bucket range fall out of the same pass.
  std::vector<std::size_t> offset(static_cast<std::size_t>(p) + 1, 0);
  for (int s = 0; s < p; ++s) {
    offset[static_cast<std::size_t>(s) + 1] =
        offset[static_cast<std::size_t>(s)] +
        static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(s)]);
  }
  auto& arr = w.sort_scratch();
  arr.reserve(recv.size());
  index_t dmax = 0;
  index_t b_min = nb;
  index_t b_max = 0;
  for (int c = 0; c < q; ++c) {
    for (int r = 0; r < q; ++r) {
      const auto s = static_cast<std::size_t>(r * q + c);
      for (auto i = offset[s]; i < offset[s + 1]; ++i) {
        const auto& rec = recv[i];
        arr.push_back(rec);
        dmax = std::max(dmax, rec.degree);
        b_min = std::min(b_min, rec.bucket);
        b_max = std::max(b_max, rec.bucket);
      }
    }
  }

  // The two stable counting passes (degree, then parent bucket, counters
  // restricted to my stripe's bucket range) — the final
  // (bucket, degree, idx) order.
  const index_t width = arr.empty() ? 0 : b_max - b_min + 1;
  lsd_counting_sort(arr, dmax, b_min, b_min + width, w);

  // My worker stripe starts after every bucket dealt to earlier workers:
  // any nonempty bucket below b_min belongs to an earlier worker (the
  // assignment is monotone), so the prefix sum already holds the answer.
  const index_t base = arr.empty() ? 0 : g_start[static_cast<std::size_t>(b_min)];
  world.charge_compute(static_cast<double>(3 * arr.size()) +
                       static_cast<double>(width + dmax + 1));

  // Hand each element its global position and route it home.
  auto& back = w.entry_route(static_cast<std::size_t>(p));
  for (std::size_t t = 0; t < arr.size(); ++t) {
    back[static_cast<std::size_t>(dist.owner_rank(arr[t].idx))].push_back(
        VecEntry{arr[t].idx, base + static_cast<index_t>(t)});
  }
  return scatter_ranks_back(x, back, world, w);
}

DistSpVec sortperm_sample(const DistSpVec& x, const DistDenseVec& degrees,
                          ProcGrid2D& grid, DistWorkspace* ws) {
  DRCM_CHECK(x.dist() == degrees.dist(),
             "frontier and degree vector must share one distribution");
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();
  const int p = world.size();
  const auto& dist = x.dist();

  auto& local = w.sort_scratch();
  for (const auto& e : x.entries()) {
    local.push_back(SortRec{e.val, degrees.get(e.idx), e.idx});
  }
  std::sort(local.begin(), local.end(), rec_less);

  if (p == 1) {
    // Degenerate single-rank grid: the local sort is the global sort.
    auto& slot = w.index_scratch(static_cast<std::size_t>(x.hi() - x.lo()));
    for (std::size_t t = 0; t < local.size(); ++t) {
      slot[static_cast<std::size_t>(local[t].idx - x.lo())] =
          static_cast<index_t>(t);
    }
    const double ml = static_cast<double>(local.size());
    world.charge_compute(ml * std::log2(ml + 2) + ml);
    return emit_from_slots(x, slot);
  }

  // Regular sampling: one sample per destination stratum.
  std::vector<SortRec> samples;
  for (int i = 0; i < p && !local.empty(); ++i) {
    const auto pos = (static_cast<std::size_t>(i) * local.size() +
                      local.size() / 2) / static_cast<std::size_t>(p);
    samples.push_back(local[pos]);
  }
  auto all_samples = world.allgatherv(std::span<const SortRec>(samples));
  std::sort(all_samples.begin(), all_samples.end(), rec_less);

  // p-1 splitters; destination d holds (splitter[d-1], splitter[d]].
  std::vector<SortRec> splitters;
  for (int d = 0; d + 1 < p && !all_samples.empty(); ++d) {
    splitters.push_back(
        all_samples[(static_cast<std::size_t>(d) + 1) * all_samples.size() /
                    static_cast<std::size_t>(p)]);
  }
  auto& send = w.sort_route(static_cast<std::size_t>(p));
  {
    std::size_t d = 0;
    for (const auto& rec : local) {
      while (d < splitters.size() && rec_less(splitters[d], rec)) ++d;
      send[d].push_back(rec);
    }
  }
  auto mine = world.alltoallv(send);
  std::sort(mine.begin(), mine.end(), rec_less);
  const auto base = world.exscan_sum(static_cast<index_t>(mine.size()));

  const double ml = static_cast<double>(local.size());
  const double mr = static_cast<double>(mine.size());
  world.charge_compute(ml * std::log2(ml + 2) + mr * std::log2(mr + 2));

  auto& back = w.entry_route(static_cast<std::size_t>(p));
  for (std::size_t t = 0; t < mine.size(); ++t) {
    back[static_cast<std::size_t>(dist.owner_rank(mine[t].idx))].push_back(
        VecEntry{mine[t].idx, base + static_cast<index_t>(t)});
  }
  return scatter_ranks_back(x, back, world, w);
}

}  // namespace drcm::dist
