#include "dist/sortperm.hpp"

#include <algorithm>
#include <cmath>

namespace drcm::dist {

namespace {

bool rec_less(const SortRec& a, const SortRec& b) {
  if (a.bucket != b.bucket) return a.bucket < b.bucket;
  if (a.degree != b.degree) return a.degree < b.degree;
  return a.idx < b.idx;
}

/// Emits ranks held in dense slots (indexed by idx - lo) on the support of
/// `x`: the result is sorted by construction.
DistSpVec emit_from_slots(const DistSpVec& x, const std::vector<index_t>& slot) {
  auto out_entries = x.entries();
  for (auto& e : out_entries) {
    e.val = slot[static_cast<std::size_t>(e.idx - x.lo())];
  }
  return x.sibling(std::move(out_entries));
}

/// Routes (idx, rank) pairs to the index owners and emits the result on
/// the support of `x`, sorted by construction via dense local slots.
DistSpVec scatter_ranks_back(const DistSpVec& x,
                             const std::vector<std::vector<VecEntry>>& back,
                             mps::Comm& world, DistWorkspace& ws) {
  const auto got = world.alltoallv(back);
  DRCM_CHECK(got.size() == x.entries().size(),
             "every frontier entry must receive exactly one rank");
  auto& slot = ws.index_scratch(static_cast<std::size_t>(x.hi() - x.lo()));
  for (const auto& e : got) {
    // Receive-path range check (always on): a corrupted index must stop
    // here as a CheckError, not as an out-of-bounds slot write.
    DRCM_CHECK(e.idx >= x.lo() && e.idx < x.hi(), "rank routed to non-owner");
    slot[static_cast<std::size_t>(e.idx - x.lo())] = e.val;
  }
  world.charge_compute(static_cast<double>(2 * got.size()));
  return emit_from_slots(x, slot);
}

/// One stable counting pass of histogram cells from `src` to `dst` keyed by
/// `key` (values in [0, bins)); counters come from the workspace so the
/// steady-state level loop allocates nothing per pass.
template <class KeyFn>
void cell_counting_pass(const std::vector<SortHistCell>& src,
                        std::vector<SortHistCell>& dst, std::size_t bins,
                        DistWorkspace& ws, KeyFn key) {
  auto& cnt = ws.counters(bins);
  for (const auto& c : src) ++cnt[static_cast<std::size_t>(key(c))];
  index_t run = 0;
  for (auto& v : cnt) {
    const index_t v0 = v;
    v = run;
    run += v0;
  }
  for (const auto& c : src) {
    dst[static_cast<std::size_t>(cnt[static_cast<std::size_t>(key(c))]++)] = c;
  }
}

}  // namespace

void sortperm_lsd_sort(std::vector<SortRec>& arr, index_t dmax, index_t b_lo,
                       index_t b_hi, DistWorkspace& ws) {
  // Degree bins can reach O(n) on degree-skewed levels, so the counter
  // storage comes from the workspace (one buffer serves both passes: the
  // degree counters are dead before the bucket checkout re-zeroes it).
  auto& cnt = ws.counters(static_cast<std::size_t>(dmax) + 1);
  for (const auto& rec : arr) ++cnt[static_cast<std::size_t>(rec.degree)];
  index_t run = 0;
  for (auto& c : cnt) {
    const index_t c0 = c;
    c = run;
    run += c0;
  }
  auto& tmp = ws.sort_tmp();
  tmp.resize(arr.size());
  for (const auto& rec : arr) {
    tmp[static_cast<std::size_t>(cnt[static_cast<std::size_t>(rec.degree)]++)] = rec;
  }
  auto& bcnt = ws.counters(static_cast<std::size_t>(b_hi - b_lo));
  for (const auto& rec : tmp) ++bcnt[static_cast<std::size_t>(rec.bucket - b_lo)];
  run = 0;
  for (auto& c : bcnt) {
    const index_t c0 = c;
    c = run;
    run += c0;
  }
  for (const auto& rec : tmp) {
    arr[static_cast<std::size_t>(bcnt[static_cast<std::size_t>(rec.bucket - b_lo)]++)] = rec;
  }
}

void sortperm_local_hist(std::span<const VecEntry> entries,
                         const DistDenseVec& degrees, index_t label_lo,
                         index_t label_hi, index_t block, DistWorkspace& ws,
                         std::vector<SortHistCell>& hist,
                         std::vector<index_t>& entry_cell) {
  entry_cell.resize(entries.size());
  if (entries.empty()) return;
  // (bucket, degree, entry ordinal) triples, then the two counting passes
  // shared with the element sort: recs end up (bucket, degree)-grouped.
  auto& recs = ws.hist_recs();
  recs.reserve(entries.size());
  index_t dmax = 0;
  index_t b_min = label_hi - label_lo;
  index_t b_max = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    DRCM_CHECK(e.val >= label_lo && e.val < label_hi,
               "parent label outside the frontier's label range");
    const index_t b = e.val - label_lo;
    const index_t d = degrees.get(e.idx);
    dmax = std::max(dmax, d);
    b_min = std::min(b_min, b);
    b_max = std::max(b_max, b);
    recs.push_back(SortRec{b, d, static_cast<index_t>(i)});
  }
  sortperm_lsd_sort(recs, dmax, b_min, b_max + 1, ws);
  for (const auto& rec : recs) {
    if (hist.empty() || hist.back().bucket != rec.bucket ||
        hist.back().degree != rec.degree) {
      hist.push_back(SortHistCell{rec.bucket, rec.degree, block, 0});
    }
    hist.back().count += 1;
    entry_cell[static_cast<std::size_t>(rec.idx)] =
        static_cast<index_t>(hist.size()) - 1;
  }
}

void sortperm_pack_cells(std::span<const SortHistCell> cells, index_t block,
                         std::vector<index_t>& out) {
  if (cells.empty()) return;
  out.push_back(block);
  const std::size_t nwords_at = out.size();
  out.push_back(0);
  std::size_t i = 0;
  while (i < cells.size()) {
    std::size_t j = i;
    index_t multi = 0;
    index_t single = 0;
    while (j < cells.size() && cells[j].bucket == cells[i].bucket) {
      DRCM_DCHECK(cells[j].block == block && cells[j].count >= 1,
                  "packing a foreign or empty cell");
      (cells[j].count == 1 ? single : multi) += 1;
      ++j;
    }
    if (multi > 0) {
      out.push_back(cells[i].bucket);
      out.push_back(multi);
      for (std::size_t t = i; t < j; ++t) {
        if (cells[t].count != 1) {
          out.push_back(cells[t].degree);
          out.push_back(cells[t].count);
        }
      }
    }
    if (single > 0) {
      out.push_back(cells[i].bucket);
      out.push_back(-single);
      for (std::size_t t = i; t < j; ++t) {
        if (cells[t].count == 1) out.push_back(cells[t].degree);
      }
    }
    i = j;
  }
  out[nwords_at] = static_cast<index_t>(out.size() - nwords_at - 1);
}

void sortperm_unpack_cells(std::span<const index_t> words,
                           std::vector<SortHistCell>& out) {
  std::size_t i = 0;
  while (i < words.size()) {
    DRCM_CHECK(i + 2 <= words.size(), "truncated packed histogram header");
    const index_t block = words[i];
    const index_t nwords = words[i + 1];
    i += 2;
    DRCM_CHECK(nwords >= 0 &&
                   static_cast<std::size_t>(nwords) <= words.size() - i,
               "packed histogram payload overruns the stream");
    const std::size_t end = i + static_cast<std::size_t>(nwords);
    while (i < end) {
      DRCM_CHECK(end - i >= 2, "truncated packed histogram group");
      const index_t bucket = words[i];
      const index_t k = words[i + 1];
      i += 2;
      DRCM_CHECK(k != 0, "empty packed histogram group");
      if (k > 0) {
        DRCM_CHECK(static_cast<std::size_t>(k) <= (end - i) / 2,
                   "truncated packed histogram pair group");
        for (index_t g = 0; g < k; ++g) {
          out.push_back(SortHistCell{bucket, words[i], block, words[i + 1]});
          i += 2;
        }
      } else {
        // Compare without negating k first: a corrupted most-negative k
        // must fail the check, not overflow on -k.
        DRCM_CHECK(k >= -static_cast<index_t>(end - i),
                   "truncated packed histogram singleton group");
        for (index_t g = 0; g < -k; ++g) {
          out.push_back(SortHistCell{bucket, words[i], block, 1});
          i += 1;
        }
      }
    }
  }
}

SortPlan sortperm_plan(std::span<const SortHistCell> cells, int p, index_t nb,
                       index_t n, DistWorkspace& ws) {
  // Receive-path range checks (always on): the cell table was exchanged
  // over the wire, and every field below becomes a counting-pass bin index
  // or a bin count — a corrupted cell must throw here, not index counters
  // out of bounds or size them absurdly. The "degree" field is a generic
  // ranking key: plain degrees for RCM, Sloan priorities (bounded by
  // w1*(dmax+1) + w2*ecc < 3n + 3 with the default weights) for the Sloan
  // arm — still linear in n, so the counting bins stay O(n).
  for (const auto& c : cells) {
    DRCM_CHECK(c.block >= 0 && c.block < p && c.bucket >= 0 && c.bucket < nb &&
                   c.degree >= 0 && c.degree <= 3 * n + 3 && c.count >= 0,
               "received histogram cell out of range");
  }
  auto& table = ws.hist_table();
  auto& shadow = ws.hist_shadow();
  shadow.assign(cells.begin(), cells.end());
  table.resize(cells.size());
  index_t dmax = 0;
  for (const auto& c : cells) dmax = std::max(dmax, c.degree);
  // Stable LSD to (bucket, degree, block) order: least-significant key
  // first. Input cells arrive rank-concatenated (each rank's sub-table
  // already (bucket, degree)-sorted), but the passes assume nothing.
  cell_counting_pass(shadow, table, static_cast<std::size_t>(p), ws,
                     [](const SortHistCell& c) { return c.block; });
  cell_counting_pass(table, shadow, static_cast<std::size_t>(dmax) + 1, ws,
                     [](const SortHistCell& c) { return c.degree; });
  cell_counting_pass(shadow, table, static_cast<std::size_t>(nb), ws,
                     [](const SortHistCell& c) { return c.bucket; });
  auto& start = ws.hist_start();
  start.reserve(table.size());
  index_t run = 0;
  for (const auto& c : table) {
    start.push_back(run);
    run += c.count;
  }
  return SortPlan{std::span<const SortHistCell>(table),
                  std::span<const index_t>(start), run};
}

void sortperm_my_starts(const SortPlan& plan, index_t block,
                        std::vector<index_t>& out) {
  // Filtering the (bucket, degree, block)-sorted table to one block yields
  // that rank's cells in (bucket, degree) order — the local hist order.
  for (std::size_t t = 0; t < plan.table.size(); ++t) {
    if (plan.table[t].block == block) out.push_back(plan.start[t]);
  }
}

template <class CountT>
std::vector<SortRec>& sortperm_replay(std::span<const SortRec> recv,
                                      std::span<const CountT> counts, int q,
                                      index_t nb, index_t n, DistWorkspace& ws,
                                      index_t* dmax, index_t* b_min,
                                      index_t* b_max) {
  const int p = q * q;
  DRCM_CHECK(static_cast<int>(counts.size()) == p,
             "replay needs one count per source rank");
  // Receive-path range checks (always on): bucket and degree size the
  // counting-sort bins downstream and idx becomes an owner-route index, so
  // a corrupted triple must throw here instead. The degree field admits
  // any linear ranking key (Sloan priorities reach ~3n; see sortperm_plan).
  for (const auto& rec : recv) {
    DRCM_CHECK(rec.bucket >= 0 && rec.bucket < nb && rec.degree >= 0 &&
                   rec.degree <= 3 * n + 3 && rec.idx >= 0 && rec.idx < n,
               "received sort triple out of range");
  }
  // Per-source offsets from the workspace counter buffer (dead before any
  // later checkout) — the per-level hot path allocates nothing here.
  auto& offset = ws.counters(static_cast<std::size_t>(p) + 1);
  for (int s = 0; s < p; ++s) {
    offset[static_cast<std::size_t>(s) + 1] =
        offset[static_cast<std::size_t>(s)] +
        static_cast<index_t>(counts[static_cast<std::size_t>(s)]);
  }
  auto& arr = ws.sort_scratch();
  arr.reserve(recv.size());
  *dmax = 0;
  *b_min = 0;
  *b_max = -1;
  for (int c = 0; c < q; ++c) {
    for (int r = 0; r < q; ++r) {
      const auto s = static_cast<std::size_t>(r * q + c);
      for (auto i = offset[s]; i < offset[s + 1]; ++i) {
        const auto& rec = recv[static_cast<std::size_t>(i)];
        if (arr.empty()) {
          *b_min = rec.bucket;
          *b_max = rec.bucket;
        } else {
          *b_min = std::min(*b_min, rec.bucket);
          *b_max = std::max(*b_max, rec.bucket);
        }
        *dmax = std::max(*dmax, rec.degree);
        arr.push_back(rec);
      }
    }
  }
  return arr;
}

template std::vector<SortRec>& sortperm_replay<std::int64_t>(
    std::span<const SortRec>, std::span<const std::int64_t>, int, index_t,
    index_t, DistWorkspace&, index_t*, index_t*, index_t*);
template std::vector<SortRec>& sortperm_replay<std::uint64_t>(
    std::span<const SortRec>, std::span<const std::uint64_t>, int, index_t,
    index_t, DistWorkspace&, index_t*, index_t*, index_t*);

void sortperm_deal(std::span<const VecEntry> entries,
                   const DistDenseVec& degrees, index_t label_lo,
                   std::span<const index_t> entry_cell,
                   std::vector<index_t>& mine, index_t total, int p,
                   std::vector<std::vector<SortRec>>& route) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    const index_t at = mine[static_cast<std::size_t>(entry_cell[i])]++;
    // A cell table corrupted in transit (but field-wise in range) can hand
    // out positions past the element total; the worker map is only defined
    // on [0, total).
    DRCM_CHECK(at >= 0 && at < total, "dealt position outside [0, total)");
    route[static_cast<std::size_t>(sortperm_worker_of(at, total, p))]
        .push_back(SortRec{e.val - label_lo, degrees.get(e.idx), e.idx});
  }
}

template <class CountT>
std::vector<SortRec>& sortperm_worker_sort(std::span<const SortRec> dealt,
                                           std::span<const CountT> counts,
                                           int q, index_t total, index_t nb,
                                           index_t n, mps::Comm& world,
                                           DistWorkspace& ws,
                                           index_t* stripe_lo) {
  const int p = q * q;
  index_t dmax = 0, b_min = 0, b_max = -1;
  auto& arr =
      sortperm_replay(dealt, counts, q, nb, n, ws, &dmax, &b_min, &b_max);
  if (!arr.empty()) sortperm_lsd_sort(arr, dmax, b_min, b_max + 1, ws);
  *stripe_lo = sortperm_stripe_lo(world.rank(), total, p);
  DRCM_CHECK(static_cast<index_t>(arr.size()) ==
                 sortperm_stripe_lo(world.rank() + 1, total, p) - *stripe_lo,
             "worker stripe does not match the dealt position range");
  world.charge_compute(
      static_cast<double>(4 * arr.size()) +
      static_cast<double>((arr.empty() ? 0 : b_max - b_min + 1) + dmax + 1));
  return arr;
}

template std::vector<SortRec>& sortperm_worker_sort<std::int64_t>(
    std::span<const SortRec>, std::span<const std::int64_t>, int, index_t,
    index_t, index_t, mps::Comm&, DistWorkspace&, index_t*);
template std::vector<SortRec>& sortperm_worker_sort<std::uint64_t>(
    std::span<const SortRec>, std::span<const std::uint64_t>, int, index_t,
    index_t, index_t, mps::Comm&, DistWorkspace&, index_t*);

DistSpVec sortperm_bucket(const DistSpVec& x, const DistDenseVec& degrees,
                          index_t label_lo, index_t label_hi,
                          ProcGrid2D& grid, DistWorkspace* ws,
                          index_t* stripe_out) {
  DRCM_CHECK(x.dist() == degrees.dist(),
             "frontier and degree vector must share one distribution");
  DRCM_CHECK(label_hi > label_lo, "empty parent label range");
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();
  const int p = world.size();
  const int q = grid.q();
  const auto& dist = x.dist();
  const index_t nb = label_hi - label_lo;
  if (stripe_out) *stripe_out = 0;

  if (p == 1) {
    // Degenerate single-rank grid: the entries are already the whole
    // frontier in index order — two counting passes finish the job with
    // no collectives.
    auto& arr = w.sort_scratch();
    arr.reserve(x.entries().size());
    index_t dmax = 0;
    for (const auto& e : x.entries()) {
      DRCM_CHECK(e.val >= label_lo && e.val < label_hi,
                 "parent label outside the frontier's label range");
      const index_t d = degrees.get(e.idx);
      dmax = std::max(dmax, d);
      arr.push_back(SortRec{e.val - label_lo, d, e.idx});
    }
    sortperm_lsd_sort(arr, dmax, 0, nb, w);
    if (stripe_out) *stripe_out = static_cast<index_t>(arr.size());
    auto& slot = w.index_scratch(static_cast<std::size_t>(x.hi() - x.lo()));
    for (std::size_t t = 0; t < arr.size(); ++t) {
      slot[static_cast<std::size_t>(arr[t].idx - x.lo())] =
          static_cast<index_t>(t);
    }
    world.charge_compute(static_cast<double>(4 * arr.size()) +
                         static_cast<double>(nb + dmax + 1));
    return emit_from_slots(x, slot);
  }

  // Local (bucket, degree) histogram stamped with my owned-range block
  // index (validates the contiguous-range precondition).
  const index_t my_block = block_index(grid.row(), grid.col(), q);
  auto& hist = w.hist_cells();
  auto& entry_cell = w.entry_cell();
  sortperm_local_hist(x.entries(), degrees, label_lo, label_hi, my_block, w,
                      hist, entry_cell);

  // Exchange the cells; every rank derives the identical global plan —
  // exact start positions for every (bucket, degree, block) cell. The
  // carry rides the wire two-level packed (sortperm_pack_cells), exactly
  // like the fused ordering level: ~1 word per cell on degree-diverse
  // levels instead of the naive 4-word (bucket, degree, block, count)
  // cells. The streams are self-delimiting, so the rank-concatenated
  // allgather decodes with the same wire-structure checks
  // (sortperm_unpack_cells) and field range checks (sortperm_plan) as the
  // fused path.
  auto& packed = w.carry_words();
  sortperm_pack_cells(std::span<const SortHistCell>(hist), my_block, packed);
  const auto all_words = world.allgatherv(std::span<const index_t>(packed));
  auto& all = w.hist_all();
  sortperm_unpack_cells(std::span<const index_t>(all_words), all);
  const SortPlan plan =
      sortperm_plan(std::span<const SortHistCell>(all), p, nb, dist.n(), w);
  world.charge_compute(static_cast<double>(2 * x.entries().size()) +
                       static_cast<double>(packed.size()) +
                       static_cast<double>(4 * all.size()) +
                       static_cast<double>(nb));
  if (plan.total == 0) {
    return x.sibling({});
  }

  // Deal every element to its own position's worker: my j-th element of a
  // cell (consumed in index order) sits at exactly cell start + j, so the
  // cursor in `mine` hands out final positions element by element. Stripes
  // are the balanced partition of [0, total) — a whole level concentrated
  // in one cell still spreads evenly (the ROADMAP worker-stripe fix).
  auto& mine = w.my_starts();
  sortperm_my_starts(plan, my_block, mine);
  DRCM_CHECK(mine.size() == hist.size(), "plan misses local cells");
  auto& send = w.sort_route(static_cast<std::size_t>(p));
  sortperm_deal(std::span<const VecEntry>(x.entries()), degrees, label_lo,
                std::span<const index_t>(entry_cell), mine, plan.total, p,
                send);
  std::vector<std::int64_t> recv_counts;
  const auto recv = world.alltoallv(send, &recv_counts);

  // Sort my stripe to (bucket, degree, idx) order — which IS global
  // position order, so my t-th element sits at stripe start + t.
  index_t stripe_lo = 0;
  auto& arr = sortperm_worker_sort(std::span<const SortRec>(recv),
                                   std::span<const std::int64_t>(recv_counts),
                                   q, plan.total, nb, dist.n(), world, w,
                                   &stripe_lo);
  if (stripe_out) *stripe_out = static_cast<index_t>(arr.size());

  // Hand each element its global position and route it home.
  auto& back = w.entry_route(static_cast<std::size_t>(p));
  for (std::size_t t = 0; t < arr.size(); ++t) {
    back[static_cast<std::size_t>(dist.owner_rank(arr[t].idx))].push_back(
        VecEntry{arr[t].idx, stripe_lo + static_cast<index_t>(t)});
  }
  return scatter_ranks_back(x, back, world, w);
}

DistSpVec sortperm_sample(const DistSpVec& x, const DistDenseVec& degrees,
                          ProcGrid2D& grid, DistWorkspace* ws) {
  DRCM_CHECK(x.dist() == degrees.dist(),
             "frontier and degree vector must share one distribution");
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();
  const int p = world.size();
  const auto& dist = x.dist();

  auto& local = w.sort_scratch();
  for (const auto& e : x.entries()) {
    local.push_back(SortRec{e.val, degrees.get(e.idx), e.idx});
  }
  std::sort(local.begin(), local.end(), rec_less);

  if (p == 1) {
    // Degenerate single-rank grid: the local sort is the global sort.
    auto& slot = w.index_scratch(static_cast<std::size_t>(x.hi() - x.lo()));
    for (std::size_t t = 0; t < local.size(); ++t) {
      slot[static_cast<std::size_t>(local[t].idx - x.lo())] =
          static_cast<index_t>(t);
    }
    const double ml = static_cast<double>(local.size());
    world.charge_compute(ml * std::log2(ml + 2) + ml);
    return emit_from_slots(x, slot);
  }

  // Regular sampling: one sample per destination stratum.
  std::vector<SortRec> samples;
  for (int i = 0; i < p && !local.empty(); ++i) {
    const auto pos = (static_cast<std::size_t>(i) * local.size() +
                      local.size() / 2) / static_cast<std::size_t>(p);
    samples.push_back(local[pos]);
  }
  auto all_samples = world.allgatherv(std::span<const SortRec>(samples));
  std::sort(all_samples.begin(), all_samples.end(), rec_less);

  // p-1 splitters; destination d holds (splitter[d-1], splitter[d]].
  std::vector<SortRec> splitters;
  for (int d = 0; d + 1 < p && !all_samples.empty(); ++d) {
    splitters.push_back(
        all_samples[(static_cast<std::size_t>(d) + 1) * all_samples.size() /
                    static_cast<std::size_t>(p)]);
  }
  auto& send = w.sort_route(static_cast<std::size_t>(p));
  {
    std::size_t d = 0;
    for (const auto& rec : local) {
      while (d < splitters.size() && rec_less(splitters[d], rec)) ++d;
      send[d].push_back(rec);
    }
  }
  auto mine = world.alltoallv(send);
  std::sort(mine.begin(), mine.end(), rec_less);
  const auto base = world.exscan_sum(static_cast<index_t>(mine.size()));

  const double ml = static_cast<double>(local.size());
  const double mr = static_cast<double>(mine.size());
  world.charge_compute(ml * std::log2(ml + 2) + mr * std::log2(mr + 2));

  auto& back = w.entry_route(static_cast<std::size_t>(p));
  for (std::size_t t = 0; t < mine.size(); ++t) {
    // Receive-path range check (always on): `mine` arrived over the wire
    // and its indices become owner-route positions.
    DRCM_CHECK(mine[t].idx >= 0 && mine[t].idx < dist.n(),
               "received sort element index out of range");
    back[static_cast<std::size_t>(dist.owner_rank(mine[t].idx))].push_back(
        VecEntry{mine[t].idx, base + static_cast<index_t>(t)});
  }
  return scatter_ranks_back(x, back, world, w);
}

}  // namespace drcm::dist
