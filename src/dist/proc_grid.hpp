// The sqrt(p) x sqrt(p) process grid of the paper's 2D decomposition.
//
// World rank w sits at grid position (row, col) = (w / q, w % q). The grid
// owns the two sub-communicators every 2D kernel needs:
//   * row_comm: the q ranks sharing my grid row (SpMSpV result merge),
//   * col_comm: the q ranks sharing my grid column (frontier gather).
// Both are formed with Comm::split exactly once at construction, so the
// split cost is paid during setup, not inside kernels.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"
#include "dist/workspace.hpp"
#include "mpsim/comm.hpp"

namespace drcm::dist {

/// floor(sqrt(p)) by integer search.
inline int grid_side_floor(int p) {
  DRCM_CHECK(p > 0, "grid needs at least one rank");
  int s = 1;
  while ((s + 1) * (s + 1) <= p) ++s;
  return s;
}

/// Largest perfect square <= p: the number of ranks a square grid can use.
inline int largest_square_grid(int p) {
  const int s = grid_side_floor(p);
  return s * s;
}

class ProcGrid2D {
 public:
  /// Collective on `world`, whose size must be a perfect square. When
  /// `external` is non-null the grid adopts it as its kernel scratch
  /// instead of its own member workspace: a serving layer keeps one
  /// DistWorkspace per rank alive ACROSS grids (grids die with their
  /// communicators at the end of every Runtime::run), so the realloc
  /// ledger — and the warmed buffer capacities it certifies — extends
  /// across requests. The external workspace must outlive the grid.
  explicit ProcGrid2D(mps::Comm& world, DistWorkspace* external = nullptr)
      : world_(world),
        external_workspace_(external),
        q_(side_of(world.size())),
        row_(world.rank() / q_),
        col_(world.rank() % q_),
        row_comm_(world.split(/*color=*/row_, /*key=*/col_)),
        col_comm_(world.split(/*color=*/col_, /*key=*/row_)) {
    col_world_ranks_.reserve(static_cast<std::size_t>(q_));
    for (int r = 0; r < q_; ++r) {
      col_world_ranks_.push_back(world_rank_of(r, col_));
    }
  }

  ProcGrid2D(const ProcGrid2D&) = delete;
  ProcGrid2D& operator=(const ProcGrid2D&) = delete;

  /// Grid side length: sqrt of the world size.
  int q() const { return q_; }
  int row() const { return row_; }
  int col() const { return col_; }

  mps::Comm& world() { return world_; }
  /// The q ranks with my row index, ranked by column.
  mps::Comm& row_comm() { return row_comm_; }
  /// The q ranks with my column index, ranked by row.
  mps::Comm& col_comm() { return col_comm_; }

  /// World rank of grid position (r, c).
  int world_rank_of(int r, int c) const {
    DRCM_DCHECK(r >= 0 && r < q_ && c >= 0 && c < q_);
    return r * q_ + c;
  }

  /// World rank of my mirror across the diagonal: (col, row). The SpMSpV
  /// realignment pairs every rank with its transpose partner.
  int transpose_partner() const { return world_rank_of(col_, row_); }

  /// World ranks of my processor column in grid-row order (the gather
  /// group of the fused level kernel; same member order as col_comm).
  /// Computed once — the per-level hot path must not allocate it.
  std::span<const int> col_world_ranks() const { return col_world_ranks_; }

  /// This rank's default kernel scratch. The grid is per-rank and outlives
  /// every kernel call made on it, which makes it the natural owner; callers
  /// needing isolated sizing pass their own DistWorkspace instead, and a
  /// grid constructed over an external workspace (see the constructor)
  /// hands that one out here so every kernel on the grid reuses it.
  DistWorkspace& workspace() {
    return external_workspace_ ? *external_workspace_ : workspace_;
  }

 private:
  static int side_of(int size) {
    const int s = grid_side_floor(size);
    DRCM_CHECK(s * s == size,
               "ProcGrid2D needs a perfect-square number of ranks");
    return s;
  }

  mps::Comm& world_;
  DistWorkspace* external_workspace_ = nullptr;
  int q_;
  int row_;
  int col_;
  mps::Comm row_comm_;
  mps::Comm col_comm_;
  std::vector<int> col_world_ranks_;
  DistWorkspace workspace_;
};

}  // namespace drcm::dist
