#include "dist/dist_matrix.hpp"

#include <algorithm>

namespace drcm::dist {

DistSpMat::DistSpMat(ProcGrid2D& grid, const sparse::CsrMatrix& a)
    // A source with zero stored entries is vacuously valued: degenerate
    // empty inputs must keep flowing down the solver (valued) path.
    : dist_(a.n(), grid.q()), has_values_(a.has_values() || a.nnz() == 0) {
  row_lo_ = dist_.chunk_lo(grid.row());
  row_hi_ = dist_.chunk_lo(grid.row() + 1);
  col_lo_ = dist_.chunk_lo(grid.col());
  col_hi_ = dist_.chunk_lo(grid.col() + 1);

  // Two passes over my row slab: count per local column, then fill.
  // Iterating rows in ascending order leaves every column's row list
  // sorted without any sort.
  const auto ncols = static_cast<std::size_t>(local_cols());
  std::vector<nnz_t> count(ncols, 0);
  for (index_t gr = row_lo_; gr < row_hi_; ++gr) {
    const auto cols = a.row(gr);
    const auto first = std::lower_bound(cols.begin(), cols.end(), col_lo_);
    for (auto it = first; it != cols.end() && *it < col_hi_; ++it) {
      ++count[static_cast<std::size_t>(*it - col_lo_)];
    }
  }
  col_ptr_.assign(ncols + 1, 0);
  for (std::size_t c = 0; c < ncols; ++c) {
    col_ptr_[c + 1] = col_ptr_[c] + count[c];
  }
  rows_.resize(static_cast<std::size_t>(col_ptr_[ncols]));
  if (has_values_) vals_.resize(rows_.size());
  std::vector<nnz_t> next(col_ptr_.begin(), col_ptr_.end() - 1);
  for (index_t gr = row_lo_; gr < row_hi_; ++gr) {
    const auto cols = a.row(gr);
    const auto first = std::lower_bound(cols.begin(), cols.end(), col_lo_);
    for (auto it = first; it != cols.end() && *it < col_hi_; ++it) {
      const auto lc = static_cast<std::size_t>(*it - col_lo_);
      const auto slot = static_cast<std::size_t>(next[lc]++);
      rows_[slot] = gr - row_lo_;
      if (has_values_) {
        vals_[slot] = a.row_values(gr)[static_cast<std::size_t>(it - cols.begin())];
      }
    }
  }
}

DistSpMat DistSpMat::from_local_csc(ProcGrid2D& grid, index_t n,
                                    std::vector<nnz_t> col_ptr,
                                    std::vector<index_t> rows,
                                    std::vector<double> vals,
                                    bool with_values) {
  DistSpMat m;
  m.dist_ = VectorDist(n, grid.q());
  m.row_lo_ = m.dist_.chunk_lo(grid.row());
  m.row_hi_ = m.dist_.chunk_lo(grid.row() + 1);
  m.col_lo_ = m.dist_.chunk_lo(grid.col());
  m.col_hi_ = m.dist_.chunk_lo(grid.col() + 1);
  DRCM_CHECK(static_cast<index_t>(col_ptr.size()) == m.local_cols() + 1,
             "local CSC column pointer size mismatch");
  DRCM_CHECK(with_values ? vals.size() == rows.size() : vals.empty(),
             "local CSC values must match the pattern entry for entry");
  m.has_values_ = with_values;
  m.col_ptr_ = std::move(col_ptr);
  m.rows_ = std::move(rows);
  m.vals_ = std::move(vals);
  return m;
}

nnz_t DistSpMat::global_nnz(mps::Comm& world) const {
  return world.allreduce(local_nnz(), [](nnz_t a, nnz_t b) { return a + b; });
}

DistDenseVec DistSpMat::degrees(ProcGrid2D& grid) const {
  // Per-local-column entry counts of my block; summing the q blocks of my
  // processor column yields the full column count == vertex degree.
  const auto ncols = static_cast<std::size_t>(local_cols());
  std::vector<index_t> count(ncols);
  for (std::size_t c = 0; c < ncols; ++c) {
    count[c] = static_cast<index_t>(col_ptr_[c + 1] - col_ptr_[c]);
  }
  const auto all = grid.col_comm().allgatherv(std::span<const index_t>(count));
  DRCM_CHECK(all.size() == ncols * static_cast<std::size_t>(grid.q()),
             "column blocks must share one chunk");
  std::vector<index_t> sum(ncols, 0);
  for (int b = 0; b < grid.q(); ++b) {
    const std::size_t base = static_cast<std::size_t>(b) * ncols;
    for (std::size_t c = 0; c < ncols; ++c) {
      // Receive-path range check (always on): a block's entry count per
      // column is bounded by its row-chunk size; the summed degrees size
      // counting-sort bins downstream.
      DRCM_CHECK(all[base + c] >= 0 && all[base + c] <= n(),
                 "received column count out of range");
      sum[c] += all[base + c];
    }
  }
  DistDenseVec d(dist_, grid, 0);
  for (index_t g = d.lo(); g < d.hi(); ++g) {
    d.set(g, sum[static_cast<std::size_t>(g - col_lo_)]);
  }
  grid.world().charge_compute(static_cast<double>(ncols) * (grid.q() + 1));
  return d;
}

}  // namespace drcm::dist
