// The (select2nd, min) SpMSpV: one BFS/ordering expansion step (paper
// Algorithm 2). y[i] = min over frontier entries (j, v) with A(i, j) != 0
// of v — children adopt the minimum parent value.
//
// Three bulk-synchronous stages on the 2D grid:
//   1. gather the frontier chunk along my processor column (allgatherv),
//   2. multiply my block locally into per-row partial minima,
//   3. merge partials along my processor row (alltoallv by sub-chunk) and
//      hand the merged sub-chunk to its true owner via the transpose
//      pairwise exchange.
//
// This is the unfused kernel: three collectives (six barrier crossings)
// per call, plus the caller's SET / SELECT / emptiness round trips. The
// fused per-level path (dist/level_kernel.hpp) performs the same math in
// one three-crossing collective and is what the BFS loops actually run;
// this entry point remains the primitive-chain reference the equivalence
// tests compare against.
#pragma once

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "dist/workspace.hpp"

namespace drcm::dist {

/// Work units charged per element of a sequential stamp-check sweep.
/// MachineParams::gamma is calibrated for one random CSR edge visit; a
/// predictable linear sweep over a dense array costs a fraction of that,
/// and charging it at full weight would overstate the SPA emission scans
/// relative to the trace model's output-sensitive analysis. Doubles as the
/// kAuto crossover constant: the SPA arm pays kScanUnit * local_rows for
/// its emission scan, so it wins once the frontier's edge volume clears
/// that bar.
inline constexpr double kScanUnit = 0.125;

/// Local accumulation policy of stage 2 — the kernel-design tradeoff
/// bench/micro_spmspv.cpp measures.
enum class SpmspvAccumulator {
  /// Dense sparse accumulator: O(local_rows) array with timestamp reset
  /// (no clearing between calls) and a dense emission scan. Wins on dense
  /// frontiers where the scan amortizes over many touched rows.
  kSpa,
  /// Heap merge of the (already sorted) column row lists. No dense scan,
  /// but pays a log(k) comparison factor per edge; wins on tiny frontiers.
  kSortMerge,
  /// Degree-aware selection per call: kSpa once the frontier's local edge
  /// count reaches 1/8 of the local rows (the BENCH_1.json crossover),
  /// kSortMerge below it. The DRCM_SPMSPV_ACC environment variable
  /// ("spa" / "sortmerge" / "auto") overrides the heuristic so benches can
  /// pin either arm without recompiling.
  kAuto,
};

/// Resolves kAuto to a concrete arm from the frontier's local expansion
/// volume (sum of local column lengths) versus the local row count,
/// honoring the DRCM_SPMSPV_ACC override. Returns kSpa or kSortMerge;
/// non-kAuto requests pass through unchanged.
SpmspvAccumulator resolve_accumulator(SpmspvAccumulator requested,
                                      double frontier_edges,
                                      index_t local_rows);

/// Stage 2 alone: multiplies my block by the (index-sorted) gathered
/// frontier into per-row partial minima with GLOBAL row indices, ascending.
/// Returns workspace-owned scratch valid until the next workspace checkout;
/// `*work` receives the work units to charge. `used` (optional) reports the
/// arm chosen after kAuto resolution. Shared by the unfused kernel below
/// and the fused level kernel.
///
/// `threads` > 1 selects the hybrid node-level path (paper Fig. 6): the
/// frontier loop OpenMP-splits into contiguous stripes over per-thread
/// workspace arms — stamped SPAs for kSpa, cursor/heap stripes for
/// kSortMerge — and the per-thread emissions are min-merged in a
/// deterministic order, so the output is BIT-IDENTICAL to the serial loop
/// at any thread count. The charged work units are the serial loop's
/// (min-combines are partition-invariant); the caller's Comm divides
/// modeled seconds by its thread count.
std::vector<VecEntry>& spmspv_local_multiply(const DistSpMat& a,
                                             std::span<const VecEntry> frontier,
                                             SpmspvAccumulator acc,
                                             DistWorkspace& ws, double* work,
                                             SpmspvAccumulator* used = nullptr,
                                             int threads = 1);

/// Collective. `x` must be distributed conformally with `a`
/// (x.dist() == a.vec_dist(); throws CheckError otherwise). Scratch comes
/// from `ws`, or from the grid's per-rank workspace when `ws` is null.
/// `used` (optional) reports the arm chosen after kAuto resolution. The
/// local multiply runs on grid.world().threads() OpenMP threads (the
/// Runtime::run threads_per_rank of the hybrid configuration).
DistSpVec spmspv_select2nd_min(
    const DistSpMat& a, const DistSpVec& x, ProcGrid2D& grid,
    SpmspvAccumulator acc = SpmspvAccumulator::kSpa,
    DistWorkspace* ws = nullptr, SpmspvAccumulator* used = nullptr);

}  // namespace drcm::dist
