// The (select2nd, min) SpMSpV: one BFS/ordering expansion step (paper
// Algorithm 2). y[i] = min over frontier entries (j, v) with A(i, j) != 0
// of v — children adopt the minimum parent value.
//
// Three bulk-synchronous stages on the 2D grid:
//   1. gather the frontier chunk along my processor column (allgatherv),
//   2. multiply my block locally into per-row partial minima,
//   3. merge partials along my processor row (alltoallv by sub-chunk) and
//      hand the merged sub-chunk to its true owner via the transpose
//      pairwise exchange.
#pragma once

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"

namespace drcm::dist {

/// Local accumulation policy of stage 2 — the kernel-design tradeoff
/// bench/micro_spmspv.cpp measures.
enum class SpmspvAccumulator {
  /// Dense sparse accumulator: O(local_rows) array with timestamp reset
  /// (no clearing between calls) and a dense emission scan. Wins on dense
  /// frontiers where the scan amortizes over many touched rows.
  kSpa,
  /// Heap merge of the (already sorted) column row lists. No dense scan,
  /// but pays a log(k) comparison factor per edge; wins on tiny frontiers.
  kSortMerge,
};

/// Collective. `x` must be distributed conformally with `a`
/// (x.dist() == a.vec_dist(); throws CheckError otherwise).
DistSpVec spmspv_select2nd_min(
    const DistSpMat& a, const DistSpVec& x, ProcGrid2D& grid,
    SpmspvAccumulator acc = SpmspvAccumulator::kSpa);

}  // namespace drcm::dist
