// The fused per-level BFS kernel: SET (refresh frontier values from the
// dense level/label vector), the (select2nd, min) SpMSpV expansion, SELECT
// (keep unvisited) and the emptiness/count reduction of one BFS level, as
// ONE phase-scoped collective.
//
// The unfused chain (gather_from_dense + spmspv_select2nd_min +
// select_where_equals + global_nnz) enters four collectives per level —
// eight barrier crossings, each a full latency term at scale. Fusing
// changes two things:
//
//   * the per-level chain runs through Comm::fused_gather_route_count,
//     whose three BSP supersteps share crossings: 3 crossings per level
//     instead of 8;
//   * stage-3 partials are routed DIRECTLY to the owner of each output
//     element (the paper's sub-chunk owner), which subsumes the row-merge
//     alltoallv + transpose pairwise exchange of the unfused kernel and
//     lets SELECT run where the dense vector already lives.
//
// Both paths are bit-identical by construction — min over parents,
// emission in ascending index order — which
// tests/test_dist_level_kernel_equivalence.cpp enforces on randomized
// graphs, rank counts and both accumulator arms.
#pragma once

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "dist/spmspv.hpp"
#include "dist/workspace.hpp"
#include "mpsim/stats.hpp"

namespace drcm::dist {

/// Result of one fused (or reference-unfused) BFS level.
struct LevelStepResult {
  /// The post-SELECT next frontier: entries whose dense value equals the
  /// keep sentinel, values = minimum parent value (ascending by index).
  DistSpVec next;
  /// Exact global nnz of `next` (the emptiness test), identical on every
  /// rank.
  index_t global_nnz = 0;
  /// The accumulator arm stage 2 actually ran after kAuto resolution.
  SpmspvAccumulator used = SpmspvAccumulator::kSpa;
};

/// One fused BFS level: y = SELECT(SPMSPV(A, SET(x, dense)), dense ==
/// keep_sentinel), plus its global count, in three barrier crossings.
/// Comm/multiply costs are attributed to `spmspv_phase`, the SET/SELECT
/// scans to `other_phase` (the Figure-4 split). Collective; must not be
/// called under an open PhaseScope. Scratch comes from `ws`, or the grid's
/// per-rank workspace when null.
LevelStepResult bfs_level_step(const DistSpMat& a, const DistSpVec& frontier,
                               const DistDenseVec& dense,
                               index_t keep_sentinel, ProcGrid2D& grid,
                               mps::Phase spmspv_phase, mps::Phase other_phase,
                               SpmspvAccumulator acc = SpmspvAccumulator::kAuto,
                               DistWorkspace* ws = nullptr);

/// The reference chain: the same level computed with the four unfused
/// primitives (gather_from_dense, spmspv_select2nd_min,
/// select_where_equals, global_nnz) — eight barrier crossings. Kept
/// callable so the equivalence suite and the crossing-count benches can
/// compare against the fused path on identical inputs.
LevelStepResult bfs_level_step_unfused(
    const DistSpMat& a, const DistSpVec& frontier, const DistDenseVec& dense,
    index_t keep_sentinel, ProcGrid2D& grid, mps::Phase spmspv_phase,
    mps::Phase other_phase, SpmspvAccumulator acc = SpmspvAccumulator::kAuto,
    DistWorkspace* ws = nullptr);

/// Result of one fused (or reference-unfused) ORDERING level: the BFS level
/// step above plus SORTPERM plus the label scatter of Algorithm 3.
struct CmLevelResult {
  /// The next frontier (post-SELECT), values = minimum parent label.
  DistSpVec next;
  /// Exact global nnz of `next`, identical on every rank.
  index_t global_nnz = 0;
  /// The accumulator arm the expansion actually ran.
  SpmspvAccumulator used = SpmspvAccumulator::kSpa;
};

/// One fused Cuthill-McKee ordering level in FIVE barrier crossings
/// (Comm::fused_order_level), three when the level comes back empty:
///
///   Lnext <- SELECT(SPMSPV(A, SET(Lcur, R)), R = kNoVertex)   [3 crossings]
///   R     <- SET(R, SORTPERM(Lnext, D) + next_label)          [+2 crossings]
///
/// The SORTPERM bucket histogram rides the count superstep's freed frontier
/// board, the element deal reuses the freed partial-routing board, and the
/// position scatter rides the auxiliary payload board — so the whole
/// ordering level needs no collective beyond the level kernel's own. The
/// unfused reference (cm_level_step_unfused below) pays 3 + SORTPERM's 6 =
/// 9 crossings for the identical result; both paths are bit-identical by
/// construction, enforced by tests/test_dist_cm_level_equivalence.cpp.
///
/// `labels` must hold the parent labels of `frontier`'s entries inside
/// [label_lo, label_hi) (the contiguous range of the previous level);
/// the discovered level is written into `labels` as consecutive labels
/// starting at `next_label`, ranked by (parent label, degree, index).
/// Costs split across `spmspv_phase` (crossings 1-3, expansion volume),
/// `sort_phase` (crossings 4-5, histogram + deal + scatter volume) and
/// `other_phase` (SET/SELECT scans); wall time lands on `spmspv_phase`.
/// Collective; must not be called under an open PhaseScope.
CmLevelResult cm_level_step(const DistSpMat& a, const DistSpVec& frontier,
                            DistDenseVec& labels, const DistDenseVec& degrees,
                            index_t label_lo, index_t label_hi,
                            index_t next_label, ProcGrid2D& grid,
                            mps::Phase spmspv_phase, mps::Phase sort_phase,
                            mps::Phase other_phase,
                            SpmspvAccumulator acc = SpmspvAccumulator::kAuto,
                            DistWorkspace* ws = nullptr);

/// The reference ordering level: the fused BFS level step followed by the
/// standalone SORTPERM chain (sortperm_bucket or, when `sample_sort`, the
/// sample-sort baseline) and the label scatter — 3 + 6 = 9 barrier
/// crossings. Kept callable for the equivalence suite, the crossing-ledger
/// tests and the fig4 bench.
CmLevelResult cm_level_step_unfused(
    const DistSpMat& a, const DistSpVec& frontier, DistDenseVec& labels,
    const DistDenseVec& degrees, index_t label_lo, index_t label_hi,
    index_t next_label, ProcGrid2D& grid, mps::Phase spmspv_phase,
    mps::Phase sort_phase, mps::Phase other_phase, bool sample_sort = false,
    SpmspvAccumulator acc = SpmspvAccumulator::kAuto,
    DistWorkspace* ws = nullptr);

/// Reconstructs a frontier from the dense label vector: the sparse vector
/// of vertices whose label lies in [label_lo, label_hi), values = their
/// labels. Because cm_level_step's SET stage refreshes frontier values
/// from `labels` anyway, the result is interchangeable with the `next`
/// frontier a prior cm_level_step would have returned for that level —
/// the re-entry point the incremental-repair cone uses to resume a cached
/// BFS mid-flight. LOCAL (each rank scans its owned slab; entries come
/// out ascending by index); `other_phase` receives the scan charge.
DistSpVec frontier_from_label_range(const DistDenseVec& labels,
                                    index_t label_lo, index_t label_hi,
                                    ProcGrid2D& grid,
                                    mps::Phase other_phase);

}  // namespace drcm::dist
