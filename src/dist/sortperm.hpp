// SORTPERM: rank the frontier by (parent label, degree, index) — the step
// that turns one BFS level into consecutive Cuthill-McKee labels.
//
// The paper's observation (Sec. IV-B): the parent labels of a level are
// exactly the contiguous range handed out for the previous level, so the
// primary key needs counting, not comparing. sortperm_bucket exploits this
// with a two-pass counting sort (degree pass, then bucket pass — an LSD
// radix over the pair key) and performs zero comparison sorts end to end.
// sortperm_sample is the general sample sort used as the HykSort-style
// ablation baseline.
#pragma once

#include "dist/dist_vector.hpp"
#include "dist/workspace.hpp"

namespace drcm::dist {

/// Ranks the entries of `x` (val = parent label in [label_lo, label_hi),
/// enforced) by (parent label, degrees[idx], idx). Returns a vector with
/// the same support whose values are the 0-based global positions.
/// Collective; no comparison sort anywhere on the path. Scratch (element
/// triples, routing buffers, rank slots) comes from `ws`, or from the
/// grid's per-rank workspace when null.
DistSpVec sortperm_bucket(const DistSpVec& x, const DistDenseVec& degrees,
                          index_t label_lo, index_t label_hi, ProcGrid2D& grid,
                          DistWorkspace* ws = nullptr);

/// Same contract, implemented as a general distributed sample sort (local
/// sorts + splitter partition + merge): the comparison baseline.
DistSpVec sortperm_sample(const DistSpVec& x, const DistDenseVec& degrees,
                          ProcGrid2D& grid, DistWorkspace* ws = nullptr);

}  // namespace drcm::dist
