// SORTPERM: rank the frontier by (parent label, degree, index) — the step
// that turns one BFS level into consecutive Cuthill-McKee labels.
//
// The paper's observation (Sec. IV-B): the parent labels of a level are
// exactly the contiguous range handed out for the previous level, so the
// primary key needs counting, not comparing. sortperm_bucket exploits this
// with counting passes only (an LSD radix over the key) and performs zero
// comparison sorts over the elements end to end. sortperm_sample is the
// general sample sort used as the HykSort-style ablation baseline.
//
// The counting structure is factored into histogram-cell helpers shared
// with the fused ordering-level kernel (dist/level_kernel.hpp): each rank
// publishes its sparse (bucket, degree) histogram stamped with its OWNED-
// RANGE BLOCK index. Since (bucket, degree, block) refines the final
// (bucket, degree, index) order, one exchange of these cells lets every
// rank compute the exact global start of every cell. A cell's elements all
// live on ONE owner in index order, so the owner also knows each element's
// exact global position (cell start + within-cell ordinal) at deal time:
// elements are dealt to sort workers POSITION-proportionally, making the
// worker stripes perfectly balanced (±1 element) no matter how skewed the
// bucket/degree/ownership structure — one giant bucket, or a whole level
// concentrated in a single cell, spreads evenly (the ROADMAP worker-stripe
// fix, with no offset-correction round). A worker's received elements,
// sorted to (bucket, degree, index) order, occupy exactly its contiguous
// position stripe, so final positions are stripe start + ordinal.
#pragma once

#include <span>

#include "dist/dist_vector.hpp"
#include "dist/workspace.hpp"

namespace drcm::dist {

/// Ranks the entries of `x` (val = parent label in [label_lo, label_hi),
/// enforced) by (parent label, degrees[idx], idx). Returns a vector with
/// the same support whose values are the 0-based global positions.
/// Collective; no comparison sort anywhere on the element path (the
/// histogram metadata is aggregated with counting passes too). Scratch
/// comes from `ws`, or from the grid's per-rank workspace when null.
/// `stripe_out` (optional) receives the number of elements this rank
/// sorted as a worker — the load-balance quantity the star-graph stripe
/// regression test pins.
DistSpVec sortperm_bucket(const DistSpVec& x, const DistDenseVec& degrees,
                          index_t label_lo, index_t label_hi, ProcGrid2D& grid,
                          DistWorkspace* ws = nullptr,
                          index_t* stripe_out = nullptr);

/// Same contract, implemented as a general distributed sample sort (local
/// sorts + splitter partition + merge): the comparison baseline.
DistSpVec sortperm_sample(const DistSpVec& x, const DistDenseVec& degrees,
                          ProcGrid2D& grid, DistWorkspace* ws = nullptr);

// ---------------------------------------------------------------------------
// Counting-sort building blocks shared by sortperm_bucket and the fused
// ordering-level kernel (dist::cm_level_step). All take scratch from `ws`.

/// Exact global positions of a sorted cell table plus the element total.
/// The spans alias workspace buffers (hist_table / hist_start): valid until
/// their next checkout.
struct SortPlan {
  std::span<const SortHistCell> table;  ///< (bucket, degree, block) ascending
  std::span<const index_t> start;      ///< global start position per cell
  index_t total = 0;                   ///< total elements across all cells
};

/// Block index of the rank at grid position (row, col): the position of its
/// owned index range in global index order (chunks ascend by column, sub-
/// chunks by row).
inline index_t block_index(int row, int col, int q) {
  return static_cast<index_t>(col) * q + row;
}

/// Builds this rank's sparse (bucket, degree) histogram over `entries`
/// (values must be parent labels in [label_lo, label_hi); throws
/// CheckError otherwise) stamped with `block`, in (bucket, degree) order,
/// and records each entry's cell ordinal in `entry_cell` (indexed by entry
/// position). Counting passes only. `hist` and `entry_cell` are typically
/// ws.hist_cells() / ws.entry_cell().
void sortperm_local_hist(std::span<const VecEntry> entries,
                         const DistDenseVec& degrees, index_t label_lo,
                         index_t label_hi, index_t block, DistWorkspace& ws,
                         std::vector<SortHistCell>& hist,
                         std::vector<index_t>& entry_cell);

/// Two-level compaction of a local histogram for the histogram exchange —
/// the fused collective's carried payload and the standalone
/// sortperm_bucket allgatherv alike. The naive carry is 4 words per cell ((bucket, degree,
/// block, count)), and on degree-diverse levels — where most cells hold a
/// single element — the carried volume approaches 4x the ELEMENT volume,
/// dwarfing the 3-word element deal it rides ahead of. The packed stream
/// factors both repeated fields out:
///
///   stream  := [block, nwords] payload            (omitted when no cells)
///   payload := group...                           (nwords words total)
///   group   := [bucket,  k] (degree, count) x k   (cells with count > 1)
///            | [bucket, -k] degree x k            (k singleton cells)
///
/// Degree-diverse cells cost ~1 word instead of 4; the stream is never
/// larger than the naive cells plus one 2-word header. Each rank's stream
/// is self-delimiting (the header carries its word count), so the
/// rank-concatenated allgather decodes without per-source counts. Cells
/// must be in local-histogram order (equal buckets adjacent, every count
/// >= 1, all stamped with `block`) — sortperm_local_hist's output.
void sortperm_pack_cells(std::span<const SortHistCell> cells, index_t block,
                         std::vector<index_t>& out);

/// Decodes a concatenation of packed streams back into histogram cells
/// (appended to `out`). The words arrived over the wire, so the stream
/// structure is checked as it is parsed (truncated header/group/payload,
/// empty group: CheckError); field RANGES are re-checked by sortperm_plan,
/// which every decoded table feeds.
void sortperm_unpack_cells(std::span<const index_t> words,
                           std::vector<SortHistCell>& out);

/// Sorts the concatenation of every rank's histogram cells to (bucket,
/// degree, block) order via three counting passes and prefix-sums the
/// counts: the deterministic global plan every rank derives identically.
/// The cells arrived over the wire, so each field is range-checked first
/// (block in [0, p), bucket in [0, nb), degree in [0, n], count >= 0;
/// throws CheckError) — the counting passes index counters by these fields.
SortPlan sortperm_plan(std::span<const SortHistCell> cells, int p, index_t nb,
                       index_t n, DistWorkspace& ws);

/// Extracts, aligned with this rank's local histogram (its cells in
/// (bucket, degree) order), the global start position of each cell.
/// `out` is typically ws.my_starts(); the deal loop advances each slot as
/// it consumes the cell's elements in index order, turning it into a
/// running next-position cursor.
void sortperm_my_starts(const SortPlan& plan, index_t block,
                        std::vector<index_t>& out);

/// The sort worker global position `at` is dealt to: position-proportional,
/// so worker stripes are the balanced partition of [0, total) into p
/// contiguous ranges.
inline int sortperm_worker_of(index_t at, index_t total, int p) {
  const auto w = static_cast<int>((at * p) / total);
  return w < p ? w : p - 1;
}

/// First global position of worker `w`'s stripe: the inverse of
/// sortperm_worker_of (positions [stripe_lo(w), stripe_lo(w+1)) map to w).
inline index_t sortperm_stripe_lo(int w, index_t total, int p) {
  return (static_cast<index_t>(w) * total + p - 1) / p;
}

/// Two stable counting passes (degree, then parent bucket, counters
/// restricted to [b_lo, b_hi)) over triples already in ascending-index
/// order: the triples end in final (bucket, degree, idx) order. Zero
/// comparison sorts; the shadow array comes from ws.sort_tmp().
void sortperm_lsd_sort(std::vector<SortRec>& arr, index_t dmax, index_t b_lo,
                       index_t b_hi, DistWorkspace& ws);

/// Replays per-source received blocks in (col, row) source order into
/// ws.sort_scratch() — owned ranges ascend in that order, so the
/// concatenation is globally index-sorted, the stability baseline the
/// counting passes preserve. Returns the array; reports the degree maximum
/// and bucket range of the received elements. Every received triple is
/// range-checked (bucket in [0, nb), degree in [0, n], idx in [0, n);
/// throws CheckError): the counting sort sizes its bins from these fields.
template <class CountT>
std::vector<SortRec>& sortperm_replay(std::span<const SortRec> recv,
                                      std::span<const CountT> counts, int q,
                                      index_t nb, index_t n, DistWorkspace& ws,
                                      index_t* dmax, index_t* b_min,
                                      index_t* b_max);

/// The deal loop shared by sortperm_bucket and the fused ordering-level
/// kernel: hands every entry its exact global position off the cursor in
/// `mine` (advancing it) and pushes the (bucket, degree, idx) triple to
/// its position's worker.
void sortperm_deal(std::span<const VecEntry> entries,
                   const DistDenseVec& degrees, index_t label_lo,
                   std::span<const index_t> entry_cell,
                   std::vector<index_t>& mine, index_t total, int p,
                   std::vector<std::vector<SortRec>>& route);

/// The worker tail shared by sortperm_bucket and the fused ordering-level
/// kernel: replays the dealt elements to global index order, counting-sorts
/// to (bucket, degree, idx) — which IS global position order under
/// position-proportional dealing — and checks the stripe size matches this
/// worker's dealt position range (throws CheckError otherwise). Returns the
/// sorted array (ws.sort_scratch(), so the t-th element's global position
/// is *stripe_lo + t) and charges the replay/sort work to `world`.
template <class CountT>
std::vector<SortRec>& sortperm_worker_sort(std::span<const SortRec> dealt,
                                           std::span<const CountT> counts,
                                           int q, index_t total, index_t nb,
                                           index_t n, mps::Comm& world,
                                           DistWorkspace& ws,
                                           index_t* stripe_lo);

}  // namespace drcm::dist
