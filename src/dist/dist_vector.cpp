#include "dist/dist_vector.hpp"

namespace drcm::dist {

DistSpVec::DistSpVec(const VectorDist& dist, ProcGrid2D& grid) : dist_(dist) {
  DRCM_CHECK(dist.q() == grid.q(), "vector distribution does not fit grid");
  const auto [lo, hi] = dist.owned_range(grid.row(), grid.col());
  lo_ = lo;
  hi_ = hi;
}

void DistSpVec::assign(std::vector<VecEntry> entries) {
  index_t prev = lo_ - 1;
  for (const auto& e : entries) {
    DRCM_CHECK(e.idx >= lo_ && e.idx < hi_, "sparse entry not locally owned");
    DRCM_CHECK(e.idx > prev, "sparse entries must be strictly ascending");
    prev = e.idx;
  }
  entries_ = std::move(entries);
}

index_t DistSpVec::global_nnz(mps::Comm& world) const {
  return world.allreduce(local_nnz(),
                         [](index_t a, index_t b) { return a + b; });
}

std::vector<VecEntry> DistSpVec::to_global(mps::Comm& world) const {
  const int q = dist_.q();
  DRCM_CHECK(world.size() == q * q, "to_global needs the grid's world comm");
  const auto counts = world.allgather(local_nnz());
  const auto all = world.allgatherv(std::span<const VecEntry>(entries_));
  // Per-rank block offsets within the rank-order concatenation. The counts
  // arrived over the wire, so they are range-checked before they become
  // iterator offsets into `all`.
  std::vector<std::size_t> offset(static_cast<std::size_t>(world.size()) + 1, 0);
  for (int w = 0; w < world.size(); ++w) {
    DRCM_CHECK(counts[static_cast<std::size_t>(w)] >= 0,
               "received entry count must be non-negative");
    offset[static_cast<std::size_t>(w) + 1] =
        offset[static_cast<std::size_t>(w)] +
        static_cast<std::size_t>(counts[static_cast<std::size_t>(w)]);
  }
  DRCM_CHECK(offset.back() == all.size(),
             "received entry counts disagree with the gathered payload");
  // Owned ranges ascend in (col, row) grid order, so emitting blocks in
  // that order yields a globally index-sorted list without sorting.
  std::vector<VecEntry> global;
  global.reserve(offset.back());
  for (int c = 0; c < q; ++c) {
    for (int r = 0; r < q; ++r) {
      const auto w = static_cast<std::size_t>(r * q + c);
      global.insert(global.end(), all.begin() + static_cast<std::ptrdiff_t>(offset[w]),
                    all.begin() + static_cast<std::ptrdiff_t>(offset[w + 1]));
    }
  }
  return global;
}

}  // namespace drcm::dist
