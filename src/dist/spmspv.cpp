#include "dist/spmspv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

namespace drcm::dist {

namespace {

/// Stage 2, kSpa: accumulate minima in the workspace's dense stamped SPA,
/// emit by dense scan (sorted by construction) into `out` (GLOBAL rows).
void multiply_spa(const DistSpMat& a, std::span<const VecEntry> frontier,
                  DistWorkspace& ws, std::vector<VecEntry>& out,
                  double* work) {
  const auto rows = static_cast<std::size_t>(a.local_rows());
  auto& spa = ws.spa(rows);
  double edges = 0;
  for (const auto& e : frontier) {
    const auto col = a.column(e.idx - a.col_lo());
    edges += static_cast<double>(col.size());
    for (const index_t lr : col) {
      spa.put_min(static_cast<std::size_t>(lr), e.val);
    }
  }
  for (std::size_t s = 0; s < rows; ++s) {
    if (spa.live(s)) {
      out.push_back(VecEntry{a.row_lo() + static_cast<index_t>(s), spa.val[s]});
    }
  }
  *work = edges + kScanUnit * static_cast<double>(rows);
}

/// Stage 2, kSortMerge: k-way heap merge of the sorted column lists with
/// min-combine on duplicate rows. No dense state; cursor and heap arrays
/// come from the workspace.
void multiply_sort_merge(const DistSpMat& a, std::span<const VecEntry> frontier,
                         DistWorkspace& ws, std::vector<VecEntry>& out,
                         double* work) {
  auto& cursors = ws.cursors();
  double edges = 0;
  for (const auto& e : frontier) {
    const auto col = a.column(e.idx - a.col_lo());
    edges += static_cast<double>(col.size());
    if (!col.empty()) cursors.push_back(MergeCursor{col, 0, e.val});
  }
  using HeapItem = std::pair<index_t, std::size_t>;  // (local row, cursor)
  const auto heap_greater = [](const HeapItem& x, const HeapItem& y) {
    return x > y;
  };
  auto& heap = ws.heap_storage();
  for (std::size_t k = 0; k < cursors.size(); ++k) {
    heap.emplace_back(cursors[k].rows[0], k);
  }
  std::make_heap(heap.begin(), heap.end(), heap_greater);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    const auto [lr, k] = heap.back();
    heap.pop_back();
    const index_t g = a.row_lo() + lr;
    if (!out.empty() && out.back().idx == g) {
      out.back().val = std::min(out.back().val, cursors[k].val);
    } else {
      out.push_back(VecEntry{g, cursors[k].val});
    }
    if (++cursors[k].pos < cursors[k].rows.size()) {
      heap.emplace_back(cursors[k].rows[cursors[k].pos], k);
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    }
  }
  const double logk =
      cursors.empty() ? 1.0 : std::log2(static_cast<double>(cursors.size()) + 1);
  *work = edges * (1.0 + logk);
}

/// The DRCM_SPMSPV_ACC override, re-read per call so tests and benches can
/// flip it between runs (a getenv per BFS level, not per edge). Returns
/// kAuto when unset or "auto".
SpmspvAccumulator env_accumulator() {
  if (const char* env = std::getenv("DRCM_SPMSPV_ACC")) {
    const std::string_view v(env);
    if (v == "spa") return SpmspvAccumulator::kSpa;
    if (v == "sortmerge") return SpmspvAccumulator::kSortMerge;
    DRCM_CHECK(v.empty() || v == "auto",
               "DRCM_SPMSPV_ACC must be spa, sortmerge or auto");
  }
  return SpmspvAccumulator::kAuto;
}

}  // namespace

SpmspvAccumulator resolve_accumulator(SpmspvAccumulator requested,
                                      double frontier_edges,
                                      index_t local_rows) {
  if (requested != SpmspvAccumulator::kAuto) return requested;
  if (const auto pinned = env_accumulator(); pinned != SpmspvAccumulator::kAuto) {
    return pinned;
  }
  // BENCH_1.json places the crossover near |frontier| 16-256 on a graph
  // with avg degree ~27 and 8000 local rows: the SPA's dense emission scan
  // (kScanUnit * rows) amortizes once the touched edges reach ~1/8 of the
  // local rows, which on that graph is frontier ~37.
  return frontier_edges >= kScanUnit * static_cast<double>(local_rows)
             ? SpmspvAccumulator::kSpa
             : SpmspvAccumulator::kSortMerge;
}

std::vector<VecEntry>& spmspv_local_multiply(const DistSpMat& a,
                                             std::span<const VecEntry> frontier,
                                             SpmspvAccumulator acc,
                                             DistWorkspace& ws, double* work,
                                             SpmspvAccumulator* used) {
  if (acc == SpmspvAccumulator::kAuto) {
    acc = env_accumulator();
  }
  if (acc == SpmspvAccumulator::kAuto) {
    // Heuristic actually consulted: the crossover needs the frontier's
    // local edge volume, an O(|frontier|) col_ptr sweep (cheap next to
    // the O(edges) multiply, and skipped entirely when an arm is pinned).
    double edges = 0;
    for (const auto& e : frontier) {
      edges += static_cast<double>(a.column(e.idx - a.col_lo()).size());
    }
    acc = resolve_accumulator(acc, edges, a.local_rows());
  }
  if (used) *used = acc;
  auto& out = ws.partial_scratch();
  if (acc == SpmspvAccumulator::kSpa) {
    multiply_spa(a, frontier, ws, out, work);
  } else {
    multiply_sort_merge(a, frontier, ws, out, work);
  }
  return out;
}

DistSpVec spmspv_select2nd_min(const DistSpMat& a, const DistSpVec& x,
                               ProcGrid2D& grid, SpmspvAccumulator acc,
                               DistWorkspace* ws, SpmspvAccumulator* used) {
  DRCM_CHECK(x.dist() == a.vec_dist(),
             "frontier distribution does not match the matrix");
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();
  const auto& dist = a.vec_dist();
  const int q = grid.q();

  // Stage 1: my block needs the frontier entries of my whole column chunk,
  // which lives sub-chunk by sub-chunk on my processor column. Members are
  // ranked by grid row, so the concatenation arrives index-sorted.
  const auto frontier =
      grid.col_comm().allgatherv(std::span<const VecEntry>(x.entries()));

  // Stage 2: local block multiply into per-row partial minima.
  double work = 0;
  const auto& partial = spmspv_local_multiply(a, frontier, acc, w, &work, used);

  // Stage 3a: my partial rows live in row chunk R = grid.row(); the rank
  // in my processor row at column s merges sub-chunk s of that chunk.
  auto& to_merge = w.merge_route(static_cast<std::size_t>(q));
  {
    int s = 0;
    for (const auto& e : partial) {
      while (e.idx >= dist.sub_lo(grid.row(), s + 1)) ++s;
      to_merge[static_cast<std::size_t>(s)].push_back(e);
    }
  }
  const auto received = grid.row_comm().alltoallv(to_merge);

  // Stage 3b: min-merge the q partial lists over my merge sub-range
  // (sub-chunk grid.col() of chunk grid.row()) with the stamped slot array.
  const index_t m_lo = dist.sub_lo(grid.row(), grid.col());
  const index_t m_hi = dist.sub_lo(grid.row(), grid.col() + 1);
  auto& slots = w.merge_slots(static_cast<std::size_t>(m_hi - m_lo));
  for (const auto& e : received) {
    DRCM_DCHECK(e.idx >= m_lo && e.idx < m_hi, "partial routed to wrong rank");
    slots.put_min(static_cast<std::size_t>(e.idx - m_lo), e.val);
  }
  std::vector<VecEntry> merged;
  for (index_t g = m_lo; g < m_hi; ++g) {
    const auto s = static_cast<std::size_t>(g - m_lo);
    if (slots.live(s)) merged.push_back(VecEntry{g, slots.val[s]});
  }
  work += static_cast<double>(partial.size() + received.size()) +
          kScanUnit * static_cast<double>(m_hi - m_lo);
  world.charge_compute(work);

  // Stage 3c: the merge range I hold is owned by my transpose partner (and
  // vice versa) — one simultaneous pairwise exchange realigns everything.
  auto mine = world.pairwise_exchange(grid.transpose_partner(),
                                      std::span<const VecEntry>(merged));
  DistSpVec y(dist, grid);
  y.assign(std::move(mine));
  return y;
}

}  // namespace drcm::dist
