#include "dist/spmspv.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace drcm::dist {

namespace {

/// Work units charged per element of a sequential stamp-check sweep.
/// MachineParams::gamma is calibrated for one random CSR edge visit; a
/// predictable linear sweep over a dense array costs a fraction of that,
/// and charging it at full weight would overstate the SPA emission scans
/// relative to the trace model's output-sensitive analysis.
constexpr double kScanUnit = 0.125;

/// Reusable dense sparse accumulator with timestamp reset: one pair of
/// arrays per rank (ranks are threads), never cleared — a slot is live only
/// when its stamp equals the current epoch, so consecutive BFS iterations
/// pay O(touched + rows) instead of O(rows) clearing.
struct SpaBuffer {
  std::vector<index_t> val;
  std::vector<u64> stamp;
  u64 epoch = 0;

  void begin(std::size_t rows) {
    ++epoch;
    if (val.size() < rows) {
      val.resize(rows);
      stamp.resize(rows, 0);
    }
  }
};

thread_local SpaBuffer tl_spa;

/// Stage 2, kSpa: accumulate minima in the dense SPA, emit by dense scan
/// (sorted by construction). Returns entries with GLOBAL row indices.
std::vector<VecEntry> multiply_spa(const DistSpMat& a,
                                   std::span<const VecEntry> frontier,
                                   double* work) {
  const auto rows = static_cast<std::size_t>(a.local_rows());
  auto& spa = tl_spa;
  spa.begin(rows);
  double edges = 0;
  for (const auto& e : frontier) {
    const auto col = a.column(e.idx - a.col_lo());
    edges += static_cast<double>(col.size());
    for (const index_t lr : col) {
      const auto s = static_cast<std::size_t>(lr);
      if (spa.stamp[s] != spa.epoch) {
        spa.stamp[s] = spa.epoch;
        spa.val[s] = e.val;
      } else if (e.val < spa.val[s]) {
        spa.val[s] = e.val;
      }
    }
  }
  std::vector<VecEntry> out;
  for (std::size_t s = 0; s < rows; ++s) {
    if (spa.stamp[s] == spa.epoch) {
      out.push_back(VecEntry{a.row_lo() + static_cast<index_t>(s), spa.val[s]});
    }
  }
  *work = edges + kScanUnit * static_cast<double>(rows);
  return out;
}

/// Stage 2, kSortMerge: k-way heap merge of the sorted column lists with
/// min-combine on duplicate rows. No dense state.
std::vector<VecEntry> multiply_sort_merge(const DistSpMat& a,
                                          std::span<const VecEntry> frontier,
                                          double* work) {
  struct Cursor {
    std::span<const index_t> rows;
    std::size_t pos;
    index_t val;
  };
  std::vector<Cursor> cursors;
  double edges = 0;
  for (const auto& e : frontier) {
    const auto col = a.column(e.idx - a.col_lo());
    edges += static_cast<double>(col.size());
    if (!col.empty()) cursors.push_back(Cursor{col, 0, e.val});
  }
  using HeapItem = std::pair<index_t, std::size_t>;  // (local row, cursor)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t k = 0; k < cursors.size(); ++k) {
    heap.emplace(cursors[k].rows[0], k);
  }
  std::vector<VecEntry> out;
  while (!heap.empty()) {
    const auto [lr, k] = heap.top();
    heap.pop();
    const index_t g = a.row_lo() + lr;
    if (!out.empty() && out.back().idx == g) {
      out.back().val = std::min(out.back().val, cursors[k].val);
    } else {
      out.push_back(VecEntry{g, cursors[k].val});
    }
    if (++cursors[k].pos < cursors[k].rows.size()) {
      heap.emplace(cursors[k].rows[cursors[k].pos], k);
    }
  }
  const double logk =
      cursors.empty() ? 1.0 : std::log2(static_cast<double>(cursors.size()) + 1);
  *work = edges * (1.0 + logk);
  return out;
}

}  // namespace

DistSpVec spmspv_select2nd_min(const DistSpMat& a, const DistSpVec& x,
                               ProcGrid2D& grid, SpmspvAccumulator acc) {
  DRCM_CHECK(x.dist() == a.vec_dist(),
             "frontier distribution does not match the matrix");
  auto& world = grid.world();
  const auto& dist = a.vec_dist();
  const int q = grid.q();

  // Stage 1: my block needs the frontier entries of my whole column chunk,
  // which lives sub-chunk by sub-chunk on my processor column. Members are
  // ranked by grid row, so the concatenation arrives index-sorted.
  const auto frontier =
      grid.col_comm().allgatherv(std::span<const VecEntry>(x.entries()));

  // Stage 2: local block multiply into per-row partial minima.
  double work = 0;
  auto partial = acc == SpmspvAccumulator::kSpa
                     ? multiply_spa(a, frontier, &work)
                     : multiply_sort_merge(a, frontier, &work);

  // Stage 3a: my partial rows live in row chunk R = grid.row(); the rank
  // in my processor row at column s merges sub-chunk s of that chunk.
  std::vector<std::vector<VecEntry>> to_merge(static_cast<std::size_t>(q));
  {
    int s = 0;
    for (const auto& e : partial) {
      while (e.idx >= dist.sub_lo(grid.row(), s + 1)) ++s;
      to_merge[static_cast<std::size_t>(s)].push_back(e);
    }
  }
  const auto received = grid.row_comm().alltoallv(to_merge);

  // Stage 3b: min-merge the q partial lists over my merge sub-range
  // (sub-chunk grid.col() of chunk grid.row()) with a dense slot array.
  const index_t m_lo = dist.sub_lo(grid.row(), grid.col());
  const index_t m_hi = dist.sub_lo(grid.row(), grid.col() + 1);
  std::vector<index_t> slot(static_cast<std::size_t>(m_hi - m_lo));
  std::vector<unsigned char> live(static_cast<std::size_t>(m_hi - m_lo), 0);
  for (const auto& e : received) {
    DRCM_DCHECK(e.idx >= m_lo && e.idx < m_hi, "partial routed to wrong rank");
    const auto s = static_cast<std::size_t>(e.idx - m_lo);
    if (!live[s]) {
      live[s] = 1;
      slot[s] = e.val;
    } else if (e.val < slot[s]) {
      slot[s] = e.val;
    }
  }
  std::vector<VecEntry> merged;
  for (index_t g = m_lo; g < m_hi; ++g) {
    const auto s = static_cast<std::size_t>(g - m_lo);
    if (live[s]) merged.push_back(VecEntry{g, slot[s]});
  }
  work += static_cast<double>(partial.size() + received.size()) +
          kScanUnit * static_cast<double>(m_hi - m_lo);
  world.charge_compute(work);

  // Stage 3c: the merge range I hold is owned by my transpose partner (and
  // vice versa) — one simultaneous pairwise exchange realigns everything.
  auto mine = world.pairwise_exchange(grid.transpose_partner(),
                                      std::span<const VecEntry>(merged));
  DistSpVec y(dist, grid);
  y.assign(std::move(mine));
  return y;
}

}  // namespace drcm::dist
