#include "dist/spmspv.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

namespace drcm::dist {

namespace {

/// Contiguous stripe [lo, hi) of [0, n) owned by team member `t` of
/// `parts`. Pure arithmetic on (n, parts, t): the partition — and with it
/// the hybrid output — does not depend on scheduling.
struct Stripe {
  std::size_t lo;
  std::size_t hi;
};

Stripe stripe_of(std::size_t n, int parts, int t) {
  const auto p = static_cast<std::size_t>(parts);
  const auto i = static_cast<std::size_t>(t);
  return Stripe{n * i / p, n * (i + 1) / p};
}

/// Stage 2, kSpa: accumulate minima in the workspace's dense stamped SPA,
/// emit by dense scan (sorted by construction) into `out` (GLOBAL rows).
void multiply_spa(const DistSpMat& a, std::span<const VecEntry> frontier,
                  DistWorkspace& ws, std::vector<VecEntry>& out,
                  double* work) {
  const auto rows = static_cast<std::size_t>(a.local_rows());
  auto& spa = ws.spa(rows);
  double edges = 0;
  for (const auto& e : frontier) {
    const auto col = a.column(e.idx - a.col_lo());
    edges += static_cast<double>(col.size());
    for (const index_t lr : col) {
      spa.put_min(static_cast<std::size_t>(lr), e.val);
    }
  }
  for (std::size_t s = 0; s < rows; ++s) {
    if (spa.live(s)) {
      out.push_back(VecEntry{a.row_lo() + static_cast<index_t>(s), spa.val[s]});
    }
  }
  *work = edges + kScanUnit * static_cast<double>(rows);
}

/// The k-way heap merge of the sorted column lists of `frontier` with
/// min-combine on duplicate rows, appended to `out` (GLOBAL rows,
/// ascending). Shared by the serial kSortMerge arm (whole frontier, the
/// workspace's cursor/heap arrays) and each hybrid stripe (its frontier
/// slice, its own ThreadStripe arrays). Returns the edge count; the caller
/// reads the heap width (`cursors.size()`) for the work formula.
double sort_merge_into(const DistSpMat& a, std::span<const VecEntry> frontier,
                       std::vector<MergeCursor>& cursors,
                       std::vector<std::pair<index_t, std::size_t>>& heap,
                       std::vector<VecEntry>& out) {
  double edges = 0;
  for (const auto& e : frontier) {
    const auto col = a.column(e.idx - a.col_lo());
    edges += static_cast<double>(col.size());
    if (!col.empty()) cursors.push_back(MergeCursor{col, 0, e.val});
  }
  using HeapItem = std::pair<index_t, std::size_t>;  // (local row, cursor)
  const auto heap_greater = [](const HeapItem& x, const HeapItem& y) {
    return x > y;
  };
  for (std::size_t k = 0; k < cursors.size(); ++k) {
    heap.emplace_back(cursors[k].rows[0], k);
  }
  std::make_heap(heap.begin(), heap.end(), heap_greater);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    const auto [lr, k] = heap.back();
    heap.pop_back();
    const index_t g = a.row_lo() + lr;
    if (!out.empty() && out.back().idx == g) {
      out.back().val = std::min(out.back().val, cursors[k].val);
    } else {
      out.push_back(VecEntry{g, cursors[k].val});
    }
    if (++cursors[k].pos < cursors[k].rows.size()) {
      heap.emplace_back(cursors[k].rows[cursors[k].pos], k);
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    }
  }
  return edges;
}

/// Stage 2, kSortMerge: the heap merge over the whole frontier. No dense
/// state; cursor and heap arrays come from the workspace.
void multiply_sort_merge(const DistSpMat& a, std::span<const VecEntry> frontier,
                         DistWorkspace& ws, std::vector<VecEntry>& out,
                         double* work) {
  auto& cursors = ws.cursors();
  const double edges =
      sort_merge_into(a, frontier, cursors, ws.heap_storage(), out);
  const double logk =
      cursors.empty() ? 1.0 : std::log2(static_cast<double>(cursors.size()) + 1);
  *work = edges * (1.0 + logk);
}

/// Hybrid kSpa (paper Fig. 6, the node-level parallel SpMSpV): the frontier
/// loop splits into contiguous stripes, one per OpenMP thread, each
/// accumulating into its own stamped SPA (and recording its first-touched
/// rows); after the team barrier every thread emits a contiguous ROW stripe
/// by min-merging the team SPAs, and the thread-order concatenation
/// reproduces the serial arm's ascending dense scan bit for bit (min is
/// associative and commutative, so the frontier partition is invisible in
/// the output).
///
/// The merge is output-sensitive: when the team touched fewer distinct
/// slots than there are local rows, each thread collects the touched rows
/// of its stripe from the per-thread lists, sorts/dedups, and probes only
/// those (O(touched log touched + touched * team) instead of the dense
/// O(rows * team) scan — the ROADMAP PR-4 follow-up). Dense levels keep
/// the branch-free dense scan. Both arms emit identical entries.
void multiply_spa_hybrid(const DistSpMat& a, std::span<const VecEntry> frontier,
                         int threads, DistWorkspace& ws,
                         std::vector<VecEntry>& out, double* work) {
  const auto rows = static_cast<std::size_t>(a.local_rows());
  const auto spas = ws.thread_spas(static_cast<std::size_t>(threads), rows);
  const auto stripes = ws.thread_stripes(static_cast<std::size_t>(threads));
  double edges = 0;
#pragma omp parallel num_threads(threads) reduction(+ : edges)
  {
    // The runtime may grant fewer threads than requested: partition by the
    // actual team size (the result does not depend on it).
    const int team = omp_get_num_threads();
    const int t = omp_get_thread_num();
    auto& mine = stripes[static_cast<std::size_t>(t)];
    auto& spa = spas[static_cast<std::size_t>(t)];
    const auto f = stripe_of(frontier.size(), team, t);
    for (std::size_t i = f.lo; i < f.hi; ++i) {
      const auto& e = frontier[i];
      const auto col = a.column(e.idx - a.col_lo());
      edges += static_cast<double>(col.size());
      for (const index_t lr : col) {
        const auto s = static_cast<std::size_t>(lr);
        if (!spa.live(s)) mine.touched.push_back(lr);
        spa.put_min(s, e.val);
      }
    }
#pragma omp barrier
    // Switch on the SUMMED per-thread touched counts — a conservative,
    // non-deduplicated proxy for the distinct touched slots (threads
    // touching the same hot rows inflate it by up to the team size, which
    // only pushes toward the dense scan, never an over-long sparse merge).
    // Every thread sees the same totals, so the branch is taken uniformly
    // for a given team size, and either branch emits the same entries —
    // the equivalence walls sweep both regimes.
    std::size_t total_touched = 0;
    for (int m = 0; m < team; ++m) {
      total_touched += stripes[static_cast<std::size_t>(m)].touched.size();
    }
    auto& emit = mine.emit;
    const auto r = stripe_of(rows, team, t);
    if (total_touched < rows) {
      // Sparse level: merge only the rows somebody actually touched.
      auto& cand = mine.gather;
      cand.clear();
      for (int m = 0; m < team; ++m) {
        for (const index_t lr : stripes[static_cast<std::size_t>(m)].touched) {
          const auto s = static_cast<std::size_t>(lr);
          if (s >= r.lo && s < r.hi) cand.push_back(lr);
        }
      }
      std::sort(cand.begin(), cand.end());
      cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
      for (const index_t lr : cand) {
        const auto s = static_cast<std::size_t>(lr);
        bool live = false;
        index_t best = 0;
        for (int m = 0; m < team; ++m) {
          const auto& other = spas[static_cast<std::size_t>(m)];
          if (!other.live(s)) continue;
          best = live ? std::min(best, other.val[s]) : other.val[s];
          live = true;
        }
        emit.push_back(VecEntry{a.row_lo() + lr, best});
      }
    } else {
      // Dense level: the branch-free full-stripe scan wins.
      for (std::size_t s = r.lo; s < r.hi; ++s) {
        bool live = false;
        index_t best = 0;
        for (int m = 0; m < team; ++m) {
          const auto& other = spas[static_cast<std::size_t>(m)];
          if (!other.live(s)) continue;
          best = live ? std::min(best, other.val[s]) : other.val[s];
          live = true;
        }
        if (live) {
          emit.push_back(VecEntry{a.row_lo() + static_cast<index_t>(s), best});
        }
      }
    }
  }
  for (const auto& stripe : stripes) {
    out.insert(out.end(), stripe.emit.begin(), stripe.emit.end());
  }
  // Charged as the serial loop's work: same edges, same emission scan. The
  // per-row team probes are the price of the merge, paid in wall time only;
  // the Comm divides these modeled units by the thread count.
  *work = edges + kScanUnit * static_cast<double>(rows);
}

/// Hybrid kSortMerge: each thread heap-merges its contiguous frontier
/// stripe into its own sorted emission, then the calling thread min-merges
/// the (ascending, duplicate-free) per-stripe emissions in index order — a
/// row's minimum over stripes equals the serial heap's minimum over all
/// columns, so the output is bit-identical to the serial arm.
void multiply_sort_merge_hybrid(const DistSpMat& a,
                                std::span<const VecEntry> frontier,
                                int threads, DistWorkspace& ws,
                                std::vector<VecEntry>& out, double* work) {
  const auto stripes = ws.thread_stripes(static_cast<std::size_t>(threads));
  double edges = 0;
  double heap_width = 0;
#pragma omp parallel num_threads(threads) reduction(+ : edges, heap_width)
  {
    const int team = omp_get_num_threads();
    const int t = omp_get_thread_num();
    auto& mine = stripes[static_cast<std::size_t>(t)];
    const auto f = stripe_of(frontier.size(), team, t);
    edges += sort_merge_into(a, frontier.subspan(f.lo, f.hi - f.lo),
                             mine.cursors, mine.heap, mine.emit);
    heap_width += static_cast<double>(mine.cursors.size());
  }
  auto& pos = ws.counters(stripes.size());
  auto& winners = ws.merge_winners();
  u64 probes = 0;
  while (true) {
    // One probe per stripe head per round: the same scan that finds the
    // minimum index min-combines its value (in thread order, so the
    // output stays bit-identical at any thread count) and collects the
    // stripes holding it; only those advance.
    winners.clear();
    index_t best = 0;
    index_t val = 0;
    for (std::size_t t = 0; t < stripes.size(); ++t) {
      const auto& emit = stripes[t].emit;
      const auto at = static_cast<std::size_t>(pos[t]);
      ++probes;
      if (at >= emit.size()) continue;
      if (winners.empty() || emit[at].idx < best) {
        best = emit[at].idx;
        val = emit[at].val;
        winners.clear();
        winners.push_back(static_cast<index_t>(t));
      } else if (emit[at].idx == best) {
        val = std::min(val, emit[at].val);
        winners.push_back(static_cast<index_t>(t));
      }
    }
    if (winners.empty()) break;
    for (const index_t t : winners) ++pos[static_cast<std::size_t>(t)];
    out.push_back(VecEntry{best, val});
  }
  ws.count_merge_probes(probes);
  // The serial formula over the partition-invariant totals: the number of
  // nonempty frontier columns does not depend on how stripes cut them.
  const double logk = heap_width == 0 ? 1.0 : std::log2(heap_width + 1.0);
  *work = edges * (1.0 + logk);
}

/// The DRCM_SPMSPV_ACC override, re-read per call so tests and benches can
/// flip it between runs (a getenv per BFS level, not per edge). Returns
/// kAuto when unset or "auto".
SpmspvAccumulator env_accumulator() {
  if (const char* env = std::getenv("DRCM_SPMSPV_ACC")) {
    const std::string_view v(env);
    if (v == "spa") return SpmspvAccumulator::kSpa;
    if (v == "sortmerge") return SpmspvAccumulator::kSortMerge;
    DRCM_CHECK(v.empty() || v == "auto",
               "DRCM_SPMSPV_ACC must be spa, sortmerge or auto");
  }
  return SpmspvAccumulator::kAuto;
}

}  // namespace

SpmspvAccumulator resolve_accumulator(SpmspvAccumulator requested,
                                      double frontier_edges,
                                      index_t local_rows) {
  if (requested != SpmspvAccumulator::kAuto) return requested;
  if (const auto pinned = env_accumulator(); pinned != SpmspvAccumulator::kAuto) {
    return pinned;
  }
  // BENCH_1.json places the crossover near |frontier| 16-256 on a graph
  // with avg degree ~27 and 8000 local rows: the SPA's dense emission scan
  // (kScanUnit * rows) amortizes once the touched edges reach ~1/8 of the
  // local rows, which on that graph is frontier ~37.
  return frontier_edges >= kScanUnit * static_cast<double>(local_rows)
             ? SpmspvAccumulator::kSpa
             : SpmspvAccumulator::kSortMerge;
}

std::vector<VecEntry>& spmspv_local_multiply(const DistSpMat& a,
                                             std::span<const VecEntry> frontier,
                                             SpmspvAccumulator acc,
                                             DistWorkspace& ws, double* work,
                                             SpmspvAccumulator* used,
                                             int threads) {
  DRCM_CHECK(threads >= 1, "local multiply needs at least one thread");
  // Receive-path range check (always on): the gathered frontier arrived
  // over the wire and every arm below turns e.idx into a local column
  // access, so a corrupted index must stop here as a CheckError.
  for (const auto& e : frontier) {
    DRCM_CHECK(e.idx >= a.col_lo() && e.idx < a.col_hi(),
               "received frontier index outside the local column chunk");
  }
  if (acc == SpmspvAccumulator::kAuto) {
    acc = env_accumulator();
  }
  if (acc == SpmspvAccumulator::kAuto) {
    // Heuristic actually consulted: the crossover needs the frontier's
    // local edge volume, an O(|frontier|) col_ptr sweep (cheap next to
    // the O(edges) multiply, and skipped entirely when an arm is pinned).
    // Thread-independent, so flat and hybrid runs pick the same arm.
    double edges = 0;
    for (const auto& e : frontier) {
      edges += static_cast<double>(a.column(e.idx - a.col_lo()).size());
    }
    acc = resolve_accumulator(acc, edges, a.local_rows());
  }
  if (used) *used = acc;
  auto& out = ws.partial_scratch();
  if (acc == SpmspvAccumulator::kSpa) {
    if (threads > 1) {
      multiply_spa_hybrid(a, frontier, threads, ws, out, work);
    } else {
      multiply_spa(a, frontier, ws, out, work);
    }
  } else {
    if (threads > 1) {
      multiply_sort_merge_hybrid(a, frontier, threads, ws, out, work);
    } else {
      multiply_sort_merge(a, frontier, ws, out, work);
    }
  }
  return out;
}

DistSpVec spmspv_select2nd_min(const DistSpMat& a, const DistSpVec& x,
                               ProcGrid2D& grid, SpmspvAccumulator acc,
                               DistWorkspace* ws, SpmspvAccumulator* used) {
  DRCM_CHECK(x.dist() == a.vec_dist(),
             "frontier distribution does not match the matrix");
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();
  const auto& dist = a.vec_dist();
  const int q = grid.q();

  // Stage 1: my block needs the frontier entries of my whole column chunk,
  // which lives sub-chunk by sub-chunk on my processor column. Members are
  // ranked by grid row, so the concatenation arrives index-sorted.
  const auto frontier =
      grid.col_comm().allgatherv(std::span<const VecEntry>(x.entries()));

  // Stage 2: local block multiply into per-row partial minima, split
  // across the rank's hybrid OpenMP team (communication stays on this
  // thread, as in the paper's one-communicating-thread design).
  double work = 0;
  const auto& partial = spmspv_local_multiply(a, frontier, acc, w, &work, used,
                                              world.threads());

  // Stage 3a: my partial rows live in row chunk R = grid.row(); the rank
  // in my processor row at column s merges sub-chunk s of that chunk.
  auto& to_merge = w.merge_route(static_cast<std::size_t>(q));
  {
    int s = 0;
    for (const auto& e : partial) {
      while (e.idx >= dist.sub_lo(grid.row(), s + 1)) ++s;
      to_merge[static_cast<std::size_t>(s)].push_back(e);
    }
  }
  const auto received = grid.row_comm().alltoallv(to_merge);

  // Stage 3b: min-merge the q partial lists over my merge sub-range
  // (sub-chunk grid.col() of chunk grid.row()) with the stamped slot array.
  const index_t m_lo = dist.sub_lo(grid.row(), grid.col());
  const index_t m_hi = dist.sub_lo(grid.row(), grid.col() + 1);
  auto& slots = w.merge_slots(static_cast<std::size_t>(m_hi - m_lo));
  for (const auto& e : received) {
    // Receive-path range check (always on): a corrupted index must stop
    // here as a CheckError, not as an out-of-bounds slot write.
    DRCM_CHECK(e.idx >= m_lo && e.idx < m_hi, "partial routed to wrong rank");
    slots.put_min(static_cast<std::size_t>(e.idx - m_lo), e.val);
  }
  std::vector<VecEntry> merged;
  for (index_t g = m_lo; g < m_hi; ++g) {
    const auto s = static_cast<std::size_t>(g - m_lo);
    if (slots.live(s)) merged.push_back(VecEntry{g, slots.val[s]});
  }
  work += static_cast<double>(partial.size() + received.size()) +
          kScanUnit * static_cast<double>(m_hi - m_lo);
  world.charge_compute(work);

  // Stage 3c: the merge range I hold is owned by my transpose partner (and
  // vice versa) — one simultaneous pairwise exchange realigns everything.
  auto mine = world.pairwise_exchange(grid.transpose_partner(),
                                      std::span<const VecEntry>(merged));
  DistSpVec y(dist, grid);
  y.assign(std::move(mine));
  return y;
}

}  // namespace drcm::dist
