// 2D-partitioned sparse matrix: rank (r, c) stores the block with rows in
// chunk r and columns in chunk c of the conformal vector distribution.
//
// Blocks are stored CSC (by local column, row lists sorted ascending)
// because SpMSpV streams frontier entries through columns. The input
// pattern must be structurally symmetric (the RCM precondition), which
// makes per-column counts equal to vertex degrees.
#pragma once

#include <span>
#include <vector>

#include "dist/dist_vector.hpp"
#include "dist/proc_grid.hpp"
#include "sparse/csr.hpp"

namespace drcm::dist {

class DistSpMat {
 public:
  /// Builds my block from the replicated matrix. Collective only in the
  /// sense that every rank must construct the same matrix on the same grid.
  /// When `a` carries numerical values they are stored in lockstep with the
  /// pattern (vals_[k] belongs to rows_[k]), so the ordering -> permute ->
  /// solve pipeline never has to rebuild them from a replicated CSR.
  DistSpMat(ProcGrid2D& grid, const sparse::CsrMatrix& a);

  /// Assembles a matrix directly from my local CSC block (used by
  /// redistribute_permuted, which never materializes the global matrix).
  /// `vals` must be empty (pattern-only, `with_values` false) or hold one
  /// value per entry of `rows`; `with_values` must agree on every rank of
  /// the grid even where a block is empty.
  static DistSpMat from_local_csc(ProcGrid2D& grid, index_t n,
                                  std::vector<nnz_t> col_ptr,
                                  std::vector<index_t> rows,
                                  std::vector<double> vals = {},
                                  bool with_values = false);

  index_t n() const { return dist_.n(); }
  const VectorDist& vec_dist() const { return dist_; }
  bool has_values() const { return has_values_; }

  index_t row_lo() const { return row_lo_; }
  index_t row_hi() const { return row_hi_; }
  index_t col_lo() const { return col_lo_; }
  index_t col_hi() const { return col_hi_; }
  index_t local_rows() const { return row_hi_ - row_lo_; }
  index_t local_cols() const { return col_hi_ - col_lo_; }
  nnz_t local_nnz() const { return static_cast<nnz_t>(rows_.size()); }

  /// Local row indices of local column lc, ascending.
  std::span<const index_t> column(index_t lc) const {
    DRCM_DCHECK(lc >= 0 && lc < local_cols());
    const auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(lc)]);
    const auto e = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(lc) + 1]);
    return {rows_.data() + b, e - b};
  }

  /// Values of local column lc, parallel to column(lc). Only valid when
  /// has_values().
  std::span<const double> column_values(index_t lc) const {
    DRCM_DCHECK(has_values_);
    DRCM_DCHECK(lc >= 0 && lc < local_cols());
    const auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(lc)]);
    const auto e = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(lc) + 1]);
    return {vals_.data() + b, e - b};
  }

  /// Scalar slots this block keeps resident (pattern + values + column
  /// pointers) — what the block contributes to the mpsim resident ledger.
  std::uint64_t resident_elements() const {
    return static_cast<std::uint64_t>(col_ptr_.size() + rows_.size() +
                                      vals_.size());
  }

  /// Total stored entries across all blocks. Collective.
  nnz_t global_nnz(mps::Comm& world) const;

  /// The distributed degree vector D (per-column counts summed along the
  /// processor column; equals row degrees for a symmetric pattern).
  /// Collective.
  DistDenseVec degrees(ProcGrid2D& grid) const;

 private:
  DistSpMat() = default;

  VectorDist dist_{};
  index_t row_lo_ = 0, row_hi_ = 0;
  index_t col_lo_ = 0, col_hi_ = 0;
  bool has_values_ = false;
  std::vector<nnz_t> col_ptr_{0};
  std::vector<index_t> rows_;  ///< local row ids, sorted within each column
  std::vector<double> vals_;   ///< parallel to rows_ when has_values_
};

}  // namespace drcm::dist
