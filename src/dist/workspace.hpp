// Per-rank scratch memory for the distributed kernels.
//
// The SpMSpV accumulators, the SORTPERM routing passes and the fused level
// kernel all need O(local_rows) / O(frontier) scratch every call. Before
// this object existed the SPA lived in a `thread_local` inside spmspv.cpp:
// invisible to callers, sized by whichever matrix touched it last, leaked
// across Runtime::run invocations on reused threads, and impossible to
// share with the sort-merge arm's cursor arrays. A DistWorkspace is owned
// per rank (ProcGrid2D carries one; callers may pass their own), so the
// scoping is explicit and two matrices of different dimensions on one rank
// can alternate kernels through it safely:
//
//   * StampedSlots buffers never need clearing — a slot is live only when
//     its stamp equals the epoch opened by the current call, so a small
//     matrix reusing a buffer grown by a big one reads no stale state;
//   * plain scratch vectors are cleared (not shrunk) on checkout, so
//     steady-state BFS levels run scratch-allocation-free after warm-up
//     (result vectors handed to the caller are the only per-level
//     allocations left);
//   * every capacity growth is counted, which is how the workspace tests
//     pin the "no reallocation after warm-up" property.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "dist/vec_entry.hpp"

namespace drcm::dist {

/// Dense accumulator array with timestamp reset: slot s holds a valid value
/// only when stamp[s] equals the epoch of the latest begin(). Consecutive
/// uses pay O(touched), not O(size) clearing, and a use over a smaller
/// range than the last one cannot observe the previous caller's values.
struct StampedSlots {
  std::vector<index_t> val;
  std::vector<u64> stamp;
  u64 epoch = 0;

  /// Opens a fresh epoch over `n` slots; returns true if storage grew.
  bool begin(std::size_t n) {
    ++epoch;
    if (val.size() < n) {
      val.resize(n);
      stamp.resize(n, 0);
      return true;
    }
    return false;
  }

  bool live(std::size_t s) const { return stamp[s] == epoch; }

  /// Min-combines `v` into slot s (first write wins unconditionally).
  void put_min(std::size_t s, index_t v) {
    if (stamp[s] != epoch) {
      stamp[s] = epoch;
      val[s] = v;
    } else if (v < val[s]) {
      val[s] = v;
    }
  }
};

/// One column cursor of the kSortMerge heap: position `pos` in the sorted
/// local row list of a frontier column carrying value `val`.
struct MergeCursor {
  std::span<const index_t> rows;
  std::size_t pos;
  index_t val;
};

/// One SORTPERM element in flight: (parent bucket, degree, global index).
struct SortRec {
  index_t bucket;
  index_t degree;
  index_t idx;
};

/// Per-thread stage-2 stripe of the hybrid node-level SpMSpV: thread t of
/// the OpenMP team owns a contiguous slice of the gathered frontier and
/// merges it through its own cursor/heap arrays (kSortMerge) or emits its
/// row-stripe of the merged SPA scan (kSpa) into `emit`, so no two threads
/// ever share mutable state. The calling thread then concatenates /
/// min-merges the emissions in thread order — a deterministic reduction
/// that keeps the hybrid output bit-identical to the serial loop at any
/// thread count.
///
/// `touched` records the rows this thread's SPA first-touched during
/// accumulation, which makes the kSpa merge OUTPUT-SENSITIVE on sparse
/// levels: instead of probing team x local_rows SPA slots, each emitting
/// thread collects the team's touched rows falling in its row stripe into
/// `gather`, sorts/dedups them, and probes only those (team probes per
/// emitted row, same bound as before — but zero scans of untouched rows).
struct ThreadStripe {
  std::vector<MergeCursor> cursors;
  std::vector<std::pair<index_t, std::size_t>> heap;
  std::vector<VecEntry> emit;
  std::vector<index_t> touched;
  std::vector<index_t> gather;
};

/// One cell of the sparse SORTPERM histogram: how many elements with parent
/// bucket `bucket` and degree `degree` live on the rank whose owned index
/// range sits at position `block` in global index order (block = col * q +
/// row). Because (bucket, degree, block) is a prefix-compatible refinement
/// of the final (bucket, degree, index) sort key, the exchanged cells let
/// every rank compute the EXACT global start position of every cell — which
/// is what splits oversized buckets across sort workers with no extra
/// offset-exchange round (the ROADMAP worker-stripe fix).
struct SortHistCell {
  index_t bucket;
  index_t degree;
  index_t block;
  index_t count;
};

class DistWorkspace {
 public:
  /// The SpMSpV stage-2 accumulator (kSpa arm), epoch opened over `rows`.
  StampedSlots& spa(std::size_t rows);
  /// The result-merge accumulator (SpMSpV stage 3b / fused owner merge),
  /// epoch opened over `n` slots.
  StampedSlots& merge_slots(std::size_t n);

  /// kSortMerge cursor array and heap storage, cleared.
  std::vector<MergeCursor>& cursors();
  std::vector<std::pair<index_t, std::size_t>>& heap_storage();
  /// Winner-stripe list of the hybrid stage-2b min-merge, cleared. Holds
  /// at most one id per thread stripe.
  std::vector<index_t>& merge_winners();

  /// Outgoing frontier buffer (the SET-refreshed entries a kernel
  /// publishes). Kept distinct from partial_scratch(): the published span
  /// must stay untouched while peers read it.
  std::vector<VecEntry>& frontier_scratch();
  /// Stage-2 output (per-row partial minima), cleared.
  std::vector<VecEntry>& partial_scratch();
  /// Gathered-frontier landing buffer, cleared.
  std::vector<VecEntry>& gather_scratch();
  /// Routed-exchange landing buffer, cleared.
  std::vector<VecEntry>& recv_scratch();
  /// Per-destination VecEntry routing buffers, sized to exactly `ranks`
  /// with each destination cleared (capacity retained). One table per call
  /// site, because the tables are sized to different communicators (the
  /// row merge to q, the owner routes to p) and a shared table would
  /// thrash its outer size between them:
  /// SpMSpV stage 3a (row communicator).
  std::vector<std::vector<VecEntry>>& merge_route(std::size_t ranks);
  /// SORTPERM position scatter-back (world).
  std::vector<std::vector<VecEntry>>& entry_route(std::size_t ranks);
  /// Fused level kernel owner routing (world).
  std::vector<std::vector<VecEntry>>& fused_route(std::size_t ranks);
  /// One-shot redistribution staging: the relabeled matrix triples routed
  /// to their 1D owners, and the rhs/solution slab elements alongside them.
  /// Persisting these in the workspace is what lets a serving layer's
  /// steady-state cache-hit request (fingerprint -> redistribute -> solve,
  /// no ordering) run with ZERO workspace reallocations — the realloc
  /// ledger extends across requests.
  std::vector<std::vector<MatEntryV>>& mat_route(std::size_t ranks);
  std::vector<std::vector<VecEntryD>>& vecd_route(std::size_t ranks);

  /// SORTPERM triple scratch (element array + counting-sort shadow),
  /// cleared, and its per-destination routing buffers.
  std::vector<SortRec>& sort_scratch();
  std::vector<SortRec>& sort_tmp();
  std::vector<std::vector<SortRec>>& sort_route(std::size_t ranks);

  /// SORTPERM histogram-cell scratch, cleared: the local (bucket, degree)
  /// cells (doubles as the fused collective's carry payload), the gathered
  /// global table landing buffer, and the two ping-pong arrays of the
  /// table's counting passes.
  std::vector<SortHistCell>& hist_cells();
  std::vector<SortHistCell>& hist_all();
  std::vector<SortHistCell>& hist_table();
  std::vector<SortHistCell>& hist_shadow();
  /// Packed-carry word streams of the fused ordering level: the local
  /// two-level-compacted histogram (sortperm_pack_cells) and the
  /// rank-concatenated allgather landing buffer it is decoded from.
  std::vector<index_t>& carry_words();
  std::vector<index_t>& carry_words_all();
  /// Local-histogram construction triples ((bucket, degree, entry ordinal)).
  std::vector<SortRec>& hist_recs();
  /// Per-cell global start positions of the sorted table, per-entry cell
  /// ordinals, and this rank's cell-start cursors (advanced by the deal
  /// loop as positions are handed out).
  std::vector<index_t>& hist_start();
  std::vector<index_t>& entry_cell();
  std::vector<index_t>& my_starts();
  /// Fused ordering-level landing buffers: dealt SortRec elements and the
  /// scattered (index, label) positions.
  std::vector<SortRec>& sort_recv_scratch();
  std::vector<VecEntry>& rank_recv_scratch();

  /// Per-thread SPA arms of the hybrid local multiply: `threads` stamped
  /// slot arrays, each epoch-opened over `rows` (so a thread cannot observe
  /// another thread's — or a previous call's — values). Growth of the arm
  /// count and of any arm's storage is realloc-counted; shrinking the
  /// thread count between calls retains the extra arms' storage and counts
  /// nothing, so a rank alternating hybrid and flat calls stays
  /// allocation-free after warm-up.
  std::span<StampedSlots> thread_spas(std::size_t threads, std::size_t rows);
  /// Per-thread sort-merge stripes (cursors + heap + emission buffer),
  /// each cleared with capacity retained; realloc accounting mirrors
  /// thread_spas. The kSpa arm uses only the `emit` buffers (its row-stripe
  /// emission); the kSortMerge arm uses all three.
  std::span<ThreadStripe> thread_stripes(std::size_t threads);

  /// Plain index scratch of exactly `n` elements, contents unspecified
  /// (callers overwrite every slot they read).
  std::vector<index_t>& index_scratch(std::size_t n);

  /// Zero-filled counter array of exactly `bins` slots for the counting
  /// passes (degree/bucket/block bins can reach O(n) on degree-skewed
  /// levels, so the storage must be reused across levels, not allocated
  /// per pass). Each checkout re-zeroes, so sequential passes may share it
  /// — but a second checkout invalidates the first's contents.
  std::vector<index_t>& counters(std::size_t bins);

  /// Number of capacity growths observed across all buffers — the warm-up
  /// metric: steady-state reuse must leave this constant. Growth performed
  /// by a caller's push_backs is detected at the buffer's next checkout.
  u64 reallocations() const { return reallocations_; }

  /// Stripe-head probes performed by the hybrid min-merge since this
  /// workspace was constructed — the op-count ledger the single-probe
  /// merge is pinned on: emitting E distinct rows from S stripes costs
  /// exactly (E + 1) * S probes (every round reads each head once; the
  /// final round finds all heads exhausted).
  u64 merge_probes() const { return merge_probes_; }
  void count_merge_probes(u64 probes) { merge_probes_ += probes; }

 private:
  template <class V>
  V& checkout_cleared(V& v, std::size_t& last_cap) {
    if (v.capacity() != last_cap) {
      ++reallocations_;
      last_cap = v.capacity();
    }
    v.clear();
    return v;
  }

  template <class Route>
  Route& checkout_route(Route& route, std::size_t ranks,
                        std::size_t& last_cap) {
    route.resize(ranks);  // exact: collectives demand one buffer per rank
    std::size_t cap = route.capacity();
    for (auto& dest : route) {
      cap += dest.capacity();
      dest.clear();
    }
    if (cap != last_cap) {
      ++reallocations_;
      last_cap = cap;
    }
    return route;
  }

  StampedSlots spa_;
  StampedSlots merge_slots_;
  std::vector<MergeCursor> cursors_;
  std::vector<std::pair<index_t, std::size_t>> heap_;
  std::vector<index_t> merge_winners_;
  std::vector<VecEntry> frontier_;
  std::vector<VecEntry> partial_;
  std::vector<VecEntry> gather_;
  std::vector<VecEntry> recv_;
  std::vector<std::vector<VecEntry>> merge_route_;
  std::vector<std::vector<VecEntry>> entry_route_;
  std::vector<std::vector<VecEntry>> fused_route_;
  std::vector<std::vector<MatEntryV>> mat_route_;
  std::vector<std::vector<VecEntryD>> vecd_route_;
  std::vector<SortRec> sort_;
  std::vector<SortRec> sort_tmp_;
  std::vector<std::vector<SortRec>> sort_route_;
  std::vector<index_t> index_;
  std::vector<index_t> counters_;
  std::vector<SortHistCell> hist_cells_;
  std::vector<SortHistCell> hist_all_;
  std::vector<index_t> carry_words_;
  std::vector<index_t> carry_words_all_;
  std::vector<SortHistCell> hist_table_;
  std::vector<SortHistCell> hist_shadow_;
  std::vector<SortRec> hist_recs_;
  std::vector<index_t> hist_start_;
  std::vector<index_t> entry_cell_;
  std::vector<index_t> my_starts_;
  std::vector<SortRec> sort_recv_;
  std::vector<VecEntry> rank_recv_;
  std::vector<StampedSlots> thread_spas_;
  std::vector<ThreadStripe> thread_stripes_;
  /// Per-arm capacity ledgers of the thread stripes (sum of the three
  /// buffers), so shrinking and re-growing the thread count between calls
  /// is not misread as a reallocation.
  std::vector<std::size_t> thread_stripe_caps_;
  std::size_t cursors_cap_ = 0, heap_cap_ = 0, merge_winners_cap_ = 0,
              frontier_cap_ = 0,
              partial_cap_ = 0, gather_cap_ = 0, recv_cap_ = 0,
              merge_route_cap_ = 0, entry_route_cap_ = 0,
              fused_route_cap_ = 0, mat_route_cap_ = 0, vecd_route_cap_ = 0,
              sort_cap_ = 0, sort_tmp_cap_ = 0,
              sort_route_cap_ = 0, index_cap_ = 0, counters_cap_ = 0,
              hist_cells_cap_ = 0,
              hist_all_cap_ = 0, carry_words_cap_ = 0,
              carry_words_all_cap_ = 0, hist_table_cap_ = 0,
              hist_shadow_cap_ = 0,
              hist_recs_cap_ = 0, hist_start_cap_ = 0, entry_cell_cap_ = 0,
              my_starts_cap_ = 0, sort_recv_cap_ = 0,
              rank_recv_cap_ = 0;
  u64 reallocations_ = 0;
  u64 merge_probes_ = 0;
};

}  // namespace drcm::dist
