#include "dist/redistribute.hpp"

#include <algorithm>

namespace drcm::dist {

namespace {

/// One matrix entry in flight, already relabeled to its new coordinates.
struct MatEntry {
  index_t row;
  index_t col;
};

}  // namespace

DistSpMat redistribute_permuted(const DistSpMat& a,
                                const std::vector<index_t>& labels,
                                ProcGrid2D& grid) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(a.n()),
             "labels must cover every vertex");
  auto& world = grid.world();
  const auto& dist = a.vec_dist();

  // Relabel my entries and ship each to the rank owning its new block:
  // grid position (row chunk of new row, column chunk of new column).
  std::vector<std::vector<MatEntry>> send(
      static_cast<std::size_t>(world.size()));
  for (index_t lc = 0; lc < a.local_cols(); ++lc) {
    const index_t nc = labels[static_cast<std::size_t>(lc + a.col_lo())];
    DRCM_DCHECK(nc >= 0 && nc < a.n(), "label out of range");
    const int cc = dist.owner_col(nc);
    for (const index_t lr : a.column(lc)) {
      const index_t nr = labels[static_cast<std::size_t>(lr + a.row_lo())];
      const int dest = grid.world_rank_of(dist.owner_col(nr), cc);
      send[static_cast<std::size_t>(dest)].push_back(MatEntry{nr, nc});
    }
  }
  const auto recv = world.alltoallv(send);

  // Rebuild my CSC block: count per column, prefix, fill, sort row lists.
  const index_t row_lo = dist.chunk_lo(grid.row());
  const index_t col_lo = dist.chunk_lo(grid.col());
  const auto ncols = static_cast<std::size_t>(dist.chunk_size(grid.col()));
  std::vector<nnz_t> col_ptr(ncols + 1, 0);
  for (const auto& e : recv) {
    ++col_ptr[static_cast<std::size_t>(e.col - col_lo) + 1];
  }
  for (std::size_t c = 0; c < ncols; ++c) col_ptr[c + 1] += col_ptr[c];
  std::vector<index_t> rows(recv.size());
  std::vector<nnz_t> next(col_ptr.begin(), col_ptr.end() - 1);
  for (const auto& e : recv) {
    const auto lc = static_cast<std::size_t>(e.col - col_lo);
    rows[static_cast<std::size_t>(next[lc]++)] = e.row - row_lo;
  }
  for (std::size_t c = 0; c < ncols; ++c) {
    std::sort(rows.begin() + static_cast<std::ptrdiff_t>(col_ptr[c]),
              rows.begin() + static_cast<std::ptrdiff_t>(col_ptr[c + 1]));
  }
  world.charge_compute(static_cast<double>(a.local_nnz() + recv.size()) +
                       static_cast<double>(ncols));
  return DistSpMat::from_local_csc(grid, a.n(), std::move(col_ptr),
                                   std::move(rows));
}

DistDenseVec redistribute_permuted(const DistDenseVec& v,
                                   const std::vector<index_t>& labels,
                                   ProcGrid2D& grid) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(v.dist().n()),
             "labels must cover every element");
  auto& world = grid.world();
  const auto& dist = v.dist();

  std::vector<std::vector<VecEntry>> send(
      static_cast<std::size_t>(world.size()));
  for (index_t g = v.lo(); g < v.hi(); ++g) {
    const index_t ng = labels[static_cast<std::size_t>(g)];
    DRCM_DCHECK(ng >= 0 && ng < dist.n(), "label out of range");
    send[static_cast<std::size_t>(dist.owner_rank(ng))].push_back(
        VecEntry{ng, v.get(g)});
  }
  const auto recv = world.alltoallv(send);
  DistDenseVec out(dist, grid, 0);
  DRCM_CHECK(recv.size() == static_cast<std::size_t>(out.local_size()),
             "permutation must re-own every element exactly once");
  for (const auto& e : recv) out.set(e.idx, e.val);
  world.charge_compute(static_cast<double>(v.local_size() + recv.size()));
  return out;
}

}  // namespace drcm::dist
