#include "dist/redistribute.hpp"

#include <algorithm>
#include <cmath>

namespace drcm::dist {

namespace {

// MatEntry / MatEntryV (the in-flight entry types) live in vec_entry.hpp so
// the per-rank workspace can own their steady-state routing buffers.

/// Pattern-only arm: count per column, prefix, fill, sort row lists.
DistSpMat rebuild_pattern(const std::vector<MatEntry>& recv, index_t n,
                          ProcGrid2D& grid, const VectorDist& dist) {
  const index_t row_lo = dist.chunk_lo(grid.row());
  const index_t row_hi = dist.chunk_lo(grid.row() + 1);
  const index_t col_lo = dist.chunk_lo(grid.col());
  const index_t col_hi = dist.chunk_lo(grid.col() + 1);
  const auto ncols = static_cast<std::size_t>(dist.chunk_size(grid.col()));
  std::vector<nnz_t> col_ptr(ncols + 1, 0);
  for (const auto& e : recv) {
    // Receive-path range check (always on): the entries arrived over the
    // wire and their coordinates index the local rebuild arrays.
    DRCM_CHECK(e.row >= row_lo && e.row < row_hi && e.col >= col_lo &&
                   e.col < col_hi,
               "received matrix entry outside the owned block");
    ++col_ptr[static_cast<std::size_t>(e.col - col_lo) + 1];
  }
  for (std::size_t c = 0; c < ncols; ++c) col_ptr[c + 1] += col_ptr[c];
  std::vector<index_t> rows(recv.size());
  std::vector<nnz_t> next(col_ptr.begin(), col_ptr.end() - 1);
  for (const auto& e : recv) {
    const auto lc = static_cast<std::size_t>(e.col - col_lo);
    rows[static_cast<std::size_t>(next[lc]++)] = e.row - row_lo;
  }
  for (std::size_t c = 0; c < ncols; ++c) {
    std::sort(rows.begin() + static_cast<std::ptrdiff_t>(col_ptr[c]),
              rows.begin() + static_cast<std::ptrdiff_t>(col_ptr[c + 1]));
  }
  return DistSpMat::from_local_csc(grid, n, std::move(col_ptr),
                                   std::move(rows));
}

/// Value-carrying arm: one wholesale (col, row) sort keeps the values in
/// lockstep with the pattern through the rebuild.
DistSpMat rebuild_with_values(std::vector<MatEntryV> recv, index_t n,
                              ProcGrid2D& grid, const VectorDist& dist) {
  const index_t row_lo = dist.chunk_lo(grid.row());
  const index_t row_hi = dist.chunk_lo(grid.row() + 1);
  const index_t col_lo = dist.chunk_lo(grid.col());
  const index_t col_hi = dist.chunk_lo(grid.col() + 1);
  const auto ncols = static_cast<std::size_t>(dist.chunk_size(grid.col()));
  std::sort(recv.begin(), recv.end(), [](const MatEntryV& a, const MatEntryV& b) {
    return a.col != b.col ? a.col < b.col : a.row < b.row;
  });
  std::vector<nnz_t> col_ptr(ncols + 1, 0);
  std::vector<index_t> rows(recv.size());
  std::vector<double> vals(recv.size());
  for (std::size_t k = 0; k < recv.size(); ++k) {
    // Receive-path range check (always on), as in rebuild_pattern.
    DRCM_CHECK(recv[k].row >= row_lo && recv[k].row < row_hi &&
                   recv[k].col >= col_lo && recv[k].col < col_hi,
               "received matrix entry outside the owned block");
    ++col_ptr[static_cast<std::size_t>(recv[k].col - col_lo) + 1];
    rows[k] = recv[k].row - row_lo;
    vals[k] = recv[k].val;
  }
  for (std::size_t c = 0; c < ncols; ++c) col_ptr[c + 1] += col_ptr[c];
  return DistSpMat::from_local_csc(grid, n, std::move(col_ptr),
                                   std::move(rows), std::move(vals),
                                   /*with_values=*/true);
}

/// Shared receive tail of both 1D re-owning paths (two-hop to_row_blocks
/// and the one-shot redistribute_to_row_blocks): one wholesale (row, col)
/// sort of the received triples, then the local CSR slab. The (row, col)
/// keys are unique — a bijective relabeling of a deduplicated pattern — so
/// the result does not depend on arrival order, which is what makes the
/// two paths land on bit-identical blocks.
RowBlockCsr build_row_block(std::vector<MatEntryV>& recv, index_t n,
                            mps::Comm& world) {
  RowBlockCsr out;
  out.n = n;
  out.lo = row_block_lo(n, world.size(), world.rank());
  out.hi = row_block_lo(n, world.size(), world.rank() + 1);
  std::sort(recv.begin(), recv.end(), [](const MatEntryV& x, const MatEntryV& y) {
    return x.row != y.row ? x.row < y.row : x.col < y.col;
  });
  const auto nloc = static_cast<std::size_t>(out.local_rows());
  out.row_ptr.assign(nloc + 1, 0);
  out.cols.resize(recv.size());
  out.vals.resize(recv.size());
  for (std::size_t k = 0; k < recv.size(); ++k) {
    // Receive-path range check (always on): the row indexes the local
    // row_ptr rebuild and the column later indexes CG's halo'd solution
    // vector.
    DRCM_CHECK(recv[k].row >= out.lo && recv[k].row < out.hi &&
                   recv[k].col >= 0 && recv[k].col < n,
               "received matrix entry outside the owned row block");
    ++out.row_ptr[static_cast<std::size_t>(recv[k].row - out.lo) + 1];
    out.cols[k] = recv[k].col;
    out.vals[k] = recv[k].val;
  }
  for (std::size_t r = 0; r < nloc; ++r) out.row_ptr[r + 1] += out.row_ptr[r];
  return out;
}

}  // namespace

DistSpMat redistribute_permuted(const DistSpMat& a,
                                const std::vector<index_t>& labels,
                                ProcGrid2D& grid) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(a.n()),
             "labels must cover every vertex");
  auto& world = grid.world();
  const auto& dist = a.vec_dist();

  // Relabel my entries and ship each to the rank owning its new block:
  // grid position (row chunk of new row, column chunk of new column).
  // The two arms duplicate the routing loop rather than branch per entry;
  // values, when present, travel inside the same alltoallv.
  if (a.has_values()) {
    std::vector<std::vector<MatEntryV>> send(
        static_cast<std::size_t>(world.size()));
    for (index_t lc = 0; lc < a.local_cols(); ++lc) {
      const index_t nc = labels[static_cast<std::size_t>(lc + a.col_lo())];
      DRCM_CHECK(nc >= 0 && nc < a.n(), "label out of range");
      const int cc = dist.owner_col(nc);
      const auto col = a.column(lc);
      const auto col_vals = a.column_values(lc);
      for (std::size_t k = 0; k < col.size(); ++k) {
        const index_t nr = labels[static_cast<std::size_t>(col[k] + a.row_lo())];
        const int dest = grid.world_rank_of(dist.owner_col(nr), cc);
        send[static_cast<std::size_t>(dest)].push_back(
            MatEntryV{nr, nc, col_vals[k]});
      }
    }
    auto recv = world.alltoallv(send);
    // During the exchange both sides exist; afterwards every peer is past
    // the final crossing, so the send staging can be released before the
    // rebuild (the transient the ledger would otherwise charge twice).
    world.note_resident(a.resident_elements() +
                        3 * static_cast<std::uint64_t>(a.local_nnz()) +
                        3 * recv.size());
    send.clear();
    send.shrink_to_fit();
    const auto recv_size = recv.size();
    world.charge_compute(static_cast<double>(a.local_nnz()) +
                         static_cast<double>(recv_size) *
                             (1.0 + std::log2(static_cast<double>(recv_size) + 2.0)));
    auto out = rebuild_with_values(std::move(recv), a.n(), grid, dist);
    world.note_resident(a.resident_elements() + 3 * recv_size +
                        out.resident_elements());
    return out;
  } else {
    std::vector<std::vector<MatEntry>> send(
        static_cast<std::size_t>(world.size()));
    for (index_t lc = 0; lc < a.local_cols(); ++lc) {
      const index_t nc = labels[static_cast<std::size_t>(lc + a.col_lo())];
      DRCM_CHECK(nc >= 0 && nc < a.n(), "label out of range");
      const int cc = dist.owner_col(nc);
      for (const index_t lr : a.column(lc)) {
        const index_t nr = labels[static_cast<std::size_t>(lr + a.row_lo())];
        const int dest = grid.world_rank_of(dist.owner_col(nr), cc);
        send[static_cast<std::size_t>(dest)].push_back(MatEntry{nr, nc});
      }
    }
    const auto recv = world.alltoallv(send);
    world.note_resident(a.resident_elements() +
                        2 * static_cast<std::uint64_t>(a.local_nnz()) +
                        2 * recv.size());
    send.clear();
    send.shrink_to_fit();
    world.charge_compute(static_cast<double>(a.local_nnz() + recv.size()) +
                         static_cast<double>(dist.chunk_size(grid.col())));
    auto out = rebuild_pattern(recv, a.n(), grid, dist);
    world.note_resident(a.resident_elements() + 2 * recv.size() +
                        out.resident_elements());
    return out;
  }
}

RowBlockCsr to_row_blocks(const DistSpMat& a, mps::Comm& world) {
  DRCM_CHECK(a.has_values(), "to_row_blocks re-owns a solver matrix: "
             "the 2D block must carry values");
  const index_t n = a.n();
  const int p = world.size();

  // Ship every local entry to the 1D owner of its GLOBAL row. The 1D cut
  // uses the replicated-CSR dist_pcg slicing rule, so the re-owned matrix
  // lands on bit-identical blocks (same preconditioner blocks, same halo).
  std::vector<std::vector<MatEntryV>> send(static_cast<std::size_t>(p));
  for (index_t lc = 0; lc < a.local_cols(); ++lc) {
    const index_t gc = lc + a.col_lo();
    const auto col = a.column(lc);
    const auto col_vals = a.column_values(lc);
    for (std::size_t k = 0; k < col.size(); ++k) {
      const index_t gr = col[k] + a.row_lo();
      const int dest = row_block_owner(n, p, gr);
      send[static_cast<std::size_t>(dest)].push_back(
          MatEntryV{gr, gc, col_vals[k]});
    }
  }
  auto recv = world.alltoallv(send);
  world.note_resident(a.resident_elements() +
                      3 * static_cast<std::uint64_t>(a.local_nnz()) +
                      3 * recv.size());
  send.clear();
  send.shrink_to_fit();

  const auto recv_size = recv.size();
  auto out = build_row_block(recv, n, world);
  world.charge_compute(
      static_cast<double>(a.local_nnz()) +
      static_cast<double>(recv_size) *
          (1.0 + std::log2(static_cast<double>(recv_size) + 2.0)));
  world.note_resident(a.resident_elements() + 3 * recv_size +
                      out.resident_elements());
  return out;
}

OneShotRowBlocks redistribute_to_row_blocks(const sparse::CsrMatrix& a,
                                            const std::vector<index_t>& labels,
                                            ProcGrid2D& grid) {
  const index_t n = a.n();
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(n),
             "labels must cover every vertex");
  DRCM_CHECK(a.has_values() || a.nnz() == 0,
             "redistribute_to_row_blocks feeds the solver: "
             "the matrix must carry values");
  auto& world = grid.world();
  const int p = world.size();
  const VectorDist dist(n, grid.q());
  const index_t row_lo = dist.chunk_lo(grid.row());
  const index_t row_hi = dist.chunk_lo(grid.row() + 1);
  const index_t col_lo = dist.chunk_lo(grid.col());
  const index_t col_hi = dist.chunk_lo(grid.col() + 1);
  const bool has_values = a.has_values();

  // Stream my balanced-2D block straight out of the input: for each entry,
  // relabel BOTH coordinates and route the triple to the 1D owner of its
  // new row. A whole original row shares one new row, hence one
  // destination, so the owner lookup is per-row, not per-entry. The
  // permuted bandwidth folds into the same pass. Staging lives in the
  // workspace so a repeat pattern (same routing, same sizes) re-runs this
  // exchange with zero reallocations — the serving layer's steady state.
  auto& send = grid.workspace().mat_route(static_cast<std::size_t>(p));
  std::uint64_t block_nnz = 0;
  index_t local_bw = 0;
  for (index_t gr = row_lo; gr < row_hi; ++gr) {
    const auto cols = a.row(gr);
    const auto first = std::lower_bound(cols.begin(), cols.end(), col_lo);
    if (first == cols.end() || *first >= col_hi) continue;
    const index_t nr = labels[static_cast<std::size_t>(gr)];
    DRCM_CHECK(nr >= 0 && nr < n, "label out of range");
    auto& deal = send[static_cast<std::size_t>(row_block_owner(n, p, nr))];
    for (auto it = first; it != cols.end() && *it < col_hi; ++it) {
      const index_t nc = labels[static_cast<std::size_t>(*it)];
      DRCM_CHECK(nc >= 0 && nc < n, "label out of range");
      local_bw = std::max(local_bw, nr > nc ? nr - nc : nc - nr);
      const double val =
          has_values
              ? a.row_values(gr)[static_cast<std::size_t>(it - cols.begin())]
              : 0.0;
      deal.push_back(MatEntryV{nr, nc, val});
      ++block_nnz;
    }
  }
  auto recv = world.alltoallv(send);
  // The in-flight peak: the input block as a coordinate stream (a real
  // implementation holds exactly the triples it is about to route — no
  // CSC column pointer, so no O(n/q) term), the staged sends, and the
  // received slab triples. Everything is O(nnz/p) for a balanced block.
  // The staging capacity is deliberately NOT released: it is workspace
  // state, warm for the next request with this routing shape.
  world.note_resident(3 * block_nnz + 3 * block_nnz + 3 * recv.size());

  const auto recv_size = recv.size();
  OneShotRowBlocks out;
  out.block = build_row_block(recv, n, world);
  out.bandwidth = world.allreduce(
      local_bw, [](index_t x, index_t y) { return x > y ? x : y; });
  world.charge_compute(
      static_cast<double>(block_nnz) +
      static_cast<double>(recv_size) *
          (1.0 + std::log2(static_cast<double>(recv_size) + 2.0)));
  world.note_resident(3 * block_nnz + 3 * recv_size +
                      out.block.resident_elements());
  return out;
}

OneShotRowBlocks redistribute_to_row_blocks(const sparse::CsrMatrix& a,
                                            const DistDenseVec& labels,
                                            ProcGrid2D& grid) {
  const index_t n = a.n();
  DRCM_CHECK(a.has_values() || a.nnz() == 0,
             "redistribute_to_row_blocks feeds the solver: "
             "the matrix must carry values");
  auto& world = grid.world();
  const int p = world.size();
  const int q = grid.q();
  const VectorDist dist(n, q);
  DRCM_CHECK(labels.dist() == dist,
             "sharded labels must use the grid's vector distribution");
  const index_t row_lo = dist.chunk_lo(grid.row());
  const index_t row_hi = dist.chunk_lo(grid.row() + 1);
  const index_t col_lo = dist.chunk_lo(grid.col());
  const index_t col_hi = dist.chunk_lo(grid.col() + 1);
  const bool has_values = a.has_values();

  // Phase 1 — label-window exchange. The streaming loop below relabels the
  // rows of chunk grid.row() and the columns of chunk grid.col(); with the
  // labels sharded O(n/p) per rank, those windows live on other ranks. The
  // consumers of label g are arithmetically known: g sits in chunk
  // c0 = owner_col(g), so grid row c0 (all q columns) reads it as a row
  // label and grid column c0 (all q rows) as a column label. Each owner
  // pushes its O(n/p) labels to those 2q-1 ranks — ONE alltoallv, O(n/q)
  // received per rank — and the receivers fill dense per-chunk windows.
  std::vector<std::vector<VecEntry>> lsend(static_cast<std::size_t>(p));
  std::uint64_t lsend_total = 0;
  for (index_t g = labels.lo(); g < labels.hi(); ++g) {
    const index_t lab = labels.get(g);
    DRCM_CHECK(lab >= 0 && lab < n, "label out of range");
    const int c0 = dist.owner_col(g);
    for (int c = 0; c < q; ++c) {
      lsend[static_cast<std::size_t>(grid.world_rank_of(c0, c))].push_back(
          VecEntry{g, lab});
    }
    for (int r = 0; r < q; ++r) {
      if (r == c0) continue;  // (c0, c0) already receives via the row loop
      lsend[static_cast<std::size_t>(grid.world_rank_of(r, c0))].push_back(
          VecEntry{g, lab});
    }
    lsend_total += static_cast<std::uint64_t>(2 * q - 1);
  }
  auto lrecv = world.alltoallv(lsend);
  std::vector<index_t> row_label(static_cast<std::size_t>(row_hi - row_lo),
                                 kNoVertex);
  std::vector<index_t> col_label(static_cast<std::size_t>(col_hi - col_lo),
                                 kNoVertex);
  for (const auto& e : lrecv) {
    // Receive-path range checks (always on): wire data indexes the windows.
    DRCM_CHECK(e.val >= 0 && e.val < n, "received label out of range");
    bool used = false;
    if (e.idx >= row_lo && e.idx < row_hi) {
      row_label[static_cast<std::size_t>(e.idx - row_lo)] = e.val;
      used = true;
    }
    if (e.idx >= col_lo && e.idx < col_hi) {
      col_label[static_cast<std::size_t>(e.idx - col_lo)] = e.val;
      used = true;
    }
    DRCM_CHECK(used, "received label outside both lookup windows");
  }
  for (const index_t lab : row_label) {
    DRCM_CHECK(lab != kNoVertex, "row label window has a hole");
  }
  for (const index_t lab : col_label) {
    DRCM_CHECK(lab != kNoVertex, "column label window has a hole");
  }
  world.charge_compute(static_cast<double>(lsend_total) +
                       static_cast<double>(lrecv.size()) +
                       static_cast<double>(row_label.size()) +
                       static_cast<double>(col_label.size()));
  world.note_resident(static_cast<std::uint64_t>(labels.local_size()) +
                      row_label.size() + col_label.size() + 2 * lsend_total +
                      2 * lrecv.size());
  // The window exchange staging is transient, not steady-state routing
  // capacity: release it before the matrix triples go resident.
  lsend.clear();
  lsend.shrink_to_fit();
  lrecv.clear();
  lrecv.shrink_to_fit();

  // Phase 2 — identical streaming redistribution to the replicated-label
  // path, reading the O(n/q) windows instead of the O(n) vector. Same
  // routing, same triples on the wire, same wholesale receive sort: the
  // resulting blocks are bit-identical.
  auto& send = grid.workspace().mat_route(static_cast<std::size_t>(p));
  std::uint64_t block_nnz = 0;
  index_t local_bw = 0;
  for (index_t gr = row_lo; gr < row_hi; ++gr) {
    const auto cols = a.row(gr);
    const auto first = std::lower_bound(cols.begin(), cols.end(), col_lo);
    if (first == cols.end() || *first >= col_hi) continue;
    const index_t nr = row_label[static_cast<std::size_t>(gr - row_lo)];
    auto& deal = send[static_cast<std::size_t>(row_block_owner(n, p, nr))];
    for (auto it = first; it != cols.end() && *it < col_hi; ++it) {
      const index_t nc = col_label[static_cast<std::size_t>(*it - col_lo)];
      local_bw = std::max(local_bw, nr > nc ? nr - nc : nc - nr);
      const double val =
          has_values
              ? a.row_values(gr)[static_cast<std::size_t>(it - cols.begin())]
              : 0.0;
      deal.push_back(MatEntryV{nr, nc, val});
      ++block_nnz;
    }
  }
  auto recv = world.alltoallv(send);
  world.note_resident(static_cast<std::uint64_t>(labels.local_size()) +
                      row_label.size() + col_label.size() + 3 * block_nnz +
                      3 * block_nnz + 3 * recv.size());

  const auto recv_size = recv.size();
  OneShotRowBlocks out;
  out.block = build_row_block(recv, n, world);
  out.bandwidth = world.allreduce(
      local_bw, [](index_t x, index_t y) { return x > y ? x : y; });
  world.charge_compute(
      static_cast<double>(block_nnz) +
      static_cast<double>(recv_size) *
          (1.0 + std::log2(static_cast<double>(recv_size) + 2.0)));
  world.note_resident(static_cast<std::uint64_t>(labels.local_size()) +
                      row_label.size() + col_label.size() + 3 * block_nnz +
                      3 * recv_size + out.block.resident_elements());
  return out;
}

DistDenseVec redistribute_permuted(const DistDenseVec& v,
                                   const std::vector<index_t>& labels,
                                   ProcGrid2D& grid) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(v.dist().n()),
             "labels must cover every element");
  auto& world = grid.world();
  const auto& dist = v.dist();

  std::vector<std::vector<VecEntry>> send(
      static_cast<std::size_t>(world.size()));
  for (index_t g = v.lo(); g < v.hi(); ++g) {
    const index_t ng = labels[static_cast<std::size_t>(g)];
    DRCM_CHECK(ng >= 0 && ng < dist.n(), "label out of range");
    send[static_cast<std::size_t>(dist.owner_rank(ng))].push_back(
        VecEntry{ng, v.get(g)});
  }
  const auto recv = world.alltoallv(send);
  DistDenseVec out(dist, grid, 0);
  DRCM_CHECK(recv.size() == static_cast<std::size_t>(out.local_size()),
             "permutation must re-own every element exactly once");
  for (const auto& e : recv) {
    // Receive-path range check (always on): set() indexes the owned slab.
    DRCM_CHECK(out.owns(e.idx), "received element outside the owned range");
    out.set(e.idx, e.val);
  }
  world.charge_compute(static_cast<double>(v.local_size() + recv.size()));
  return out;
}

DistDenseVecD redistribute_permuted(const DistDenseVecD& v,
                                    const std::vector<index_t>& labels,
                                    ProcGrid2D& grid) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(v.dist().n()),
             "labels must cover every element");
  auto& world = grid.world();
  const auto& dist = v.dist();

  std::vector<std::vector<VecEntryD>> send(
      static_cast<std::size_t>(world.size()));
  for (index_t g = v.lo(); g < v.hi(); ++g) {
    const index_t ng = labels[static_cast<std::size_t>(g)];
    DRCM_CHECK(ng >= 0 && ng < dist.n(), "label out of range");
    send[static_cast<std::size_t>(dist.owner_rank(ng))].push_back(
        VecEntryD{ng, v.get(g)});
  }
  const auto recv = world.alltoallv(send);
  DistDenseVecD out(dist, grid, 0.0);
  DRCM_CHECK(recv.size() == static_cast<std::size_t>(out.local_size()),
             "permutation must re-own every element exactly once");
  for (const auto& e : recv) {
    // Receive-path range check (always on): set() indexes the owned slab.
    DRCM_CHECK(out.owns(e.idx), "received element outside the owned range");
    out.set(e.idx, e.val);
  }
  world.charge_compute(static_cast<double>(v.local_size() + recv.size()));
  return out;
}

namespace {

/// Shared body of the two row-slab arms: `label_of(g)` supplies the new
/// index of owned element g (a replicated-vector read, or a purely local
/// sharded-slab read when the vector and the labels share one
/// distribution). Staging comes from `ws` when provided, so steady-state
/// repeat requests run the exchange reallocation-free.
template <class LabelOf>
std::vector<double> row_slab_exchange(const DistDenseVecD& v,
                                      LabelOf&& label_of, mps::Comm& world,
                                      DistWorkspace* ws) {
  const index_t n = v.dist().n();
  const int p = world.size();
  DRCM_CHECK(v.dist().q() * v.dist().q() == p,
             "redistribute_to_row_slab needs the grid's world comm");

  std::vector<std::vector<VecEntryD>> local_send;
  if (!ws) local_send.resize(static_cast<std::size_t>(p));
  std::vector<std::vector<VecEntryD>>& send =
      ws ? ws->vecd_route(static_cast<std::size_t>(p)) : local_send;
  for (index_t g = v.lo(); g < v.hi(); ++g) {
    const index_t ng = label_of(g);
    DRCM_CHECK(ng >= 0 && ng < n, "label out of range");
    send[static_cast<std::size_t>(row_block_owner(n, p, ng))].push_back(
        VecEntryD{ng, v.get(g)});
  }
  const auto recv = world.alltoallv(send);
  const index_t lo = row_block_lo(n, p, world.rank());
  const index_t hi = row_block_lo(n, p, world.rank() + 1);
  std::vector<double> slab(static_cast<std::size_t>(hi - lo), 0.0);
  DRCM_CHECK(recv.size() == slab.size(),
             "permutation must re-own every element exactly once");
  for (const auto& e : recv) {
    // Receive-path range check (always on): the index addresses my slab.
    DRCM_CHECK(e.idx >= lo && e.idx < hi,
               "received element outside the owned row block");
    slab[static_cast<std::size_t>(e.idx - lo)] = e.val;
  }
  world.charge_compute(static_cast<double>(v.local_size()) +
                       static_cast<double>(recv.size()));
  return slab;
}

}  // namespace

std::vector<double> redistribute_to_row_slab(const DistDenseVecD& v,
                                             const std::vector<index_t>& labels,
                                             mps::Comm& world,
                                             DistWorkspace* ws) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(v.dist().n()),
             "labels must cover every element");
  return row_slab_exchange(
      v,
      [&](index_t g) { return labels[static_cast<std::size_t>(g)]; },
      world, ws);
}

std::vector<double> redistribute_to_row_slab(const DistDenseVecD& v,
                                             const DistDenseVec& labels,
                                             mps::Comm& world,
                                             DistWorkspace* ws) {
  // The 2D rhs slab and the sharded label vector share one distribution,
  // so the relabel lookup never leaves the rank: the sharded arm costs the
  // SAME single alltoallv as the replicated arm.
  DRCM_CHECK(labels.dist() == v.dist(),
             "sharded labels must share the vector's distribution");
  return row_slab_exchange(
      v, [&](index_t g) { return labels.get(g); }, world, ws);
}

}  // namespace drcm::dist
