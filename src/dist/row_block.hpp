// PETSc-style 1D contiguous row-block storage: the layout dist_pcg solves
// on. Rank r of a p-rank world owns global rows [r*n/p, (r+1)*n/p), stored
// as a local CSR slab with GLOBAL column ids (ascending within each row)
// and one value per entry.
//
// This is the hand-off format between the 2D-partitioned ordering world
// (DistSpMat, sqrt(p) x sqrt(p) grid) and the 1D solver world: the
// to_row_blocks re-owning step in redistribute.{hpp,cpp} converts the
// permuted 2D matrix into these blocks with one alltoallv, so the
// RCM -> permute -> CG pipeline never gathers a replicated CSR.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace drcm::dist {

/// First row of rank r's contiguous block when n rows split over p ranks —
/// the exact slicing rule of the replicated-CSR dist_pcg path, so a matrix
/// re-owned through to_row_blocks lands on identical blocks.
inline index_t row_block_lo(index_t n, int p, int r) {
  return (static_cast<index_t>(r) * n) / p;
}

/// World rank owning global row g under the row_block_lo slicing.
inline int row_block_owner(index_t n, int p, index_t g) {
  DRCM_DCHECK(g >= 0 && g < n);
  int b = static_cast<int>((static_cast<long double>(g) * p) / n);
  if (b >= p) b = p - 1;
  while (b > 0 && row_block_lo(n, p, b) > g) --b;
  while (b + 1 < p && row_block_lo(n, p, b + 1) <= g) ++b;
  return b;
}

struct RowBlockCsr {
  index_t n = 0;        ///< global dimension
  index_t lo = 0;       ///< first owned global row
  index_t hi = 0;       ///< one past the last owned global row
  std::vector<nnz_t> row_ptr;  ///< local_rows() + 1 offsets
  std::vector<index_t> cols;   ///< GLOBAL column ids, ascending per row
  std::vector<double> vals;    ///< one value per entry

  index_t local_rows() const { return hi - lo; }
  nnz_t local_nnz() const { return static_cast<nnz_t>(cols.size()); }

  /// Global column ids of owned row g (g in [lo, hi)).
  std::span<const index_t> row(index_t g) const {
    DRCM_DCHECK(g >= lo && g < hi);
    const auto b = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(g - lo)]);
    const auto e = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(g - lo) + 1]);
    return {cols.data() + b, e - b};
  }

  /// Values of owned row g, parallel to row(g).
  std::span<const double> row_values(index_t g) const {
    DRCM_DCHECK(g >= lo && g < hi);
    const auto b = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(g - lo)]);
    const auto e = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(g - lo) + 1]);
    return {vals.data() + b, e - b};
  }

  /// Scalar slots this block keeps resident (for the mpsim ledger).
  std::uint64_t resident_elements() const {
    return static_cast<std::uint64_t>(row_ptr.size() + cols.size() +
                                      vals.size());
  }
};

}  // namespace drcm::dist
