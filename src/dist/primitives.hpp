// The paper's Table-I vector primitives (SET / SELECT / REDUCE and
// friends) on aligned distributed vectors.
//
// All sparse/dense pairs must share one distribution, so SET, SELECT and
// the scalar shift are embarrassingly local; only the argmin reductions
// communicate (one allreduce of an (key, index) pair). Every primitive
// charges its scalar work through the Comm so phase breakdowns stay honest.
#pragma once

#include <utility>

#include "dist/dist_vector.hpp"

namespace drcm::dist {

/// SET (sparse <- dense): every sparse value becomes the dense value at
/// its index. Local; `world` only receives the compute charge.
void gather_from_dense(DistSpVec& sp, const DistDenseVec& dense,
                       mps::Comm& world);

/// SET (dense <- sparse): dense[idx] <- val for every sparse entry.
void scatter_into_dense(DistDenseVec& dense, const DistSpVec& sp,
                        mps::Comm& world);

/// SELECT: keep the sparse entries whose dense value equals `value`.
DistSpVec select_where_equals(const DistSpVec& sp, const DistDenseVec& dense,
                              index_t value, mps::Comm& world);

/// Adds `s` to every sparse value in place.
void add_scalar(DistSpVec& sp, index_t s, mps::Comm& world);

/// REDUCE: (min dense[idx], idx) over the sparse support, ties to the
/// smallest index; (kNoVertex, kNoVertex) when the support is empty
/// everywhere. Collective.
std::pair<index_t, index_t> reduce_argmin(const DistSpVec& sp,
                                          const DistDenseVec& key,
                                          mps::Comm& world);

/// (min key[g], g) over elements with visited[g] == kNoVertex, ties to the
/// smallest index; (kNoVertex, kNoVertex) when every element is visited.
/// Collective.
std::pair<index_t, index_t> argmin_unvisited(const DistDenseVec& visited,
                                             const DistDenseVec& key,
                                             mps::Comm& world);

}  // namespace drcm::dist
