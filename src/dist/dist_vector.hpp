// Vector distribution math and the dense / sparse distributed vectors.
//
// A length-n vector on a q x q grid is cut into q chunks (chunk c is
// conformal with the matrix columns of processor column c), and each chunk
// is cut again into q sub-chunks, one per grid row. Element g is owned by
// exactly one rank: (owner_row(g), owner_col(g)). All cuts are balanced
// (sizes differ by at most one) and purely arithmetic, so every rank can
// compute any owner without communication — the property the SpMSpV
// routing and SORTPERM bucket routing rely on.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "dist/proc_grid.hpp"
#include "dist/vec_entry.hpp"

namespace drcm::dist {

/// The ownership arithmetic for one vector length on one grid side q.
class VectorDist {
 public:
  VectorDist() = default;
  VectorDist(index_t n, int q) : n_(n), q_(q) {
    DRCM_CHECK(n >= 0 && q >= 1, "VectorDist needs n >= 0 and q >= 1");
  }

  index_t n() const { return n_; }
  int q() const { return q_; }

  /// First element of chunk c (c in [0, q]; chunk_lo(q) == n).
  index_t chunk_lo(int c) const {
    DRCM_DCHECK(c >= 0 && c <= q_);
    return (static_cast<index_t>(c) * n_) / q_;
  }
  index_t chunk_size(int c) const { return chunk_lo(c + 1) - chunk_lo(c); }

  /// First element of sub-chunk r of chunk c (r in [0, q];
  /// sub_lo(c, q) == chunk_lo(c + 1)).
  index_t sub_lo(int c, int r) const {
    DRCM_DCHECK(r >= 0 && r <= q_);
    return chunk_lo(c) + (static_cast<index_t>(r) * chunk_size(c)) / q_;
  }
  index_t sub_size(int c, int r) const { return sub_lo(c, r + 1) - sub_lo(c, r); }

  /// Chunk containing element g == the grid column whose matrix columns
  /// are conformal with g.
  int owner_col(index_t g) const {
    DRCM_DCHECK(g >= 0 && g < n_);
    int c = static_cast<int>((g * q_) / n_);
    if (c >= q_) c = q_ - 1;
    while (c > 0 && chunk_lo(c) > g) --c;
    while (c + 1 < q_ && chunk_lo(c + 1) <= g) ++c;
    return c;
  }

  /// Sub-chunk of chunk owner_col(g) containing g == the grid row of g's
  /// owner.
  int owner_row(index_t g) const {
    const int c = owner_col(g);
    const index_t off = g - chunk_lo(c);
    const index_t sz = chunk_size(c);
    int r = static_cast<int>((off * q_) / (sz > 0 ? sz : 1));
    if (r >= q_) r = q_ - 1;
    while (r > 0 && sub_lo(c, r) > g) --r;
    while (r + 1 < q_ && sub_lo(c, r + 1) <= g) ++r;
    return r;
  }

  /// Elements owned by the rank at grid position (r, c).
  std::pair<index_t, index_t> owned_range(int r, int c) const {
    return {sub_lo(c, r), sub_lo(c, r + 1)};
  }

  /// World rank owning element g.
  int owner_rank(index_t g) const { return owner_row(g) * q_ + owner_col(g); }

  friend bool operator==(const VectorDist&, const VectorDist&) = default;

 private:
  index_t n_ = 0;
  int q_ = 1;
};

/// Dense distributed vector: each rank stores exactly its owned range.
///
/// Ownership contract:
///   * Construction is per-rank arithmetic (no communication): the rank at
///     grid position (row, col) allocates exactly `dist.owned_range(row,
///     col)` — a contiguous [lo, hi) window of O(n/p) elements.
///   * `get`/`set` touch ONLY owned elements; addressing an element outside
///     [lo, hi) is a contract violation (debug-checked). There is no remote
///     access path — cross-rank movement is always an explicit collective
///     (`to_global`, or the redistribute overloads in redistribute.hpp).
///   * `to_global` is the ONE deliberate replication point, and it is
///     collective: every rank pays O(n). Pipeline stages must stay on the
///     owned slab and never call it on the hot path; the resident ledger
///     treats any surviving O(n) copy as a scalability bug.
///
/// Instantiated for index_t (the paper's R, D and level vectors — the
/// `DistDenseVec` alias) and double (the distributed right-hand side and
/// solution of the value pipeline — `DistDenseVecD`).
template <class T>
class DistDenseVecT {
 public:
  DistDenseVecT() = default;
  DistDenseVecT(const VectorDist& dist, ProcGrid2D& grid, T init = T{})
      : dist_(dist) {
    DRCM_CHECK(dist.q() == grid.q(), "vector distribution does not fit grid");
    const auto [lo, hi] = dist.owned_range(grid.row(), grid.col());
    lo_ = lo;
    hi_ = hi;
    data_.assign(static_cast<std::size_t>(hi_ - lo_), init);
  }

  index_t lo() const { return lo_; }
  index_t hi() const { return hi_; }
  index_t local_size() const { return hi_ - lo_; }
  bool owns(index_t g) const { return g >= lo_ && g < hi_; }

  T get(index_t g) const {
    DRCM_DCHECK(owns(g), "get of unowned element");
    return data_[static_cast<std::size_t>(g - lo_)];
  }
  void set(index_t g, T v) {
    DRCM_DCHECK(owns(g), "set of unowned element");
    data_[static_cast<std::size_t>(g - lo_)] = v;
  }

  const VectorDist& dist() const { return dist_; }

  /// This rank's owned slab in ascending global-index order.
  std::span<const T> local() const { return data_; }

  /// Replicates the full vector on every rank, in global index order.
  /// Collective — the explicit O(n)-per-rank escape hatch; see the
  /// ownership contract above.
  std::vector<T> to_global(mps::Comm& world) const {
    const int q = dist_.q();
    DRCM_CHECK(world.size() == q * q, "to_global needs the grid's world comm");
    const auto all = world.allgatherv(std::span<const T>(data_));
    std::vector<T> global(static_cast<std::size_t>(dist_.n()));
    // allgatherv concatenates in world-rank order; owned ranges are known
    // arithmetically, so each block lands at its global offset.
    std::size_t pos = 0;
    for (int w = 0; w < world.size(); ++w) {
      const auto [lo, hi] = dist_.owned_range(w / q, w % q);
      for (index_t g = lo; g < hi; ++g) {
        global[static_cast<std::size_t>(g)] = all[pos++];
      }
    }
    return global;
  }

 private:
  VectorDist dist_{};
  index_t lo_ = 0;
  index_t hi_ = 0;
  std::vector<T> data_;
};

/// The paper's index-valued vectors (R, D, levels).
using DistDenseVec = DistDenseVecT<index_t>;
/// The value pipeline's distributed rhs / solution.
using DistDenseVecD = DistDenseVecT<double>;

/// Sparse distributed vector (the paper's frontiers): each rank holds the
/// entries of its owned range, strictly ascending by index.
class DistSpVec {
 public:
  DistSpVec() = default;
  DistSpVec(const VectorDist& dist, ProcGrid2D& grid);

  index_t lo() const { return lo_; }
  index_t hi() const { return hi_; }

  /// Replaces the local entries. Every entry must be owned and the list
  /// strictly ascending by index (throws CheckError otherwise).
  void assign(std::vector<VecEntry> entries);

  /// A vector with my distribution and ownership holding `entries`
  /// (validated as in assign) — result construction without copying my
  /// own entries first.
  DistSpVec sibling(std::vector<VecEntry> entries) const {
    DistSpVec out;
    out.dist_ = dist_;
    out.lo_ = lo_;
    out.hi_ = hi_;
    out.assign(std::move(entries));
    return out;
  }

  const std::vector<VecEntry>& entries() const { return entries_; }
  index_t local_nnz() const { return static_cast<index_t>(entries_.size()); }

  /// Total entry count across ranks. Collective.
  index_t global_nnz(mps::Comm& world) const;

  /// Replicates all entries on every rank, ascending by index. Collective.
  std::vector<VecEntry> to_global(mps::Comm& world) const;

  const VectorDist& dist() const { return dist_; }

 private:
  VectorDist dist_{};
  index_t lo_ = 0;
  index_t hi_ = 0;
  std::vector<VecEntry> entries_;
};

}  // namespace drcm::dist
