// The sparse-vector entry type, split out of dist_vector.hpp so the
// per-rank workspace (workspace.hpp) can use it without dragging in the
// distribution math — ProcGrid2D owns a DistWorkspace, and dist_vector.hpp
// includes proc_grid.hpp.
#pragma once

#include "common/types.hpp"

namespace drcm::dist {

/// One entry of a sparse distributed vector: (global index, value). The
/// value carries labels / levels through the (select2nd, min) semiring.
struct VecEntry {
  index_t idx;
  index_t val;
  friend bool operator==(const VecEntry&, const VecEntry&) = default;
};

/// Same with a numerical payload: one rhs/solution element in flight
/// through the value pipeline's redistribution collectives.
struct VecEntryD {
  index_t idx;
  double val;
  friend bool operator==(const VecEntryD&, const VecEntryD&) = default;
};

/// One matrix entry in flight, already relabeled to its new coordinates
/// (the redistribution collectives' pattern payload).
struct MatEntry {
  index_t row;
  index_t col;
};

/// Same, carrying its numerical value (the value rides the same alltoallv
/// as its coordinates).
struct MatEntryV {
  index_t row;
  index_t col;
  double val;
};

}  // namespace drcm::dist
