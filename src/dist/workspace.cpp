#include "dist/workspace.hpp"

namespace drcm::dist {

StampedSlots& DistWorkspace::spa(std::size_t rows) {
  reallocations_ += spa_.begin(rows);
  return spa_;
}

StampedSlots& DistWorkspace::merge_slots(std::size_t n) {
  reallocations_ += merge_slots_.begin(n);
  return merge_slots_;
}

std::vector<MergeCursor>& DistWorkspace::cursors() {
  return checkout_cleared(cursors_, cursors_cap_);
}

std::vector<std::pair<index_t, std::size_t>>& DistWorkspace::heap_storage() {
  return checkout_cleared(heap_, heap_cap_);
}

std::vector<VecEntry>& DistWorkspace::frontier_scratch() {
  return checkout_cleared(frontier_, frontier_cap_);
}

std::vector<VecEntry>& DistWorkspace::partial_scratch() {
  return checkout_cleared(partial_, partial_cap_);
}

std::vector<VecEntry>& DistWorkspace::gather_scratch() {
  return checkout_cleared(gather_, gather_cap_);
}

std::vector<VecEntry>& DistWorkspace::recv_scratch() {
  return checkout_cleared(recv_, recv_cap_);
}

std::vector<std::vector<VecEntry>>& DistWorkspace::merge_route(
    std::size_t ranks) {
  return checkout_route(merge_route_, ranks, merge_route_cap_);
}

std::vector<std::vector<VecEntry>>& DistWorkspace::entry_route(
    std::size_t ranks) {
  return checkout_route(entry_route_, ranks, entry_route_cap_);
}

std::vector<std::vector<VecEntry>>& DistWorkspace::fused_route(
    std::size_t ranks) {
  return checkout_route(fused_route_, ranks, fused_route_cap_);
}

std::vector<SortRec>& DistWorkspace::sort_scratch() {
  return checkout_cleared(sort_, sort_cap_);
}

std::vector<SortRec>& DistWorkspace::sort_tmp() {
  return checkout_cleared(sort_tmp_, sort_tmp_cap_);
}

std::vector<std::vector<SortRec>>& DistWorkspace::sort_route(
    std::size_t ranks) {
  return checkout_route(sort_route_, ranks, sort_route_cap_);
}

std::vector<index_t>& DistWorkspace::index_scratch(std::size_t n) {
  if (index_.capacity() != index_cap_) {
    ++reallocations_;
    index_cap_ = index_.capacity();
  }
  index_.resize(n);
  if (index_.capacity() != index_cap_) {
    ++reallocations_;
    index_cap_ = index_.capacity();
  }
  return index_;
}

}  // namespace drcm::dist
