#include "dist/workspace.hpp"

namespace drcm::dist {

StampedSlots& DistWorkspace::spa(std::size_t rows) {
  reallocations_ += spa_.begin(rows);
  return spa_;
}

StampedSlots& DistWorkspace::merge_slots(std::size_t n) {
  reallocations_ += merge_slots_.begin(n);
  return merge_slots_;
}

std::vector<MergeCursor>& DistWorkspace::cursors() {
  return checkout_cleared(cursors_, cursors_cap_);
}

std::vector<std::pair<index_t, std::size_t>>& DistWorkspace::heap_storage() {
  return checkout_cleared(heap_, heap_cap_);
}

std::vector<index_t>& DistWorkspace::merge_winners() {
  return checkout_cleared(merge_winners_, merge_winners_cap_);
}

std::vector<VecEntry>& DistWorkspace::frontier_scratch() {
  return checkout_cleared(frontier_, frontier_cap_);
}

std::vector<VecEntry>& DistWorkspace::partial_scratch() {
  return checkout_cleared(partial_, partial_cap_);
}

std::vector<VecEntry>& DistWorkspace::gather_scratch() {
  return checkout_cleared(gather_, gather_cap_);
}

std::vector<VecEntry>& DistWorkspace::recv_scratch() {
  return checkout_cleared(recv_, recv_cap_);
}

std::vector<std::vector<VecEntry>>& DistWorkspace::merge_route(
    std::size_t ranks) {
  return checkout_route(merge_route_, ranks, merge_route_cap_);
}

std::vector<std::vector<VecEntry>>& DistWorkspace::entry_route(
    std::size_t ranks) {
  return checkout_route(entry_route_, ranks, entry_route_cap_);
}

std::vector<std::vector<VecEntry>>& DistWorkspace::fused_route(
    std::size_t ranks) {
  return checkout_route(fused_route_, ranks, fused_route_cap_);
}

std::vector<std::vector<MatEntryV>>& DistWorkspace::mat_route(
    std::size_t ranks) {
  return checkout_route(mat_route_, ranks, mat_route_cap_);
}

std::vector<std::vector<VecEntryD>>& DistWorkspace::vecd_route(
    std::size_t ranks) {
  return checkout_route(vecd_route_, ranks, vecd_route_cap_);
}

std::vector<SortRec>& DistWorkspace::sort_scratch() {
  return checkout_cleared(sort_, sort_cap_);
}

std::vector<SortRec>& DistWorkspace::sort_tmp() {
  return checkout_cleared(sort_tmp_, sort_tmp_cap_);
}

std::vector<std::vector<SortRec>>& DistWorkspace::sort_route(
    std::size_t ranks) {
  return checkout_route(sort_route_, ranks, sort_route_cap_);
}

std::vector<SortHistCell>& DistWorkspace::hist_cells() {
  return checkout_cleared(hist_cells_, hist_cells_cap_);
}

std::vector<SortHistCell>& DistWorkspace::hist_all() {
  return checkout_cleared(hist_all_, hist_all_cap_);
}

std::vector<index_t>& DistWorkspace::carry_words() {
  return checkout_cleared(carry_words_, carry_words_cap_);
}

std::vector<index_t>& DistWorkspace::carry_words_all() {
  return checkout_cleared(carry_words_all_, carry_words_all_cap_);
}

std::vector<SortHistCell>& DistWorkspace::hist_table() {
  return checkout_cleared(hist_table_, hist_table_cap_);
}

std::vector<SortHistCell>& DistWorkspace::hist_shadow() {
  return checkout_cleared(hist_shadow_, hist_shadow_cap_);
}

std::vector<SortRec>& DistWorkspace::hist_recs() {
  return checkout_cleared(hist_recs_, hist_recs_cap_);
}

std::vector<index_t>& DistWorkspace::hist_start() {
  return checkout_cleared(hist_start_, hist_start_cap_);
}

std::vector<index_t>& DistWorkspace::entry_cell() {
  return checkout_cleared(entry_cell_, entry_cell_cap_);
}

std::vector<index_t>& DistWorkspace::my_starts() {
  return checkout_cleared(my_starts_, my_starts_cap_);
}

std::vector<SortRec>& DistWorkspace::sort_recv_scratch() {
  return checkout_cleared(sort_recv_, sort_recv_cap_);
}

std::vector<VecEntry>& DistWorkspace::rank_recv_scratch() {
  return checkout_cleared(rank_recv_, rank_recv_cap_);
}

std::span<StampedSlots> DistWorkspace::thread_spas(std::size_t threads,
                                                   std::size_t rows) {
  if (thread_spas_.size() < threads) {
    thread_spas_.resize(threads);
    ++reallocations_;
  }
  for (std::size_t t = 0; t < threads; ++t) {
    reallocations_ += thread_spas_[t].begin(rows);
  }
  return {thread_spas_.data(), threads};
}

std::span<ThreadStripe> DistWorkspace::thread_stripes(std::size_t threads) {
  if (thread_stripes_.size() < threads) {
    thread_stripes_.resize(threads);
    thread_stripe_caps_.resize(threads, 0);
    ++reallocations_;
  }
  for (std::size_t t = 0; t < threads; ++t) {
    auto& s = thread_stripes_[t];
    const std::size_t cap = s.cursors.capacity() + s.heap.capacity() +
                            s.emit.capacity() + s.touched.capacity() +
                            s.gather.capacity();
    if (cap != thread_stripe_caps_[t]) {
      ++reallocations_;
      thread_stripe_caps_[t] = cap;
    }
    s.cursors.clear();
    s.heap.clear();
    s.emit.clear();
    s.touched.clear();
    s.gather.clear();
  }
  return {thread_stripes_.data(), threads};
}

std::vector<index_t>& DistWorkspace::index_scratch(std::size_t n) {
  if (index_.capacity() != index_cap_) {
    ++reallocations_;
    index_cap_ = index_.capacity();
  }
  index_.resize(n);
  if (index_.capacity() != index_cap_) {
    ++reallocations_;
    index_cap_ = index_.capacity();
  }
  return index_;
}

std::vector<index_t>& DistWorkspace::counters(std::size_t bins) {
  if (counters_.capacity() != counters_cap_) {
    ++reallocations_;
    counters_cap_ = counters_.capacity();
  }
  counters_.assign(bins, 0);
  if (counters_.capacity() != counters_cap_) {
    ++reallocations_;
    counters_cap_ = counters_.capacity();
  }
  return counters_;
}

}  // namespace drcm::dist
