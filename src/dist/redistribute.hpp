// Permutation-driven re-owning: apply a relabeling to distributed data
// without ever gathering it — the paper's conclusion pipeline ("the matrix
// can be permuted in place in parallel").
//
// Every entry knows its destination arithmetically (the owner maps of
// VectorDist / the block map of DistSpMat), so one alltoallv moves
// everything and a local rebuild restores the invariants.
#pragma once

#include <vector>

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "dist/row_block.hpp"

namespace drcm::dist {

/// Returns the distributed matrix B with B(labels[i], labels[j]) = A(i, j):
/// the 2D-partitioned equivalent of sparse::permute_symmetric. `labels` is
/// the replicated new-index-of vector (size n). When `a` carries values
/// they ride the same alltoallv as their coordinates and arrive in lockstep
/// with the rebuilt pattern. Collective.
DistSpMat redistribute_permuted(const DistSpMat& a,
                                const std::vector<index_t>& labels,
                                ProcGrid2D& grid);

/// 2D -> 1D re-owning: converts a 2D-partitioned matrix (values required)
/// into the PETSc-style contiguous row blocks dist_pcg consumes — rank r of
/// `world` receives global rows [r*n/p, (r+1)*n/p) as a local CSR slab.
/// One alltoallv (every entry knows its destination arithmetically from its
/// global row), then a local sort/rebuild; no rank ever holds more than its
/// own slab. Collective on `world`, which must be the grid's world
/// communicator (all p = q*q ranks).
RowBlockCsr to_row_blocks(const DistSpMat& a, mps::Comm& world);

/// Same for a dense vector: out[labels[g]] = v[g], re-owned accordingly.
/// Collective.
DistDenseVec redistribute_permuted(const DistDenseVec& v,
                                   const std::vector<index_t>& labels,
                                   ProcGrid2D& grid);

/// double overload: the distributed rhs/solution permuted in place.
DistDenseVecD redistribute_permuted(const DistDenseVecD& v,
                                    const std::vector<index_t>& labels,
                                    ProcGrid2D& grid);

/// Result of the fused permute + re-own streaming redistribution.
struct OneShotRowBlocks {
  RowBlockCsr block;
  /// max |labels[r] - labels[c]| over all entries — the permuted bandwidth,
  /// folded into the routing loop so no second pass over the entries (and
  /// no permuted-2D intermediate to take it from) is needed.
  index_t bandwidth = 0;
};

/// One-shot streaming redistribution, fusing redistribute_permuted and
/// to_row_blocks: this rank streams the entries of its balanced-2D block of
/// `a` (rows and columns restricted to its grid chunk) as relabeled
/// (row, col, value) triples routed straight to the 1D owner of each NEW
/// row — ONE alltoallv where the two-hop path pays two, and no permuted-2D
/// intermediate, whose q diagonal blocks concentrate Θ(nnz/q) of the banded
/// output, ever exists. The input block is consumed as a coordinate stream
/// (3 nnz/p words, no O(n/q) column pointer), so the whole step stays
/// O(nnz/p + n/p) resident per rank. The receive path re-sorts wholesale by
/// (row, col) — unique keys under a bijective relabeling — so the block is
/// bit-identical to the two-hop result. Collective on the grid's world.
OneShotRowBlocks redistribute_to_row_blocks(const sparse::CsrMatrix& a,
                                            const std::vector<index_t>& labels,
                                            ProcGrid2D& grid);

/// Sharded-label one-shot: same contract as above, but `labels` is the
/// O(n/p)-per-rank distributed label vector (new-index-of, original
/// numbering) instead of a replicated copy — the last O(n) replicated
/// structure gone. The relabel becomes a two-sided lookup: each rank first
/// receives the label windows its matrix chunks need (row window [chunk
/// row], column window [chunk col], both O(n/q)) through ONE extra
/// arithmetically-routed alltoallv, then streams exactly as the replicated
/// path. Produces a bit-identical OneShotRowBlocks. Collective on the
/// grid's world; 6 barrier crossings where the replicated path pays 4.
OneShotRowBlocks redistribute_to_row_blocks(const sparse::CsrMatrix& a,
                                            const DistDenseVec& labels,
                                            ProcGrid2D& grid);

/// One-shot vector arm: routes each owned element g of the 2D-distributed
/// vector to the 1D row-block owner of labels[g] in one alltoallv and
/// returns this rank's solver slab (slab[labels[g] - lo] = v[g] for
/// re-owned g). The rhs thus goes fixture -> O(n/p) 2D slab -> O(n/p) 1D
/// slab without any rank ever holding a replicated copy. Collective on
/// `world`, the grid's world communicator. When `ws` is non-null the send
/// staging checks out of the workspace, so repeat solves with the same
/// shape run the exchange without reallocating.
std::vector<double> redistribute_to_row_slab(const DistDenseVecD& v,
                                             const std::vector<index_t>& labels,
                                             mps::Comm& world,
                                             DistWorkspace* ws = nullptr);

/// Sharded-label vector arm: `labels` shares the vector's distribution, so
/// the lookup labels[g] is a purely LOCAL slab read — no extra collective;
/// the sharded rhs path costs the same single alltoallv as the replicated
/// one. Bit-identical slab. Collective on `world`.
std::vector<double> redistribute_to_row_slab(const DistDenseVecD& v,
                                             const DistDenseVec& labels,
                                             mps::Comm& world,
                                             DistWorkspace* ws = nullptr);

}  // namespace drcm::dist
