// Permutation-driven re-owning: apply a relabeling to distributed data
// without ever gathering it — the paper's conclusion pipeline ("the matrix
// can be permuted in place in parallel").
//
// Every entry knows its destination arithmetically (the owner maps of
// VectorDist / the block map of DistSpMat), so one alltoallv moves
// everything and a local rebuild restores the invariants.
#pragma once

#include <vector>

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"

namespace drcm::dist {

/// Returns the distributed matrix B with B(labels[i], labels[j]) = A(i, j):
/// the 2D-partitioned equivalent of sparse::permute_symmetric. `labels` is
/// the replicated new-index-of vector (size n). Collective.
DistSpMat redistribute_permuted(const DistSpMat& a,
                                const std::vector<index_t>& labels,
                                ProcGrid2D& grid);

/// Same for a dense vector: out[labels[g]] = v[g], re-owned accordingly.
/// Collective.
DistDenseVec redistribute_permuted(const DistDenseVec& v,
                                   const std::vector<index_t>& labels,
                                   ProcGrid2D& grid);

}  // namespace drcm::dist
