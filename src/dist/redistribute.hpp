// Permutation-driven re-owning: apply a relabeling to distributed data
// without ever gathering it — the paper's conclusion pipeline ("the matrix
// can be permuted in place in parallel").
//
// Every entry knows its destination arithmetically (the owner maps of
// VectorDist / the block map of DistSpMat), so one alltoallv moves
// everything and a local rebuild restores the invariants.
#pragma once

#include <vector>

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "dist/row_block.hpp"

namespace drcm::dist {

/// Returns the distributed matrix B with B(labels[i], labels[j]) = A(i, j):
/// the 2D-partitioned equivalent of sparse::permute_symmetric. `labels` is
/// the replicated new-index-of vector (size n). When `a` carries values
/// they ride the same alltoallv as their coordinates and arrive in lockstep
/// with the rebuilt pattern. Collective.
DistSpMat redistribute_permuted(const DistSpMat& a,
                                const std::vector<index_t>& labels,
                                ProcGrid2D& grid);

/// 2D -> 1D re-owning: converts a 2D-partitioned matrix (values required)
/// into the PETSc-style contiguous row blocks dist_pcg consumes — rank r of
/// `world` receives global rows [r*n/p, (r+1)*n/p) as a local CSR slab.
/// One alltoallv (every entry knows its destination arithmetically from its
/// global row), then a local sort/rebuild; no rank ever holds more than its
/// own slab. Collective on `world`, which must be the grid's world
/// communicator (all p = q*q ranks).
RowBlockCsr to_row_blocks(const DistSpMat& a, mps::Comm& world);

/// Same for a dense vector: out[labels[g]] = v[g], re-owned accordingly.
/// Collective.
DistDenseVec redistribute_permuted(const DistDenseVec& v,
                                   const std::vector<index_t>& labels,
                                   ProcGrid2D& grid);

}  // namespace drcm::dist
