#include "dist/primitives.hpp"

namespace drcm::dist {

namespace {

void check_aligned(const VectorDist& a, const VectorDist& b) {
  DRCM_CHECK(a == b, "primitive operands must share one distribution");
}

/// (key, index) pair ordered by key then index; index == kNoVertex marks
/// an empty contribution. A plain struct (std::pair is not trivially
/// copyable, which the collectives require).
struct ArgMin {
  index_t key;
  index_t idx;
};

ArgMin combine_argmin(const ArgMin& a, const ArgMin& b) {
  if (a.idx == kNoVertex) return b;
  if (b.idx == kNoVertex) return a;
  if (a.key != b.key) return a.key < b.key ? a : b;
  return a.idx <= b.idx ? a : b;
}

}  // namespace

void gather_from_dense(DistSpVec& sp, const DistDenseVec& dense,
                       mps::Comm& world) {
  check_aligned(sp.dist(), dense.dist());
  auto entries = sp.entries();
  for (auto& e : entries) e.val = dense.get(e.idx);
  world.charge_compute(static_cast<double>(entries.size()));
  sp.assign(std::move(entries));
}

void scatter_into_dense(DistDenseVec& dense, const DistSpVec& sp,
                        mps::Comm& world) {
  check_aligned(sp.dist(), dense.dist());
  for (const auto& e : sp.entries()) dense.set(e.idx, e.val);
  world.charge_compute(static_cast<double>(sp.entries().size()));
}

DistSpVec select_where_equals(const DistSpVec& sp, const DistDenseVec& dense,
                              index_t value, mps::Comm& world) {
  check_aligned(sp.dist(), dense.dist());
  std::vector<VecEntry> kept;
  for (const auto& e : sp.entries()) {
    if (dense.get(e.idx) == value) kept.push_back(e);
  }
  world.charge_compute(static_cast<double>(sp.entries().size()));
  return sp.sibling(std::move(kept));
}

void add_scalar(DistSpVec& sp, index_t s, mps::Comm& world) {
  auto entries = sp.entries();
  for (auto& e : entries) e.val += s;
  world.charge_compute(static_cast<double>(entries.size()));
  sp.assign(std::move(entries));
}

std::pair<index_t, index_t> reduce_argmin(const DistSpVec& sp,
                                          const DistDenseVec& key,
                                          mps::Comm& world) {
  check_aligned(sp.dist(), key.dist());
  ArgMin best{kNoVertex, kNoVertex};
  for (const auto& e : sp.entries()) {
    best = combine_argmin(best, ArgMin{key.get(e.idx), e.idx});
  }
  world.charge_compute(static_cast<double>(sp.entries().size()));
  best = world.allreduce(best, combine_argmin);
  return {best.key, best.idx};
}

std::pair<index_t, index_t> argmin_unvisited(const DistDenseVec& visited,
                                             const DistDenseVec& key,
                                             mps::Comm& world) {
  check_aligned(visited.dist(), key.dist());
  ArgMin best{kNoVertex, kNoVertex};
  for (index_t g = visited.lo(); g < visited.hi(); ++g) {
    if (visited.get(g) == kNoVertex) {
      best = combine_argmin(best, ArgMin{key.get(g), g});
    }
  }
  world.charge_compute(static_cast<double>(visited.local_size()));
  best = world.allreduce(best, combine_argmin);
  return {best.key, best.idx};
}

}  // namespace drcm::dist
