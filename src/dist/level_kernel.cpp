#include "dist/level_kernel.hpp"

#include "dist/primitives.hpp"

namespace drcm::dist {

LevelStepResult bfs_level_step(const DistSpMat& a, const DistSpVec& frontier,
                               const DistDenseVec& dense,
                               index_t keep_sentinel, ProcGrid2D& grid,
                               mps::Phase spmspv_phase, mps::Phase other_phase,
                               SpmspvAccumulator acc, DistWorkspace* ws) {
  DRCM_CHECK(frontier.dist() == a.vec_dist(),
             "frontier distribution does not match the matrix");
  DRCM_CHECK(dense.dist() == a.vec_dist(),
             "dense vector distribution does not match the matrix");
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();
  const auto& dist = a.vec_dist();
  const int p = world.size();

  LevelStepResult res;
  mps::PhaseScope scope(world, spmspv_phase);

  // SET fused into publish-buffer construction: the outgoing frontier
  // carries dense[idx] as its value (the parent's level/label). The buffer
  // stays untouched through the whole collective — peers read it until the
  // second crossing.
  auto& outgoing = w.frontier_scratch();
  {
    const auto prev = world.set_phase(other_phase);
    for (const auto& e : frontier.entries()) {
      outgoing.push_back(VecEntry{e.idx, dense.get(e.idx)});
    }
    world.charge_compute(static_cast<double>(outgoing.size()));
    world.set_phase(prev);
  }

  std::vector<VecEntry> kept;
  res.global_nnz = static_cast<index_t>(world.fused_gather_route_count(
      grid.col_world_ranks(), std::span<const VecEntry>(outgoing),
      w.gather_scratch(), w.fused_route(static_cast<std::size_t>(p)),
      w.recv_scratch(),
      [&](const std::vector<VecEntry>& gathered,
          std::vector<std::vector<VecEntry>>& route) {
        // Stage 2: local block multiply into per-row partial minima, then
        // route each partial straight to the owner of its element — the
        // step that replaces the row-merge alltoallv + transpose pairwise
        // exchange of the unfused kernel.
        double work = 0;
        const auto& partial =
            spmspv_local_multiply(a, gathered, acc, w, &work, &res.used);
        for (const auto& e : partial) {
          route[static_cast<std::size_t>(dist.owner_rank(e.idx))].push_back(e);
        }
        world.charge_compute(work + static_cast<double>(partial.size()));
      },
      [&](const std::vector<VecEntry>& received) -> std::int64_t {
        // Owner merge: min-combine the ≤ q partial lists over my owned
        // range with the stamped slot array...
        const index_t lo = dense.lo();
        const index_t hi = dense.hi();
        auto& slots = w.merge_slots(static_cast<std::size_t>(hi - lo));
        for (const auto& e : received) {
          DRCM_DCHECK(e.idx >= lo && e.idx < hi,
                      "partial routed to non-owner");
          slots.put_min(static_cast<std::size_t>(e.idx - lo), e.val);
        }
        world.charge_compute(static_cast<double>(received.size()));
        // ...then SELECT right here, where the dense vector lives: emit
        // (ascending by construction) only the still-unvisited elements.
        const auto prev = world.set_phase(other_phase);
        for (index_t g = lo; g < hi; ++g) {
          const auto s = static_cast<std::size_t>(g - lo);
          if (slots.live(s) && dense.get(g) == keep_sentinel) {
            kept.push_back(VecEntry{g, slots.val[s]});
          }
        }
        world.charge_compute(kScanUnit * static_cast<double>(hi - lo) +
                             static_cast<double>(kept.size()));
        world.set_phase(prev);
        return static_cast<std::int64_t>(kept.size());
      }));

  res.next = frontier.sibling(std::move(kept));
  return res;
}

LevelStepResult bfs_level_step_unfused(
    const DistSpMat& a, const DistSpVec& frontier, const DistDenseVec& dense,
    index_t keep_sentinel, ProcGrid2D& grid, mps::Phase spmspv_phase,
    mps::Phase other_phase, SpmspvAccumulator acc, DistWorkspace* ws) {
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();

  LevelStepResult res;
  DistSpVec cur = frontier;
  {
    mps::PhaseScope scope(world, other_phase);
    gather_from_dense(cur, dense, world);
  }
  DistSpVec expanded;
  {
    mps::PhaseScope scope(world, spmspv_phase);
    expanded = spmspv_select2nd_min(a, cur, grid, acc, &w, &res.used);
  }
  {
    mps::PhaseScope scope(world, other_phase);
    res.next = select_where_equals(expanded, dense, keep_sentinel, world);
    res.global_nnz = res.next.global_nnz(world);
  }
  return res;
}

}  // namespace drcm::dist
