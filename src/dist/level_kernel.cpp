#include "dist/level_kernel.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "dist/primitives.hpp"
#include "dist/sortperm.hpp"

namespace drcm::dist {

namespace {

/// SET fused into publish-buffer construction: the outgoing frontier
/// carries dense[idx] as its value (the parent's level/label). The buffer
/// stays untouched through the whole collective — peers read it until the
/// second crossing. Shared by the BFS and ordering level kernels.
std::vector<VecEntry>& publish_set(const DistSpVec& frontier,
                                   const DistDenseVec& dense,
                                   mps::Comm& world, mps::Phase other_phase,
                                   DistWorkspace& w) {
  auto& outgoing = w.frontier_scratch();
  const auto prev = world.set_phase(other_phase);
  for (const auto& e : frontier.entries()) {
    outgoing.push_back(VecEntry{e.idx, dense.get(e.idx)});
  }
  world.charge_compute(static_cast<double>(outgoing.size()));
  world.set_phase(prev);
  return outgoing;
}

/// Stage 2: local block multiply into per-row partial minima, then route
/// each partial straight to the owner of its element — the step that
/// replaces the row-merge alltoallv + transpose pairwise exchange of the
/// unfused kernel.
void route_partials(const DistSpMat& a, const std::vector<VecEntry>& gathered,
                    std::vector<std::vector<VecEntry>>& route,
                    SpmspvAccumulator acc, mps::Comm& world, DistWorkspace& w,
                    SpmspvAccumulator* used) {
  double work = 0;
  const auto& partial = spmspv_local_multiply(a, gathered, acc, w, &work, used,
                                              world.threads());
  const auto& dist = a.vec_dist();
  for (const auto& e : partial) {
    route[static_cast<std::size_t>(dist.owner_rank(e.idx))].push_back(e);
  }
  world.charge_compute(work + static_cast<double>(partial.size()));
}

/// Owner merge: min-combine the ≤ q partial lists over my owned range with
/// the stamped slot array, then SELECT right here, where the dense vector
/// lives: append (ascending by construction) only the elements whose dense
/// value equals `keep_sentinel` to `kept`.
void merge_and_select(const std::vector<VecEntry>& received,
                      const DistDenseVec& dense, index_t keep_sentinel,
                      mps::Comm& world, mps::Phase other_phase,
                      DistWorkspace& w, std::vector<VecEntry>& kept) {
  const index_t lo = dense.lo();
  const index_t hi = dense.hi();
  auto& slots = w.merge_slots(static_cast<std::size_t>(hi - lo));
  for (const auto& e : received) {
    // Receive-path range check (always on): the entries arrived over the
    // wire, so a corrupted index must stop here as a CheckError, not as an
    // out-of-bounds slot write.
    DRCM_CHECK(e.idx >= lo && e.idx < hi, "partial routed to non-owner");
    slots.put_min(static_cast<std::size_t>(e.idx - lo), e.val);
  }
  world.charge_compute(static_cast<double>(received.size()));
  const auto prev = world.set_phase(other_phase);
  for (index_t g = lo; g < hi; ++g) {
    const auto s = static_cast<std::size_t>(g - lo);
    if (slots.live(s) && dense.get(g) == keep_sentinel) {
      kept.push_back(VecEntry{g, slots.val[s]});
    }
  }
  world.charge_compute(kScanUnit * static_cast<double>(hi - lo) +
                       static_cast<double>(kept.size()));
  world.set_phase(prev);
}

}  // namespace

LevelStepResult bfs_level_step(const DistSpMat& a, const DistSpVec& frontier,
                               const DistDenseVec& dense,
                               index_t keep_sentinel, ProcGrid2D& grid,
                               mps::Phase spmspv_phase, mps::Phase other_phase,
                               SpmspvAccumulator acc, DistWorkspace* ws) {
  DRCM_CHECK(frontier.dist() == a.vec_dist(),
             "frontier distribution does not match the matrix");
  DRCM_CHECK(dense.dist() == a.vec_dist(),
             "dense vector distribution does not match the matrix");
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();
  const int p = world.size();

  LevelStepResult res;
  mps::PhaseScope scope(world, spmspv_phase);

  auto& outgoing = publish_set(frontier, dense, world, other_phase, w);

  std::vector<VecEntry> kept;
  res.global_nnz = static_cast<index_t>(world.fused_gather_route_count(
      grid.col_world_ranks(), std::span<const VecEntry>(outgoing),
      w.gather_scratch(), w.fused_route(static_cast<std::size_t>(p)),
      w.recv_scratch(),
      [&](const std::vector<VecEntry>& gathered,
          std::vector<std::vector<VecEntry>>& route) {
        route_partials(a, gathered, route, acc, world, w, &res.used);
      },
      [&](const std::vector<VecEntry>& received) -> std::int64_t {
        merge_and_select(received, dense, keep_sentinel, world, other_phase,
                         w, kept);
        return static_cast<std::int64_t>(kept.size());
      }));

  res.next = frontier.sibling(std::move(kept));
  return res;
}

LevelStepResult bfs_level_step_unfused(
    const DistSpMat& a, const DistSpVec& frontier, const DistDenseVec& dense,
    index_t keep_sentinel, ProcGrid2D& grid, mps::Phase spmspv_phase,
    mps::Phase other_phase, SpmspvAccumulator acc, DistWorkspace* ws) {
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();

  LevelStepResult res;
  DistSpVec cur = frontier;
  {
    mps::PhaseScope scope(world, other_phase);
    gather_from_dense(cur, dense, world);
  }
  DistSpVec expanded;
  {
    mps::PhaseScope scope(world, spmspv_phase);
    expanded = spmspv_select2nd_min(a, cur, grid, acc, &w, &res.used);
  }
  {
    mps::PhaseScope scope(world, other_phase);
    res.next = select_where_equals(expanded, dense, keep_sentinel, world);
    res.global_nnz = res.next.global_nnz(world);
  }
  return res;
}

CmLevelResult cm_level_step(const DistSpMat& a, const DistSpVec& frontier,
                            DistDenseVec& labels, const DistDenseVec& degrees,
                            index_t label_lo, index_t label_hi,
                            index_t next_label, ProcGrid2D& grid,
                            mps::Phase spmspv_phase, mps::Phase sort_phase,
                            mps::Phase other_phase, SpmspvAccumulator acc,
                            DistWorkspace* ws) {
  DRCM_CHECK(frontier.dist() == a.vec_dist(),
             "frontier distribution does not match the matrix");
  DRCM_CHECK(labels.dist() == a.vec_dist(),
             "label vector distribution does not match the matrix");
  DRCM_CHECK(degrees.dist() == a.vec_dist(),
             "degree vector distribution does not match the matrix");
  DRCM_CHECK(label_hi > label_lo, "empty parent label range");
  auto& world = grid.world();
  DistWorkspace& w = ws ? *ws : grid.workspace();
  const auto& dist = a.vec_dist();
  const int p = world.size();
  const int q = grid.q();
  const index_t nb = label_hi - label_lo;
  const index_t my_block = block_index(grid.row(), grid.col(), q);

  CmLevelResult res;
  // Measured-wall attribution: a single PhaseScope would land EVERY second
  // of this fused collective — including the SORTPERM plan, deal and worker
  // sort — on the SpMSpV ledger (the modeled split was always exact; the
  // measured one was not, and fig4's breakdown reports the measured split).
  // Instead, sample a timer around each sort-side callback section and
  // split the total at the end.
  WallTimer level_timer;
  double sort_wall = 0.0;
  const mps::Phase prev_phase = world.set_phase(spmspv_phase);

  // SET fused into publish-buffer construction, exactly as in
  // bfs_level_step: the outgoing frontier carries labels[idx] (the parent's
  // Cuthill-McKee label) as its value.
  auto& outgoing = publish_set(frontier, labels, world, other_phase, w);

  std::vector<VecEntry> kept;
  auto& entry_cell = w.entry_cell();
  auto& hist = w.hist_cells();
  SortPlan plan;
  std::size_t my_cells = 0;
  res.global_nnz = static_cast<index_t>(
      world.fused_order_level<VecEntry, SortRec, index_t>(
          grid.col_world_ranks(), std::span<const VecEntry>(outgoing),
          w.gather_scratch(), w.fused_route(static_cast<std::size_t>(p)),
          w.recv_scratch(), w.carry_words(), w.carry_words_all(),
          w.sort_route(static_cast<std::size_t>(p)), w.sort_recv_scratch(),
          w.entry_route(static_cast<std::size_t>(p)), w.rank_recv_scratch(),
          [&](const std::vector<VecEntry>& gathered,
              std::vector<std::vector<VecEntry>>& route) {
            route_partials(a, gathered, route, acc, world, w, &res.used);
          },
          [&](const std::vector<VecEntry>& received,
              std::vector<index_t>& carry) -> std::int64_t {
            merge_and_select(received, labels, kNoVertex, world, other_phase,
                             w, kept);
            // The SORTPERM bucket histogram of the kept level rides the
            // count superstep as the carried payload — two-level packed
            // (sortperm_pack_cells), so a degree-diverse level carries ~1
            // word per cell instead of 4 and the allgathered volume stays
            // below the element deal instead of approaching 4x above it.
            const auto prev = world.set_phase(sort_phase);
            const WallTimer sort_timer;
            sortperm_local_hist(std::span<const VecEntry>(kept), degrees,
                                label_lo, label_hi, my_block, w, hist,
                                entry_cell);
            sortperm_pack_cells(std::span<const SortHistCell>(hist), my_block,
                                carry);
            my_cells = hist.size();
            world.charge_compute(
                static_cast<double>(2 * kept.size() + carry.size()));
            sort_wall += sort_timer.seconds();
            world.set_phase(prev);
            return static_cast<std::int64_t>(kept.size());
          },
          [&](std::int64_t total, const std::vector<index_t>& carry_all,
              std::vector<std::vector<SortRec>>& deal) {
            // Crossings 4-5 and the sort-side volume belong to the
            // Ordering:Sort ledger from here on. Deal every kept element
            // to its own position's worker: the cursor in `mine` hands out
            // cell start + within-cell ordinal (exact final positions), so
            // the worker stripes are the balanced partition of [0, total).
            world.set_phase(sort_phase);
            const WallTimer sort_timer;
            auto& cells = w.hist_all();
            sortperm_unpack_cells(std::span<const index_t>(carry_all), cells);
            plan = sortperm_plan(std::span<const SortHistCell>(cells), p, nb,
                                 a.n(), w);
            DRCM_CHECK(plan.total == static_cast<index_t>(total),
                       "histogram total disagrees with the level count");
            auto& mine = w.my_starts();
            sortperm_my_starts(plan, my_block, mine);
            DRCM_CHECK(mine.size() == my_cells, "plan misses local cells");
            sortperm_deal(std::span<const VecEntry>(kept), degrees, label_lo,
                          std::span<const index_t>(entry_cell), mine,
                          plan.total, p, deal);
            world.charge_compute(static_cast<double>(4 * cells.size()) +
                                 static_cast<double>(kept.size() + nb) +
                                 static_cast<double>(carry_all.size()));
            sort_wall += sort_timer.seconds();
          },
          [&](const std::vector<SortRec>& dealt,
              std::span<const std::uint64_t> counts,
              std::vector<std::vector<VecEntry>>& back) {
            // Worker side: the shared sort tail brings the dealt elements
            // to (bucket, degree, idx) — position — order, so my t-th
            // element's label is next_label + stripe_lo + t.
            const WallTimer sort_timer;
            index_t stripe_lo = 0;
            auto& arr = sortperm_worker_sort(std::span<const SortRec>(dealt),
                                             counts, q, plan.total, nb, a.n(),
                                             world, w, &stripe_lo);
            for (std::size_t t = 0; t < arr.size(); ++t) {
              back[static_cast<std::size_t>(dist.owner_rank(arr[t].idx))]
                  .push_back(VecEntry{
                      arr[t].idx,
                      next_label + stripe_lo + static_cast<index_t>(t)});
            }
            world.charge_compute(static_cast<double>(arr.size()));
            sort_wall += sort_timer.seconds();
          },
          [&](const std::vector<VecEntry>& ranked) {
            // SET(R, Rnext): every kept element receives exactly one label.
            DRCM_CHECK(ranked.size() == kept.size(),
                       "every level element must receive exactly one label");
            const auto prev = world.set_phase(other_phase);
            for (const auto& e : ranked) {
              DRCM_CHECK(labels.owns(e.idx), "label routed to non-owner");
              labels.set(e.idx, e.val);
            }
            world.charge_compute(static_cast<double>(ranked.size()));
            world.set_phase(prev);
          }));

  // Callbacks may have left the phase on the sort bucket; restore it, then
  // split the measured wall: the sampled SORTPERM seconds go to the sort
  // ledger, the rest of the collective to SpMSpV.
  world.set_phase(spmspv_phase);
  world.set_phase(prev_phase);
  const double total_wall = level_timer.seconds();
  world.stats().add_wall(sort_phase, sort_wall);
  world.stats().add_wall(spmspv_phase, std::max(0.0, total_wall - sort_wall));
  res.next = frontier.sibling(std::move(kept));
  return res;
}

CmLevelResult cm_level_step_unfused(
    const DistSpMat& a, const DistSpVec& frontier, DistDenseVec& labels,
    const DistDenseVec& degrees, index_t label_lo, index_t label_hi,
    index_t next_label, ProcGrid2D& grid, mps::Phase spmspv_phase,
    mps::Phase sort_phase, mps::Phase other_phase, bool sample_sort,
    SpmspvAccumulator acc, DistWorkspace* ws) {
  auto& world = grid.world();

  CmLevelResult res;
  auto step = bfs_level_step(a, frontier, labels, kNoVertex, grid,
                             spmspv_phase, other_phase, acc, ws);
  res.next = std::move(step.next);
  res.global_nnz = step.global_nnz;
  res.used = step.used;
  if (res.global_nnz == 0) return res;

  // Rnext <- SORTPERM(Lnext, D) + next_label.
  DistSpVec ranks;
  {
    mps::PhaseScope scope(world, sort_phase);
    ranks = sample_sort
                ? sortperm_sample(res.next, degrees, grid, ws)
                : sortperm_bucket(res.next, degrees, label_lo, label_hi,
                                  grid, ws);
    add_scalar(ranks, next_label, world);
  }
  // R <- SET(R, Rnext).
  {
    mps::PhaseScope scope(world, other_phase);
    scatter_into_dense(labels, ranks, world);
  }
  return res;
}

DistSpVec frontier_from_label_range(const DistDenseVec& labels,
                                    index_t label_lo, index_t label_hi,
                                    ProcGrid2D& grid,
                                    mps::Phase other_phase) {
  auto& world = grid.world();
  mps::PhaseScope scope(world, other_phase);
  std::vector<VecEntry> entries;
  for (index_t g = labels.lo(); g < labels.hi(); ++g) {
    const index_t l = labels.get(g);
    if (l >= label_lo && l < label_hi) entries.push_back(VecEntry{g, l});
  }
  world.charge_compute(static_cast<double>(labels.local_size()));
  DistSpVec out(labels.dist(), grid);
  out.assign(std::move(entries));
  return out;
}

}  // namespace drcm::dist
