// Symmetric permutation of matrices and permutation-vector utilities.
//
// Two complementary representations are used throughout the library:
//  * `labels`   — labels[old_vertex] = new_index   (the paper's R vector)
//  * `ordering` — ordering[new_index] = old_vertex (the sequence w1..wn)
// They are inverses of one another.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::sparse {

/// True iff `p` is a bijection on [0, n).
bool is_valid_permutation(std::span<const index_t> p);

/// Inverse permutation: converts labels <-> ordering.
std::vector<index_t> inverse_permutation(std::span<const index_t> p);

/// Identity permutation of length n.
std::vector<index_t> identity_permutation(index_t n);

/// Uniformly random permutation (deterministic per seed).
std::vector<index_t> random_permutation(index_t n, u64 seed);

/// Forms B = P A P^T where labels[v] is v's new index: entry (i, j) of A
/// becomes entry (labels[i], labels[j]) of B. Values, when present, travel
/// with their entries.
CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const index_t> labels);

}  // namespace drcm::sparse
