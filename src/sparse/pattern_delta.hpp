// Symmetric pattern deltas: the near-miss workload of incremental repair.
//
// The serving layer's repair path (PR 9) targets streams where a matrix
// re-arrives with a handful of edges added or removed — a remeshed patch,
// a contact pair opening, a circuit element switched. These helpers
// produce such deltas deterministically for tests and benches: a
// `PatternDelta` is a set of undirected edges to add plus a set to
// remove, and `apply_pattern_delta` yields the perturbed pattern with the
// same symmetry/sortedness invariants CsrMatrix enforces.
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::sparse {

/// An undirected edge set to add and one to remove, each stored once as
/// (min, max) endpoint pairs. Applying keeps the pattern symmetric.
struct PatternDelta {
  std::vector<std::pair<index_t, index_t>> add;
  std::vector<std::pair<index_t, index_t>> remove;

  std::size_t size() const { return add.size() + remove.size(); }
};

/// Returns `a`'s pattern with the delta applied (pattern-only CSR, values
/// dropped). DRCM_CHECKs the delta is well-formed: no self loops, no
/// duplicate edges within the delta, every `add` edge absent from `a`,
/// every `remove` edge present in `a`.
CsrMatrix apply_pattern_delta(const CsrMatrix& a, const PatternDelta& d);

/// Deterministically samples a delta against `a`: `n_add` distinct
/// non-edges and `n_remove` distinct existing edges, all with BOTH
/// endpoints in [row_lo, row_hi) (pass row_hi = -1 for "up to n").
/// Restricting the endpoint range lets tests aim the delta at a known
/// region of the cached level structure (deep cone vs near the root).
/// DRCM_CHECKs the requested counts are satisfiable in the range.
PatternDelta random_pattern_delta(const CsrMatrix& a, index_t n_add,
                                  index_t n_remove, u64 seed,
                                  index_t row_lo = 0, index_t row_hi = -1);

}  // namespace drcm::sparse
