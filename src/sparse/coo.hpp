// Coordinate-format builder: the mutable stage every generator and the
// Matrix Market reader assemble into before converting to CSR.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::sparse {

/// Accumulates (row, col, value) triplets and converts to CSR. Duplicate
/// entries are summed (values) / collapsed (pattern).
class CooBuilder {
 public:
  explicit CooBuilder(index_t n);

  index_t n() const { return n_; }
  std::size_t entries() const { return rows_.size(); }

  /// Adds a single (possibly duplicate) entry.
  void add(index_t r, index_t c, double v = 1.0);

  /// Adds (r, c) and, when r != c, also (c, r): keeps patterns symmetric.
  void add_symmetric(index_t r, index_t c, double v = 1.0);

  /// Converts to CSR. `keep_values=false` drops values (pattern-only).
  CsrMatrix to_csr(bool keep_values = true) const;

 private:
  index_t n_;
  std::vector<index_t> rows_;
  std::vector<index_t> cols_;
  std::vector<double> vals_;
};

}  // namespace drcm::sparse
