#include "sparse/pattern_delta.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/rng.hpp"
#include "sparse/coo.hpp"

namespace drcm::sparse {

namespace {

u64 edge_key(index_t u, index_t v) {
  const auto lo = static_cast<u64>(std::min(u, v));
  const auto hi = static_cast<u64>(std::max(u, v));
  return (hi << 32) | lo;
}

}  // namespace

CsrMatrix apply_pattern_delta(const CsrMatrix& a, const PatternDelta& d) {
  const index_t n = a.n();
  std::unordered_set<u64> removed;
  removed.reserve(d.remove.size() * 2);
  std::unordered_set<u64> touched;  // duplicate-edge detection across both sets
  touched.reserve(d.size() * 2);
  for (const auto& [u, v] : d.remove) {
    DRCM_CHECK(u != v, "pattern delta must not touch the diagonal");
    DRCM_CHECK(a.has_entry(u, v), "remove edge must be present in the pattern");
    DRCM_CHECK(touched.insert(edge_key(u, v)).second,
               "pattern delta lists an edge twice");
    removed.insert(edge_key(u, v));
  }

  CooBuilder b(n);
  for (index_t r = 0; r < n; ++r) {
    for (const index_t c : a.row(r)) {
      // Each undirected edge appears twice in the symmetric CSR; emit the
      // (r < c) orientation once and let add_symmetric mirror it.
      if (r < c && removed.count(edge_key(r, c)) == 0) b.add_symmetric(r, c);
    }
  }
  for (const auto& [u, v] : d.add) {
    DRCM_CHECK(u != v, "pattern delta must not touch the diagonal");
    DRCM_CHECK(u >= 0 && u < n && v >= 0 && v < n, "add edge out of range");
    DRCM_CHECK(!a.has_entry(u, v), "add edge must be absent from the pattern");
    DRCM_CHECK(touched.insert(edge_key(u, v)).second,
               "pattern delta lists an edge twice");
    b.add_symmetric(u, v);
  }
  return b.to_csr(false);
}

PatternDelta random_pattern_delta(const CsrMatrix& a, index_t n_add,
                                  index_t n_remove, u64 seed, index_t row_lo,
                                  index_t row_hi) {
  const index_t n = a.n();
  if (row_hi < 0) row_hi = n;
  DRCM_CHECK(0 <= row_lo && row_lo < row_hi && row_hi <= n,
             "delta row range must be a non-empty slice of [0, n)");
  const index_t span = row_hi - row_lo;

  PatternDelta d;
  Rng rng(seed);

  // Removals: collect the in-range edges once, sample without replacement.
  std::vector<std::pair<index_t, index_t>> candidates;
  for (index_t r = row_lo; r < row_hi; ++r) {
    for (const index_t c : a.row(r)) {
      if (r < c && c < row_hi && c >= row_lo) candidates.emplace_back(r, c);
    }
  }
  DRCM_CHECK(static_cast<index_t>(candidates.size()) >= n_remove,
             "not enough in-range edges to remove");
  rng.shuffle(candidates.begin(), candidates.end());
  d.remove.assign(candidates.begin(), candidates.begin() + n_remove);

  // Additions: rejection-sample distinct in-range non-edges. The removed
  // edges stay "present" for rejection purposes so add/remove never alias.
  DRCM_CHECK(span >= 2 || n_add == 0, "range too small to add edges");
  std::unordered_set<u64> chosen;
  chosen.reserve(static_cast<std::size_t>(n_add) * 2);
  while (static_cast<index_t>(d.add.size()) < n_add) {
    const auto u =
        row_lo + static_cast<index_t>(rng.next_below(static_cast<u64>(span)));
    const auto v =
        row_lo + static_cast<index_t>(rng.next_below(static_cast<u64>(span)));
    if (u == v || a.has_entry(u, v)) continue;
    if (!chosen.insert(edge_key(u, v)).second) continue;
    d.add.emplace_back(std::min(u, v), std::max(u, v));
  }
  return d;
}

}  // namespace drcm::sparse
