#include "sparse/metrics.hpp"

#include <algorithm>

namespace drcm::sparse {

std::vector<index_t> row_bandwidths(const CsrMatrix& a) {
  std::vector<index_t> beta(static_cast<std::size_t>(a.n()), 0);
  for (index_t i = 0; i < a.n(); ++i) {
    const auto r = a.row(i);
    if (!r.empty() && r.front() < i) {
      beta[static_cast<std::size_t>(i)] = i - r.front();
    }
  }
  return beta;
}

index_t bandwidth(const CsrMatrix& a) {
  index_t best = 0;
  for (index_t i = 0; i < a.n(); ++i) {
    const auto r = a.row(i);
    if (!r.empty() && r.front() < i) best = std::max(best, i - r.front());
  }
  return best;
}

nnz_t profile(const CsrMatrix& a) {
  nnz_t total = 0;
  for (index_t i = 0; i < a.n(); ++i) {
    const auto r = a.row(i);
    if (!r.empty() && r.front() < i) total += i - r.front();
  }
  return total;
}

namespace {

/// min over neighbors j of labels[j], restricted to labels[j] < labels[i];
/// kNoVertex if none. Shared by the with-labels metrics.
index_t leftmost_label(const CsrMatrix& a, std::span<const index_t> labels,
                       index_t i) {
  const index_t li = labels[static_cast<std::size_t>(i)];
  index_t lo = li;
  for (const index_t j : a.row(i)) {
    lo = std::min(lo, labels[static_cast<std::size_t>(j)]);
  }
  return lo;
}

}  // namespace

index_t bandwidth_with_labels(const CsrMatrix& a,
                              std::span<const index_t> labels) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(a.n()),
             "labels size must match matrix dimension");
  index_t best = 0;
  for (index_t i = 0; i < a.n(); ++i) {
    best = std::max(best,
                    labels[static_cast<std::size_t>(i)] - leftmost_label(a, labels, i));
  }
  return best;
}

nnz_t profile_with_labels(const CsrMatrix& a, std::span<const index_t> labels) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(a.n()),
             "labels size must match matrix dimension");
  nnz_t total = 0;
  for (index_t i = 0; i < a.n(); ++i) {
    total += labels[static_cast<std::size_t>(i)] - leftmost_label(a, labels, i);
  }
  return total;
}

}  // namespace drcm::sparse
