// Synthetic matrix/graph generators.
//
// The paper evaluates on SuiteSparse matrices that are not redistributable
// offline; these generators produce the structural stand-ins documented in
// DESIGN.md §4 (same diameter regime, degree profile, and natural-ordering
// quality as each paper matrix), plus the elementary graphs the test suite
// uses as ground truth. All randomized generators are deterministic per
// seed.
//
// Every generator returns a symmetric, self-loop-free adjacency pattern
// (pattern-only CSR). `with_laplacian_values` turns a pattern into the SPD
// matrix the CG solver consumes.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::sparse::gen {

// --- elementary graphs (test ground truth) ---------------------------------

CsrMatrix path(index_t n);
CsrMatrix cycle(index_t n);
/// Star with center 0 and n-1 leaves.
CsrMatrix star(index_t n);
CsrMatrix complete(index_t n);
/// Spine of `spine` vertices, each with `legs` pendant vertices.
CsrMatrix caterpillar(index_t spine, index_t legs);
/// Block-diagonal union of the given graphs (vertex ids offset in order).
CsrMatrix disjoint_union(const std::vector<CsrMatrix>& parts);
/// n isolated vertices.
CsrMatrix empty_graph(index_t n);

// --- mesh generators (paper's FEM/structural matrices) ---------------------

/// 2D nx-by-ny grid, 5-point stencil. Vertex (x, y) has id x*ny + y.
CsrMatrix grid2d(index_t nx, index_t ny);
/// 2D grid, 9-point stencil (diagonal neighbors too).
CsrMatrix grid2d_9pt(index_t nx, index_t ny);

enum class Stencil3d { k7, k27 };
/// 3D nx-by-ny-by-nz grid. Vertex (x, y, z) has id (x*ny + y)*nz + z.
CsrMatrix grid3d(index_t nx, index_t ny, index_t nz, Stencil3d s = Stencil3d::k7);

// --- random generators (paper's low-diameter matrices) ---------------------

/// Erdos-Renyi-style G(n, m) with m ~ n*avg_degree/2 distinct edges.
CsrMatrix erdos_renyi(index_t n, double avg_degree, u64 seed);

/// Graph500-style R-MAT with 2^scale vertices, symmetrized, deduplicated.
CsrMatrix rmat(int scale, index_t edges_per_vertex, u64 seed, double a = 0.57,
               double b = 0.19, double c = 0.19);

/// Random symmetric pattern confined to |i-j| <= half_bw with the given
/// fill fraction of the band.
CsrMatrix random_banded(index_t n, index_t half_bw, double fill, u64 seed);

/// Random geometric graph: n points uniform in the unit square, edges
/// between pairs within `radius` (grid-bucketed; O(n) for constant average
/// degree). Mesh-like structure without mesh regularity — the classic
/// "unstructured FEM" stand-in.
CsrMatrix random_geometric(index_t n, double radius, u64 seed);

/// Watts-Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta. Formalizes the "mesh plus
/// long-range couplings" regime where RCM degrades gracefully.
CsrMatrix small_world(index_t n, index_t k, double beta, u64 seed);

// --- structural transforms --------------------------------------------------

/// KKT system [H A^T; A 0]: H is the given nh-by-nh pattern; A has
/// `constraints` rows, each coupling `arity` consecutive H-columns starting
/// at a stride-spread offset (nlpkkt-style block structure).
CsrMatrix kkt_system(const CsrMatrix& h, index_t constraints, index_t arity = 3);

/// Relabels vertices by a random permutation: turns a banded "natural"
/// ordering into the scattered ordering typical of application matrices
/// (how thermal2 arrives with bandwidth 1.2M).
CsrMatrix relabel_random(const CsrMatrix& a, u64 seed);

/// Adds ~frac*n random long-range edges: degrades RCM effectiveness the way
/// Serena's coupled reservoir physics does.
CsrMatrix add_random_long_edges(const CsrMatrix& a, double frac, u64 seed);

/// A + A^T pattern union (used to symmetrize directed generators/inputs).
CsrMatrix symmetrize(const CsrMatrix& a);

// --- solver matrices ---------------------------------------------------------

/// SPD matrix on the given adjacency pattern: diagonal added with value
/// degree(i) + shift, off-diagonals -1 (a shifted graph Laplacian; strictly
/// diagonally dominant, hence SPD).
CsrMatrix with_laplacian_values(const CsrMatrix& pattern, double shift = 1e-2);

}  // namespace drcm::sparse::gen
