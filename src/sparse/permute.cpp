#include "sparse/permute.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"

namespace drcm::sparse {

bool is_valid_permutation(std::span<const index_t> p) {
  std::vector<bool> seen(p.size(), false);
  for (const index_t v : p) {
    if (v < 0 || static_cast<std::size_t>(v) >= p.size()) return false;
    if (seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

std::vector<index_t> inverse_permutation(std::span<const index_t> p) {
  DRCM_CHECK(is_valid_permutation(p), "not a permutation");
  std::vector<index_t> inv(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    inv[static_cast<std::size_t>(p[i])] = static_cast<index_t>(i);
  }
  return inv;
}

std::vector<index_t> identity_permutation(index_t n) {
  std::vector<index_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  return p;
}

std::vector<index_t> random_permutation(index_t n, u64 seed) {
  auto p = identity_permutation(n);
  Rng rng(seed);
  rng.shuffle(p.begin(), p.end());
  return p;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const index_t> labels) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(a.n()),
             "labels size must match matrix dimension");
  DRCM_CHECK(is_valid_permutation(labels), "labels must form a permutation");
  const index_t n = a.n();
  const auto ordering = inverse_permutation(labels);

  std::vector<nnz_t> rp(static_cast<std::size_t>(n) + 1, 0);
  for (index_t new_i = 0; new_i < n; ++new_i) {
    rp[static_cast<std::size_t>(new_i) + 1] =
        rp[static_cast<std::size_t>(new_i)] +
        a.degree(ordering[static_cast<std::size_t>(new_i)]);
  }
  std::vector<index_t> ci(static_cast<std::size_t>(rp.back()));
  std::vector<double> vv;
  if (a.has_values()) vv.resize(ci.size());

  std::vector<std::size_t> perm_scratch;
  for (index_t new_i = 0; new_i < n; ++new_i) {
    const index_t old_i = ordering[static_cast<std::size_t>(new_i)];
    const auto old_row = a.row(old_i);
    const auto base = static_cast<std::size_t>(rp[static_cast<std::size_t>(new_i)]);
    // Map old columns to new, then sort the slice (values follow).
    perm_scratch.resize(old_row.size());
    std::iota(perm_scratch.begin(), perm_scratch.end(), std::size_t{0});
    std::sort(perm_scratch.begin(), perm_scratch.end(),
              [&](std::size_t x, std::size_t y) {
                return labels[static_cast<std::size_t>(old_row[x])] <
                       labels[static_cast<std::size_t>(old_row[y])];
              });
    for (std::size_t k = 0; k < old_row.size(); ++k) {
      ci[base + k] = labels[static_cast<std::size_t>(old_row[perm_scratch[k]])];
      if (a.has_values()) {
        vv[base + k] = a.row_values(old_i)[perm_scratch[k]];
      }
    }
  }
  return CsrMatrix(n, std::move(rp), std::move(ci), std::move(vv));
}

}  // namespace drcm::sparse
