// Ordering-quality metrics from the paper's preliminaries (Sec. II-A):
// per-row bandwidth beta_i = i - f_i, overall bandwidth beta = max beta_i,
// and the envelope/profile |Env(A)| = sum beta_i.
//
// All metrics are also computable under a relabeling without materializing
// the permuted matrix: `*_with_labels` treat `labels[v]` as the new index of
// vertex v and evaluate the metric of P*A*P^T.
#pragma once

#include <span>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::sparse {

/// beta_i for each row: distance from the diagonal to the leftmost stored
/// entry in row i (0 for empty rows; diagonal entries are implied, so
/// entries right of the diagonal do not contribute).
std::vector<index_t> row_bandwidths(const CsrMatrix& a);

/// Overall (half-)bandwidth beta(A) = max_i beta_i.
index_t bandwidth(const CsrMatrix& a);

/// Envelope size / profile |Env(A)| = sum_i beta_i.
nnz_t profile(const CsrMatrix& a);

/// bandwidth(P A P^T) where labels[v] is v's new index.
index_t bandwidth_with_labels(const CsrMatrix& a, std::span<const index_t> labels);

/// profile(P A P^T) where labels[v] is v's new index.
nnz_t profile_with_labels(const CsrMatrix& a, std::span<const index_t> labels);

}  // namespace drcm::sparse
