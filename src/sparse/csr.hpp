// Compressed sparse row storage for square symmetric matrices / graphs.
//
// This is the sequential substrate everything else builds on: generators
// emit it, the serial/shared-memory orderings traverse it, the distributed
// matrix scatters it onto the 2D grid, and the CG solver multiplies with it.
//
// Conventions:
//  * vertices / rows / columns are 0-based `index_t`;
//  * the full symmetric pattern is stored (both triangles);
//  * `values` is optional — empty means pattern-only (graph adjacency);
//  * graph semantics (degree, neighbors) ignore nothing: generators do not
//    produce self-loops, and `strip_diagonal()` converts a solver matrix to
//    an adjacency pattern as the RCM front-ends require.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace drcm::sparse {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Takes ownership of classic CSR arrays. `values` may be empty
  /// (pattern-only) or have exactly nnz entries. Column indices must be
  /// sorted and in range within each row.
  CsrMatrix(index_t n, std::vector<nnz_t> row_ptr, std::vector<index_t> col_idx,
            std::vector<double> values = {});

  index_t n() const { return n_; }
  nnz_t nnz() const { return static_cast<nnz_t>(col_idx_.size()); }
  bool has_values() const { return !values_.empty(); }
  bool empty() const { return n_ == 0; }

  /// Column indices of row `i`, sorted ascending.
  std::span<const index_t> row(index_t i) const {
    DRCM_DCHECK(i >= 0 && i < n_);
    const auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i)]);
    const auto e = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1]);
    return {col_idx_.data() + b, e - b};
  }

  /// Values of row `i`; only valid when has_values().
  std::span<const double> row_values(index_t i) const {
    DRCM_DCHECK(has_values());
    DRCM_DCHECK(i >= 0 && i < n_);
    const auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i)]);
    const auto e = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1]);
    return {values_.data() + b, e - b};
  }

  /// Number of stored entries in row `i` (== vertex degree for a self-loop
  /// free adjacency pattern).
  index_t degree(index_t i) const {
    DRCM_DCHECK(i >= 0 && i < n_);
    return static_cast<index_t>(row_ptr_[static_cast<std::size_t>(i) + 1] -
                                row_ptr_[static_cast<std::size_t>(i)]);
  }

  /// Degrees of all vertices (the paper's dense vector D).
  std::vector<index_t> degrees() const;

  std::span<const nnz_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

  /// True if entry (i, j) is present (binary search within row i).
  bool has_entry(index_t i, index_t j) const;

  /// True if the stored pattern is structurally symmetric.
  bool is_pattern_symmetric() const;

  /// True if any diagonal entry is stored.
  bool has_self_loops() const;

  /// Copy without diagonal entries (values dropped too): the adjacency
  /// pattern RCM operates on.
  CsrMatrix strip_diagonal() const;

  /// Copy of the pattern only (values dropped).
  CsrMatrix pattern() const;

 private:
  index_t n_ = 0;
  std::vector<nnz_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace drcm::sparse
