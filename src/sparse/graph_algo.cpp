#include "sparse/graph_algo.hpp"

#include <algorithm>

namespace drcm::sparse {

index_t BfsResult::width() const {
  index_t w = 0;
  for (const index_t s : level_sizes) w = std::max(w, s);
  return w;
}

BfsResult bfs(const CsrMatrix& a, index_t root) {
  DRCM_CHECK(root >= 0 && root < a.n(), "BFS root out of range");
  BfsResult res;
  res.level.assign(static_cast<std::size_t>(a.n()), kNoVertex);
  std::vector<index_t> frontier{root};
  res.level[static_cast<std::size_t>(root)] = 0;
  res.reached = 1;
  index_t depth = 0;
  while (!frontier.empty()) {
    res.level_sizes.push_back(static_cast<index_t>(frontier.size()));
    std::vector<index_t> next;
    for (const index_t u : frontier) {
      for (const index_t v : a.row(u)) {
        if (res.level[static_cast<std::size_t>(v)] == kNoVertex) {
          res.level[static_cast<std::size_t>(v)] = depth + 1;
          next.push_back(v);
          ++res.reached;
        }
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  return res;
}

std::vector<std::vector<index_t>> Components::members() const {
  std::vector<std::vector<index_t>> out(static_cast<std::size_t>(count));
  for (std::size_t v = 0; v < component.size(); ++v) {
    out[static_cast<std::size_t>(component[v])].push_back(static_cast<index_t>(v));
  }
  return out;
}

Components connected_components(const CsrMatrix& a) {
  Components res;
  res.component.assign(static_cast<std::size_t>(a.n()), kNoVertex);
  std::vector<index_t> stack;
  for (index_t s = 0; s < a.n(); ++s) {
    if (res.component[static_cast<std::size_t>(s)] != kNoVertex) continue;
    const index_t id = res.count++;
    res.component[static_cast<std::size_t>(s)] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      const index_t u = stack.back();
      stack.pop_back();
      for (const index_t v : a.row(u)) {
        if (res.component[static_cast<std::size_t>(v)] == kNoVertex) {
          res.component[static_cast<std::size_t>(v)] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return res;
}

index_t pseudo_diameter(const CsrMatrix& a, index_t root) {
  DRCM_CHECK(root >= 0 && root < a.n(), "root out of range");
  // George-Liu iteration (paper Alg. 2): BFS, jump to a minimum-degree
  // vertex of the last level, repeat while the eccentricity grows.
  index_t r = root;
  BfsResult b = bfs(a, r);
  index_t ecc = b.eccentricity();
  while (true) {
    // Minimum-degree vertex in the last level (ties: smallest id).
    index_t best = kNoVertex;
    for (index_t v = 0; v < a.n(); ++v) {
      if (b.level[static_cast<std::size_t>(v)] != ecc) continue;
      if (best == kNoVertex || a.degree(v) < a.degree(best)) best = v;
    }
    if (best == kNoVertex) break;  // isolated root
    BfsResult nb = bfs(a, best);
    if (nb.eccentricity() <= ecc) break;
    r = best;
    ecc = nb.eccentricity();
    b = std::move(nb);
  }
  return ecc;
}

index_t eccentricity(const CsrMatrix& a, index_t v) {
  return bfs(a, v).eccentricity();
}

}  // namespace drcm::sparse
