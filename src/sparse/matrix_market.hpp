// Matrix Market (.mtx) coordinate-format I/O.
//
// The paper's suite comes from the UF/SuiteSparse collection, which ships in
// this format; users with local copies can run every bench and example on
// the real matrices. Supported: `matrix coordinate real|integer|pattern
// general|symmetric`. Reads are validated field by field and throw
// drcm::sparse::ParseError naming the offending line on malformed input —
// truncated headers, missing size lines, 64-bit integer overflow,
// out-of-range or duplicate coordinates, non-finite values, trailing
// garbage, and upper-triangle entries in symmetric files all produce a
// structured error instead of a bad matrix.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "common/check.hpp"
#include "sparse/csr.hpp"

namespace drcm::sparse {

/// Thrown on malformed Matrix Market input. Derives from CheckError so
/// callers that treat all input validation uniformly keep working;
/// `line()` gives the 1-based line of the offending record (0 when the
/// stream is empty), which what() also embeds.
class ParseError : public CheckError {
 public:
  ParseError(std::size_t line, const std::string& what);
  std::size_t line() const { return line_; }

 private:
  std::size_t line_ = 0;
};

/// Parses a Matrix Market stream. Symmetric files are mirrored to a full
/// pattern; `pattern` files yield a pattern-only CsrMatrix. Throws
/// ParseError on malformed input.
CsrMatrix read_matrix_market(std::istream& in);

/// Convenience file wrapper around read_matrix_market.
CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes coordinate format. When `as_symmetric` is true only the lower
/// triangle (plus diagonal) is emitted with a `symmetric` header; the
/// matrix pattern must actually be symmetric.
void write_matrix_market(std::ostream& out, const CsrMatrix& a,
                         bool as_symmetric = true);

void write_matrix_market_file(const std::string& path, const CsrMatrix& a,
                              bool as_symmetric = true);

}  // namespace drcm::sparse
