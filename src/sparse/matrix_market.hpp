// Matrix Market (.mtx) coordinate-format I/O.
//
// The paper's suite comes from the UF/SuiteSparse collection, which ships in
// this format; users with local copies can run every bench and example on
// the real matrices. Supported: `matrix coordinate real|integer|pattern
// general|symmetric`. Reads are validated and throw drcm::CheckError with a
// line number on malformed input.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace drcm::sparse {

/// Parses a Matrix Market stream. Symmetric files are mirrored to a full
/// pattern; `pattern` files yield a pattern-only CsrMatrix.
CsrMatrix read_matrix_market(std::istream& in);

/// Convenience file wrapper around read_matrix_market.
CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes coordinate format. When `as_symmetric` is true only the lower
/// triangle (plus diagonal) is emitted with a `symmetric` header; the
/// matrix pattern must actually be symmetric.
void write_matrix_market(std::ostream& out, const CsrMatrix& a,
                         bool as_symmetric = true);

void write_matrix_market_file(const std::string& path, const CsrMatrix& a,
                              bool as_symmetric = true);

}  // namespace drcm::sparse
