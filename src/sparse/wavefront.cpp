#include "sparse/wavefront.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/permute.hpp"

namespace drcm::sparse {

namespace {

/// Shared core: row i becomes active at step first_touch[i] (the smallest
/// new index among itself and its neighbors) and retires after step
/// new_index[i]. The wavefront at step s is #{i : first_touch[i] <= s <=
/// new_index[i]}, computed by a sweep over activation/retirement events.
WavefrontMetrics from_spans(const std::vector<index_t>& first_touch,
                            const std::vector<index_t>& new_index) {
  const auto n = static_cast<index_t>(first_touch.size());
  WavefrontMetrics m;
  if (n == 0) return m;
  std::vector<index_t> activate(static_cast<std::size_t>(n), 0);
  std::vector<index_t> retire(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < first_touch.size(); ++i) {
    ++activate[static_cast<std::size_t>(first_touch[i])];
    ++retire[static_cast<std::size_t>(new_index[i])];
  }
  index_t active = 0;
  double sum = 0.0, sum_sq = 0.0;
  for (index_t s = 0; s < n; ++s) {
    active += activate[static_cast<std::size_t>(s)];
    m.max_wavefront = std::max(m.max_wavefront, active);
    sum += static_cast<double>(active);
    sum_sq += static_cast<double>(active) * static_cast<double>(active);
    active -= retire[static_cast<std::size_t>(s)];
  }
  m.mean_wavefront = sum / static_cast<double>(n);
  m.rms_wavefront = std::sqrt(sum_sq / static_cast<double>(n));
  return m;
}

}  // namespace

WavefrontMetrics wavefront(const CsrMatrix& a) {
  return wavefront_with_labels(a, identity_permutation(a.n()));
}

WavefrontMetrics wavefront_with_labels(const CsrMatrix& a,
                                       std::span<const index_t> labels) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(a.n()),
             "labels size must match matrix dimension");
  std::vector<index_t> first_touch(static_cast<std::size_t>(a.n()));
  std::vector<index_t> new_index(static_cast<std::size_t>(a.n()));
  for (index_t v = 0; v < a.n(); ++v) {
    const index_t lv = labels[static_cast<std::size_t>(v)];
    index_t lo = lv;
    for (const index_t u : a.row(v)) {
      lo = std::min(lo, labels[static_cast<std::size_t>(u)]);
    }
    first_touch[static_cast<std::size_t>(v)] = lo;
    new_index[static_cast<std::size_t>(v)] = lv;
  }
  return from_spans(first_touch, new_index);
}

}  // namespace drcm::sparse
