#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/permute.hpp"

namespace drcm::sparse::gen {

namespace {

/// Packs an undirected edge into one 64-bit key for deduplication.
u64 edge_key(index_t u, index_t v) {
  const auto lo = static_cast<u64>(std::min(u, v));
  const auto hi = static_cast<u64>(std::max(u, v));
  return (hi << 32) | lo;
}

}  // namespace

CsrMatrix path(index_t n) {
  DRCM_CHECK(n >= 0);
  CooBuilder b(n);
  for (index_t i = 0; i + 1 < n; ++i) b.add_symmetric(i, i + 1);
  return b.to_csr(false);
}

CsrMatrix cycle(index_t n) {
  DRCM_CHECK(n >= 0);
  CooBuilder b(n);
  for (index_t i = 0; i + 1 < n; ++i) b.add_symmetric(i, i + 1);
  if (n > 2) b.add_symmetric(n - 1, 0);
  return b.to_csr(false);
}

CsrMatrix star(index_t n) {
  DRCM_CHECK(n >= 1);
  CooBuilder b(n);
  for (index_t i = 1; i < n; ++i) b.add_symmetric(0, i);
  return b.to_csr(false);
}

CsrMatrix complete(index_t n) {
  DRCM_CHECK(n >= 0);
  CooBuilder b(n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) b.add_symmetric(i, j);
  }
  return b.to_csr(false);
}

CsrMatrix caterpillar(index_t spine, index_t legs) {
  DRCM_CHECK(spine >= 1 && legs >= 0);
  const index_t n = spine + spine * legs;
  CooBuilder b(n);
  for (index_t i = 0; i + 1 < spine; ++i) b.add_symmetric(i, i + 1);
  for (index_t i = 0; i < spine; ++i) {
    for (index_t l = 0; l < legs; ++l) {
      b.add_symmetric(i, spine + i * legs + l);
    }
  }
  return b.to_csr(false);
}

CsrMatrix disjoint_union(const std::vector<CsrMatrix>& parts) {
  index_t n = 0;
  for (const auto& p : parts) n += p.n();
  CooBuilder b(n);
  index_t offset = 0;
  for (const auto& p : parts) {
    for (index_t i = 0; i < p.n(); ++i) {
      for (const index_t j : p.row(i)) b.add(offset + i, offset + j);
    }
    offset += p.n();
  }
  return b.to_csr(false);
}

CsrMatrix empty_graph(index_t n) {
  CooBuilder b(n);
  return b.to_csr(false);
}

CsrMatrix grid2d(index_t nx, index_t ny) {
  DRCM_CHECK(nx >= 1 && ny >= 1);
  CooBuilder b(nx * ny);
  const auto id = [&](index_t x, index_t y) { return x * ny + y; };
  for (index_t x = 0; x < nx; ++x) {
    for (index_t y = 0; y < ny; ++y) {
      if (x + 1 < nx) b.add_symmetric(id(x, y), id(x + 1, y));
      if (y + 1 < ny) b.add_symmetric(id(x, y), id(x, y + 1));
    }
  }
  return b.to_csr(false);
}

CsrMatrix grid2d_9pt(index_t nx, index_t ny) {
  DRCM_CHECK(nx >= 1 && ny >= 1);
  CooBuilder b(nx * ny);
  const auto id = [&](index_t x, index_t y) { return x * ny + y; };
  for (index_t x = 0; x < nx; ++x) {
    for (index_t y = 0; y < ny; ++y) {
      if (x + 1 < nx) b.add_symmetric(id(x, y), id(x + 1, y));
      if (y + 1 < ny) b.add_symmetric(id(x, y), id(x, y + 1));
      if (x + 1 < nx && y + 1 < ny) b.add_symmetric(id(x, y), id(x + 1, y + 1));
      if (x + 1 < nx && y > 0) b.add_symmetric(id(x, y), id(x + 1, y - 1));
    }
  }
  return b.to_csr(false);
}

CsrMatrix grid3d(index_t nx, index_t ny, index_t nz, Stencil3d s) {
  DRCM_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  CooBuilder b(nx * ny * nz);
  const auto id = [&](index_t x, index_t y, index_t z) {
    return (x * ny + y) * nz + z;
  };
  for (index_t x = 0; x < nx; ++x) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t z = 0; z < nz; ++z) {
        // Enumerate the "positive" half of the stencil; symmetry adds the rest.
        for (index_t dx = -1; dx <= 1; ++dx) {
          for (index_t dy = -1; dy <= 1; ++dy) {
            for (index_t dz = -1; dz <= 1; ++dz) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              if (s == Stencil3d::k7 &&
                  (dx != 0) + (dy != 0) + (dz != 0) != 1) {
                continue;
              }
              // Only the lexicographically positive direction.
              if (dx < 0 || (dx == 0 && dy < 0) ||
                  (dx == 0 && dy == 0 && dz < 0)) {
                continue;
              }
              const index_t X = x + dx, Y = y + dy, Z = z + dz;
              if (X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= nz) {
                continue;
              }
              b.add_symmetric(id(x, y, z), id(X, Y, Z));
            }
          }
        }
      }
    }
  }
  return b.to_csr(false);
}

CsrMatrix erdos_renyi(index_t n, double avg_degree, u64 seed) {
  DRCM_CHECK(n >= 0 && avg_degree >= 0.0);
  const auto target = static_cast<u64>(static_cast<double>(n) * avg_degree / 2.0);
  Rng rng(seed);
  std::unordered_set<u64> edges;
  edges.reserve(static_cast<std::size_t>(target) * 2);
  CooBuilder b(n);
  u64 attempts = 0;
  const u64 max_attempts = target * 20 + 100;
  while (edges.size() < target && attempts++ < max_attempts) {
    const auto u = static_cast<index_t>(rng.next_below(static_cast<u64>(n)));
    const auto v = static_cast<index_t>(rng.next_below(static_cast<u64>(n)));
    if (u == v) continue;
    if (edges.insert(edge_key(u, v)).second) b.add_symmetric(u, v);
  }
  return b.to_csr(false);
}

CsrMatrix rmat(int scale, index_t edges_per_vertex, u64 seed, double a,
               double b_, double c) {
  DRCM_CHECK(scale >= 1 && scale < 31);
  DRCM_CHECK(a > 0 && b_ >= 0 && c >= 0 && a + b_ + c < 1.0,
             "R-MAT quadrant probabilities must leave room for d");
  const index_t n = index_t{1} << scale;
  const u64 m = static_cast<u64>(n) * static_cast<u64>(edges_per_vertex);
  Rng rng(seed);
  std::unordered_set<u64> edges;
  edges.reserve(static_cast<std::size_t>(m) * 2);
  CooBuilder builder(n);
  for (u64 e = 0; e < m; ++e) {
    index_t u = 0, v = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double r = rng.next_double();
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b_) {
        v |= index_t{1} << bit;
      } else if (r < a + b_ + c) {
        u |= index_t{1} << bit;
      } else {
        u |= index_t{1} << bit;
        v |= index_t{1} << bit;
      }
    }
    if (u == v) continue;
    if (edges.insert(edge_key(u, v)).second) builder.add_symmetric(u, v);
  }
  return builder.to_csr(false);
}

CsrMatrix random_banded(index_t n, index_t half_bw, double fill, u64 seed) {
  DRCM_CHECK(n >= 0 && half_bw >= 0 && fill >= 0.0 && fill <= 1.0);
  Rng rng(seed);
  CooBuilder b(n);
  for (index_t i = 0; i < n; ++i) {
    const index_t hi = std::min<index_t>(n - 1, i + half_bw);
    for (index_t j = i + 1; j <= hi; ++j) {
      if (rng.next_double() < fill) b.add_symmetric(i, j);
    }
  }
  return b.to_csr(false);
}

CsrMatrix random_geometric(index_t n, double radius, u64 seed) {
  DRCM_CHECK(n >= 0 && radius > 0.0 && radius <= 1.0);
  Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n)), ys(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    xs[static_cast<std::size_t>(v)] = rng.next_double();
    ys[static_cast<std::size_t>(v)] = rng.next_double();
  }
  // Bucket the unit square into radius-sized cells; only neighboring cells
  // can contain edge partners.
  const auto cells = static_cast<index_t>(std::max(1.0, std::floor(1.0 / radius)));
  const auto cell_of = [&](double c) {
    return std::min<index_t>(cells - 1, static_cast<index_t>(c * static_cast<double>(cells)));
  };
  std::vector<std::vector<index_t>> bucket(
      static_cast<std::size_t>(cells * cells));
  for (index_t v = 0; v < n; ++v) {
    bucket[static_cast<std::size_t>(
               cell_of(xs[static_cast<std::size_t>(v)]) * cells +
               cell_of(ys[static_cast<std::size_t>(v)]))].push_back(v);
  }
  CooBuilder b(n);
  const double r2 = radius * radius;
  for (index_t v = 0; v < n; ++v) {
    const index_t cx = cell_of(xs[static_cast<std::size_t>(v)]);
    const index_t cy = cell_of(ys[static_cast<std::size_t>(v)]);
    for (index_t dx = -1; dx <= 1; ++dx) {
      for (index_t dy = -1; dy <= 1; ++dy) {
        const index_t nx = cx + dx, ny = cy + dy;
        if (nx < 0 || nx >= cells || ny < 0 || ny >= cells) continue;
        for (const index_t w : bucket[static_cast<std::size_t>(nx * cells + ny)]) {
          if (w <= v) continue;  // each pair once
          const double ddx = xs[static_cast<std::size_t>(v)] - xs[static_cast<std::size_t>(w)];
          const double ddy = ys[static_cast<std::size_t>(v)] - ys[static_cast<std::size_t>(w)];
          if (ddx * ddx + ddy * ddy <= r2) b.add_symmetric(v, w);
        }
      }
    }
  }
  return b.to_csr(false);
}

CsrMatrix small_world(index_t n, index_t k, double beta, u64 seed) {
  DRCM_CHECK(n >= 0 && k >= 1 && beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  std::unordered_set<u64> edges;
  CooBuilder b(n);
  const auto add_edge = [&](index_t u, index_t v) {
    if (u != v && edges.insert(edge_key(u, v)).second) b.add_symmetric(u, v);
  };
  for (index_t v = 0; v < n; ++v) {
    for (index_t d = 1; d <= k; ++d) {
      index_t w = (v + d) % std::max<index_t>(1, n);
      if (rng.next_double() < beta && n > 2) {
        // Rewire to a uniform random endpoint.
        w = static_cast<index_t>(rng.next_below(static_cast<u64>(n)));
      }
      add_edge(v, w);
    }
  }
  return b.to_csr(false);
}

CsrMatrix kkt_system(const CsrMatrix& h, index_t constraints, index_t arity) {
  DRCM_CHECK(constraints >= 0 && arity >= 1);
  const index_t nh = h.n();
  const index_t n = nh + constraints;
  CooBuilder b(n);
  for (index_t i = 0; i < nh; ++i) {
    for (const index_t j : h.row(i)) b.add(i, j);
  }
  // Constraint row k couples `arity` consecutive H-columns, spread evenly
  // across the H index range so the Jacobian has block-banded structure.
  for (index_t k = 0; k < constraints; ++k) {
    const index_t base =
        constraints <= 1 ? 0 : (k * std::max<index_t>(1, nh - arity)) / std::max<index_t>(1, constraints - 1);
    for (index_t t = 0; t < arity; ++t) {
      const index_t col = std::min(nh - 1, base + t);
      b.add_symmetric(nh + k, col);
    }
  }
  return b.to_csr(false);
}

CsrMatrix relabel_random(const CsrMatrix& a, u64 seed) {
  const auto labels = random_permutation(a.n(), seed);
  return permute_symmetric(a, labels);
}

CsrMatrix add_random_long_edges(const CsrMatrix& a, double frac, u64 seed) {
  DRCM_CHECK(frac >= 0.0);
  const index_t n = a.n();
  Rng rng(seed);
  CooBuilder b(n);
  for (index_t i = 0; i < n; ++i) {
    for (const index_t j : a.row(i)) b.add(i, j);
  }
  const auto extra = static_cast<u64>(frac * static_cast<double>(n));
  for (u64 e = 0; e < extra; ++e) {
    const auto u = static_cast<index_t>(rng.next_below(static_cast<u64>(n)));
    const auto v = static_cast<index_t>(rng.next_below(static_cast<u64>(n)));
    if (u != v) b.add_symmetric(u, v);
  }
  return b.to_csr(false);
}

CsrMatrix symmetrize(const CsrMatrix& a) {
  CooBuilder b(a.n());
  for (index_t i = 0; i < a.n(); ++i) {
    for (const index_t j : a.row(i)) b.add_symmetric(i, j);
  }
  return b.to_csr(false);
}

CsrMatrix with_laplacian_values(const CsrMatrix& pattern, double shift) {
  DRCM_CHECK(!pattern.has_self_loops(),
             "with_laplacian_values expects a self-loop-free pattern");
  const index_t n = pattern.n();
  std::vector<nnz_t> rp(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> ci;
  std::vector<double> vv;
  ci.reserve(static_cast<std::size_t>(pattern.nnz() + n));
  vv.reserve(ci.capacity());
  for (index_t i = 0; i < n; ++i) {
    bool diag_placed = false;
    const double diag = static_cast<double>(pattern.degree(i)) + shift;
    for (const index_t j : pattern.row(i)) {
      if (!diag_placed && j > i) {
        ci.push_back(i);
        vv.push_back(diag);
        diag_placed = true;
      }
      ci.push_back(j);
      vv.push_back(-1.0);
    }
    if (!diag_placed) {
      ci.push_back(i);
      vv.push_back(diag);
    }
    rp[static_cast<std::size_t>(i) + 1] = static_cast<nnz_t>(ci.size());
  }
  return CsrMatrix(n, std::move(rp), std::move(ci), std::move(vv));
}

}  // namespace drcm::sparse::gen
