#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

namespace drcm::sparse {

CooBuilder::CooBuilder(index_t n) : n_(n) {
  DRCM_CHECK(n >= 0, "matrix dimension must be non-negative");
}

void CooBuilder::add(index_t r, index_t c, double v) {
  DRCM_CHECK(r >= 0 && r < n_ && c >= 0 && c < n_, "COO entry out of range");
  rows_.push_back(r);
  cols_.push_back(c);
  vals_.push_back(v);
}

void CooBuilder::add_symmetric(index_t r, index_t c, double v) {
  add(r, c, v);
  if (r != c) add(c, r, v);
}

CsrMatrix CooBuilder::to_csr(bool keep_values) const {
  // Counting sort by row, then sort each row's slice by column and merge
  // duplicates. O(nnz log(max row degree)).
  const std::size_t m = rows_.size();
  std::vector<nnz_t> row_counts(static_cast<std::size_t>(n_) + 1, 0);
  for (const index_t r : rows_) ++row_counts[static_cast<std::size_t>(r) + 1];
  std::partial_sum(row_counts.begin(), row_counts.end(), row_counts.begin());

  std::vector<index_t> cols_sorted(m);
  std::vector<double> vals_sorted(m);
  {
    std::vector<nnz_t> cursor(row_counts.begin(), row_counts.end() - 1);
    for (std::size_t k = 0; k < m; ++k) {
      const auto pos = static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(rows_[k])]++);
      cols_sorted[pos] = cols_[k];
      vals_sorted[pos] = vals_[k];
    }
  }

  std::vector<nnz_t> rp(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<index_t> ci;
  std::vector<double> vv;
  ci.reserve(m);
  if (keep_values) vv.reserve(m);

  std::vector<std::size_t> order;
  for (index_t i = 0; i < n_; ++i) {
    const auto b = static_cast<std::size_t>(row_counts[static_cast<std::size_t>(i)]);
    const auto e = static_cast<std::size_t>(row_counts[static_cast<std::size_t>(i) + 1]);
    order.resize(e - b);
    std::iota(order.begin(), order.end(), b);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
      return cols_sorted[a] < cols_sorted[c];
    });
    for (std::size_t t = 0; t < order.size(); ++t) {
      const index_t col = cols_sorted[order[t]];
      const double val = vals_sorted[order[t]];
      if (!ci.empty() &&
          static_cast<nnz_t>(ci.size()) > rp[static_cast<std::size_t>(i)] &&
          ci.back() == col) {
        if (keep_values) vv.back() += val;  // merge duplicate
      } else {
        ci.push_back(col);
        if (keep_values) vv.push_back(val);
      }
    }
    rp[static_cast<std::size_t>(i) + 1] = static_cast<nnz_t>(ci.size());
  }
  return CsrMatrix(n_, std::move(rp), std::move(ci), std::move(vv));
}

}  // namespace drcm::sparse
