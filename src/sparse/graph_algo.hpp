// Sequential graph traversal building blocks: BFS level structures
// (the paper's rooted level structure L(v)), connected components, and the
// pseudo-diameter figure reported in the paper's matrix table (Fig. 3).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::sparse {

/// Rooted level structure of one BFS: level[v] is the BFS depth of v
/// (kNoVertex if unreached from the root).
struct BfsResult {
  std::vector<index_t> level;
  std::vector<index_t> level_sizes;  ///< |L_0|, |L_1|, ...
  index_t reached = 0;               ///< number of vertices reached

  /// Eccentricity estimate: number of levels minus one.
  index_t eccentricity() const {
    return static_cast<index_t>(level_sizes.size()) - 1;
  }
  /// Width nu(v) of the level structure: max level size.
  index_t width() const;
};

/// Level-synchronous BFS from `root`.
BfsResult bfs(const CsrMatrix& a, index_t root);

/// Connected components: component[v] in [0, count); components are
/// numbered by their smallest vertex id.
struct Components {
  std::vector<index_t> component;
  index_t count = 0;
  /// Vertices of each component, ascending.
  std::vector<std::vector<index_t>> members() const;
};

Components connected_components(const CsrMatrix& a);

/// Pseudo-diameter of the component containing `root`: the eccentricity of
/// the pseudo-peripheral vertex found by George-Liu iteration (Fig. 3's
/// last column). Returns 0 for an isolated vertex.
index_t pseudo_diameter(const CsrMatrix& a, index_t root = 0);

/// Exact eccentricity of `v` within its component (BFS); test helper and
/// reference for property tests.
index_t eccentricity(const CsrMatrix& a, index_t v);

}  // namespace drcm::sparse
