// Wavefront metrics — the second quality axis of the paper's shared-memory
// baseline (Karantasis et al. [8]: "bandwidth and WAVEFRONT reduction").
//
// The wavefront at step i is the set of rows that are "active" when row i
// is eliminated: rows j >= i adjacent (within the envelope) to some row
// already processed, plus row i itself. Frontal direct solvers hold exactly
// one wavefront in dense storage, so max-wavefront bounds their working
// memory and sum-of-squares bounds their flops (Sloan's objective).
//
// Standard formulation: wf_i = |{j >= i : exists k <= i with A_jk != 0}|.
#pragma once

#include <span>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::sparse {

struct WavefrontMetrics {
  index_t max_wavefront = 0;
  double mean_wavefront = 0.0;
  double rms_wavefront = 0.0;  ///< sqrt(mean of squares): the flop proxy
};

/// Wavefront metrics of A under its current numbering.
WavefrontMetrics wavefront(const CsrMatrix& a);

/// Wavefront metrics of P A P^T where labels[v] is v's new index
/// (computed without materializing the permutation).
WavefrontMetrics wavefront_with_labels(const CsrMatrix& a,
                                       std::span<const index_t> labels);

}  // namespace drcm::sparse
