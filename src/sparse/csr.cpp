#include "sparse/csr.hpp"

#include <algorithm>

namespace drcm::sparse {

CsrMatrix::CsrMatrix(index_t n, std::vector<nnz_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<double> values)
    : n_(n),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  DRCM_CHECK(n_ >= 0, "matrix dimension must be non-negative");
  DRCM_CHECK(row_ptr_.size() == static_cast<std::size_t>(n_) + 1,
             "row_ptr must have n+1 entries");
  DRCM_CHECK(row_ptr_.front() == 0, "row_ptr must start at 0");
  DRCM_CHECK(row_ptr_.back() == static_cast<nnz_t>(col_idx_.size()),
             "row_ptr must end at nnz");
  DRCM_CHECK(values_.empty() || values_.size() == col_idx_.size(),
             "values must be empty or match nnz");
  for (index_t i = 0; i < n_; ++i) {
    DRCM_CHECK(row_ptr_[static_cast<std::size_t>(i)] <=
                   row_ptr_[static_cast<std::size_t>(i) + 1],
               "row_ptr must be non-decreasing");
    const auto r = row(i);
    for (std::size_t k = 0; k < r.size(); ++k) {
      DRCM_CHECK(r[k] >= 0 && r[k] < n_, "column index out of range");
      if (k > 0) DRCM_CHECK(r[k - 1] < r[k], "columns must be strictly sorted");
    }
  }
}

std::vector<index_t> CsrMatrix::degrees() const {
  std::vector<index_t> d(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i) d[static_cast<std::size_t>(i)] = degree(i);
  return d;
}

bool CsrMatrix::has_entry(index_t i, index_t j) const {
  DRCM_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_, "entry out of range");
  const auto r = row(i);
  return std::binary_search(r.begin(), r.end(), j);
}

bool CsrMatrix::is_pattern_symmetric() const {
  for (index_t i = 0; i < n_; ++i) {
    for (const index_t j : row(i)) {
      if (j == i) continue;
      if (!has_entry(j, i)) return false;
    }
  }
  return true;
}

bool CsrMatrix::has_self_loops() const {
  for (index_t i = 0; i < n_; ++i) {
    const auto r = row(i);
    if (std::binary_search(r.begin(), r.end(), i)) return true;
  }
  return false;
}

CsrMatrix CsrMatrix::strip_diagonal() const {
  std::vector<nnz_t> rp(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<index_t> ci;
  ci.reserve(col_idx_.size());
  for (index_t i = 0; i < n_; ++i) {
    for (const index_t j : row(i)) {
      if (j != i) ci.push_back(j);
    }
    rp[static_cast<std::size_t>(i) + 1] = static_cast<nnz_t>(ci.size());
  }
  return CsrMatrix(n_, std::move(rp), std::move(ci));
}

CsrMatrix CsrMatrix::pattern() const {
  return CsrMatrix(n_, row_ptr_, col_idx_);
}

}  // namespace drcm::sparse
