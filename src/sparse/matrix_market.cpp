#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "sparse/coo.hpp"

namespace drcm::sparse {

ParseError::ParseError(std::size_t line, const std::string& what)
    : CheckError("Matrix Market parse error at line " + std::to_string(line) +
                 ": " + what),
      line_(line) {}

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ParseError(line, what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(std::move(tok));
  return out;
}

/// getline keeps the '\r' of CRLF files; drop it so token and emptiness
/// checks see the record, not the line ending.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// Parses a decimal 64-bit integer, distinguishing overflow from garbage —
/// a coordinate wider than index_t must be reported as such, not wrapped
/// into a bogus in-range index.
std::int64_t parse_int(const std::string& tok, std::size_t line,
                       const char* what) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec == std::errc::result_out_of_range) {
    fail(line, std::string(what) + " '" + tok + "' overflows a 64-bit index");
  }
  if (ec != std::errc() || ptr != tok.data() + tok.size()) {
    fail(line, std::string("malformed ") + what + " '" + tok + "'");
  }
  return v;
}

double parse_value(const std::string& tok, std::size_t line) {
  const char* begin = tok.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end != begin + tok.size() || tok.empty()) {
    fail(line, "malformed value '" + tok + "'");
  }
  // Overflowing literals (strtod returns ±HUGE_VAL) and explicit nan/inf
  // are both rejected: a non-finite entry would silently poison every
  // solve downstream.
  if (!std::isfinite(v)) fail(line, "non-finite value '" + tok + "'");
  return v;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;

  if (!std::getline(in, line)) fail(0, "empty Matrix Market stream");
  ++lineno;
  strip_cr(line);
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail(lineno, "missing %%MatrixMarket banner");
  if (symmetry.empty()) {
    fail(lineno,
         "truncated header (expected '%%MatrixMarket matrix coordinate "
         "<field> <symmetry>')");
  }
  if (lower(object) != "matrix") fail(lineno, "unsupported object '" + object + "'");
  if (lower(format) != "coordinate") {
    fail(lineno, "unsupported format '" + format + "' (only coordinate)");
  }
  field = lower(field);
  symmetry = lower(symmetry);
  const bool is_pattern = field == "pattern";
  if (!is_pattern && field != "real" && field != "integer") {
    fail(lineno, "unsupported field '" + field + "'");
  }
  const bool is_symmetric = symmetry == "symmetric";
  if (!is_symmetric && symmetry != "general") {
    fail(lineno, "unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments / blank lines, then read the size line.
  index_t rows = 0, cols = 0;
  nnz_t entries = 0;
  bool have_size = false;
  while (std::getline(in, line)) {
    ++lineno;
    strip_cr(line);
    if (line.empty() || line[0] == '%') continue;
    const auto toks = tokenize(line);
    if (toks.size() != 3) {
      fail(lineno, "bad size line (expected 'rows cols entries')");
    }
    rows = parse_int(toks[0], lineno, "row count");
    cols = parse_int(toks[1], lineno, "column count");
    entries = parse_int(toks[2], lineno, "entry count");
    have_size = true;
    break;
  }
  if (!have_size) fail(lineno, "truncated file: missing size line");
  if (rows <= 0 || cols <= 0) fail(lineno, "non-positive dimensions");
  if (rows != cols) fail(lineno, "only square matrices are supported");
  if (entries < 0) fail(lineno, "negative entry count");

  CooBuilder builder(rows);
  // Exact stored coordinates seen so far: a file listing the same (r, c)
  // twice is corrupt (the duplicate would silently accumulate or shadow).
  // Keyed as (r-1)*cols + (c-1), collision-free while rows*cols fits the
  // key width — far beyond any parseable file.
  std::unordered_set<std::uint64_t> coords;
  coords.reserve(static_cast<std::size_t>(std::min<nnz_t>(entries, 1 << 20)));
  nnz_t seen = 0;
  while (seen < entries) {
    if (!std::getline(in, line)) {
      fail(lineno, "unexpected end of file: read " + std::to_string(seen) +
                       " of " + std::to_string(entries) + " entries");
    }
    ++lineno;
    strip_cr(line);
    if (line.empty() || line[0] == '%') continue;
    const auto toks = tokenize(line);
    const std::size_t expected = is_pattern ? 2 : 3;
    if (toks.size() < expected) {
      fail(lineno, is_pattern ? "bad entry line (expected 'row col')"
                              : "bad entry line (expected 'row col value')");
    }
    if (toks.size() > expected) fail(lineno, "trailing garbage on entry line");
    const index_t r = parse_int(toks[0], lineno, "row index");
    const index_t c = parse_int(toks[1], lineno, "column index");
    const double v = is_pattern ? 1.0 : parse_value(toks[2], lineno);
    if (r < 1 || r > rows || c < 1 || c > cols) fail(lineno, "entry out of range");
    if (is_symmetric && c > r) fail(lineno, "upper-triangle entry in symmetric file");
    const std::uint64_t key = static_cast<std::uint64_t>(r - 1) *
                                  static_cast<std::uint64_t>(cols) +
                              static_cast<std::uint64_t>(c - 1);
    if (!coords.insert(key).second) {
      fail(lineno, "duplicate entry (" + std::to_string(r) + ", " +
                       std::to_string(c) + ")");
    }
    if (is_symmetric) {
      builder.add_symmetric(r - 1, c - 1, v);
    } else {
      builder.add(r - 1, c - 1, v);
    }
    ++seen;
  }
  // Anything after the declared entries other than comments or blank lines
  // means the size line and the body disagree.
  while (std::getline(in, line)) {
    ++lineno;
    strip_cr(line);
    if (line.empty() || line[0] == '%') continue;
    fail(lineno, "more entries than the size line declared");
  }
  return builder.to_csr(!is_pattern);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  DRCM_CHECK(in.good(), "cannot open Matrix Market file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a,
                         bool as_symmetric) {
  if (as_symmetric) {
    DRCM_CHECK(a.is_pattern_symmetric(),
               "cannot write an unsymmetric pattern as symmetric");
  }
  const bool pattern = !a.has_values();
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << ' '
      << (as_symmetric ? "symmetric" : "general") << '\n';

  nnz_t count = 0;
  for (index_t i = 0; i < a.n(); ++i) {
    for (const index_t j : a.row(i)) {
      if (as_symmetric && j > i) continue;
      ++count;
    }
  }
  out << a.n() << ' ' << a.n() << ' ' << count << '\n';
  for (index_t i = 0; i < a.n(); ++i) {
    const auto r = a.row(i);
    for (std::size_t k = 0; k < r.size(); ++k) {
      const index_t j = r[k];
      if (as_symmetric && j > i) continue;
      out << (i + 1) << ' ' << (j + 1);
      if (!pattern) out << ' ' << a.row_values(i)[k];
      out << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a,
                              bool as_symmetric) {
  std::ofstream out(path);
  DRCM_CHECK(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, a, as_symmetric);
  DRCM_CHECK(out.good(), "write failed: " + path);
}

}  // namespace drcm::sparse
