#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "sparse/coo.hpp"

namespace drcm::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw CheckError("Matrix Market parse error at line " + std::to_string(line) +
                   ": " + what);
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;

  DRCM_CHECK(static_cast<bool>(std::getline(in, line)), "empty Matrix Market stream");
  ++lineno;
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail(lineno, "missing %%MatrixMarket banner");
  if (lower(object) != "matrix") fail(lineno, "unsupported object '" + object + "'");
  if (lower(format) != "coordinate") {
    fail(lineno, "unsupported format '" + format + "' (only coordinate)");
  }
  field = lower(field);
  symmetry = lower(symmetry);
  const bool is_pattern = field == "pattern";
  if (!is_pattern && field != "real" && field != "integer") {
    fail(lineno, "unsupported field '" + field + "'");
  }
  const bool is_symmetric = symmetry == "symmetric";
  if (!is_symmetric && symmetry != "general") {
    fail(lineno, "unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments / blank lines, then read the size line.
  index_t rows = 0, cols = 0;
  nnz_t entries = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream sz(line);
    if (!(sz >> rows >> cols >> entries)) fail(lineno, "bad size line");
    break;
  }
  if (rows <= 0 || cols <= 0) fail(lineno, "non-positive dimensions");
  if (rows != cols) fail(lineno, "only square matrices are supported");
  if (entries < 0) fail(lineno, "negative entry count");

  CooBuilder builder(rows);
  nnz_t seen = 0;
  while (seen < entries) {
    if (!std::getline(in, line)) fail(lineno, "unexpected end of file");
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream es(line);
    index_t r = 0, c = 0;
    double v = 1.0;
    if (!(es >> r >> c)) fail(lineno, "bad entry line");
    if (!is_pattern && !(es >> v)) fail(lineno, "missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) fail(lineno, "entry out of range");
    if (is_symmetric && c > r) fail(lineno, "upper-triangle entry in symmetric file");
    if (is_symmetric) {
      builder.add_symmetric(r - 1, c - 1, v);
    } else {
      builder.add(r - 1, c - 1, v);
    }
    ++seen;
  }
  return builder.to_csr(!is_pattern);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  DRCM_CHECK(in.good(), "cannot open Matrix Market file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a,
                         bool as_symmetric) {
  if (as_symmetric) {
    DRCM_CHECK(a.is_pattern_symmetric(),
               "cannot write an unsymmetric pattern as symmetric");
  }
  const bool pattern = !a.has_values();
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << ' '
      << (as_symmetric ? "symmetric" : "general") << '\n';

  nnz_t count = 0;
  for (index_t i = 0; i < a.n(); ++i) {
    for (const index_t j : a.row(i)) {
      if (as_symmetric && j > i) continue;
      ++count;
    }
  }
  out << a.n() << ' ' << a.n() << ' ' << count << '\n';
  for (index_t i = 0; i < a.n(); ++i) {
    const auto r = a.row(i);
    for (std::size_t k = 0; k < r.size(); ++k) {
      const index_t j = r[k];
      if (as_symmetric && j > i) continue;
      out << (i + 1) << ' ' << (j + 1);
      if (!pattern) out << ' ' << a.row_values(i)[k];
      out << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a,
                              bool as_symmetric) {
  std::ofstream out(path);
  DRCM_CHECK(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, a, as_symmetric);
  DRCM_CHECK(out.good(), "write failed: " + path);
}

}  // namespace drcm::sparse
