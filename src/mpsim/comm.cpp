#include "mpsim/comm.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>

#include "mpsim/fault.hpp"
#include "mpsim/internal.hpp"

namespace drcm::mps {

// ---------------------------------------------------------------------------
// BarrierRegistry: lets the runtime tear down every communicator (including
// splits created mid-run) when one rank fails, so surviving ranks blocked in
// a collective throw PoisonedError instead of deadlocking. It also carries
// the watchdog configuration every barrier consults: a wall-clock budget and
// a diagnostic callback (the runtime's per-rank last-entered table).

class BarrierRegistry {
 public:
  void register_barrier(const std::shared_ptr<PoisonableBarrier>& b);
  void poison_all();

  /// Called by Runtime::run BEFORE any rank thread starts (thread creation
  /// provides the happens-before; no locking needed on the read side).
  void configure_watchdog(double seconds, std::function<std::string()> diag) {
    watchdog_seconds_ = seconds;
    diagnostic_ = std::move(diag);
  }

  double watchdog_seconds() const { return watchdog_seconds_; }
  std::string diagnostic() const {
    return diagnostic_ ? diagnostic_() : std::string();
  }

 private:
  std::mutex mu_;
  bool poisoned_ = false;
  std::vector<std::weak_ptr<PoisonableBarrier>> barriers_;
  double watchdog_seconds_ = 0.0;
  std::function<std::string()> diagnostic_;
};

class PoisonableBarrier {
 public:
  explicit PoisonableBarrier(int n, const BarrierRegistry* registry)
      : n_(n), registry_(registry) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) throw PoisonedError{};
    const std::uint64_t my_generation = generation_;
    if (++waiting_ == n_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    const double budget = registry_ ? registry_->watchdog_seconds() : 0.0;
    if (budget <= 0.0) {
      cv_.wait(lock, [&] { return generation_ != my_generation || poisoned_; });
    } else if (!cv_.wait_for(
                   lock, std::chrono::duration<double>(budget),
                   [&] { return generation_ != my_generation || poisoned_; })) {
      // Watchdog: the communicator never completed within budget — some
      // member is stalled (or exited without arriving). Kill this barrier
      // so fellow waiters throw PoisonedError, then report who got where;
      // the runtime's poisoning cascade reaches every other communicator.
      poisoned_ = true;
      cv_.notify_all();
      lock.unlock();
      throw WatchdogTimeoutError(
          "barrier watchdog fired: communicator incomplete after " +
          std::to_string(budget) + "s\n" +
          (registry_ ? registry_->diagnostic() : std::string()));
    }
    if (generation_ == my_generation && poisoned_) throw PoisonedError{};
  }

  void poison() {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
    cv_.notify_all();
  }

 private:
  const int n_;
  const BarrierRegistry* registry_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool poisoned_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
};

void BarrierRegistry::register_barrier(
    const std::shared_ptr<PoisonableBarrier>& b) {
  std::lock_guard<std::mutex> lock(mu_);
  barriers_.push_back(b);
  if (poisoned_) b->poison();
}

void BarrierRegistry::poison_all() {
  std::lock_guard<std::mutex> lock(mu_);
  poisoned_ = true;
  for (auto& weak : barriers_) {
    if (auto b = weak.lock()) b->poison();
  }
}

// ---------------------------------------------------------------------------
// Collective tags: every collective entry publishes (op, phase, per-rank
// sequence number) packed into one word. Multi-crossing collectives compare
// all peers' tags between their first and second crossings; see
// Comm::verify_collective for why that window is race-free.

const char* coll_op_name(CollOp op) {
  switch (op) {
    case CollOp::kNone: return "none";
    case CollOp::kBarrier: return "barrier";
    case CollOp::kBcast: return "bcast";
    case CollOp::kAllreduce: return "allreduce";
    case CollOp::kAllgather: return "allgather";
    case CollOp::kAllgatherv: return "allgatherv";
    case CollOp::kAlltoallv: return "alltoallv";
    case CollOp::kExscan: return "exscan";
    case CollOp::kGatherv: return "gatherv";
    case CollOp::kScatterv: return "scatterv";
    case CollOp::kReduce: return "reduce";
    case CollOp::kPairwise: return "pairwise-exchange";
    case CollOp::kFusedGatherRouteCount: return "fused-gather-route-count";
    case CollOp::kFusedOrderLevel: return "fused-order-level";
    case CollOp::kSplit: return "split";
  }
  return "unknown";
}

std::uint64_t pack_collective_tag(CollOp op, Phase phase, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(op) << 56) |
         (static_cast<std::uint64_t>(phase) << 48) |
         (seq & 0x0000FFFFFFFFFFFFULL);
}

std::string describe_collective_tag(std::uint64_t tag) {
  if (tag == 0) return "<no collective>";
  const auto op = static_cast<CollOp>((tag >> 56) & 0xFF);
  const auto phase = static_cast<Phase>((tag >> 48) & 0xFF);
  const std::uint64_t seq = tag & 0x0000FFFFFFFFFFFFULL;
  return std::string(coll_op_name(op)) + " #" + std::to_string(seq) + " [" +
         std::string(phase_name(phase)) + "]";
}

// ---------------------------------------------------------------------------
// CommContext: shared state of one communicator.

class CommContext {
 public:
  CommContext(int size, std::shared_ptr<BarrierRegistry> registry)
      : size_(size),
        registry_(std::move(registry)),
        barrier_(std::make_shared<PoisonableBarrier>(size, registry_.get())),
        ptr_(static_cast<std::size_t>(size), nullptr),
        cnt_(static_cast<std::size_t>(size), 0),
        ptr_arr_(static_cast<std::size_t>(size), nullptr),
        cnt_arr_(static_cast<std::size_t>(size), nullptr),
        ptr_arr_aux_(static_cast<std::size_t>(size), nullptr),
        cnt_arr_aux_(static_cast<std::size_t>(size), nullptr),
        scalar_arena_(static_cast<std::size_t>(size)),
        array_arena_(static_cast<std::size_t>(size)),
        array_arena_aux_(static_cast<std::size_t>(size)),
        array_ptrs_(static_cast<std::size_t>(size)),
        array_cnts_(static_cast<std::size_t>(size)),
        array_ptrs_aux_(static_cast<std::size_t>(size)),
        array_cnts_aux_(static_cast<std::size_t>(size)),
        i64_(static_cast<std::size_t>(size), 0),
        split_color_(static_cast<std::size_t>(size), 0),
        split_key_(static_cast<std::size_t>(size), 0),
        split_ctx_(static_cast<std::size_t>(size)),
        split_rank_(static_cast<std::size_t>(size), 0),
        tags_(static_cast<std::size_t>(size)),
        tag_seq_(static_cast<std::size_t>(size), 0) {
    for (auto& t : tags_) t.store(0, std::memory_order_relaxed);
    if (registry_) registry_->register_barrier(barrier_);
  }

  int size() const { return size_; }
  void cross() { barrier_->arrive_and_wait(); }
  const std::shared_ptr<BarrierRegistry>& registry() const { return registry_; }

  // Publication board (guarded by barrier crossings, not by a mutex).
  // Payloads are COPIED into context-owned arenas at publish time, so a
  // peer reading a slot never dereferences memory owned by the publishing
  // rank's frames: a rank that unwinds (injected fault, mismatch error,
  // check failure) cannot leave dangling pointers behind for ranks still
  // inside a collective. The arenas keep their capacity across calls, so
  // steady-state publication allocates nothing.
  void publish_scalar(int rank, const void* data, std::uint64_t count,
                      std::size_t elem_bytes) {
    const auto r = static_cast<std::size_t>(rank);
    auto& arena = scalar_arena_[r];
    const std::size_t bytes = static_cast<std::size_t>(count) * elem_bytes;
    arena.resize(bytes);
    if (bytes != 0) std::memcpy(arena.data(), data, bytes);
    ptr_[r] = arena.data();
    cnt_[r] = count;
  }
  void publish_array_board(int rank, const void* const* ptrs,
                           const std::uint64_t* counts,
                           std::size_t elem_bytes) {
    copy_array_payload(rank, ptrs, counts, elem_bytes, array_arena_,
                       array_ptrs_, array_cnts_);
    const auto r = static_cast<std::size_t>(rank);
    ptr_arr_[r] = array_ptrs_[r].data();
    cnt_arr_[r] = array_cnts_[r].data();
  }
  void publish_array_board_aux(int rank, const void* const* ptrs,
                               const std::uint64_t* counts,
                               std::size_t elem_bytes) {
    copy_array_payload(rank, ptrs, counts, elem_bytes, array_arena_aux_,
                       array_ptrs_aux_, array_cnts_aux_);
    const auto r = static_cast<std::size_t>(rank);
    ptr_arr_aux_[r] = array_ptrs_aux_[r].data();
    cnt_arr_aux_[r] = array_cnts_aux_[r].data();
  }
  std::vector<const void*>& ptr() { return ptr_; }
  std::vector<std::uint64_t>& cnt() { return cnt_; }
  std::vector<const void* const*>& ptr_arr() { return ptr_arr_; }
  std::vector<const std::uint64_t*>& cnt_arr() { return cnt_arr_; }
  std::vector<const void* const*>& ptr_arr_aux() { return ptr_arr_aux_; }
  std::vector<const std::uint64_t*>& cnt_arr_aux() { return cnt_arr_aux_; }
  std::vector<std::int64_t>& i64() { return i64_; }
  std::vector<int>& split_color() { return split_color_; }
  std::vector<int>& split_key() { return split_key_; }
  std::vector<std::shared_ptr<CommContext>>& split_ctx() { return split_ctx_; }
  std::vector<int>& split_rank() { return split_rank_; }

  // Collective-tag board. Tags are atomics so a genuinely mismatched program
  // (two ranks in different collectives racing on the board) stays defined
  // behavior and still yields a deterministic mismatch report.
  void publish_tag(int rank, CollOp op, Phase phase) {
    auto& seq = tag_seq_[static_cast<std::size_t>(rank)];
    ++seq;
    tags_[static_cast<std::size_t>(rank)].store(
        pack_collective_tag(op, phase, seq), std::memory_order_relaxed);
  }
  std::uint64_t tag(int rank) const {
    return tags_[static_cast<std::size_t>(rank)].load(
        std::memory_order_relaxed);
  }

 private:
  // One rank's per-destination buffers land flattened in its arena; the
  // published pointer/count tables are rebuilt into context-owned storage
  // pointing at the arena copies.
  void copy_array_payload(int rank, const void* const* ptrs,
                          const std::uint64_t* counts, std::size_t elem_bytes,
                          std::vector<std::vector<std::byte>>& arenas,
                          std::vector<std::vector<const void*>>& ptr_store,
                          std::vector<std::vector<std::uint64_t>>& cnt_store) {
    const auto r = static_cast<std::size_t>(rank);
    const auto n = static_cast<std::size_t>(size_);
    auto& arena = arenas[r];
    auto& out_ptrs = ptr_store[r];
    auto& out_cnts = cnt_store[r];
    std::size_t total_bytes = 0;
    for (std::size_t d = 0; d < n; ++d) {
      total_bytes += static_cast<std::size_t>(counts[d]) * elem_bytes;
    }
    arena.resize(total_bytes);
    out_ptrs.resize(n);
    out_cnts.resize(n);
    std::size_t offset = 0;
    for (std::size_t d = 0; d < n; ++d) {
      const std::size_t bytes = static_cast<std::size_t>(counts[d]) * elem_bytes;
      if (bytes != 0) std::memcpy(arena.data() + offset, ptrs[d], bytes);
      out_ptrs[d] = arena.data() + offset;
      out_cnts[d] = counts[d];
      offset += bytes;
    }
  }

  const int size_;
  std::shared_ptr<BarrierRegistry> registry_;
  std::shared_ptr<PoisonableBarrier> barrier_;
  std::vector<const void*> ptr_;
  std::vector<std::uint64_t> cnt_;
  std::vector<const void* const*> ptr_arr_;
  std::vector<const std::uint64_t*> cnt_arr_;
  std::vector<const void* const*> ptr_arr_aux_;
  std::vector<const std::uint64_t*> cnt_arr_aux_;
  std::vector<std::vector<std::byte>> scalar_arena_;
  std::vector<std::vector<std::byte>> array_arena_;
  std::vector<std::vector<std::byte>> array_arena_aux_;
  std::vector<std::vector<const void*>> array_ptrs_;
  std::vector<std::vector<std::uint64_t>> array_cnts_;
  std::vector<std::vector<const void*>> array_ptrs_aux_;
  std::vector<std::vector<std::uint64_t>> array_cnts_aux_;
  std::vector<std::int64_t> i64_;
  std::vector<int> split_color_;
  std::vector<int> split_key_;
  std::vector<std::shared_ptr<CommContext>> split_ctx_;
  std::vector<int> split_rank_;
  std::vector<std::atomic<std::uint64_t>> tags_;
  std::vector<std::uint64_t> tag_seq_;  // owner-written only
};

std::shared_ptr<CommContext> make_comm_context(
    int size, const std::shared_ptr<BarrierRegistry>& registry) {
  return std::make_shared<CommContext>(size, registry);
}

std::shared_ptr<BarrierRegistry> make_barrier_registry() {
  return std::make_shared<BarrierRegistry>();
}

void poison_all_barriers(BarrierRegistry& registry) { registry.poison_all(); }

void set_watchdog(BarrierRegistry& registry, double seconds,
                  std::function<std::string()> diagnostic) {
  registry.configure_watchdog(seconds, std::move(diagnostic));
}

// ---------------------------------------------------------------------------
// Comm.

Comm::Comm(std::shared_ptr<CommContext> ctx, int rank, RankState* state,
           const CostModel* model)
    : ctx_(std::move(ctx)), rank_(rank), size_(ctx_->size()), state_(state),
      model_(model) {
  DRCM_CHECK(rank_ >= 0 && rank_ < size_, "rank out of range for communicator");
  DRCM_CHECK(state_ != nullptr && model_ != nullptr,
             "Comm requires rank state and cost model");
}

void Comm::barrier() {
  // A plain barrier publishes its tag but cannot verify peers: with a single
  // crossing there is no window in which every peer is guaranteed to have
  // published. Multi-crossing collectives do the verification.
  enter_collective(CollOp::kBarrier);
  cross_barrier();
  charge(model_->barrier(size_));
}

void Comm::enter_collective(CollOp op) {
  RankState& st = *state_;
  const std::uint64_t ordinal = ++st.collectives_entered;
  st.last_entered.store(pack_collective_tag(op, st.phase, ordinal),
                        std::memory_order_relaxed);
  if (st.faults != nullptr) {
    if (FaultAction* a = st.faults->find(st.world_rank, ordinal)) {
      a->fired = true;
      switch (a->kind) {
        case FaultKind::kRankDeath:
          throw InjectedFault(a->kind, st.world_rank, ordinal);
        case FaultKind::kAllocFailure:
          throw InjectedAllocFailure(st.world_rank, ordinal);
        case FaultKind::kStall:
          charge_stall(a->stall_modeled_seconds);
          break;
        case FaultKind::kPayloadCorruption:
          st.corrupt_armed = true;
          break;
      }
    }
  }
  ctx_->publish_tag(rank_, op, st.phase);
}

void Comm::verify_collective(CollOp op) {
  // Runs after every NON-FINAL crossing of a collective, before any board
  // read that crossing opens. In a correct program those windows are
  // race-free: no peer can be past its own first crossing of a LATER
  // collective (it would need this rank to arrive at a crossing it has not
  // reached), and every peer has published its tag for THIS one before
  // arriving. So any tag disagreement means the program's collective
  // sequences genuinely diverged across ranks — and because the check runs
  // before the reads, a diverged peer's boards are never consumed. (After a
  // FINAL crossing the check would race with fast peers legally entering
  // the next collective, so final-crossing read windows rely on the
  // preceding verified crossing plus the board-ownership discipline.)
  (void)op;
  const std::uint64_t mine = ctx_->tag(rank_);
  for (int r = 0; r < size_; ++r) {
    const std::uint64_t theirs = ctx_->tag(r);
    if (theirs != mine) {
      throw CollectiveMismatchError(
          "collective mismatch on a " + std::to_string(size_) +
          "-rank communicator: rank " + std::to_string(rank_) + " entered " +
          describe_collective_tag(mine) + " but rank " + std::to_string(r) +
          " entered " + describe_collective_tag(theirs));
    }
  }
}

void Comm::maybe_corrupt(void* data, std::size_t bytes) {
  if (!state_->corrupt_armed || data == nullptr ||
      bytes < sizeof(std::uint64_t)) {
    return;
  }
  state_->corrupt_armed = false;
  std::uint64_t word;
  std::memcpy(&word, data, sizeof(word));
  // Set the exponent region plus one mantissa bit of the first word: an
  // int64 index becomes absurdly large (caught by the receive-path range
  // checks), a double becomes NaN (caught by the solver's finiteness check).
  word |= 0x7FF8000000000000ULL;
  std::memcpy(data, &word, sizeof(word));
}

void Comm::charge_stall(double modeled_seconds) {
  state_->stats.add_compute(state_->phase, 0.0, modeled_seconds);
}

void Comm::publish(const void* ptr, std::uint64_t count,
                   std::size_t elem_bytes) {
  ctx_->publish_scalar(rank_, ptr, count, elem_bytes);
}

const void* Comm::peer_ptr(int r) const {
  return ctx_->ptr()[static_cast<std::size_t>(r)];
}

std::uint64_t Comm::peer_count(int r) const {
  return ctx_->cnt()[static_cast<std::size_t>(r)];
}

void Comm::publish_arrays(const void* const* ptrs, const std::uint64_t* counts,
                          std::size_t elem_bytes) {
  ctx_->publish_array_board(rank_, ptrs, counts, elem_bytes);
}

const void* const* Comm::peer_ptr_array(int r) const {
  return ctx_->ptr_arr()[static_cast<std::size_t>(r)];
}

const std::uint64_t* Comm::peer_count_array(int r) const {
  return ctx_->cnt_arr()[static_cast<std::size_t>(r)];
}

void Comm::publish_arrays_aux(const void* const* ptrs,
                              const std::uint64_t* counts,
                              std::size_t elem_bytes) {
  ctx_->publish_array_board_aux(rank_, ptrs, counts, elem_bytes);
}

const void* const* Comm::peer_ptr_array_aux(int r) const {
  return ctx_->ptr_arr_aux()[static_cast<std::size_t>(r)];
}

const std::uint64_t* Comm::peer_count_array_aux(int r) const {
  return ctx_->cnt_arr_aux()[static_cast<std::size_t>(r)];
}

void Comm::cross_barrier() {
  state_->stats.add_crossing(state_->phase);
  ctx_->cross();
}

void Comm::publish_i64(std::int64_t v) {
  ctx_->i64()[static_cast<std::size_t>(rank_)] = v;
}

std::int64_t Comm::peer_i64(int r) const {
  return ctx_->i64()[static_cast<std::size_t>(r)];
}

void Comm::charge(const CommCost& cost) {
  state_->stats.add_comm(state_->phase, cost);
}

Comm Comm::split(int color, int key) {
  DRCM_CHECK(color >= 0, "split color must be non-negative");
  enter_collective(CollOp::kSplit);
  auto& colors = ctx_->split_color();
  auto& keys = ctx_->split_key();
  colors[static_cast<std::size_t>(rank_)] = color;
  keys[static_cast<std::size_t>(rank_)] = key;
  cross_barrier();
  verify_collective(CollOp::kSplit);
  if (rank_ == 0) {
    // Group members by color; within a group rank by (key, old rank).
    std::map<int, std::vector<int>> groups;
    for (int r = 0; r < size_; ++r) {
      groups[colors[static_cast<std::size_t>(r)]].push_back(r);
    }
    for (auto& [c, members] : groups) {
      std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
        return keys[static_cast<std::size_t>(a)] < keys[static_cast<std::size_t>(b)];
      });
      auto child = std::make_shared<CommContext>(
          static_cast<int>(members.size()), ctx_->registry());
      for (int new_rank = 0; new_rank < static_cast<int>(members.size());
           ++new_rank) {
        const auto m = static_cast<std::size_t>(members[static_cast<std::size_t>(new_rank)]);
        ctx_->split_ctx()[m] = child;
        ctx_->split_rank()[m] = new_rank;
      }
    }
  }
  cross_barrier();
  verify_collective(CollOp::kSplit);  // crossing 2 of 3: lockstep re-check
  auto child_ctx = ctx_->split_ctx()[static_cast<std::size_t>(rank_)];
  const int child_rank = ctx_->split_rank()[static_cast<std::size_t>(rank_)];
  cross_barrier();  // everyone picked up before the board can be reused
  charge(model_->allgatherv(size_, static_cast<std::uint64_t>(size_)));
  return Comm(std::move(child_ctx), child_rank, state_, model_);
}

void Comm::charge_compute(double units) {
  state_->stats.add_compute(
      state_->phase, units,
      model_->compute_seconds(units) / static_cast<double>(state_->threads));
}

void Comm::note_resident(std::uint64_t elements) {
  state_->stats.note_resident(elements);
}

Phase Comm::set_phase(Phase p) {
  const Phase prev = state_->phase;
  state_->phase = p;
  return prev;
}

}  // namespace drcm::mps
