#include "mpsim/comm.hpp"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>

#include "mpsim/internal.hpp"

namespace drcm::mps {

// ---------------------------------------------------------------------------
// BarrierRegistry: lets the runtime tear down every communicator (including
// splits created mid-run) when one rank fails, so surviving ranks blocked in
// a collective throw PoisonedError instead of deadlocking.

class PoisonableBarrier {
 public:
  explicit PoisonableBarrier(int n) : n_(n) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) throw PoisonedError{};
    const std::uint64_t my_generation = generation_;
    if (++waiting_ == n_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation || poisoned_; });
    if (generation_ == my_generation && poisoned_) throw PoisonedError{};
  }

  void poison() {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
    cv_.notify_all();
  }

 private:
  const int n_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool poisoned_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
};

class BarrierRegistry {
 public:
  void register_barrier(const std::shared_ptr<PoisonableBarrier>& b) {
    std::lock_guard<std::mutex> lock(mu_);
    barriers_.push_back(b);
    if (poisoned_) b->poison();
  }

  void poison_all() {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
    for (auto& weak : barriers_) {
      if (auto b = weak.lock()) b->poison();
    }
  }

 private:
  std::mutex mu_;
  bool poisoned_ = false;
  std::vector<std::weak_ptr<PoisonableBarrier>> barriers_;
};

// ---------------------------------------------------------------------------
// CommContext: shared state of one communicator.

class CommContext {
 public:
  CommContext(int size, std::shared_ptr<BarrierRegistry> registry)
      : size_(size),
        registry_(std::move(registry)),
        barrier_(std::make_shared<PoisonableBarrier>(size)),
        ptr_(static_cast<std::size_t>(size), nullptr),
        cnt_(static_cast<std::size_t>(size), 0),
        ptr_arr_(static_cast<std::size_t>(size), nullptr),
        cnt_arr_(static_cast<std::size_t>(size), nullptr),
        ptr_arr_aux_(static_cast<std::size_t>(size), nullptr),
        cnt_arr_aux_(static_cast<std::size_t>(size), nullptr),
        i64_(static_cast<std::size_t>(size), 0),
        split_color_(static_cast<std::size_t>(size), 0),
        split_key_(static_cast<std::size_t>(size), 0),
        split_ctx_(static_cast<std::size_t>(size)),
        split_rank_(static_cast<std::size_t>(size), 0) {
    if (registry_) registry_->register_barrier(barrier_);
  }

  int size() const { return size_; }
  void cross() { barrier_->arrive_and_wait(); }
  const std::shared_ptr<BarrierRegistry>& registry() const { return registry_; }

  // Publication board (guarded by barrier crossings, not by a mutex).
  std::vector<const void*>& ptr() { return ptr_; }
  std::vector<std::uint64_t>& cnt() { return cnt_; }
  std::vector<const void* const*>& ptr_arr() { return ptr_arr_; }
  std::vector<const std::uint64_t*>& cnt_arr() { return cnt_arr_; }
  std::vector<const void* const*>& ptr_arr_aux() { return ptr_arr_aux_; }
  std::vector<const std::uint64_t*>& cnt_arr_aux() { return cnt_arr_aux_; }
  std::vector<std::int64_t>& i64() { return i64_; }
  std::vector<int>& split_color() { return split_color_; }
  std::vector<int>& split_key() { return split_key_; }
  std::vector<std::shared_ptr<CommContext>>& split_ctx() { return split_ctx_; }
  std::vector<int>& split_rank() { return split_rank_; }

 private:
  const int size_;
  std::shared_ptr<BarrierRegistry> registry_;
  std::shared_ptr<PoisonableBarrier> barrier_;
  std::vector<const void*> ptr_;
  std::vector<std::uint64_t> cnt_;
  std::vector<const void* const*> ptr_arr_;
  std::vector<const std::uint64_t*> cnt_arr_;
  std::vector<const void* const*> ptr_arr_aux_;
  std::vector<const std::uint64_t*> cnt_arr_aux_;
  std::vector<std::int64_t> i64_;
  std::vector<int> split_color_;
  std::vector<int> split_key_;
  std::vector<std::shared_ptr<CommContext>> split_ctx_;
  std::vector<int> split_rank_;
};

std::shared_ptr<CommContext> make_comm_context(
    int size, const std::shared_ptr<BarrierRegistry>& registry) {
  return std::make_shared<CommContext>(size, registry);
}

std::shared_ptr<BarrierRegistry> make_barrier_registry() {
  return std::make_shared<BarrierRegistry>();
}

void poison_all_barriers(BarrierRegistry& registry) { registry.poison_all(); }

// ---------------------------------------------------------------------------
// Comm.

Comm::Comm(std::shared_ptr<CommContext> ctx, int rank, RankState* state,
           const CostModel* model)
    : ctx_(std::move(ctx)), rank_(rank), size_(ctx_->size()), state_(state),
      model_(model) {
  DRCM_CHECK(rank_ >= 0 && rank_ < size_, "rank out of range for communicator");
  DRCM_CHECK(state_ != nullptr && model_ != nullptr,
             "Comm requires rank state and cost model");
}

void Comm::barrier() {
  cross_barrier();
  charge(model_->barrier(size_));
}

void Comm::publish(const void* ptr, std::uint64_t count) {
  ctx_->ptr()[static_cast<std::size_t>(rank_)] = ptr;
  ctx_->cnt()[static_cast<std::size_t>(rank_)] = count;
}

const void* Comm::peer_ptr(int r) const {
  return ctx_->ptr()[static_cast<std::size_t>(r)];
}

std::uint64_t Comm::peer_count(int r) const {
  return ctx_->cnt()[static_cast<std::size_t>(r)];
}

void Comm::publish_arrays(const void* const* ptrs, const std::uint64_t* counts) {
  ctx_->ptr_arr()[static_cast<std::size_t>(rank_)] = ptrs;
  ctx_->cnt_arr()[static_cast<std::size_t>(rank_)] = counts;
}

const void* const* Comm::peer_ptr_array(int r) const {
  return ctx_->ptr_arr()[static_cast<std::size_t>(r)];
}

const std::uint64_t* Comm::peer_count_array(int r) const {
  return ctx_->cnt_arr()[static_cast<std::size_t>(r)];
}

void Comm::publish_arrays_aux(const void* const* ptrs,
                              const std::uint64_t* counts) {
  ctx_->ptr_arr_aux()[static_cast<std::size_t>(rank_)] = ptrs;
  ctx_->cnt_arr_aux()[static_cast<std::size_t>(rank_)] = counts;
}

const void* const* Comm::peer_ptr_array_aux(int r) const {
  return ctx_->ptr_arr_aux()[static_cast<std::size_t>(r)];
}

const std::uint64_t* Comm::peer_count_array_aux(int r) const {
  return ctx_->cnt_arr_aux()[static_cast<std::size_t>(r)];
}

void Comm::cross_barrier() {
  state_->stats.add_crossing(state_->phase);
  ctx_->cross();
}

void Comm::publish_i64(std::int64_t v) {
  ctx_->i64()[static_cast<std::size_t>(rank_)] = v;
}

std::int64_t Comm::peer_i64(int r) const {
  return ctx_->i64()[static_cast<std::size_t>(r)];
}

void Comm::charge(const CommCost& cost) {
  state_->stats.add_comm(state_->phase, cost);
}

Comm Comm::split(int color, int key) {
  DRCM_CHECK(color >= 0, "split color must be non-negative");
  auto& colors = ctx_->split_color();
  auto& keys = ctx_->split_key();
  colors[static_cast<std::size_t>(rank_)] = color;
  keys[static_cast<std::size_t>(rank_)] = key;
  cross_barrier();
  if (rank_ == 0) {
    // Group members by color; within a group rank by (key, old rank).
    std::map<int, std::vector<int>> groups;
    for (int r = 0; r < size_; ++r) {
      groups[colors[static_cast<std::size_t>(r)]].push_back(r);
    }
    for (auto& [c, members] : groups) {
      std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
        return keys[static_cast<std::size_t>(a)] < keys[static_cast<std::size_t>(b)];
      });
      auto child = std::make_shared<CommContext>(
          static_cast<int>(members.size()), ctx_->registry());
      for (int new_rank = 0; new_rank < static_cast<int>(members.size());
           ++new_rank) {
        const auto m = static_cast<std::size_t>(members[static_cast<std::size_t>(new_rank)]);
        ctx_->split_ctx()[m] = child;
        ctx_->split_rank()[m] = new_rank;
      }
    }
  }
  cross_barrier();
  auto child_ctx = ctx_->split_ctx()[static_cast<std::size_t>(rank_)];
  const int child_rank = ctx_->split_rank()[static_cast<std::size_t>(rank_)];
  cross_barrier();  // everyone picked up before the board can be reused
  charge(model_->allgatherv(size_, static_cast<std::uint64_t>(size_)));
  return Comm(std::move(child_ctx), child_rank, state_, model_);
}

void Comm::charge_compute(double units) {
  state_->stats.add_compute(
      state_->phase, units,
      model_->compute_seconds(units) / static_cast<double>(state_->threads));
}

void Comm::note_resident(std::uint64_t elements) {
  state_->stats.note_resident(elements);
}

Phase Comm::set_phase(Phase p) {
  const Phase prev = state_->phase;
  state_->phase = p;
  return prev;
}

}  // namespace drcm::mps
