// SPMD communicator: the MPI substitute the distributed algorithms run on.
//
// Ranks are threads sharing one address space, but the programming model is
// strict message passing: rank-private data is only exchanged through the
// collectives below, all of which are bulk-synchronous (every member of the
// communicator must call the same collective in the same order, exactly as
// MPI requires). The distributed RCM algorithm needs no general,
// unstructured point-to-point traffic (paper Sec. III-IV), so the runtime
// deliberately offers collectives only:
//
//   barrier, bcast, allreduce (deterministic rank-order fold), allgather(v),
//   alltoallv, exscan_sum, pairwise_exchange (the SpMSpV transpose
//   realignment, performed by all ranks at once), and split (MPI_Comm_split:
//   forms the row/column sub-communicators of the 2D grid).
//
// Mechanically, every collective is two crossings of the communicator's
// barrier around a shared "publication board": ranks publish their
// contribution (copied into board-owned storage, like an MPI send buffer),
// cross the barrier, read what they need from peers, and cross again before
// anyone may reuse the board. The barrier's mutex provides all required
// happens-before ordering, and because the board owns every published
// payload, a rank that unwinds mid-run (injected fault, failed check)
// cannot leave peers reading freed memory.
//
// Every operation is charged to the alpha-beta CostModel and attributed to
// the rank's current Phase, which is how the paper's Figures 4-6 breakdowns
// are produced.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "mpsim/cost_model.hpp"
#include "mpsim/stats.hpp"

namespace drcm::mps {

class CommContext;
class BarrierRegistry;
class FaultPlan;

/// Thrown out of a collective when the runtime tears the world down because
/// another rank failed; distinguishes secondary victims from the root cause.
class PoisonedError : public std::runtime_error {
 public:
  PoisonedError() : std::runtime_error("communicator poisoned: another rank failed") {}
};

/// Thrown when members of one communicator enter DIFFERENT collectives (or
/// different counts of the same collective) — the classic silent-deadlock
/// bug, surfaced as a structured error naming both call sites. Detection:
/// every collective publishes an op-id/epoch tag on its communicator's tag
/// board before its first barrier crossing, and every multi-crossing
/// collective checks all peers' tags between its first and second crossing
/// (where the barrier guarantees the tags are stable for a correct program;
/// a racing incorrect program still detects, the message may just name
/// whichever of the offender's collectives was last published).
class CollectiveMismatchError : public std::logic_error {
 public:
  explicit CollectiveMismatchError(const std::string& what)
      : std::logic_error(what) {}
};

/// Thrown out of a barrier crossing when the watchdog budget elapses with
/// the communicator incomplete — a genuinely stalled (or silently exited)
/// rank. Carries the per-rank "last collective entered" diagnostic instead
/// of hanging the job.
class WatchdogTimeoutError : public std::runtime_error {
 public:
  explicit WatchdogTimeoutError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Identity of a collective operation, for the mismatch tags and the
/// watchdog diagnostics.
enum class CollOp : std::uint8_t {
  kNone = 0,
  kBarrier,
  kBcast,
  kAllreduce,
  kAllgather,
  kAllgatherv,
  kAlltoallv,
  kExscan,
  kGatherv,
  kScatterv,
  kReduce,
  kPairwise,
  kFusedGatherRouteCount,
  kFusedOrderLevel,
  kSplit,
};

const char* coll_op_name(CollOp op);

/// The op-id/epoch tag published per collective: op in the top byte, the
/// phase below it, the per-communicator collective ordinal in the rest.
std::uint64_t pack_collective_tag(CollOp op, Phase phase, std::uint64_t seq);
std::string describe_collective_tag(std::uint64_t tag);

/// Per-rank mutable state shared by all communicators a rank holds
/// (world and any splits): the stats recorder, the current phase and the
/// hybrid thread count.
struct RankState {
  StatsRecorder stats;
  Phase phase = Phase::kOther;
  /// OpenMP threads available to this rank's local kernels (the paper's
  /// hybrid configuration: one communicating thread per process, the rest
  /// doing local work). Modeled compute time divides by this; modeled
  /// communication does not — collectives stay single-threaded per rank.
  int threads = 1;
  /// This rank's MPI_COMM_WORLD rank — the coordinate fault plans script
  /// against (sub-communicator ranks differ).
  int world_rank = 0;
  /// Scripted faults (Runtime::RunOptions::faults); null = healthy run.
  FaultPlan* faults = nullptr;
  /// Collectives entered across ALL communicators of this rank: the
  /// ordinal fault plans fire on.
  std::uint64_t collectives_entered = 0;
  /// Set by a payload-corruption fault; the next received payload of at
  /// least one word gets a bit flip, then the flag clears.
  bool corrupt_armed = false;
  /// Last collective this rank entered (packed tag), read by the barrier
  /// watchdog from another thread — hence atomic.
  std::atomic<std::uint64_t> last_entered{0};
};

/// Number of 8-byte words occupied by one element of T (for cost charging).
template <class T>
constexpr std::uint64_t words_of() {
  return (sizeof(T) + 7) / 8;
}

class Comm {
 public:
  Comm(std::shared_ptr<CommContext> ctx, int rank, RankState* state,
       const CostModel* model);
  Comm(const Comm&) = default;
  Comm(Comm&&) = default;
  Comm& operator=(const Comm&) = delete;
  Comm& operator=(Comm&&) = delete;

  int rank() const { return rank_; }
  int size() const { return size_; }
  /// OpenMP threads the hybrid configuration grants this rank's local
  /// kernels (Runtime::run's threads_per_rank; 1 = flat MPI). Shared by all
  /// communicators of the rank, so split row/column comms agree with world.
  int threads() const { return state_->threads; }

  /// Synchronizes all members (and charges the modeled barrier cost).
  void barrier();

  /// Replicates `data` from `root` to every member.
  template <class T>
  void bcast(std::vector<T>& data, int root);

  /// Reduces one value per rank with `combine`, folding in rank order on
  /// every member (deterministic, identical result everywhere). Intended
  /// for small payloads: scalars and argmin-style pairs.
  template <class T, class Combine>
  T allreduce(const T& value, Combine combine);

  /// Each rank contributes one element; returns all `size()` of them.
  template <class T>
  std::vector<T> allgather(const T& value);

  /// Concatenates every rank's span in rank order.
  template <class T>
  std::vector<T> allgatherv(std::span<const T> local);

  /// Personalized all-to-all. `send[d]` goes to rank `d`; the result is the
  /// concatenation, in source-rank order, of what everyone sent to me.
  /// If `recv_counts` is non-null it receives the per-source element counts.
  template <class T>
  std::vector<T> alltoallv(const std::vector<std::vector<T>>& send,
                           std::vector<std::int64_t>* recv_counts = nullptr);

  /// Exclusive prefix sum over ranks (rank 0 gets T{}).
  template <class T>
  T exscan_sum(const T& value);

  /// Concatenates every rank's span on `root` only (others get empty).
  template <class T>
  std::vector<T> gatherv(std::span<const T> local, int root);

  /// Root distributes `chunks[r]` to rank r; returns my chunk.
  template <class T>
  std::vector<T> scatterv(const std::vector<std::vector<T>>& chunks, int root);

  /// Reduce-to-root with a deterministic rank-order fold; non-root ranks
  /// receive a default-constructed T.
  template <class T, class Combine>
  T reduce(const T& value, Combine combine, int root);

  /// Simultaneous pairwise exchange: every member calls this with its
  /// partner's rank (partner==rank() is a local no-op copy). Used for the
  /// SpMSpV transpose realignment where P(i,j) swaps with P(j,i).
  template <class T>
  std::vector<T> pairwise_exchange(int partner, std::span<const T> send);

  /// Fused three-superstep collective for the BFS level kernel
  /// (dist::bfs_level_step): a sub-group allgatherv, an alltoallv of what
  /// `route` makes of the gathered data, and an allreduce-sum of what
  /// `count` makes of the routed data — in THREE barrier crossings, where
  /// the unfused chain of four collectives pays eight. The supersteps use
  /// three distinct publication boards, so the read of one round and the
  /// publish of the next share a single crossing (classic BSP):
  ///
  ///   publish my `local` span                         [scalar board]
  ///   ---- crossing 1 ----
  ///   gather_buf <- concatenation of `gather_peers`' spans (given order);
  ///   route(gather_buf, route_buf); publish route_buf  [array board]
  ///   ---- crossing 2 ----
  ///   recv_buf <- what every rank routed to me (source-rank order);
  ///   publish count(recv_buf)                          [int64 board]
  ///   ---- crossing 3 ----
  ///   return the sum of all ranks' counts.
  ///
  /// `route` must size route_buf to exactly size() buffers; both buffer
  /// arguments are caller-owned so steady-state loops reuse capacity.
  /// The callbacks run BETWEEN crossings: they may charge compute but must
  /// not invoke any collective on any communicator, and `route` must not
  /// mutate `local`'s backing store (peers are still reading it).
  /// Charged as its component collectives, with the alltoallv latency
  /// priced by the actual destination fan-out (the level kernel routes to
  /// at most sqrt(p) owners, not to all p ranks).
  template <class T, class RouteFn, class CountFn>
  std::int64_t fused_gather_route_count(std::span<const int> gather_peers,
                                        std::span<const T> local,
                                        std::vector<T>& gather_buf,
                                        std::vector<std::vector<T>>& route_buf,
                                        std::vector<T>& recv_buf,
                                        RouteFn&& route, CountFn&& count);

  /// Fused five-superstep collective for the ordering-level kernel
  /// (dist::cm_level_step): extends fused_gather_route_count with a carried
  /// payload on the count superstep and TWO further routed supersteps, so a
  /// whole Cuthill-McKee ordering level (SET + SpMSpV + SELECT + count +
  /// SORTPERM + label scatter) costs FIVE barrier crossings — where the
  /// reference chain pays 3 (fused BFS level) + 6 (SORTPERM's three
  /// collectives) = 9. Board schedule (each board is free one crossing
  /// after its readers finish, classic BSP):
  ///
  ///   publish my `local` span                           [scalar board]
  ///   ---- crossing 1 ----
  ///   gather_buf <- gather_peers' spans; route(); publish [array board]
  ///   ---- crossing 2 ----
  ///   recv_buf <- routed data; n = count_carry(recv_buf, carry_buf);
  ///   publish n [int64 board] and carry_buf [scalar board, free again]
  ///   ---- crossing 3 ----
  ///   total = sum of counts; if total == 0 RETURN (3 crossings: the
  ///   termination level skips the sort tail on every rank uniformly);
  ///   carry_all <- all ranks' carries (rank order);
  ///   sort_route(total, carry_all, sort_route_buf); publish [array board]
  ///   ---- crossing 4 ----
  ///   sort_recv_buf <- routed U data (+ per-source counts);
  ///   rank_route(sort_recv_buf, counts, rank_route_buf); publish
  ///                                             [auxiliary payload board]
  ///   ---- crossing 5 ----
  ///   rank_recv_buf <- routed positions; finish(rank_recv_buf); return.
  ///
  /// Callbacks run BETWEEN crossings: they may charge compute and flip the
  /// phase (dist::cm_level_step flips to the sort phase at sort_route, so
  /// crossings 4-5 and the sort-side volume land in the Ordering:Sort
  /// ledger) but must not invoke any collective. Published backing stores
  /// must stay untouched while peers read them: `local` until crossing 2,
  /// route_buf until crossing 3, carry_buf until crossing 4, sort_route_buf
  /// until crossing 5, and rank_route_buf until this rank's next collective
  /// (whose first crossing proves every peer finished reading; size-only
  /// mutations such as a workspace checkout's clear() are harmless).
  /// Charged as its component collectives: the head exactly like
  /// fused_gather_route_count, the tail as an allgatherv of the carry plus
  /// two FULL-communicator alltoallvs — the paper prices SORTPERM as an
  /// all-process AlltoAll (the T_SortPerm alpha*p term), and the standalone
  /// sortperm_bucket exchange this replaces is charged the same way.
  template <class T, class U, class H, class RouteFn, class CountCarryFn,
            class SortRouteFn, class RankRouteFn, class FinishFn>
  std::int64_t fused_order_level(
      std::span<const int> gather_peers, std::span<const T> local,
      std::vector<T>& gather_buf, std::vector<std::vector<T>>& route_buf,
      std::vector<T>& recv_buf, std::vector<H>& carry_buf,
      std::vector<H>& carry_all, std::vector<std::vector<U>>& sort_route_buf,
      std::vector<U>& sort_recv_buf,
      std::vector<std::vector<T>>& rank_route_buf,
      std::vector<T>& rank_recv_buf, RouteFn&& route,
      CountCarryFn&& count_carry, SortRouteFn&& sort_route,
      RankRouteFn&& rank_route, FinishFn&& finish);

  /// MPI_Comm_split: members with the same `color` form a new communicator,
  /// ranked by (key, old rank).
  Comm split(int color, int key);

  /// Charges `seconds` of modeled dead time (an injected stall, a recovery
  /// backoff) to the current phase without any work units: the time shows
  /// up in the modeled makespan, the unit ledger stays honest.
  void charge_stall(double modeled_seconds);

  /// Charges `units` of scalar work to the current phase. The raw unit
  /// ledger records the algorithm's work independent of threading; the
  /// modeled seconds divide by threads(). That is the paper's (and the
  /// trace model's) hybrid pricing — ALL local computation assumed spread
  /// over P * threads cores — applied uniformly so the two cost paths
  /// agree exactly. Executed wall time honors it only where a kernel
  /// actually splits (today the SpMSpV local multiply; serial scans keep
  /// their measured time, the modeled/measured columns diverging there by
  /// design).
  void charge_compute(double units);

  /// Records this rank's CURRENT distributed-state footprint (in scalar
  /// elements) in the resident-memory ledger; the recorder keeps the peak.
  /// The no-gather pipeline notes its live structures at every stage, which
  /// is how the O(nnz/p + n) per-rank bound is asserted.
  void note_resident(std::uint64_t elements);

  /// Sets the phase used for cost attribution; returns the previous phase.
  Phase set_phase(Phase p);
  Phase phase() const { return state_->phase; }

  StatsRecorder& stats() { return state_->stats; }
  const CostModel& cost_model() const { return *model_; }

 private:
  /// The shared three-superstep head of the fused collectives: publish +
  /// gather, route + exchange, count + allreduce — three crossings, charged
  /// as its component collectives. `count_publish(recv_buf)` runs between
  /// crossings 2 and 3 and may publish additional boards (the ordering
  /// level rides its histogram carry on the freed scalar board there).
  template <class T, class RouteFn, class CountPublishFn>
  std::int64_t fused_head(CollOp op, std::span<const int> gather_peers,
                          std::span<const T> local, std::vector<T>& gather_buf,
                          std::vector<std::vector<T>>& route_buf,
                          std::vector<T>& recv_buf, RouteFn&& route,
                          CountPublishFn&& count_publish);

  /// Entry hook of EVERY collective, called before the first crossing:
  /// bumps the rank's collective counter, fires any scripted fault due at
  /// this ordinal, and publishes the op-id/epoch tag on this
  /// communicator's tag board.
  void enter_collective(CollOp op);
  /// Tag check of every multi-crossing collective, called after each
  /// non-final crossing before the reads it opens: all peers must have
  /// published the same (op, epoch) tag, else CollectiveMismatchError names
  /// both call sites. Costs no crossing and no modeled time.
  void verify_collective(CollOp op);
  /// Applies the armed payload-corruption fault (if any) to a received
  /// buffer of `bytes` bytes: one deterministic bit flip in the first
  /// word, then the fault disarms. No-op when nothing is armed.
  void maybe_corrupt(void* data, std::size_t bytes);

  // Type-erased building blocks implemented in comm.cpp. Publishing COPIES
  // the payload into context-owned arenas (see CommContext): peers read
  // context memory, never this rank's frames, so a rank that unwinds
  // mid-run cannot leave dangling board pointers behind.
  void publish(const void* ptr, std::uint64_t count, std::size_t elem_bytes);
  const void* peer_ptr(int r) const;
  std::uint64_t peer_count(int r) const;
  void publish_arrays(const void* const* ptrs, const std::uint64_t* counts,
                      std::size_t elem_bytes);
  const void* const* peer_ptr_array(int r) const;
  const std::uint64_t* peer_count_array(int r) const;
  /// The auxiliary payload board: a second per-destination array board, so
  /// a fused collective can run two routed supersteps back to back (the
  /// primary array board is still being read when the second superstep
  /// publishes).
  void publish_arrays_aux(const void* const* ptrs, const std::uint64_t* counts,
                          std::size_t elem_bytes);
  const void* const* peer_ptr_array_aux(int r) const;
  const std::uint64_t* peer_count_array_aux(int r) const;
  void publish_i64(std::int64_t v);
  std::int64_t peer_i64(int r) const;
  /// Raw barrier crossing: no modeled seconds charged, but every crossing
  /// is recorded in the per-phase barrier_crossings ledger (the quantity
  /// the fused level kernel's 3-vs-8 contract is asserted on).
  void cross_barrier();

  void charge(const CommCost& cost);

  std::shared_ptr<CommContext> ctx_;
  int rank_;
  int size_;
  RankState* state_;
  const CostModel* model_;
  /// fused_gather_route_count's published pointer tables, kept on the
  /// Comm (one per rank) so steady-state level loops allocate nothing
  /// per call. Reuse is safe: the previous call's peers are all past its
  /// final crossing before this rank can re-enter the collective.
  std::vector<const void*> fused_ptrs_;
  std::vector<std::uint64_t> fused_counts_;
  /// Second pointer-table pair for fused_order_level's position-scatter
  /// superstep (the primary tables are still being read by peers of the
  /// element-deal superstep), plus the per-source count scratch handed to
  /// its rank_route callback.
  std::vector<const void*> fused_ptrs_aux_;
  std::vector<std::uint64_t> fused_counts_aux_;
  std::vector<std::uint64_t> fused_src_counts_;
};

/// RAII phase setter that also attributes measured wall time to the phase.
/// Scopes must not be nested (the RCM driver uses disjoint sequential
/// phases; nesting would double-count wall time).
class PhaseScope {
 public:
  PhaseScope(Comm& comm, Phase phase) : comm_(comm), prev_(comm.set_phase(phase)) {}
  ~PhaseScope() {
    const Phase mine = comm_.set_phase(prev_);
    comm_.stats().add_wall(mine, timer_.seconds());
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Comm& comm_;
  Phase prev_;
  WallTimer timer_;
};

// ---------------------------------------------------------------------------
// Template implementations.

template <class T>
void Comm::bcast(std::vector<T>& data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  DRCM_CHECK(root >= 0 && root < size_, "bcast root out of range");
  enter_collective(CollOp::kBcast);
  publish(data.data(), data.size(), sizeof(T));
  cross_barrier();
  verify_collective(CollOp::kBcast);
  std::uint64_t count = peer_count(root);
  if (rank_ != root) {
    const T* src = static_cast<const T*>(peer_ptr(root));
    data.assign(src, src + count);
    maybe_corrupt(data.data(), data.size() * sizeof(T));
  }
  cross_barrier();
  charge(model_->bcast(size_, count * words_of<T>()));
}

template <class T, class Combine>
T Comm::allreduce(const T& value, Combine combine) {
  static_assert(std::is_trivially_copyable_v<T>);
  enter_collective(CollOp::kAllreduce);
  publish(&value, 1, sizeof(T));
  cross_barrier();
  verify_collective(CollOp::kAllreduce);
  T acc = *static_cast<const T*>(peer_ptr(0));
  for (int r = 1; r < size_; ++r) {
    acc = combine(acc, *static_cast<const T*>(peer_ptr(r)));
  }
  maybe_corrupt(&acc, sizeof(T));
  cross_barrier();
  charge(model_->allreduce(size_, words_of<T>()));
  return acc;
}

template <class T>
std::vector<T> Comm::allgather(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  enter_collective(CollOp::kAllgather);
  publish(&value, 1, sizeof(T));
  cross_barrier();
  verify_collective(CollOp::kAllgather);
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    out.push_back(*static_cast<const T*>(peer_ptr(r)));
  }
  maybe_corrupt(out.data(), out.size() * sizeof(T));
  cross_barrier();
  charge(model_->allgatherv(size_, static_cast<std::uint64_t>(size_) * words_of<T>()));
  return out;
}

template <class T>
std::vector<T> Comm::allgatherv(std::span<const T> local) {
  static_assert(std::is_trivially_copyable_v<T>);
  enter_collective(CollOp::kAllgatherv);
  publish(local.data(), local.size(), sizeof(T));
  cross_barrier();
  verify_collective(CollOp::kAllgatherv);
  std::uint64_t total = 0;
  for (int r = 0; r < size_; ++r) total += peer_count(r);
  std::vector<T> out;
  out.reserve(total);
  for (int r = 0; r < size_; ++r) {
    const T* src = static_cast<const T*>(peer_ptr(r));
    out.insert(out.end(), src, src + peer_count(r));
  }
  maybe_corrupt(out.data(), out.size() * sizeof(T));
  cross_barrier();
  charge(model_->allgatherv(size_, total * words_of<T>()));
  return out;
}

template <class T>
std::vector<T> Comm::alltoallv(const std::vector<std::vector<T>>& send,
                               std::vector<std::int64_t>* recv_counts) {
  static_assert(std::is_trivially_copyable_v<T>);
  DRCM_CHECK(static_cast<int>(send.size()) == size_,
             "alltoallv needs one send buffer per destination rank");
  enter_collective(CollOp::kAlltoallv);
  std::vector<const void*> my_ptrs(static_cast<std::size_t>(size_));
  std::vector<std::uint64_t> my_counts(static_cast<std::size_t>(size_));
  std::uint64_t send_total = 0;
  for (int d = 0; d < size_; ++d) {
    my_ptrs[static_cast<std::size_t>(d)] = send[static_cast<std::size_t>(d)].data();
    my_counts[static_cast<std::size_t>(d)] = send[static_cast<std::size_t>(d)].size();
    send_total += my_counts[static_cast<std::size_t>(d)];
  }
  publish_arrays(my_ptrs.data(), my_counts.data(), sizeof(T));
  cross_barrier();
  verify_collective(CollOp::kAlltoallv);
  std::uint64_t recv_total = 0;
  for (int s = 0; s < size_; ++s) recv_total += peer_count_array(s)[rank_];
  std::vector<T> out;
  out.reserve(recv_total);
  if (recv_counts) recv_counts->assign(static_cast<std::size_t>(size_), 0);
  for (int s = 0; s < size_; ++s) {
    const std::uint64_t c = peer_count_array(s)[rank_];
    const T* src = static_cast<const T*>(peer_ptr_array(s)[rank_]);
    out.insert(out.end(), src, src + c);
    if (recv_counts) (*recv_counts)[static_cast<std::size_t>(s)] = static_cast<std::int64_t>(c);
  }
  maybe_corrupt(out.data(), out.size() * sizeof(T));
  cross_barrier();
  charge(model_->alltoallv(size_, send_total * words_of<T>(),
                           recv_total * words_of<T>()));
  return out;
}

template <class T>
T Comm::exscan_sum(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  enter_collective(CollOp::kExscan);
  publish(&value, 1, sizeof(T));
  cross_barrier();
  verify_collective(CollOp::kExscan);
  T acc{};
  for (int r = 0; r < rank_; ++r) {
    acc = static_cast<T>(acc + *static_cast<const T*>(peer_ptr(r)));
  }
  maybe_corrupt(&acc, sizeof(T));
  cross_barrier();
  charge(model_->exscan(size_, words_of<T>()));
  return acc;
}

template <class T>
std::vector<T> Comm::gatherv(std::span<const T> local, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  DRCM_CHECK(root >= 0 && root < size_, "gatherv root out of range");
  enter_collective(CollOp::kGatherv);
  publish(local.data(), local.size(), sizeof(T));
  cross_barrier();
  verify_collective(CollOp::kGatherv);
  std::vector<T> out;
  std::uint64_t total = 0;
  for (int r = 0; r < size_; ++r) total += peer_count(r);
  if (rank_ == root) {
    out.reserve(total);
    for (int r = 0; r < size_; ++r) {
      const T* src = static_cast<const T*>(peer_ptr(r));
      out.insert(out.end(), src, src + peer_count(r));
    }
    maybe_corrupt(out.data(), out.size() * sizeof(T));
  }
  cross_barrier();
  charge(model_->gatherv(size_, total * words_of<T>()));
  return out;
}

template <class T>
std::vector<T> Comm::scatterv(const std::vector<std::vector<T>>& chunks,
                              int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  DRCM_CHECK(root >= 0 && root < size_, "scatterv root out of range");
  enter_collective(CollOp::kScatterv);
  // Every rank publishes a full-size (if empty) table: the copy-on-publish
  // board walks all size_ destination slots even for non-roots.
  std::vector<const void*> my_ptrs(static_cast<std::size_t>(size_), nullptr);
  std::vector<std::uint64_t> my_counts(static_cast<std::size_t>(size_), 0);
  std::uint64_t total = 0;
  if (rank_ == root) {
    DRCM_CHECK(static_cast<int>(chunks.size()) == size_,
               "scatterv needs one chunk per rank");
    for (int r = 0; r < size_; ++r) {
      my_ptrs[static_cast<std::size_t>(r)] = chunks[static_cast<std::size_t>(r)].data();
      my_counts[static_cast<std::size_t>(r)] = chunks[static_cast<std::size_t>(r)].size();
      total += my_counts[static_cast<std::size_t>(r)];
    }
  }
  publish_arrays(my_ptrs.data(), my_counts.data(), sizeof(T));
  cross_barrier();
  verify_collective(CollOp::kScatterv);
  const std::uint64_t c = peer_count_array(root)[rank_];
  const T* src = static_cast<const T*>(peer_ptr_array(root)[rank_]);
  std::vector<T> out(src, src + c);
  maybe_corrupt(out.data(), out.size() * sizeof(T));
  cross_barrier();
  charge(model_->scatterv(size_, total * words_of<T>()));
  return out;
}

template <class T, class Combine>
T Comm::reduce(const T& value, Combine combine, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  DRCM_CHECK(root >= 0 && root < size_, "reduce root out of range");
  enter_collective(CollOp::kReduce);
  publish(&value, 1, sizeof(T));
  cross_barrier();
  verify_collective(CollOp::kReduce);
  T acc{};
  if (rank_ == root) {
    acc = *static_cast<const T*>(peer_ptr(0));
    for (int r = 1; r < size_; ++r) {
      acc = combine(acc, *static_cast<const T*>(peer_ptr(r)));
    }
    maybe_corrupt(&acc, sizeof(T));
  }
  cross_barrier();
  charge(model_->reduce(size_, words_of<T>()));
  return acc;
}

template <class T>
std::vector<T> Comm::pairwise_exchange(int partner, std::span<const T> send) {
  static_assert(std::is_trivially_copyable_v<T>);
  DRCM_CHECK(partner >= 0 && partner < size_, "pairwise partner out of range");
  enter_collective(CollOp::kPairwise);
  publish(send.data(), send.size(), sizeof(T));
  cross_barrier();
  verify_collective(CollOp::kPairwise);
  const std::uint64_t count = peer_count(partner);
  const T* src = static_cast<const T*>(peer_ptr(partner));
  std::vector<T> out(src, src + count);
  maybe_corrupt(out.data(), out.size() * sizeof(T));
  cross_barrier();
  if (partner != rank_) {
    charge(model_->pairwise(count * words_of<T>()));
  }
  return out;
}

template <class T, class RouteFn, class CountPublishFn>
std::int64_t Comm::fused_head(CollOp op, std::span<const int> gather_peers,
                              std::span<const T> local,
                              std::vector<T>& gather_buf,
                              std::vector<std::vector<T>>& route_buf,
                              std::vector<T>& recv_buf, RouteFn&& route,
                              CountPublishFn&& count_publish) {
  static_assert(std::is_trivially_copyable_v<T>);

  // Superstep 1: publish my span on the scalar board...
  enter_collective(op);
  publish(local.data(), local.size(), sizeof(T));
  cross_barrier();
  verify_collective(op);
  // ...and read my gather group. Peers read MY span until crossing 2, so
  // `local` must not alias any buffer mutated below (gather_buf is fine:
  // it is this rank's private landing area).
  gather_buf.clear();
  for (const int r : gather_peers) {
    DRCM_CHECK(r >= 0 && r < size_, "gather peer out of range");
    const T* src = static_cast<const T*>(peer_ptr(r));
    gather_buf.insert(gather_buf.end(), src, src + peer_count(r));
  }
  const std::uint64_t gathered_words = gather_buf.size() * words_of<T>();

  // Superstep 2: route locally, publish per-destination buffers on the
  // array board (the scalar board is still being read — boards are
  // distinct, so this costs no extra crossing).
  route(static_cast<const std::vector<T>&>(gather_buf), route_buf);
  DRCM_CHECK(static_cast<int>(route_buf.size()) == size_,
             "route must produce one buffer per destination rank");
  fused_ptrs_.resize(static_cast<std::size_t>(size_));
  fused_counts_.resize(static_cast<std::size_t>(size_));
  std::uint64_t send_words = 0;
  int fan_out = 0;
  for (int d = 0; d < size_; ++d) {
    const auto& buf = route_buf[static_cast<std::size_t>(d)];
    fused_ptrs_[static_cast<std::size_t>(d)] = buf.data();
    fused_counts_[static_cast<std::size_t>(d)] = buf.size();
    send_words += buf.size() * words_of<T>();
    fan_out += !buf.empty() && d != rank_;
  }
  publish_arrays(fused_ptrs_.data(), fused_counts_.data(), sizeof(T));
  cross_barrier();
  // Re-verify before reading: crossing 2 is non-final for both fused
  // variants, so a passing check proves every rank is still in lockstep in
  // THIS call and the array board below is stable while we read it. (A rank
  // that diverged — e.g. on a corrupted payload — would have published a
  // different tag before whichever arrival released us.)
  verify_collective(op);
  recv_buf.clear();
  std::uint64_t recv_words = 0;
  for (int s = 0; s < size_; ++s) {
    const std::uint64_t c = peer_count_array(s)[rank_];
    const T* src = static_cast<const T*>(peer_ptr_array(s)[rank_]);
    recv_buf.insert(recv_buf.end(), src, src + c);
    recv_words += c * words_of<T>();
  }
  maybe_corrupt(recv_buf.data(), recv_buf.size() * sizeof(T));

  // Superstep 3: publish my contribution on the int64 board (the array
  // board is still being read; count_publish may ride additional boards),
  // fold everyone's after the last crossing.
  publish_i64(count_publish(static_cast<const std::vector<T>&>(recv_buf)));
  cross_barrier();
  std::int64_t total = 0;
  for (int r = 0; r < size_; ++r) total += peer_i64(r);

  CommCost cost =
      model_->allgatherv(static_cast<int>(gather_peers.size()), gathered_words);
  cost += model_->alltoallv(fan_out + 1, send_words, recv_words);
  cost += model_->allreduce(size_, 1);
  charge(cost);
  return total;
}

template <class T, class RouteFn, class CountFn>
std::int64_t Comm::fused_gather_route_count(
    std::span<const int> gather_peers, std::span<const T> local,
    std::vector<T>& gather_buf, std::vector<std::vector<T>>& route_buf,
    std::vector<T>& recv_buf, RouteFn&& route, CountFn&& count) {
  return fused_head(CollOp::kFusedGatherRouteCount, gather_peers, local,
                    gather_buf, route_buf, recv_buf,
                    std::forward<RouteFn>(route),
                    [&](const std::vector<T>& received) -> std::int64_t {
                      return count(received);
                    });
}

template <class T, class U, class H, class RouteFn, class CountCarryFn,
          class SortRouteFn, class RankRouteFn, class FinishFn>
std::int64_t Comm::fused_order_level(
    std::span<const int> gather_peers, std::span<const T> local,
    std::vector<T>& gather_buf, std::vector<std::vector<T>>& route_buf,
    std::vector<T>& recv_buf, std::vector<H>& carry_buf,
    std::vector<H>& carry_all, std::vector<std::vector<U>>& sort_route_buf,
    std::vector<U>& sort_recv_buf, std::vector<std::vector<T>>& rank_route_buf,
    std::vector<T>& rank_recv_buf, RouteFn&& route, CountCarryFn&& count_carry,
    SortRouteFn&& sort_route, RankRouteFn&& rank_route, FinishFn&& finish) {
  static_assert(std::is_trivially_copyable_v<U>);
  static_assert(std::is_trivially_copyable_v<H>);

  // Supersteps 1-3: the shared head, with the carry payload riding the
  // scalar board (free since crossing 2) next to the int64 count.
  const std::int64_t total = fused_head(
      CollOp::kFusedOrderLevel, gather_peers, local, gather_buf, route_buf,
      recv_buf, std::forward<RouteFn>(route),
      [&](const std::vector<T>& received) -> std::int64_t {
        carry_buf.clear();
        const std::int64_t n = count_carry(received, carry_buf);
        publish(carry_buf.data(), carry_buf.size(), sizeof(H));
        return n;
      });
  if (total == 0) return 0;  // identical on every rank: uniform early exit

  // total != 0 means crossing 3 was NOT this call's final crossing, so the
  // lockstep re-check is sound here and guards the carry reads below.
  verify_collective(CollOp::kFusedOrderLevel);

  // Superstep 4: read the carry allgather, deal the U elements (the array
  // board is free since crossing 3).
  carry_all.clear();
  std::uint64_t carry_words = 0;
  for (int r = 0; r < size_; ++r) {
    const H* src = static_cast<const H*>(peer_ptr(r));
    carry_all.insert(carry_all.end(), src, src + peer_count(r));
    carry_words += peer_count(r) * words_of<H>();
  }
  sort_route(total, static_cast<const std::vector<H>&>(carry_all),
             sort_route_buf);
  charge(model_->allgatherv(size_, carry_words));
  DRCM_CHECK(static_cast<int>(sort_route_buf.size()) == size_,
             "sort_route must produce one buffer per destination rank");
  std::uint64_t sort_send_words = 0;
  for (int d = 0; d < size_; ++d) {
    const auto& buf = sort_route_buf[static_cast<std::size_t>(d)];
    fused_ptrs_[static_cast<std::size_t>(d)] = buf.data();
    fused_counts_[static_cast<std::size_t>(d)] = buf.size();
    sort_send_words += buf.size() * words_of<U>();
  }
  publish_arrays(fused_ptrs_.data(), fused_counts_.data(), sizeof(U));
  cross_barrier();
  verify_collective(CollOp::kFusedOrderLevel);  // crossing 4: still non-final
  sort_recv_buf.clear();
  fused_src_counts_.assign(static_cast<std::size_t>(size_), 0);
  std::uint64_t sort_recv_words = 0;
  for (int s = 0; s < size_; ++s) {
    const std::uint64_t c = peer_count_array(s)[rank_];
    const U* src = static_cast<const U*>(peer_ptr_array(s)[rank_]);
    sort_recv_buf.insert(sort_recv_buf.end(), src, src + c);
    fused_src_counts_[static_cast<std::size_t>(s)] = c;
    sort_recv_words += c * words_of<U>();
  }
  maybe_corrupt(sort_recv_buf.data(), sort_recv_buf.size() * sizeof(U));
  // Priced as the paper's all-process AlltoAll (T_SortPerm's alpha*p term),
  // matching the standalone sortperm_bucket exchange it replaces.
  charge(model_->alltoallv(size_, sort_send_words, sort_recv_words));

  // Superstep 5: scatter the computed positions home on the auxiliary
  // payload board (the primary array board is still being read).
  rank_route(static_cast<const std::vector<U>&>(sort_recv_buf),
             std::span<const std::uint64_t>(fused_src_counts_),
             rank_route_buf);
  DRCM_CHECK(static_cast<int>(rank_route_buf.size()) == size_,
             "rank_route must produce one buffer per destination rank");
  fused_ptrs_aux_.resize(static_cast<std::size_t>(size_));
  fused_counts_aux_.resize(static_cast<std::size_t>(size_));
  std::uint64_t rank_send_words = 0;
  for (int d = 0; d < size_; ++d) {
    const auto& buf = rank_route_buf[static_cast<std::size_t>(d)];
    fused_ptrs_aux_[static_cast<std::size_t>(d)] = buf.data();
    fused_counts_aux_[static_cast<std::size_t>(d)] = buf.size();
    rank_send_words += buf.size() * words_of<T>();
  }
  publish_arrays_aux(fused_ptrs_aux_.data(), fused_counts_aux_.data(), sizeof(T));
  cross_barrier();
  rank_recv_buf.clear();
  std::uint64_t rank_recv_words = 0;
  for (int s = 0; s < size_; ++s) {
    const std::uint64_t c = peer_count_array_aux(s)[rank_];
    const T* src = static_cast<const T*>(peer_ptr_array_aux(s)[rank_]);
    rank_recv_buf.insert(rank_recv_buf.end(), src, src + c);
    rank_recv_words += c * words_of<T>();
  }
  maybe_corrupt(rank_recv_buf.data(), rank_recv_buf.size() * sizeof(T));
  charge(model_->alltoallv(size_, rank_send_words, rank_recv_words));
  finish(static_cast<const std::vector<T>&>(rank_recv_buf));
  return total;
}

}  // namespace drcm::mps
