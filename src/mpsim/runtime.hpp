// SPMD launcher: runs a function body on `nranks` simulated ranks.
//
// Equivalent to `mpiexec -n nranks`: each rank executes the same body with
// its own Comm (MPI_COMM_WORLD). Rank bodies communicate only through Comm
// collectives. If any rank throws, the runtime poisons every communicator so
// the remaining ranks abort out of their collectives, then rethrows the
// original exception on the caller's thread.
//
// The returned SpmdReport carries each rank's per-phase measured and modeled
// costs plus helpers implementing the aggregation rule for bulk-synchronous
// execution (per phase, the slowest rank sets the pace).
#pragma once

#include <functional>
#include <vector>

#include "mpsim/comm.hpp"
#include "mpsim/cost_model.hpp"
#include "mpsim/stats.hpp"

namespace drcm::mps {

/// Result of one SPMD run: per-rank recorders plus aggregation helpers.
struct SpmdReport {
  std::vector<StatsRecorder> ranks;
  MachineParams machine;

  /// Max/mean across ranks for one phase.
  PhaseAggregate aggregate(Phase phase) const;
  /// Sum over phases of the per-phase max across ranks: the modeled
  /// makespan of a bulk-synchronous run.
  double modeled_makespan() const;
  /// Same, measured wall clock (meaningful only when ranks do not
  /// oversubscribe physical cores).
  double measured_makespan() const;
  /// Largest resident-memory ledger peak across ranks (scalar elements):
  /// the quantity the fully distributed pipeline bounds by O(nnz/p + n).
  std::uint64_t max_peak_resident() const;
};

class Runtime {
 public:
  /// Runs `body` on `nranks` ranks and returns the cost report.
  /// `threads_per_rank` is the hybrid OpenMP-MPI configuration: each rank's
  /// Comm::threads() reports it, the node-level kernels split their local
  /// loops across that many OpenMP threads, and modeled compute time is
  /// divided accordingly (communication is performed by one thread per
  /// rank, as in the paper's hybrid implementation).
  static SpmdReport run(int nranks, const std::function<void(Comm&)>& body,
                        const MachineParams& machine = {},
                        int threads_per_rank = 1);
};

}  // namespace drcm::mps
