// SPMD launcher: runs a function body on `nranks` simulated ranks.
//
// Equivalent to `mpiexec -n nranks`: each rank executes the same body with
// its own Comm (MPI_COMM_WORLD). Rank bodies communicate only through Comm
// collectives. If any rank throws, the runtime poisons every communicator so
// the remaining ranks abort out of their collectives, then rethrows the
// original exception on the caller's thread.
//
// The returned SpmdReport carries each rank's per-phase measured and modeled
// costs plus helpers implementing the aggregation rule for bulk-synchronous
// execution (per phase, the slowest rank sets the pace).
#pragma once

#include <functional>
#include <vector>

#include "mpsim/comm.hpp"
#include "mpsim/cost_model.hpp"
#include "mpsim/stats.hpp"

namespace drcm::mps {

/// Result of one SPMD run: per-rank recorders plus aggregation helpers.
struct SpmdReport {
  std::vector<StatsRecorder> ranks;
  MachineParams machine;

  /// Max/mean across ranks for one phase.
  PhaseAggregate aggregate(Phase phase) const;
  /// Sum over phases of the per-phase max across ranks: the modeled
  /// makespan of a bulk-synchronous run.
  double modeled_makespan() const;
  /// Same, measured wall clock (meaningful only when ranks do not
  /// oversubscribe physical cores).
  double measured_makespan() const;
  /// Largest resident-memory ledger peak across ranks (scalar elements):
  /// the quantity the fully distributed pipeline bounds by O(nnz/p + n).
  std::uint64_t max_peak_resident() const;

  /// Folds another run's per-rank ledgers into this report (rank-wise;
  /// the reports must have the same rank count, or this one must still be
  /// empty). The recoverable driver uses this so the cost of abandoned
  /// attempts — including injected stalls and retry backoff — stays on
  /// the final bill instead of vanishing with the failed run.
  void merge_from(const SpmdReport& other);
};

/// Extended launch configuration for fault-tolerance work.
struct RunOptions {
  MachineParams machine{};
  /// Hybrid OpenMP-MPI configuration; see Runtime::run.
  int threads_per_rank = 1;
  /// Scripted faults injected at each rank's collective-entry hook; may be
  /// null. Actions are one-shot (transient-fault semantics) — see fault.hpp.
  FaultPlan* faults = nullptr;
  /// Barrier watchdog budget in wall-clock seconds; 0 disables. A barrier
  /// left incomplete this long poisons the run and throws
  /// WatchdogTimeoutError naming each rank's last-entered collective, so a
  /// stalled rank becomes a bounded-time diagnostic instead of a hang.
  double watchdog_seconds = 0.0;
  /// When a rank throws, the runtime rethrows on the caller's thread and
  /// the run's SpmdReport is never returned. If non-null, the partial
  /// per-rank ledgers are copied here before the rethrow so a recoverable
  /// driver can still charge the abandoned attempt's cost.
  SpmdReport* report_on_error = nullptr;
};

class Runtime {
 public:
  /// Runs `body` on `nranks` ranks and returns the cost report.
  /// `threads_per_rank` is the hybrid OpenMP-MPI configuration: each rank's
  /// Comm::threads() reports it, the node-level kernels split their local
  /// loops across that many OpenMP threads, and modeled compute time is
  /// divided accordingly (communication is performed by one thread per
  /// rank, as in the paper's hybrid implementation).
  static SpmdReport run(int nranks, const std::function<void(Comm&)>& body,
                        const MachineParams& machine = {},
                        int threads_per_rank = 1);

  /// Same, with fault injection and the barrier watchdog.
  static SpmdReport run(int nranks, const std::function<void(Comm&)>& body,
                        const RunOptions& options);
};

}  // namespace drcm::mps
