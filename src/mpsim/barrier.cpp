#include "mpsim/barrier.hpp"

// Header-only today; this translation unit pins the vtable-free class into
// the library and is the anchor for future non-inline additions.
