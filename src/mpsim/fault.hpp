// Deterministic fault injection for the mpsim runtime.
//
// A FaultPlan scripts failures per rank against the rank's own collective
// counter: "rank 2 dies entering its 17th collective", "rank 0 receives a
// corrupted payload at its 5th", "rank 3's allocation fails at its 9th",
// "rank 1 stalls for 0.2 modeled seconds at its 30th". The plan is injected
// through Comm's collective entry hook (Runtime::RunOptions::faults), so
// every failure scenario is a pure function of (plan, program) and replays
// bit-identically in ctest — no timing, no signals, no randomness at
// execution time. Seeded random plans (FaultPlan::random) make sweep tests
// reproducible the same way the synthetic generators are.
//
// Actions are ONE-SHOT: each fires at most once and stays spent afterwards,
// modeling transient faults so a recovery layer retrying the run does not
// re-hit the same failure forever. Only the target rank's thread reads or
// writes an action's fired flag, and retry attempts are sequential, so the
// flag needs no synchronization.
#pragma once

#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

namespace drcm::mps {

enum class FaultKind {
  kRankDeath,          ///< throw InjectedFault out of the collective
  kPayloadCorruption,  ///< flip bits in the next received payload
  kAllocFailure,       ///< throw std::bad_alloc (allocation K failed)
  kStall,              ///< charge T modeled seconds of dead time
};

const char* fault_kind_name(FaultKind kind);

/// One scripted failure: fires when `rank` enters its `at_collective`-th
/// collective (1-based, counted across ALL communicators the rank uses).
struct FaultAction {
  FaultKind kind = FaultKind::kRankDeath;
  int rank = 0;
  std::uint64_t at_collective = 1;
  /// kStall only: dead time charged to the cost ledger.
  double stall_modeled_seconds = 0.0;
  /// Spent flag (transient-fault semantics; see file comment).
  bool fired = false;
};

/// Thrown by the rank-death and (indirectly) corruption faults; carries the
/// scripted coordinates so tests and logs can name the fault.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultKind kind, int rank, std::uint64_t ordinal);
  FaultKind kind() const { return kind_; }
  int rank() const { return rank_; }
  std::uint64_t ordinal() const { return ordinal_; }

 private:
  FaultKind kind_;
  int rank_;
  std::uint64_t ordinal_;
};

/// The kAllocFailure fault: derives from std::bad_alloc so code that
/// handles real allocation failure handles the injected one identically,
/// but still names the scripted coordinates in what().
class InjectedAllocFailure : public std::bad_alloc {
 public:
  InjectedAllocFailure(int rank, std::uint64_t ordinal);
  const char* what() const noexcept override { return what_.c_str(); }
  int rank() const { return rank_; }
  std::uint64_t ordinal() const { return ordinal_; }

 private:
  std::string what_;
  int rank_;
  std::uint64_t ordinal_;
};

/// A scripted set of FaultActions. Fluent builders for tests; `random` for
/// seeded sweep plans.
class FaultPlan {
 public:
  FaultPlan& die_at(int rank, std::uint64_t nth_collective);
  FaultPlan& corrupt_at(int rank, std::uint64_t nth_collective);
  FaultPlan& fail_alloc_at(int rank, std::uint64_t nth_collective);
  FaultPlan& stall_at(int rank, std::uint64_t nth_collective,
                      double modeled_seconds);

  /// A reproducible plan of `count` faults drawn from `seed`: ranks uniform
  /// in [0, nranks), ordinals uniform in [1, horizon], kinds cycling through
  /// the four FaultKinds.
  static FaultPlan random(std::uint64_t seed, int nranks,
                          std::uint64_t horizon, int count);

  /// The unfired action scheduled for (rank, ordinal), or null. Does not
  /// mark it fired — the injection site does, once the fault actually
  /// executed.
  FaultAction* find(int rank, std::uint64_t ordinal);

  /// Forget all fired flags, so the same plan can script a fresh run.
  void reset();

  bool empty() const { return actions_.empty(); }
  const std::vector<FaultAction>& actions() const { return actions_; }

 private:
  std::vector<FaultAction> actions_;
};

}  // namespace drcm::mps
