// Reusable barrier for SPMD rank synchronization.
//
// Every collective in the runtime is built from two or three barrier
// crossings over a shared "publication board" (see comm.hpp). The barrier
// must (a) be reusable an unbounded number of times, (b) establish
// happens-before between writes preceding one crossing and reads following
// it, and (c) block rather than spin, because the simulated ranks are
// threads that may heavily oversubscribe the physical cores.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/check.hpp"

namespace drcm::mps {

/// Generation-counting barrier for a fixed set of `n` participants.
/// Mutex/condition-variable based: safe under oversubscription, and the
/// mutex provides the memory ordering collectives rely on.
class Barrier {
 public:
  explicit Barrier(int n) : n_(n), waiting_(0), generation_(0) {
    DRCM_CHECK(n > 0, "barrier needs at least one participant");
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all `n` participants have arrived.
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    const std::uint64_t my_generation = generation_;
    if (++waiting_ == n_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != my_generation; });
    }
  }

  int participants() const { return n_; }

 private:
  const int n_;
  int waiting_;
  std::uint64_t generation_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace drcm::mps
