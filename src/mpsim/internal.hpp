// Internal plumbing shared between comm.cpp and runtime.cpp. Not part of
// the public API.
#pragma once

#include <functional>
#include <memory>
#include <string>

namespace drcm::mps {

class CommContext;
class BarrierRegistry;
class PoisonableBarrier;

std::shared_ptr<CommContext> make_comm_context(
    int size, const std::shared_ptr<BarrierRegistry>& registry);

std::shared_ptr<BarrierRegistry> make_barrier_registry();
void poison_all_barriers(BarrierRegistry& registry);

/// Arm the barrier watchdog: any barrier that stays incomplete for `seconds`
/// wall-clock poisons itself and throws WatchdogTimeoutError carrying
/// `diagnostic()` (the runtime's per-rank last-entered table). Must be called
/// before rank threads start; 0 disables.
void set_watchdog(BarrierRegistry& registry, double seconds,
                  std::function<std::string()> diagnostic);

}  // namespace drcm::mps
