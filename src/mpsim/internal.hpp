// Internal plumbing shared between comm.cpp and runtime.cpp. Not part of
// the public API.
#pragma once

#include <memory>

namespace drcm::mps {

class CommContext;
class BarrierRegistry;
class PoisonableBarrier;

std::shared_ptr<CommContext> make_comm_context(
    int size, const std::shared_ptr<BarrierRegistry>& registry);

std::shared_ptr<BarrierRegistry> make_barrier_registry();
void poison_all_barriers(BarrierRegistry& registry);

}  // namespace drcm::mps
