#include "mpsim/fault.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace drcm::mps {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRankDeath: return "rank-death";
    case FaultKind::kPayloadCorruption: return "payload-corruption";
    case FaultKind::kAllocFailure: return "alloc-failure";
    case FaultKind::kStall: return "stall";
  }
  return "unknown";
}

InjectedFault::InjectedFault(FaultKind kind, int rank, std::uint64_t ordinal)
    : std::runtime_error("injected fault: " + std::string(fault_kind_name(kind)) +
                         " on rank " + std::to_string(rank) + " at collective #" +
                         std::to_string(ordinal)),
      kind_(kind),
      rank_(rank),
      ordinal_(ordinal) {}

InjectedAllocFailure::InjectedAllocFailure(int rank, std::uint64_t ordinal)
    : what_("injected fault: alloc-failure on rank " + std::to_string(rank) +
            " at collective #" + std::to_string(ordinal)),
      rank_(rank),
      ordinal_(ordinal) {}

namespace {

FaultAction make_action(FaultKind kind, int rank, std::uint64_t nth) {
  DRCM_CHECK(rank >= 0, "fault rank must be non-negative");
  DRCM_CHECK(nth >= 1, "collective ordinals are 1-based");
  FaultAction a;
  a.kind = kind;
  a.rank = rank;
  a.at_collective = nth;
  return a;
}

}  // namespace

FaultPlan& FaultPlan::die_at(int rank, std::uint64_t nth_collective) {
  actions_.push_back(make_action(FaultKind::kRankDeath, rank, nth_collective));
  return *this;
}

FaultPlan& FaultPlan::corrupt_at(int rank, std::uint64_t nth_collective) {
  actions_.push_back(
      make_action(FaultKind::kPayloadCorruption, rank, nth_collective));
  return *this;
}

FaultPlan& FaultPlan::fail_alloc_at(int rank, std::uint64_t nth_collective) {
  actions_.push_back(
      make_action(FaultKind::kAllocFailure, rank, nth_collective));
  return *this;
}

FaultPlan& FaultPlan::stall_at(int rank, std::uint64_t nth_collective,
                               double modeled_seconds) {
  DRCM_CHECK(modeled_seconds >= 0.0, "stall time must be non-negative");
  auto a = make_action(FaultKind::kStall, rank, nth_collective);
  a.stall_modeled_seconds = modeled_seconds;
  actions_.push_back(a);
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int nranks,
                            std::uint64_t horizon, int count) {
  DRCM_CHECK(nranks >= 1, "random plan needs at least one rank");
  DRCM_CHECK(horizon >= 1, "random plan needs a positive ordinal horizon");
  DRCM_CHECK(count >= 0, "random plan needs a non-negative fault count");
  static constexpr FaultKind kKinds[] = {
      FaultKind::kRankDeath, FaultKind::kPayloadCorruption,
      FaultKind::kAllocFailure, FaultKind::kStall};
  Rng rng(seed);
  FaultPlan plan;
  for (int i = 0; i < count; ++i) {
    const auto rank = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
    const std::uint64_t nth = 1 + rng.next_below(horizon);
    auto a = make_action(kKinds[i % 4], rank, nth);
    if (a.kind == FaultKind::kStall) {
      a.stall_modeled_seconds = 0.01 * (1.0 + rng.next_double());
    }
    plan.actions_.push_back(a);
  }
  return plan;
}

FaultAction* FaultPlan::find(int rank, std::uint64_t ordinal) {
  for (auto& a : actions_) {
    // Match on (rank, ordinal) BEFORE touching `fired`: the flag is only
    // ever read or written by the owning rank's thread this way (see the
    // file comment's synchronization contract).
    if (a.rank == rank && a.at_collective == ordinal && !a.fired) return &a;
  }
  return nullptr;
}

void FaultPlan::reset() {
  for (auto& a : actions_) a.fired = false;
}

}  // namespace drcm::mps
