#include "mpsim/stats.hpp"

namespace drcm::mps {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kPeripheralSpmspv:
      return "Peripheral:SpMSpV";
    case Phase::kPeripheralOther:
      return "Peripheral:Other";
    case Phase::kOrderingSpmspv:
      return "Ordering:SpMSpV";
    case Phase::kOrderingSort:
      return "Ordering:Sorting";
    case Phase::kOrderingOther:
      return "Ordering:Other";
    case Phase::kSolver:
      return "Solver";
    case Phase::kRedistribute:
      return "Redistribute";
    case Phase::kOther:
      return "Other";
  }
  return "Unknown";
}

PhaseTotals& PhaseTotals::operator+=(const PhaseTotals& o) {
  wall_seconds += o.wall_seconds;
  model_compute_seconds += o.model_compute_seconds;
  model_comm_seconds += o.model_comm_seconds;
  compute_units += o.compute_units;
  messages += o.messages;
  words += o.words;
  barrier_crossings += o.barrier_crossings;
  return *this;
}

void StatsRecorder::add_comm(Phase phase, const CommCost& cost) {
  auto& t = totals_[static_cast<int>(phase)];
  t.model_comm_seconds += cost.seconds;
  t.messages += cost.messages;
  t.words += cost.words;
}

void StatsRecorder::add_compute(Phase phase, double units,
                                double modeled_seconds) {
  auto& t = totals_[static_cast<int>(phase)];
  t.compute_units += units;
  t.model_compute_seconds += modeled_seconds;
}

void StatsRecorder::add_wall(Phase phase, double seconds) {
  totals_[static_cast<int>(phase)].wall_seconds += seconds;
}

void StatsRecorder::add_crossing(Phase phase) {
  ++totals_[static_cast<int>(phase)].barrier_crossings;
}

void StatsRecorder::note_resident(std::uint64_t elements) {
  if (elements > peak_resident_) peak_resident_ = elements;
}

void StatsRecorder::merge_from(const StatsRecorder& other) {
  for (int p = 0; p < kNumPhases; ++p) totals_[p] += other.totals_[p];
  note_resident(other.peak_resident_);
}

PhaseTotals StatsRecorder::total() const {
  PhaseTotals sum;
  for (const auto& t : totals_) sum += t;
  return sum;
}

void StatsRecorder::reset() {
  totals_ = {};
  peak_resident_ = 0;
}

std::uint64_t ordering_crossings(const StatsRecorder& stats) {
  return stats.phase(Phase::kPeripheralSpmspv).barrier_crossings +
         stats.phase(Phase::kPeripheralOther).barrier_crossings +
         stats.phase(Phase::kOrderingSpmspv).barrier_crossings +
         stats.phase(Phase::kOrderingSort).barrier_crossings +
         stats.phase(Phase::kOrderingOther).barrier_crossings;
}

}  // namespace drcm::mps
