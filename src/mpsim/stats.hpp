// Per-rank, per-phase accounting of wall time, modeled time and
// communication volume.
//
// The paper's Figure 4 splits total runtime into five components
// (Peripheral/Ordering x SpMSpV/Sorting/Other) and Figure 5 splits SpMSpV
// into computation vs communication. Every Comm operation and every
// charge_compute() call is attributed to the phase currently set on the
// Comm, so those breakdowns fall directly out of the recorder.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "mpsim/cost_model.hpp"

namespace drcm::mps {

/// Execution phases matching the paper's Figure 4/5 breakdown, plus
/// general-purpose buckets for other workloads built on the runtime.
enum class Phase : int {
  kPeripheralSpmspv = 0,
  kPeripheralOther,
  kOrderingSpmspv,
  kOrderingSort,
  kOrderingOther,
  kSolver,
  kRedistribute,
  kOther,
};

inline constexpr int kNumPhases = static_cast<int>(Phase::kOther) + 1;

std::string_view phase_name(Phase p);

/// Accumulated costs of one phase on one rank.
struct PhaseTotals {
  double wall_seconds = 0.0;        ///< measured wall-clock time
  double model_compute_seconds = 0.0;
  double model_comm_seconds = 0.0;
  double compute_units = 0.0;       ///< raw work units charged
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  /// Barrier synchronizations entered (every collective is two crossings
  /// of the publication-board barrier; the fused level collective is
  /// three for its whole gather-route-count chain, and the fused ordering
  /// level five for BFS level + SORTPERM + label scatter together). The
  /// latency budget the fused kernels exist to shrink.
  std::uint64_t barrier_crossings = 0;

  double model_total() const { return model_compute_seconds + model_comm_seconds; }

  PhaseTotals& operator+=(const PhaseTotals& o);
};

/// Per-rank recorder. Not thread-safe by design: each rank owns its own.
class StatsRecorder {
 public:
  void add_comm(Phase phase, const CommCost& cost);
  void add_compute(Phase phase, double units, double modeled_seconds);
  void add_wall(Phase phase, double seconds);
  void add_crossing(Phase phase);

  /// Records that this rank currently holds `elements` scalar slots of
  /// distributed-pipeline state (matrix blocks, in-flight exchange buffers,
  /// solver row blocks); the recorder keeps the high-water mark. This is
  /// the ledger the no-gather pipeline's O(nnz/p + n/p) scalability
  /// contract is asserted on: a stage that materializes the full matrix or
  /// a replicated O(n) vector on one rank shows up here as an O(nnz) or
  /// O(n) peak.
  void note_resident(std::uint64_t elements);
  std::uint64_t peak_resident_elements() const { return peak_resident_; }

  const PhaseTotals& phase(Phase p) const {
    return totals_[static_cast<int>(p)];
  }
  PhaseTotals total() const;

  /// Folds another recorder into this one: phase totals add, the resident
  /// high-water mark takes the max. This is how the recoverable driver
  /// charges abandoned attempts to the final ledger — a retried stage's
  /// cost is real cost, so recovery reports the sum over attempts.
  void merge_from(const StatsRecorder& other);

  void reset();

 private:
  std::array<PhaseTotals, kNumPhases> totals_{};
  std::uint64_t peak_resident_ = 0;
};

/// Cross-rank aggregate: bulk-synchronous phases run at the speed of the
/// slowest rank, so modeled per-phase times aggregate with max().
struct PhaseAggregate {
  PhaseTotals max;   ///< element-wise max over ranks
  PhaseTotals mean;  ///< element-wise mean over ranks
};

/// Barrier crossings charged to the five ordering-computation phases
/// (Peripheral/Ordering x SpMSpV/Sort/Other) — the work an ordering cache
/// hit skips entirely. The serving layer asserts this is exactly zero on a
/// hit: the request went straight to redistribution without a single BFS,
/// SORTPERM, or label collective.
std::uint64_t ordering_crossings(const StatsRecorder& stats);

}  // namespace drcm::mps
