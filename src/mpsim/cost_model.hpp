// The alpha-beta-gamma machine model used for modeled (paper-scale) timings.
//
// The paper (Sec. IV-B) analyzes its algorithm in exactly these terms: an
// algorithm that performs F scalar operations, sends S messages and moves W
// words takes T = F*gamma + alpha*S + beta*W. The thread-backed runtime
// charges every collective through this model so that a run at any rank
// count yields both measured wall time and modeled Cray-XC30-like time; the
// TraceModel (rcm/trace_model.hpp) reuses the same formulas for virtual
// processor counts up to the paper's 4096 cores.
//
// Collective cost formulas (q = communicator size, words = 8-byte units):
//   barrier       : ceil(log2 q) messages on the critical path
//   bcast         : tree,            ceil(log2 q) * (alpha + beta*w)
//   allreduce     : tree + bcast,    2*ceil(log2 q) * (alpha + beta*w)
//   allgatherv    : personalized,    (q-1)*alpha + beta*W_total
//   alltoallv     : personalized,    (q-1)*alpha + beta*max(W_send, W_recv)
//   exscan        : tree,            ceil(log2 q) * (alpha + beta*w)
//   pairwise      : one exchange,    alpha + beta*w
//
// The linear (q-1)*alpha terms for allgatherv/alltoallv match the paper's
// own analysis (T_SpMSpV has an |iters|*alpha*sqrt(p) term and T_SortPerm an
// |iters|*alpha*p term). Default constants are calibrated against the
// paper's single-core numbers; see EXPERIMENTS.md ("Model calibration").
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace drcm::mps {

/// Machine constants for the alpha-beta-gamma model (seconds).
struct MachineParams {
  /// Per-message latency. Cray Aries MPI latency plus collective software
  /// overhead; calibrated so high-concurrency latency terms match Fig. 4.
  double alpha = 2.5e-6;
  /// Per 8-byte-word transfer time (~9 GB/s effective per process).
  double beta = 9.0e-10;
  /// Per scalar work unit (one CSR edge visit / comparison at graph-kernel
  /// cache behaviour); calibrated against the paper's 1-thread runtimes.
  double gamma = 1.8e-8;
  /// Cores per node on the modeled machine (Edison: 24).
  int cores_per_node = 24;
};

/// Cost of one communication operation, per rank on the critical path.
struct CommCost {
  double seconds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;

  CommCost& operator+=(const CommCost& o) {
    seconds += o.seconds;
    messages += o.messages;
    words += o.words;
    return *this;
  }
};

/// Evaluates the per-collective cost formulas above.
class CostModel {
 public:
  explicit CostModel(const MachineParams& params = {}) : p_(params) {}

  CommCost barrier(int q) const;
  CommCost bcast(int q, std::uint64_t words) const;
  CommCost allreduce(int q, std::uint64_t words) const;
  /// `total_words`: sum of contributions over all ranks (what each rank ends
  /// up holding).
  CommCost allgatherv(int q, std::uint64_t total_words) const;
  /// `send_words` / `recv_words`: totals for the calling rank.
  CommCost alltoallv(int q, std::uint64_t send_words,
                     std::uint64_t recv_words) const;
  CommCost exscan(int q, std::uint64_t words) const;
  CommCost pairwise(std::uint64_t words) const;
  /// Root-rooted gather/scatter: (q-1) messages + the full payload.
  CommCost gatherv(int q, std::uint64_t total_words) const;
  CommCost scatterv(int q, std::uint64_t total_words) const;
  /// Reduce-to-root: one log-depth tree pass.
  CommCost reduce(int q, std::uint64_t words) const;

  /// Modeled seconds for `units` scalar work units on one thread.
  double compute_seconds(double units) const { return units * p_.gamma; }

  const MachineParams& params() const { return p_; }

 private:
  static int ceil_log2(int q);
  const MachineParams p_;
};

}  // namespace drcm::mps
