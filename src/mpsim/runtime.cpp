#include "mpsim/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <thread>

#include "mpsim/internal.hpp"

namespace drcm::mps {

PhaseAggregate SpmdReport::aggregate(Phase phase) const {
  PhaseAggregate agg;
  if (ranks.empty()) return agg;
  const auto n = static_cast<double>(ranks.size());
  for (const auto& r : ranks) {
    const PhaseTotals& t = r.phase(phase);
    agg.max.wall_seconds = std::max(agg.max.wall_seconds, t.wall_seconds);
    agg.max.model_compute_seconds =
        std::max(agg.max.model_compute_seconds, t.model_compute_seconds);
    agg.max.model_comm_seconds =
        std::max(agg.max.model_comm_seconds, t.model_comm_seconds);
    agg.max.compute_units = std::max(agg.max.compute_units, t.compute_units);
    agg.max.messages = std::max(agg.max.messages, t.messages);
    agg.max.words = std::max(agg.max.words, t.words);
    agg.max.barrier_crossings =
        std::max(agg.max.barrier_crossings, t.barrier_crossings);
    agg.mean.wall_seconds += t.wall_seconds / n;
    agg.mean.model_compute_seconds += t.model_compute_seconds / n;
    agg.mean.model_comm_seconds += t.model_comm_seconds / n;
    agg.mean.compute_units += t.compute_units / n;
    agg.mean.messages += t.messages;
    agg.mean.words += t.words;
    agg.mean.barrier_crossings += t.barrier_crossings;
  }
  agg.mean.messages /= ranks.size();
  agg.mean.words /= ranks.size();
  agg.mean.barrier_crossings /= ranks.size();
  return agg;
}

double SpmdReport::modeled_makespan() const {
  double total = 0.0;
  for (int p = 0; p < kNumPhases; ++p) {
    total += aggregate(static_cast<Phase>(p)).max.model_total();
  }
  return total;
}

double SpmdReport::measured_makespan() const {
  double total = 0.0;
  for (int p = 0; p < kNumPhases; ++p) {
    total += aggregate(static_cast<Phase>(p)).max.wall_seconds;
  }
  return total;
}

std::uint64_t SpmdReport::max_peak_resident() const {
  std::uint64_t peak = 0;
  for (const auto& r : ranks) {
    peak = std::max(peak, r.peak_resident_elements());
  }
  return peak;
}

void SpmdReport::merge_from(const SpmdReport& other) {
  if (ranks.empty()) {
    *this = other;
    return;
  }
  DRCM_CHECK(ranks.size() == other.ranks.size(),
             "cannot merge reports with different rank counts");
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    ranks[r].merge_from(other.ranks[r]);
  }
}

SpmdReport Runtime::run(int nranks, const std::function<void(Comm&)>& body,
                        const MachineParams& machine, int threads_per_rank) {
  RunOptions options;
  options.machine = machine;
  options.threads_per_rank = threads_per_rank;
  return run(nranks, body, options);
}

SpmdReport Runtime::run(int nranks, const std::function<void(Comm&)>& body,
                        const RunOptions& options) {
  DRCM_CHECK(nranks >= 1, "need at least one rank");
  DRCM_CHECK(options.threads_per_rank >= 1,
             "need at least one thread per rank");
  const MachineParams& machine = options.machine;
  auto registry = make_barrier_registry();
  auto world_ctx = make_comm_context(nranks, registry);
  const CostModel model(machine);

  std::vector<RankState> states(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto& s = states[static_cast<std::size_t>(r)];
    s.threads = options.threads_per_rank;
    s.world_rank = r;
    s.faults = options.faults;
  }
  if (options.watchdog_seconds > 0.0) {
    set_watchdog(*registry, options.watchdog_seconds, [&states] {
      std::string out = "last collective entered per rank:\n";
      for (std::size_t r = 0; r < states.size(); ++r) {
        out += "  rank " + std::to_string(r) + ": " +
               describe_collective_tag(
                   states[r].last_entered.load(std::memory_order_relaxed)) +
               "\n";
      }
      return out;
    });
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  auto rank_main = [&](int r) {
    // The Comm lives OUTSIDE the try: the poison cascade must run before
    // the communicator (and anything peers might still resolve through it)
    // is torn down.
    Comm comm(world_ctx, r, &states[static_cast<std::size_t>(r)], &model);
    try {
      body(comm);
    } catch (...) {
      errors[static_cast<std::size_t>(r)] = std::current_exception();
      // Wake every rank blocked in any collective of any communicator.
      poison_all_barriers(*registry);
    }
  };

  if (nranks == 1) {
    rank_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back(rank_main, r);
    }
    for (auto& t : threads) t.join();
  }

  // Prefer the root cause over secondary PoisonedError victims.
  std::exception_ptr first_real;
  std::exception_ptr first_any;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!first_any) first_any = e;
    if (!first_real) {
      try {
        std::rethrow_exception(e);
      } catch (const PoisonedError&) {
        // secondary victim; keep looking
      } catch (...) {
        first_real = e;
      }
    }
  }
  if (first_real || first_any) {
    if (options.report_on_error) {
      options.report_on_error->machine = machine;
      options.report_on_error->ranks.clear();
      options.report_on_error->ranks.reserve(states.size());
      for (const auto& s : states) {
        options.report_on_error->ranks.push_back(s.stats);
      }
    }
    std::rethrow_exception(first_real ? first_real : first_any);
  }

  SpmdReport report;
  report.machine = machine;
  report.ranks.reserve(states.size());
  for (const auto& s : states) report.ranks.push_back(s.stats);
  return report;
}

}  // namespace drcm::mps
