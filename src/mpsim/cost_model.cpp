#include "mpsim/cost_model.hpp"

namespace drcm::mps {

int CostModel::ceil_log2(int q) {
  DRCM_CHECK(q >= 1, "communicator size must be positive");
  int bits = 0;
  int v = q - 1;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;  // 0 for q == 1
}

CommCost CostModel::barrier(int q) const {
  const auto hops = static_cast<std::uint64_t>(ceil_log2(q));
  return {p_.alpha * static_cast<double>(hops), hops, 0};
}

CommCost CostModel::bcast(int q, std::uint64_t words) const {
  const auto hops = static_cast<std::uint64_t>(ceil_log2(q));
  const double sec =
      static_cast<double>(hops) * (p_.alpha + p_.beta * static_cast<double>(words));
  return {sec, hops, hops * words};
}

CommCost CostModel::allreduce(int q, std::uint64_t words) const {
  // Reduce-to-root plus broadcast, both log-depth trees.
  const auto hops = static_cast<std::uint64_t>(2 * ceil_log2(q));
  const double sec =
      static_cast<double>(hops) * (p_.alpha + p_.beta * static_cast<double>(words));
  return {sec, hops, hops * words};
}

CommCost CostModel::allgatherv(int q, std::uint64_t total_words) const {
  if (q <= 1) return {};
  const auto msgs = static_cast<std::uint64_t>(q - 1);
  const double sec = p_.alpha * static_cast<double>(msgs) +
                     p_.beta * static_cast<double>(total_words);
  return {sec, msgs, total_words};
}

CommCost CostModel::alltoallv(int q, std::uint64_t send_words,
                              std::uint64_t recv_words) const {
  if (q <= 1) return {};
  const auto msgs = static_cast<std::uint64_t>(q - 1);
  const std::uint64_t words = send_words > recv_words ? send_words : recv_words;
  const double sec =
      p_.alpha * static_cast<double>(msgs) + p_.beta * static_cast<double>(words);
  return {sec, msgs, words};
}

CommCost CostModel::exscan(int q, std::uint64_t words) const {
  const auto hops = static_cast<std::uint64_t>(ceil_log2(q));
  const double sec =
      static_cast<double>(hops) * (p_.alpha + p_.beta * static_cast<double>(words));
  return {sec, hops, hops * words};
}

CommCost CostModel::pairwise(std::uint64_t words) const {
  return {p_.alpha + p_.beta * static_cast<double>(words), 1, words};
}

CommCost CostModel::gatherv(int q, std::uint64_t total_words) const {
  if (q <= 1) return {};
  const auto msgs = static_cast<std::uint64_t>(q - 1);
  return {p_.alpha * static_cast<double>(msgs) +
              p_.beta * static_cast<double>(total_words),
          msgs, total_words};
}

CommCost CostModel::scatterv(int q, std::uint64_t total_words) const {
  return gatherv(q, total_words);
}

CommCost CostModel::reduce(int q, std::uint64_t words) const {
  const auto hops = static_cast<std::uint64_t>(ceil_log2(q));
  const double sec =
      static_cast<double>(hops) * (p_.alpha + p_.beta * static_cast<double>(words));
  return {sec, hops, hops * words};
}

}  // namespace drcm::mps
