// Ordering-as-a-service: a batched, cached, concurrent request layer over
// the distributed RCM pipeline.
//
// A ReorderingService owns a fleet of `ranks` simulated MPI ranks and
// accepts a stream of OrderSolveRequests (matrix + rhs + options). Three
// amortizations turn the one-shot pipeline into a serving layer:
//
//   * WORKSPACE REUSE — one DistWorkspace per world rank persists across
//     requests (and across Runtime::run launches): every grid the service
//     builds adopts it (ProcGrid2D's external-workspace constructor), so
//     the realloc ledger extends across requests and steady-state repeats
//     of a shape run the exchanges reallocation-free.
//
//   * ORDERING CACHE — requests are keyed by a partition-invariant
//     sparsity-pattern fingerprint (service/fingerprint.hpp). A repeat
//     pattern skips BFS + SORTPERM entirely and jumps straight to the
//     value-carrying redistribution (rcm::ordered_solve_with_labels); the
//     body asserts ZERO ordering-phase barrier crossings on every hit.
//
//   * BATCHED EXECUTION — independent requests of one batch run
//     CONCURRENTLY on disjoint square sub-grids (lanes) carved from the
//     parent world by one Comm::split; per-request SpmdReport ledgers come
//     back with each response.
//
// Fault isolation: scripted FaultPlan failures are one-shot, so a killed
// request returns a structured kFault response while its batch peers are
// transparently relaunched from the driver's checkpoints and complete
// bit-identically to a fault-free run. A faulted request NEVER leaves a
// cache entry behind (labels are validated and inserted only after its
// lane deposited a completed result).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/workspace.hpp"
#include "mpsim/fault.hpp"
#include "mpsim/runtime.hpp"
#include "rcm/rcm_driver.hpp"
#include "service/fingerprint.hpp"

namespace drcm::service {

/// One unit of work: order `matrix` (replicated SPD fixture, values and
/// diagonal included), then solve matrix * x = b in the permuted basis.
struct OrderSolveRequest {
  const sparse::CsrMatrix* matrix = nullptr;
  std::span<const double> b;
  bool precondition = true;
  rcm::DistRcmOptions rcm{};
  solver::CgOptions cg{};
};

enum class RequestStatus {
  kOk,
  kFault,  ///< killed by a fault (or relaunch budget exhausted); see `error`
};

struct OrderSolveResponse {
  RequestStatus status = RequestStatus::kOk;
  /// Structured failure description when status == kFault.
  std::string error;
  bool cache_hit = false;
  PatternFingerprint fingerprint{};
  index_t permuted_bandwidth = 0;
  solver::CgResult cg{};
  /// Replicated solution in the ORIGINAL numbering, assembled by the
  /// driver outside the ranks (like run_ordered_solve).
  std::vector<double> x;
  /// Per-lane-rank ledgers of THIS request alone: each rank's recorder is
  /// reset when the request starts and deposited when it completes, so the
  /// report isolates the request from its batch peers and predecessors.
  mps::SpmdReport report;
  /// Max over lane ranks of this request's ordering-phase barrier
  /// crossings. Asserted (and observed) to be 0 on every cache hit.
  std::uint64_t ordering_crossings = 0;
  /// Sum over lane ranks of workspace reallocations charged to this
  /// request. 0 in the steady state (a growth performed by request k is
  /// detected at the next checkout, so the ledger settles by request 3 of
  /// a fixed shape).
  std::uint64_t workspace_reallocations = 0;
  int lane = -1;
  int lane_ranks = 0;
};

struct ServiceOptions {
  /// World size of the service's rank fleet. Need not be square — lanes
  /// are carved as the largest square fitting the per-wave share.
  int ranks = 4;
  int threads_per_rank = 1;
  mps::MachineParams machine{};
  /// Scripted faults (one-shot actions), applied across ALL launches the
  /// service performs; may be null.
  mps::FaultPlan* faults = nullptr;
  double watchdog_seconds = 0.0;
  /// Relaunches (beyond the first launch) a batch may consume recovering
  /// from faults before surviving requests are failed outright.
  int max_relaunches = 3;
  /// Ordering-cache capacity in patterns (FIFO eviction; 0 disables).
  std::size_t cache_capacity = 64;
  /// Cap on concurrent lanes per batch wave (0 = one lane per request,
  /// as many as the fleet fits).
  int max_lanes = 0;
};

class ReorderingService {
 public:
  explicit ReorderingService(const ServiceOptions& options);

  /// Executes one request on the full fleet (one lane). Cache inserts are
  /// visible to the next submit, so a repeated pattern hits from the
  /// second submission on.
  OrderSolveResponse submit(const OrderSolveRequest& request);

  /// Executes a batch: requests are dealt round-robin onto disjoint
  /// square lanes and run concurrently; responses come back in request
  /// order. Cache lookups see the cache as of batch start (inserts land
  /// at batch end — lanes only ever READ the cache while ranks run).
  std::vector<OrderSolveResponse> submit_batch(
      std::span<const OrderSolveRequest> requests);

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }
  std::size_t cache_size() const { return cache_.size(); }
  /// Runtime::run launches performed (relaunches included).
  int launches() const { return launches_; }
  /// Ledger folded over every launch, abandoned attempts included.
  const mps::SpmdReport& cumulative_report() const { return cumulative_; }
  /// Sum over ranks of persistent-workspace reallocations since
  /// construction (the cross-request warm-up metric).
  std::uint64_t workspace_reallocations() const;

 private:
  struct CacheEntry {
    std::vector<index_t> labels;
  };

  const CacheEntry* cache_find(const PatternFingerprint& fp) const;
  void cache_insert(const PatternFingerprint& fp,
                    std::vector<index_t> labels);

  ServiceOptions options_;
  /// One persistent workspace per WORLD rank — the cross-request, cross-
  /// launch scratch the grids adopt. Indexed by world rank so a rank keeps
  /// its warmed capacities even as lane geometry changes between waves.
  std::vector<dist::DistWorkspace> workspaces_;
  std::unordered_map<PatternFingerprint, CacheEntry, PatternFingerprintHash>
      cache_;
  std::deque<PatternFingerprint> cache_fifo_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  int launches_ = 0;
  mps::SpmdReport cumulative_;
};

}  // namespace drcm::service
