// Ordering-as-a-service: a batched, cached, concurrent request layer over
// the distributed RCM pipeline.
//
// A ReorderingService owns a fleet of `ranks` simulated MPI ranks and
// accepts a stream of OrderSolveRequests (matrix + rhs + options). Three
// amortizations turn the one-shot pipeline into a serving layer:
//
//   * WORKSPACE REUSE — one DistWorkspace per world rank persists across
//     requests (and across Runtime::run launches): every grid the service
//     builds adopts it (ProcGrid2D's external-workspace constructor), so
//     the realloc ledger extends across requests and steady-state repeats
//     of a shape run the exchanges reallocation-free.
//
//   * ORDERING CACHE — requests are keyed by a partition-invariant
//     sparsity-pattern fingerprint (service/fingerprint.hpp). A repeat
//     pattern skips BFS + SORTPERM entirely and jumps straight to the
//     value-carrying redistribution (rcm::ordered_solve_with_labels); the
//     body asserts ZERO ordering-phase barrier crossings on every hit.
//     Eviction is COST/RECENCY weighted: each entry remembers the measured
//     ordering wall that produced it, and the evictee minimizes
//     cost / age — an expensive ordering survives a stream of cheap
//     one-offs that would have FIFO'd it out.
//
//   * INCREMENTAL REPAIR — a near-miss (same n, small pattern delta) is
//     detected by diffing the refined fingerprint's row-window sub-sums
//     against cached entries. When rcm::plan_repair prices the repair
//     under a cold recompute, the lane runs rcm::dist_rcm_repair — reuse
//     untouched components, re-level only the affected BFS cone, splice —
//     and falls back to a cold ordering the moment any structural check
//     fails. Repair hits are priced strictly between a cache hit
//     (0 ordering crossings) and a cold run.
//
//   * BATCHED EXECUTION — independent requests of one batch run
//     CONCURRENTLY on disjoint square sub-grids (lanes) carved from the
//     parent world by one Comm::split; per-request SpmdReport ledgers come
//     back with each response. Identical fingerprints in one batch are
//     COALESCED: the first occurrence computes, twins wait a wave and are
//     served from the freshly inserted entry — the ordering runs exactly
//     once per distinct pattern per batch.
//
// Fault isolation: scripted FaultPlan failures are one-shot, so a killed
// request returns a structured kFault response while its batch peers are
// transparently relaunched from the driver's checkpoints and complete
// bit-identically to a fault-free run. A faulted request NEVER leaves a
// cache entry behind (labels are validated and inserted only after its
// lane deposited a completed result).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dist/workspace.hpp"
#include "mpsim/fault.hpp"
#include "mpsim/runtime.hpp"
#include "rcm/rcm_driver.hpp"
#include "service/fingerprint.hpp"

namespace drcm::service {

/// One unit of work: order `matrix` (replicated SPD fixture, values and
/// diagonal included), then solve matrix * x = b in the permuted basis.
struct OrderSolveRequest {
  const sparse::CsrMatrix* matrix = nullptr;
  std::span<const double> b;
  bool precondition = true;
  rcm::DistRcmOptions rcm{};
  solver::CgOptions cg{};
};

enum class RequestStatus {
  kOk,
  kFault,  ///< killed by a fault (or relaunch budget exhausted); see `error`
};

struct OrderSolveResponse {
  RequestStatus status = RequestStatus::kOk;
  /// Structured failure description when status == kFault.
  std::string error;
  bool cache_hit = false;
  /// Produced by incremental repair (component reuse + cone re-level +
  /// splice) from a near-miss cached entry, with at least one level step
  /// or component actually skipped. Mutually exclusive with cache_hit;
  /// a repair that degraded all the way to a full recompute (or fell back
  /// cold) reports false.
  bool repair_hit = false;
  /// This request waited out at least one wave because an identical
  /// fingerprint was already computing in the same batch (coalescing).
  bool coalesced = false;
  /// The ordering algorithm that actually served the request (kAuto
  /// resolved to a concrete arm; never kAuto here).
  rcm::OrderingAlgorithm algorithm = rcm::OrderingAlgorithm::kRcm;
  /// True when the request asked for kAuto and the service resolved it.
  bool auto_selected = false;
  /// The selector's evidence, recorded for every kAuto request so callers
  /// can audit the decision (zeroed otherwise).
  rcm::OrderingProxies proxies{};
  /// Refined-fingerprint row windows that differed from the repair
  /// source's (repair attempts only; 0 otherwise).
  int changed_windows = 0;
  /// Non-terminal ordering level steps the repair skipped (repair hits
  /// only; each is 5 barrier crossings a cold run would have paid).
  index_t level_steps_skipped = 0;
  PatternFingerprint fingerprint{};
  index_t permuted_bandwidth = 0;
  solver::CgResult cg{};
  /// Replicated solution in the ORIGINAL numbering, assembled by the
  /// driver outside the ranks (like run_ordered_solve).
  std::vector<double> x;
  /// Per-lane-rank ledgers of THIS request alone: each rank's recorder is
  /// reset when the request starts and deposited when it completes, so the
  /// report isolates the request from its batch peers and predecessors.
  mps::SpmdReport report;
  /// Max over lane ranks of this request's ordering-phase barrier
  /// crossings. Asserted (and observed) to be 0 on every cache hit.
  std::uint64_t ordering_crossings = 0;
  /// Sum over lane ranks of workspace reallocations charged to this
  /// request. 0 in the steady state (a growth performed by request k is
  /// detected at the next checkout, so the ledger settles by request 3 of
  /// a fixed shape).
  std::uint64_t workspace_reallocations = 0;
  int lane = -1;
  int lane_ranks = 0;
};

struct ServiceOptions {
  /// World size of the service's rank fleet. Need not be square — lanes
  /// are carved as the largest square fitting the per-wave share.
  int ranks = 4;
  int threads_per_rank = 1;
  mps::MachineParams machine{};
  /// Scripted faults (one-shot actions), applied across ALL launches the
  /// service performs; may be null.
  mps::FaultPlan* faults = nullptr;
  double watchdog_seconds = 0.0;
  /// Relaunches (beyond the first launch) a batch may consume recovering
  /// from faults before surviving requests are failed outright.
  int max_relaunches = 3;
  /// Ordering-cache capacity in patterns (cost/recency-weighted
  /// eviction; 0 disables caching AND repair). The capacity may be
  /// briefly exceeded when every resident entry is pinned by the batch
  /// in flight — served entries are never evicted mid-batch.
  std::size_t cache_capacity = 64;
  /// Cap on concurrent lanes per batch wave (0 = one lane per request,
  /// as many as the fleet fits).
  int max_lanes = 0;
  /// Attempt incremental repair on near-miss patterns: a miss whose
  /// refined fingerprint differs from a repair-eligible cached entry in
  /// at most repair_max_windows row windows is repaired (component
  /// reuse + cone re-level + splice) when rcm::plan_repair prices that
  /// strictly under a cold recompute.
  bool enable_repair = true;
  /// Window-diff cap for repair candidacy (1..kFingerprintWindows; a
  /// delta touching more windows than this recomputes cold).
  int repair_max_windows = 8;
  /// Debug cross-check: after every successful repair, run a
  /// stats-isolated cold ordering on the lane and DRCM_CHECK the repaired
  /// labels are bit-identical. Doubles the ordering cost of repairs (the
  /// cross-check is excluded from ledgers, but not from host wall time).
  bool verify_repair = false;
};

class ReorderingService {
 public:
  explicit ReorderingService(const ServiceOptions& options);

  /// Executes one request on the full fleet (one lane). Cache inserts are
  /// visible to the next submit, so a repeated pattern hits from the
  /// second submission on.
  OrderSolveResponse submit(const OrderSolveRequest& request);

  /// Executes a batch: requests are dealt round-robin onto disjoint
  /// square lanes and run concurrently; responses come back in request
  /// order. Cache lookups see the cache as of batch start (inserts land
  /// at batch end — lanes only ever READ the cache while ranks run).
  std::vector<OrderSolveResponse> submit_batch(
      std::span<const OrderSolveRequest> requests);

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }
  /// Misses served by incremental repair (counted inside cache_misses).
  std::uint64_t repair_hits() const { return repair_hits_; }
  /// Requests served from an entry a same-batch twin inserted (counted
  /// inside cache_hits).
  std::uint64_t coalesced_served() const { return coalesced_served_; }
  std::size_t cache_size() const { return cache_.size(); }
  /// Runtime::run launches performed (relaunches included).
  int launches() const { return launches_; }
  /// Ledger folded over every launch, abandoned attempts included.
  const mps::SpmdReport& cumulative_report() const { return cumulative_; }
  /// Sum over ranks of persistent-workspace reallocations since
  /// construction (the cross-request warm-up metric).
  std::uint64_t workspace_reallocations() const;

 private:
  struct CacheEntry {
    std::vector<index_t> labels;
    /// Unsalted refined fingerprint of the pattern the labels order —
    /// the row-window sub-sums near-miss classification diffs against.
    RefinedFingerprint rf{};
    /// Level structure captured when the labels were computed (empty for
    /// entries that cannot seed repairs, e.g. balanced orderings).
    rcm::OrderingRecipe recipe;
    /// The RESOLVED ordering spec that produced the labels (kAuto already
    /// resolved). Repair candidacy demands an exact match with the
    /// request's resolved spec: splicing a Sloan or bi-criteria entry into
    /// an RCM repair would break bit-identity with cold.
    rcm::OrderingSpec spec{};
    /// Computed with load_balance == false AND carrying a recipe: the
    /// recipe's work numbering matches the original numbering, so the
    /// entry can seed dist_rcm_repair. Only kRcm entries qualify (Sloan
    /// and GPS runs capture no recipe).
    bool repair_eligible = false;
    /// Max over lane ranks of the ordering-phase wall that produced the
    /// labels — the numerator of the cost/recency eviction score.
    double cost_wall = 0.0;
    /// Logical clock of the last insert-or-hit (eviction recency).
    std::uint64_t last_use_tick = 0;
  };

  using PinnedSet =
      std::unordered_set<PatternFingerprint, PatternFingerprintHash>;

  const CacheEntry* cache_find(const PatternFingerprint& fp) const;
  /// Inserts under cost/recency eviction. `pinned` entries (served to a
  /// request of the batch in flight) are never chosen as victims; when
  /// everything is pinned the cache temporarily overflows capacity.
  void cache_insert(const PatternFingerprint& fp, CacheEntry entry,
                    const PinnedSet& pinned);

  ServiceOptions options_;
  /// One persistent workspace per WORLD rank — the cross-request, cross-
  /// launch scratch the grids adopt. Indexed by world rank so a rank keeps
  /// its warmed capacities even as lane geometry changes between waves.
  std::vector<dist::DistWorkspace> workspaces_;
  std::unordered_map<PatternFingerprint, CacheEntry, PatternFingerprintHash>
      cache_;
  /// Logical clock behind last_use_tick: bumped on every insert and hit.
  std::uint64_t tick_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t repair_hits_ = 0;
  std::uint64_t coalesced_served_ = 0;
  int launches_ = 0;
  mps::SpmdReport cumulative_;
};

}  // namespace drcm::service
