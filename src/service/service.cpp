#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "dist/proc_grid.hpp"

namespace drcm::service {

namespace {

/// How a batch wave is carved onto the rank fleet: `nlanes` disjoint
/// square sub-grids of `lane_size` ranks each, world ranks
/// [lane * lane_size, (lane + 1) * lane_size); ranks past
/// nlanes * lane_size sit the wave out (at most lane_size - 1 of them,
/// only when the fleet size is not itself square).
struct LanePlan {
  int lane_size = 1;
  int nlanes = 1;

  int color_of(int world_rank) const {
    const int lane = world_rank / lane_size;
    return lane < nlanes ? lane : nlanes;  // color nlanes = idle
  }
};

/// Carves lanes for `requests` concurrent requests on `ranks` ranks:
/// as many lanes as there are requests (capped by max_lanes when set),
/// each the LARGEST square grid fitting the per-lane share — a single
/// request always gets the full largest-square lane, so the steady-state
/// geometry (and with it the warmed workspace capacities) is stable.
LanePlan plan_lanes(int ranks, std::size_t requests, int max_lanes) {
  int desired = static_cast<int>(
      std::min<std::size_t>(requests, static_cast<std::size_t>(ranks)));
  desired = std::max(desired, 1);
  if (max_lanes > 0) desired = std::min(desired, max_lanes);
  LanePlan plan;
  plan.lane_size = dist::largest_square_grid(std::max(ranks / desired, 1));
  plan.nlanes = std::min(desired, ranks / plan.lane_size);
  return plan;
}

/// Labels must be a permutation of [0, n) before they may touch the cache
/// or index the solution assembly — a faulted or corrupted ordering must
/// surface as a structured error, never as a poisoned cache entry.
bool is_permutation(const std::vector<index_t>& labels, index_t n) {
  if (labels.size() != static_cast<std::size_t>(n)) return false;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (const index_t l : labels) {
    if (l < 0 || l >= n) return false;
    if (seen[static_cast<std::size_t>(l)]) return false;
    seen[static_cast<std::size_t>(l)] = 1;
  }
  return true;
}

}  // namespace

ReorderingService::ReorderingService(const ServiceOptions& options)
    : options_(options),
      workspaces_(static_cast<std::size_t>(std::max(options.ranks, 1))) {
  DRCM_CHECK(options_.ranks >= 1, "service needs at least one rank");
  DRCM_CHECK(options_.threads_per_rank >= 1,
             "service needs at least one thread per rank");
  DRCM_CHECK(options_.max_relaunches >= 0, "negative relaunch budget");
  cumulative_.machine = options_.machine;
}

OrderSolveResponse ReorderingService::submit(const OrderSolveRequest& request) {
  auto responses = submit_batch(std::span<const OrderSolveRequest>(&request, 1));
  return std::move(responses.front());
}

std::vector<OrderSolveResponse> ReorderingService::submit_batch(
    std::span<const OrderSolveRequest> requests) {
  const std::size_t nreq = requests.size();
  std::vector<OrderSolveResponse> responses(nreq);
  if (nreq == 0) return responses;

  // Strip each adjacency ONCE outside the ranks (simulated ranks share an
  // address space; run_ordered_solve does the same) and validate the
  // fixtures up front, where a bad request is the caller's bug.
  std::vector<sparse::CsrMatrix> adjacencies(nreq);
  for (std::size_t i = 0; i < nreq; ++i) {
    const auto& rq = requests[i];
    DRCM_CHECK(rq.matrix != nullptr, "request needs a matrix");
    DRCM_CHECK(rq.b.size() == static_cast<std::size_t>(rq.matrix->n()),
               "request rhs size mismatch");
    adjacencies[i] = rq.matrix->strip_diagonal();
  }

  // Driver-side checkpoints, deposited by the ranks and read only after
  // Runtime::run has joined every thread (it joins on faults too, so the
  // deposits of completed requests survive an aborted launch).
  std::vector<char> done(nreq, 0);
  std::vector<std::vector<std::vector<double>>> slabs(nreq);
  std::vector<std::vector<index_t>> pending_labels(nreq);

  std::vector<std::size_t> remaining(nreq);
  for (std::size_t i = 0; i < nreq; ++i) remaining[i] = i;

  // Collect finalized miss orderings and insert at batch end: lanes only
  // ever READ the cache while ranks run, and no insert can evict an entry
  // a concurrent hit in the same batch is reading.
  std::vector<std::pair<PatternFingerprint, std::vector<index_t>>> to_insert;

  const int P = options_.ranks;
  int relaunches = 0;
  std::string last_error = "unknown failure";

  // Finalizes every request the last launch completed: assemble the
  // replicated solution outside the ranks (like run_ordered_solve), count
  // the cache outcome, stage miss orderings for insertion, and drop the
  // request from the work list.
  const auto finalize_done = [&]() {
    std::vector<std::size_t> still;
    still.reserve(remaining.size());
    for (const std::size_t req : remaining) {
      if (!done[req]) {
        still.push_back(req);
        continue;
      }
      auto& resp = responses[req];
      const index_t n = requests[req].matrix->n();
      const std::vector<index_t>* labels = nullptr;
      if (resp.cache_hit) {
        ++cache_hits_;
        labels = &cache_.at(resp.fingerprint).labels;
      } else {
        ++cache_misses_;
        if (!is_permutation(pending_labels[req], n)) {
          resp.status = RequestStatus::kFault;
          resp.error = "ordering produced an invalid permutation";
          continue;
        }
        labels = &pending_labels[req];
      }
      std::vector<double> x_perm;
      x_perm.reserve(static_cast<std::size_t>(n));
      for (auto& slab : slabs[req]) {
        x_perm.insert(x_perm.end(), slab.begin(), slab.end());
      }
      DRCM_CHECK(x_perm.size() == static_cast<std::size_t>(n),
                 "solution slabs must cover every permuted row exactly once");
      resp.x.resize(static_cast<std::size_t>(n));
      for (index_t v = 0; v < n; ++v) {
        resp.x[static_cast<std::size_t>(v)] =
            x_perm[static_cast<std::size_t>((*labels)[static_cast<std::size_t>(
                v)])];
      }
      resp.status = RequestStatus::kOk;
      resp.report.machine = options_.machine;
      if (!resp.cache_hit) {
        to_insert.emplace_back(resp.fingerprint,
                               std::move(pending_labels[req]));
      }
    }
    remaining.swap(still);
  };

  while (!remaining.empty()) {
    const LanePlan plan = plan_lanes(P, remaining.size(), options_.max_lanes);

    // Deal the surviving requests round-robin onto the lanes.
    std::vector<std::vector<std::size_t>> lane_queue(
        static_cast<std::size_t>(plan.nlanes));
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      lane_queue[i % static_cast<std::size_t>(plan.nlanes)].push_back(
          remaining[i]);
    }

    // Fresh per-attempt deposit slots (an aborted attempt's partial
    // deposits for unfinished requests must not leak into this one).
    for (const std::size_t req : remaining) {
      responses[req] = OrderSolveResponse{};
      responses[req].report.ranks.resize(
          static_cast<std::size_t>(plan.lane_size));
      slabs[req].assign(static_cast<std::size_t>(plan.lane_size), {});
      pending_labels[req].clear();
    }

    // Which request each world rank is inside, for fault attribution.
    std::vector<int> current_request(static_cast<std::size_t>(P), -1);

    const auto body = [&](mps::Comm& world) {
      const int wr = world.rank();
      const int color = plan.color_of(wr);
      mps::Comm lane = world.split(color, wr);
      if (color == plan.nlanes) return;  // idle this wave

      // The lane grid adopts this WORLD rank's persistent workspace, so
      // buffer capacities warmed by earlier requests (and earlier waves)
      // carry over and the realloc ledger spans the whole stream.
      dist::ProcGrid2D grid(lane, &workspaces_[static_cast<std::size_t>(wr)]);

      for (const std::size_t req : lane_queue[static_cast<std::size_t>(color)]) {
        current_request[static_cast<std::size_t>(wr)] = static_cast<int>(req);
        const auto& rq = requests[req];

        // Per-request ledger isolation: park the attempt's running totals,
        // run the request on a zeroed recorder (peak_resident included, so
        // the pipeline's per-rank budget asserts per request), then fold
        // the request's segment back into the running totals.
        const auto saved = lane.stats();
        lane.stats().reset();
        const auto realloc0 =
            workspaces_[static_cast<std::size_t>(wr)].reallocations();

        const PatternFingerprint fp =
            salt_ordering_options(fingerprint_pattern(lane, *rq.matrix, grid),
                                  rq.rcm.load_balance, rq.rcm.seed);
        const CacheEntry* entry = cache_find(fp);

        rcm::OrderedSolveResult result;
        if (entry != nullptr) {
          result = rcm::ordered_solve_with_labels(grid, *rq.matrix,
                                                  entry->labels, rq.b,
                                                  rq.precondition, rq.rcm,
                                                  rq.cg);
          DRCM_CHECK(mps::ordering_crossings(lane.stats()) == 0,
                     "cache hit must skip every ordering collective");
        } else {
          result = rcm::ordered_solve_on(grid, *rq.matrix, rq.b,
                                         rq.precondition, rq.rcm, rq.cg,
                                         &adjacencies[req]);
        }

        const std::uint64_t my_crossings =
            mps::ordering_crossings(lane.stats());
        const std::uint64_t my_reallocs =
            workspaces_[static_cast<std::size_t>(wr)].reallocations() -
            realloc0;
        const auto max_crossings = lane.allreduce(
            my_crossings,
            [](std::uint64_t x, std::uint64_t y) { return std::max(x, y); });
        const auto sum_reallocs = lane.allreduce(
            my_reallocs,
            [](std::uint64_t x, std::uint64_t y) { return x + y; });

        const auto mine = lane.stats();
        lane.stats() = saved;
        lane.stats().merge_from(mine);

        // Deposit this rank's share. Lane rank 0 flips `done` LAST: the
        // flip happens after both allreduces above, which every lane rank
        // must have entered, and each rank's deposits precede its next
        // collective — so done == 1 guarantees complete deposits by the
        // time the runtime has joined the threads.
        slabs[req][static_cast<std::size_t>(lane.rank())] =
            std::move(result.x_local);
        responses[req].report.ranks[static_cast<std::size_t>(lane.rank())] =
            mine;
        if (lane.rank() == 0) {
          auto& resp = responses[req];
          resp.cache_hit = entry != nullptr;
          resp.fingerprint = fp;
          resp.permuted_bandwidth = result.permuted_bandwidth;
          resp.cg = result.cg;
          resp.ordering_crossings = max_crossings;
          resp.workspace_reallocations = sum_reallocs;
          resp.lane = color;
          resp.lane_ranks = plan.lane_size;
          if (entry == nullptr) {
            pending_labels[req] = std::move(result.labels);
          }
          done[req] = 1;
        }
        current_request[static_cast<std::size_t>(wr)] = -1;
      }
    };

    mps::SpmdReport partial;
    mps::RunOptions run_options;
    run_options.machine = options_.machine;
    run_options.threads_per_rank = options_.threads_per_rank;
    run_options.faults = options_.faults;
    run_options.watchdog_seconds = options_.watchdog_seconds;
    run_options.report_on_error = &partial;

    ++launches_;
    try {
      const auto report = mps::Runtime::run(P, body, run_options);
      cumulative_.merge_from(report);
      finalize_done();
      DRCM_CHECK(remaining.empty(),
                 "fault-free launch must complete every scheduled request");
      break;
    } catch (const mps::InjectedFault& f) {
      // Attributable fault: the dying rank's in-flight request gets a
      // structured kFault response; everyone else is relaunched from the
      // driver's checkpoints (one-shot actions cannot re-fire).
      cumulative_.merge_from(partial);
      finalize_done();
      last_error = std::string("injected ") + mps::fault_kind_name(f.kind()) +
                   " on rank " + std::to_string(f.rank()) + " at collective " +
                   std::to_string(f.ordinal());
      const int victim = current_request[static_cast<std::size_t>(f.rank())];
      if (victim >= 0 && !done[static_cast<std::size_t>(victim)]) {
        auto& resp = responses[static_cast<std::size_t>(victim)];
        resp.status = RequestStatus::kFault;
        resp.error = last_error;
        remaining.erase(std::remove(remaining.begin(), remaining.end(),
                                    static_cast<std::size_t>(victim)),
                        remaining.end());
      }
      ++relaunches;
    } catch (const mps::InjectedAllocFailure& f) {
      cumulative_.merge_from(partial);
      finalize_done();
      last_error = "injected alloc-failure on rank " +
                   std::to_string(f.rank()) + " at collective " +
                   std::to_string(f.ordinal());
      const int victim = current_request[static_cast<std::size_t>(f.rank())];
      if (victim >= 0 && !done[static_cast<std::size_t>(victim)]) {
        auto& resp = responses[static_cast<std::size_t>(victim)];
        resp.status = RequestStatus::kFault;
        resp.error = last_error;
        remaining.erase(std::remove(remaining.begin(), remaining.end(),
                                    static_cast<std::size_t>(victim)),
                        remaining.end());
      }
      ++relaunches;
    } catch (const std::exception& e) {
      // No rank attribution (corruption faults surface as downstream check
      // failures; watchdog timeouts name no single request): retry every
      // unfinished request — one-shot fault semantics still guarantee the
      // relaunch makes progress.
      cumulative_.merge_from(partial);
      finalize_done();
      last_error = e.what();
      ++relaunches;
    }

    if (relaunches > options_.max_relaunches && !remaining.empty()) {
      for (const std::size_t req : remaining) {
        responses[req].status = RequestStatus::kFault;
        responses[req].error = "relaunch budget exhausted: " + last_error;
      }
      remaining.clear();
    }
  }

  for (auto& [fp, labels] : to_insert) {
    cache_insert(fp, std::move(labels));
  }
  return responses;
}

std::uint64_t ReorderingService::workspace_reallocations() const {
  std::uint64_t total = 0;
  for (const auto& ws : workspaces_) total += ws.reallocations();
  return total;
}

const ReorderingService::CacheEntry* ReorderingService::cache_find(
    const PatternFingerprint& fp) const {
  const auto it = cache_.find(fp);
  return it == cache_.end() ? nullptr : &it->second;
}

void ReorderingService::cache_insert(const PatternFingerprint& fp,
                                     std::vector<index_t> labels) {
  if (options_.cache_capacity == 0) return;
  // Duplicate patterns inside one batch both miss (they ran concurrently,
  // blind to each other) and both arrive here; keep the first.
  if (cache_.find(fp) != cache_.end()) return;
  while (cache_.size() >= options_.cache_capacity) {
    cache_.erase(cache_fifo_.front());
    cache_fifo_.pop_front();
  }
  cache_.emplace(fp, CacheEntry{std::move(labels)});
  cache_fifo_.push_back(fp);
}

}  // namespace drcm::service
