#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "dist/proc_grid.hpp"

namespace drcm::service {

namespace {

/// How a batch wave is carved onto the rank fleet: `nlanes` disjoint
/// square sub-grids of `lane_size` ranks each, world ranks
/// [lane * lane_size, (lane + 1) * lane_size); ranks past
/// nlanes * lane_size sit the wave out (at most lane_size - 1 of them,
/// only when the fleet size is not itself square).
struct LanePlan {
  int lane_size = 1;
  int nlanes = 1;

  int color_of(int world_rank) const {
    const int lane = world_rank / lane_size;
    return lane < nlanes ? lane : nlanes;  // color nlanes = idle
  }
};

/// Carves lanes for `requests` concurrent requests on `ranks` ranks:
/// as many lanes as there are requests (capped by max_lanes when set),
/// each the LARGEST square grid fitting the per-lane share — a single
/// request always gets the full largest-square lane, so the steady-state
/// geometry (and with it the warmed workspace capacities) is stable.
LanePlan plan_lanes(int ranks, std::size_t requests, int max_lanes) {
  int desired = static_cast<int>(
      std::min<std::size_t>(requests, static_cast<std::size_t>(ranks)));
  desired = std::max(desired, 1);
  if (max_lanes > 0) desired = std::min(desired, max_lanes);
  LanePlan plan;
  plan.lane_size = dist::largest_square_grid(std::max(ranks / desired, 1));
  plan.nlanes = std::min(desired, ranks / plan.lane_size);
  return plan;
}

/// Labels must be a permutation of [0, n) before they may touch the cache
/// or index the solution assembly — a faulted or corrupted ordering must
/// surface as a structured error, never as a poisoned cache entry.
bool is_permutation(const std::vector<index_t>& labels, index_t n) {
  if (labels.size() != static_cast<std::size_t>(n)) return false;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (const index_t l : labels) {
    if (l < 0 || l >= n) return false;
    if (seen[static_cast<std::size_t>(l)]) return false;
    seen[static_cast<std::size_t>(l)] = 1;
  }
  return true;
}

/// One rank's ordering-phase wall: the cost a cache entry remembers for
/// cost/recency eviction (same five phases as mps::ordering_crossings).
double ordering_wall(const mps::StatsRecorder& stats) {
  return stats.phase(mps::Phase::kPeripheralSpmspv).wall_seconds +
         stats.phase(mps::Phase::kPeripheralOther).wall_seconds +
         stats.phase(mps::Phase::kOrderingSpmspv).wall_seconds +
         stats.phase(mps::Phase::kOrderingSort).wall_seconds +
         stats.phase(mps::Phase::kOrderingOther).wall_seconds;
}

}  // namespace

ReorderingService::ReorderingService(const ServiceOptions& options)
    : options_(options),
      workspaces_(static_cast<std::size_t>(std::max(options.ranks, 1))) {
  DRCM_CHECK(options_.ranks >= 1, "service needs at least one rank");
  DRCM_CHECK(options_.threads_per_rank >= 1,
             "service needs at least one thread per rank");
  DRCM_CHECK(options_.max_relaunches >= 0, "negative relaunch budget");
  DRCM_CHECK(options_.repair_max_windows >= 1 &&
                 options_.repair_max_windows <= kFingerprintWindows,
             "repair_max_windows out of range");
  cumulative_.machine = options_.machine;
}

OrderSolveResponse ReorderingService::submit(const OrderSolveRequest& request) {
  auto responses = submit_batch(std::span<const OrderSolveRequest>(&request, 1));
  return std::move(responses.front());
}

std::vector<OrderSolveResponse> ReorderingService::submit_batch(
    std::span<const OrderSolveRequest> requests) {
  const std::size_t nreq = requests.size();
  std::vector<OrderSolveResponse> responses(nreq);
  if (nreq == 0) return responses;

  // Strip each adjacency ONCE outside the ranks (simulated ranks share an
  // address space; run_ordered_solve does the same), validate the fixtures
  // up front, and take each request's DRIVER-SIDE refined fingerprint: the
  // serial twin of the lane collective (partition-invariant, so one rank
  // owning everything is just another cut). Scheduling — coalescing,
  // repair candidacy — classifies on the serial value BEFORE any rank
  // launches; the lanes recompute the fingerprint collectively (so the
  // probe is charged to the ledger) and DRCM_CHECK agreement.
  std::vector<sparse::CsrMatrix> adjacencies(nreq);
  std::vector<RefinedFingerprint> refined(nreq);
  std::vector<PatternFingerprint> salted(nreq);
  // Per-request RESOLVED options: kAuto is resolved driver-side on the
  // stripped adjacency (the same input dist_order would resolve on), so
  // the cache key, the lane execution and the response all agree on the
  // concrete algorithm — and an auto request shares the slot of an
  // explicit request for its resolution.
  std::vector<rcm::DistRcmOptions> resolved(nreq);
  std::vector<char> auto_selected(nreq, 0);
  std::vector<rcm::OrderingProxies> proxies(nreq);
  for (std::size_t i = 0; i < nreq; ++i) {
    const auto& rq = requests[i];
    DRCM_CHECK(rq.matrix != nullptr, "request needs a matrix");
    DRCM_CHECK(rq.b.size() == static_cast<std::size_t>(rq.matrix->n()),
               "request rhs size mismatch");
    adjacencies[i] = rq.matrix->strip_diagonal();
    refined[i] = fingerprint_pattern_serial(*rq.matrix);
    resolved[i] = rq.rcm;
    if (resolved[i].ordering.algorithm == rcm::OrderingAlgorithm::kAuto) {
      const auto choice = rcm::select_ordering(adjacencies[i]);
      resolved[i].ordering.algorithm = choice.algorithm;
      auto_selected[i] = 1;
      proxies[i] = choice.proxies;
    }
    salted[i] = salt_ordering_options(refined[i].fp, resolved[i]);
  }

  // Driver-side checkpoints, deposited by the ranks and read only after
  // Runtime::run has joined every thread (it joins on faults too, so the
  // deposits of completed requests survive an aborted launch).
  std::vector<char> done(nreq, 0);
  std::vector<std::vector<std::vector<double>>> slabs(nreq);
  std::vector<std::vector<index_t>> pending_labels(nreq);
  std::vector<rcm::OrderingRecipe> pending_recipes(nreq);
  /// Coalescing memo: the request sat out a wave behind an identical
  /// in-flight fingerprint (reported as OrderSolveResponse::coalesced).
  std::vector<char> was_deferred(nreq, 0);
  /// A fault killed this request mid-repair: the relaunch runs it COLD —
  /// the opportunistic path lost its chance, the request did not.
  std::vector<char> no_repair(nreq, 0);

  std::vector<std::size_t> remaining(nreq);
  for (std::size_t i = 0; i < nreq; ++i) remaining[i] = i;

  // Entries a request of THIS batch was served from (hits and repair
  // sources) are pinned: wave-end inserts may never evict them while the
  // batch is in flight (satellite: coalesced twins land exactly here).
  PinnedSet pinned;

  // Finalized miss orderings, applied to the cache at WAVE end — after
  // the launch joined (lanes only ever READ the cache while ranks run)
  // and before the next wave schedules, so a deferred twin hits the
  // entry its sibling just computed.
  std::vector<std::pair<PatternFingerprint, CacheEntry>> to_insert;

  const int P = options_.ranks;
  int relaunches = 0;
  std::string last_error = "unknown failure";

  while (!remaining.empty()) {
    // ---- Wave scheduling: coalescing -------------------------------
    // Exact hits all run (they share the entry read-only). Of the
    // misses, only the FIRST occurrence of each salted fingerprint runs
    // this wave; twins wait a wave and are served from the insert.
    std::vector<std::size_t> wave;
    std::vector<std::size_t> deferred;
    {
      PinnedSet inflight;
      for (const std::size_t req : remaining) {
        if (cache_.find(salted[req]) != cache_.end() ||
            inflight.insert(salted[req]).second) {
          wave.push_back(req);
        } else {
          deferred.push_back(req);
          was_deferred[req] = 1;
        }
      }
    }

    // ---- Wave scheduling: hit / repair / cold classification -------
    enum class Mode { kCold, kHit, kRepair };
    std::vector<Mode> mode(nreq, Mode::kCold);
    std::vector<rcm::RepairPlan> plans(nreq);
    std::vector<const CacheEntry*> sources(nreq, nullptr);
    std::vector<PatternFingerprint> source_fp(nreq);
    std::vector<int> diff_windows(nreq, 0);
    for (const std::size_t req : wave) {
      const auto& rq = requests[req];
      if (cache_.find(salted[req]) != cache_.end()) {
        mode[req] = Mode::kHit;
        continue;
      }
      if (!options_.enable_repair || no_repair[req] || rq.rcm.load_balance ||
          resolved[req].ordering.algorithm != rcm::OrderingAlgorithm::kRcm) {
        // Repair is RCM-only in v1: Sloan and GPS runs capture no recipe,
        // so there is nothing sound to splice — decline honestly and run
        // the request cold.
        continue;
      }
      // Repair candidate: the repair-eligible entry of the same n with
      // the FEWEST differing row windows (ties to most recently used —
      // a deterministic tie-break; map order is not), under the cap.
      const CacheEntry* best = nullptr;
      PatternFingerprint best_fp{};
      int best_diff = 0;
      std::uint64_t best_tick = 0;
      for (const auto& [fp, entry] : cache_) {
        if (!entry.repair_eligible || entry.rf.fp.n != refined[req].fp.n) {
          continue;
        }
        // The cached labels must come from the SAME resolved ordering the
        // request wants: splicing across algorithms or peripheral modes
        // would break the repair's bit-identity-with-cold contract.
        if (entry.spec.algorithm != resolved[req].ordering.algorithm ||
            entry.spec.peripheral_mode !=
                resolved[req].ordering.peripheral_mode) {
          continue;
        }
        int diff = 0;
        for (int w = 0; w < kFingerprintWindows; ++w) {
          diff += entry.rf.windows[static_cast<std::size_t>(w)] !=
                  refined[req].windows[static_cast<std::size_t>(w)];
        }
        if (diff < 1 || diff > options_.repair_max_windows) continue;
        if (best == nullptr || diff < best_diff ||
            (diff == best_diff && entry.last_use_tick > best_tick)) {
          best = &entry;
          best_fp = fp;
          best_diff = diff;
          best_tick = entry.last_use_tick;
        }
      }
      if (best == nullptr) continue;
      std::vector<std::pair<index_t, index_t>> changed;
      for (int w = 0; w < kFingerprintWindows; ++w) {
        if (best->rf.windows[static_cast<std::size_t>(w)] !=
            refined[req].windows[static_cast<std::size_t>(w)]) {
          changed.push_back(fingerprint_window_rows(w, refined[req].fp.n));
        }
      }
      rcm::RepairPlan repair_plan = rcm::plan_repair(
          best->recipe, best->labels, changed, refined[req].fp.n);
      if (!repair_plan.profitable) continue;
      mode[req] = Mode::kRepair;
      plans[req] = std::move(repair_plan);
      sources[req] = best;
      source_fp[req] = best_fp;
      diff_windows[req] = best_diff;
    }

    const LanePlan plan = plan_lanes(P, wave.size(), options_.max_lanes);

    // Deal the wave's requests round-robin onto the lanes.
    std::vector<std::vector<std::size_t>> lane_queue(
        static_cast<std::size_t>(plan.nlanes));
    for (std::size_t i = 0; i < wave.size(); ++i) {
      lane_queue[i % static_cast<std::size_t>(plan.nlanes)].push_back(wave[i]);
    }

    // Fresh per-attempt deposit slots (an aborted attempt's partial
    // deposits for unfinished requests must not leak into this one).
    for (const std::size_t req : wave) {
      responses[req] = OrderSolveResponse{};
      responses[req].report.ranks.resize(
          static_cast<std::size_t>(plan.lane_size));
      responses[req].algorithm = resolved[req].ordering.algorithm;
      responses[req].auto_selected = auto_selected[req] != 0;
      responses[req].proxies = proxies[req];
      slabs[req].assign(static_cast<std::size_t>(plan.lane_size), {});
      pending_labels[req].clear();
      pending_recipes[req] = rcm::OrderingRecipe{};
    }

    // Which request each world rank is inside, for fault attribution.
    std::vector<int> current_request(static_cast<std::size_t>(P), -1);

    const auto body = [&](mps::Comm& world) {
      const int wr = world.rank();
      const int color = plan.color_of(wr);
      mps::Comm lane = world.split(color, wr);
      if (color == plan.nlanes) return;  // idle this wave

      // The lane grid adopts this WORLD rank's persistent workspace, so
      // buffer capacities warmed by earlier requests (and earlier waves)
      // carry over and the realloc ledger spans the whole stream.
      dist::ProcGrid2D grid(lane, &workspaces_[static_cast<std::size_t>(wr)]);

      for (const std::size_t req : lane_queue[static_cast<std::size_t>(color)]) {
        current_request[static_cast<std::size_t>(wr)] = static_cast<int>(req);
        const auto& rq = requests[req];
        // The RESOLVED options (kAuto already concrete) are what the lane
        // executes — so the salt, the entry and the run can never diverge.
        const auto& ropt = resolved[req];

        // Per-request ledger isolation: park the attempt's running totals,
        // run the request on a zeroed recorder (peak_resident included, so
        // the pipeline's per-rank budget asserts per request), then fold
        // the request's segment back into the running totals.
        const auto saved = lane.stats();
        lane.stats().reset();
        const auto realloc0 =
            workspaces_[static_cast<std::size_t>(wr)].reallocations();

        // The lane's collective fingerprint (charged to kOther) must
        // reproduce the driver's serial classification value bit for bit
        // — partition invariance is the property the whole schedule
        // rests on.
        const RefinedFingerprint rf =
            fingerprint_pattern_refined(lane, *rq.matrix, grid);
        const PatternFingerprint fp = salt_ordering_options(rf.fp, ropt);
        DRCM_CHECK(fp == salted[req] && rf.windows == refined[req].windows,
                   "lane fingerprint must match the driver's serial twin");

        // Recipe capture (rank 0 only — the vector is driver-side) is
        // what makes a cold entry repair-eligible; balanced orderings
        // skip it (their work numbering is decoupled by the relabel), and
        // so do non-RCM arms (dist_order captures recipes on kRcm only).
        rcm::OrderingRecipe* recipe_sink =
            (lane.rank() == 0 && !rq.rcm.load_balance &&
             ropt.ordering.algorithm == rcm::OrderingAlgorithm::kRcm)
                ? &pending_recipes[req]
                : nullptr;

        rcm::OrderedSolveResult result;
        rcm::RepairResult rep;
        bool repaired = false;
        if (mode[req] == Mode::kHit) {
          const CacheEntry* entry = cache_find(fp);
          DRCM_CHECK(entry != nullptr, "scheduled hit lost its entry");
          result = rcm::ordered_solve_with_labels(grid, *rq.matrix,
                                                  entry->labels, rq.b,
                                                  rq.precondition, ropt,
                                                  rq.cg);
          DRCM_CHECK(mps::ordering_crossings(lane.stats()) == 0,
                     "cache hit must skip every ordering collective");
        } else if (mode[req] == Mode::kRepair) {
          const CacheEntry* src = sources[req];
          rep = rcm::dist_rcm_repair(grid, adjacencies[req], src->labels,
                                     src->recipe, plans[req], ropt);
          if (rep.ok) {
            if (options_.verify_repair) {
              // Stats-isolated cross-check: the cold ordering must agree
              // bit for bit, but its collectives must not pollute this
              // request's ledger (or the crossing comparison the repair
              // exists to win).
              const auto parked = lane.stats();
              lane.stats().reset();
              const auto cold = rcm::dist_rcm(lane, adjacencies[req], ropt);
              lane.stats() = parked;
              DRCM_CHECK(cold == rep.labels,
                         "repair must be bit-identical to a cold recompute");
            }
            result = rcm::ordered_solve_with_labels(grid, *rq.matrix,
                                                    rep.labels, rq.b,
                                                    rq.precondition, ropt,
                                                    rq.cg);
            result.labels = std::move(rep.labels);
            repaired = true;
          } else {
            // Structural change detected mid-repair (component
            // split/merge/reorder): honest cold fallback, recipe
            // captured so the fresh entry is itself repair-eligible.
            result = rcm::ordered_solve_on(grid, *rq.matrix, rq.b,
                                           rq.precondition, ropt, rq.cg,
                                           &adjacencies[req], recipe_sink);
          }
        } else {
          result = rcm::ordered_solve_on(grid, *rq.matrix, rq.b,
                                         rq.precondition, ropt, rq.cg,
                                         &adjacencies[req], recipe_sink);
        }

        const std::uint64_t my_crossings =
            mps::ordering_crossings(lane.stats());
        const std::uint64_t my_reallocs =
            workspaces_[static_cast<std::size_t>(wr)].reallocations() -
            realloc0;
        const auto max_crossings = lane.allreduce(
            my_crossings,
            [](std::uint64_t x, std::uint64_t y) { return std::max(x, y); });
        const auto sum_reallocs = lane.allreduce(
            my_reallocs,
            [](std::uint64_t x, std::uint64_t y) { return x + y; });

        const auto mine = lane.stats();
        lane.stats() = saved;
        lane.stats().merge_from(mine);

        // Deposit this rank's share. Lane rank 0 flips `done` LAST: the
        // flip happens after both allreduces above, which every lane rank
        // must have entered, and each rank's deposits precede its next
        // collective — so done == 1 guarantees complete deposits by the
        // time the runtime has joined the threads.
        slabs[req][static_cast<std::size_t>(lane.rank())] =
            std::move(result.x_local);
        responses[req].report.ranks[static_cast<std::size_t>(lane.rank())] =
            mine;
        if (lane.rank() == 0) {
          auto& resp = responses[req];
          resp.cache_hit = mode[req] == Mode::kHit;
          // A repair only counts as a HIT when it actually skipped work;
          // one that degraded to a full recompute is honest about it.
          resp.repair_hit =
              repaired && (rep.reused >= 1 || rep.level_steps_skipped >= 1);
          resp.level_steps_skipped = repaired ? rep.level_steps_skipped : 0;
          resp.changed_windows =
              mode[req] == Mode::kRepair ? diff_windows[req] : 0;
          resp.fingerprint = fp;
          resp.permuted_bandwidth = result.permuted_bandwidth;
          resp.cg = result.cg;
          resp.ordering_crossings = max_crossings;
          resp.workspace_reallocations = sum_reallocs;
          resp.lane = color;
          resp.lane_ranks = plan.lane_size;
          if (mode[req] != Mode::kHit) {
            pending_labels[req] = std::move(result.labels);
            if (repaired) pending_recipes[req] = std::move(rep.recipe);
          }
          done[req] = 1;
        }
        current_request[static_cast<std::size_t>(wr)] = -1;
      }
    };

    // Finalizes every request the launch completed: assemble the
    // replicated solution outside the ranks (like run_ordered_solve),
    // count the cache outcome, bump/pin served entries, stage miss
    // orderings for the wave-end insert, and drop the request from the
    // wave.
    const auto finalize_wave = [&]() {
      std::vector<std::size_t> still;
      still.reserve(wave.size());
      for (const std::size_t req : wave) {
        if (!done[req]) {
          still.push_back(req);
          continue;
        }
        auto& resp = responses[req];
        const index_t n = requests[req].matrix->n();
        resp.coalesced = was_deferred[req] != 0;
        const std::vector<index_t>* labels = nullptr;
        if (resp.cache_hit) {
          ++cache_hits_;
          if (resp.coalesced) ++coalesced_served_;
          const auto it = cache_.find(resp.fingerprint);
          DRCM_CHECK(it != cache_.end(), "hit entry vanished mid-batch");
          it->second.last_use_tick = ++tick_;
          pinned.insert(resp.fingerprint);
          labels = &it->second.labels;
        } else {
          ++cache_misses_;
          if (!is_permutation(pending_labels[req], n)) {
            resp.status = RequestStatus::kFault;
            resp.error = "ordering produced an invalid permutation";
            continue;
          }
          labels = &pending_labels[req];
          if (resp.repair_hit) {
            ++repair_hits_;
            // The repair source was served FROM: recency-bump and pin it
            // like a hit (a wave-end insert must not evict it either).
            const auto it = cache_.find(source_fp[req]);
            if (it != cache_.end()) {
              it->second.last_use_tick = ++tick_;
              pinned.insert(source_fp[req]);
            }
          }
        }
        std::vector<double> x_perm;
        x_perm.reserve(static_cast<std::size_t>(n));
        for (auto& slab : slabs[req]) {
          x_perm.insert(x_perm.end(), slab.begin(), slab.end());
        }
        DRCM_CHECK(x_perm.size() == static_cast<std::size_t>(n),
                   "solution slabs must cover every permuted row exactly once");
        resp.x.resize(static_cast<std::size_t>(n));
        for (index_t v = 0; v < n; ++v) {
          resp.x[static_cast<std::size_t>(v)] =
              x_perm[static_cast<std::size_t>((*labels)[static_cast<std::size_t>(
                  v)])];
        }
        resp.status = RequestStatus::kOk;
        resp.report.machine = options_.machine;
        if (!resp.cache_hit) {
          CacheEntry entry;
          entry.labels = std::move(pending_labels[req]);
          entry.rf = refined[req];
          entry.spec = resolved[req].ordering;
          entry.recipe = std::move(pending_recipes[req]);
          entry.repair_eligible =
              !requests[req].rcm.load_balance && !entry.recipe.empty() &&
              entry.spec.algorithm == rcm::OrderingAlgorithm::kRcm;
          for (const auto& rank_stats : resp.report.ranks) {
            entry.cost_wall =
                std::max(entry.cost_wall, ordering_wall(rank_stats));
          }
          to_insert.emplace_back(salted[req], std::move(entry));
        }
      }
      wave.swap(still);
    };

    mps::SpmdReport partial;
    mps::RunOptions run_options;
    run_options.machine = options_.machine;
    run_options.threads_per_rank = options_.threads_per_rank;
    run_options.faults = options_.faults;
    run_options.watchdog_seconds = options_.watchdog_seconds;
    run_options.report_on_error = &partial;

    ++launches_;
    bool wave_clean = false;
    try {
      const auto report = mps::Runtime::run(P, body, run_options);
      cumulative_.merge_from(report);
      finalize_wave();
      DRCM_CHECK(wave.empty(),
                 "fault-free launch must complete every scheduled request");
      wave_clean = true;
    } catch (const mps::InjectedFault& f) {
      // Attributable fault: the dying rank's in-flight request gets a
      // structured kFault response — unless it died mid-REPAIR, in which
      // case the request survives and relaunches cold (the cache is
      // untouched either way; inserts only follow validated deposits).
      // Everyone else is relaunched from the driver's checkpoints
      // (one-shot actions cannot re-fire).
      cumulative_.merge_from(partial);
      finalize_wave();
      last_error = std::string("injected ") + mps::fault_kind_name(f.kind()) +
                   " on rank " + std::to_string(f.rank()) + " at collective " +
                   std::to_string(f.ordinal());
      const int victim = current_request[static_cast<std::size_t>(f.rank())];
      if (victim >= 0 && !done[static_cast<std::size_t>(victim)]) {
        if (mode[static_cast<std::size_t>(victim)] == Mode::kRepair) {
          no_repair[static_cast<std::size_t>(victim)] = 1;
        } else {
          auto& resp = responses[static_cast<std::size_t>(victim)];
          resp.status = RequestStatus::kFault;
          resp.error = last_error;
          wave.erase(std::remove(wave.begin(), wave.end(),
                                 static_cast<std::size_t>(victim)),
                     wave.end());
        }
      }
      ++relaunches;
    } catch (const mps::InjectedAllocFailure& f) {
      cumulative_.merge_from(partial);
      finalize_wave();
      last_error = "injected alloc-failure on rank " +
                   std::to_string(f.rank()) + " at collective " +
                   std::to_string(f.ordinal());
      const int victim = current_request[static_cast<std::size_t>(f.rank())];
      if (victim >= 0 && !done[static_cast<std::size_t>(victim)]) {
        if (mode[static_cast<std::size_t>(victim)] == Mode::kRepair) {
          no_repair[static_cast<std::size_t>(victim)] = 1;
        } else {
          auto& resp = responses[static_cast<std::size_t>(victim)];
          resp.status = RequestStatus::kFault;
          resp.error = last_error;
          wave.erase(std::remove(wave.begin(), wave.end(),
                                 static_cast<std::size_t>(victim)),
                     wave.end());
        }
      }
      ++relaunches;
    } catch (const std::exception& e) {
      // No rank attribution (corruption faults surface as downstream check
      // failures; watchdog timeouts name no single request): retry every
      // unfinished request — one-shot fault semantics still guarantee the
      // relaunch makes progress.
      cumulative_.merge_from(partial);
      finalize_wave();
      last_error = e.what();
      ++relaunches;
    }

    // Wave-end inserts: after the launch joined (lanes never see the
    // cache move) and before the next wave schedules — a deferred twin's
    // next classification finds its sibling's entry and HITS.
    for (auto& [fp, entry] : to_insert) {
      cache_insert(fp, std::move(entry), pinned);
    }
    to_insert.clear();

    remaining = std::move(wave);
    remaining.insert(remaining.end(), deferred.begin(), deferred.end());

    if (!wave_clean && relaunches > options_.max_relaunches &&
        !remaining.empty()) {
      for (const std::size_t req : remaining) {
        responses[req].status = RequestStatus::kFault;
        responses[req].error = "relaunch budget exhausted: " + last_error;
      }
      remaining.clear();
    }
  }

  return responses;
}

std::uint64_t ReorderingService::workspace_reallocations() const {
  std::uint64_t total = 0;
  for (const auto& ws : workspaces_) total += ws.reallocations();
  return total;
}

const ReorderingService::CacheEntry* ReorderingService::cache_find(
    const PatternFingerprint& fp) const {
  const auto it = cache_.find(fp);
  return it == cache_.end() ? nullptr : &it->second;
}

void ReorderingService::cache_insert(const PatternFingerprint& fp,
                                     CacheEntry entry,
                                     const PinnedSet& pinned) {
  if (options_.cache_capacity == 0) return;
  // A pattern can race into to_insert twice across waves (a relaunched
  // miss whose twin already landed); keep the first — it is the entry
  // twins were served from.
  if (cache_.find(fp) != cache_.end()) return;
  while (cache_.size() >= options_.cache_capacity) {
    // Cost/recency eviction: the victim minimizes cost_wall / age
    // (age in ticks since last insert-or-hit), ties to least recently
    // used — an expensive ordering outlives a stream of cheap one-offs.
    // Pinned entries (served to the batch in flight) are exempt; when
    // everything resident is pinned the cache briefly overflows rather
    // than invalidate an entry a same-batch twin was served from.
    auto victim = cache_.end();
    double victim_score = 0.0;
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (pinned.find(it->first) != pinned.end()) continue;
      const double age =
          static_cast<double>(tick_ - it->second.last_use_tick) + 1.0;
      const double score = it->second.cost_wall / age;
      if (victim == cache_.end() || score < victim_score ||
          (score == victim_score &&
           it->second.last_use_tick < victim->second.last_use_tick)) {
        victim = it;
        victim_score = score;
      }
    }
    if (victim == cache_.end()) break;  // everything pinned: overflow
    DRCM_CHECK(pinned.find(victim->first) == pinned.end(),
               "eviction must never take an entry the batch was served from");
    cache_.erase(victim);
  }
  entry.last_use_tick = ++tick_;
  cache_.emplace(fp, std::move(entry));
}

}  // namespace drcm::service
