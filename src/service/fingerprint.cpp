#include "service/fingerprint.hpp"

#include <algorithm>

#include "dist/dist_vector.hpp"

namespace drcm::service {

namespace {

/// splitmix64 finalizer: the avalanche that makes the additive combination
/// collision-resistant (without it, sums of raw (row, col) pairs would
/// collide for any pattern with the same coordinate totals).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-entry contribution; deliberately asymmetric in (row, col) so a
/// pattern and a differently-oriented relative keep distinct hashes.
std::uint64_t mix_entry(index_t row, index_t col) {
  return mix64(static_cast<std::uint64_t>(row) * 0x9e3779b97f4a7c15ULL ^
               static_cast<std::uint64_t>(col));
}

}  // namespace

std::size_t PatternFingerprintHash::operator()(
    const PatternFingerprint& f) const {
  return static_cast<std::size_t>(
      mix64(f.hash ^ mix64(static_cast<std::uint64_t>(f.n)) ^
            mix64(static_cast<std::uint64_t>(f.nnz) * 0x517cc1b727220a95ULL)));
}

PatternFingerprint salt_ordering_options(PatternFingerprint fp,
                                         bool load_balance,
                                         std::uint64_t seed) {
  if (load_balance) fp.hash ^= mix64(seed ^ 0xba1a2ce5eedULL);
  return fp;
}

PatternFingerprint fingerprint_pattern(mps::Comm& world,
                                       const sparse::CsrMatrix& a,
                                       dist::ProcGrid2D& grid) {
  mps::PhaseScope scope(world, mps::Phase::kOther);
  const index_t n = a.n();
  const dist::VectorDist vd(n, grid.q());
  const index_t row_lo = vd.chunk_lo(grid.row());
  const index_t row_hi = vd.chunk_lo(grid.row() + 1);
  const index_t col_lo = vd.chunk_lo(grid.col());
  const index_t col_hi = vd.chunk_lo(grid.col() + 1);

  // Same window walk as the one-shot redistribution: this rank touches
  // exactly its balanced-2D block, so the fingerprint costs O(nnz/p)
  // compute and one scalar allreduce, independent of cache outcome.
  std::uint64_t local = 0;
  std::uint64_t block_nnz = 0;
  for (index_t gr = row_lo; gr < row_hi; ++gr) {
    const auto cols = a.row(gr);
    const auto first = std::lower_bound(cols.begin(), cols.end(), col_lo);
    for (auto it = first; it != cols.end() && *it < col_hi; ++it) {
      local += mix_entry(gr, *it);
      ++block_nnz;
    }
  }
  world.charge_compute(static_cast<double>(block_nnz));

  PatternFingerprint fp;
  fp.n = n;
  fp.nnz = a.nnz();
  fp.hash = world.allreduce(
      local, [](std::uint64_t x, std::uint64_t y) { return x + y; });
  return fp;
}

}  // namespace drcm::service
