#include "service/fingerprint.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "dist/dist_vector.hpp"

namespace drcm::service {

namespace {

/// splitmix64 finalizer: the avalanche that makes the additive combination
/// collision-resistant (without it, sums of raw (row, col) pairs would
/// collide for any pattern with the same coordinate totals).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-entry contribution; deliberately asymmetric in (row, col) so a
/// pattern and a differently-oriented relative keep distinct hashes.
std::uint64_t mix_entry(index_t row, index_t col) {
  return mix64(static_cast<std::uint64_t>(row) * 0x9e3779b97f4a7c15ULL ^
               static_cast<std::uint64_t>(col));
}

/// Local partial of the refined fingerprint over a 2D window of `a`:
/// windows[K] carries the total so the combined payload is one array.
/// The lower_bound probe only finds this rank's column slice when the
/// row's indices are sorted; CsrMatrix's constructor enforces that, and
/// the in-walk check keeps the guarantee local to this loop so a future
/// in-place mutation of col_idx can't silently split one pattern into
/// p different per-rank views (satellite: unsorted-CSR fingerprints).
std::array<std::uint64_t, kFingerprintWindows + 1> window_partial(
    const sparse::CsrMatrix& a, index_t row_lo, index_t row_hi,
    index_t col_lo, index_t col_hi, std::uint64_t* touched_nnz) {
  std::array<std::uint64_t, kFingerprintWindows + 1> acc{};
  const index_t n = a.n();
  std::uint64_t count = 0;
  for (index_t gr = row_lo; gr < row_hi; ++gr) {
    const auto cols = a.row(gr);
    const auto first = std::lower_bound(cols.begin(), cols.end(), col_lo);
    const int w = fingerprint_window_of(gr, n);
    index_t prev = col_lo - 1;
    for (auto it = first; it != cols.end() && *it < col_hi; ++it) {
      DRCM_CHECK(*it > prev,
                 "fingerprint requires strictly sorted column indices");
      prev = *it;
      const std::uint64_t h = mix_entry(gr, *it);
      acc[static_cast<std::size_t>(w)] += h;
      acc[kFingerprintWindows] += h;
      ++count;
    }
  }
  if (touched_nnz != nullptr) *touched_nnz = count;
  return acc;
}

}  // namespace

std::size_t PatternFingerprintHash::operator()(
    const PatternFingerprint& f) const {
  return static_cast<std::size_t>(
      mix64(f.hash ^ mix64(static_cast<std::uint64_t>(f.n)) ^
            mix64(static_cast<std::uint64_t>(f.nnz) * 0x517cc1b727220a95ULL)));
}

PatternFingerprint salt_ordering_options(PatternFingerprint fp,
                                         const rcm::DistRcmOptions& options) {
  // Salience audit (see header). kAuto must be resolved by the caller:
  // salting the REQUEST algorithm instead of the one that ran would split
  // one ordering across two slots (auto vs its resolution).
  const auto algorithm = options.ordering.algorithm;
  DRCM_CHECK(algorithm != rcm::OrderingAlgorithm::kAuto,
             "resolve kAuto before salting the cache key");
  fp.hash ^= mix64(0xa190a190ULL + static_cast<std::uint64_t>(algorithm));
  if (algorithm != rcm::OrderingAlgorithm::kGps) {
    // peripheral_mode reaches the labels through the kRcm/kSloan root
    // search only; kGps never consumes it, so folding it there would split
    // identical orderings across slots.
    fp.hash ^= mix64(0x9e21f0e2a1ULL +
                     static_cast<std::uint64_t>(options.ordering.peripheral_mode));
  }
  // Seed only reaches the ordering through balance_input's random relabel,
  // so it is salient iff load_balance. The balance bit gets its own
  // constant term so a balanced entry can never alias the unbalanced one,
  // whatever mix64(seed ^ ...) returns.
  if (options.load_balance) {
    fp.hash ^= mix64(0xba1a2ce5eedULL);
    fp.hash ^= mix64(options.seed ^ 0x10adba1aceULL);
  }
  return fp;
}

PatternFingerprint fingerprint_pattern(mps::Comm& world,
                                       const sparse::CsrMatrix& a,
                                       dist::ProcGrid2D& grid) {
  return fingerprint_pattern_refined(world, a, grid).fp;
}

RefinedFingerprint fingerprint_pattern_refined(mps::Comm& world,
                                               const sparse::CsrMatrix& a,
                                               dist::ProcGrid2D& grid) {
  mps::PhaseScope scope(world, mps::Phase::kOther);
  const index_t n = a.n();
  const dist::VectorDist vd(n, grid.q());
  const index_t row_lo = vd.chunk_lo(grid.row());
  const index_t row_hi = vd.chunk_lo(grid.row() + 1);
  const index_t col_lo = vd.chunk_lo(grid.col());
  const index_t col_hi = vd.chunk_lo(grid.col() + 1);

  // Same window walk as the one-shot redistribution: this rank touches
  // exactly its balanced-2D block, so the fingerprint costs O(nnz/p)
  // compute and one array allreduce (K+1 words), independent of cache
  // outcome. The window sub-sums re-bucket the identical per-entry
  // terms by row, so windows[K] == the legacy scalar hash bit for bit.
  std::uint64_t block_nnz = 0;
  const auto local =
      window_partial(a, row_lo, row_hi, col_lo, col_hi, &block_nnz);
  world.charge_compute(static_cast<double>(block_nnz));

  const auto total = world.allreduce(
      local,
      [](std::array<std::uint64_t, kFingerprintWindows + 1> x,
         const std::array<std::uint64_t, kFingerprintWindows + 1>& y) {
        for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
        return x;
      });

  RefinedFingerprint rf;
  rf.fp.n = n;
  rf.fp.nnz = a.nnz();
  rf.fp.hash = total[kFingerprintWindows];
  std::copy(total.begin(), total.begin() + kFingerprintWindows,
            rf.windows.begin());
  return rf;
}

RefinedFingerprint fingerprint_pattern_serial(const sparse::CsrMatrix& a) {
  // The "one rank owns everything" cut of the same sum: bit-equal to the
  // collective value because summation is partition-invariant.
  const index_t n = a.n();
  const auto total = window_partial(a, 0, n, 0, n, nullptr);
  RefinedFingerprint rf;
  rf.fp.n = n;
  rf.fp.nnz = a.nnz();
  rf.fp.hash = total[kFingerprintWindows];
  std::copy(total.begin(), total.begin() + kFingerprintWindows,
            rf.windows.begin());
  return rf;
}

}  // namespace drcm::service
