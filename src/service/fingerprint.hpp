// Sparsity-pattern identity for the ordering cache.
//
// RCM depends only on the pattern of the matrix, so two requests whose
// matrices share a pattern can share an ordering — the serving layer's
// whole cache premise. The fingerprint is (n, nnz, structure hash), where
// the hash is a wraparound SUM over all entries of a splitmix64-style mix
// of each entry's (row, col). Summation is commutative and associative,
// which makes the hash PARTITION-INVARIANT: any grid cut of the same
// pattern — a 2x2 lane today, a 3x3 lane tomorrow — reduces to the same
// value, so cache entries survive lane reshaping. Each rank mixes only its
// own 2D window (O(nnz/p) work) and ONE allreduce combines the partials;
// the collective is charged to Phase::kOther, so a cache probe never
// touches the ordering-phase crossing ledger the hit path asserts on.
//
// DELTA REFINEMENT (incremental repair): the same sum is also kept per
// contiguous ROW WINDOW — kFingerprintWindows sub-sums whose total IS the
// structure hash (summation re-associates freely). A near-miss pattern is
// diffed window-by-window against a cached entry, which tells the repair
// path WHICH row ranges changed without storing the pattern itself; the
// windows ride the same single allreduce as the total (a K+1-word payload
// instead of 1). Because the stored pattern is symmetric, both endpoints
// of every changed entry live in a changed window — the property the
// BFS-cone bound in rcm::dist_rcm_repair relies on.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dist/proc_grid.hpp"
#include "rcm/rcm_driver.hpp"
#include "sparse/csr.hpp"

namespace drcm::service {

/// Row-window count of the refined fingerprint. Fixed so every cache
/// entry's window vector is comparable regardless of when it was inserted.
inline constexpr int kFingerprintWindows = 16;

struct PatternFingerprint {
  index_t n = 0;
  nnz_t nnz = 0;
  std::uint64_t hash = 0;
  friend bool operator==(const PatternFingerprint&,
                         const PatternFingerprint&) = default;
};

/// The per-row-window refinement: `fp` plus the K window sub-sums it is
/// the total of. Windows partition the ORIGINAL row space evenly
/// (row r -> window r * K / n), so two refined fingerprints of the same n
/// are diffed element-wise.
struct RefinedFingerprint {
  PatternFingerprint fp{};
  std::array<std::uint64_t, kFingerprintWindows> windows{};
};

/// Window of row `r` for dimension `n` (n > 0, 0 <= r < n).
inline int fingerprint_window_of(index_t r, index_t n) {
  return static_cast<int>((static_cast<std::int64_t>(r) *
                           kFingerprintWindows) /
                          (n > 0 ? n : 1));
}

/// Row range [lo, hi) of window `w` for dimension `n`.
inline std::pair<index_t, index_t> fingerprint_window_rows(int w, index_t n) {
  const auto lo = static_cast<index_t>(
      (static_cast<std::int64_t>(w) * n) / kFingerprintWindows);
  const auto hi = static_cast<index_t>(
      (static_cast<std::int64_t>(w + 1) * n) / kFingerprintWindows);
  return {lo, hi};
}

/// Hash functor for unordered_map keys (mixes all three fields; the
/// structure hash alone would collide for patterns that differ only in n,
/// e.g. trailing isolated vertices).
struct PatternFingerprintHash {
  std::size_t operator()(const PatternFingerprint& f) const;
};

/// Collective on the grid's world: every rank mixes its 2D window of `a`
/// (the same replicated fixture everywhere) and one allreduce returns the
/// identical fingerprint on every rank.
PatternFingerprint fingerprint_pattern(mps::Comm& world,
                                       const sparse::CsrMatrix& a,
                                       dist::ProcGrid2D& grid);

/// The refined collective: identical total hash, plus the K row-window
/// sub-sums, still in ONE allreduce (K+1 carried words). fp.hash equals
/// fingerprint_pattern's bit for bit — the windows merely re-bucket the
/// same per-entry terms by row.
RefinedFingerprint fingerprint_pattern_refined(mps::Comm& world,
                                               const sparse::CsrMatrix& a,
                                               dist::ProcGrid2D& grid);

/// Driver-side (non-collective) twin of fingerprint_pattern_refined: one
/// full-matrix walk producing the SAME value the lanes allreduce — the
/// summation is partition-invariant, so "one rank owning everything" is
/// just another cut. The serving layer uses it to classify a batch
/// (coalescing, repair candidates) BEFORE any lane launches; the lanes
/// recompute it collectively (charged) and DRCM_CHECK agreement.
RefinedFingerprint fingerprint_pattern_serial(const sparse::CsrMatrix& a);

/// Folds the ordering-salient options into the key. Salience audit:
///  * algorithm is ALWAYS salient — different algorithms produce different
///    labelings of the same pattern, so their entries must never collide;
///    kAuto must be resolved to a concrete algorithm BEFORE salting
///    (DRCM_CHECKed), otherwise an auto entry and its resolved twin would
///    occupy different slots for the same ordering.
///  * peripheral_mode is salient for kRcm and kSloan (it changes the
///    per-component root, hence the labels) but NOT for kGps, whose
///    internal level-structure search never consumes the knob — two kGps
///    requests differing only in peripheral_mode share one ordering and
///    MUST share one slot (the same honesty rule as the seed below).
///  * Seed-salience (PR 9): DistRcmOptions::seed is consumed in exactly
///    one place — the load-balancing random relabel in balance_input — so
///    with load_balance=false two differently-seeded requests share one
///    slot (pinned by ServiceCache.UnbalancedSeedIsNotSalient). With
///    load_balance=true both the balance bit and the seed are folded; the
///    bit gets its own constant so a balanced entry cannot collide with
///    the unbalanced one even for a seed whose mix happens to vanish.
/// Purely local (no collective); deterministic, so every rank derives the
/// same salted key from the same allreduced fingerprint.
PatternFingerprint salt_ordering_options(PatternFingerprint fp,
                                         const rcm::DistRcmOptions& options);

}  // namespace drcm::service
