// Sparsity-pattern identity for the ordering cache.
//
// RCM depends only on the pattern of the matrix, so two requests whose
// matrices share a pattern can share an ordering — the serving layer's
// whole cache premise. The fingerprint is (n, nnz, structure hash), where
// the hash is a wraparound SUM over all entries of a splitmix64-style mix
// of each entry's (row, col). Summation is commutative and associative,
// which makes the hash PARTITION-INVARIANT: any grid cut of the same
// pattern — a 2x2 lane today, a 3x3 lane tomorrow — reduces to the same
// value, so cache entries survive lane reshaping. Each rank mixes only its
// own 2D window (O(nnz/p) work) and ONE allreduce combines the partials;
// the collective is charged to Phase::kOther, so a cache probe never
// touches the ordering-phase crossing ledger the hit path asserts on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dist/proc_grid.hpp"
#include "sparse/csr.hpp"

namespace drcm::service {

struct PatternFingerprint {
  index_t n = 0;
  nnz_t nnz = 0;
  std::uint64_t hash = 0;
  friend bool operator==(const PatternFingerprint&,
                         const PatternFingerprint&) = default;
};

/// Hash functor for unordered_map keys (mixes all three fields; the
/// structure hash alone would collide for patterns that differ only in n,
/// e.g. trailing isolated vertices).
struct PatternFingerprintHash {
  std::size_t operator()(const PatternFingerprint& f) const;
};

/// Collective on the grid's world: every rank mixes its 2D window of `a`
/// (the same replicated fixture everywhere) and one allreduce returns the
/// identical fingerprint on every rank.
PatternFingerprint fingerprint_pattern(mps::Comm& world,
                                       const sparse::CsrMatrix& a,
                                       dist::ProcGrid2D& grid);

/// Folds the ordering-salient options into the key. RCM labels depend on
/// the load-balancing relabel (and its seed) but on NO other pipeline
/// option — every sort / accumulator / fusion / redistribution arm is
/// bit-identical — so the cache key is exactly (pattern, balance salt).
/// Purely local (no collective); deterministic, so every rank derives the
/// same salted key from the same allreduced fingerprint.
PatternFingerprint salt_ordering_options(PatternFingerprint fp,
                                         bool load_balance, std::uint64_t seed);

}  // namespace drcm::service
