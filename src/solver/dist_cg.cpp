#include "solver/dist_cg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>

#include "solver/block_jacobi.hpp"
#include "sparse/coo.hpp"

namespace drcm::solver {

namespace {

// The 1D slicing rule lives in dist/row_block.hpp (row_block_lo /
// row_block_owner) so this file and to_row_blocks can never disagree on
// block bounds or halo owners.
using dist::row_block_lo;
using dist::row_block_owner;
using sparse::CsrMatrix;

/// Per-rank solver state: the local row block split into local-column and
/// remote-column halves, plus the halo routing tables.
struct LocalSystem {
  index_t lo = 0, hi = 0;
  // Local half: columns inside [lo, hi), stored with local column ids.
  std::vector<nnz_t> lptr;
  std::vector<index_t> lcol;
  std::vector<double> lval;
  // Remote half: columns outside, remapped to halo slots.
  std::vector<nnz_t> rptr;
  std::vector<index_t> rslot;
  std::vector<double> rval;
  // Halo: for each peer rank, which of my x entries it needs (send), and
  // how many entries I receive from each peer (the slots are ordered by
  // peer rank, then by the order of my distinct remote indices per peer).
  std::vector<std::vector<index_t>> send_local_ids;  // per peer: local ids
  index_t halo_size = 0;

  std::uint64_t resident_elements() const {
    std::uint64_t total = lptr.size() + lcol.size() + lval.size() +
                          rptr.size() + rslot.size() + rval.size() +
                          static_cast<std::uint64_t>(halo_size);
    for (const auto& ids : send_local_ids) total += ids.size();
    return total;
  }
};

/// Builds the split system from ANY source of the owned rows: `cols_of(g)`
/// / `vals_of(g)` return the global column ids / values of global row g for
/// g in [lo, hi). Both the replicated-CSR and the distributed row-block
/// overloads funnel through here, so their halo tables, column splits and
/// slot numbering are identical by construction.
template <class ColsOf, class ValsOf>
LocalSystem build_local_system(mps::Comm& world, index_t n, ColsOf&& cols_of,
                               ValsOf&& vals_of) {
  const int p = world.size();
  const int r = world.rank();
  LocalSystem sys;
  sys.lo = row_block_lo(n, p, r);
  sys.hi = row_block_lo(n, p, r + 1);

  // Distinct remote indices, grouped by owner, in ascending index order.
  std::vector<std::vector<index_t>> need(static_cast<std::size_t>(p));
  std::unordered_map<index_t, index_t> slot_of;
  for (index_t i = sys.lo; i < sys.hi; ++i) {
    for (const index_t j : cols_of(i)) {
      if (j < sys.lo || j >= sys.hi) {
        if (slot_of.emplace(j, -1).second) {
          need[static_cast<std::size_t>(row_block_owner(n, p, j))].push_back(j);
        }
      }
    }
  }
  index_t slot = 0;
  for (auto& group : need) {
    std::sort(group.begin(), group.end());
    for (const index_t j : group) slot_of[j] = slot++;
  }
  sys.halo_size = slot;

  // Split rows into local/remote halves.
  const index_t nloc = sys.hi - sys.lo;
  sys.lptr.assign(static_cast<std::size_t>(nloc) + 1, 0);
  sys.rptr.assign(static_cast<std::size_t>(nloc) + 1, 0);
  for (index_t i = sys.lo; i < sys.hi; ++i) {
    const auto cols = cols_of(i);
    const auto vals = vals_of(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] >= sys.lo && cols[k] < sys.hi) {
        sys.lcol.push_back(cols[k] - sys.lo);
        sys.lval.push_back(vals[k]);
      } else {
        sys.rslot.push_back(slot_of[cols[k]]);
        sys.rval.push_back(vals[k]);
      }
    }
    sys.lptr[static_cast<std::size_t>(i - sys.lo) + 1] =
        static_cast<nnz_t>(sys.lcol.size());
    sys.rptr[static_cast<std::size_t>(i - sys.lo) + 1] =
        static_cast<nnz_t>(sys.rslot.size());
  }

  // Tell each owner which entries I need; receive what I must send.
  std::vector<std::vector<index_t>> requests(need.begin(), need.end());
  std::vector<std::int64_t> counts;
  const auto wanted = world.alltoallv(requests, &counts);
  sys.send_local_ids.resize(static_cast<std::size_t>(p));
  std::size_t pos = 0;
  for (int peer = 0; peer < p; ++peer) {
    auto& ids = sys.send_local_ids[static_cast<std::size_t>(peer)];
    for (std::int64_t k = 0; k < counts[static_cast<std::size_t>(peer)]; ++k) {
      // Receive-path range check (always on): the requested index arrived
      // over the wire and becomes an x_local offset on every SpMV.
      DRCM_CHECK(wanted[pos] >= sys.lo && wanted[pos] < sys.hi,
                 "halo request outside the owned row block");
      ids.push_back(wanted[pos++] - sys.lo);
    }
  }
  return sys;
}

/// Per-rank diagonal block preconditioner: my rows restricted to my
/// columns, ILU(0)-factored (BlockJacobi with a single block). Shared by
/// both overloads, entry order identical to the replicated build.
template <class ColsOf, class ValsOf>
std::unique_ptr<BlockJacobi> build_block_preconditioner(index_t lo, index_t hi,
                                                        ColsOf&& cols_of,
                                                        ValsOf&& vals_of) {
  const auto nloc = hi - lo;
  if (nloc <= 0) return nullptr;
  sparse::CooBuilder blk(nloc);
  for (index_t i = lo; i < hi; ++i) {
    const auto cols = cols_of(i);
    const auto vals = vals_of(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] >= lo && cols[k] < hi) {
        blk.add(i - lo, cols[k] - lo, vals[k]);
      }
    }
  }
  return std::make_unique<BlockJacobi>(blk.to_csr(true), 1);
}

/// One distributed SpMV: halo exchange + split local multiply.
void dist_spmv(mps::Comm& world, const LocalSystem& sys,
               std::span<const double> x_local, std::vector<double>& halo,
               std::span<double> y_local) {
  const int p = world.size();
  std::vector<std::vector<double>> send(static_cast<std::size_t>(p));
  for (int peer = 0; peer < p; ++peer) {
    for (const index_t lid : sys.send_local_ids[static_cast<std::size_t>(peer)]) {
      send[static_cast<std::size_t>(peer)].push_back(
          x_local[static_cast<std::size_t>(lid)]);
    }
  }
  const auto recv = world.alltoallv(send);
  DRCM_CHECK(static_cast<index_t>(recv.size()) == sys.halo_size,
             "halo exchange size mismatch");
  halo.assign(recv.begin(), recv.end());

  const index_t nloc = sys.hi - sys.lo;
  for (index_t i = 0; i < nloc; ++i) {
    double sum = 0.0;
    for (nnz_t k = sys.lptr[static_cast<std::size_t>(i)];
         k < sys.lptr[static_cast<std::size_t>(i) + 1]; ++k) {
      sum += sys.lval[static_cast<std::size_t>(k)] *
             x_local[static_cast<std::size_t>(sys.lcol[static_cast<std::size_t>(k)])];
    }
    for (nnz_t k = sys.rptr[static_cast<std::size_t>(i)];
         k < sys.rptr[static_cast<std::size_t>(i) + 1]; ++k) {
      sum += sys.rval[static_cast<std::size_t>(k)] *
             halo[static_cast<std::size_t>(sys.rslot[static_cast<std::size_t>(k)])];
    }
    y_local[static_cast<std::size_t>(i)] = sum;
  }
  world.charge_compute(static_cast<double>(sys.lval.size() + sys.rval.size()));
}

double dist_dot(mps::Comm& world, std::span<const double> a,
                std::span<const double> b) {
  double local = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
  world.charge_compute(static_cast<double>(a.size()));
  return world.allreduce(local, [](double x, double y) { return x + y; });
}

/// The shared PCG iteration: local state only, one halo'd SpMV and two
/// allreduce dots per iteration. `x_out` receives this rank's solution
/// slab — replication, when a caller wants it, is gather_solution's job.
CgResult run_pcg(mps::Comm& world, index_t n, const LocalSystem& sys,
                 const BlockJacobi* pre, std::span<const double> b_local,
                 std::vector<double>& x_out, const CgOptions& options) {
  (void)n;
  const auto nloc = static_cast<std::size_t>(sys.hi - sys.lo);
  DRCM_CHECK(b_local.size() == nloc, "rhs block size mismatch");

  std::vector<double> x_local(nloc, 0.0), r(nloc), z(nloc), pdir(nloc),
      ap(nloc), halo;
  for (std::size_t i = 0; i < nloc; ++i) r[i] = b_local[i];
  const double bnorm = std::sqrt(dist_dot(world, r, r));

  CgResult res;
  if (pre) res.shifted_pivots = pre->shifted_pivots();
  if (bnorm == 0.0) {
    res.converged = true;
    res.status = SolveStatus::kConverged;
    x_out.assign(nloc, 0.0);
    return res;
  }
  if (!std::isfinite(bnorm)) {
    // A NaN/Inf rhs (e.g. a corrupted payload upstream): report instead of
    // iterating on poisoned data. Every rank sees the same allreduced norm,
    // so every rank takes this exit together.
    res.status = SolveStatus::kNanInf;
    x_out = std::move(x_local);
    return res;
  }

  const auto apply_pre = [&](std::span<const double> in, std::span<double> out) {
    if (pre) {
      pre->apply(in, out);
      world.charge_compute(static_cast<double>(2 * nloc));
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };

  apply_pre(r, z);
  pdir.assign(z.begin(), z.end());
  double rz = dist_dot(world, r, z);

  // Every exit decision below is driven by allreduce-replicated scalars
  // (residual norm, p'Ap, r'z), so all ranks branch identically and the
  // collective sequence never diverges — a structured status, never a
  // mismatch or a deadlock.
  double best_residual = std::numeric_limits<double>::infinity();
  int since_improvement = 0;
  bool done = false;
  for (int it = 0; it < options.max_iterations && !done; ++it) {
    res.relative_residual = std::sqrt(dist_dot(world, r, r)) / bnorm;
    if (!std::isfinite(res.relative_residual)) {
      res.status = SolveStatus::kNanInf;
      done = true;
      break;
    }
    if (res.relative_residual <= options.rtol) {
      res.converged = true;
      res.status = SolveStatus::kConverged;
      done = true;
      break;
    }
    if (options.stagnation_window > 0) {
      if (res.relative_residual < 0.999 * best_residual) {
        best_residual = res.relative_residual;
        since_improvement = 0;
      } else if (++since_improvement >= options.stagnation_window) {
        res.status = SolveStatus::kStagnation;
        done = true;
        break;
      }
    }
    dist_spmv(world, sys, pdir, halo, ap);
    const double pap = dist_dot(world, pdir, ap);
    if (!std::isfinite(pap)) {
      res.status = SolveStatus::kNanInf;
      done = true;
      break;
    }
    if (pap <= 0.0) {
      res.status = SolveStatus::kBreakdown;
      done = true;
      break;
    }
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < nloc; ++i) {
      x_local[i] += alpha * pdir[i];
      r[i] -= alpha * ap[i];
    }
    world.charge_compute(static_cast<double>(2 * nloc));
    apply_pre(r, z);
    const double rz_next = dist_dot(world, r, z);
    if (!std::isfinite(rz_next)) {
      res.status = SolveStatus::kNanInf;
      done = true;
      break;
    }
    const double beta = rz_next / rz;
    for (std::size_t i = 0; i < nloc; ++i) pdir[i] = z[i] + beta * pdir[i];
    world.charge_compute(static_cast<double>(nloc));
    rz = rz_next;
    res.iterations = it + 1;
  }
  if (!done) {
    res.relative_residual = std::sqrt(dist_dot(world, r, r)) / bnorm;
    res.converged = res.relative_residual <= options.rtol;
    res.status = res.converged ? SolveStatus::kConverged
                               : SolveStatus::kMaxIterations;
  }

  x_out = std::move(x_local);
  return res;
}

}  // namespace

std::vector<double> gather_solution(mps::Comm& world,
                                    std::span<const double> x_local,
                                    index_t n) {
  // Contiguous row blocks concatenate in rank order, so the allgatherv
  // result IS the global vector.
  auto x = world.allgatherv(x_local);
  DRCM_CHECK(x.size() == static_cast<std::size_t>(n),
             "solution gather size mismatch");
  return x;
}

CgResult dist_pcg(mps::Comm& world, const CsrMatrix& a,
                  std::span<const double> b, std::vector<double>& x,
                  bool precondition, const CgOptions& options) {
  DRCM_CHECK(a.has_values(), "CG needs matrix values");
  DRCM_CHECK(b.size() == static_cast<std::size_t>(a.n()), "rhs size mismatch");
  mps::PhaseScope scope(world, mps::Phase::kSolver);

  const auto cols_of = [&](index_t i) { return a.row(i); };
  const auto vals_of = [&](index_t i) { return a.row_values(i); };
  const auto sys = build_local_system(world, a.n(), cols_of, vals_of);
  std::unique_ptr<BlockJacobi> pre;
  if (precondition) {
    pre = build_block_preconditioner(sys.lo, sys.hi, cols_of, vals_of);
  }
  // The replicated path's ledger entry: every rank holds the FULL matrix
  // (row_ptr + cols + values) plus the replicated rhs next to its local
  // system — the O(nnz) footprint the distributed overload eliminates.
  world.note_resident(static_cast<std::uint64_t>(a.n() + 1) +
                      2 * static_cast<std::uint64_t>(a.nnz()) + b.size() +
                      sys.resident_elements());
  const auto b_local =
      b.subspan(static_cast<std::size_t>(sys.lo),
                static_cast<std::size_t>(sys.hi - sys.lo));
  std::vector<double> x_local;
  const auto res = run_pcg(world, a.n(), sys, pre.get(), b_local, x_local,
                           options);
  // This overload's contract stays replicated; the extra O(n) copy is now
  // explicit AND charged (it used to ride the ledger for free).
  x = gather_solution(world, x_local, a.n());
  world.note_resident(static_cast<std::uint64_t>(a.n() + 1) +
                      2 * static_cast<std::uint64_t>(a.nnz()) + b.size() +
                      sys.resident_elements() + x.size());
  return res;
}

CgResult dist_pcg(mps::Comm& world, const dist::RowBlockCsr& a,
                  std::span<const double> b_local,
                  std::vector<double>& x_local, bool precondition,
                  const CgOptions& options) {
  DRCM_CHECK(a.lo == row_block_lo(a.n, world.size(), world.rank()) &&
                 a.hi == row_block_lo(a.n, world.size(), world.rank() + 1),
             "row block does not match this world's 1D slicing");
  mps::PhaseScope scope(world, mps::Phase::kSolver);

  const auto cols_of = [&](index_t i) { return a.row(i); };
  const auto vals_of = [&](index_t i) { return a.row_values(i); };
  const auto sys = build_local_system(world, a.n, cols_of, vals_of);
  std::unique_ptr<BlockJacobi> pre;
  if (precondition) {
    pre = build_block_preconditioner(sys.lo, sys.hi, cols_of, vals_of);
  }
  // Rank-local footprint only: my row block, my split system, my rhs slab
  // and my solution slab — O(nnz/p + n/p), never the full CSR and no
  // replicated solution (that O(n) tail is gather_solution, opt-in).
  world.note_resident(a.resident_elements() + sys.resident_elements() +
                      b_local.size() +
                      static_cast<std::uint64_t>(a.local_rows()));
  return run_pcg(world, a.n, sys, pre.get(), b_local, x_local, options);
}

DistCgRun run_dist_pcg(int nranks, const sparse::CsrMatrix& a,
                       std::span<const double> b, bool precondition,
                       const CgOptions& options,
                       const mps::MachineParams& machine) {
  DistCgRun run;
  run.report = mps::Runtime::run(
      nranks,
      [&](mps::Comm& world) {
        std::vector<double> x;
        const auto res = dist_pcg(world, a, b, x, precondition, options);
        if (world.rank() == 0) {
          run.result = res;
          run.x = std::move(x);
        }
      },
      machine);
  return run;
}

}  // namespace drcm::solver
