// Block Jacobi preconditioner with ILU(0) sub-solvers — the PETSc
// configuration behind the paper's Figure 1.
//
// Rows are split into `num_blocks` contiguous blocks (PETSc: one block per
// process). Each diagonal block is factored with zero-fill incomplete LU;
// applying the preconditioner is an independent forward/backward sweep per
// block.
//
// This is precisely the component that makes ordering matter: with an RCM
// ordering the matrix's couplings are concentrated inside the diagonal
// blocks, so the block factorizations capture almost the whole operator
// (fewer CG iterations); with a scattered "natural" ordering most couplings
// cross block boundaries and the preconditioner degrades.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace drcm::solver {

class BlockJacobi {
 public:
  /// Factors the `num_blocks` diagonal blocks of `a` (square, with values).
  /// Zero pivots (possible for wildly non-dominant inputs) are replaced by
  /// a small shift to keep the sweep well-defined.
  BlockJacobi(const sparse::CsrMatrix& a, int num_blocks);

  int num_blocks() const { return static_cast<int>(blocks_.size()); }

  /// z = M^{-1} r.
  void apply(std::span<const double> r, std::span<double> z) const;

  /// Fraction of matrix entries captured inside the diagonal blocks — the
  /// quality proxy reported by the Figure-1 bench.
  double capture_fraction() const { return capture_fraction_; }

  /// Number of vanishing ILU(0) pivots the factorization shifted to the
  /// +-1e-12 floor — the recorded fallback that keeps the triangular
  /// sweeps defined on wildly non-dominant inputs. 0 on healthy SPD
  /// matrices (the factorization is then untouched).
  int shifted_pivots() const { return shifted_pivots_; }

 private:
  struct Block {
    index_t lo = 0;  ///< first row of the block
    index_t hi = 0;  ///< one past the last row
    // ILU(0) factor in CSR over the block's local pattern. `diag_pos[i]`
    // indexes the diagonal entry of local row i in `cols`/`vals`.
    std::vector<nnz_t> row_ptr;
    std::vector<index_t> cols;  ///< local column ids
    std::vector<double> vals;
    std::vector<nnz_t> diag_pos;
  };

  static Block factor_block(const sparse::CsrMatrix& a, index_t lo, index_t hi,
                            int* shifted_pivots);

  std::vector<Block> blocks_;
  double capture_fraction_ = 0.0;
  int shifted_pivots_ = 0;
};

}  // namespace drcm::solver
