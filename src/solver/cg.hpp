// Preconditioned conjugate gradient (the PETSc KSPCG stand-in of Figure 1).
#pragma once

#include <span>

#include "solver/block_jacobi.hpp"
#include "sparse/csr.hpp"

namespace drcm::solver {

struct CgOptions {
  double rtol = 1e-8;    ///< relative residual tolerance ||r||/||b||
  int max_iterations = 10000;
  /// Iterations tolerated without the best relative residual improving by
  /// at least 0.1% before the solve returns kStagnation; 0 disables the
  /// detector. Deterministic: the counter is driven by the replicated
  /// residual norm, so every rank takes the same exit.
  int stagnation_window = 250;
};

/// Structured outcome of a CG solve. The solver never asserts on bad
/// numerics: an indefinite direction, a stalled residual or a NaN/Inf in
/// the recurrence (e.g. a corrupted payload) each map to a status the
/// caller can branch on — kNanInf in particular is the retryable signal
/// the recoverable pipeline driver consumes.
enum class SolveStatus : int {
  kConverged = 0,   ///< relative residual reached rtol
  kMaxIterations,   ///< iteration budget exhausted above rtol
  kBreakdown,       ///< p'Ap <= 0: not positive definite along a direction
  kStagnation,      ///< no residual progress for a full stagnation window
  kNanInf,          ///< NaN or Inf entered the recurrence
};

const char* solve_status_name(SolveStatus s);

struct CgResult {
  int iterations = 0;
  double relative_residual = 0.0;
  /// Redundant with status == kConverged; kept for existing callers.
  bool converged = false;
  SolveStatus status = SolveStatus::kMaxIterations;
  /// Zero pivots the block-Jacobi ILU(0) factorization shifted to keep the
  /// sweeps defined (the recorded preconditioner fallback); 0 on healthy
  /// SPD inputs and for unpreconditioned solves.
  int shifted_pivots = 0;
};

/// Solves A x = b for SPD A (values required). `x` is the initial guess on
/// entry and the solution on exit. `preconditioner` may be null (plain CG).
CgResult pcg(const sparse::CsrMatrix& a, std::span<const double> b,
             std::span<double> x, const BlockJacobi* preconditioner,
             const CgOptions& options = {});

}  // namespace drcm::solver
