// Preconditioned conjugate gradient (the PETSc KSPCG stand-in of Figure 1).
#pragma once

#include <span>

#include "solver/block_jacobi.hpp"
#include "sparse/csr.hpp"

namespace drcm::solver {

struct CgOptions {
  double rtol = 1e-8;    ///< relative residual tolerance ||r||/||b||
  int max_iterations = 10000;
};

struct CgResult {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// Solves A x = b for SPD A (values required). `x` is the initial guess on
/// entry and the solution on exit. `preconditioner` may be null (plain CG).
CgResult pcg(const sparse::CsrMatrix& a, std::span<const double> b,
             std::span<double> x, const BlockJacobi* preconditioner,
             const CgOptions& options = {});

}  // namespace drcm::solver
