#include "solver/solver_model.hpp"

#include <cmath>

namespace drcm::solver {

double modeled_cg_seconds(const SolveTimeInputs& inputs,
                          const mps::MachineParams& machine) {
  DRCM_CHECK(inputs.halo.ranks >= 1 && inputs.iterations >= 0,
             "invalid solve model inputs");
  const double p = inputs.halo.ranks;
  const double alpha = machine.alpha;
  const double beta = machine.beta;
  const double gamma = machine.gamma;

  // SpMV + preconditioner sweep + 5 BLAS-1 passes.
  const double compute =
      gamma * (3.0 * static_cast<double>(inputs.nnz) / p +
               5.0 * static_cast<double>(inputs.n) / p);
  // Halo exchange: the busiest rank sends/receives its halo to/from its
  // neighbors; one message per neighbor.
  const double halo_comm =
      p > 1 ? alpha * inputs.halo.max_neighbors +
                  beta * static_cast<double>(inputs.halo.max_remote_entries)
            : 0.0;
  // Two dot products per iteration: allreduce latency.
  const double reductions = p > 1 ? 2.0 * 2.0 * alpha * std::log2(p) : 0.0;

  return inputs.iterations * (compute + halo_comm + reductions);
}

}  // namespace drcm::solver
