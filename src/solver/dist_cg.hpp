// Distributed preconditioned conjugate gradient over the mpsim runtime —
// the PETSc configuration of the paper's Figure 1, executed for real.
//
// Layout: PETSc-style 1D contiguous row blocks (any rank count, no square
// grid needed). Each iteration performs
//   * a halo exchange (alltoallv of exactly the x-entries each rank's
//     off-block columns reference — the communication volume RCM shrinks),
//   * a local SpMV over the split local/remote column structure,
//   * two allreduce dot products,
//   * optionally a block Jacobi preconditioner sweep: each rank ILU(0)-
//     factors its own diagonal block (PETSc's default sub-preconditioner),
//     which is exactly one block per process — the preconditioner whose
//     quality depends on the ordering.
//
// All costs are charged to Phase::kSolver, so a run yields measured wall
// time plus modeled alpha-beta time per rank.
#pragma once

#include <span>
#include <vector>

#include "dist/row_block.hpp"
#include "mpsim/runtime.hpp"
#include "solver/cg.hpp"
#include "sparse/csr.hpp"

namespace drcm::solver {

/// SPMD collective: solves A x = b on `world` (A and b replicated on every
/// rank; the matrix is sliced into row blocks internally). Returns the CG
/// statistics; `x` receives the replicated solution on every rank.
CgResult dist_pcg(mps::Comm& world, const sparse::CsrMatrix& a,
                  std::span<const double> b, std::vector<double>& x,
                  bool precondition, const CgOptions& options = {});

/// Same solve on an ALREADY DISTRIBUTED matrix: `a` is this rank's 1D row
/// block (the output of dist::to_row_blocks / redistribute_to_row_blocks)
/// and `b_local` the rhs entries of the owned rows [a.lo, a.hi). Halo
/// analysis, the local/remote column split and the block-Jacobi ILU(0)
/// factorization are all built from rank-local data — no replicated CSR
/// exists anywhere. Iterations are bit-identical to the replicated overload
/// on the same matrix (same blocks, same halo, same fold order).
/// `x_local` receives ONLY this rank's solution slab for rows [a.lo, a.hi)
/// — the solve itself never replicates anything; callers that want the
/// O(n) replicated vector opt in explicitly via gather_solution.
CgResult dist_pcg(mps::Comm& world, const dist::RowBlockCsr& a,
                  std::span<const double> b_local,
                  std::vector<double>& x_local, bool precondition,
                  const CgOptions& options = {});

/// The explicit replication step the slab overload no longer performs:
/// allgathers the per-rank solution slabs (contiguous row blocks, so the
/// rank-order concatenation IS the global vector) into a replicated length-n
/// solution. Collective; costs O(n) resident on every rank — callers on the
/// no-gather pipeline should stay on the slab instead.
std::vector<double> gather_solution(mps::Comm& world,
                                    std::span<const double> x_local,
                                    index_t n);

/// Convenience wrapper: launches `nranks` ranks, runs dist_pcg, returns the
/// solution plus the cost report.
struct DistCgRun {
  CgResult result;
  std::vector<double> x;
  mps::SpmdReport report;
};

DistCgRun run_dist_pcg(int nranks, const sparse::CsrMatrix& a,
                       std::span<const double> b, bool precondition,
                       const CgOptions& options = {},
                       const mps::MachineParams& machine = {});

}  // namespace drcm::solver
