// Communication-volume analysis of a distributed SpMV under the PETSc-style
// 1D contiguous row-block partition.
//
// In each CG iteration, rank r needs x-entries for every column its rows
// touch outside its own block — the "halo". The halo volume and the number
// of neighbor ranks are direct functions of the matrix bandwidth: a
// RCM-ordered matrix with bandwidth << n/p needs a sliver from at most two
// neighbors, while a scattered ordering pulls from everyone. This is the
// mechanism behind Figure 1's widening gap (paper Sec. I: RCM "can often
// restrict the communication to resemble more of a nearest-neighbor
// pattern").
#pragma once

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::solver {

struct HaloStats {
  int ranks = 1;
  u64 total_remote_entries = 0;  ///< sum over ranks of distinct remote x ids
  u64 max_remote_entries = 0;    ///< per-rank maximum (critical path)
  int max_neighbors = 0;         ///< max distinct partner ranks of any rank
  double mean_neighbors = 0.0;
};

/// Analyzes the halo of `a` split into `ranks` contiguous row blocks.
HaloStats analyze_halo(const sparse::CsrMatrix& a, int ranks);

}  // namespace drcm::solver
