// Envelope (skyline) storage and Cholesky factorization — the classic
// direct-solver data structure whose size the RCM ordering minimizes.
//
// The paper's opening motivation: "a matrix with a small profile is useful
// in direct methods for solving sparse linear systems since it allows a
// simple data structure to be used". The structure is this one: row i
// stores the contiguous slice [f_i, i] from its first nonzero to the
// diagonal, so total storage is |Env(A)| + n. Cholesky factorization is
// closed over the envelope (George & Liu, Thm 2.1: no fill outside it),
// so factor storage equals envelope storage and factor work is
// sum_i beta_i^2 / 2 — both direct functions of the profile that RCM
// shrinks.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace drcm::solver {

/// SPD matrix in skyline/envelope form with in-place Cholesky.
class SkylineMatrix {
 public:
  /// Captures the envelope of `a` (square, symmetric, with values).
  explicit SkylineMatrix(const sparse::CsrMatrix& a);

  index_t n() const { return n_; }
  /// Stored doubles: |Env(A)| + n (the paper's profile plus the diagonal).
  nnz_t storage() const { return static_cast<nnz_t>(values_.size()); }

  /// In-place LL^T factorization. Throws CheckError if a pivot is not
  /// positive (matrix not SPD on this envelope). Returns the multiply-add
  /// count (the envelope-method flop measure sum_i beta_i(beta_i+3)/2).
  nnz_t factor();

  /// Solves A x = b using the factor (factor() must have succeeded).
  void solve(std::span<const double> b, std::span<double> x) const;

  bool factored() const { return factored_; }

  /// Predicted factorization work for a pattern + labeling WITHOUT building
  /// anything: sum over rows of beta_i(beta_i+3)/2 under `labels`. Lets the
  /// harness score orderings at sizes too big to factor.
  static double predicted_flops(const sparse::CsrMatrix& pattern,
                                std::span<const index_t> labels);

 private:
  double& at(index_t i, index_t j) {
    return values_[static_cast<std::size_t>(row_start_[static_cast<std::size_t>(i)] +
                                            (j - first_[static_cast<std::size_t>(i)]))];
  }
  double at(index_t i, index_t j) const {
    return values_[static_cast<std::size_t>(row_start_[static_cast<std::size_t>(i)] +
                                            (j - first_[static_cast<std::size_t>(i)]))];
  }

  index_t n_ = 0;
  std::vector<index_t> first_;     ///< f_i: first stored column of row i
  std::vector<nnz_t> row_start_;   ///< offset of row i's slice in values_
  std::vector<double> values_;     ///< slices [f_i .. i] back to back
  bool factored_ = false;
};

}  // namespace drcm::solver
