#include "solver/block_jacobi.hpp"

#include <algorithm>
#include <cmath>

namespace drcm::solver {

BlockJacobi::BlockJacobi(const sparse::CsrMatrix& a, int num_blocks) {
  DRCM_CHECK(a.has_values(), "BlockJacobi needs matrix values");
  DRCM_CHECK(num_blocks >= 1, "need at least one block");
  const index_t n = a.n();
  const auto nb = static_cast<index_t>(std::min<index_t>(num_blocks, std::max<index_t>(n, 1)));

  nnz_t captured = 0;
  blocks_.reserve(static_cast<std::size_t>(nb));
  for (index_t b = 0; b < nb; ++b) {
    const index_t lo = b * n / nb;
    const index_t hi = (b + 1) * n / nb;
    if (lo == hi) continue;
    blocks_.push_back(factor_block(a, lo, hi, &shifted_pivots_));
    captured += static_cast<nnz_t>(blocks_.back().cols.size());
  }
  capture_fraction_ =
      a.nnz() > 0 ? static_cast<double>(captured) / static_cast<double>(a.nnz())
                  : 1.0;
}

BlockJacobi::Block BlockJacobi::factor_block(const sparse::CsrMatrix& a,
                                             index_t lo, index_t hi,
                                             int* shifted_pivots) {
  Block blk;
  blk.lo = lo;
  blk.hi = hi;
  const index_t m = hi - lo;

  // Extract the diagonal block in local indices. A missing structural
  // diagonal gets a unit placeholder so the sweep stays defined.
  blk.row_ptr.assign(static_cast<std::size_t>(m) + 1, 0);
  blk.diag_pos.assign(static_cast<std::size_t>(m), -1);
  for (index_t i = 0; i < m; ++i) {
    const index_t gi = lo + i;
    const auto cols = a.row(gi);
    const auto vals = a.row_values(gi);
    bool saw_diag = false;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t gj = cols[k];
      if (gj < lo || gj >= hi) continue;
      const index_t j = gj - lo;
      if (!saw_diag && j > i) {
        blk.diag_pos[static_cast<std::size_t>(i)] =
            static_cast<nnz_t>(blk.cols.size());
        blk.cols.push_back(i);
        blk.vals.push_back(1.0);
        saw_diag = true;
      }
      if (j == i) {
        blk.diag_pos[static_cast<std::size_t>(i)] =
            static_cast<nnz_t>(blk.cols.size());
        saw_diag = true;
      }
      blk.cols.push_back(j);
      blk.vals.push_back(vals[k]);
    }
    if (!saw_diag) {
      blk.diag_pos[static_cast<std::size_t>(i)] =
          static_cast<nnz_t>(blk.cols.size());
      blk.cols.push_back(i);
      blk.vals.push_back(1.0);
    }
    blk.row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<nnz_t>(blk.cols.size());
  }

  // ILU(0), ikj variant restricted to the existing pattern.
  const auto row_begin = [&](index_t i) {
    return blk.row_ptr[static_cast<std::size_t>(i)];
  };
  const auto row_end = [&](index_t i) {
    return blk.row_ptr[static_cast<std::size_t>(i) + 1];
  };
  const auto find_in_row = [&](index_t row, index_t col) -> nnz_t {
    const auto* base = blk.cols.data();
    const auto* first = base + row_begin(row);
    const auto* last = base + row_end(row);
    const auto* it = std::lower_bound(first, last, col);
    if (it != last && *it == col) return static_cast<nnz_t>(it - base);
    return -1;
  };

  constexpr double kPivotFloor = 1e-12;
  for (index_t i = 0; i < m; ++i) {
    for (nnz_t kk = row_begin(i); kk < row_end(i); ++kk) {
      const index_t k = blk.cols[static_cast<std::size_t>(kk)];
      if (k >= i) break;
      // Earlier rows are fully factored with their diagonal already
      // shifted onto the pivot floor, so the pivot is read as stored.
      const double pivot = blk.vals[static_cast<std::size_t>(
          blk.diag_pos[static_cast<std::size_t>(k)])];
      const double lik = blk.vals[static_cast<std::size_t>(kk)] / pivot;
      blk.vals[static_cast<std::size_t>(kk)] = lik;
      // a_ij -= l_ik * u_kj for j > k present in both rows i and k.
      for (nnz_t kj = blk.diag_pos[static_cast<std::size_t>(k)] + 1;
           kj < row_end(k); ++kj) {
        const index_t j = blk.cols[static_cast<std::size_t>(kj)];
        const nnz_t ij = find_in_row(i, j);
        if (ij >= 0) {
          blk.vals[static_cast<std::size_t>(ij)] -=
              lik * blk.vals[static_cast<std::size_t>(kj)];
        }
      }
    }
    // Row i is final: a vanishing diagonal is shifted IN STORAGE to the
    // pivot floor (later rows divide by it, apply() divides by it) and the
    // fallback is recorded so callers can see the factorization was not
    // the exact ILU(0) of the input.
    double& diag = blk.vals[static_cast<std::size_t>(
        blk.diag_pos[static_cast<std::size_t>(i)])];
    if (std::abs(diag) < kPivotFloor) {
      diag = diag < 0 ? -kPivotFloor : kPivotFloor;
      if (shifted_pivots) ++*shifted_pivots;
    }
  }
  return blk;
}

void BlockJacobi::apply(std::span<const double> r, std::span<double> z) const {
  DRCM_CHECK(r.size() == z.size(), "apply dimension mismatch");
  const auto nb = static_cast<std::int64_t>(blocks_.size());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t b = 0; b < nb; ++b) {
    const Block& blk = blocks_[static_cast<std::size_t>(b)];
    const index_t m = blk.hi - blk.lo;
    // Forward solve L y = r (unit diagonal; y stored into z).
    for (index_t i = 0; i < m; ++i) {
      double sum = r[static_cast<std::size_t>(blk.lo + i)];
      for (nnz_t k = blk.row_ptr[static_cast<std::size_t>(i)];
           k < blk.diag_pos[static_cast<std::size_t>(i)]; ++k) {
        sum -= blk.vals[static_cast<std::size_t>(k)] *
               z[static_cast<std::size_t>(blk.lo +
                                          blk.cols[static_cast<std::size_t>(k)])];
      }
      z[static_cast<std::size_t>(blk.lo + i)] = sum;
    }
    // Backward solve U z = y. Diagonals were shifted onto the pivot floor
    // at factor time, so the stored value divides safely as-is.
    for (index_t i = m; i-- > 0;) {
      double sum = z[static_cast<std::size_t>(blk.lo + i)];
      const nnz_t dp = blk.diag_pos[static_cast<std::size_t>(i)];
      for (nnz_t k = dp + 1; k < blk.row_ptr[static_cast<std::size_t>(i) + 1];
           ++k) {
        sum -= blk.vals[static_cast<std::size_t>(k)] *
               z[static_cast<std::size_t>(blk.lo +
                                          blk.cols[static_cast<std::size_t>(k)])];
      }
      z[static_cast<std::size_t>(blk.lo + i)] =
          sum / blk.vals[static_cast<std::size_t>(dp)];
    }
  }
}

}  // namespace drcm::solver
