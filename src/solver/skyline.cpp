#include "solver/skyline.hpp"

#include <algorithm>
#include <cmath>

namespace drcm::solver {

SkylineMatrix::SkylineMatrix(const sparse::CsrMatrix& a) : n_(a.n()) {
  DRCM_CHECK(a.has_values(), "skyline storage needs matrix values");
  first_.resize(static_cast<std::size_t>(n_));
  row_start_.resize(static_cast<std::size_t>(n_) + 1);
  nnz_t total = 0;
  for (index_t i = 0; i < n_; ++i) {
    const auto cols = a.row(i);
    index_t fi = i;  // diagonal always stored
    if (!cols.empty() && cols.front() < i) fi = cols.front();
    first_[static_cast<std::size_t>(i)] = fi;
    row_start_[static_cast<std::size_t>(i)] = total;
    total += i - fi + 1;
  }
  row_start_[static_cast<std::size_t>(n_)] = total;
  values_.assign(static_cast<std::size_t>(total), 0.0);
  for (index_t i = 0; i < n_; ++i) {
    const auto cols = a.row(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] <= i) at(i, cols[k]) = vals[k];
    }
  }
}

nnz_t SkylineMatrix::factor() {
  DRCM_CHECK(!factored_, "matrix already factored");
  nnz_t flops = 0;
  for (index_t i = 0; i < n_; ++i) {
    const index_t fi = first_[static_cast<std::size_t>(i)];
    // Off-diagonal entries of row i of L.
    for (index_t j = fi; j < i; ++j) {
      const index_t fj = first_[static_cast<std::size_t>(j)];
      const index_t k0 = std::max(fi, fj);
      double sum = at(i, j);
      for (index_t k = k0; k < j; ++k) {
        sum -= at(i, k) * at(j, k);
        ++flops;
      }
      at(i, j) = sum / at(j, j);
      ++flops;
    }
    // Diagonal.
    double diag = at(i, i);
    for (index_t k = fi; k < i; ++k) {
      diag -= at(i, k) * at(i, k);
      ++flops;
    }
    DRCM_CHECK(diag > 0.0, "matrix is not positive definite (envelope "
                           "Cholesky pivot <= 0)");
    at(i, i) = std::sqrt(diag);
  }
  factored_ = true;
  return flops;
}

void SkylineMatrix::solve(std::span<const double> b, std::span<double> x) const {
  DRCM_CHECK(factored_, "factor() must succeed before solve()");
  DRCM_CHECK(b.size() == static_cast<std::size_t>(n_) && b.size() == x.size(),
             "solve dimension mismatch");
  // Forward: L y = b (y stored in x).
  for (index_t i = 0; i < n_; ++i) {
    double sum = b[static_cast<std::size_t>(i)];
    for (index_t k = first_[static_cast<std::size_t>(i)]; k < i; ++k) {
      sum -= at(i, k) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = sum / at(i, i);
  }
  // Backward: L^T x = y, accessing L^T by rows of L in reverse.
  for (index_t i = n_; i-- > 0;) {
    const double xi = x[static_cast<std::size_t>(i)] / at(i, i);
    x[static_cast<std::size_t>(i)] = xi;
    for (index_t k = first_[static_cast<std::size_t>(i)]; k < i; ++k) {
      x[static_cast<std::size_t>(k)] -= at(i, k) * xi;
    }
  }
}

double SkylineMatrix::predicted_flops(const sparse::CsrMatrix& pattern,
                                      std::span<const index_t> labels) {
  DRCM_CHECK(labels.size() == static_cast<std::size_t>(pattern.n()),
             "labels size must match matrix dimension");
  // Envelope starts f_i under the relabeling, without materializing the
  // permutation.
  std::vector<index_t> first(static_cast<std::size_t>(pattern.n()), 0);
  for (index_t v = 0; v < pattern.n(); ++v) {
    const index_t lv = labels[static_cast<std::size_t>(v)];
    index_t lo = lv;
    for (const index_t u : pattern.row(v)) {
      lo = std::min(lo, labels[static_cast<std::size_t>(u)]);
    }
    first[static_cast<std::size_t>(lv)] = lo;
  }
  // Exact multiply-add count of the envelope method: each L_ij costs
  // j - max(f_i, f_j) updates plus one division; each diagonal costs
  // beta_i updates. O(|Env|) time — the same order as the storage itself.
  double flops = 0.0;
  for (index_t i = 0; i < pattern.n(); ++i) {
    const index_t fi = first[static_cast<std::size_t>(i)];
    for (index_t j = fi; j < i; ++j) {
      const index_t k0 = std::max(fi, first[static_cast<std::size_t>(j)]);
      flops += static_cast<double>(j - k0) + 1.0;
    }
    flops += static_cast<double>(i - fi);
  }
  return flops;
}

}  // namespace drcm::solver
