#include "solver/spmv.hpp"

#include <cmath>

namespace drcm::solver {

void spmv(const sparse::CsrMatrix& a, std::span<const double> x,
          std::span<double> y) {
  DRCM_CHECK(a.has_values(), "SpMV needs matrix values");
  DRCM_CHECK(x.size() == static_cast<std::size_t>(a.n()) && x.size() == y.size(),
             "SpMV dimension mismatch");
  const index_t n = a.n();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    const auto cols = a.row(i);
    const auto vals = a.row_values(i);
    double sum = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      sum += vals[k] * x[static_cast<std::size_t>(cols[k])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
}

double dot(std::span<const double> x, std::span<const double> y) {
  DRCM_CHECK(x.size() == y.size(), "dot dimension mismatch");
  double sum = 0.0;
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static) reduction(+ : sum)
  for (std::int64_t i = 0; i < n; ++i) {
    sum += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
  }
  return sum;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  DRCM_CHECK(x.size() == y.size(), "axpy dimension mismatch");
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] += alpha * x[static_cast<std::size_t>(i)];
  }
}

void xpby(std::span<const double> x, double beta, std::span<double> y) {
  DRCM_CHECK(x.size() == y.size(), "xpby dimension mismatch");
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(i)] + beta * y[static_cast<std::size_t>(i)];
  }
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

}  // namespace drcm::solver
