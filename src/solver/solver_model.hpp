// Modeled parallel CG solve time (the y-axis of Figure 1).
//
// Per iteration on p ranks, the distributed PCG performs:
//   * SpMV: nnz/p multiply-adds plus the halo exchange (volume and message
//     count from the HaloStats of the actual matrix);
//   * preconditioner sweep: ~2 * captured-nnz/p operations, no
//     communication (block Jacobi is embarrassingly parallel);
//   * BLAS-1 + two dot-product allreduces (latency log p).
// Total time = iterations (measured by actually running the solver) times
// the per-iteration model. Both the iteration count and the halo react to
// the ordering, which is exactly Figure 1's experiment.
#pragma once

#include "mpsim/cost_model.hpp"
#include "solver/halo_analyzer.hpp"
#include "sparse/csr.hpp"

namespace drcm::solver {

struct SolveTimeInputs {
  nnz_t nnz = 0;            ///< matrix nonzeros
  index_t n = 0;            ///< unknowns
  int iterations = 0;       ///< measured CG iterations to tolerance
  HaloStats halo;           ///< from analyze_halo(a, ranks)
};

/// Modeled seconds for the whole solve on `halo.ranks` cores.
double modeled_cg_seconds(const SolveTimeInputs& inputs,
                          const mps::MachineParams& machine = {});

}  // namespace drcm::solver
