// Dense-vector kernels for the iterative solver: OpenMP CSR SpMV and the
// few BLAS-1 helpers CG needs.
#pragma once

#include <span>

#include "sparse/csr.hpp"

namespace drcm::solver {

/// y = A x. A must carry values; x and y must have length n.
void spmv(const sparse::CsrMatrix& a, std::span<const double> x,
          std::span<double> y);

/// <x, y>.
double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// y = x + beta * y (the CG direction update).
void xpby(std::span<const double> x, double beta, std::span<double> y);

/// Euclidean norm.
double norm2(std::span<const double> x);

}  // namespace drcm::solver
