#include "solver/cg.hpp"

#include <vector>

#include "solver/spmv.hpp"

namespace drcm::solver {

CgResult pcg(const sparse::CsrMatrix& a, std::span<const double> b,
             std::span<double> x, const BlockJacobi* preconditioner,
             const CgOptions& options) {
  DRCM_CHECK(a.has_values(), "CG needs matrix values");
  DRCM_CHECK(b.size() == static_cast<std::size_t>(a.n()) && b.size() == x.size(),
             "CG dimension mismatch");
  const std::size_t n = b.size();

  std::vector<double> r(n), z(n), p(n), ap(n);
  // r = b - A x.
  spmv(a, x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  const double bnorm = norm2(b);
  CgResult res;
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    res.converged = true;
    return res;
  }

  const auto precondition = [&](std::span<const double> in,
                                std::span<double> out) {
    if (preconditioner) {
      preconditioner->apply(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };

  precondition(r, z);
  p = z;
  double rz = dot(r, z);

  for (int it = 0; it < options.max_iterations; ++it) {
    res.relative_residual = norm2(r) / bnorm;
    if (res.relative_residual <= options.rtol) {
      res.converged = true;
      return res;
    }
    spmv(a, p, ap);
    const double pap = dot(p, ap);
    DRCM_CHECK(pap > 0.0, "matrix is not positive definite along p");
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    precondition(r, z);
    const double rz_next = dot(r, z);
    xpby(z, rz_next / rz, p);  // p = z + beta p
    rz = rz_next;
    res.iterations = it + 1;
  }
  res.relative_residual = norm2(r) / bnorm;
  res.converged = res.relative_residual <= options.rtol;
  return res;
}

}  // namespace drcm::solver
