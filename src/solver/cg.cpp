#include "solver/cg.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "solver/spmv.hpp"

namespace drcm::solver {

const char* solve_status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kMaxIterations: return "max-iterations";
    case SolveStatus::kBreakdown: return "breakdown";
    case SolveStatus::kStagnation: return "stagnation";
    case SolveStatus::kNanInf: return "nan-inf";
  }
  return "unknown";
}

CgResult pcg(const sparse::CsrMatrix& a, std::span<const double> b,
             std::span<double> x, const BlockJacobi* preconditioner,
             const CgOptions& options) {
  DRCM_CHECK(a.has_values(), "CG needs matrix values");
  DRCM_CHECK(b.size() == static_cast<std::size_t>(a.n()) && b.size() == x.size(),
             "CG dimension mismatch");
  const std::size_t n = b.size();

  CgResult res;
  if (preconditioner) res.shifted_pivots = preconditioner->shifted_pivots();

  std::vector<double> r(n), z(n), p(n), ap(n);
  // r = b - A x.
  spmv(a, x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    res.converged = true;
    res.status = SolveStatus::kConverged;
    return res;
  }

  const auto precondition = [&](std::span<const double> in,
                                std::span<double> out) {
    if (preconditioner) {
      preconditioner->apply(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };

  precondition(r, z);
  p = z;
  double rz = dot(r, z);

  double best_residual = std::numeric_limits<double>::infinity();
  int since_improvement = 0;
  for (int it = 0; it < options.max_iterations; ++it) {
    res.relative_residual = norm2(r) / bnorm;
    if (!std::isfinite(res.relative_residual)) {
      res.status = SolveStatus::kNanInf;
      return res;
    }
    if (res.relative_residual <= options.rtol) {
      res.converged = true;
      res.status = SolveStatus::kConverged;
      return res;
    }
    if (options.stagnation_window > 0) {
      if (res.relative_residual < 0.999 * best_residual) {
        best_residual = res.relative_residual;
        since_improvement = 0;
      } else if (++since_improvement >= options.stagnation_window) {
        res.status = SolveStatus::kStagnation;
        return res;
      }
    }
    spmv(a, p, ap);
    const double pap = dot(p, ap);
    if (!std::isfinite(pap)) {
      res.status = SolveStatus::kNanInf;
      return res;
    }
    if (pap <= 0.0) {
      res.status = SolveStatus::kBreakdown;
      return res;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    precondition(r, z);
    const double rz_next = dot(r, z);
    if (!std::isfinite(rz_next)) {
      res.status = SolveStatus::kNanInf;
      return res;
    }
    xpby(z, rz_next / rz, p);  // p = z + beta p
    rz = rz_next;
    res.iterations = it + 1;
  }
  res.relative_residual = norm2(r) / bnorm;
  res.converged = res.relative_residual <= options.rtol;
  res.status =
      res.converged ? SolveStatus::kConverged : SolveStatus::kMaxIterations;
  return res;
}

}  // namespace drcm::solver
