#include "solver/halo_analyzer.hpp"

#include <algorithm>
#include <unordered_set>

namespace drcm::solver {

HaloStats analyze_halo(const sparse::CsrMatrix& a, int ranks) {
  DRCM_CHECK(ranks >= 1, "need at least one rank");
  HaloStats stats;
  stats.ranks = ranks;
  const index_t n = a.n();

  const auto block_of = [&](index_t g) {
    // Balanced contiguous blocks: block b = [b*n/p, (b+1)*n/p).
    int b = static_cast<int>((static_cast<long double>(g) * ranks) / n);
    while (b > 0 && (static_cast<index_t>(b) * n) / ranks > g) --b;
    while (b + 1 < ranks && (static_cast<index_t>(b + 1) * n) / ranks <= g) ++b;
    return b;
  };

  u64 total_neighbors = 0;
  for (int b = 0; b < ranks; ++b) {
    const index_t lo = (static_cast<index_t>(b) * n) / ranks;
    const index_t hi = (static_cast<index_t>(b + 1) * n) / ranks;
    std::unordered_set<index_t> remote;
    std::unordered_set<int> partners;
    for (index_t i = lo; i < hi; ++i) {
      for (const index_t j : a.row(i)) {
        if (j < lo || j >= hi) {
          if (remote.insert(j).second) partners.insert(block_of(j));
        }
      }
    }
    stats.total_remote_entries += remote.size();
    stats.max_remote_entries =
        std::max<u64>(stats.max_remote_entries, remote.size());
    stats.max_neighbors =
        std::max<int>(stats.max_neighbors, static_cast<int>(partners.size()));
    total_neighbors += partners.size();
  }
  stats.mean_neighbors = static_cast<double>(total_neighbors) / ranks;
  return stats;
}

}  // namespace drcm::solver
