// Wall-clock timing helper used by the runtime's phase attribution and by
// the benchmark harness.
#pragma once

#include <chrono>

namespace drcm {

/// Monotonic wall-clock stopwatch; `seconds()` returns time since
/// construction or the last `reset()`.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace drcm
