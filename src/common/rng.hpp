// Deterministic, seedable pseudo-random generation.
//
// All synthetic workloads must be reproducible across runs and platforms,
// so the library uses its own SplitMix64 / xoshiro256** implementation
// instead of std::mt19937 + distribution objects (whose outputs are not
// specified portably for all distributions).
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace drcm {

/// SplitMix64: used to seed and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256**: fast, high-quality 64-bit PRNG with reproducible streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xd1f5c0ffee5eedULL) {
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x = splitmix64(x);
      w = x;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's unbiased multiply-shift.
  std::uint64_t next_below(std::uint64_t bound) {
    DRCM_CHECK(bound > 0, "next_below requires positive bound");
    // Rejection loop has expected < 2 iterations for any bound.
    while (true) {
      const std::uint64_t x = next_u64();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffle of [first, last).
  template <class It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = next_below(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace drcm
