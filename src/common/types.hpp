// Fundamental index and size types used across the library.
//
// Global vertex/row/column indices are 64-bit so matrices beyond 2^31
// nonzeros (the paper evaluates up to 760M) are representable. `kNoVertex`
// is the sentinel used wherever the paper writes "-1" (unvisited / unset).
#pragma once

#include <cstdint>

namespace drcm {

using index_t = std::int64_t;  ///< global vertex / row / column index
using nnz_t = std::int64_t;    ///< nonzero counter / CSR offset
using u64 = std::uint64_t;

/// Sentinel for "no vertex / unvisited / unlabeled" (paper's -1).
inline constexpr index_t kNoVertex = -1;

}  // namespace drcm
