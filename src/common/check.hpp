// Precondition / invariant checking.
//
// DRCM_CHECK is used at public API boundaries and for invariants that must
// hold even in release builds; it throws drcm::CheckError so callers (and
// tests) can observe violations. DRCM_DCHECK compiles away in NDEBUG builds
// and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace drcm {

/// Thrown when a DRCM_CHECK precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DRCM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace drcm

#define DRCM_CHECK(cond, ...)                                            \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::drcm::detail::check_failed(#cond, __FILE__, __LINE__,            \
                                   ::std::string{__VA_ARGS__});          \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define DRCM_DCHECK(cond, ...) \
  do {                         \
  } while (false)
#else
#define DRCM_DCHECK(cond, ...) DRCM_CHECK(cond, ##__VA_ARGS__)
#endif
