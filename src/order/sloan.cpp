#include "order/sloan.hpp"

#include <queue>

#include "order/pseudo_peripheral.hpp"
#include "order/rcm_serial.hpp"
#include "sparse/graph_algo.hpp"

namespace drcm::order {

namespace {

using sparse::CsrMatrix;

enum class State : unsigned char { kInactive, kPreactive, kActive, kPostactive };

/// Max-heap entry; stale priorities are skipped on pop (lazy deletion).
struct HeapEntry {
  index_t priority;
  index_t vertex;
  bool operator<(const HeapEntry& o) const {
    if (priority != o.priority) return priority < o.priority;
    return vertex > o.vertex;  // ties: smaller id wins in a max-heap
  }
};

index_t sloan_component(const CsrMatrix& a, index_t start, index_t next_label,
                        const SloanOptions& opt,
                        std::vector<index_t>& labels) {
  // Pseudo-diameter pair: s = peripheral vertex, e = far end of its BFS.
  const auto ps = pseudo_peripheral_vertex(a, start);
  const index_t s = ps.vertex;
  const auto bfs_from_s = sparse::bfs(a, s);
  index_t e = kNoVertex;
  for (index_t v = 0; v < a.n(); ++v) {
    if (bfs_from_s.level[static_cast<std::size_t>(v)] != ps.eccentricity)
      continue;
    if (e == kNoVertex || a.degree(v) < a.degree(e)) e = v;
  }
  const auto dist_to_e = sparse::bfs(a, e == kNoVertex ? s : e);

  std::vector<index_t> priority(static_cast<std::size_t>(a.n()), 0);
  std::vector<State> state(static_cast<std::size_t>(a.n()), State::kInactive);
  std::priority_queue<HeapEntry> heap;

  // Initial priority: P(v) = -W1*(deg(v)+1) + W2*dist(v,e); only vertices of
  // this component (reached from s) participate.
  for (index_t v = 0; v < a.n(); ++v) {
    if (bfs_from_s.level[static_cast<std::size_t>(v)] == kNoVertex) continue;
    priority[static_cast<std::size_t>(v)] =
        -opt.w1 * (a.degree(v) + 1) +
        opt.w2 * dist_to_e.level[static_cast<std::size_t>(v)];
  }
  state[static_cast<std::size_t>(s)] = State::kPreactive;
  heap.push({priority[static_cast<std::size_t>(s)], s});

  const auto bump = [&](index_t v, index_t delta) {
    priority[static_cast<std::size_t>(v)] += delta;
    heap.push({priority[static_cast<std::size_t>(v)], v});
  };

  while (!heap.empty()) {
    const auto [prio, v] = heap.top();
    heap.pop();
    if (prio != priority[static_cast<std::size_t>(v)]) continue;  // stale
    const State sv = state[static_cast<std::size_t>(v)];
    if (sv == State::kPostactive) continue;

    if (sv == State::kPreactive) {
      // Numbering a preactive vertex activates its inactive/preactive
      // neighborhood: each neighbor's future wavefront increment drops.
      for (const index_t w : a.row(v)) {
        auto& sw = state[static_cast<std::size_t>(w)];
        if (sw == State::kInactive) {
          sw = State::kPreactive;
          bump(w, opt.w1);
        } else if (sw == State::kPreactive || sw == State::kActive) {
          bump(w, opt.w1);
        }
      }
    }
    state[static_cast<std::size_t>(v)] = State::kPostactive;
    labels[static_cast<std::size_t>(v)] = next_label++;

    for (const index_t w : a.row(v)) {
      auto& sw = state[static_cast<std::size_t>(w)];
      if (sw == State::kPreactive) {
        sw = State::kActive;
        bump(w, opt.w1);
        // Activating w preactivates ITS inactive neighbors.
        for (const index_t x : a.row(w)) {
          auto& sx = state[static_cast<std::size_t>(x)];
          if (sx == State::kInactive) {
            sx = State::kPreactive;
            bump(x, opt.w1);
          } else if (sx != State::kPostactive) {
            bump(x, opt.w1);
          }
        }
      }
    }
  }
  return next_label;
}

}  // namespace

std::vector<index_t> sloan(const CsrMatrix& a, SloanOptions opt) {
  DRCM_CHECK(opt.w1 >= 0 && opt.w2 >= 0, "Sloan weights must be non-negative");
  std::vector<index_t> labels(static_cast<std::size_t>(a.n()), kNoVertex);
  index_t next_label = 0;
  while (next_label < a.n()) {
    index_t seed = kNoVertex;
    for (index_t v = 0; v < a.n(); ++v) {
      if (labels[static_cast<std::size_t>(v)] != kNoVertex) continue;
      if (seed == kNoVertex || a.degree(v) < a.degree(seed)) seed = v;
    }
    next_label = sloan_component(a, seed, next_label, opt, labels);
  }
  return labels;
}

std::vector<index_t> sloan_levels(const CsrMatrix& a, SloanOptions opt,
                                  PeripheralMode mode) {
  DRCM_CHECK(opt.w1 >= 0 && opt.w2 >= 0, "Sloan weights must be non-negative");
  std::vector<index_t> labels(static_cast<std::size_t>(a.n()), kNoVertex);
  std::vector<index_t> keys(static_cast<std::size_t>(a.n()), 0);
  index_t next_label = 0;
  while (next_label < a.n()) {
    const index_t seed = next_component_seed(a, labels);
    DRCM_CHECK(seed != kNoVertex, "labels/next_label inconsistency");
    // The same pseudo-diameter pair classic Sloan computes: s = peripheral
    // vertex, e = min-degree (ties id) vertex of s's last BFS level.
    const auto ps = pseudo_peripheral_vertex(a, seed, mode);
    const index_t s = ps.vertex;
    const auto bfs_from_s = sparse::bfs(a, s);
    index_t e = kNoVertex;
    for (index_t v = 0; v < a.n(); ++v) {
      if (bfs_from_s.level[static_cast<std::size_t>(v)] != ps.eccentricity)
        continue;
      if (e == kNoVertex || a.degree(v) < a.degree(e)) e = v;
    }
    DRCM_CHECK(e != kNoVertex, "BFS last level cannot be empty");
    const auto dist_to_e = sparse::bfs(a, e);
    const index_t ecc_e = dist_to_e.eccentricity();

    // Static key = the negated initial Sloan priority, shifted by
    // w2 * ecc(e) so it is non-negative (dist <= ecc(e) within the
    // component). Bounded by w1 * n + w2 * (n - 1) < 3n with the default
    // weights — the bound the distributed SORTPERM's receive-path range
    // checks admit for ranking keys.
    for (index_t v = 0; v < a.n(); ++v) {
      const index_t lev = dist_to_e.level[static_cast<std::size_t>(v)];
      if (lev == kNoVertex) continue;  // other component
      keys[static_cast<std::size_t>(v)] =
          opt.w1 * (a.degree(v) + 1) + opt.w2 * (ecc_e - lev);
    }
    next_label = cm_component_keyed(a, s, next_label, keys, labels);
  }
  return labels;  // Sloan numbers front-to-back: no reversal
}

}  // namespace drcm::order
