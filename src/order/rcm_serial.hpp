// Sequential Cuthill-McKee / Reverse Cuthill-McKee orderings.
//
// `cm_serial` is the exact sequential execution of the paper's Algorithm 3:
// level-synchronous expansion where each next-level vertex attaches to its
// minimum-label parent (the (select2nd, min) semiring) and the level is then
// labeled in lexicographic (parent label, degree, vertex id) order — the
// SORTPERM key. `rcm_serial` reverses it. This is the reference the
// distributed implementation must reproduce bit-for-bit.
//
// `cm_classic` is the independent textbook formulation (Algorithm 1: a
// vertex queue whose unnumbered neighbors are appended in degree order).
// With the same tie-breaking the two formulations provably coincide; the
// test suite checks that property on every workload class.
//
// Component handling: components are seeded in order of (min degree, min
// vertex id) among unvisited vertices; each seed is refined to a
// pseudo-peripheral vertex first. The final reversal flips the whole
// labeling, as in the paper ("return R in reverse order").
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "order/pseudo_peripheral.hpp"
#include "sparse/csr.hpp"

namespace drcm::order {

/// Per-run statistics (exposed for the experiment harness).
struct OrderingStats {
  int components = 0;
  int peripheral_bfs_sweeps = 0;  ///< total peripheral sweeps over all comps
  /// Total BFS levels labeled over all components (each component
  /// contributes root eccentricity + 1) — in the distributed setting every
  /// level is one fused 5-crossing collective, so this is the latency
  /// figure the bi-criteria start finder tries to shrink.
  index_t ordering_levels = 0;
};

/// Cuthill-McKee labels (labels[v] = new index), level-synchronous
/// formulation. If `stats` is non-null it receives run statistics.
/// `mode` selects the pseudo-peripheral iteration seeding each component.
std::vector<index_t> cm_serial(const sparse::CsrMatrix& a,
                               OrderingStats* stats = nullptr,
                               PeripheralMode mode = PeripheralMode::kGeorgeLiu);

/// Reverse Cuthill-McKee: cm_serial with labels reversed.
std::vector<index_t> rcm_serial(const sparse::CsrMatrix& a,
                                OrderingStats* stats = nullptr,
                                PeripheralMode mode = PeripheralMode::kGeorgeLiu);

/// Labels one component in CM level order under an ARBITRARY ranking key:
/// starting from `root` (which must be unlabeled), each discovered level is
/// labeled in lexicographic (min labeled-neighbor label, keys[v], v) order
/// with consecutive labels from `next_label`; returns the first unused
/// label. With keys[v] = degree(v) this is exactly the CM expansion;
/// order::sloan_levels passes the static Sloan priority instead. This is
/// the serial reference of the distributed level kernel, which ranks by the
/// same triple through SORTPERM.
index_t cm_component_keyed(const sparse::CsrMatrix& a, index_t root,
                           index_t next_label, std::span<const index_t> keys,
                           std::vector<index_t>& labels);

/// Next unvisited component seed: minimum degree, ties to smallest id
/// (kNoVertex when every vertex is labeled). The shared component-seeding
/// rule of every portfolio ordering — exported so the level-synchronous
/// Sloan and the distributed drivers agree on component discovery order.
index_t next_component_seed(const sparse::CsrMatrix& a,
                            const std::vector<index_t>& labels);

/// Textbook queue-based Cuthill-McKee (paper Algorithm 1) with the same
/// tie-breaking; used to cross-validate cm_serial.
std::vector<index_t> cm_classic(const sparse::CsrMatrix& a);

/// "Not sorting at all" ablation (paper Sec. VI future work): next-level
/// vertices are labeled by (parent label, vertex id), skipping the degree
/// key. Cheaper, usually worse bandwidth.
std::vector<index_t> rcm_nosort(const sparse::CsrMatrix& a);

/// "Global sorting at the end" ablation (the other Sec.-VI alternative):
/// one BFS assigns levels and min-ID parents, then a single global sort by
/// (level, parent id, degree, id) replaces the per-level SORTPERMs. In the
/// distributed setting this trades the per-level AlltoAll latency (the
/// Figure-4 bottleneck) for ordering quality, since parent IDs no longer
/// reflect the evolving CM order.
std::vector<index_t> rcm_endsort(const sparse::CsrMatrix& a);

/// Reverses a labeling in place: label' = n-1-label.
void reverse_labels(std::vector<index_t>& labels);

}  // namespace drcm::order
