// Sequential Cuthill-McKee / Reverse Cuthill-McKee orderings.
//
// `cm_serial` is the exact sequential execution of the paper's Algorithm 3:
// level-synchronous expansion where each next-level vertex attaches to its
// minimum-label parent (the (select2nd, min) semiring) and the level is then
// labeled in lexicographic (parent label, degree, vertex id) order — the
// SORTPERM key. `rcm_serial` reverses it. This is the reference the
// distributed implementation must reproduce bit-for-bit.
//
// `cm_classic` is the independent textbook formulation (Algorithm 1: a
// vertex queue whose unnumbered neighbors are appended in degree order).
// With the same tie-breaking the two formulations provably coincide; the
// test suite checks that property on every workload class.
//
// Component handling: components are seeded in order of (min degree, min
// vertex id) among unvisited vertices; each seed is refined to a
// pseudo-peripheral vertex first. The final reversal flips the whole
// labeling, as in the paper ("return R in reverse order").
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::order {

/// Per-run statistics (exposed for the experiment harness).
struct OrderingStats {
  int components = 0;
  int peripheral_bfs_sweeps = 0;  ///< total George-Liu sweeps over all comps
};

/// Cuthill-McKee labels (labels[v] = new index), level-synchronous
/// formulation. If `stats` is non-null it receives run statistics.
std::vector<index_t> cm_serial(const sparse::CsrMatrix& a,
                               OrderingStats* stats = nullptr);

/// Reverse Cuthill-McKee: cm_serial with labels reversed.
std::vector<index_t> rcm_serial(const sparse::CsrMatrix& a,
                                OrderingStats* stats = nullptr);

/// Textbook queue-based Cuthill-McKee (paper Algorithm 1) with the same
/// tie-breaking; used to cross-validate cm_serial.
std::vector<index_t> cm_classic(const sparse::CsrMatrix& a);

/// "Not sorting at all" ablation (paper Sec. VI future work): next-level
/// vertices are labeled by (parent label, vertex id), skipping the degree
/// key. Cheaper, usually worse bandwidth.
std::vector<index_t> rcm_nosort(const sparse::CsrMatrix& a);

/// "Global sorting at the end" ablation (the other Sec.-VI alternative):
/// one BFS assigns levels and min-ID parents, then a single global sort by
/// (level, parent id, degree, id) replaces the per-level SORTPERMs. In the
/// distributed setting this trades the per-level AlltoAll latency (the
/// Figure-4 bottleneck) for ordering quality, since parent IDs no longer
/// reflect the evolving CM order.
std::vector<index_t> rcm_endsort(const sparse::CsrMatrix& a);

/// Reverses a labeling in place: label' = n-1-label.
void reverse_labels(std::vector<index_t>& labels);

}  // namespace drcm::order
