#include "order/gps.hpp"

#include <algorithm>

#include "order/pseudo_peripheral.hpp"
#include "order/rcm_serial.hpp"
#include "sparse/graph_algo.hpp"

namespace drcm::order {

namespace {

using sparse::CsrMatrix;

/// Phase II+III for the component containing `seed`. Labels it with
/// consecutive labels from `next_label`; returns the first unused label.
index_t gps_component(const CsrMatrix& a, index_t seed, index_t next_label,
                      std::vector<index_t>& labels) {
  // --- Phase I: pseudo-diameter pair.
  const auto ps = pseudo_peripheral_vertex(a, seed);
  const index_t s = ps.vertex;
  const auto from_s = sparse::bfs(a, s);
  const index_t k = from_s.eccentricity();
  index_t e = kNoVertex;
  for (index_t v = 0; v < a.n(); ++v) {
    if (from_s.level[static_cast<std::size_t>(v)] != k) continue;
    if (e == kNoVertex || a.degree(v) < a.degree(e)) e = v;
  }
  if (e == kNoVertex) e = s;  // isolated vertex
  const auto from_e = sparse::bfs(a, e);

  // --- Phase II: combined level structure.
  // Fixed vertices: forward level == reversed backward level.
  std::vector<index_t> level(static_cast<std::size_t>(a.n()), kNoVertex);
  std::vector<index_t> members;  // component vertices
  std::vector<index_t> free_vertices;
  for (index_t v = 0; v < a.n(); ++v) {
    const index_t ls = from_s.level[static_cast<std::size_t>(v)];
    if (ls == kNoVertex) continue;  // other component
    members.push_back(v);
    const index_t le = k - from_e.level[static_cast<std::size_t>(v)];
    if (ls == le) {
      level[static_cast<std::size_t>(v)] = ls;
    } else {
      free_vertices.push_back(v);
    }
  }

  // Current level widths from the fixed vertices.
  std::vector<index_t> width(static_cast<std::size_t>(k) + 1, 0);
  for (const index_t v : members) {
    if (level[static_cast<std::size_t>(v)] != kNoVertex) {
      ++width[static_cast<std::size_t>(level[static_cast<std::size_t>(v)])];
    }
  }

  // Connected components of the free subgraph, largest first.
  std::vector<index_t> comp(static_cast<std::size_t>(a.n()), kNoVertex);
  std::vector<std::vector<index_t>> groups;
  for (const index_t start : free_vertices) {
    if (comp[static_cast<std::size_t>(start)] != kNoVertex) continue;
    std::vector<index_t> group{start};
    comp[static_cast<std::size_t>(start)] = static_cast<index_t>(groups.size());
    for (std::size_t head = 0; head < group.size(); ++head) {
      for (const index_t w : a.row(group[head])) {
        if (level[static_cast<std::size_t>(w)] == kNoVertex &&
            comp[static_cast<std::size_t>(w)] == kNoVertex &&
            from_s.level[static_cast<std::size_t>(w)] != kNoVertex) {
          comp[static_cast<std::size_t>(w)] = static_cast<index_t>(groups.size());
          group.push_back(w);
        }
      }
    }
    groups.push_back(std::move(group));
  }
  std::sort(groups.begin(), groups.end(),
            [](const auto& x, const auto& y) { return x.size() > y.size(); });

  // Place each free component by whichever structure grows widths less.
  for (const auto& group : groups) {
    index_t max_if_s = 0, max_if_e = 0;
    for (const index_t v : group) {
      const index_t ls = from_s.level[static_cast<std::size_t>(v)];
      const index_t le = k - from_e.level[static_cast<std::size_t>(v)];
      max_if_s = std::max(max_if_s, width[static_cast<std::size_t>(ls)] + 1);
      max_if_e = std::max(max_if_e, width[static_cast<std::size_t>(le)] + 1);
    }
    const bool use_s = max_if_s <= max_if_e;
    for (const index_t v : group) {
      const index_t lv = use_s ? from_s.level[static_cast<std::size_t>(v)]
                               : k - from_e.level[static_cast<std::size_t>(v)];
      level[static_cast<std::size_t>(v)] = lv;
      ++width[static_cast<std::size_t>(lv)];
    }
  }

  // --- Phase III: CM-style numbering over the combined levels.
  std::vector<std::vector<index_t>> by_level(static_cast<std::size_t>(k) + 1);
  for (const index_t v : members) {
    by_level[static_cast<std::size_t>(level[static_cast<std::size_t>(v)])].push_back(v);
  }
  struct Key {
    index_t parent_label;
    index_t degree;
    index_t vertex;
  };
  std::vector<Key> keys;
  for (auto& lvl : by_level) {
    keys.clear();
    for (const index_t v : lvl) {
      index_t parent = kNoVertex;
      for (const index_t u : a.row(v)) {
        const index_t lu = labels[static_cast<std::size_t>(u)];
        if (lu >= 0 && (parent == kNoVertex || lu < parent)) parent = lu;
      }
      // Unreached-by-labels vertices (level 0, or levels the combined
      // structure made non-contiguous) sort after parented ones.
      keys.push_back(Key{parent == kNoVertex ? a.n() : parent, a.degree(v), v});
    }
    std::sort(keys.begin(), keys.end(), [](const Key& x, const Key& y) {
      if (x.parent_label != y.parent_label) return x.parent_label < y.parent_label;
      if (x.degree != y.degree) return x.degree < y.degree;
      return x.vertex < y.vertex;
    });
    for (const Key& kk : keys) {
      labels[static_cast<std::size_t>(kk.vertex)] = next_label++;
    }
  }
  return next_label;
}

}  // namespace

std::vector<index_t> gps(const CsrMatrix& a) {
  std::vector<index_t> labels(static_cast<std::size_t>(a.n()), kNoVertex);
  index_t next_label = 0;
  while (next_label < a.n()) {
    index_t seed = kNoVertex;
    for (index_t v = 0; v < a.n(); ++v) {
      if (labels[static_cast<std::size_t>(v)] != kNoVertex) continue;
      if (seed == kNoVertex || a.degree(v) < a.degree(seed)) seed = v;
    }
    next_label = gps_component(a, seed, next_label, labels);
  }
  reverse_labels(labels);
  return labels;
}

}  // namespace drcm::order
