#include "order/rcm_shared.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>

#include "order/pseudo_peripheral.hpp"
#include "order/rcm_serial.hpp"

namespace drcm::order {

namespace {

using sparse::CsrMatrix;

struct Key {
  index_t parent_label;
  index_t degree;
  index_t vertex;

  bool operator<(const Key& o) const {
    if (parent_label != o.parent_label) return parent_label < o.parent_label;
    if (degree != o.degree) return degree < o.degree;
    return vertex < o.vertex;
  }
};

/// Parallel CM labeling of one component rooted at `root`.
index_t cm_component_parallel(const CsrMatrix& a, index_t root,
                              index_t next_label,
                              std::vector<std::atomic<index_t>>& labels) {
  labels[static_cast<std::size_t>(root)].store(next_label++,
                                               std::memory_order_relaxed);
  std::vector<index_t> current{root};
  std::vector<index_t> next;
  std::vector<Key> keys;

  while (!current.empty()) {
    next.clear();
    // Parallel discovery: first thread to CAS an unvisited neighbor from
    // kNoVertex to the kDiscovered sentinel claims it for this level.
    constexpr index_t kDiscovered = -2;
#pragma omp parallel
    {
      std::vector<index_t> local;
#pragma omp for schedule(dynamic, 64) nowait
      for (std::size_t i = 0; i < current.size(); ++i) {
        for (const index_t v : a.row(current[i])) {
          index_t expected = kNoVertex;
          if (labels[static_cast<std::size_t>(v)].compare_exchange_strong(
                  expected, kDiscovered, std::memory_order_relaxed)) {
            local.push_back(v);
          }
        }
      }
#pragma omp critical(drcm_rcm_shared_merge)
      next.insert(next.end(), local.begin(), local.end());
    }

    // Parent derivation + sort key, in parallel. The minimum-label visited
    // neighbor is a pure function of the level sets, so the nondeterministic
    // discovery order above cannot leak into the result.
    keys.resize(next.size());
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < next.size(); ++i) {
      const index_t v = next[i];
      index_t parent_label = kNoVertex;
      for (const index_t u : a.row(v)) {
        const index_t lu =
            labels[static_cast<std::size_t>(u)].load(std::memory_order_relaxed);
        if (lu >= 0 && (parent_label == kNoVertex || lu < parent_label)) {
          parent_label = lu;
        }
      }
      keys[i] = Key{parent_label, a.degree(v), v};
    }
    std::sort(keys.begin(), keys.end());

    current.resize(keys.size());
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < keys.size(); ++i) {
      labels[static_cast<std::size_t>(keys[i].vertex)].store(
          next_label + static_cast<index_t>(i), std::memory_order_relaxed);
      current[i] = keys[i].vertex;
    }
    next_label += static_cast<index_t>(keys.size());
  }
  return next_label;
}

}  // namespace

std::vector<index_t> rcm_shared(const CsrMatrix& a, int num_threads) {
  const int saved = omp_get_max_threads();
  if (num_threads > 0) omp_set_num_threads(num_threads);

  std::vector<std::atomic<index_t>> labels(static_cast<std::size_t>(a.n()));
  for (auto& l : labels) l.store(kNoVertex, std::memory_order_relaxed);

  index_t next_label = 0;
  while (next_label < a.n()) {
    // Component seed: min degree, ties to smallest id (same as serial).
    index_t seed = kNoVertex;
    for (index_t v = 0; v < a.n(); ++v) {
      if (labels[static_cast<std::size_t>(v)].load(std::memory_order_relaxed) !=
          kNoVertex) {
        continue;
      }
      if (seed == kNoVertex || a.degree(v) < a.degree(seed)) seed = v;
    }
    const auto peripheral = pseudo_peripheral_vertex(a, seed);
    next_label = cm_component_parallel(a, peripheral.vertex, next_label, labels);
  }

  if (num_threads > 0) omp_set_num_threads(saved);

  std::vector<index_t> out(static_cast<std::size_t>(a.n()));
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = labels[v].load(std::memory_order_relaxed);
  }
  reverse_labels(out);
  return out;
}

}  // namespace drcm::order
