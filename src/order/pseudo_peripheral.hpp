// George-Liu pseudo-peripheral vertex finder (paper Algorithm 2).
//
// RCM quality depends strongly on the start vertex; the standard heuristic
// starts from a vertex of near-maximal eccentricity. The iteration below is
// the reference the distributed finder (rcm/dist_peripheral.hpp, paper
// Algorithm 4) must match bit-for-bit, so every tie is broken identically:
// the candidate in the last BFS level is the minimum-degree vertex, ties to
// the smallest vertex id.
#pragma once

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::order {

struct PeripheralResult {
  index_t vertex = kNoVertex;   ///< the pseudo-peripheral vertex
  index_t eccentricity = 0;     ///< its BFS depth (pseudo-diameter estimate)
  int bfs_sweeps = 0;           ///< number of full BFS traversals performed
};

/// Runs George-Liu iteration from `start` within its connected component.
PeripheralResult pseudo_peripheral_vertex(const sparse::CsrMatrix& a,
                                          index_t start);

}  // namespace drcm::order
