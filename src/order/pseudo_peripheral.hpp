// Pseudo-peripheral vertex finders (paper Algorithm 2 and the RCM++
// bi-criteria refinement).
//
// RCM quality depends strongly on the start vertex; the standard heuristic
// starts from a vertex of near-maximal eccentricity. The iterations below
// are the references the distributed finder (rcm/dist_peripheral.hpp, paper
// Algorithm 4) must match bit-for-bit, so every tie is broken identically:
// the candidate in the last BFS level is the minimum-degree vertex, ties to
// the smallest vertex id.
//
// kGeorgeLiu is the classic iteration: keep sweeping while the eccentricity
// grows. kBiCriteria (RCM++, arXiv 2409.04171) scores each sweep by BOTH
// eccentricity and the width of the last BFS level: a candidate is accepted
// when it grows the eccentricity or keeps it while shrinking the last
// level, and the iteration continues only while a sweep improves both.
// Because the bi-criteria continuation condition implies George-Liu's, it
// never performs more BFS sweeps — strictly fewer whenever a George-Liu
// sweep grows the eccentricity without shrinking the last level.
#pragma once

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::order {

/// Which pseudo-peripheral iteration seeds each component's ordering.
enum class PeripheralMode {
  kGeorgeLiu,   ///< paper Algorithm 2: continue while eccentricity grows
  kBiCriteria,  ///< RCM++: continue while eccentricity grows AND the last
                ///< BFS level shrinks; accept ties that shrink the level
};

struct PeripheralResult {
  index_t vertex = kNoVertex;   ///< the pseudo-peripheral vertex
  index_t eccentricity = 0;     ///< its BFS depth (pseudo-diameter estimate)
  int bfs_sweeps = 0;           ///< number of full BFS traversals performed
  index_t last_width = 0;       ///< size of the last BFS level from `vertex`
};

/// Runs the selected iteration from `start` within its connected component.
PeripheralResult pseudo_peripheral_vertex(
    const sparse::CsrMatrix& a, index_t start,
    PeripheralMode mode = PeripheralMode::kGeorgeLiu);

}  // namespace drcm::order
