// Shared-memory parallel RCM (the paper's Table II baseline).
//
// OpenMP leveled-BFS formulation in the style of SpMP / Karantasis et al.
// [8], [23]: each BFS level is expanded in parallel with per-thread local
// buffers and atomic claims on the visited array, parents are re-derived as
// the minimum-label neighbor (so the result is schedule-independent), and
// the level is then sorted by the (parent label, degree, id) key and
// labeled by prefix offsets.
//
// Determinism: output is bit-identical to order::rcm_serial for any thread
// count — the test suite asserts this on every workload class.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::order {

/// RCM labels computed with `num_threads` OpenMP threads (0 = runtime
/// default).
std::vector<index_t> rcm_shared(const sparse::CsrMatrix& a,
                                int num_threads = 0);

}  // namespace drcm::order
