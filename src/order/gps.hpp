// Gibbs-Poole-Stockmeyer (GPS) ordering — the paper's reference [13], the
// other classic level-structure bandwidth heuristic and the origin of the
// pseudo-peripheral iteration RCM uses.
//
// Implemented per the original three phases, with the standard simplified
// numbering pass:
//   I.   find a pseudo-diameter pair (s, e) by George-Liu iteration;
//   II.  build the combined level structure: vertices whose forward level
//        (from s) and reversed backward level (from e) agree are fixed;
//        each remaining connected "free" component is placed wholly by the
//        s-levels or wholly by the e-levels, whichever keeps the level
//        widths smaller (components processed in decreasing size);
//   III. number level by level, within a level by (minimum labeled
//        neighbor's label, degree, id) — CM-style numbering on the
//        combined structure — and reverse the result.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::order {

/// GPS labels (labels[v] = new index). Components seeded like rcm_serial.
std::vector<index_t> gps(const sparse::CsrMatrix& a);

}  // namespace drcm::order
