#include "order/pseudo_peripheral.hpp"

#include "sparse/graph_algo.hpp"

namespace drcm::order {

namespace {

/// Minimum-degree vertex of the last BFS level, ties to the smallest id —
/// the shrink step shared by both iterations.
index_t shrink_last_level(const sparse::CsrMatrix& a,
                          const sparse::BfsResult& b, index_t ecc) {
  index_t candidate = kNoVertex;
  for (index_t v = 0; v < a.n(); ++v) {
    if (b.level[static_cast<std::size_t>(v)] != ecc) continue;
    if (candidate == kNoVertex || a.degree(v) < a.degree(candidate)) {
      candidate = v;
    }
  }
  DRCM_CHECK(candidate != kNoVertex, "BFS last level cannot be empty");
  return candidate;
}

}  // namespace

PeripheralResult pseudo_peripheral_vertex(const sparse::CsrMatrix& a,
                                          index_t start, PeripheralMode mode) {
  DRCM_CHECK(start >= 0 && start < a.n(), "start vertex out of range");
  PeripheralResult res;
  res.vertex = start;

  sparse::BfsResult b = sparse::bfs(a, res.vertex);
  ++res.bfs_sweeps;
  res.eccentricity = b.eccentricity();

  if (mode == PeripheralMode::kGeorgeLiu) {
    // Mirrors paper Algorithm 2 exactly: nlvl is initialized one below the
    // first eccentricity so the loop body runs at least once, and the root
    // is updated to the candidate BEFORE the convergence test.
    index_t nlvl = res.eccentricity - 1;
    while (res.eccentricity > nlvl) {
      nlvl = res.eccentricity;
      const index_t candidate = shrink_last_level(a, b, res.eccentricity);
      if (candidate == res.vertex) break;  // isolated vertex or fixpoint
      b = sparse::bfs(a, candidate);
      ++res.bfs_sweeps;
      res.vertex = candidate;
      res.eccentricity = b.eccentricity();
    }
    res.last_width = b.level_sizes.back();
    return res;
  }

  // RCM++ bi-criteria: a sweep's candidate is ACCEPTED when it grows the
  // eccentricity, or keeps it while shrinking the last level; the iteration
  // CONTINUES only while a sweep improved both. The continuation condition
  // implies George-Liu's (eccentricity grew), so sweeps(bi) <= sweeps(GL).
  index_t width = b.level_sizes.back();
  while (true) {
    const index_t candidate = shrink_last_level(a, b, res.eccentricity);
    if (candidate == res.vertex) break;  // isolated vertex or fixpoint
    sparse::BfsResult b2 = sparse::bfs(a, candidate);
    ++res.bfs_sweeps;
    const index_t ecc2 = b2.eccentricity();
    const index_t width2 = b2.level_sizes.back();
    const bool better = ecc2 > res.eccentricity ||
                        (ecc2 == res.eccentricity && width2 < width);
    const bool advance = ecc2 > res.eccentricity && width2 < width;
    if (better) {
      res.vertex = candidate;
      res.eccentricity = ecc2;
      width = width2;
      b = std::move(b2);
    }
    if (!advance) break;
  }
  res.last_width = width;
  return res;
}

}  // namespace drcm::order
