#include "order/pseudo_peripheral.hpp"

#include "sparse/graph_algo.hpp"

namespace drcm::order {

PeripheralResult pseudo_peripheral_vertex(const sparse::CsrMatrix& a,
                                          index_t start) {
  DRCM_CHECK(start >= 0 && start < a.n(), "start vertex out of range");
  PeripheralResult res;
  res.vertex = start;

  // Mirrors paper Algorithm 2 exactly: nlvl is initialized one below the
  // first eccentricity so the loop body runs at least once, and the root is
  // updated to the candidate BEFORE the convergence test.
  sparse::BfsResult b = sparse::bfs(a, res.vertex);
  ++res.bfs_sweeps;
  res.eccentricity = b.eccentricity();
  index_t nlvl = res.eccentricity - 1;

  while (res.eccentricity > nlvl) {
    nlvl = res.eccentricity;
    // Shrink last level: minimum-degree vertex, ties to smallest id.
    index_t candidate = kNoVertex;
    for (index_t v = 0; v < a.n(); ++v) {
      if (b.level[static_cast<std::size_t>(v)] != res.eccentricity) continue;
      if (candidate == kNoVertex || a.degree(v) < a.degree(candidate)) {
        candidate = v;
      }
    }
    DRCM_CHECK(candidate != kNoVertex, "BFS last level cannot be empty");
    if (candidate == res.vertex) break;  // isolated vertex or fixpoint
    b = sparse::bfs(a, candidate);
    ++res.bfs_sweeps;
    res.vertex = candidate;
    res.eccentricity = b.eccentricity();
  }
  return res;
}

}  // namespace drcm::order
