#include "order/rcm_serial.hpp"

#include <algorithm>

#include "order/pseudo_peripheral.hpp"

namespace drcm::order {

index_t next_component_seed(const sparse::CsrMatrix& a,
                            const std::vector<index_t>& labels) {
  index_t best = kNoVertex;
  for (index_t v = 0; v < a.n(); ++v) {
    if (labels[static_cast<std::size_t>(v)] != kNoVertex) continue;
    if (best == kNoVertex || a.degree(v) < a.degree(best)) best = v;
  }
  return best;
}

namespace {

using sparse::CsrMatrix;

/// Labels one component starting from `root` with consecutive labels from
/// `next_label`, level order ranked by (parent label, key_of(v), v).
/// Returns the first unused label.
template <class KeyOf>
index_t cm_component_ranked(const CsrMatrix& a, index_t root,
                            index_t next_label, std::vector<index_t>& labels,
                            const KeyOf& key_of) {
  labels[static_cast<std::size_t>(root)] = next_label++;
  std::vector<index_t> current{root};
  std::vector<index_t> next;

  struct Key {
    index_t parent_label;
    index_t degree;
    index_t vertex;
  };
  std::vector<Key> keys;

  while (!current.empty()) {
    next.clear();
    keys.clear();
    // Discover unvisited neighbors; each attaches to its minimum-label
    // parent exactly as the (select2nd, min) semiring does. Because every
    // parent in `current` is already labeled and we take the min over all
    // labeled neighbors in the frontier, thread/iteration order cannot
    // matter.
    for (const index_t u : current) {
      for (const index_t v : a.row(u)) {
        if (labels[static_cast<std::size_t>(v)] == kNoVertex) {
          labels[static_cast<std::size_t>(v)] = -2;  // discovered this level
          next.push_back(v);
        }
      }
    }
    for (const index_t v : next) {
      index_t parent_label = kNoVertex;
      for (const index_t u : a.row(v)) {
        const index_t lu = labels[static_cast<std::size_t>(u)];
        if (lu >= 0 && (parent_label == kNoVertex || lu < parent_label)) {
          parent_label = lu;
        }
      }
      keys.push_back({parent_label, key_of(v), v});
    }
    std::sort(keys.begin(), keys.end(), [](const Key& x, const Key& y) {
      if (x.parent_label != y.parent_label) return x.parent_label < y.parent_label;
      if (x.degree != y.degree) return x.degree < y.degree;
      return x.vertex < y.vertex;
    });
    for (const Key& k : keys) {
      labels[static_cast<std::size_t>(k.vertex)] = next_label++;
    }
    current.assign(keys.size(), 0);
    for (std::size_t i = 0; i < keys.size(); ++i) current[i] = keys[i].vertex;
  }
  return next_label;
}

/// Labels one component in CM order (`sort_by_degree=false` is the no-sort
/// ablation). Returns the first unused label.
template <bool kSortByDegree>
index_t cm_component(const CsrMatrix& a, index_t root, index_t next_label,
                     std::vector<index_t>& labels) {
  return cm_component_ranked(a, root, next_label, labels, [&](index_t v) {
    return kSortByDegree ? a.degree(v) : 0;
  });
}

template <bool kSortByDegree>
std::vector<index_t> cm_all_components(const CsrMatrix& a,
                                       OrderingStats* stats,
                                       PeripheralMode mode) {
  std::vector<index_t> labels(static_cast<std::size_t>(a.n()), kNoVertex);
  index_t next_label = 0;
  OrderingStats local;
  while (next_label < a.n()) {
    const index_t seed = next_component_seed(a, labels);
    DRCM_CHECK(seed != kNoVertex, "labels/next_label inconsistency");
    const auto peripheral = pseudo_peripheral_vertex(a, seed, mode);
    local.components += 1;
    local.peripheral_bfs_sweeps += peripheral.bfs_sweeps;
    local.ordering_levels += peripheral.eccentricity + 1;
    next_label =
        cm_component<kSortByDegree>(a, peripheral.vertex, next_label, labels);
  }
  if (stats) *stats = local;
  return labels;
}

}  // namespace

index_t cm_component_keyed(const sparse::CsrMatrix& a, index_t root,
                           index_t next_label, std::span<const index_t> keys,
                           std::vector<index_t>& labels) {
  DRCM_CHECK(keys.size() == static_cast<std::size_t>(a.n()),
             "ranking keys must cover every vertex");
  return cm_component_ranked(a, root, next_label, labels, [&](index_t v) {
    return keys[static_cast<std::size_t>(v)];
  });
}

std::vector<index_t> cm_serial(const CsrMatrix& a, OrderingStats* stats,
                               PeripheralMode mode) {
  return cm_all_components<true>(a, stats, mode);
}

std::vector<index_t> rcm_serial(const CsrMatrix& a, OrderingStats* stats,
                                PeripheralMode mode) {
  auto labels = cm_serial(a, stats, mode);
  reverse_labels(labels);
  return labels;
}

std::vector<index_t> cm_classic(const CsrMatrix& a) {
  std::vector<index_t> labels(static_cast<std::size_t>(a.n()), kNoVertex);
  std::vector<index_t> queue;  // vertices in label order
  queue.reserve(static_cast<std::size_t>(a.n()));
  index_t next_label = 0;
  std::vector<index_t> children;

  while (next_label < a.n()) {
    const index_t seed = next_component_seed(a, labels);
    const auto peripheral = pseudo_peripheral_vertex(a, seed);
    labels[static_cast<std::size_t>(peripheral.vertex)] = next_label++;
    queue.push_back(peripheral.vertex);
    // Algorithm 1: take vertices in label order; append their unnumbered
    // neighbors in increasing degree (ties: id) order.
    for (std::size_t head = queue.size() - 1; head < queue.size(); ++head) {
      const index_t u = queue[head];
      children.clear();
      for (const index_t v : a.row(u)) {
        if (labels[static_cast<std::size_t>(v)] == kNoVertex) {
          children.push_back(v);
        }
      }
      std::sort(children.begin(), children.end(), [&](index_t x, index_t y) {
        if (a.degree(x) != a.degree(y)) return a.degree(x) < a.degree(y);
        return x < y;
      });
      for (const index_t v : children) {
        labels[static_cast<std::size_t>(v)] = next_label++;
        queue.push_back(v);
      }
    }
  }
  return labels;
}

std::vector<index_t> rcm_nosort(const CsrMatrix& a) {
  auto labels = cm_all_components<false>(a, nullptr, PeripheralMode::kGeorgeLiu);
  reverse_labels(labels);
  return labels;
}

std::vector<index_t> rcm_endsort(const CsrMatrix& a) {
  std::vector<index_t> labels(static_cast<std::size_t>(a.n()), kNoVertex);
  std::vector<index_t> level(static_cast<std::size_t>(a.n()), kNoVertex);
  std::vector<index_t> parent(static_cast<std::size_t>(a.n()), kNoVertex);

  struct Key {
    index_t component;
    index_t level;
    index_t parent;
    index_t degree;
    index_t vertex;
  };
  std::vector<Key> keys;
  keys.reserve(static_cast<std::size_t>(a.n()));

  index_t placed = 0;
  index_t component = 0;
  while (placed < a.n()) {
    const index_t seed = next_component_seed(a, labels);
    const auto peripheral = pseudo_peripheral_vertex(a, seed);
    const index_t root = peripheral.vertex;
    // One BFS: levels plus minimum-ID parent in the previous level (labels
    // do not exist yet, so parent IDs stand in for parent labels).
    std::vector<index_t> current{root};
    level[static_cast<std::size_t>(root)] = 0;
    labels[static_cast<std::size_t>(root)] = -2;  // placed marker
    keys.push_back(Key{component, 0, kNoVertex, a.degree(root), root});
    ++placed;
    index_t depth = 0;
    while (!current.empty()) {
      std::vector<index_t> next;
      for (const index_t u : current) {
        for (const index_t v : a.row(u)) {
          if (level[static_cast<std::size_t>(v)] == kNoVertex) {
            level[static_cast<std::size_t>(v)] = depth + 1;
            next.push_back(v);
          }
        }
      }
      for (const index_t v : next) {
        index_t best = kNoVertex;
        for (const index_t u : a.row(v)) {
          if (level[static_cast<std::size_t>(u)] == depth &&
              (best == kNoVertex || u < best)) {
            best = u;
          }
        }
        parent[static_cast<std::size_t>(v)] = best;
        labels[static_cast<std::size_t>(v)] = -2;
        keys.push_back(Key{component, depth + 1, best, a.degree(v), v});
        ++placed;
      }
      current = std::move(next);
      ++depth;
    }
    ++component;
  }

  // The single global sort that replaces all per-level SORTPERMs.
  std::sort(keys.begin(), keys.end(), [](const Key& x, const Key& y) {
    if (x.component != y.component) return x.component < y.component;
    if (x.level != y.level) return x.level < y.level;
    if (x.parent != y.parent) return x.parent < y.parent;
    if (x.degree != y.degree) return x.degree < y.degree;
    return x.vertex < y.vertex;
  });
  for (std::size_t pos = 0; pos < keys.size(); ++pos) {
    labels[static_cast<std::size_t>(keys[pos].vertex)] = static_cast<index_t>(pos);
  }
  reverse_labels(labels);
  return labels;
}

void reverse_labels(std::vector<index_t>& labels) {
  const auto n = static_cast<index_t>(labels.size());
  for (auto& l : labels) {
    DRCM_CHECK(l >= 0 && l < n, "reverse_labels requires a complete labeling");
    l = n - 1 - l;
  }
}

}  // namespace drcm::order
