// Sloan's profile/wavefront reduction ordering.
//
// The paper cites Sloan's algorithm [6] as the other classic profile
// heuristic; it is included as a quality baseline for the ordering-quality
// experiments (it often yields smaller profile than RCM at higher cost).
//
// Standard formulation (Sloan 1986): vertices move through states
// inactive -> preactive -> active -> postactive; the next vertex maximizes
//   P(v) = -W1 * incr(v) + W2 * dist(v, e)
// where incr(v) is the wavefront growth of numbering v and dist(v, e) the
// BFS distance to the end vertex e of a pseudo-diameter pair (s, e).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace drcm::order {

struct SloanOptions {
  index_t w1 = 2;  ///< weight of the wavefront-increment term
  index_t w2 = 1;  ///< weight of the distance-to-end term
};

/// Sloan labels (labels[v] = new index). Handles disconnected graphs by
/// seeding components like rcm_serial (min degree, min id).
std::vector<index_t> sloan(const sparse::CsrMatrix& a, SloanOptions opt = {});

}  // namespace drcm::order
