// Sloan's profile/wavefront reduction ordering.
//
// The paper cites Sloan's algorithm [6] as the other classic profile
// heuristic; it is included as a quality baseline for the ordering-quality
// experiments (it often yields smaller profile than RCM at higher cost).
//
// Standard formulation (Sloan 1986): vertices move through states
// inactive -> preactive -> active -> postactive; the next vertex maximizes
//   P(v) = -W1 * incr(v) + W2 * dist(v, e)
// where incr(v) is the wavefront growth of numbering v and dist(v, e) the
// BFS distance to the end vertex e of a pseudo-diameter pair (s, e).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "order/pseudo_peripheral.hpp"
#include "sparse/csr.hpp"

namespace drcm::order {

struct SloanOptions {
  index_t w1 = 2;  ///< weight of the wavefront-increment term
  index_t w2 = 1;  ///< weight of the distance-to-end term
};

/// Sloan labels (labels[v] = new index). Handles disconnected graphs by
/// seeding components like rcm_serial (min degree, min id).
std::vector<index_t> sloan(const sparse::CsrMatrix& a, SloanOptions opt = {});

/// LEVEL-SYNCHRONOUS Sloan — the portfolio's distributable variant, and the
/// bit-identity reference of rcm::dist_order's kSloan arm.
///
/// The classic formulation above is an inherently sequential priority-queue
/// scan (every pop changes its neighbors' priorities). This variant keeps
/// Sloan's objective but freezes the DYNAMIC part of the priority: per
/// component it computes the pseudo-diameter pair (s, e) exactly like
/// `sloan`, assigns every vertex the static key
///   k(v) = w1 * (deg(v) + 1) + w2 * (ecc(e) - dist(v, e))
/// (the negated initial Sloan priority, shifted non-negative; SMALLER key =
/// higher priority), and expands CM-style levels from s ranked by
/// (parent label, k(v), id) — the same SORTPERM-shaped triple the fused
/// distributed level kernel ranks by, with k(v) substituted for the degree.
/// No final reversal (Sloan numbers front-to-back). Quality sits between
/// RCM and classic Sloan on wavefront, and it parallelizes exactly like
/// RCM: one fused 5-crossing collective per level.
std::vector<index_t> sloan_levels(
    const sparse::CsrMatrix& a, SloanOptions opt = {},
    PeripheralMode mode = PeripheralMode::kGeorgeLiu);

}  // namespace drcm::order
