// Umbrella header: the complete public API of the drcm library.
//
// Most applications need only a subset:
//   #include "order/rcm_serial.hpp"   — sequential RCM
//   #include "rcm/rcm_driver.hpp"     — the paper's distributed RCM
//   #include "sparse/metrics.hpp"     — bandwidth / profile
// but including this header pulls in everything.
#pragma once

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

#include "mpsim/barrier.hpp"
#include "mpsim/comm.hpp"
#include "mpsim/cost_model.hpp"
#include "mpsim/runtime.hpp"
#include "mpsim/stats.hpp"

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph_algo.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"
#include "sparse/wavefront.hpp"

#include "order/gps.hpp"
#include "order/pseudo_peripheral.hpp"
#include "order/rcm_serial.hpp"
#include "order/rcm_shared.hpp"
#include "order/sloan.hpp"

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "dist/primitives.hpp"
#include "dist/proc_grid.hpp"
#include "dist/redistribute.hpp"
#include "dist/row_block.hpp"
#include "dist/sortperm.hpp"
#include "dist/spmspv.hpp"

#include "rcm/dist_bfs.hpp"
#include "rcm/dist_peripheral.hpp"
#include "rcm/dist_rcm.hpp"
#include "rcm/rcm_driver.hpp"
#include "rcm/trace_model.hpp"

#include "solver/block_jacobi.hpp"
#include "solver/cg.hpp"
#include "solver/dist_cg.hpp"
#include "solver/halo_analyzer.hpp"
#include "solver/skyline.hpp"
#include "solver/solver_model.hpp"
#include "solver/spmv.hpp"
