#include "rcm/dist_peripheral.hpp"

#include "dist/primitives.hpp"
#include "rcm/dist_bfs.hpp"

namespace drcm::rcm {

DistPeripheralResult dist_pseudo_peripheral(const dist::DistSpMat& a,
                                            const dist::DistDenseVec& degrees,
                                            index_t start,
                                            dist::ProcGrid2D& grid,
                                            dist::SpmspvAccumulator acc) {
  DRCM_CHECK(start >= 0 && start < a.n(), "start vertex out of range");
  auto& world = grid.world();

  DistPeripheralResult res;
  res.vertex = start;

  dist::DistDenseVec levels(a.vec_dist(), grid, kNoVertex);
  auto bfs = dist_bfs(a, res.vertex, levels, grid,
                      mps::Phase::kPeripheralSpmspv,
                      mps::Phase::kPeripheralOther, acc);
  ++res.bfs_sweeps;
  res.eccentricity = bfs.eccentricity;
  index_t nlvl = res.eccentricity - 1;

  while (res.eccentricity > nlvl) {
    nlvl = res.eccentricity;
    // Shrink last level: REDUCE(Lcur, D) — minimum degree, ties to the
    // smallest vertex id (Algorithm 4 line 16).
    index_t candidate = kNoVertex;
    {
      mps::PhaseScope scope(world, mps::Phase::kPeripheralOther);
      candidate = dist::reduce_argmin(bfs.last_frontier, degrees, world).second;
    }
    DRCM_CHECK(candidate != kNoVertex, "last BFS level cannot be empty");
    if (candidate == res.vertex) break;  // isolated vertex or fixpoint
    bfs = dist_bfs(a, candidate, levels, grid, mps::Phase::kPeripheralSpmspv,
                   mps::Phase::kPeripheralOther, acc);
    ++res.bfs_sweeps;
    res.vertex = candidate;
    res.eccentricity = bfs.eccentricity;
  }
  return res;
}

}  // namespace drcm::rcm
