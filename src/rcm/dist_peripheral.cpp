#include "rcm/dist_peripheral.hpp"

#include "dist/primitives.hpp"
#include "rcm/dist_bfs.hpp"

namespace drcm::rcm {

namespace {

/// REDUCE(Lcur, D): minimum-degree vertex of the last BFS level, ties to
/// the smallest vertex id (Algorithm 4 line 16). Collective.
index_t shrink_last_level(const DistBfsResult& bfs,
                          const dist::DistDenseVec& degrees, mps::Comm& world) {
  mps::PhaseScope scope(world, mps::Phase::kPeripheralOther);
  const index_t candidate =
      dist::reduce_argmin(bfs.last_frontier, degrees, world).second;
  DRCM_CHECK(candidate != kNoVertex, "last BFS level cannot be empty");
  return candidate;
}

}  // namespace

DistPeripheralResult dist_pseudo_peripheral(const dist::DistSpMat& a,
                                            const dist::DistDenseVec& degrees,
                                            index_t start,
                                            dist::ProcGrid2D& grid,
                                            dist::SpmspvAccumulator acc,
                                            PeripheralMode mode) {
  DRCM_CHECK(start >= 0 && start < a.n(), "start vertex out of range");
  auto& world = grid.world();

  DistPeripheralResult res;
  res.vertex = start;

  dist::DistDenseVec levels(a.vec_dist(), grid, kNoVertex);
  auto bfs = dist_bfs(a, res.vertex, levels, grid,
                      mps::Phase::kPeripheralSpmspv,
                      mps::Phase::kPeripheralOther, acc);
  ++res.bfs_sweeps;
  res.eccentricity = bfs.eccentricity;

  if (mode == PeripheralMode::kGeorgeLiu) {
    index_t nlvl = res.eccentricity - 1;
    while (res.eccentricity > nlvl) {
      nlvl = res.eccentricity;
      const index_t candidate = shrink_last_level(bfs, degrees, world);
      if (candidate == res.vertex) break;  // isolated vertex or fixpoint
      bfs = dist_bfs(a, candidate, levels, grid, mps::Phase::kPeripheralSpmspv,
                     mps::Phase::kPeripheralOther, acc);
      ++res.bfs_sweeps;
      res.vertex = candidate;
      res.eccentricity = bfs.eccentricity;
    }
    res.last_width = bfs.last_width;
    return res;
  }

  // RCM++ bi-criteria, mirroring order::pseudo_peripheral_vertex's
  // kBiCriteria arm decision for decision (the serial twin the equivalence
  // wall compares against): accept a candidate that grows the eccentricity
  // or keeps it while shrinking the last level; continue only while a sweep
  // improved both.
  index_t width = bfs.last_width;
  while (true) {
    const index_t candidate = shrink_last_level(bfs, degrees, world);
    if (candidate == res.vertex) break;  // isolated vertex or fixpoint
    auto bfs2 = dist_bfs(a, candidate, levels, grid,
                         mps::Phase::kPeripheralSpmspv,
                         mps::Phase::kPeripheralOther, acc);
    ++res.bfs_sweeps;
    const bool better = bfs2.eccentricity > res.eccentricity ||
                        (bfs2.eccentricity == res.eccentricity &&
                         bfs2.last_width < width);
    const bool advance =
        bfs2.eccentricity > res.eccentricity && bfs2.last_width < width;
    if (better) {
      res.vertex = candidate;
      res.eccentricity = bfs2.eccentricity;
      width = bfs2.last_width;
      bfs = std::move(bfs2);
    }
    if (!advance) break;
  }
  res.last_width = width;
  return res;
}

}  // namespace drcm::rcm
