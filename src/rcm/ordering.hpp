// The ordering portfolio's algorithm-agnostic surface.
//
// The distributed machinery (fused BFS/ordering levels, SORTPERM, the
// service cache) is algorithm-independent: anything expressible as
// "level-synchronous expansion ranked by (parent label, key, id)" runs on
// it unchanged. OrderingSpec names WHICH ordering a request wants;
// rcm::dist_order (rcm_driver.hpp) dispatches on it, and the serving
// layer folds it into the cache fingerprint salt so entries from different
// algorithms can never collide.
//
// kAuto is the portfolio selector: cheap O(n + nnz) per-matrix proxies
// (natural bandwidth, RMS wavefront, density, component count) computed
// once on the driver, reduced to a deterministic choice — the same
// generalization step SpmspvAccumulator::kAuto took for accumulators,
// lifted to whole algorithms. The choice and its proxies are recorded in
// OrderSolveResponse so callers can audit every auto decision.
#pragma once

#include "common/types.hpp"
#include "order/pseudo_peripheral.hpp"
#include "sparse/csr.hpp"

namespace drcm::rcm {

/// Shared serial/distributed peripheral-iteration knob (re-exported from
/// the serial layer; rcm/dist_peripheral.hpp uses the same alias).
using order::PeripheralMode;

enum class OrderingAlgorithm {
  kRcm,    ///< distributed reverse Cuthill-McKee (the paper's algorithm)
  kSloan,  ///< level-synchronous Sloan over the same fused level kernel
  kGps,    ///< Gibbs-Poole-Stockmeyer (replicated serial arm in v1)
  kAuto,   ///< proxy-based per-matrix selection among the above
};

/// Which ordering a request wants, carried through DistRcmOptions,
/// OrderSolveRequest and the cache fingerprint salt.
struct OrderingSpec {
  OrderingAlgorithm algorithm = OrderingAlgorithm::kRcm;
  /// Pseudo-peripheral iteration seeding each component (consumed by the
  /// kRcm and kSloan arms; kGps runs its own internal George-Liu pass).
  PeripheralMode peripheral_mode = PeripheralMode::kGeorgeLiu;
};

const char* ordering_algorithm_name(OrderingAlgorithm algorithm);
const char* peripheral_mode_name(PeripheralMode mode);

/// The selector's evidence: one O(n + nnz) driver-side pass, no collective.
struct OrderingProxies {
  index_t n = 0;
  nnz_t nnz = 0;
  double avg_degree = 0.0;
  double density = 0.0;       ///< nnz / n^2 (0 for n == 0)
  index_t bandwidth = 0;      ///< natural-ordering bandwidth
  double rms_wavefront = 0.0; ///< natural-ordering RMS wavefront (flop proxy)
  index_t components = 0;
};

/// Computes the proxies of `a` (any symmetric pattern; a stored diagonal is
/// harmless). Deterministic, driver-side, O(n + nnz).
OrderingProxies ordering_proxies(const sparse::CsrMatrix& a);

struct OrderingChoice {
  OrderingAlgorithm algorithm = OrderingAlgorithm::kRcm;
  OrderingProxies proxies{};
};

/// Resolves kAuto: computes the proxies and deterministically picks a
/// CONCRETE algorithm (never kAuto). The rule is calibrated on the
/// fig3_matrix_suite scoreboard so the chosen algorithm's bandwidth is
/// never worse than always-RCM there (CI-gated from BENCH_5.json); see
/// ordering.cpp for the thresholds and their calibration notes.
OrderingChoice select_ordering(const sparse::CsrMatrix& a);

}  // namespace drcm::rcm
