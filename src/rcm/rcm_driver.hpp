// The complete distributed RCM pipeline: the library's primary public API.
//
// Composition (paper Secs. III-IV):
//   1. optional load-balancing random symmetric permutation of the input
//      (paper Sec. IV-A: "we randomly permute the input matrix A before
//      running the RCM algorithm");
//   2. 2D decomposition of the matrix onto the process grid;
//   3. per component: seed (unvisited min-degree vertex) -> distributed
//      pseudo-peripheral search (Algorithm 4) -> distributed CM labeling
//      (Algorithm 3);
//   4. reversal of the full labeling ("return R in reverse order");
//   5. composition back through the load-balancing permutation, so callers
//      always receive labels of the ORIGINAL matrix.
//
// Determinism: for fixed options the result is bit-identical to
// order::rcm_serial on every grid size; with load balancing enabled it is
// bit-identical to rcm_serial applied to the relabeled matrix, mapped back.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mpsim/runtime.hpp"
#include "rcm/dist_rcm.hpp"
#include "rcm/ordering.hpp"
#include "solver/cg.hpp"
#include "sparse/csr.hpp"

namespace drcm::rcm {

struct DistRcmOptions {
  /// Which ordering algorithm to run, and with which pseudo-peripheral
  /// iteration (rcm/ordering.hpp). dist_order dispatches on this;
  /// dist_rcm, true to its name, always runs RCM but honors the
  /// peripheral_mode. kAuto resolves deterministically from per-matrix
  /// proxies before any collective launches.
  OrderingSpec ordering{};
  /// Apply the load-balancing random relabeling before decomposing.
  bool load_balance = false;
  /// Seed of the load-balancing permutation.
  u64 seed = 0x5eed;
  /// Which SORTPERM ranks the levels (bucket = the paper's algorithm).
  SortKind sort = SortKind::kBucket;
  /// SpMSpV accumulator arm for every BFS level (kAuto = degree-aware
  /// selection per level; DRCM_SPMSPV_ACC overrides). All arms produce
  /// bit-identical orderings — this is a performance knob.
  dist::SpmspvAccumulator accumulator = dist::SpmspvAccumulator::kAuto;
  /// Run each ordering level through the fused dist::cm_level_step
  /// collective (five barrier crossings per level) instead of the reference
  /// bfs_level_step + sortperm chain (nine). Bucket sort only; both arms
  /// are bit-identical — this is a synchrony knob kept for the equivalence
  /// suite and the crossing-ledger benches.
  bool fuse_ordering = true;
  /// Route each relabeled entry straight from the balanced-2D input block
  /// to the 1D owner of its NEW row in ONE alltoallv (O(nnz/p + n/p)
  /// resident per rank), instead of the two-hop chain through the
  /// permuted-2D intermediate whose q diagonal blocks concentrate
  /// Θ(nnz/q) of the banded output. Both paths produce bit-identical row
  /// blocks; the two-hop arm is kept for the equivalence wall and the
  /// before/after ledger comparison.
  bool one_shot_redistribute = true;
  /// Keep the label vector sharded O(n/p) per rank through the WHOLE
  /// pipeline (ordered_solve_on only): ordering returns a distributed
  /// slab, redistribution resolves labels through a two-sided window
  /// lookup (one extra O(n/q) alltoallv), and the rhs relabel becomes a
  /// local read. Removes the last replicated O(n) structure from the
  /// ranks — the resident ledger then covers the complete pipeline state.
  /// Requires one_shot_redistribute; bit-identical results. dist_rcm and
  /// the run_* wrappers ignore it (their contract is a replicated label
  /// vector).
  bool sharded_labels = false;
  /// OpenMP threads per rank of the hybrid configuration (paper Fig. 6:
  /// one communicating thread per process, the others splitting the local
  /// SpMSpV). 0 resolves through the DRCM_THREADS environment variable,
  /// defaulting to 1 (flat MPI). Consumed by run_dist_rcm when launching
  /// the runtime; a body already running on a Comm inherits the
  /// Runtime::run threads_per_rank instead. Every thread count produces
  /// bit-identical orderings — this is a performance knob.
  int threads = 0;
};

/// Resolves DistRcmOptions::threads: a positive request passes through;
/// 0 reads DRCM_THREADS (re-read per call, like DRCM_SPMSPV_ACC, so benches
/// can flip configurations between runs), defaulting to 1.
int resolve_threads(int requested);

struct DistRcmStats {
  int components = 0;
  int peripheral_bfs_sweeps = 0;
  /// Total BFS levels labeled over all components (kRcm/kSloan arms; one
  /// fused 5-crossing collective each) — the figure the bi-criteria
  /// peripheral mode shrinks. 0 on the replicated kGps arm.
  index_t ordering_levels = 0;
  /// The algorithm that actually ran (kAuto resolved; never kAuto here).
  OrderingAlgorithm algorithm = OrderingAlgorithm::kRcm;
};

/// The memoized shape of one component's ordering run — what incremental
/// repair needs to resume the BFS mid-flight instead of recomputing.
/// All fields are in the WORK numbering and CM (pre-reversal) label space:
/// callers holding the reversed RCM labels recover cm(v) = n - 1 - rcm(v).
struct ComponentRecipe {
  /// argmin_unvisited winner that opened the component (min degree, ties
  /// to id, over the then-unlabeled vertices).
  index_t seed = kNoVertex;
  /// Pseudo-peripheral root the CM labeling started from.
  index_t root = kNoVertex;
  /// First CM label of every BFS level from the root, PLUS a trailing
  /// one-past-the-end sentinel: level l occupies [starts[l], starts[l+1]),
  /// so starts.front() is the component's first label and starts.back()
  /// one past its last.
  std::vector<index_t> level_starts;

  index_t lo() const { return level_starts.front(); }
  index_t hi() const { return level_starts.back(); }
  index_t levels() const {
    return static_cast<index_t>(level_starts.size()) - 1;
  }
};

/// Level structure of a whole ordering, one entry per component in
/// discovery order (components tile [0, n) contiguously). Captured for
/// free during a cold run (the level starts are the SORTPERM bucket
/// boundaries the fused kernel already walks) and cached by the serving
/// layer next to the labels.
struct OrderingRecipe {
  std::vector<ComponentRecipe> components;
  bool empty() const { return components.empty(); }
};

/// What the repair will do with one cached component.
enum class RepairAction {
  kReuse,      ///< untouched by the delta: copy the cached labels, skip
               ///< the peripheral search and every level step
  kCone,       ///< delta confined to levels >= cone_level >= 2: re-run the
               ///< peripheral search, copy levels < cone_level, re-level
               ///< only the cone below
  kRecompute,  ///< delta reaches level 0 or 1: full component recompute
               ///< (still cheaper than cold when other components reuse)
};

struct ComponentRepairPlan {
  RepairAction action = RepairAction::kReuse;
  /// First level the cone re-runs (kCone only); levels < cone_level are
  /// spliced from the cache.
  index_t cone_level = 0;
};

/// Driver-side classification of a pattern delta against a cached
/// ordering: which components are touched, how deep, and whether repair
/// is guaranteed to cost strictly fewer ordering-phase barrier crossings
/// than a cold recompute.
struct RepairPlan {
  std::vector<ComponentRepairPlan> components;
  /// Non-terminal cm_level_step collectives the plan skips (5 crossings
  /// each); reused components additionally skip their peripheral search
  /// and terminal steps.
  index_t level_steps_skipped = 0;
  /// Conservative crossing margin of repair vs cold: reuse >= +6 per
  /// component, cone +5*(cone_level-1) - 2 (the membership-check
  /// allreduce), recompute -2. Repair is only worth launching when > 0.
  index_t crossing_margin = 0;
  bool profitable = false;
};

/// Classifies `changed_rows` (half-open row ranges whose pattern hashes
/// changed, e.g. from the refined-fingerprint window diff) against a
/// cached ordering. `cached_labels` are the REVERSED (RCM) labels the
/// cache stores; `recipe` the structure captured when they were computed.
/// Pure driver-side arithmetic — no collective, no charge.
RepairPlan plan_repair(const OrderingRecipe& recipe,
                       const std::vector<index_t>& cached_labels,
                       const std::vector<std::pair<index_t, index_t>>&
                           changed_rows,
                       index_t n);

/// Outcome of dist_rcm_repair. `ok == false` means a structural change
/// (component split/merge/reorder) was detected mid-repair: `labels` is
/// empty, nothing was poisoned, and the caller must fall back to a cold
/// recompute. `ok == true` guarantees `labels` is BIT-IDENTICAL to what
/// dist_rcm would return on the new pattern (DRCM_CHECK-able, and checked
/// by the equivalence wall in tests/test_service_repair.cpp).
struct RepairResult {
  bool ok = false;
  std::string reason;  ///< why not ok (structured, for logs)
  std::vector<index_t> labels;  ///< replicated RCM labels when ok
  OrderingRecipe recipe;        ///< refreshed recipe matching `labels`
  int reused = 0;
  int coned = 0;
  int recomputed = 0;
  index_t level_steps_skipped = 0;
};

/// SPMD body: repairs a cached ordering against the delta'd pattern `a`
/// (replicated, self-loop-free) instead of recomputing it. Walks the
/// cached components in discovery order, re-verifying at every decision
/// point exactly what a cold run would have computed — the seed argmin
/// must land in the expected component, a dirty component's re-run
/// peripheral search must return the cached root for the cone splice to
/// apply (otherwise the component honestly recomputes), and every cone is
/// count- and membership-checked against the cached component before the
/// splice stands. Any violated check returns ok == false with labels
/// untouched. Requires options.load_balance == false (the balance
/// relabel would decouple the recipe's numbering from the caller's).
/// Collective on grid.world().
RepairResult dist_rcm_repair(dist::ProcGrid2D& grid,
                             const sparse::CsrMatrix& a,
                             const std::vector<index_t>& cached_labels,
                             const OrderingRecipe& recipe,
                             const RepairPlan& plan,
                             const DistRcmOptions& options = {});

/// SPMD body — the portfolio's algorithm-agnostic ordering entry point.
/// Dispatches on options.ordering.algorithm:
///   kRcm   — the paper's distributed RCM (peripheral search + fused CM
///            levels + reversal), honoring ordering.peripheral_mode;
///   kSloan — level-synchronous Sloan over the SAME fused level kernel:
///            per component the pseudo-diameter pair (s, e) is computed
///            distributively, the static Sloan key replaces the degree as
///            the SORTPERM ranking key, and no reversal is applied.
///            Bit-identical to order::sloan_levels;
///   kGps   — Gibbs-Poole-Stockmeyer, v1: each rank runs the replicated
///            serial order::gps on the (balanced) pattern, charged as
///            compute — an honest placeholder until GPS's level-merging
///            phase is distributed;
///   kAuto  — rcm::select_ordering resolves a concrete algorithm from
///            cheap per-matrix proxies before any collective launches
///            (deterministic, so every rank picks the same arm).
/// `a` must be the same replicated symmetric self-loop-free pattern on all
/// ranks. Returns the replicated label vector (labels[v] = new index of v
/// in the ORIGINAL numbering). `recipe`, when non-null, receives the
/// per-component level structure — captured on the kRcm arm only (Sloan
/// and GPS orderings are not repair-eligible in v1; the recipe stays
/// empty, and the serving layer declines repairs against them). `stats`,
/// when non-null, records the resolved algorithm. Collective.
std::vector<index_t> dist_order(mps::Comm& world, const sparse::CsrMatrix& a,
                                const DistRcmOptions& options = {},
                                DistRcmStats* stats = nullptr,
                                OrderingRecipe* recipe = nullptr);

/// Thin wrapper over dist_order pinned to the kRcm arm (the pre-portfolio
/// contract this function's name promises): options.ordering.algorithm is
/// ignored, ordering.peripheral_mode is honored. Collective.
std::vector<index_t> dist_rcm(mps::Comm& world, const sparse::CsrMatrix& a,
                              const DistRcmOptions& options = {},
                              DistRcmStats* stats = nullptr,
                              OrderingRecipe* recipe = nullptr);

/// SPMD body, sharded output: the same ordering, but the result stays an
/// O(n/p)-per-rank distributed label vector in the ORIGINAL numbering —
/// labels.get(v) = new index of v for owned v — and no rank ever holds a
/// replicated copy. With load balancing the map-back through the balance
/// permutation happens via one alltoallv re-owning instead of a
/// replicated scan. labels.to_global(world) of the result equals
/// dist_rcm(...) bit for bit. Collective on the grid's world.
dist::DistDenseVec dist_rcm_sharded(mps::Comm& world, dist::ProcGrid2D& grid,
                                    const sparse::CsrMatrix& a,
                                    const DistRcmOptions& options = {},
                                    DistRcmStats* stats = nullptr);

/// Convenience wrapper: launches `nranks` simulated ranks, runs dist_rcm,
/// and returns labels plus the per-phase cost report (the data behind the
/// paper's Figures 4-6).
struct DistRcmRun {
  std::vector<index_t> labels;
  DistRcmStats stats;
  mps::SpmdReport report;
};

DistRcmRun run_dist_rcm(int nranks, const sparse::CsrMatrix& a,
                        const DistRcmOptions& options = {},
                        const mps::MachineParams& machine = {});

/// run_dist_rcm's portfolio twin: launches `nranks` ranks and runs
/// dist_order (dispatching on options.ordering). run.stats.algorithm
/// records what kAuto resolved to.
DistRcmRun run_dist_order(int nranks, const sparse::CsrMatrix& a,
                          const DistRcmOptions& options = {},
                          const mps::MachineParams& machine = {});

/// The paper's Figure-1 pipeline as ONE distributed call: RCM ordering on
/// the 2D grid, ONE streaming redistribution routing every relabeled entry
/// straight to its 1D solver owner (the two-hop permute-then-re-own chain
/// stays callable via DistRcmOptions::one_shot_redistribute = false), a
/// distributed rhs, and block-Jacobi preconditioned CG producing per-rank
/// solution slabs. Between ordering and solution no rank materializes a
/// replicated CSR or a replicated O(n) value vector; the mpsim resident
/// ledger records every stage's footprint and ordered_solve asserts the
/// per-rank peak stays O(nnz/p + n/p) on the one-shot path (O(nnz/q + n)
/// on the legacy two-hop path; see rcm_driver.cpp for the constants).
struct OrderedSolveResult {
  /// RCM labels of the ORIGINAL numbering (labels[v] = new index of v).
  std::vector<index_t> labels;
  /// Bandwidth of the permuted matrix, computed distributively.
  index_t permuted_bandwidth = 0;
  solver::CgResult cg;
  /// This rank's solution slab for PERMUTED rows [x_lo, x_lo +
  /// x_local.size()) — the SPMD-body output; the body never replicates the
  /// solution. SPMD callers wanting the full vector use
  /// solver::gather_solution; the run_* wrappers assemble the replicated
  /// `x` outside the ranks instead.
  std::vector<double> x_local;
  index_t x_lo = 0;
  /// Replicated solution in the ORIGINAL numbering. Filled by the run_*
  /// wrappers AFTER the SPMD runs (empty at SPMD-body level, where the
  /// no-gather contract forbids it).
  std::vector<double> x;
};

/// Everything one ordered solve needs, in one place — the parameter object
/// the single pipeline core consumes. The historical entry points
/// (ordered_solve, ordered_solve_on, ordered_solve_with_labels, the run_*
/// wrappers and the recoverable runner) are documented thin wrappers that
/// populate one of these and delegate; behavior is pinned unchanged by the
/// pre-collapse walls.
struct OrderedSolveSpec {
  /// Replicated SPD input (values required, diagonal included) — the
  /// pre-distribution fixture the simulator starts from. Required.
  const sparse::CsrMatrix* matrix = nullptr;
  /// Replicated rhs; must have matrix->n() entries.
  std::span<const double> b;
  bool precondition = true;
  DistRcmOptions rcm{};
  solver::CgOptions cg{};
  /// Optional pre-stripped adjacency equal to matrix->strip_diagonal()
  /// (run_* wrappers strip once outside the ranks; null makes each rank
  /// strip its own transient copy). Ignored when `labels` is set.
  const sparse::CsrMatrix* adjacency = nullptr;
  /// When non-null: the ordering-cache HIT path. Stage 1 is skipped
  /// entirely and redistribution runs under these KNOWN labels (a
  /// permutation of [0, n)); the body executes ZERO collectives in the
  /// five ordering phases and the result's `labels` stays empty (the
  /// caller already holds them).
  const std::vector<index_t>* labels = nullptr;
  /// When non-null: receives the kRcm arm's level structure (cold runs
  /// only; requires the replicated-label arm and no load balancing to be
  /// useful to the repair consumer).
  OrderingRecipe* recipe = nullptr;
};

/// THE pipeline core: ordering (or label splice) -> one-shot redistribution
/// -> distributed CG, on a caller-owned grid, under the per-rank resident
/// budget DRCM_CHECK. Every other ordered-solve entry point is a thin
/// wrapper over this. Collective on grid.world().
OrderedSolveResult ordered_solve_spec(dist::ProcGrid2D& grid,
                                      const OrderedSolveSpec& spec);

/// Thin wrapper: ordered_solve_spec on a grid built from `world`, with the
/// classic positional arguments. SPMD body; collective; the world size
/// must be a perfect square (the 2D grid precondition).
OrderedSolveResult ordered_solve(mps::Comm& world, const sparse::CsrMatrix& a,
                                 std::span<const double> b,
                                 bool precondition = true,
                                 const DistRcmOptions& rcm_options = {},
                                 const solver::CgOptions& cg_options = {},
                                 const sparse::CsrMatrix* adjacency = nullptr);

/// Thin wrapper: ordered_solve_spec on a CALLER-OWNED grid — the ProcGrid2D
/// (and with it the per-rank DistWorkspace staging every exchange) is
/// constructed by the caller and survives the call. This is the
/// serving-layer entry point — a persistent grid makes request N+1's
/// collectives run against warmed buffer capacities, so its workspace
/// realloc ledger stays flat. Honors DistRcmOptions::sharded_labels.
/// Collective on grid.world().
OrderedSolveResult ordered_solve_on(dist::ProcGrid2D& grid,
                                    const sparse::CsrMatrix& a,
                                    std::span<const double> b,
                                    bool precondition = true,
                                    const DistRcmOptions& rcm_options = {},
                                    const solver::CgOptions& cg_options = {},
                                    const sparse::CsrMatrix* adjacency = nullptr,
                                    OrderingRecipe* recipe = nullptr);

/// Thin wrapper: ordered_solve_spec with spec.labels set — the
/// ordering-cache hit path (skip stage 1, redistribute + solve under KNOWN
/// labels recalled from a previous solve of the same sparsity pattern).
/// Executes ZERO collectives in the five ordering phases — the property
/// the serving layer's crossing ledger asserts per hit. The result's
/// `labels` stays empty: the caller already holds them, and the no-gather
/// body does not replicate them again. Collective on grid.world().
OrderedSolveResult ordered_solve_with_labels(
    dist::ProcGrid2D& grid, const sparse::CsrMatrix& a,
    const std::vector<index_t>& labels, std::span<const double> b,
    bool precondition = true, const DistRcmOptions& rcm_options = {},
    const solver::CgOptions& cg_options = {});

/// Convenience wrapper: launches `nranks` ranks, runs ordered_solve, and
/// returns the result plus the cost/ledger report.
struct OrderedSolveRun {
  OrderedSolveResult result;
  mps::SpmdReport report;
};

OrderedSolveRun run_ordered_solve(int nranks, const sparse::CsrMatrix& a,
                                  std::span<const double> b,
                                  bool precondition = true,
                                  const DistRcmOptions& rcm_options = {},
                                  const solver::CgOptions& cg_options = {},
                                  const mps::MachineParams& machine = {});

/// Retry policy of run_ordered_solve_recoverable.
struct RecoveryOptions {
  mps::MachineParams machine{};
  /// Scripted faults injected into every attempt's ranks; may be null.
  /// Actions are one-shot, so a fault consumed by a failed attempt does
  /// not re-fire in the retry — the property that makes bounded retries
  /// make progress.
  mps::FaultPlan* faults = nullptr;
  /// Barrier watchdog budget per attempt (see mps::RunOptions); 0 disables.
  double watchdog_seconds = 0.0;
  /// Attempts per stage (>= 1) before the last failure is rethrown.
  int max_attempts = 3;
  /// Modeled backoff charged as a stall on every rank at the start of
  /// retry k (linear: k * backoff seconds), so recovery cost shows up in
  /// the merged ledger like any other modeled time.
  double backoff_modeled_seconds = 0.05;
};

/// Result of a recoverable pipeline run. `report` is the sum over every
/// attempt — including abandoned ones — so injected stalls, partial work
/// and retry backoff all stay on the bill; `fault_log` names each failure
/// that was absorbed.
struct OrderedSolveRecoverableRun {
  OrderedSolveResult result;
  mps::SpmdReport report;
  /// Runtime::run launches performed (3 stages when fault-free).
  int runs = 0;
  /// One line per absorbed failure: "<stage> attempt <k>: <what>".
  std::vector<std::string> fault_log;
};

/// The Figure-1 pipeline with stage-boundary checkpoints and bounded
/// retries. Execution is split into three SPMD runs — ordering (via
/// dist_order, so the whole portfolio is recoverable), redistribute (2D
/// permute + 1D re-owning), solve — whose outputs (replicated labels;
/// per-rank row blocks) the driver holds between runs. A failed attempt
/// (rank death, injected allocation failure, corrupted payload tripping a
/// structural check or poisoning the CG recurrence, watchdog timeout) is
/// retried from the last checkpoint up to `max_attempts` times with
/// modeled backoff; one-shot fault semantics guarantee progress, and a
/// recovered run is bit-identical to a fault-free run. When a stage
/// exhausts its attempts the last structured error is rethrown — either
/// way the pipeline terminates in bounded time with a named outcome,
/// never a hang or a raw abort. spec.labels and spec.recipe are not
/// consumed here (the recoverable runner owns its own checkpoints).
OrderedSolveRecoverableRun run_ordered_solve_recoverable(
    int nranks, const OrderedSolveSpec& spec,
    const RecoveryOptions& recovery = {});

/// Thin wrapper: the classic positional signature, packed into an
/// OrderedSolveSpec and delegated.
OrderedSolveRecoverableRun run_ordered_solve_recoverable(
    int nranks, const sparse::CsrMatrix& a, std::span<const double> b,
    bool precondition = true, const DistRcmOptions& rcm_options = {},
    const solver::CgOptions& cg_options = {},
    const RecoveryOptions& recovery = {});

}  // namespace drcm::rcm
