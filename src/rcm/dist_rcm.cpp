#include "rcm/dist_rcm.hpp"

#include "dist/level_kernel.hpp"
#include "dist/primitives.hpp"
#include "dist/sortperm.hpp"

namespace drcm::rcm {

using dist::DistSpVec;
using dist::VecEntry;

index_t dist_cm_component(const dist::DistSpMat& a,
                          const dist::DistDenseVec& degrees,
                          dist::DistDenseVec& labels, index_t root,
                          index_t next_label, dist::ProcGrid2D& grid,
                          SortKind sort, dist::SpmspvAccumulator acc) {
  DRCM_CHECK(root >= 0 && root < a.n(), "root out of range");
  auto& world = grid.world();

  // R[r] <- nv (Algorithm 3 line 3).
  {
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    if (labels.owns(root)) {
      DRCM_CHECK(labels.get(root) == kNoVertex, "root already labeled");
      labels.set(root, next_label);
    }
  }
  DistSpVec frontier(labels.dist(), grid);
  if (frontier.lo() <= root && root < frontier.hi()) {
    frontier.assign({VecEntry{root, next_label}});
  }
  index_t frontier_nnz = 1;
  next_label += 1;

  while (frontier_nnz > 0) {
    // Labels of the current frontier form the contiguous range
    // [next_label - |frontier|, next_label): the bucket boundaries of
    // SORTPERM (paper Sec. IV-B observation).
    const index_t label_lo = next_label - frontier_nnz;
    const index_t label_hi = next_label;

    // One fused level: Lcur <- SET(Lcur, R); Lnext <- SPMSPV(A, Lcur,
    // (select2nd, min)); Lnext <- SELECT(Lnext, R = -1); |Lnext| — three
    // barrier crossings instead of the unfused chain's eight.
    auto step = dist::bfs_level_step(a, frontier, labels, kNoVertex, grid,
                                     mps::Phase::kOrderingSpmspv,
                                     mps::Phase::kOrderingOther, acc);
    frontier_nnz = step.global_nnz;
    if (frontier_nnz == 0) break;

    // Rnext <- SORTPERM(Lnext, D) + nv.
    DistSpVec ranks;
    {
      mps::PhaseScope scope(world, mps::Phase::kOrderingSort);
      ranks = sort == SortKind::kBucket
                  ? dist::sortperm_bucket(step.next, degrees, label_lo,
                                          label_hi, grid)
                  : dist::sortperm_sample(step.next, degrees, grid);
      dist::add_scalar(ranks, next_label, world);
    }
    // R <- SET(R, Rnext); advance nv; Lcur <- Lnext.
    {
      mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
      dist::scatter_into_dense(labels, ranks, world);
    }
    next_label += frontier_nnz;
    frontier = step.next;
  }
  return next_label;
}

}  // namespace drcm::rcm
