#include "rcm/dist_rcm.hpp"

#include "dist/primitives.hpp"
#include "dist/sortperm.hpp"
#include "dist/spmspv.hpp"

namespace drcm::rcm {

using dist::DistSpVec;
using dist::VecEntry;

index_t dist_cm_component(const dist::DistSpMat& a,
                          const dist::DistDenseVec& degrees,
                          dist::DistDenseVec& labels, index_t root,
                          index_t next_label, dist::ProcGrid2D& grid,
                          SortKind sort) {
  DRCM_CHECK(root >= 0 && root < a.n(), "root out of range");
  auto& world = grid.world();

  // R[r] <- nv (Algorithm 3 line 3).
  {
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    if (labels.owns(root)) {
      DRCM_CHECK(labels.get(root) == kNoVertex, "root already labeled");
      labels.set(root, next_label);
    }
  }
  DistSpVec frontier(labels.dist(), grid);
  if (frontier.lo() <= root && root < frontier.hi()) {
    frontier.assign({VecEntry{root, next_label}});
  }
  index_t frontier_nnz = 1;
  next_label += 1;

  while (frontier_nnz > 0) {
    // Labels of the current frontier form the contiguous range
    // [next_label - |frontier|, next_label): the bucket boundaries of
    // SORTPERM (paper Sec. IV-B observation).
    const index_t label_lo = next_label - frontier_nnz;
    const index_t label_hi = next_label;

    // Lcur <- SET(Lcur, R): refresh frontier values to their labels.
    {
      mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
      dist::gather_from_dense(frontier, labels, world);
    }
    // Lnext <- SPMSPV(A, Lcur, (select2nd, min)).
    DistSpVec next;
    {
      mps::PhaseScope scope(world, mps::Phase::kOrderingSpmspv);
      next = dist::spmspv_select2nd_min(a, frontier, grid);
    }
    // Lnext <- SELECT(Lnext, R = -1): keep unvisited.
    {
      mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
      next = dist::select_where_equals(next, labels, kNoVertex, world);
      frontier_nnz = next.global_nnz(world);
    }
    if (frontier_nnz == 0) break;

    // Rnext <- SORTPERM(Lnext, D) + nv.
    DistSpVec ranks;
    {
      mps::PhaseScope scope(world, mps::Phase::kOrderingSort);
      ranks = sort == SortKind::kBucket
                  ? dist::sortperm_bucket(next, degrees, label_lo, label_hi, grid)
                  : dist::sortperm_sample(next, degrees, grid);
      dist::add_scalar(ranks, next_label, world);
    }
    // R <- SET(R, Rnext); advance nv; Lcur <- Lnext.
    {
      mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
      dist::scatter_into_dense(labels, ranks, world);
    }
    next_label += frontier_nnz;
    frontier = next;
  }
  return next_label;
}

}  // namespace drcm::rcm
