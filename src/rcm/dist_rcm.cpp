#include "rcm/dist_rcm.hpp"

#include "dist/level_kernel.hpp"

namespace drcm::rcm {

using dist::DistSpVec;
using dist::VecEntry;

index_t dist_cm_component(const dist::DistSpMat& a,
                          const dist::DistDenseVec& degrees,
                          dist::DistDenseVec& labels, index_t root,
                          index_t next_label, dist::ProcGrid2D& grid,
                          SortKind sort, dist::SpmspvAccumulator acc,
                          bool fuse_ordering,
                          std::vector<index_t>* level_starts) {
  DRCM_CHECK(root >= 0 && root < a.n(), "root out of range");
  auto& world = grid.world();

  // R[r] <- nv (Algorithm 3 line 3).
  {
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    if (labels.owns(root)) {
      DRCM_CHECK(labels.get(root) == kNoVertex, "root already labeled");
      labels.set(root, next_label);
    }
  }
  if (level_starts) level_starts->push_back(next_label);  // level 0 = root
  DistSpVec frontier(labels.dist(), grid);
  if (frontier.lo() <= root && root < frontier.hi()) {
    frontier.assign({VecEntry{root, next_label}});
  }
  return dist_cm_cone(a, degrees, labels, std::move(frontier),
                      /*frontier_nnz=*/1, next_label + 1, grid, sort, acc,
                      fuse_ordering, level_starts);
}

index_t dist_cm_cone(const dist::DistSpMat& a,
                     const dist::DistDenseVec& degrees,
                     dist::DistDenseVec& labels, DistSpVec frontier,
                     index_t frontier_nnz, index_t next_label,
                     dist::ProcGrid2D& grid, SortKind sort,
                     dist::SpmspvAccumulator acc, bool fuse_ordering,
                     std::vector<index_t>* level_starts, index_t label_cap) {
  auto& world = grid.world();
  // The sample-sort baseline cannot ride the level collective (a comparison
  // sort has no histogram to piggyback), so it always takes the reference
  // chain.
  const bool fused = fuse_ordering && sort == SortKind::kBucket;

  while (frontier_nnz > 0) {
    // Labels of the current frontier form the contiguous range
    // [next_label - |frontier|, next_label): the bucket boundaries of
    // SORTPERM (paper Sec. IV-B observation).
    const index_t label_lo = next_label - frontier_nnz;
    const index_t label_hi = next_label;

    // One ordering level: Lnext <- SELECT(SPMSPV(A, SET(Lcur, R)), R = -1);
    // R <- SET(R, SORTPERM(Lnext, D) + nv). Fused: five barrier crossings
    // (three on the terminal level). Reference: 3 + SORTPERM's 6 = 9.
    const auto step =
        fused ? dist::cm_level_step(a, frontier, labels, degrees, label_lo,
                                    label_hi, next_label, grid,
                                    mps::Phase::kOrderingSpmspv,
                                    mps::Phase::kOrderingSort,
                                    mps::Phase::kOrderingOther, acc)
              : dist::cm_level_step_unfused(
                    a, frontier, labels, degrees, label_lo, label_hi,
                    next_label, grid, mps::Phase::kOrderingSpmspv,
                    mps::Phase::kOrderingSort, mps::Phase::kOrderingOther,
                    sort == SortKind::kSampleSort, acc);
    frontier_nnz = step.global_nnz;
    if (frontier_nnz == 0) break;
    if (level_starts) level_starts->push_back(next_label);
    next_label += frontier_nnz;
    // Escape detection for the repair cone: a level that pushes past the
    // cap means this cone is labeling vertices outside its expected
    // component (a delta merged components) — return the overshooting
    // counter instead of flooding the merged blob. The level that crossed
    // the cap HAS already written labels; the caller discards the vector.
    if (label_cap >= 0 && next_label > label_cap) return next_label;
    frontier = step.next;
  }
  return next_label;
}

}  // namespace drcm::rcm
