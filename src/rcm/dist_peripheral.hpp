// Distributed pseudo-peripheral vertex finders (paper Algorithm 4, plus
// the RCM++ bi-criteria refinement).
//
// Both iterations are expressed in the matrix-algebraic primitives: run a
// full distributed BFS, REDUCE the last level to its minimum-degree vertex
// (ties to the smallest id, matching order::pseudo_peripheral_vertex), and
// iterate. kGeorgeLiu repeats while the eccentricity grows; kBiCriteria
// (arXiv 2409.04171) additionally requires the last BFS level to shrink,
// which provably never costs more sweeps and often saves some — every
// sweep saved is a full BFS worth of barrier crossings here. Each mode is
// bit-identical to its serial twin in order/pseudo_peripheral.hpp. Costs
// are charged to the Peripheral:* phases of the Figure-4 breakdown.
#pragma once

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "dist/spmspv.hpp"
#include "order/pseudo_peripheral.hpp"

namespace drcm::rcm {

/// Shared serial/distributed knob (order::PeripheralMode re-exported at the
/// layer the distributed options live in).
using order::PeripheralMode;

struct DistPeripheralResult {
  index_t vertex = kNoVertex;
  index_t eccentricity = 0;
  int bfs_sweeps = 0;
  index_t last_width = 0;  ///< size of the last BFS level from `vertex`
};

/// Collective. `degrees` is the matrix's distributed degree vector;
/// `start` is the arbitrary starting vertex (Algorithm 4 line 1); `acc`
/// selects the SpMSpV accumulator arm of every sweep; `mode` picks the
/// George-Liu or bi-criteria iteration.
DistPeripheralResult dist_pseudo_peripheral(
    const dist::DistSpMat& a, const dist::DistDenseVec& degrees, index_t start,
    dist::ProcGrid2D& grid,
    dist::SpmspvAccumulator acc = dist::SpmspvAccumulator::kAuto,
    PeripheralMode mode = PeripheralMode::kGeorgeLiu);

}  // namespace drcm::rcm
