// Distributed pseudo-peripheral vertex finder (paper Algorithm 4).
//
// George-Liu iteration expressed in the matrix-algebraic primitives: run a
// full distributed BFS, REDUCE the last level to its minimum-degree vertex
// (ties to the smallest id, matching order::pseudo_peripheral_vertex), and
// repeat while the eccentricity grows. Costs are charged to the
// Peripheral:* phases of the Figure-4 breakdown.
#pragma once

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "dist/spmspv.hpp"

namespace drcm::rcm {

struct DistPeripheralResult {
  index_t vertex = kNoVertex;
  index_t eccentricity = 0;
  int bfs_sweeps = 0;
};

/// Collective. `degrees` is the matrix's distributed degree vector;
/// `start` is the arbitrary starting vertex (Algorithm 4 line 1); `acc`
/// selects the SpMSpV accumulator arm of every sweep.
DistPeripheralResult dist_pseudo_peripheral(const dist::DistSpMat& a,
                                            const dist::DistDenseVec& degrees,
                                            index_t start,
                                            dist::ProcGrid2D& grid,
                                            dist::SpmspvAccumulator acc =
                                                dist::SpmspvAccumulator::kAuto);

}  // namespace drcm::rcm
