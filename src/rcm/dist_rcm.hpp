// Distributed Cuthill-McKee labeling of one connected component
// (paper Algorithm 3).
//
// Starting from a pseudo-peripheral root, each BFS level is discovered with
// the (select2nd, min) SpMSpV (children attach to minimum-label parents),
// filtered to unvisited vertices (SELECT), ranked by the distributed bucket
// SORTPERM on the (parent label, degree, id) key, shifted by the running
// label counter, and written into the dense label vector R (SET). By
// default the whole ordering level runs through the fused
// dist::cm_level_step collective — five barrier crossings per level (three
// on the terminal level) instead of the reference chain's nine. Costs are
// charged to the Ordering:* phases of the Figure-4 breakdown.
#pragma once

#include <vector>

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "dist/spmspv.hpp"

namespace drcm::rcm {

/// Which SORTPERM implementation ranks each level (the paper's specialized
/// bucket sort, or the general sample sort used as its HykSort-style
/// comparison baseline).
enum class SortKind { kBucket, kSampleSort };

/// Labels the component containing `root` (which must itself be unlabeled)
/// with consecutive CM labels starting at `next_label`; returns the first
/// unused label. `labels` is the paper's dense vector R (kNoVertex =
/// unvisited). `fuse_ordering` selects the fused five-crossing ordering
/// level (bucket sort only; the sample-sort baseline always runs the
/// reference chain) — both arms are bit-identical. Collective.
///
/// `level_starts`, when non-null, receives the first CM label of every
/// BFS level discovered (level 0 = the root, so the first pushed value is
/// `next_label`). This is the level structure the incremental-repair path
/// memoizes: level ℓ of the component occupies the contiguous label range
/// [starts[ℓ], starts[ℓ+1]) — the SORTPERM bucket-boundary observation
/// (paper Sec. IV-B) doubling as a repair recipe.
index_t dist_cm_component(const dist::DistSpMat& a,
                          const dist::DistDenseVec& degrees,
                          dist::DistDenseVec& labels, index_t root,
                          index_t next_label, dist::ProcGrid2D& grid,
                          SortKind sort = SortKind::kBucket,
                          dist::SpmspvAccumulator acc =
                              dist::SpmspvAccumulator::kAuto,
                          bool fuse_ordering = true,
                          std::vector<index_t>* level_starts = nullptr);

/// The CONE-RESTRICTED entry point the incremental-repair path uses:
/// continue CM labeling from an arbitrary mid-BFS state instead of a
/// root. `frontier` must hold the vertices of the last already-labeled
/// level, whose labels in `labels` occupy [next_label - frontier_nnz,
/// next_label) (frontier VALUES are ignored — the fused kernel's SET
/// stage refreshes them from `labels`); every deeper vertex must still be
/// kNoVertex. Runs cm_level_step until the frontier empties, exactly the
/// steps dist_cm_component would have run from this state, and returns
/// the first unused label.
///
/// `label_cap`, when >= 0, bounds the labels this cone may assign: the
/// loop stops BEFORE a step that would push next_label past the cap and
/// returns the overshooting value (> cap) so the caller can detect that
/// the cone escaped its expected component (a pattern delta merged two
/// cached components) without labeling the whole merged blob. Collective.
index_t dist_cm_cone(const dist::DistSpMat& a,
                     const dist::DistDenseVec& degrees,
                     dist::DistDenseVec& labels, dist::DistSpVec frontier,
                     index_t frontier_nnz, index_t next_label,
                     dist::ProcGrid2D& grid,
                     SortKind sort = SortKind::kBucket,
                     dist::SpmspvAccumulator acc =
                         dist::SpmspvAccumulator::kAuto,
                     bool fuse_ordering = true,
                     std::vector<index_t>* level_starts = nullptr,
                     index_t label_cap = -1);

}  // namespace drcm::rcm
