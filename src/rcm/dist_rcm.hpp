// Distributed Cuthill-McKee labeling of one connected component
// (paper Algorithm 3).
//
// Starting from a pseudo-peripheral root, each BFS level is discovered with
// the (select2nd, min) SpMSpV (children attach to minimum-label parents),
// filtered to unvisited vertices (SELECT), ranked by the distributed bucket
// SORTPERM on the (parent label, degree, id) key, shifted by the running
// label counter, and written into the dense label vector R (SET). By
// default the whole ordering level runs through the fused
// dist::cm_level_step collective — five barrier crossings per level (three
// on the terminal level) instead of the reference chain's nine. Costs are
// charged to the Ordering:* phases of the Figure-4 breakdown.
#pragma once

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "dist/spmspv.hpp"

namespace drcm::rcm {

/// Which SORTPERM implementation ranks each level (the paper's specialized
/// bucket sort, or the general sample sort used as its HykSort-style
/// comparison baseline).
enum class SortKind { kBucket, kSampleSort };

/// Labels the component containing `root` (which must itself be unlabeled)
/// with consecutive CM labels starting at `next_label`; returns the first
/// unused label. `labels` is the paper's dense vector R (kNoVertex =
/// unvisited). `fuse_ordering` selects the fused five-crossing ordering
/// level (bucket sort only; the sample-sort baseline always runs the
/// reference chain) — both arms are bit-identical. Collective.
index_t dist_cm_component(const dist::DistSpMat& a,
                          const dist::DistDenseVec& degrees,
                          dist::DistDenseVec& labels, index_t root,
                          index_t next_label, dist::ProcGrid2D& grid,
                          SortKind sort = SortKind::kBucket,
                          dist::SpmspvAccumulator acc =
                              dist::SpmspvAccumulator::kAuto,
                          bool fuse_ordering = true);

}  // namespace drcm::rcm
