#include "rcm/ordering.hpp"

#include <cmath>

#include "sparse/graph_algo.hpp"
#include "sparse/metrics.hpp"
#include "sparse/wavefront.hpp"

namespace drcm::rcm {

const char* ordering_algorithm_name(OrderingAlgorithm algorithm) {
  switch (algorithm) {
    case OrderingAlgorithm::kRcm:
      return "rcm";
    case OrderingAlgorithm::kSloan:
      return "sloan";
    case OrderingAlgorithm::kGps:
      return "gps";
    case OrderingAlgorithm::kAuto:
      return "auto";
  }
  return "?";
}

const char* peripheral_mode_name(PeripheralMode mode) {
  switch (mode) {
    case PeripheralMode::kGeorgeLiu:
      return "george-liu";
    case PeripheralMode::kBiCriteria:
      return "bi-criteria";
  }
  return "?";
}

OrderingProxies ordering_proxies(const sparse::CsrMatrix& a) {
  OrderingProxies p;
  p.n = a.n();
  p.nnz = a.nnz();
  if (p.n > 0) {
    p.avg_degree = static_cast<double>(p.nnz) / static_cast<double>(p.n);
    p.density = static_cast<double>(p.nnz) /
                (static_cast<double>(p.n) * static_cast<double>(p.n));
    p.bandwidth = sparse::bandwidth(a);
    p.rms_wavefront = sparse::wavefront(a).rms_wavefront;
    p.components = sparse::connected_components(a).count;
  }
  return p;
}

OrderingChoice select_ordering(const sparse::CsrMatrix& a) {
  OrderingChoice choice;
  choice.proxies = ordering_proxies(a);
  const OrderingProxies& p = choice.proxies;

  // Calibration (fig3_matrix_suite scoreboard at --scale 1.0 and 0.5; CI
  // re-checks the chosen-vs-RCM bandwidth inequality from BENCH_5.json on
  // every run):
  //
  //  * RCM is the bandwidth-safest default everywhere — it is the only arm
  //    the gate allows unconditionally, and it wins or ties outright on
  //    sparse meshes, banded and multi-component patterns.
  //  * Dense single-component patterns whose natural bandwidth is already
  //    ~n (avg_degree >= 12: the nuclear-CI random graphs and the
  //    randomly-relabeled 27-point meshes) take the level-synchronous
  //    Sloan. Measured: bandwidth EXACTLY ties RCM on every cigraph_*
  //    point at both presets (the level structure, not the in-level rank,
  //    fixes it there) and beats RCM slightly on the scattered dense
  //    meshes at half scale (shell3d 19 vs 20, fem3d 48 vs 51) while
  //    tying at full scale — gate-safe with a small upside. Its RMS
  //    wavefront trails RCM by ~5-12% (the frozen static key forfeits
  //    classic Sloan's dynamic-wavefront edge), which the bandwidth gate
  //    tolerates; flipping the objective axis is a calibration follow-up.
  //  * GPS wins bandwidth outright on several mesh rows (solid3d 180 vs
  //    331 at full scale) but its distributed arm is the replicated
  //    serial placeholder, so auto-selecting it would silently serialize
  //    distributed requests — excluded from kAuto until the arm is real.
  //
  // Everything else: RCM. The rule must stay deterministic and depend on
  // the PROXIES only (never on rank count or timing), so the same matrix
  // resolves identically on every rank of every grid — the property the
  // selector-determinism wall pins at p = 1/4/9.
  choice.algorithm = OrderingAlgorithm::kRcm;
  if (p.components == 1 && p.avg_degree >= 12.0 && p.n > 0 &&
      static_cast<double>(p.bandwidth) >= 0.9 * static_cast<double>(p.n - 1)) {
    choice.algorithm = OrderingAlgorithm::kSloan;
  }
  return choice;
}

}  // namespace drcm::rcm
