#include "rcm/trace_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace drcm::rcm {

namespace {

using sparse::CsrMatrix;

/// BFS that appends one LevelTrace per level. Returns (eccentricity, last
/// level's vertices) for the George-Liu iteration.
struct TracedBfs {
  index_t eccentricity = 0;
  std::vector<index_t> last_level;
};

TracedBfs traced_bfs(const CsrMatrix& a, index_t root,
                     std::vector<index_t>& visit_mark, index_t mark,
                     std::vector<LevelTrace>* out) {
  TracedBfs res;
  std::vector<index_t> current{root};
  visit_mark[static_cast<std::size_t>(root)] = mark;
  index_t depth = 0;
  while (true) {
    LevelTrace lvl;
    lvl.frontier = static_cast<index_t>(current.size());
    std::vector<index_t> next;
    for (const index_t u : current) {
      lvl.expansion += a.degree(u);
      for (const index_t v : a.row(u)) {
        if (visit_mark[static_cast<std::size_t>(v)] != mark) {
          visit_mark[static_cast<std::size_t>(v)] = mark;
          next.push_back(v);
        }
      }
    }
    lvl.next = static_cast<index_t>(next.size());
    if (out) out->push_back(lvl);
    if (next.empty()) break;
    res.last_level = next;
    current = std::move(next);
    ++depth;
  }
  res.eccentricity = depth;
  if (res.last_level.empty()) res.last_level = {root};  // isolated root
  return res;
}

}  // namespace

ExecutionTrace ExecutionTrace::collect(const CsrMatrix& a) {
  ExecutionTrace tr;
  tr.n = a.n();
  tr.nnz = a.nnz();

  // visit_mark doubles as the per-BFS visited set (mark = BFS ordinal) and,
  // via `labeled`, the component-done set.
  std::vector<index_t> visit_mark(static_cast<std::size_t>(a.n()), -1);
  std::vector<bool> labeled(static_cast<std::size_t>(a.n()), false);
  index_t mark = 0;
  index_t remaining = a.n();

  while (remaining > 0) {
    // Component seed: unvisited minimum degree, ties to smallest id.
    index_t seed = kNoVertex;
    for (index_t v = 0; v < a.n(); ++v) {
      if (labeled[static_cast<std::size_t>(v)]) continue;
      if (seed == kNoVertex || a.degree(v) < a.degree(seed)) seed = v;
    }
    tr.components += 1;

    // George-Liu iteration with traced sweeps.
    index_t vertex = seed;
    auto bfs = traced_bfs(a, vertex, visit_mark, mark++, &tr.peripheral_levels);
    tr.peripheral_sweeps += 1;
    index_t ecc = bfs.eccentricity;
    index_t nlvl = ecc - 1;
    while (ecc > nlvl) {
      nlvl = ecc;
      // Candidate selection: one distributed REDUCE argmin per round.
      tr.peripheral_argmin_rounds += 1;
      index_t candidate = kNoVertex;
      for (const index_t v : bfs.last_level) {
        if (candidate == kNoVertex || a.degree(v) < a.degree(candidate) ||
            (a.degree(v) == a.degree(candidate) && v < candidate)) {
          candidate = v;
        }
      }
      if (candidate == vertex) break;
      bfs = traced_bfs(a, candidate, visit_mark, mark++, &tr.peripheral_levels);
      tr.peripheral_sweeps += 1;
      vertex = candidate;
      ecc = bfs.eccentricity;
    }
    tr.pseudo_diameter = std::max(tr.pseudo_diameter, ecc);

    // Ordering sweep: level sizes are ordering-invariant, so a plain BFS
    // from the pseudo-peripheral vertex carries Algorithm 3's exact
    // per-level quantities.
    std::vector<LevelTrace> ordering;
    traced_bfs(a, vertex, visit_mark, mark++, &ordering);
    for (const auto& lvl : ordering) {
      tr.ordering_levels.push_back(lvl);
    }
    // Mark the component as labeled.
    index_t in_component = 0;
    for (index_t v = 0; v < a.n(); ++v) {
      if (visit_mark[static_cast<std::size_t>(v)] == mark - 1) {
        labeled[static_cast<std::size_t>(v)] = true;
        ++in_component;
      }
    }
    remaining -= in_component;
  }
  return tr;
}

CostBreakdown project_cost(const ExecutionTrace& trace, int cores,
                           int threads_per_process,
                           const mps::MachineParams& machine) {
  DRCM_CHECK(cores >= 1 && threads_per_process >= 1,
             "invalid machine configuration");
  DRCM_CHECK(threads_per_process <= cores, "more threads than cores");
  const double alpha = machine.alpha;
  const double beta = machine.beta;
  const double gamma = machine.gamma;
  const double total_cores = static_cast<double>(cores);
  const double P =
      std::max(1.0, total_cores / static_cast<double>(threads_per_process));
  const double q = std::sqrt(P);  // 2D grid dimension
  const double logP = P > 1 ? std::log2(P) : 0.0;
  constexpr double kEntryWords = 2.0;  // VecEntry {idx, val}
  constexpr double kTupleWords = 3.0;  // (parent, degree, id)
  // Packed histogram carry (sortperm_pack_cells): a degree-diverse level
  // costs ~1 word per cell, and cells <= elements, so 1 word per element
  // upper-bounds the carried volume the model prices (the unpacked cell
  // was 4 words).
  constexpr double kCarryWords = 1.0;

  CostBreakdown out;

  const auto add_spmspv_level = [&](const LevelTrace& l, PhaseTime& spmspv,
                                    PhaseTime& other) {
    const double frontier = static_cast<double>(l.frontier);
    const double expansion = static_cast<double>(l.expansion);
    const double next = static_cast<double>(l.next);
    // Local multiply + accumulator merge, multithreaded across all cores.
    spmspv.compute += gamma * (expansion + 2.0 * next) / total_cores;
    if (P > 1) {
      // The fused level kernel (dist::bfs_level_step): allgatherv along
      // the processor column, the owner-direct alltoallv (fan-out q,
      // subsuming the old row alltoallv + transpose pairwise exchange),
      // and the folded emptiness/count reduction — three barrier
      // crossings where the unfused chain paid eight.
      spmspv.comm += alpha * (q - 1) + beta * kEntryWords * frontier / q;
      spmspv.comm += alpha * q + beta * kEntryWords * expansion / P;
      spmspv.comm += 2.0 * alpha * logP;
    }
    spmspv.crossings += 3;
    // SET + SELECT are local scans fused into the kernel; their work stays
    // attributed to Other, while the count reduction's latency moved into
    // the fused SpMSpV collective above.
    other.compute += gamma * (frontier + 2.0 * next) / total_cores;
  };

  for (const auto& l : trace.peripheral_levels) {
    add_spmspv_level(l, out.peripheral_spmspv, out.peripheral_other);
  }
  for (const auto& l : trace.ordering_levels) {
    add_spmspv_level(l, out.ordering_spmspv, out.ordering_other);
    // SORTPERM fused into the ordering level (dist::cm_level_step): the
    // (bucket, degree, block) histogram rides the count superstep as an
    // all-rank exchange, then the element deal and the position scatter
    // are the two sort-side supersteps — crossings 4 and 5 of the level
    // collective; the terminal level (next == 0) skips the sort tail.
    const double next = static_cast<double>(l.next);
    out.ordering_sort.compute +=
        gamma * next * (1.0 + std::log2(next + 1.0)) / total_cores;
    if (l.next > 0) {
      out.ordering_sort.crossings += 2;
      if (P > 1) {
        out.ordering_sort.comm +=
            alpha * (P - 1) + beta * kCarryWords * next +    // packed carry
            alpha * (P - 1) + beta * kTupleWords * next / P + // element deal
            alpha * (P - 1) + beta * kEntryWords * next / P;  // positions home
      }
    }
  }

  // Per George-Liu candidate selection: the REDUCE argmin over the last
  // level (an allreduce: two crossings).
  out.peripheral_other.comm +=
      (P > 1 ? 2.0 * alpha * logP : 0.0) * trace.peripheral_argmin_rounds;
  // Per component: the unvisited-argmin seed scan (another allreduce).
  out.peripheral_other.compute +=
      gamma * static_cast<double>(trace.n) * trace.components / total_cores;
  out.peripheral_other.comm +=
      (P > 1 ? 2.0 * alpha * logP : 0.0) * trace.components;
  out.peripheral_other.crossings +=
      2 * static_cast<std::uint64_t>(trace.peripheral_argmin_rounds) +
      2 * static_cast<std::uint64_t>(trace.components);

  // Setup (degree computation) and the final reversal + label replication
  // (one allgatherv: two crossings).
  const double n = static_cast<double>(trace.n);
  out.ordering_other.compute += gamma * 3.0 * n / total_cores;
  if (P > 1) {
    out.ordering_other.comm += alpha * (q - 1) + beta * n / q;
  }
  out.ordering_other.crossings += 2;
  return out;
}

}  // namespace drcm::rcm
