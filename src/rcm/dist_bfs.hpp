// Distributed level-synchronous BFS: the inner do-while shared by the
// paper's Algorithm 3 (ordering) and Algorithm 4 (pseudo-peripheral
// search). One iteration = the fused level kernel (SET -> SPMSPV ->
// SELECT -> count in three barrier crossings; dist/level_kernel.hpp)
// followed by the SET that records the new level.
#pragma once

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "dist/spmspv.hpp"
#include "mpsim/stats.hpp"

namespace drcm::rcm {

struct DistBfsResult {
  index_t eccentricity = 0;       ///< depth of the last non-empty level
  index_t reached = 0;            ///< vertices visited (including the root)
  index_t last_width = 0;         ///< global size of the deepest level
  dist::DistSpVec last_frontier;  ///< the deepest non-empty level
};

/// Runs a full BFS from `root`, writing levels into the dense vector
/// `levels` (reset to kNoVertex first). `spmspv_phase` / `other_phase`
/// control the Figure-4 cost attribution (peripheral vs ordering); `acc`
/// selects the SpMSpV accumulator arm (default: degree-aware auto-select).
/// Collective.
DistBfsResult dist_bfs(const dist::DistSpMat& a, index_t root,
                       dist::DistDenseVec& levels, dist::ProcGrid2D& grid,
                       mps::Phase spmspv_phase, mps::Phase other_phase,
                       dist::SpmspvAccumulator acc =
                           dist::SpmspvAccumulator::kAuto);

}  // namespace drcm::rcm
