// Distributed level-synchronous BFS: the inner do-while shared by the
// paper's Algorithm 3 (ordering) and Algorithm 4 (pseudo-peripheral
// search). One iteration = SET (refresh frontier values) -> SPMSPV
// ((select2nd, min) neighbor expansion) -> SELECT (keep unvisited) ->
// SET (record levels) -> emptiness test (AllReduce).
#pragma once

#include "dist/dist_matrix.hpp"
#include "dist/dist_vector.hpp"
#include "mpsim/stats.hpp"

namespace drcm::rcm {

struct DistBfsResult {
  index_t eccentricity = 0;       ///< depth of the last non-empty level
  index_t reached = 0;            ///< vertices visited (including the root)
  dist::DistSpVec last_frontier;  ///< the deepest non-empty level
};

/// Runs a full BFS from `root`, writing levels into the dense vector
/// `levels` (reset to kNoVertex first). `spmspv_phase` / `other_phase`
/// control the Figure-4 cost attribution (peripheral vs ordering).
/// Collective.
DistBfsResult dist_bfs(const dist::DistSpMat& a, index_t root,
                       dist::DistDenseVec& levels, dist::ProcGrid2D& grid,
                       mps::Phase spmspv_phase, mps::Phase other_phase);

}  // namespace drcm::rcm
