#include "rcm/rcm_driver.hpp"

#include <algorithm>
#include <cstdlib>

#include "dist/primitives.hpp"
#include "dist/redistribute.hpp"
#include "rcm/dist_peripheral.hpp"
#include "solver/dist_cg.hpp"
#include "sparse/permute.hpp"

namespace drcm::rcm {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DRCM_THREADS")) {
    const int t = std::atoi(env);
    DRCM_CHECK(t >= 1, "DRCM_THREADS must be a positive thread count");
    return t;
  }
  return 1;
}

std::vector<index_t> dist_rcm(mps::Comm& world, const sparse::CsrMatrix& a,
                              const DistRcmOptions& options,
                              DistRcmStats* stats) {
  DRCM_CHECK(!a.has_self_loops(),
             "dist_rcm expects an adjacency pattern (strip_diagonal first)");
  const index_t n = a.n();

  // Load-balancing relabel: every rank derives the same permutation from
  // the shared seed (equivalent to broadcasting it; charged as such).
  std::vector<index_t> balance;
  const sparse::CsrMatrix* work = &a;
  sparse::CsrMatrix relabeled;
  if (options.load_balance && n > 0) {
    mps::PhaseScope scope(world, mps::Phase::kOther);
    balance = sparse::random_permutation(n, options.seed);
    relabeled = sparse::permute_symmetric(a, balance);
    work = &relabeled;
    world.charge_compute(static_cast<double>(a.nnz() + n));
  }

  dist::ProcGrid2D grid(world);
  dist::DistSpMat mat(grid, *work);
  dist::DistDenseVec degrees = mat.degrees(grid);
  dist::DistDenseVec labels(mat.vec_dist(), grid, kNoVertex);

  DistRcmStats local_stats;
  index_t next_label = 0;
  while (next_label < n) {
    // Component seed: unvisited vertex of minimum degree, ties to id.
    index_t seed = kNoVertex;
    {
      mps::PhaseScope scope(world, mps::Phase::kPeripheralOther);
      seed = dist::argmin_unvisited(labels, degrees, world).second;
    }
    DRCM_CHECK(seed != kNoVertex, "unlabeled vertices must exist");
    const auto peripheral = dist_pseudo_peripheral(mat, degrees, seed, grid,
                                                   options.accumulator);
    local_stats.components += 1;
    local_stats.peripheral_bfs_sweeps += peripheral.bfs_sweeps;
    next_label = dist_cm_component(mat, degrees, labels, peripheral.vertex,
                                   next_label, grid, options.sort,
                                   options.accumulator,
                                   options.fuse_ordering);
  }

  // Reverse (RCM = reversed CM) and replicate.
  std::vector<index_t> global;
  {
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    for (index_t g = labels.lo(); g < labels.hi(); ++g) {
      labels.set(g, n - 1 - labels.get(g));
    }
    world.charge_compute(static_cast<double>(labels.local_size()));
    global = labels.to_global(world);
  }

  // Map back through the load-balancing permutation: the label of original
  // vertex v is the label its relabeled alias balance[v] received.
  if (!balance.empty()) {
    mps::PhaseScope scope(world, mps::Phase::kOther);
    std::vector<index_t> original(static_cast<std::size_t>(n));
    for (index_t v = 0; v < n; ++v) {
      original[static_cast<std::size_t>(v)] =
          global[static_cast<std::size_t>(balance[static_cast<std::size_t>(v)])];
    }
    global = std::move(original);
    world.charge_compute(static_cast<double>(n));
  }

  if (stats) *stats = local_stats;
  return global;
}

OrderedSolveResult ordered_solve(mps::Comm& world, const sparse::CsrMatrix& a,
                                 std::span<const double> b, bool precondition,
                                 const DistRcmOptions& rcm_options,
                                 const solver::CgOptions& cg_options,
                                 const sparse::CsrMatrix* adjacency) {
  DRCM_CHECK(a.has_values(), "ordered_solve needs a solver matrix with values");
  DRCM_CHECK(b.size() == static_cast<std::size_t>(a.n()), "rhs size mismatch");
  const index_t n = a.n();
  const int p = world.size();

  dist::ProcGrid2D grid(world);

  OrderedSolveResult out;
  // The ordering runs on the self-loop-free adjacency pattern. Callers
  // that know it (run_ordered_solve strips once outside the ranks) pass
  // it in; otherwise each rank strips its own transient copy.
  if (adjacency) {
    out.labels = dist_rcm(world, *adjacency, rcm_options);
  } else {
    out.labels = dist_rcm(world, a.strip_diagonal(), rcm_options);
  }

  // Each distributed stage lives exactly as long as the next one needs it,
  // so the resident ledger the stages record matches what is actually
  // live: the 2D input block dies after the redistribution, the permuted
  // 2D block after the 1D re-owning.
  dist::RowBlockCsr block;
  {
    const auto permuted = [&] {
      // The value-carrying 2D decomposition, built from the
      // pre-distribution input ONCE; every later stage works on
      // distributed blocks only. Permuting in place in parallel (the
      // paper's conclusion): the values ride the redistribution alltoallv
      // with their coordinates.
      dist::DistSpMat mat(grid, a);
      world.note_resident(mat.resident_elements());
      return dist::redistribute_permuted(mat, out.labels, grid);
    }();

    // Bandwidth of the permuted system, computed distributively: each
    // local entry's |row - col| is a lower bound and every entry lives
    // somewhere.
    index_t local_bw = 0;
    for (index_t lc = 0; lc < permuted.local_cols(); ++lc) {
      for (const index_t lr : permuted.column(lc)) {
        local_bw = std::max(local_bw, std::abs((lr + permuted.row_lo()) -
                                               (lc + permuted.col_lo())));
      }
    }
    out.permuted_bandwidth = world.allreduce(
        local_bw, [](index_t x, index_t y) { return std::max(x, y); });

    // 2D -> 1D re-owning: the permuted matrix becomes the solver's
    // contiguous row blocks without ever being gathered.
    block = dist::to_row_blocks(permuted, world);
  }

  // My slab of the permuted rhs, filled from the replicated b through the
  // inverse labeling (both O(n): within the per-rank budget).
  std::vector<index_t> inverse(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    inverse[static_cast<std::size_t>(out.labels[static_cast<std::size_t>(v)])] = v;
  }
  std::vector<double> b_local(static_cast<std::size_t>(block.local_rows()));
  for (index_t g = block.lo; g < block.hi; ++g) {
    b_local[static_cast<std::size_t>(g - block.lo)] =
        b[static_cast<std::size_t>(inverse[static_cast<std::size_t>(g)])];
  }
  world.note_resident(block.resident_elements() +
                      3 * static_cast<std::uint64_t>(n));
  world.charge_compute(static_cast<double>(2 * n + block.local_rows()));

  std::vector<double> x_perm;
  out.cg =
      solver::dist_pcg(world, block, b_local, x_perm, precondition, cg_options);

  // Back to the original numbering.
  out.x.resize(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    out.x[static_cast<std::size_t>(v)] =
        x_perm[static_cast<std::size_t>(out.labels[static_cast<std::size_t>(v)])];
  }
  world.charge_compute(static_cast<double>(n));

  // The scalability contract the gather-based path violates. The solver
  // stage is O(nnz/p + n) per rank; the 2D permuted INTERMEDIATE is
  // Theta(nnz/q) on the q diagonal blocks, because a banded matrix
  // concentrates there (q = sqrt(p) — still a vanishing fraction of nnz,
  // where the gather path pins n + 2*nnz on every rank; fusing the
  // permute with the 1D re-owning would cut the transient to O(nnz/p),
  // recorded as a ROADMAP follow-up). Constants cover the 3-wide
  // (row, col, value) in-flight triples and the split solver system.
  const auto peak = world.stats().peak_resident_elements();
  const auto budget = 8 * static_cast<std::uint64_t>(a.nnz()) /
                          static_cast<std::uint64_t>(grid.q()) +
                      10 * static_cast<std::uint64_t>(n) + 1024;
  DRCM_CHECK(peak <= budget,
             "ordered_solve per-rank resident peak exceeded O(nnz/q + n)");
  (void)p;
  return out;
}

OrderedSolveRun run_ordered_solve(int nranks, const sparse::CsrMatrix& a,
                                  std::span<const double> b, bool precondition,
                                  const DistRcmOptions& rcm_options,
                                  const solver::CgOptions& cg_options,
                                  const mps::MachineParams& machine) {
  // Strip the adjacency pattern ONCE outside the ranks: simulated ranks
  // share an address space, and p transient O(nnz) copies would otherwise
  // be built concurrently inside the bodies.
  const auto adjacency = a.strip_diagonal();
  OrderedSolveRun run;
  run.report = mps::Runtime::run(
      nranks,
      [&](mps::Comm& world) {
        auto result = ordered_solve(world, a, b, precondition, rcm_options,
                                    cg_options, &adjacency);
        if (world.rank() == 0) run.result = std::move(result);
      },
      machine, resolve_threads(rcm_options.threads));
  return run;
}

DistRcmRun run_dist_rcm(int nranks, const sparse::CsrMatrix& a,
                        const DistRcmOptions& options,
                        const mps::MachineParams& machine) {
  DistRcmRun run;
  run.report = mps::Runtime::run(
      nranks,
      [&](mps::Comm& world) {
        DistRcmStats stats;
        auto labels = dist_rcm(world, a, options, &stats);
        if (world.rank() == 0) {
          run.labels = std::move(labels);
          run.stats = stats;
        }
      },
      machine, resolve_threads(options.threads));
  return run;
}

}  // namespace drcm::rcm
