#include "rcm/rcm_driver.hpp"

#include <cstdlib>

#include "dist/primitives.hpp"
#include "rcm/dist_peripheral.hpp"
#include "sparse/permute.hpp"

namespace drcm::rcm {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DRCM_THREADS")) {
    const int t = std::atoi(env);
    DRCM_CHECK(t >= 1, "DRCM_THREADS must be a positive thread count");
    return t;
  }
  return 1;
}

std::vector<index_t> dist_rcm(mps::Comm& world, const sparse::CsrMatrix& a,
                              const DistRcmOptions& options,
                              DistRcmStats* stats) {
  DRCM_CHECK(!a.has_self_loops(),
             "dist_rcm expects an adjacency pattern (strip_diagonal first)");
  const index_t n = a.n();

  // Load-balancing relabel: every rank derives the same permutation from
  // the shared seed (equivalent to broadcasting it; charged as such).
  std::vector<index_t> balance;
  const sparse::CsrMatrix* work = &a;
  sparse::CsrMatrix relabeled;
  if (options.load_balance && n > 0) {
    mps::PhaseScope scope(world, mps::Phase::kOther);
    balance = sparse::random_permutation(n, options.seed);
    relabeled = sparse::permute_symmetric(a, balance);
    work = &relabeled;
    world.charge_compute(static_cast<double>(a.nnz() + n));
  }

  dist::ProcGrid2D grid(world);
  dist::DistSpMat mat(grid, *work);
  dist::DistDenseVec degrees = mat.degrees(grid);
  dist::DistDenseVec labels(mat.vec_dist(), grid, kNoVertex);

  DistRcmStats local_stats;
  index_t next_label = 0;
  while (next_label < n) {
    // Component seed: unvisited vertex of minimum degree, ties to id.
    index_t seed = kNoVertex;
    {
      mps::PhaseScope scope(world, mps::Phase::kPeripheralOther);
      seed = dist::argmin_unvisited(labels, degrees, world).second;
    }
    DRCM_CHECK(seed != kNoVertex, "unlabeled vertices must exist");
    const auto peripheral = dist_pseudo_peripheral(mat, degrees, seed, grid,
                                                   options.accumulator);
    local_stats.components += 1;
    local_stats.peripheral_bfs_sweeps += peripheral.bfs_sweeps;
    next_label = dist_cm_component(mat, degrees, labels, peripheral.vertex,
                                   next_label, grid, options.sort,
                                   options.accumulator,
                                   options.fuse_ordering);
  }

  // Reverse (RCM = reversed CM) and replicate.
  std::vector<index_t> global;
  {
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    for (index_t g = labels.lo(); g < labels.hi(); ++g) {
      labels.set(g, n - 1 - labels.get(g));
    }
    world.charge_compute(static_cast<double>(labels.local_size()));
    global = labels.to_global(world);
  }

  // Map back through the load-balancing permutation: the label of original
  // vertex v is the label its relabeled alias balance[v] received.
  if (!balance.empty()) {
    mps::PhaseScope scope(world, mps::Phase::kOther);
    std::vector<index_t> original(static_cast<std::size_t>(n));
    for (index_t v = 0; v < n; ++v) {
      original[static_cast<std::size_t>(v)] =
          global[static_cast<std::size_t>(balance[static_cast<std::size_t>(v)])];
    }
    global = std::move(original);
    world.charge_compute(static_cast<double>(n));
  }

  if (stats) *stats = local_stats;
  return global;
}

DistRcmRun run_dist_rcm(int nranks, const sparse::CsrMatrix& a,
                        const DistRcmOptions& options,
                        const mps::MachineParams& machine) {
  DistRcmRun run;
  run.report = mps::Runtime::run(
      nranks,
      [&](mps::Comm& world) {
        DistRcmStats stats;
        auto labels = dist_rcm(world, a, options, &stats);
        if (world.rank() == 0) {
          run.labels = std::move(labels);
          run.stats = stats;
        }
      },
      machine, resolve_threads(options.threads));
  return run;
}

}  // namespace drcm::rcm
