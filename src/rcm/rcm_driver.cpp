#include "rcm/rcm_driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <functional>
#include <string>

#include "dist/level_kernel.hpp"
#include "dist/primitives.hpp"
#include "dist/redistribute.hpp"
#include "order/gps.hpp"
#include "order/sloan.hpp"
#include "rcm/dist_bfs.hpp"
#include "rcm/dist_peripheral.hpp"
#include "solver/dist_cg.hpp"
#include "sparse/permute.hpp"

namespace drcm::rcm {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DRCM_THREADS")) {
    const int t = std::atoi(env);
    DRCM_CHECK(t >= 1, "DRCM_THREADS must be a positive thread count");
    return t;
  }
  return 1;
}

namespace {

/// Derives the load-balancing relabel (shared-seed, equivalent to
/// broadcasting it; charged as such) and repoints `work` at the relabeled
/// matrix. `balance` stays empty when no relabel applies.
void balance_input(mps::Comm& world, const sparse::CsrMatrix& a,
                   const DistRcmOptions& options, std::vector<index_t>& balance,
                   sparse::CsrMatrix& relabeled,
                   const sparse::CsrMatrix*& work) {
  work = &a;
  if (options.load_balance && a.n() > 0) {
    mps::PhaseScope scope(world, mps::Phase::kOther);
    balance = sparse::random_permutation(a.n(), options.seed);
    relabeled = sparse::permute_symmetric(a, balance);
    work = &relabeled;
    world.charge_compute(static_cast<double>(a.nnz() + a.n()));
  }
}

/// The distributed ordering proper: decompose `work` onto `grid`, run the
/// per-component peripheral search + CM labeling, reverse. Returns the
/// SHARDED label vector in the WORK numbering — O(n/p) per rank, never
/// replicated here; the callers decide whether to gather (dist_rcm) or
/// keep it distributed (dist_rcm_sharded).
dist::DistDenseVec dist_rcm_levels(mps::Comm& world, dist::ProcGrid2D& grid,
                                   const sparse::CsrMatrix& work,
                                   const DistRcmOptions& options,
                                   DistRcmStats* stats,
                                   OrderingRecipe* recipe = nullptr) {
  const index_t n = work.n();
  dist::DistSpMat mat(grid, work);
  dist::DistDenseVec degrees = mat.degrees(grid);
  dist::DistDenseVec labels(mat.vec_dist(), grid, kNoVertex);

  DistRcmStats local_stats;
  index_t next_label = 0;
  while (next_label < n) {
    // Component seed: unvisited vertex of minimum degree, ties to id.
    index_t seed = kNoVertex;
    {
      mps::PhaseScope scope(world, mps::Phase::kPeripheralOther);
      seed = dist::argmin_unvisited(labels, degrees, world).second;
    }
    DRCM_CHECK(seed != kNoVertex, "unlabeled vertices must exist");
    const auto peripheral =
        dist_pseudo_peripheral(mat, degrees, seed, grid, options.accumulator,
                               options.ordering.peripheral_mode);
    local_stats.components += 1;
    local_stats.peripheral_bfs_sweeps += peripheral.bfs_sweeps;
    local_stats.ordering_levels += peripheral.eccentricity + 1;
    ComponentRecipe cr;
    cr.seed = seed;
    cr.root = peripheral.vertex;
    next_label = dist_cm_component(mat, degrees, labels, peripheral.vertex,
                                   next_label, grid, options.sort,
                                   options.accumulator, options.fuse_ordering,
                                   recipe ? &cr.level_starts : nullptr);
    if (recipe) {
      cr.level_starts.push_back(next_label);  // one-past-the-end sentinel
      recipe->components.push_back(std::move(cr));
    }
  }

  // Reverse in place (RCM = reversed CM), still sharded.
  {
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    for (index_t g = labels.lo(); g < labels.hi(); ++g) {
      labels.set(g, n - 1 - labels.get(g));
    }
    world.charge_compute(static_cast<double>(labels.local_size()));
  }

  if (stats) *stats = local_stats;
  return labels;
}

/// The kSloan arm: level-synchronous Sloan over the same fused level
/// kernel, bit-identical to order::sloan_levels (the serial twin). Per
/// component: distributed pseudo-peripheral s, REDUCE of s's last BFS
/// level to the end vertex e (min degree, ties id — the same rule serial
/// Sloan applies), one more BFS for distances to e, then CM-style level
/// expansion from s with the static Sloan key substituted for the degree
/// as the SORTPERM ranking key. No reversal (Sloan numbers front-to-back).
dist::DistDenseVec dist_sloan_levels(mps::Comm& world, dist::ProcGrid2D& grid,
                                     const sparse::CsrMatrix& work,
                                     const DistRcmOptions& options,
                                     DistRcmStats* stats) {
  const index_t n = work.n();
  dist::DistSpMat mat(grid, work);
  dist::DistDenseVec degrees = mat.degrees(grid);
  dist::DistDenseVec labels(mat.vec_dist(), grid, kNoVertex);
  dist::DistDenseVec keys(mat.vec_dist(), grid, 0);
  dist::DistDenseVec levels(mat.vec_dist(), grid, kNoVertex);
  const order::SloanOptions weights{};  // w1 = 2, w2 = 1, as serial

  DistRcmStats local_stats;
  index_t next_label = 0;
  while (next_label < n) {
    index_t seed = kNoVertex;
    {
      mps::PhaseScope scope(world, mps::Phase::kPeripheralOther);
      seed = dist::argmin_unvisited(labels, degrees, world).second;
    }
    DRCM_CHECK(seed != kNoVertex, "unlabeled vertices must exist");
    const auto peripheral =
        dist_pseudo_peripheral(mat, degrees, seed, grid, options.accumulator,
                               options.ordering.peripheral_mode);
    local_stats.components += 1;
    local_stats.peripheral_bfs_sweeps += peripheral.bfs_sweeps;
    local_stats.ordering_levels += peripheral.eccentricity + 1;
    const index_t s = peripheral.vertex;

    // Pseudo-diameter end vertex e: REDUCE(last level of s's BFS, D).
    auto bfs_s = dist_bfs(mat, s, levels, grid, mps::Phase::kPeripheralSpmspv,
                          mps::Phase::kPeripheralOther, options.accumulator);
    index_t e = kNoVertex;
    {
      mps::PhaseScope scope(world, mps::Phase::kPeripheralOther);
      e = dist::reduce_argmin(bfs_s.last_frontier, degrees, world).second;
    }
    DRCM_CHECK(e != kNoVertex, "last BFS level cannot be empty");
    const auto bfs_e =
        dist_bfs(mat, e, levels, grid, mps::Phase::kPeripheralSpmspv,
                 mps::Phase::kPeripheralOther, options.accumulator);

    // Static key = w1*(deg+1) + w2*(ecc(e) - dist(v, e)), non-negative and
    // < 3n with the default weights — within the widened ranking-key bound
    // the SORTPERM receive-path checks admit. Owned writes only; vertices
    // of other components keep stale keys that no expansion ever reads.
    {
      mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
      for (index_t g = keys.lo(); g < keys.hi(); ++g) {
        const index_t lev = levels.get(g);
        if (lev == kNoVertex) continue;
        keys.set(g, weights.w1 * (degrees.get(g) + 1) +
                        weights.w2 * (bfs_e.eccentricity - lev));
      }
      world.charge_compute(static_cast<double>(keys.local_size()));
    }
    next_label = dist_cm_component(mat, keys, labels, s, next_label, grid,
                                   options.sort, options.accumulator,
                                   options.fuse_ordering, nullptr);
  }
  if (stats) *stats = local_stats;
  return labels;  // no reversal
}

/// The kGps arm, v1: each rank runs the replicated serial GPS on the
/// (balanced) pattern, charged as compute under the ordering ledger. An
/// honest placeholder — GPS's combined-level-structure phase has no
/// distributed formulation here yet, so no crossing count is claimed.
std::vector<index_t> gps_replicated(mps::Comm& world,
                                    const sparse::CsrMatrix& work) {
  mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
  auto labels = order::gps(work);
  // Every rank pays the full serial walk — that is what "replicated serial
  // arm" costs, and the ledger should say so.
  world.charge_compute(static_cast<double>(work.nnz() + work.n()));
  return labels;
}

}  // namespace

std::vector<index_t> dist_order(mps::Comm& world, const sparse::CsrMatrix& a,
                                const DistRcmOptions& options,
                                DistRcmStats* stats, OrderingRecipe* recipe) {
  DRCM_CHECK(!a.has_self_loops(),
             "dist_order expects an adjacency pattern (strip_diagonal first)");
  const index_t n = a.n();

  // Resolve kAuto BEFORE any collective: the selector is a deterministic
  // function of the replicated pattern, so every rank lands on the same
  // concrete arm without communicating.
  DistRcmOptions resolved = options;
  if (resolved.ordering.algorithm == OrderingAlgorithm::kAuto) {
    mps::PhaseScope scope(world, mps::Phase::kOther);
    resolved.ordering.algorithm = select_ordering(a).algorithm;
    world.charge_compute(static_cast<double>(a.nnz() + a.n()));
  }
  DRCM_CHECK(recipe == nullptr ||
                 resolved.ordering.algorithm == OrderingAlgorithm::kRcm,
             "ordering recipes are captured on the kRcm arm only "
             "(Sloan/GPS orderings are not repair-eligible in v1)");

  std::vector<index_t> balance;
  const sparse::CsrMatrix* work = nullptr;
  sparse::CsrMatrix relabeled;
  balance_input(world, a, resolved, balance, relabeled, work);

  DistRcmStats local_stats;
  std::vector<index_t> global;
  if (resolved.ordering.algorithm == OrderingAlgorithm::kGps) {
    global = gps_replicated(world, *work);
  } else {
    dist::ProcGrid2D grid(world);
    dist::DistDenseVec labels =
        resolved.ordering.algorithm == OrderingAlgorithm::kSloan
            ? dist_sloan_levels(world, grid, *work, resolved, &local_stats)
            : dist_rcm_levels(world, grid, *work, resolved, &local_stats,
                              recipe);
    // Replicate.
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    global = labels.to_global(world);
  }
  local_stats.algorithm = resolved.ordering.algorithm;

  // Map back through the load-balancing permutation: the label of original
  // vertex v is the label its relabeled alias balance[v] received.
  if (!balance.empty()) {
    mps::PhaseScope scope(world, mps::Phase::kOther);
    std::vector<index_t> original(static_cast<std::size_t>(n));
    for (index_t v = 0; v < n; ++v) {
      original[static_cast<std::size_t>(v)] =
          global[static_cast<std::size_t>(balance[static_cast<std::size_t>(v)])];
    }
    global = std::move(original);
    world.charge_compute(static_cast<double>(n));
  }

  if (stats) *stats = local_stats;
  return global;
}

std::vector<index_t> dist_rcm(mps::Comm& world, const sparse::CsrMatrix& a,
                              const DistRcmOptions& options,
                              DistRcmStats* stats, OrderingRecipe* recipe) {
  // The name is the contract: always RCM, whatever the spec says (the
  // peripheral_mode knob is still honored — it tunes RCM, not replaces it).
  DistRcmOptions pinned = options;
  pinned.ordering.algorithm = OrderingAlgorithm::kRcm;
  return dist_order(world, a, pinned, stats, recipe);
}

dist::DistDenseVec dist_rcm_sharded(mps::Comm& world, dist::ProcGrid2D& grid,
                                    const sparse::CsrMatrix& a,
                                    const DistRcmOptions& options,
                                    DistRcmStats* stats) {
  DRCM_CHECK(!a.has_self_loops(),
             "dist_rcm expects an adjacency pattern (strip_diagonal first)");
  const index_t n = a.n();

  std::vector<index_t> balance;
  const sparse::CsrMatrix* work = nullptr;
  sparse::CsrMatrix relabeled;
  balance_input(world, a, options, balance, relabeled, work);

  dist::DistDenseVec labels = dist_rcm_levels(world, grid, *work, options, stats);
  if (balance.empty()) return labels;

  // Map back through the load-balancing permutation WITHOUT replicating:
  // original vertex v's label lives on the owner of its alias balance[v],
  // and v's shard owner is arithmetic, so ONE alltoallv re-owns the whole
  // vector. (`balance` itself is a shared-seed pre-distribution fixture,
  // like the replicated input matrix — the ledger tracks pipeline state,
  // and the sharded result keeps that state O(n/p).)
  mps::PhaseScope scope(world, mps::Phase::kOther);
  const auto vdist = labels.dist();
  std::vector<std::vector<dist::VecEntry>> send(
      static_cast<std::size_t>(world.size()));
  for (index_t v = 0; v < n; ++v) {
    const index_t u = balance[static_cast<std::size_t>(v)];
    if (!labels.owns(u)) continue;
    send[static_cast<std::size_t>(vdist.owner_rank(v))].push_back(
        dist::VecEntry{v, labels.get(u)});
  }
  const auto recv = world.alltoallv(send);
  dist::DistDenseVec out(vdist, grid, kNoVertex);
  DRCM_CHECK(recv.size() == static_cast<std::size_t>(out.local_size()),
             "relabel re-owning must deliver every element exactly once");
  for (const auto& e : recv) {
    // Receive-path range check (always on): set() indexes the owned slab.
    DRCM_CHECK(out.owns(e.idx), "received label outside the owned range");
    out.set(e.idx, e.val);
  }
  world.charge_compute(static_cast<double>(n) +
                       static_cast<double>(recv.size()));
  world.note_resident(6 * static_cast<std::uint64_t>(out.local_size()));
  return out;
}

RepairPlan plan_repair(const OrderingRecipe& recipe,
                       const std::vector<index_t>& cached_labels,
                       const std::vector<std::pair<index_t, index_t>>&
                           changed_rows,
                       index_t n) {
  RepairPlan plan;
  const auto ncomp = recipe.components.size();
  if (ncomp == 0 || cached_labels.size() != static_cast<std::size_t>(n)) {
    return plan;  // nothing to repair against
  }
  plan.components.resize(ncomp);

  // Component lookup by CM label: components tile [0, n) in discovery
  // order, so their lo() values are ascending.
  std::vector<index_t> comp_lo(ncomp);
  for (std::size_t k = 0; k < ncomp; ++k) {
    comp_lo[k] = recipe.components[k].lo();
  }

  // Shallowest affected BFS level per component (kNoVertex = untouched).
  std::vector<index_t> min_level(ncomp, kNoVertex);
  for (const auto& [lo, hi] : changed_rows) {
    DRCM_CHECK(0 <= lo && lo <= hi && hi <= n, "changed row range out of range");
    for (index_t v = lo; v < hi; ++v) {
      const index_t cm = n - 1 - cached_labels[static_cast<std::size_t>(v)];
      const auto k = static_cast<std::size_t>(
          std::upper_bound(comp_lo.begin(), comp_lo.end(), cm) -
          comp_lo.begin() - 1);
      const auto& starts = recipe.components[k].level_starts;
      const auto level = static_cast<index_t>(
          std::upper_bound(starts.begin(), starts.end(), cm) -
          starts.begin() - 1);
      if (min_level[k] == kNoVertex || level < min_level[k]) {
        min_level[k] = level;
      }
    }
  }

  // Crossing arithmetic (see header): a reused component skips at least
  // its peripheral search (>= 3 crossings) and terminal level step (3); a
  // cone skips 5 per non-terminal step but adds the 2-crossing membership
  // allreduce; a recompute only adds the membership allreduce.
  for (std::size_t k = 0; k < ncomp; ++k) {
    auto& cp = plan.components[k];
    if (min_level[k] == kNoVertex) {
      cp.action = RepairAction::kReuse;
      plan.crossing_margin += 6;
    } else if (min_level[k] >= 2) {
      cp.action = RepairAction::kCone;
      cp.cone_level = min_level[k];
      plan.level_steps_skipped += min_level[k] - 1;
      plan.crossing_margin += 5 * (min_level[k] - 1) - 2;
    } else {
      cp.action = RepairAction::kRecompute;
      plan.crossing_margin -= 2;
    }
  }
  plan.profitable = plan.crossing_margin > 0;
  return plan;
}

RepairResult dist_rcm_repair(dist::ProcGrid2D& grid,
                             const sparse::CsrMatrix& a,
                             const std::vector<index_t>& cached_labels,
                             const OrderingRecipe& recipe,
                             const RepairPlan& plan,
                             const DistRcmOptions& options) {
  DRCM_CHECK(!options.load_balance,
             "repair requires an unbalanced ordering: the load-balance "
             "relabel would decouple the recipe numbering from the input");
  DRCM_CHECK(options.ordering.algorithm == OrderingAlgorithm::kRcm,
             "repair is RCM-only in v1: Sloan/GPS runs capture no recipe, "
             "so there is nothing sound to splice against");
  DRCM_CHECK(!a.has_self_loops(),
             "dist_rcm_repair expects an adjacency pattern");
  const index_t n = a.n();
  DRCM_CHECK(cached_labels.size() == static_cast<std::size_t>(n),
             "cached labels must cover every vertex");
  DRCM_CHECK(plan.components.size() == recipe.components.size(),
             "repair plan must match the recipe it was built from");
  auto& world = grid.world();

  RepairResult out;
  if (n == 0) {
    out.ok = true;
    return out;
  }

  // Same decomposition a cold run pays for: the delta'd pattern on the
  // 2D grid plus its NEW degree vector (degrees of delta vertices changed;
  // the ranking keys must be the new ones for bit-identity with cold).
  dist::DistSpMat mat(grid, a);
  dist::DistDenseVec degrees = mat.degrees(grid);
  dist::DistDenseVec labels(mat.vec_dist(), grid, kNoVertex);

  // cached CM label of vertex v (the recipe's label space).
  const auto cm_cached = [&](index_t v) {
    return n - 1 - cached_labels[static_cast<std::size_t>(v)];
  };

  // Copies the cached CM labels of owned vertices whose cached label lies
  // in [lo, hi) — the splice of untouched levels. Local.
  const auto splice_cached = [&](index_t lo, index_t hi) {
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    for (index_t g = labels.lo(); g < labels.hi(); ++g) {
      const index_t cm = cm_cached(g);
      if (cm >= lo && cm < hi) labels.set(g, cm);
    }
    world.charge_compute(static_cast<double>(labels.local_size()));
  };

  // True iff some vertex labeled into [comp_lo, comp_hi) does not belong
  // to that cached component — a pattern delta merged components, so the
  // cone (or recompute) absorbed foreign vertices and the splice is
  // unsound. Collective (one allreduce, charged to the ordering ledger —
  // repair's honesty tax).
  const auto membership_violated = [&](index_t comp_lo, index_t comp_hi) {
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    index_t bad = 0;
    for (index_t g = labels.lo(); g < labels.hi(); ++g) {
      const index_t l = labels.get(g);
      if (l >= comp_lo && l < comp_hi) {
        const index_t cm = cm_cached(g);
        if (cm < comp_lo || cm >= comp_hi) bad = 1;
      }
    }
    world.charge_compute(static_cast<double>(labels.local_size()));
    return world.allreduce(
               bad, [](index_t x, index_t y) { return std::max(x, y); }) != 0;
  };

  index_t next_label = 0;
  for (std::size_t k = 0; k < recipe.components.size(); ++k) {
    const auto& cr = recipe.components[k];
    const auto& cp = plan.components[k];
    const index_t comp_lo = cr.lo();
    const index_t comp_hi = cr.hi();
    DRCM_CHECK(comp_lo == next_label, "recipe components must tile [0, n)");

    // The seed argmin a cold run would perform, on the NEW degrees. If it
    // does not land in the expected cached component, the delta reordered
    // component discovery (a changed degree now wins the argmin) and the
    // whole cached label space is stale — fall back to cold.
    index_t seed = kNoVertex;
    {
      mps::PhaseScope scope(world, mps::Phase::kPeripheralOther);
      seed = dist::argmin_unvisited(labels, degrees, world).second;
    }
    DRCM_CHECK(seed != kNoVertex, "unlabeled vertices must exist");
    const index_t cm_seed = cm_cached(seed);
    if (cm_seed < comp_lo || cm_seed >= comp_hi) {
      out.reason = "component discovery order changed";
      return out;
    }

    // A clean component whose seed matches needs no peripheral search: the
    // component's edges are untouched, so the search is a memoized
    // deterministic computation ending at the cached root. Everything
    // else re-runs it on the new pattern, exactly like cold.
    // (For a clean component the seed provably cannot differ once the
    // range check above passed — its degrees are unchanged, so the cached
    // winner still wins — but the degrade path below keeps repair honest
    // rather than trusting that proof at runtime.)
    RepairAction action = cp.action;
    index_t root = cr.root;
    if (!(action == RepairAction::kReuse && seed == cr.seed)) {
      const auto peripheral =
          dist_pseudo_peripheral(mat, degrees, seed, grid, options.accumulator,
                                 options.ordering.peripheral_mode);
      root = peripheral.vertex;
      if (root != cr.root) {
        // The delta moved the peripheral root: cached levels are the
        // wrong BFS tree, so this component recomputes from the new root
        // (still bit-identical to cold, which would do the same).
        action = RepairAction::kRecompute;
      } else if (action == RepairAction::kReuse) {
        // Different seed, same root on an untouched component: the level
        // structure is unchanged, the splice still applies.
      }
    }

    ComponentRecipe ncr;
    ncr.seed = seed;
    ncr.root = root;

    if (action == RepairAction::kReuse) {
      splice_cached(comp_lo, comp_hi);
      next_label = comp_hi;
      ncr.level_starts = cr.level_starts;
      out.reused += 1;
    } else if (action == RepairAction::kCone) {
      const index_t d = cp.cone_level;
      DRCM_CHECK(d >= 2 && d < cr.levels(),
                 "cone level must leave at least the root level cached "
                 "and at least one level to re-run");
      // Splice levels < d from the cache, rebuild the level-(d-1)
      // frontier from the spliced labels, and resume the fused ordering
      // loop mid-flight — the cone-restricted entry point.
      splice_cached(comp_lo, cr.level_starts[static_cast<std::size_t>(d)]);
      const index_t flo = cr.level_starts[static_cast<std::size_t>(d - 1)];
      const index_t fhi = cr.level_starts[static_cast<std::size_t>(d)];
      auto frontier = dist::frontier_from_label_range(
          labels, flo, fhi, grid, mps::Phase::kOrderingOther);
      std::vector<index_t> cone_starts;
      next_label = dist_cm_cone(mat, degrees, labels, std::move(frontier),
                                fhi - flo, fhi, grid, options.sort,
                                options.accumulator, options.fuse_ordering,
                                &cone_starts, /*label_cap=*/comp_hi);
      if (next_label != comp_hi) {
        out.reason = next_label > comp_hi
                         ? "cone escaped its component (pattern merge)"
                         : "cone exhausted early (pattern split)";
        return out;
      }
      if (membership_violated(comp_lo, comp_hi)) {
        out.reason = "cone absorbed foreign vertices (pattern merge)";
        return out;
      }
      ncr.level_starts.assign(cr.level_starts.begin(),
                              cr.level_starts.begin() + d);
      ncr.level_starts.insert(ncr.level_starts.end(), cone_starts.begin(),
                              cone_starts.end());
      ncr.level_starts.push_back(comp_hi);
      out.coned += 1;
      out.level_steps_skipped += d - 1;
    } else {
      next_label = dist_cm_component(mat, degrees, labels, root, comp_lo,
                                     grid, options.sort, options.accumulator,
                                     options.fuse_ordering,
                                     &ncr.level_starts);
      if (next_label != comp_hi) {
        out.reason = "recomputed component changed size (split or merge)";
        return out;
      }
      if (cp.action != RepairAction::kReuse &&
          membership_violated(comp_lo, comp_hi)) {
        out.reason = "recomputed component absorbed foreign vertices";
        return out;
      }
      ncr.level_starts.push_back(comp_hi);
      out.recomputed += 1;
    }
    out.recipe.components.push_back(std::move(ncr));
  }
  DRCM_CHECK(next_label == n, "repair must label every vertex");

  // Reverse in place (RCM = reversed CM), then replicate — the same tail
  // as the cold path, charged to the same phases.
  {
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    for (index_t g = labels.lo(); g < labels.hi(); ++g) {
      labels.set(g, n - 1 - labels.get(g));
    }
    world.charge_compute(static_cast<double>(labels.local_size()));
  }
  {
    mps::PhaseScope scope(world, mps::Phase::kOrderingOther);
    out.labels = labels.to_global(world);
  }
  out.ok = true;
  return out;
}

namespace {

/// Per-rank resident budget of the one-shot pipeline: O(nnz/p + n/p).
/// Terms, largest first: this rank's balanced-2D input block consumed as
/// coordinate triples plus its staged sends (6 nnz/p), the received 1D
/// triples alongside them during the exchange (~3 nnz/p), the rebuilt row
/// block and the split solver system (~8 nnz/p), rhs/solution/recurrence
/// slabs and the halo (O(n/p) each). The constants are deliberately loose
/// — 2D block skew before the load-balancing relabel, halo width — but the
/// formula contains NO O(n) or O(nnz/q) term: that absence is the contract
/// this budget enforces. (The replicated pre-distribution fixtures — and,
/// on this replicated-label path, the labels — live OUTSIDE the ledger;
/// DistRcmOptions::sharded_labels moves the labels inside it too, under
/// the slightly wider sharded budget below.)
std::uint64_t resident_budget_one_shot(nnz_t nnz, int p, index_t n) {
  return 24 * static_cast<std::uint64_t>(nnz) / static_cast<std::uint64_t>(p) +
         48 * static_cast<std::uint64_t>(n) / static_cast<std::uint64_t>(p) +
         4096;
}

/// Legacy budget of the two-hop path, kept callable for the before/after
/// ledger comparison: the permuted-2D intermediate concentrates Θ(nnz/q)
/// on the q diagonal blocks of the banded output, and the historic stage-3
/// rhs scatter held O(n) replicated state. `q` is the grid side.
std::uint64_t resident_budget_two_hop(nnz_t nnz, int q, index_t n) {
  return 8 * static_cast<std::uint64_t>(nnz) / static_cast<std::uint64_t>(q) +
         10 * static_cast<std::uint64_t>(n) + 1024;
}

/// Budget of the sharded-label pipeline: the one-shot budget plus the
/// O(n/q) label windows (and their in-flight exchange doubles) the
/// two-sided relabel lookup holds during redistribution. Still no O(n)
/// term anywhere — with the labels sharded, the ledger now covers the
/// WHOLE pipeline state, replicated labels included.
std::uint64_t resident_budget_sharded(nnz_t nnz, int p, int q, index_t n) {
  return resident_budget_one_shot(nnz, p, n) +
         16 * static_cast<std::uint64_t>(n) / static_cast<std::uint64_t>(q);
}

std::uint64_t resident_budget(const DistRcmOptions& options, nnz_t nnz, int p,
                              int q, index_t n) {
  if (options.sharded_labels) return resident_budget_sharded(nnz, p, q, n);
  return options.one_shot_redistribute ? resident_budget_one_shot(nnz, p, n)
                                       : resident_budget_two_hop(nnz, q, n);
}

struct RedistributeOut {
  dist::RowBlockCsr block;
  index_t bandwidth = 0;
};

/// Stage 2 of the pipeline: route every relabeled entry of this rank's
/// balanced-2D block straight to its 1D solver owner. One alltoallv on the
/// one-shot path; the two-hop arm (permuted-2D intermediate, then re-own)
/// remains callable for the equivalence wall and pays two. Both arms
/// produce bit-identical row blocks. Collective; `labels` must be the
/// replicated stage-1 output. The grid is built by the CALLER, outside the
/// phase scope below: its two Comm::split calls are collectives of their
/// own, and keeping them out pins the kRedistribute crossing count to
/// exactly the redistribution traffic (one-shot: alltoallv + bandwidth
/// allreduce = 4 crossings; two-hop: two alltoallvs + allreduce = 6).
RedistributeOut redistribute_stage(mps::Comm& world, dist::ProcGrid2D& grid,
                                   const sparse::CsrMatrix& a,
                                   const std::vector<index_t>& labels,
                                   bool one_shot) {
  mps::PhaseScope scope(world, mps::Phase::kRedistribute);
  RedistributeOut out;
  if (one_shot) {
    auto fused = dist::redistribute_to_row_blocks(a, labels, grid);
    out.block = std::move(fused.block);
    out.bandwidth = fused.bandwidth;
    return out;
  }

  // The permuted 2D intermediate lives exactly as long as the re-owning
  // needs it, so the resident ledger matches what is actually live: the
  // 2D input block dies after the redistribution, the permuted 2D block
  // after the 1D re-owning.
  const auto permuted = [&] {
    // The value-carrying 2D decomposition, built from the
    // pre-distribution input ONCE; every later stage works on
    // distributed blocks only. Permuting in place in parallel (the
    // paper's conclusion): the values ride the redistribution alltoallv
    // with their coordinates.
    dist::DistSpMat mat(grid, a);
    world.note_resident(mat.resident_elements());
    return dist::redistribute_permuted(mat, labels, grid);
  }();

  // Bandwidth of the permuted system, computed distributively: each
  // local entry's |row - col| is a lower bound and every entry lives
  // somewhere.
  index_t local_bw = 0;
  for (index_t lc = 0; lc < permuted.local_cols(); ++lc) {
    for (const index_t lr : permuted.column(lc)) {
      local_bw = std::max(local_bw, std::abs((lr + permuted.row_lo()) -
                                             (lc + permuted.col_lo())));
    }
  }
  out.bandwidth = world.allreduce(
      local_bw, [](index_t x, index_t y) { return std::max(x, y); });

  // 2D -> 1D re-owning: the permuted matrix becomes the solver's
  // contiguous row blocks without ever being gathered.
  out.block = dist::to_row_blocks(permuted, world);
  return out;
}

struct SolveOut {
  solver::CgResult cg;
  std::vector<double> x_local;  ///< this rank's slab, PERMUTED rows
};

/// Stage 3 of the pipeline: distribute the rhs, run the distributed
/// solver, return this rank's solution slab. The rhs goes fixture ->
/// O(n/p) 2D slab -> one alltoallv -> O(n/p) solver slab; the inverse
/// labeling scan and the replicated permuted rhs of the old path are gone,
/// and the solution never leaves slab form inside the SPMD body.
/// Collective; `block` is the checkpointed stage-2 row block of this rank,
/// `grid` the caller's (its workspace stages the rhs exchange, so repeat
/// solves on a persistent grid reallocate nothing). `label_slab`, when
/// non-null, supplies the sharded labels instead of the replicated vector.
SolveOut solve_stage(mps::Comm& world, dist::ProcGrid2D& grid, index_t n,
                     const dist::RowBlockCsr& block,
                     const std::vector<index_t>& labels,
                     const dist::DistDenseVec* label_slab,
                     std::span<const double> b, bool precondition,
                     const solver::CgOptions& cg_options) {
  std::vector<double> b_local;
  {
    mps::PhaseScope scope(world, mps::Phase::kRedistribute);
    // My arithmetic O(n/p) window of the pre-distribution rhs fixture,
    // permuted and re-owned by the same routing rule as the matrix.
    dist::DistDenseVecD b_dist(dist::VectorDist(n, grid.q()), grid, 0.0);
    for (index_t g = b_dist.lo(); g < b_dist.hi(); ++g) {
      b_dist.set(g, b[static_cast<std::size_t>(g)]);
    }
    world.charge_compute(static_cast<double>(b_dist.local_size()));
    b_local = label_slab
                  ? dist::redistribute_to_row_slab(b_dist, *label_slab, world,
                                                   &grid.workspace())
                  : dist::redistribute_to_row_slab(b_dist, labels, world,
                                                   &grid.workspace());
    world.note_resident(block.resident_elements() +
                        4 * static_cast<std::uint64_t>(b_dist.local_size()) +
                        4 * b_local.size());
  }

  SolveOut out;
  out.cg = solver::dist_pcg(world, block, b_local, out.x_local, precondition,
                            cg_options);
  return out;
}

/// Assembles the replicated ORIGINAL-numbering solution from the per-rank
/// permuted slabs, OUTSIDE the SPMD ranks (the driver holds the slabs like
/// any other checkpoint, so no rank's ledger pays for the O(n) copy). The
/// row blocks are contiguous, so rank-order concatenation IS the permuted
/// vector; then x[v] = x_perm[labels[v]].
std::vector<double> assemble_solution(
    const std::vector<std::vector<double>>& slabs,
    const std::vector<index_t>& labels) {
  std::vector<double> x_perm;
  x_perm.reserve(labels.size());
  for (const auto& slab : slabs) {
    x_perm.insert(x_perm.end(), slab.begin(), slab.end());
  }
  DRCM_CHECK(x_perm.size() == labels.size(),
             "solution slabs must cover every permuted row exactly once");
  std::vector<double> x(labels.size());
  for (std::size_t v = 0; v < labels.size(); ++v) {
    x[v] = x_perm[static_cast<std::size_t>(labels[v])];
  }
  return x;
}

}  // namespace

OrderedSolveResult ordered_solve_spec(dist::ProcGrid2D& grid,
                                      const OrderedSolveSpec& spec) {
  DRCM_CHECK(spec.matrix != nullptr, "ordered_solve needs a matrix");
  const sparse::CsrMatrix& a = *spec.matrix;
  // A matrix with zero stored entries is vacuously valued: the degenerate
  // n = 0 input must flow through, not trip the precondition meant for
  // pattern-only matrices.
  DRCM_CHECK(a.has_values() || a.nnz() == 0,
             "ordered_solve needs a solver matrix with values");
  DRCM_CHECK(spec.b.size() == static_cast<std::size_t>(a.n()),
             "rhs size mismatch");
  const index_t n = a.n();
  auto& world = grid.world();
  const DistRcmOptions& rcm_options = spec.rcm;

  OrderedSolveResult out;

  if (spec.labels != nullptr) {
    // The ordering-cache HIT path: stage 1 skipped, redistribution runs
    // under the KNOWN labels.
    DRCM_CHECK(spec.labels->size() == static_cast<std::size_t>(n),
               "labels must cover every vertex");
    DRCM_CHECK(!rcm_options.sharded_labels,
               "the hit path takes replicated labels");
    const auto redist = redistribute_stage(world, grid, a, *spec.labels,
                                           rcm_options.one_shot_redistribute);
    out.permuted_bandwidth = redist.bandwidth;

    auto solved = solve_stage(world, grid, n, redist.block, *spec.labels,
                              /*label_slab=*/nullptr, spec.b,
                              spec.precondition, spec.cg);
    out.cg = solved.cg;
    out.x_local = std::move(solved.x_local);
    out.x_lo = redist.block.lo;

    // Same per-rank contract as the full pipeline; the skipped ordering
    // phases only make it easier to meet. `out.labels` stays EMPTY — the
    // caller already holds the labels (that is why it could skip stage 1),
    // and the no-gather body has no business replicating them again.
    const auto peak = world.stats().peak_resident_elements();
    DRCM_CHECK(peak <= resident_budget(rcm_options, a.nnz(), world.size(),
                                       grid.q(), n),
               "ordered_solve per-rank resident peak exceeded O(nnz/p + n/p)");
    return out;
  }

  if (rcm_options.sharded_labels) {
    // Fully sharded arm: the label vector never exists replicated inside
    // the pipeline — ordering returns an O(n/p) slab, redistribution does
    // the two-sided window lookup, the rhs relabel is a local slab read.
    // RCM-only in v1: dist_rcm_sharded is the only sharded ordering body,
    // so a portfolio request must resolve to kRcm to take this arm.
    DRCM_CHECK(rcm_options.one_shot_redistribute,
               "sharded labels require the one-shot redistribution");
    DRCM_CHECK(spec.recipe == nullptr,
               "recipe capture requires the replicated-label arm");
    {
      OrderingSpec resolved = rcm_options.ordering;
      if (resolved.algorithm == OrderingAlgorithm::kAuto) {
        mps::PhaseScope scope(world, mps::Phase::kOther);
        resolved.algorithm =
            select_ordering(spec.adjacency ? *spec.adjacency : a).algorithm;
        world.charge_compute(static_cast<double>(a.nnz() + a.n()));
      }
      DRCM_CHECK(resolved.algorithm == OrderingAlgorithm::kRcm,
                 "sharded labels are RCM-only in v1 (Sloan/GPS arms return "
                 "replicated labels)");
    }
    dist::DistDenseVec labels =
        spec.adjacency
            ? dist_rcm_sharded(world, grid, *spec.adjacency, rcm_options)
            : dist_rcm_sharded(world, grid, a.strip_diagonal(), rcm_options);

    dist::OneShotRowBlocks fused;
    {
      mps::PhaseScope scope(world, mps::Phase::kRedistribute);
      fused = dist::redistribute_to_row_blocks(a, labels, grid);
    }
    out.permuted_bandwidth = fused.bandwidth;

    auto solved = solve_stage(world, grid, n, fused.block, /*labels=*/{},
                              &labels, spec.b, spec.precondition, spec.cg);
    out.cg = solved.cg;
    out.x_local = std::move(solved.x_local);
    out.x_lo = fused.block.lo;

    // The contract is asserted BEFORE the result is packaged: with labels
    // sharded, no O(n) structure existed at any point of the pipeline.
    const auto peak = world.stats().peak_resident_elements();
    DRCM_CHECK(peak <= resident_budget(rcm_options, a.nnz(), world.size(),
                                       grid.q(), n),
               "ordered_solve per-rank resident peak exceeded O(nnz/p + n/p)");

    // Result packaging for the caller's checkpoint/cache, outside the
    // asserted pipeline (exactly like the run_* wrappers' replicated x).
    {
      mps::PhaseScope scope(world, mps::Phase::kOther);
      out.labels = labels.to_global(world);
    }
    return out;
  }

  // The ordering runs on the self-loop-free adjacency pattern. Callers
  // that know it (run_ordered_solve strips once outside the ranks) pass
  // it in; otherwise each rank strips its own transient copy. dist_order
  // dispatches on spec.rcm.ordering — the whole portfolio flows through
  // the one pipeline.
  if (spec.adjacency) {
    out.labels =
        dist_order(world, *spec.adjacency, rcm_options, nullptr, spec.recipe);
  } else {
    out.labels = dist_order(world, a.strip_diagonal(), rcm_options, nullptr,
                            spec.recipe);
  }

  const auto redist = redistribute_stage(world, grid, a, out.labels,
                                         rcm_options.one_shot_redistribute);
  out.permuted_bandwidth = redist.bandwidth;

  auto solved = solve_stage(world, grid, n, redist.block, out.labels,
                            /*label_slab=*/nullptr, spec.b, spec.precondition,
                            spec.cg);
  out.cg = solved.cg;
  out.x_local = std::move(solved.x_local);
  out.x_lo = redist.block.lo;

  // The scalability contract, now O(nnz/p + n/p) end to end on the
  // default path: the one-shot redistribution streams the balanced-2D
  // block straight into row blocks (no Θ(nnz/q) permuted-2D intermediate),
  // the rhs moves as O(n/p) slabs, and the solution stays a slab — no
  // O(n) replicated vector exists at ANY stage inside the ranks. The
  // two-hop arm keeps its historic looser budget so the before/after
  // ledgers remain comparable.
  const auto peak = world.stats().peak_resident_elements();
  DRCM_CHECK(
      peak <= resident_budget(rcm_options, a.nnz(), world.size(), grid.q(), n),
      "ordered_solve per-rank resident peak exceeded O(nnz/p + n/p)");
  return out;
}

OrderedSolveResult ordered_solve_on(dist::ProcGrid2D& grid,
                                    const sparse::CsrMatrix& a,
                                    std::span<const double> b,
                                    bool precondition,
                                    const DistRcmOptions& rcm_options,
                                    const solver::CgOptions& cg_options,
                                    const sparse::CsrMatrix* adjacency,
                                    OrderingRecipe* recipe) {
  OrderedSolveSpec spec;
  spec.matrix = &a;
  spec.b = b;
  spec.precondition = precondition;
  spec.rcm = rcm_options;
  spec.cg = cg_options;
  spec.adjacency = adjacency;
  spec.recipe = recipe;
  return ordered_solve_spec(grid, spec);
}

OrderedSolveResult ordered_solve(mps::Comm& world, const sparse::CsrMatrix& a,
                                 std::span<const double> b, bool precondition,
                                 const DistRcmOptions& rcm_options,
                                 const solver::CgOptions& cg_options,
                                 const sparse::CsrMatrix* adjacency) {
  dist::ProcGrid2D grid(world);
  return ordered_solve_on(grid, a, b, precondition, rcm_options, cg_options,
                          adjacency);
}

OrderedSolveResult ordered_solve_with_labels(
    dist::ProcGrid2D& grid, const sparse::CsrMatrix& a,
    const std::vector<index_t>& labels, std::span<const double> b,
    bool precondition, const DistRcmOptions& rcm_options,
    const solver::CgOptions& cg_options) {
  OrderedSolveSpec spec;
  spec.matrix = &a;
  spec.b = b;
  spec.precondition = precondition;
  spec.rcm = rcm_options;
  spec.cg = cg_options;
  spec.labels = &labels;
  return ordered_solve_spec(grid, spec);
}

OrderedSolveRun run_ordered_solve(int nranks, const sparse::CsrMatrix& a,
                                  std::span<const double> b, bool precondition,
                                  const DistRcmOptions& rcm_options,
                                  const solver::CgOptions& cg_options,
                                  const mps::MachineParams& machine) {
  // Strip the adjacency pattern ONCE outside the ranks: simulated ranks
  // share an address space, and p transient O(nnz) copies would otherwise
  // be built concurrently inside the bodies.
  const auto adjacency = a.strip_diagonal();
  OrderedSolveRun run;
  // Per-rank solution slabs, deposited like checkpoints: the replicated
  // ORIGINAL-numbering x is assembled OUTSIDE the SPMD run, so no rank's
  // resident ledger ever holds an O(n) value vector.
  std::vector<std::vector<double>> slabs(static_cast<std::size_t>(nranks));
  run.report = mps::Runtime::run(
      nranks,
      [&](mps::Comm& world) {
        auto result = ordered_solve(world, a, b, precondition, rcm_options,
                                    cg_options, &adjacency);
        slabs[static_cast<std::size_t>(world.rank())] =
            std::move(result.x_local);
        if (world.rank() == 0) run.result = std::move(result);
      },
      machine, resolve_threads(rcm_options.threads));
  run.result.x = assemble_solution(slabs, run.result.labels);
  run.result.x_local = std::move(slabs[0]);  // rank 0's own slab, restored
  return run;
}

OrderedSolveRecoverableRun run_ordered_solve_recoverable(
    int nranks, const OrderedSolveSpec& spec, const RecoveryOptions& recovery) {
  DRCM_CHECK(spec.matrix != nullptr, "ordered_solve needs a matrix");
  const sparse::CsrMatrix& a = *spec.matrix;
  const std::span<const double> b = spec.b;
  const bool precondition = spec.precondition;
  const DistRcmOptions& rcm_options = spec.rcm;
  const solver::CgOptions& cg_options = spec.cg;
  DRCM_CHECK(a.has_values() || a.nnz() == 0,
             "ordered_solve needs a solver matrix with values");
  DRCM_CHECK(b.size() == static_cast<std::size_t>(a.n()), "rhs size mismatch");
  DRCM_CHECK(recovery.max_attempts >= 1, "need at least one attempt");
  const index_t n = a.n();
  const int q = static_cast<int>(std::lround(std::sqrt(nranks)));
  DRCM_CHECK(q * q == nranks, "world size must be a perfect square");
  const std::uint64_t budget = resident_budget(rcm_options, a.nnz(), nranks, q, n);
  const int threads = resolve_threads(rcm_options.threads);
  // The runner owns its own checkpoints: spec.labels / spec.recipe are not
  // consumed here (documented in the header), and the adjacency is stripped
  // once outside the ranks when the caller did not supply it.
  sparse::CsrMatrix stripped;
  if (!spec.adjacency) stripped = a.strip_diagonal();
  const sparse::CsrMatrix& adjacency =
      spec.adjacency ? *spec.adjacency : stripped;

  OrderedSolveRecoverableRun run;

  // Launches one stage as its own SPMD run, retrying from the current
  // checkpoints on failure. Two failure modes feed the same retry loop:
  // an exception out of the run (rank death, injected allocation failure,
  // watchdog timeout, a structural DRCM_CHECK tripped by a corrupted
  // payload) and a validation failure on the checkpointed output (silent
  // corruption that produced structurally plausible garbage). Faults are
  // one-shot, so a retry replays the stage on clean inputs.
  const auto run_stage = [&](const char* stage,
                             const std::function<void(mps::Comm&)>& body,
                             const std::function<std::string()>& validate) {
    for (int attempt = 1;; ++attempt) {
      mps::RunOptions options;
      options.machine = recovery.machine;
      options.threads_per_rank = threads;
      options.faults = recovery.faults;
      options.watchdog_seconds = recovery.watchdog_seconds;
      mps::SpmdReport partial;
      options.report_on_error = &partial;

      std::string failure;
      std::exception_ptr error;
      ++run.runs;
      try {
        const auto report = mps::Runtime::run(
            nranks,
            [&](mps::Comm& world) {
              if (attempt > 1) {
                // Retry backoff, charged as modeled stall time so recovery
                // cost appears in the merged ledger.
                world.charge_stall(recovery.backoff_modeled_seconds *
                                   (attempt - 1));
              }
              body(world);
            },
            options);
        run.report.merge_from(report);
        DRCM_CHECK(report.max_peak_resident() <= budget,
                   "per-rank resident peak exceeded O(nnz/p + n/p)");
        failure = validate();
        if (failure.empty()) return;
      } catch (const std::exception& e) {
        if (!partial.ranks.empty()) run.report.merge_from(partial);
        failure = e.what();
        error = std::current_exception();
      }
      run.fault_log.push_back(std::string(stage) + " attempt " +
                              std::to_string(attempt) + ": " + failure);
      if (attempt >= recovery.max_attempts) {
        if (error) std::rethrow_exception(error);
        throw CheckError("ordered_solve " + std::string(stage) +
                         " stage failed validation after " +
                         std::to_string(attempt) + " attempts: " + failure);
      }
    }
  };

  // Stage 1: ordering — via dist_order, so the whole portfolio (RCM,
  // Sloan, GPS, auto) is recoverable. Checkpoint: the replicated labels.
  std::vector<index_t> labels;
  run_stage(
      "ordering",
      [&](mps::Comm& world) {
        auto result = dist_order(world, adjacency, rcm_options);
        if (world.rank() == 0) labels = std::move(result);
      },
      [&]() -> std::string {
        // A corrupted index payload that survived the run shows up here:
        // RCM labels must be a permutation of [0, n).
        if (labels.size() != static_cast<std::size_t>(n)) {
          return "ordering produced " + std::to_string(labels.size()) +
                 " labels for n=" + std::to_string(n);
        }
        std::vector<char> seen(static_cast<std::size_t>(n), 0);
        for (const index_t l : labels) {
          if (l < 0 || l >= n || seen[static_cast<std::size_t>(l)]) {
            return "ordering labels are not a permutation of [0, n)";
          }
          seen[static_cast<std::size_t>(l)] = 1;
        }
        return {};
      });

  // Stage 2: redistribute. Checkpoint: one row block per rank (simulated
  // ranks share the address space, so the driver can hold them directly)
  // plus the permuted bandwidth.
  std::vector<dist::RowBlockCsr> blocks(static_cast<std::size_t>(nranks));
  index_t bandwidth = 0;
  run_stage(
      "redistribute",
      [&](mps::Comm& world) {
        dist::ProcGrid2D grid(world);
        auto result = redistribute_stage(world, grid, a, labels,
                                         rcm_options.one_shot_redistribute);
        blocks[static_cast<std::size_t>(world.rank())] =
            std::move(result.block);
        if (world.rank() == 0) bandwidth = result.bandwidth;
      },
      [&]() -> std::string {
        index_t rows = 0;
        nnz_t nnz = 0;
        index_t expect_lo = 0;
        for (const auto& blk : blocks) {
          if (blk.n != n || blk.lo != expect_lo || blk.hi < blk.lo) {
            return "redistribute produced a non-contiguous row partition";
          }
          expect_lo = blk.hi;
          rows += blk.local_rows();
          nnz += blk.local_nnz();
          for (const double v : blk.vals) {
            if (!std::isfinite(v)) {
              return "redistribute produced non-finite matrix values";
            }
          }
        }
        if (rows != n || expect_lo != n) {
          return "redistribute lost rows: covered " + std::to_string(rows) +
                 " of " + std::to_string(n);
        }
        if (nnz != a.nnz()) {
          return "redistribute lost entries: " + std::to_string(nnz) +
                 " of " + std::to_string(a.nnz());
        }
        return {};
      });

  // Stage 3: solve from the checkpointed blocks. kNanInf is the retryable
  // solver outcome (a poisoned recurrence); every other status is a
  // structured result the caller branches on. The per-rank solution slabs
  // are deposited like checkpoints; the replicated ORIGINAL-numbering x is
  // assembled outside the ranks.
  std::vector<std::vector<double>> slabs(static_cast<std::size_t>(nranks));
  run_stage(
      "solve",
      [&](mps::Comm& world) {
        dist::ProcGrid2D grid(world);
        auto result =
            solve_stage(world, grid, n,
                        blocks[static_cast<std::size_t>(world.rank())], labels,
                        /*label_slab=*/nullptr, b, precondition, cg_options);
        slabs[static_cast<std::size_t>(world.rank())] =
            std::move(result.x_local);
        if (world.rank() == 0) run.result.cg = result.cg;
      },
      [&]() -> std::string {
        if (run.result.cg.status == solver::SolveStatus::kNanInf) {
          return "solver reported nan-inf (poisoned recurrence)";
        }
        return {};
      });

  run.result.x = assemble_solution(slabs, labels);
  run.result.x_local = std::move(slabs[0]);  // rank 0's own slab
  run.result.x_lo = 0;
  run.result.labels = std::move(labels);
  run.result.permuted_bandwidth = bandwidth;
  return run;
}

OrderedSolveRecoverableRun run_ordered_solve_recoverable(
    int nranks, const sparse::CsrMatrix& a, std::span<const double> b,
    bool precondition, const DistRcmOptions& rcm_options,
    const solver::CgOptions& cg_options, const RecoveryOptions& recovery) {
  OrderedSolveSpec spec;
  spec.matrix = &a;
  spec.b = b;
  spec.precondition = precondition;
  spec.rcm = rcm_options;
  spec.cg = cg_options;
  return run_ordered_solve_recoverable(nranks, spec, recovery);
}

DistRcmRun run_dist_rcm(int nranks, const sparse::CsrMatrix& a,
                        const DistRcmOptions& options,
                        const mps::MachineParams& machine) {
  DistRcmRun run;
  run.report = mps::Runtime::run(
      nranks,
      [&](mps::Comm& world) {
        DistRcmStats stats;
        auto labels = dist_rcm(world, a, options, &stats);
        if (world.rank() == 0) {
          run.labels = std::move(labels);
          run.stats = stats;
        }
      },
      machine, resolve_threads(options.threads));
  return run;
}

DistRcmRun run_dist_order(int nranks, const sparse::CsrMatrix& a,
                          const DistRcmOptions& options,
                          const mps::MachineParams& machine) {
  DistRcmRun run;
  run.report = mps::Runtime::run(
      nranks,
      [&](mps::Comm& world) {
        DistRcmStats stats;
        auto labels = dist_order(world, a, options, &stats);
        if (world.rank() == 0) {
          run.labels = std::move(labels);
          run.stats = stats;
        }
      },
      machine, resolve_threads(options.threads));
  return run;
}

}  // namespace drcm::rcm
