// Trace-driven projection of the distributed RCM cost to paper-scale
// machines (the engine behind Figures 4, 5 and 6).
//
// The thread-backed runtime executes faithfully at laptop-scale rank
// counts; the paper's evaluation runs at 1-4096 Edison cores. Its own
// analysis (Sec. IV-B) models that regime with alpha-beta terms driven by
// per-iteration frontier quantities:
//
//   T_SpMSpV   = O(m/p + beta(m/p + n/sqrt(p)) + iters*alpha*sqrt(p))
//   T_SortPerm = O(n log n / p + beta n/p + iters*alpha*p)
//
// We reproduce exactly that methodology, but exactly rather than
// asymptotically: ExecutionTrace::collect records, per BFS level of the
// actual algorithm execution (peripheral sweeps + ordering sweep, every
// component), the frontier size, the expansion volume (sum of frontier
// degrees = SpMSpV work) and the next-frontier size. project_cost then
// evaluates the per-collective formulas of mps::CostModel for any virtual
// (cores, threads-per-process) configuration: a 2D sqrt(P) x sqrt(P) grid
// of P = cores/threads processes, local kernels multithreaded (the paper's
// hybrid OpenMP-MPI setup, one communicating thread per process).
//
// The i.i.d. load-balance assumption of the paper's analysis (justified by
// the random permutation of Sec. IV-A) is applied: per-process shares are
// global quantities divided by P.
#pragma once

#include <vector>

#include "mpsim/cost_model.hpp"
#include "sparse/csr.hpp"

namespace drcm::rcm {

/// Quantities of one BFS level of the real execution.
struct LevelTrace {
  index_t frontier = 0;   ///< nnz(Lcur)
  index_t expansion = 0;  ///< sum of degrees over Lcur (SpMSpV work)
  index_t next = 0;       ///< nnz(Lnext) after SELECT
};

/// Everything project_cost needs, recorded from one sequential execution.
struct ExecutionTrace {
  index_t n = 0;
  nnz_t nnz = 0;
  int components = 0;
  int peripheral_sweeps = 0;
  /// George-Liu candidate selections (one REDUCE argmin each in the
  /// distributed run; the loop may select once more than it sweeps).
  int peripheral_argmin_rounds = 0;
  index_t pseudo_diameter = 0;  ///< eccentricity of the chosen start vertex
  std::vector<LevelTrace> peripheral_levels;  ///< all sweeps, all components
  std::vector<LevelTrace> ordering_levels;    ///< final BFS per component

  /// Instruments the exact algorithm control flow (component seeding,
  /// George-Liu iteration, ordering BFS) on the adjacency pattern `a`.
  static ExecutionTrace collect(const sparse::CsrMatrix& a);
};

/// Modeled compute/communication seconds of one Figure-4 component, plus
/// the predicted barrier-crossing count — the synchrony ledger the mpsim
/// runtime records per phase, reproduced analytically so a real run's
/// ledger can be asserted against the model (crossings are counted even at
/// P = 1: the runtime crosses its single-rank barriers all the same).
struct PhaseTime {
  double compute = 0.0;
  double comm = 0.0;
  std::uint64_t crossings = 0;
  double total() const { return compute + comm; }
  PhaseTime& operator+=(const PhaseTime& o) {
    compute += o.compute;
    comm += o.comm;
    crossings += o.crossings;
    return *this;
  }
};

/// The five stacked components of the paper's Figure 4, with the
/// compute/comm split of Figure 5 preserved inside each.
struct CostBreakdown {
  PhaseTime peripheral_spmspv;
  PhaseTime peripheral_other;
  PhaseTime ordering_spmspv;
  PhaseTime ordering_sort;
  PhaseTime ordering_other;

  PhaseTime spmspv() const {  // Figure 5's series
    PhaseTime t = peripheral_spmspv;
    t += ordering_spmspv;
    return t;
  }
  /// Predicted barrier crossings of the Peripheral:* / Ordering:* phases —
  /// the quantities test_mpsim_cost_model.cpp pins against a real run's
  /// mpsim ledger.
  std::uint64_t peripheral_crossings() const {
    return peripheral_spmspv.crossings + peripheral_other.crossings;
  }
  std::uint64_t ordering_crossings() const {
    return ordering_spmspv.crossings + ordering_sort.crossings +
           ordering_other.crossings;
  }
  double total() const {
    return peripheral_spmspv.total() + peripheral_other.total() +
           ordering_spmspv.total() + ordering_sort.total() +
           ordering_other.total();
  }
};

/// Projects the trace onto `cores` total cores with `threads_per_process`
/// OpenMP threads per MPI process (paper default: 6; flat MPI: 1).
///
/// The hybrid pricing — compute divided by ALL cores, communication priced
/// per process with one communicating thread each, crossings independent of
/// the thread count — is the same rule the executed runtime charges: a real
/// mpsim run at P ranks with Runtime::run's threads_per_rank = t divides
/// every charge_compute by t and leaves collectives untouched, so
/// project_cost(trace, P * t, t) stays consistent with that run's ledger
/// (asserted in test_mpsim_cost_model.cpp / test_model_runtime_consistency).
CostBreakdown project_cost(const ExecutionTrace& trace, int cores,
                           int threads_per_process,
                           const mps::MachineParams& machine = {});

}  // namespace drcm::rcm
