#include "rcm/dist_bfs.hpp"

#include "dist/primitives.hpp"
#include "dist/spmspv.hpp"

namespace drcm::rcm {

using dist::DistSpVec;
using dist::VecEntry;

DistBfsResult dist_bfs(const dist::DistSpMat& a, index_t root,
                       dist::DistDenseVec& levels, dist::ProcGrid2D& grid,
                       mps::Phase spmspv_phase, mps::Phase other_phase) {
  DRCM_CHECK(root >= 0 && root < a.n(), "BFS root out of range");
  auto& world = grid.world();

  DistBfsResult res;
  {
    mps::PhaseScope scope(world, other_phase);
    for (index_t g = levels.lo(); g < levels.hi(); ++g) {
      levels.set(g, kNoVertex);
    }
    world.charge_compute(static_cast<double>(levels.local_size()));
    if (levels.owns(root)) levels.set(root, 0);
  }

  DistSpVec frontier(levels.dist(), grid);
  if (frontier.lo() <= root && root < frontier.hi()) {
    frontier.assign({VecEntry{root, 0}});
  }
  res.last_frontier = frontier;
  res.reached = 1;

  index_t depth = 0;
  while (true) {
    // SET: frontier values <- levels (Algorithm 4 line 8; values carry the
    // parent's level through the semiring).
    {
      mps::PhaseScope scope(world, other_phase);
      dist::gather_from_dense(frontier, levels, world);
    }
    DistSpVec next;
    {
      mps::PhaseScope scope(world, spmspv_phase);
      next = dist::spmspv_select2nd_min(a, frontier, grid);
    }
    index_t next_nnz = 0;
    {
      mps::PhaseScope scope(world, other_phase);
      next = dist::select_where_equals(next, levels, kNoVertex, world);
      next_nnz = next.global_nnz(world);
    }
    if (next_nnz == 0) break;

    {
      mps::PhaseScope scope(world, other_phase);
      ++depth;
      // Record true levels (clearer than the paper's parent-level values;
      // SELECT only ever tests for the kNoVertex sentinel).
      std::vector<VecEntry> leveled(next.entries().begin(),
                                    next.entries().end());
      for (auto& e : leveled) e.val = depth;
      next.assign(std::move(leveled));
      dist::scatter_into_dense(levels, next, world);
    }
    res.reached += next_nnz;
    frontier = next;
    res.last_frontier = next;
  }
  res.eccentricity = depth;
  return res;
}

}  // namespace drcm::rcm
