#include "rcm/dist_bfs.hpp"

#include "dist/level_kernel.hpp"
#include "dist/primitives.hpp"

namespace drcm::rcm {

using dist::DistSpVec;
using dist::VecEntry;

DistBfsResult dist_bfs(const dist::DistSpMat& a, index_t root,
                       dist::DistDenseVec& levels, dist::ProcGrid2D& grid,
                       mps::Phase spmspv_phase, mps::Phase other_phase,
                       dist::SpmspvAccumulator acc) {
  DRCM_CHECK(root >= 0 && root < a.n(), "BFS root out of range");
  auto& world = grid.world();

  DistBfsResult res;
  {
    mps::PhaseScope scope(world, other_phase);
    for (index_t g = levels.lo(); g < levels.hi(); ++g) {
      levels.set(g, kNoVertex);
    }
    world.charge_compute(static_cast<double>(levels.local_size()));
    if (levels.owns(root)) levels.set(root, 0);
  }

  DistSpVec frontier(levels.dist(), grid);
  if (frontier.lo() <= root && root < frontier.hi()) {
    frontier.assign({VecEntry{root, 0}});
  }
  res.last_frontier = frontier;
  res.reached = 1;
  res.last_width = 1;  // the root level, until a deeper level replaces it

  index_t depth = 0;
  while (true) {
    // One fused level: SET (values <- levels, Algorithm 4 line 8) ->
    // SPMSPV -> SELECT (keep unvisited) -> count, three barrier crossings.
    auto step = dist::bfs_level_step(a, frontier, levels, kNoVertex, grid,
                                     spmspv_phase, other_phase, acc);
    if (step.global_nnz == 0) break;

    {
      mps::PhaseScope scope(world, other_phase);
      ++depth;
      // Record true levels (clearer than the paper's parent-level values;
      // SELECT only ever tests for the kNoVertex sentinel).
      std::vector<VecEntry> leveled(step.next.entries().begin(),
                                    step.next.entries().end());
      for (auto& e : leveled) e.val = depth;
      step.next.assign(std::move(leveled));
      dist::scatter_into_dense(levels, step.next, world);
    }
    res.reached += step.global_nnz;
    res.last_width = step.global_nnz;
    frontier = step.next;
    res.last_frontier = step.next;
  }
  res.eccentricity = depth;
  return res;
}

}  // namespace drcm::rcm
