// Quickstart: compute an RCM ordering of a sparse symmetric matrix, both
// sequentially and on a simulated distributed grid, and inspect the
// bandwidth improvement.
//
//   $ ./examples/quickstart
//
// This is the ten-line tour of the public API:
//   sparse::gen::*          — build (or read, see reorder_tool) a matrix
//   order::rcm_serial       — sequential reference ordering
//   rcm::run_dist_rcm       — the paper's distributed algorithm
//   sparse::bandwidth/profile — quality metrics
#include <cstdio>

#include "order/rcm_serial.hpp"
#include "rcm/rcm_driver.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

int main() {
  using namespace drcm;
  namespace gen = sparse::gen;

  // A 64x64 5-point mesh whose vertices arrive in scrambled order — the
  // typical state of an application matrix (thermal2 in the paper arrives
  // with bandwidth 1.2M on 1.2M rows).
  const auto a = gen::relabel_random(gen::grid2d(64, 64), /*seed=*/7);
  std::printf("matrix: n=%lld, nnz=%lld\n", static_cast<long long>(a.n()),
              static_cast<long long>(a.nnz()));
  std::printf("input ordering : bandwidth %6lld, profile %10lld\n",
              static_cast<long long>(sparse::bandwidth(a)),
              static_cast<long long>(sparse::profile(a)));

  // Sequential RCM.
  const auto serial_labels = order::rcm_serial(a);
  std::printf("serial RCM     : bandwidth %6lld, profile %10lld\n",
              static_cast<long long>(sparse::bandwidth_with_labels(a, serial_labels)),
              static_cast<long long>(sparse::profile_with_labels(a, serial_labels)));

  // Distributed RCM on a 2x2 process grid (simulated ranks).
  const auto run = rcm::run_dist_rcm(/*nranks=*/4, a);
  std::printf("distributed RCM: bandwidth %6lld, profile %10lld "
              "(%d component%s, %d peripheral BFS sweeps)\n",
              static_cast<long long>(sparse::bandwidth_with_labels(a, run.labels)),
              static_cast<long long>(sparse::profile_with_labels(a, run.labels)),
              run.stats.components, run.stats.components == 1 ? "" : "s",
              run.stats.peripheral_bfs_sweeps);

  std::printf("orderings bit-identical: %s\n",
              run.labels == serial_labels ? "yes" : "NO (bug!)");

  // Materialize the reordered matrix if you need it downstream.
  const auto permuted = sparse::permute_symmetric(a, run.labels);
  std::printf("reordered matrix bandwidth (recomputed): %lld\n",
              static_cast<long long>(sparse::bandwidth(permuted)));
  return 0;
}
