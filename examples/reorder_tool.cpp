// reorder_tool: a command-line utility in the spirit of SpMP's standalone
// reorderer — reads a Matrix Market file, computes the requested ordering,
// and writes the permuted matrix plus the permutation vector.
//
//   $ ./examples/reorder_tool input.mtx [rcm|sloan|nosort] [output.mtx]
//
// Run without arguments it demonstrates itself on a generated matrix
// written to /tmp. Unsymmetric inputs are symmetrized (A + A^T pattern),
// diagonals are stripped for the ordering and the permutation is applied
// to the ORIGINAL matrix, values included.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "order/rcm_serial.hpp"
#include "order/sloan.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

int main(int argc, char** argv) {
  using namespace drcm;

  std::string input = argc > 1 ? argv[1] : "";
  const std::string method = argc > 2 ? argv[2] : "rcm";
  const std::string output =
      argc > 3 ? argv[3] : (input.empty() ? "/tmp/demo_rcm.mtx" : input + ".rcm.mtx");

  if (input.empty()) {
    input = "/tmp/demo_input.mtx";
    std::printf("no input given; writing a demo matrix to %s\n", input.c_str());
    const auto demo = sparse::gen::with_laplacian_values(
        sparse::gen::relabel_random(sparse::gen::grid2d(40, 40), 99));
    sparse::write_matrix_market_file(input, demo);
  }

  sparse::CsrMatrix a;
  try {
    a = sparse::read_matrix_market_file(input);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  std::printf("read %s: n=%lld nnz=%lld\n", input.c_str(),
              static_cast<long long>(a.n()), static_cast<long long>(a.nnz()));

  auto pattern = a.pattern();
  if (!pattern.is_pattern_symmetric()) {
    std::printf("pattern is unsymmetric; ordering A + A^T\n");
    pattern = sparse::gen::symmetrize(pattern);
  }
  if (pattern.has_self_loops()) pattern = pattern.strip_diagonal();

  std::vector<index_t> labels;
  if (method == "rcm") {
    labels = order::rcm_serial(pattern);
  } else if (method == "sloan") {
    labels = order::sloan(pattern);
  } else if (method == "nosort") {
    labels = order::rcm_nosort(pattern);
  } else {
    std::fprintf(stderr, "unknown method '%s' (use rcm|sloan|nosort)\n",
                 method.c_str());
    return 1;
  }

  std::printf("%s: bandwidth %lld -> %lld, profile %lld -> %lld\n",
              method.c_str(), static_cast<long long>(sparse::bandwidth(pattern)),
              static_cast<long long>(sparse::bandwidth_with_labels(pattern, labels)),
              static_cast<long long>(sparse::profile(pattern)),
              static_cast<long long>(sparse::profile_with_labels(pattern, labels)));

  const auto permuted = sparse::permute_symmetric(a, labels);
  sparse::write_matrix_market_file(output, permuted,
                                   permuted.is_pattern_symmetric());
  std::printf("wrote reordered matrix to %s\n", output.c_str());

  const std::string perm_path = output + ".perm";
  std::ofstream perm(perm_path);
  for (const auto l : labels) perm << l << '\n';
  std::printf("wrote permutation (labels[old]=new, 0-based) to %s\n",
              perm_path.c_str());
  return 0;
}
