// reorder_tool: a command-line utility in the spirit of SpMP's standalone
// reorderer — reads a Matrix Market file, computes the requested ordering,
// and writes the permuted matrix plus the permutation vector.
//
//   $ ./examples/reorder_tool input.mtx [--algo=ALGO] [output.mtx]
//
// ALGO is one of the portfolio arms rcm|sloan|gps|auto (the same names
// rcm::OrderingAlgorithm dispatches on; `sloan` is the level-synchronous
// variant rcm::dist_order distributes), plus the serial-only extras
// nosort (the no-sorting ablation) and sloan-classic (Sloan's original
// priority-queue formulation). A bare ALGO without the --algo= prefix is
// accepted in the same position for backwards compatibility.
//
// `--algo=auto` runs the portfolio selector: it prints the O(n + nnz)
// proxies the decision was made from (the same evidence an
// OrderSolveResponse records) and the chosen arm, then orders with it.
//
// Run without arguments it demonstrates itself on a generated matrix
// written to /tmp. Unsymmetric inputs are symmetrized (A + A^T pattern),
// diagonals are stripped for the ordering and the permutation is applied
// to the ORIGINAL matrix, values included.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "order/gps.hpp"
#include "order/rcm_serial.hpp"
#include "order/sloan.hpp"
#include "rcm/ordering.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

int main(int argc, char** argv) {
  using namespace drcm;

  // Positional args (input, output) with --algo= allowed anywhere; a bare
  // method name in the second slot keeps the old CLI working.
  std::string input, method = "rcm", output;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--algo=", 7) == 0) {
      method = argv[i] + 7;
    } else if (positional == 0) {
      input = argv[i];
      ++positional;
    } else if (positional == 1 &&
               (std::strcmp(argv[i], "rcm") == 0 ||
                std::strcmp(argv[i], "sloan") == 0 ||
                std::strcmp(argv[i], "gps") == 0 ||
                std::strcmp(argv[i], "auto") == 0 ||
                std::strcmp(argv[i], "nosort") == 0 ||
                std::strcmp(argv[i], "sloan-classic") == 0)) {
      method = argv[i];
      ++positional;
    } else {
      output = argv[i];
      ++positional;
    }
  }
  if (output.empty()) {
    output = input.empty() ? "/tmp/demo_rcm.mtx" : input + ".rcm.mtx";
  }

  if (input.empty()) {
    input = "/tmp/demo_input.mtx";
    std::printf("no input given; writing a demo matrix to %s\n", input.c_str());
    const auto demo = sparse::gen::with_laplacian_values(
        sparse::gen::relabel_random(sparse::gen::grid2d(40, 40), 99));
    sparse::write_matrix_market_file(input, demo);
  }

  sparse::CsrMatrix a;
  try {
    a = sparse::read_matrix_market_file(input);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  std::printf("read %s: n=%lld nnz=%lld\n", input.c_str(),
              static_cast<long long>(a.n()), static_cast<long long>(a.nnz()));

  auto pattern = a.pattern();
  if (!pattern.is_pattern_symmetric()) {
    std::printf("pattern is unsymmetric; ordering A + A^T\n");
    pattern = sparse::gen::symmetrize(pattern);
  }
  if (pattern.has_self_loops()) pattern = pattern.strip_diagonal();

  if (method == "auto") {
    const auto choice = rcm::select_ordering(pattern);
    const auto& p = choice.proxies;
    std::printf("selector proxies: n=%lld nnz=%lld avg_degree=%.2f "
                "density=%.2e bandwidth=%lld rms_wavefront=%.1f "
                "components=%lld\n",
                static_cast<long long>(p.n), static_cast<long long>(p.nnz),
                p.avg_degree, p.density,
                static_cast<long long>(p.bandwidth), p.rms_wavefront,
                static_cast<long long>(p.components));
    method = rcm::ordering_algorithm_name(choice.algorithm);
    std::printf("selector choice: %s\n", method.c_str());
  }

  std::vector<index_t> labels;
  if (method == "rcm") {
    labels = order::rcm_serial(pattern);
  } else if (method == "sloan") {
    labels = order::sloan_levels(pattern);
  } else if (method == "gps") {
    labels = order::gps(pattern);
  } else if (method == "sloan-classic") {
    labels = order::sloan(pattern);
  } else if (method == "nosort") {
    labels = order::rcm_nosort(pattern);
  } else {
    std::fprintf(stderr,
                 "unknown method '%s' (use rcm|sloan|gps|auto|nosort|"
                 "sloan-classic)\n",
                 method.c_str());
    return 1;
  }

  std::printf("%s: bandwidth %lld -> %lld, profile %lld -> %lld\n",
              method.c_str(), static_cast<long long>(sparse::bandwidth(pattern)),
              static_cast<long long>(sparse::bandwidth_with_labels(pattern, labels)),
              static_cast<long long>(sparse::profile(pattern)),
              static_cast<long long>(sparse::profile_with_labels(pattern, labels)));

  const auto permuted = sparse::permute_symmetric(a, labels);
  sparse::write_matrix_market_file(output, permuted,
                                   permuted.is_pattern_symmetric());
  std::printf("wrote reordered matrix to %s\n", output.c_str());

  const std::string perm_path = output + ".perm";
  std::ofstream perm(perm_path);
  for (const auto l : labels) perm << l << '\n';
  std::printf("wrote permutation (labels[old]=new, 0-based) to %s\n",
              perm_path.c_str());
  return 0;
}
