// Direct-solver example: the paper's opening motivation made concrete.
// An envelope (skyline) Cholesky factorization stores exactly the profile
// RCM minimizes — watch storage, factorization work and wall time collapse
// after reordering, with the same solution coming out.
//
//   $ ./examples/direct_solver
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/timer.hpp"
#include "order/rcm_serial.hpp"
#include "solver/skyline.hpp"
#include "solver/spmv.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

int main() {
  using namespace drcm;
  namespace gen = sparse::gen;

  const auto scattered = gen::relabel_random(gen::grid2d(40, 40), 5);
  const auto labels = order::rcm_serial(scattered);
  const auto ordered = sparse::permute_symmetric(scattered, labels);

  std::printf("skyline Cholesky of a 1,600-unknown mesh system\n\n");
  std::printf("%-10s %10s %12s %14s %10s %12s\n", "ordering", "bandwidth",
              "storage", "factor MAdds", "factor s", "residual");

  for (int which = 0; which < 2; ++which) {
    const auto& pattern = which == 0 ? scattered : ordered;
    const auto a = gen::with_laplacian_values(pattern, 0.3);
    solver::SkylineMatrix sky(a);
    WallTimer t;
    const auto flops = sky.factor();
    const double secs = t.seconds();

    std::vector<double> b(static_cast<std::size_t>(a.n()));
    for (index_t i = 0; i < a.n(); ++i) {
      b[static_cast<std::size_t>(i)] = std::cos(0.05 * static_cast<double>(i));
    }
    std::vector<double> x(b.size());
    sky.solve(b, x);
    std::vector<double> ax(b.size());
    solver::spmv(a, x, ax);
    double residual = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      residual = std::max(residual, std::abs(ax[i] - b[i]));
    }
    std::printf("%-10s %10lld %12lld %14lld %10.4f %12.2e\n",
                which == 0 ? "natural" : "RCM",
                static_cast<long long>(sparse::bandwidth(pattern)),
                static_cast<long long>(sky.storage()),
                static_cast<long long>(flops), secs, residual);
  }
  std::printf("\nsame physics, same accuracy — the RCM factorization just "
              "touches a tiny fraction of the envelope.\n");
  return 0;
}
