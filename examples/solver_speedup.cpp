// Why reorder at all? The paper's Figure-1 motivation as a runnable demo:
// a conjugate-gradient solve with a block Jacobi preconditioner gets both
// a better preconditioner and a cheaper halo exchange after RCM.
//
//   $ ./examples/solver_speedup
#include <cstdio>
#include <vector>

#include "common/timer.hpp"
#include "order/rcm_serial.hpp"
#include "solver/block_jacobi.hpp"
#include "solver/cg.hpp"
#include "solver/halo_analyzer.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

int main() {
  using namespace drcm;
  namespace gen = sparse::gen;
  constexpr int kBlocks = 16;

  const auto scattered = gen::relabel_random(gen::grid2d(100, 100), 3);
  const auto labels = order::rcm_serial(scattered);
  const auto ordered = sparse::permute_symmetric(scattered, labels);

  std::printf("solving a 10,000-unknown thermal-style system, "
              "CG + block Jacobi (%d ILU(0) blocks)\n\n", kBlocks);
  std::printf("%-10s %10s %8s %10s %12s %12s %10s\n", "ordering", "bandwidth",
              "iters", "time (s)", "blk capture", "halo volume", "neighbors");

  for (int which = 0; which < 2; ++which) {
    const auto& pattern = which == 0 ? scattered : ordered;
    const auto m = gen::with_laplacian_values(pattern, 0.02);
    solver::BlockJacobi pre(m, kBlocks);
    std::vector<double> b(static_cast<std::size_t>(m.n()));
    for (index_t i = 0; i < m.n(); ++i) {
      b[static_cast<std::size_t>(i)] = 1.0 + 0.001 * static_cast<double>(i % 97);
    }
    std::vector<double> x(b.size(), 0.0);
    WallTimer t;
    const auto res = solver::pcg(m, b, x, &pre);
    const double secs = t.seconds();
    const auto halo = solver::analyze_halo(pattern, kBlocks);
    std::printf("%-10s %10lld %8d %10.3f %11.0f%% %12llu %10d\n",
                which == 0 ? "natural" : "RCM",
                static_cast<long long>(sparse::bandwidth(pattern)),
                res.iterations, secs, 100.0 * pre.capture_fraction(),
                static_cast<unsigned long long>(halo.total_remote_entries),
                halo.max_neighbors);
  }
  std::printf("\nRCM wins twice: the preconditioner captures more of the "
              "operator (fewer iterations) and the SpMV halo shrinks to "
              "nearest neighbors (less communication per iteration).\n");
  return 0;
}
