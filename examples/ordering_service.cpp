// Ordering-as-a-service tour: push a mixed hot/cold request stream through
// a ReorderingService and watch the three amortizations pay off.
//
//   * COLD requests (first sighting of a sparsity pattern) pay the full
//     pipeline: fingerprint -> BFS + SORTPERM ordering -> value-carrying
//     one-shot redistribution -> distributed CG.
//   * WARM requests (repeat patterns) hit the ordering cache: the service
//     jumps straight to the redistribution with the cached labels, and the
//     per-request ledger proves the ordering phases were never entered
//     (ZERO ordering-phase barrier crossings — gated below).
//   * The persistent per-rank workspaces settle after the warm-up: the
//     tail of the stream performs ZERO reallocations (gated below).
//
// Gates (nonzero exit on violation): every cache hit shows 0 ordering
// crossings; the warm mean wall time beats the cold mean; the stream tail
// is reallocation-free; hit solutions are bit-identical to their cold
// reference. `--json FILE` emits the latency/hit-rate/crossings-saved
// numbers (BENCH_3.json).
//
//   $ ./examples/ordering_service [--json BENCH_3.json]
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/timer.hpp"
#include "service/service.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace drcm;
  namespace gen = sparse::gen;

  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--json FILE]\n", argv[0]);
      return 1;
    }
  }

  // Three distinct high-diameter shells arriving scattered — the repeat
  // customers of the service. Same family, different patterns: each gets
  // its own fingerprint and its own cache entry.
  std::vector<sparse::CsrMatrix> patterns;
  std::vector<std::vector<double>> rhs;
  for (int i = 0; i < 3; ++i) {
    patterns.push_back(gen::with_laplacian_values(
        gen::relabel_random(gen::grid3d(5, 5, 60 + 10 * i, gen::Stencil3d::k27),
                            21 + i),
        0.02));
    const auto n = patterns.back().n();
    std::vector<double> b(static_cast<std::size_t>(n));
    for (index_t v = 0; v < n; ++v) {
      b[static_cast<std::size_t>(v)] =
          1.0 + 0.5 * static_cast<double>((v * 2654435761u) % 1000) / 1000.0;
    }
    rhs.push_back(std::move(b));
  }

  service::ServiceOptions options;
  options.ranks = 4;  // one 2x2 lane per submission
  service::ReorderingService svc(options);

  std::printf("ordering service: %d ranks, %zu patterns in rotation\n\n",
              options.ranks, patterns.size());
  std::printf("%4s %8s %6s %5s %10s %14s %9s\n", "req", "pattern", "n",
              "hit", "wall (s)", "ordering chg", "reallocs");

  struct Point {
    int index, pattern;
    bool hit;
    double wall;
    unsigned long long crossings, reallocs;
  };
  std::vector<Point> points;
  std::vector<service::OrderSolveResponse> cold(patterns.size());
  std::vector<unsigned long long> cold_crossings(patterns.size(), 0);

  // The stream: 12 requests cycling the three patterns. Requests 0-2 are
  // cold (first sighting); 3-11 are warm repeats of the same (pattern,
  // rhs) pairs and must hit.
  const int total = 12;
  double cold_wall = 0.0, warm_wall = 0.0;
  int cold_count = 0, warm_count = 0;
  unsigned long long crossings_saved = 0, tail_reallocs = 0;
  for (int k = 0; k < total; ++k) {
    const auto p = static_cast<std::size_t>(k) % patterns.size();
    service::OrderSolveRequest request;
    request.matrix = &patterns[p];
    request.b = rhs[p];
    WallTimer t;
    auto resp = svc.submit(request);
    const double wall = t.seconds();
    if (resp.status != service::RequestStatus::kOk) {
      std::printf("ERROR: request %d failed: %s\n", k, resp.error.c_str());
      return 1;
    }
    std::printf("%4d %8zu %6lld %5s %10.3f %14llu %9llu\n", k, p,
                static_cast<long long>(patterns[p].n()),
                resp.cache_hit ? "HIT" : "miss", wall,
                static_cast<unsigned long long>(resp.ordering_crossings),
                static_cast<unsigned long long>(resp.workspace_reallocations));
    points.push_back({k, static_cast<int>(p), resp.cache_hit, wall,
                      resp.ordering_crossings, resp.workspace_reallocations});
    if (k < static_cast<int>(patterns.size())) {
      if (resp.cache_hit) {
        std::printf("ERROR: request %d hit on a first sighting!\n", k);
        return 1;
      }
      cold_wall += wall;
      ++cold_count;
      cold_crossings[p] = resp.ordering_crossings;
      cold[p] = std::move(resp);
      continue;
    }
    // Warm phase: must hit, must never enter an ordering phase, and must
    // reproduce the cold solution bit for bit (same lane geometry, same
    // reduction order).
    if (!resp.cache_hit) {
      std::printf("ERROR: request %d missed on a repeat pattern!\n", k);
      return 1;
    }
    if (resp.ordering_crossings != 0) {
      std::printf("ERROR: cache hit %d crossed %llu ordering barriers!\n", k,
                  static_cast<unsigned long long>(resp.ordering_crossings));
      return 1;
    }
    if (resp.x.size() != cold[p].x.size() ||
        std::memcmp(resp.x.data(), cold[p].x.data(),
                    resp.x.size() * sizeof(double)) != 0) {
      std::printf("ERROR: hit %d diverged from its cold reference!\n", k);
      return 1;
    }
    warm_wall += wall;
    ++warm_count;
    crossings_saved += cold_crossings[p];
    // Tail of the stream: every shape has been seen twice, so the realloc
    // ledger (growths surface at the NEXT checkout) must have settled.
    if (k >= 2 * static_cast<int>(patterns.size())) {
      tail_reallocs += resp.workspace_reallocations;
    }
  }

  const double cold_mean = cold_wall / cold_count;
  const double warm_mean = warm_wall / warm_count;
  const double hit_rate =
      static_cast<double>(svc.cache_hits()) /
      static_cast<double>(svc.cache_hits() + svc.cache_misses());
  std::printf("\ncold mean %.3f s  ->  warm mean %.3f s  (%.1fx), "
              "hit rate %.0f%%, %llu ordering crossings saved\n",
              cold_mean, warm_mean, cold_mean / warm_mean, 100.0 * hit_rate,
              crossings_saved);

  if (warm_mean >= cold_mean) {
    std::printf("ERROR: warm requests are not faster than cold ones!\n");
    return 1;
  }
  if (tail_reallocs != 0) {
    std::printf("ERROR: the stream tail performed %llu reallocations!\n",
                tail_reallocs);
    return 1;
  }
  std::printf("gates hold: hits skip every ordering collective, the warm "
              "path is faster, and the steady state allocates nothing.\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("ERROR: cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ordering_service\",\n");
    std::fprintf(f, "  \"service\": {\"ranks\": %d, \"cache_capacity\": %zu},\n",
                 options.ranks, options.cache_capacity);
    std::fprintf(f, "  \"patterns\": [\n");
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      std::fprintf(f, "    {\"n\": %lld, \"nnz\": %lld}%s\n",
                   static_cast<long long>(patterns[i].n()),
                   static_cast<long long>(patterns[i].nnz()),
                   i + 1 < patterns.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"requests\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& pt = points[i];
      std::fprintf(f,
                   "    {\"index\": %d, \"pattern\": %d, \"cache_hit\": %s, "
                   "\"wall_s\": %.6f, \"ordering_crossings\": %llu, "
                   "\"workspace_reallocations\": %llu}%s\n",
                   pt.index, pt.pattern, pt.hit ? "true" : "false", pt.wall,
                   pt.crossings, pt.reallocs,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"summary\": {\n");
    std::fprintf(f, "    \"cold_requests\": %d,\n    \"warm_requests\": %d,\n",
                 cold_count, warm_count);
    std::fprintf(f, "    \"cold_mean_wall_s\": %.6f,\n", cold_mean);
    std::fprintf(f, "    \"warm_mean_wall_s\": %.6f,\n", warm_mean);
    std::fprintf(f, "    \"warm_speedup\": %.3f,\n", cold_mean / warm_mean);
    std::fprintf(f, "    \"hit_rate\": %.4f,\n", hit_rate);
    std::fprintf(f, "    \"ordering_crossings_saved\": %llu,\n",
                 crossings_saved);
    std::fprintf(f, "    \"tail_reallocations\": %llu\n  }\n}\n",
                 tail_reallocs);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
