// Ordering-as-a-service tour: push a mixed hot/cold request stream through
// a ReorderingService and watch the three amortizations pay off.
//
//   * COLD requests (first sighting of a sparsity pattern) pay the full
//     pipeline: fingerprint -> BFS + SORTPERM ordering -> value-carrying
//     one-shot redistribution -> distributed CG.
//   * WARM requests (repeat patterns) hit the ordering cache: the service
//     jumps straight to the redistribution with the cached labels, and the
//     per-request ledger proves the ordering phases were never entered
//     (ZERO ordering-phase barrier crossings — gated below).
//   * The persistent per-rank workspaces settle after the warm-up: the
//     tail of the stream performs ZERO reallocations (gated below).
//
// A second, DELTA phase streams near-miss patterns at a fresh service:
// a two-component fixture whose small component is window-aligned takes
// small pattern deltas (edge adds/removes), and every delta lands as a
// REPAIR HIT — the cached ordering's untouched component is reused, only
// the dirtied one is re-leveled, and the spliced labels are bit-identical
// to a cold recompute. The repair is priced strictly between a pure hit
// and a cold run, in ordering crossings AND wall time.
//
// Gates (nonzero exit on violation): every cache hit shows 0 ordering
// crossings; the warm mean wall time beats the cold mean; the stream tail
// is reallocation-free; hit solutions are bit-identical to their cold
// reference; every delta repairs with 0 < crossings < cold; the repair
// mean wall sits strictly between the hit mean and the cold mean.
// `--json FILE` emits the hot/cold stream numbers (BENCH_3.json);
// `--delta-json FILE` emits the cold/hit/repair comparison (BENCH_4.json).
//
//   $ ./examples/ordering_service [--json BENCH_3.json] \
//                                 [--delta-json BENCH_4.json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/timer.hpp"
#include "service/service.hpp"
#include "sparse/generators.hpp"
#include "sparse/pattern_delta.hpp"

int main(int argc, char** argv) {
  using namespace drcm;
  namespace gen = sparse::gen;

  const char* json_path = nullptr;
  const char* delta_json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--delta-json") == 0 && i + 1 < argc) {
      delta_json_path = argv[++i];
    } else {
      std::printf("usage: %s [--json FILE] [--delta-json FILE]\n", argv[0]);
      return 1;
    }
  }

  // Three distinct high-diameter shells arriving scattered — the repeat
  // customers of the service. Same family, different patterns: each gets
  // its own fingerprint and its own cache entry.
  std::vector<sparse::CsrMatrix> patterns;
  std::vector<std::vector<double>> rhs;
  for (int i = 0; i < 3; ++i) {
    patterns.push_back(gen::with_laplacian_values(
        gen::relabel_random(gen::grid3d(5, 5, 60 + 10 * i, gen::Stencil3d::k27),
                            21 + i),
        0.02));
    const auto n = patterns.back().n();
    std::vector<double> b(static_cast<std::size_t>(n));
    for (index_t v = 0; v < n; ++v) {
      b[static_cast<std::size_t>(v)] =
          1.0 + 0.5 * static_cast<double>((v * 2654435761u) % 1000) / 1000.0;
    }
    rhs.push_back(std::move(b));
  }

  service::ServiceOptions options;
  options.ranks = 4;  // one 2x2 lane per submission
  service::ReorderingService svc(options);

  std::printf("ordering service: %d ranks, %zu patterns in rotation\n\n",
              options.ranks, patterns.size());
  std::printf("%4s %8s %6s %5s %10s %14s %9s\n", "req", "pattern", "n",
              "hit", "wall (s)", "ordering chg", "reallocs");

  struct Point {
    int index, pattern;
    bool hit;
    double wall;
    unsigned long long crossings, reallocs;
  };
  std::vector<Point> points;
  std::vector<service::OrderSolveResponse> cold(patterns.size());
  std::vector<unsigned long long> cold_crossings(patterns.size(), 0);

  // The stream: 12 requests cycling the three patterns. Requests 0-2 are
  // cold (first sighting); 3-11 are warm repeats of the same (pattern,
  // rhs) pairs and must hit.
  const int total = 12;
  double cold_wall = 0.0, warm_wall = 0.0;
  int cold_count = 0, warm_count = 0;
  unsigned long long crossings_saved = 0, tail_reallocs = 0;
  for (int k = 0; k < total; ++k) {
    const auto p = static_cast<std::size_t>(k) % patterns.size();
    service::OrderSolveRequest request;
    request.matrix = &patterns[p];
    request.b = rhs[p];
    WallTimer t;
    auto resp = svc.submit(request);
    const double wall = t.seconds();
    if (resp.status != service::RequestStatus::kOk) {
      std::printf("ERROR: request %d failed: %s\n", k, resp.error.c_str());
      return 1;
    }
    std::printf("%4d %8zu %6lld %5s %10.3f %14llu %9llu\n", k, p,
                static_cast<long long>(patterns[p].n()),
                resp.cache_hit ? "HIT" : "miss", wall,
                static_cast<unsigned long long>(resp.ordering_crossings),
                static_cast<unsigned long long>(resp.workspace_reallocations));
    points.push_back({k, static_cast<int>(p), resp.cache_hit, wall,
                      resp.ordering_crossings, resp.workspace_reallocations});
    if (k < static_cast<int>(patterns.size())) {
      if (resp.cache_hit) {
        std::printf("ERROR: request %d hit on a first sighting!\n", k);
        return 1;
      }
      cold_wall += wall;
      ++cold_count;
      cold_crossings[p] = resp.ordering_crossings;
      cold[p] = std::move(resp);
      continue;
    }
    // Warm phase: must hit, must never enter an ordering phase, and must
    // reproduce the cold solution bit for bit (same lane geometry, same
    // reduction order).
    if (!resp.cache_hit) {
      std::printf("ERROR: request %d missed on a repeat pattern!\n", k);
      return 1;
    }
    if (resp.ordering_crossings != 0) {
      std::printf("ERROR: cache hit %d crossed %llu ordering barriers!\n", k,
                  static_cast<unsigned long long>(resp.ordering_crossings));
      return 1;
    }
    if (resp.x.size() != cold[p].x.size() ||
        std::memcmp(resp.x.data(), cold[p].x.data(),
                    resp.x.size() * sizeof(double)) != 0) {
      std::printf("ERROR: hit %d diverged from its cold reference!\n", k);
      return 1;
    }
    warm_wall += wall;
    ++warm_count;
    crossings_saved += cold_crossings[p];
    // Tail of the stream: every shape has been seen twice, so the realloc
    // ledger (growths surface at the NEXT checkout) must have settled.
    if (k >= 2 * static_cast<int>(patterns.size())) {
      tail_reallocs += resp.workspace_reallocations;
    }
  }

  const double cold_mean = cold_wall / cold_count;
  const double warm_mean = warm_wall / warm_count;
  const double hit_rate =
      static_cast<double>(svc.cache_hits()) /
      static_cast<double>(svc.cache_hits() + svc.cache_misses());
  std::printf("\ncold mean %.3f s  ->  warm mean %.3f s  (%.1fx), "
              "hit rate %.0f%%, %llu ordering crossings saved\n",
              cold_mean, warm_mean, cold_mean / warm_mean, 100.0 * hit_rate,
              crossings_saved);

  if (warm_mean >= cold_mean) {
    std::printf("ERROR: warm requests are not faster than cold ones!\n");
    return 1;
  }
  if (tail_reallocs != 0) {
    std::printf("ERROR: the stream tail performed %llu reallocations!\n",
                tail_reallocs);
    return 1;
  }
  std::printf("gates hold: hits skip every ordering collective, the warm "
              "path is faster, and the steady state allocates nothing.\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("ERROR: cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ordering_service\",\n");
    std::fprintf(f, "  \"service\": {\"ranks\": %d, \"cache_capacity\": %zu},\n",
                 options.ranks, options.cache_capacity);
    std::fprintf(f, "  \"patterns\": [\n");
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      std::fprintf(f, "    {\"n\": %lld, \"nnz\": %lld}%s\n",
                   static_cast<long long>(patterns[i].n()),
                   static_cast<long long>(patterns[i].nnz()),
                   i + 1 < patterns.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"requests\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& pt = points[i];
      std::fprintf(f,
                   "    {\"index\": %d, \"pattern\": %d, \"cache_hit\": %s, "
                   "\"wall_s\": %.6f, \"ordering_crossings\": %llu, "
                   "\"workspace_reallocations\": %llu}%s\n",
                   pt.index, pt.pattern, pt.hit ? "true" : "false", pt.wall,
                   pt.crossings, pt.reallocs,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"summary\": {\n");
    std::fprintf(f, "    \"cold_requests\": %d,\n    \"warm_requests\": %d,\n",
                 cold_count, warm_count);
    std::fprintf(f, "    \"cold_mean_wall_s\": %.6f,\n", cold_mean);
    std::fprintf(f, "    \"warm_mean_wall_s\": %.6f,\n", warm_mean);
    std::fprintf(f, "    \"warm_speedup\": %.3f,\n", cold_mean / warm_mean);
    std::fprintf(f, "    \"hit_rate\": %.4f,\n", hit_rate);
    std::fprintf(f, "    \"ordering_crossings_saved\": %llu,\n",
                 crossings_saved);
    std::fprintf(f, "    \"tail_reallocations\": %llu\n  }\n}\n",
                 tail_reallocs);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  // ---- Delta stream: cold vs hit vs repair-hit -----------------------
  // Two components, window-aligned on purpose: n = 1280 puts the row-
  // window width at exactly 80, so the big component (1200 rows) fills
  // windows 0..14 and the small one (80 rows) fills window 15 — a delta
  // confined to the small component can never dirty a window overlapping
  // the big one, and the repair planner always reuses the big component.
  const auto big = gen::grid2d(30, 40);
  const auto small = gen::grid2d(8, 10);
  const auto adjacency = gen::disjoint_union({big, small});
  const index_t small_lo = big.n();
  const auto base = gen::with_laplacian_values(adjacency, 0.02);
  std::vector<double> db(static_cast<std::size_t>(base.n()));
  for (index_t v = 0; v < base.n(); ++v) {
    db[static_cast<std::size_t>(v)] =
        1.0 + 0.5 * static_cast<double>((v * 2654435761u) % 1000) / 1000.0;
  }

  service::ServiceOptions delta_options;
  delta_options.ranks = 4;
  service::ReorderingService delta_svc(delta_options);

  std::printf("\ndelta stream: %lld-row two-component fixture, small "
              "component takes the edits\n",
              static_cast<long long>(base.n()));
  std::printf("%-10s %10s %14s %8s %6s\n", "kind", "wall (s)",
              "ordering chg", "windows", "skips");

  struct DeltaPoint {
    const char* kind;
    double wall;
    unsigned long long crossings;
    int changed_windows;
    long long level_steps_skipped;
  };
  std::vector<DeltaPoint> delta_points;
  auto timed_submit = [&](const sparse::CsrMatrix& m, const char* kind)
      -> service::OrderSolveResponse {
    service::OrderSolveRequest rq;
    rq.matrix = &m;
    rq.b = db;
    WallTimer t;
    auto resp = delta_svc.submit(rq);
    const double wall = t.seconds();
    if (resp.status != service::RequestStatus::kOk) {
      std::printf("ERROR: delta-stream %s request failed: %s\n", kind,
                  resp.error.c_str());
      std::exit(1);
    }
    std::printf("%-10s %10.3f %14llu %8d %6lld\n", kind, wall,
                static_cast<unsigned long long>(resp.ordering_crossings),
                resp.changed_windows,
                static_cast<long long>(resp.level_steps_skipped));
    delta_points.push_back(
        {kind, wall, static_cast<unsigned long long>(resp.ordering_crossings),
         resp.changed_windows,
         static_cast<long long>(resp.level_steps_skipped)});
    return resp;
  };

  // Cold sighting, then a pure hit on the identical pattern.
  const auto delta_cold = timed_submit(base, "cold");
  const auto delta_hit = timed_submit(base, "hit");
  if (!delta_hit.cache_hit || delta_hit.ordering_crossings != 0) {
    std::printf("ERROR: repeat of the base pattern did not purely hit!\n");
    return 1;
  }
  const auto cold_ordering = delta_cold.ordering_crossings;

  // Three near-miss edits, all confined to the small component: every one
  // must land as a repair hit priced strictly under the cold ordering.
  struct Edit {
    const char* name;
    index_t adds, removes;
    u64 seed;
  };
  const Edit edits[] = {{"repair", 1, 0, 101},   // one edge added
                        {"repair", 0, 1, 202},   // one edge removed
                        {"repair", 2, 1, 303}};  // mixed edit
  double repair_wall_sum = 0.0;
  std::vector<double> hit_walls{delta_points[1].wall};
  unsigned long long repair_crossings_max = 0;
  std::vector<sparse::CsrMatrix> perturbed_store;
  perturbed_store.reserve(std::size(edits));
  for (const auto& e : edits) {
    const auto delta = sparse::random_pattern_delta(
        adjacency, e.adds, e.removes, e.seed, small_lo, adjacency.n());
    perturbed_store.push_back(gen::with_laplacian_values(
        sparse::apply_pattern_delta(adjacency, delta), 0.02));
    const auto& perturbed = perturbed_store.back();
    const auto rep = timed_submit(perturbed, e.name);
    if (!rep.repair_hit || rep.cache_hit) {
      std::printf("ERROR: a small-component delta did not repair!\n");
      return 1;
    }
    if (rep.ordering_crossings == 0 ||
        rep.ordering_crossings >= cold_ordering) {
      std::printf("ERROR: repair crossings (%llu) not strictly between a "
                  "hit's zero and the cold run's %llu!\n",
                  static_cast<unsigned long long>(rep.ordering_crossings),
                  static_cast<unsigned long long>(cold_ordering));
      return 1;
    }
    repair_wall_sum += delta_points.back().wall;
    repair_crossings_max =
        std::max(repair_crossings_max, delta_points.back().crossings);
    // The repaired entry is first-class: resubmitting the perturbed
    // pattern is a pure hit.
    const auto rehit = timed_submit(perturbed, "hit");
    if (!rehit.cache_hit || rehit.ordering_crossings != 0) {
      std::printf("ERROR: a repaired pattern did not re-hit purely!\n");
      return 1;
    }
    hit_walls.push_back(delta_points.back().wall);
  }

  const double repair_mean = repair_wall_sum / std::size(edits);
  double hit_sum = 0.0;
  for (const double w : hit_walls) hit_sum += w;
  const double hit_mean = hit_sum / static_cast<double>(hit_walls.size());
  const double delta_cold_wall = delta_points[0].wall;
  std::printf("\ncold %.3f s  >  repair mean %.3f s  >  hit mean %.3f s; "
              "repair crossings <= %llu, cold %llu\n",
              delta_cold_wall, repair_mean, hit_mean, repair_crossings_max,
              static_cast<unsigned long long>(cold_ordering));
  if (!(hit_mean < repair_mean && repair_mean < delta_cold_wall)) {
    std::printf("ERROR: repair wall is not strictly between hit and cold!\n");
    return 1;
  }
  std::printf("delta gates hold: every edit repaired, priced strictly "
              "between a hit and a cold run.\n");

  if (delta_json_path != nullptr) {
    std::FILE* f = std::fopen(delta_json_path, "w");
    if (f == nullptr) {
      std::printf("ERROR: cannot open %s for writing\n", delta_json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ordering_service_delta\",\n");
    std::fprintf(f,
                 "  \"service\": {\"ranks\": %d, \"repair_max_windows\": %d},\n",
                 delta_options.ranks, delta_options.repair_max_windows);
    std::fprintf(f, "  \"pattern\": {\"n\": %lld, \"nnz\": %lld},\n",
                 static_cast<long long>(base.n()),
                 static_cast<long long>(base.nnz()));
    std::fprintf(f, "  \"requests\": [\n");
    for (std::size_t i = 0; i < delta_points.size(); ++i) {
      const auto& pt = delta_points[i];
      std::fprintf(f,
                   "    {\"kind\": \"%s\", \"wall_s\": %.6f, "
                   "\"ordering_crossings\": %llu, \"changed_windows\": %d, "
                   "\"level_steps_skipped\": %lld}%s\n",
                   pt.kind, pt.wall, pt.crossings, pt.changed_windows,
                   pt.level_steps_skipped,
                   i + 1 < delta_points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"summary\": {\n");
    std::fprintf(f, "    \"cold_wall_s\": %.6f,\n", delta_cold_wall);
    std::fprintf(f, "    \"repair_mean_wall_s\": %.6f,\n", repair_mean);
    std::fprintf(f, "    \"hit_mean_wall_s\": %.6f,\n", hit_mean);
    std::fprintf(f, "    \"cold_ordering_crossings\": %llu,\n",
                 static_cast<unsigned long long>(cold_ordering));
    std::fprintf(f, "    \"repair_max_ordering_crossings\": %llu,\n",
                 repair_crossings_max);
    std::fprintf(f, "    \"repairs\": %zu\n  }\n}\n", std::size(edits));
    std::fclose(f);
    std::printf("wrote %s\n", delta_json_path);
  }
  return 0;
}
