// Distributed execution tour: run the paper's algorithm on real (simulated)
// process grids of growing size, watch the per-phase cost breakdown, and
// verify that the ordering never changes with the grid; run the fully
// distributed ordered_solve pipeline (RCM -> value-carrying redistribute ->
// 2D->1D re-own -> distributed CG, no gathered CSR) and watch the per-rank
// resident ledger shrink with the grid — then project the same execution to
// Edison-scale core counts with the trace model.
//
//   $ ./examples/distributed_scaling
#include <cstdio>

#include "common/timer.hpp"
#include "rcm/rcm_driver.hpp"
#include "rcm/trace_model.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"

int main() {
  using namespace drcm;
  namespace gen = sparse::gen;

  // An elongated 3D shell arriving scattered: the ldoor regime (high
  // diameter, RCM-friendly).
  const auto a = gen::relabel_random(gen::grid3d(6, 6, 90, gen::Stencil3d::k27), 11);
  std::printf("matrix: n=%lld nnz=%lld input bandwidth=%lld\n\n",
              static_cast<long long>(a.n()), static_cast<long long>(a.nnz()),
              static_cast<long long>(sparse::bandwidth(a)));

  std::printf("real SPMD runs (thread-backed ranks on this machine):\n");
  std::printf("%6s %10s %12s %12s %12s %10s\n", "ranks", "wall (s)",
              "spmspv chg", "sort chg", "other chg", "bandwidth");
  std::vector<index_t> reference;
  for (const int p : {1, 4, 9, 16}) {
    WallTimer t;
    const auto run = rcm::run_dist_rcm(p, a);
    const double wall = t.seconds();
    double spmspv = 0, sort = 0, other = 0;
    spmspv += run.report.aggregate(mps::Phase::kPeripheralSpmspv).max.model_total();
    spmspv += run.report.aggregate(mps::Phase::kOrderingSpmspv).max.model_total();
    sort += run.report.aggregate(mps::Phase::kOrderingSort).max.model_total();
    other += run.report.aggregate(mps::Phase::kPeripheralOther).max.model_total();
    other += run.report.aggregate(mps::Phase::kOrderingOther).max.model_total();
    const auto bw = sparse::bandwidth_with_labels(a, run.labels);
    std::printf("%6d %10.3f %12.5f %12.5f %12.5f %10lld\n", p, wall, spmspv,
                sort, other, static_cast<long long>(bw));
    if (reference.empty()) {
      reference = run.labels;
    } else if (run.labels != reference) {
      std::printf("ERROR: ordering changed with the grid size!\n");
      return 1;
    }
  }
  std::printf("ordering is bit-identical on every grid "
              "(the paper's quality-insensitivity claim, exactly).\n\n");

  // The Figure-1 pipeline end to end, fully distributed: ordering, in-place
  // permutation (values riding the redistribution), 2D->1D re-owning and
  // block-Jacobi CG all on the grid. peak-resident is the mpsim ledger's
  // per-rank high-water mark — it SHRINKS with the grid, where a gathered
  // permuted CSR would pin ~n + 2*nnz elements on every rank.
  const auto m = gen::with_laplacian_values(a, 0.02);
  std::vector<double> b(static_cast<std::size_t>(m.n()));
  for (index_t i = 0; i < m.n(); ++i) {
    b[static_cast<std::size_t>(i)] =
        1.0 + 0.5 * static_cast<double>((i * 2654435761u) % 1000) / 1000.0;
  }
  const auto gathered =
      static_cast<unsigned long long>(m.n() + 1) +
      2 * static_cast<unsigned long long>(m.nnz());
  std::printf("ordered_solve pipeline (RCM -> permute -> 2D->1D -> CG), "
              "rtol 1e-8; gathered-CSR footprint would be %llu:\n", gathered);
  std::printf("%6s %8s %12s %14s %12s\n", "ranks", "iters", "bandwidth",
              "peak-resident", "solver chg");
  for (const int p : {1, 4, 9, 16}) {
    solver::CgOptions opt;
    opt.rtol = 1e-8;
    const auto run = rcm::run_ordered_solve(p, m, b, /*precondition=*/true,
                                            {}, opt);
    if (!run.result.cg.converged) {
      std::printf("ERROR: pipeline did not converge at p=%d\n", p);
      return 1;
    }
    std::printf("%6d %8d %12lld %14llu %12.5f\n", p, run.result.cg.iterations,
                static_cast<long long>(run.result.permuted_bandwidth),
                static_cast<unsigned long long>(run.report.max_peak_resident()),
                run.report.aggregate(mps::Phase::kSolver).max.model_total());
    // The pipeline's bandwidth must agree with the grid-insensitive
    // ordering above. (Iteration counts may differ BETWEEN rank counts —
    // p diagonal preconditioner blocks per p ranks — but each equals the
    // replicated-CSR path's, which the equivalence tests pin.)
    if (run.result.permuted_bandwidth !=
        sparse::bandwidth_with_labels(a, reference)) {
      std::printf("ERROR: permuted bandwidth disagrees with the ordering!\n");
      return 1;
    }
    // The headline claim, checked for real: from q = 3 on, no rank's
    // ledger peak may reach the gathered-CSR footprint.
    if (p >= 9 && run.report.max_peak_resident() >= gathered) {
      std::printf("ERROR: p=%d ledger peak %llu reached the gathered "
                  "footprint %llu!\n", p,
                  static_cast<unsigned long long>(run.report.max_peak_resident()),
                  gathered);
      return 1;
    }
  }
  std::printf("no-gather pipeline holds: every rank's ledger peak stayed "
              "below the gathered footprint from p=9 on.\n\n");

  std::printf("trace-model projection to Edison-scale (6 threads/process):\n");
  std::printf("%6s %14s %10s\n", "cores", "modeled (s)", "speedup");
  const auto trace = rcm::ExecutionTrace::collect(a);
  const double t1 = rcm::project_cost(trace, 1, 1).total();
  for (const int cores : {1, 6, 24, 54, 216, 1014}) {
    const auto c = rcm::project_cost(trace, cores, cores >= 6 ? 6 : 1);
    std::printf("%6d %14.5f %9.1fx\n", cores, c.total(), t1 / c.total());
  }
  return 0;
}
