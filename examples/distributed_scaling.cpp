// Distributed execution tour: run the paper's algorithm on real (simulated)
// process grids of growing size, watch the per-phase cost breakdown, and
// verify that the ordering never changes with the grid; run the fully
// distributed ordered_solve pipeline (RCM -> value-carrying redistribute ->
// 2D->1D re-own -> distributed CG, no gathered CSR) and watch the per-rank
// resident ledger shrink with the grid — then project the same execution to
// Edison-scale core counts with the trace model.
//
// The ordered_solve section runs BOTH redistribution routes per grid — the
// legacy two-hop 2D-permute -> re-own chain ("before") and the one-shot
// streaming redistribution ("after") — and enforces the ledger regression
// gate: the one-shot per-rank resident peak must STRICTLY decrease across
// p = 4 -> 9 -> 16. `--json FILE` additionally emits the before/after
// redistribution words-moved and peak-resident numbers (BENCH_2.json).
//
//   $ ./examples/distributed_scaling [--json BENCH_2.json]
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/timer.hpp"
#include "rcm/rcm_driver.hpp"
#include "rcm/trace_model.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"

int main(int argc, char** argv) {
  using namespace drcm;
  namespace gen = sparse::gen;

  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--json FILE]\n", argv[0]);
      return 1;
    }
  }

  // An elongated 3D shell arriving scattered: the ldoor regime (high
  // diameter, RCM-friendly).
  const auto a = gen::relabel_random(gen::grid3d(6, 6, 90, gen::Stencil3d::k27), 11);
  std::printf("matrix: n=%lld nnz=%lld input bandwidth=%lld\n\n",
              static_cast<long long>(a.n()), static_cast<long long>(a.nnz()),
              static_cast<long long>(sparse::bandwidth(a)));

  std::printf("real SPMD runs (thread-backed ranks on this machine):\n");
  std::printf("%6s %10s %12s %12s %12s %10s\n", "ranks", "wall (s)",
              "spmspv chg", "sort chg", "other chg", "bandwidth");
  std::vector<index_t> reference;
  for (const int p : {1, 4, 9, 16}) {
    WallTimer t;
    const auto run = rcm::run_dist_rcm(p, a);
    const double wall = t.seconds();
    double spmspv = 0, sort = 0, other = 0;
    spmspv += run.report.aggregate(mps::Phase::kPeripheralSpmspv).max.model_total();
    spmspv += run.report.aggregate(mps::Phase::kOrderingSpmspv).max.model_total();
    sort += run.report.aggregate(mps::Phase::kOrderingSort).max.model_total();
    other += run.report.aggregate(mps::Phase::kPeripheralOther).max.model_total();
    other += run.report.aggregate(mps::Phase::kOrderingOther).max.model_total();
    const auto bw = sparse::bandwidth_with_labels(a, run.labels);
    std::printf("%6d %10.3f %12.5f %12.5f %12.5f %10lld\n", p, wall, spmspv,
                sort, other, static_cast<long long>(bw));
    if (reference.empty()) {
      reference = run.labels;
    } else if (run.labels != reference) {
      std::printf("ERROR: ordering changed with the grid size!\n");
      return 1;
    }
  }
  std::printf("ordering is bit-identical on every grid "
              "(the paper's quality-insensitivity claim, exactly).\n\n");

  // The Figure-1 pipeline end to end, fully distributed: ordering, one-shot
  // streaming redistribution (values riding the single alltoallv straight
  // to the 1D owners), and block-Jacobi CG all on the grid. peak-resident
  // is the mpsim ledger's per-rank high-water mark — it SHRINKS with the
  // grid, where a gathered permuted CSR would pin ~n + 2*nnz elements on
  // every rank. Each grid also runs the legacy two-hop route ("before")
  // so the one-shot win shows up as measured redistribution words moved.
  const auto m = gen::with_laplacian_values(a, 0.02);
  std::vector<double> b(static_cast<std::size_t>(m.n()));
  for (index_t i = 0; i < m.n(); ++i) {
    b[static_cast<std::size_t>(i)] =
        1.0 + 0.5 * static_cast<double>((i * 2654435761u) % 1000) / 1000.0;
  }
  const auto gathered =
      static_cast<unsigned long long>(m.n() + 1) +
      2 * static_cast<unsigned long long>(m.nnz());
  std::printf("ordered_solve pipeline (RCM -> one-shot redistribute -> CG), "
              "rtol 1e-8; gathered-CSR footprint would be %llu\n", gathered);
  std::printf("(redist words / peak-resident are per-rank maxima; 'two-hop' "
              "is the legacy permute -> re-own route):\n");
  std::printf("%6s %8s %12s %14s %14s %14s %14s\n", "ranks", "iters",
              "bandwidth", "redist words", "two-hop words", "peak-resident",
              "two-hop peak");
  struct Point {
    int ranks;
    unsigned long long one_words, one_peak, two_words, two_peak;
  };
  std::vector<Point> points;
  for (const int p : {1, 4, 9, 16}) {
    solver::CgOptions opt;
    opt.rtol = 1e-8;
    rcm::DistRcmOptions one_shot;
    one_shot.one_shot_redistribute = true;
    rcm::DistRcmOptions two_hop;
    two_hop.one_shot_redistribute = false;
    const auto run = rcm::run_ordered_solve(p, m, b, /*precondition=*/true,
                                            one_shot, opt);
    const auto before = rcm::run_ordered_solve(p, m, b, /*precondition=*/true,
                                               two_hop, opt);
    if (!run.result.cg.converged || !before.result.cg.converged) {
      std::printf("ERROR: pipeline did not converge at p=%d\n", p);
      return 1;
    }
    Point pt;
    pt.ranks = p;
    pt.one_words = run.report.aggregate(mps::Phase::kRedistribute).max.words;
    pt.one_peak = run.report.max_peak_resident();
    pt.two_words = before.report.aggregate(mps::Phase::kRedistribute).max.words;
    pt.two_peak = before.report.max_peak_resident();
    points.push_back(pt);
    std::printf("%6d %8d %12lld %14llu %14llu %14llu %14llu\n", p,
                run.result.cg.iterations,
                static_cast<long long>(run.result.permuted_bandwidth),
                pt.one_words, pt.two_words, pt.one_peak, pt.two_peak);
    // The two routes must be interchangeable: identical ordering quality
    // and identical solver trajectory (the tests pin the solutions bitwise).
    if (run.result.cg.iterations != before.result.cg.iterations ||
        run.result.permuted_bandwidth != before.result.permuted_bandwidth) {
      std::printf("ERROR: one-shot and two-hop runs disagree at p=%d!\n", p);
      return 1;
    }
    // The pipeline's bandwidth must agree with the grid-insensitive
    // ordering above. (Iteration counts may differ BETWEEN rank counts —
    // p diagonal preconditioner blocks per p ranks — but each equals the
    // replicated-CSR path's, which the equivalence tests pin.)
    if (run.result.permuted_bandwidth !=
        sparse::bandwidth_with_labels(a, reference)) {
      std::printf("ERROR: permuted bandwidth disagrees with the ordering!\n");
      return 1;
    }
    // The headline claim, checked for real: from q = 3 on, no rank's
    // ledger peak may reach the gathered-CSR footprint.
    if (p >= 9 && run.report.max_peak_resident() >= gathered) {
      std::printf("ERROR: p=%d ledger peak %llu reached the gathered "
                  "footprint %llu!\n", p,
                  static_cast<unsigned long long>(run.report.max_peak_resident()),
                  gathered);
      return 1;
    }
  }
  // The ledger-regression gate: the one-shot O(nnz/p + n/p) contract means
  // the per-rank peak must STRICTLY decrease as the grid grows. A flat or
  // rising step means some stage re-grew an O(n) or O(nnz/q) resident.
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].ranks < 4) continue;  // p=1 has no distribution to shrink
    if (points[i].one_peak >= points[i - 1].one_peak) {
      std::printf("ERROR: ledger regression: peak did not decrease from "
                  "p=%d (%llu) to p=%d (%llu)!\n", points[i - 1].ranks,
                  points[i - 1].one_peak, points[i].ranks, points[i].one_peak);
      return 1;
    }
  }
  std::printf("ledger-regression holds: per-rank peak strictly decreases "
              "with p, and stays below the gathered footprint from p=9 on.\n\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("ERROR: cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"one_shot_redistribution\",\n");
    std::fprintf(f, "  \"matrix\": {\"n\": %lld, \"nnz\": %lld},\n",
                 static_cast<long long>(m.n()),
                 static_cast<long long>(m.nnz()));
    std::fprintf(f, "  \"gathered_csr_elements\": %llu,\n", gathered);
    std::fprintf(f, "  \"units\": {\"words\": \"per-rank max words moved in "
                 "Phase::kRedistribute\", \"peak_resident\": \"per-rank max "
                 "ledger elements\"},\n");
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& pt = points[i];
      std::fprintf(f,
                   "    {\"ranks\": %d, \"before\": {\"redistribute_words\": "
                   "%llu, \"peak_resident\": %llu}, \"after\": "
                   "{\"redistribute_words\": %llu, \"peak_resident\": "
                   "%llu}}%s\n",
                   pt.ranks, pt.two_words, pt.two_peak, pt.one_words,
                   pt.one_peak, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n\n", json_path);
  }

  std::printf("trace-model projection to Edison-scale (6 threads/process):\n");
  std::printf("%6s %14s %10s\n", "cores", "modeled (s)", "speedup");
  const auto trace = rcm::ExecutionTrace::collect(a);
  const double t1 = rcm::project_cost(trace, 1, 1).total();
  for (const int cores : {1, 6, 24, 54, 216, 1014}) {
    const auto c = rcm::project_cost(trace, cores, cores >= 6 ? 6 : 1);
    std::printf("%6d %14.5f %9.1fx\n", cores, c.total(), t1 / c.total());
  }
  return 0;
}
