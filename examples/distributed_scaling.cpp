// Distributed execution tour: run the paper's algorithm on real (simulated)
// process grids of growing size, watch the per-phase cost breakdown, and
// verify that the ordering never changes with the grid — then project the
// same execution to Edison-scale core counts with the trace model.
//
//   $ ./examples/distributed_scaling
#include <cstdio>

#include "common/timer.hpp"
#include "rcm/rcm_driver.hpp"
#include "rcm/trace_model.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"

int main() {
  using namespace drcm;
  namespace gen = sparse::gen;

  // An elongated 3D shell arriving scattered: the ldoor regime (high
  // diameter, RCM-friendly).
  const auto a = gen::relabel_random(gen::grid3d(6, 6, 90, gen::Stencil3d::k27), 11);
  std::printf("matrix: n=%lld nnz=%lld input bandwidth=%lld\n\n",
              static_cast<long long>(a.n()), static_cast<long long>(a.nnz()),
              static_cast<long long>(sparse::bandwidth(a)));

  std::printf("real SPMD runs (thread-backed ranks on this machine):\n");
  std::printf("%6s %10s %12s %12s %12s %10s\n", "ranks", "wall (s)",
              "spmspv chg", "sort chg", "other chg", "bandwidth");
  std::vector<index_t> reference;
  for (const int p : {1, 4, 9, 16}) {
    WallTimer t;
    const auto run = rcm::run_dist_rcm(p, a);
    const double wall = t.seconds();
    double spmspv = 0, sort = 0, other = 0;
    spmspv += run.report.aggregate(mps::Phase::kPeripheralSpmspv).max.model_total();
    spmspv += run.report.aggregate(mps::Phase::kOrderingSpmspv).max.model_total();
    sort += run.report.aggregate(mps::Phase::kOrderingSort).max.model_total();
    other += run.report.aggregate(mps::Phase::kPeripheralOther).max.model_total();
    other += run.report.aggregate(mps::Phase::kOrderingOther).max.model_total();
    const auto bw = sparse::bandwidth_with_labels(a, run.labels);
    std::printf("%6d %10.3f %12.5f %12.5f %12.5f %10lld\n", p, wall, spmspv,
                sort, other, static_cast<long long>(bw));
    if (reference.empty()) {
      reference = run.labels;
    } else if (run.labels != reference) {
      std::printf("ERROR: ordering changed with the grid size!\n");
      return 1;
    }
  }
  std::printf("ordering is bit-identical on every grid "
              "(the paper's quality-insensitivity claim, exactly).\n\n");

  std::printf("trace-model projection to Edison-scale (6 threads/process):\n");
  std::printf("%6s %14s %10s\n", "cores", "modeled (s)", "speedup");
  const auto trace = rcm::ExecutionTrace::collect(a);
  const double t1 = rcm::project_cost(trace, 1, 1).total();
  for (const int cores : {1, 6, 24, 54, 216, 1014}) {
    const auto c = rcm::project_cost(trace, cores, cores >= 6 ? 6 : 1);
    std::printf("%6d %14.5f %9.1fx\n", cores, c.total(), t1 / c.total());
  }
  return 0;
}
