// Tests for the envelope (skyline) Cholesky solver and the distributed CG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "order/rcm_serial.hpp"
#include "solver/cg.hpp"
#include "solver/dist_cg.hpp"
#include "solver/skyline.hpp"
#include "solver/spmv.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

namespace drcm::solver {
namespace {

using sparse::CsrMatrix;
namespace gen = sparse::gen;

CsrMatrix spd(const CsrMatrix& pattern) {
  return gen::with_laplacian_values(pattern, 0.3);
}

std::vector<double> wavy(index_t n) {
  std::vector<double> b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i)] = std::sin(0.37 * static_cast<double>(i)) + 0.2;
  }
  return b;
}

// --- skyline ----------------------------------------------------------------

TEST(Skyline, StorageEqualsProfilePlusDiagonal) {
  const auto pattern = gen::grid2d(7, 9);
  const auto a = spd(pattern);
  SkylineMatrix sky(a);
  EXPECT_EQ(sky.storage(), sparse::profile(a) + a.n());
}

TEST(Skyline, FactorsAndSolvesTridiagonalExactly) {
  const auto a = spd(gen::path(40));
  SkylineMatrix sky(a);
  const auto flops = sky.factor();
  EXPECT_GT(flops, 0);
  const auto b = wavy(a.n());
  std::vector<double> x(b.size());
  sky.solve(b, x);
  std::vector<double> ax(b.size());
  spmv(a, x, ax);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(Skyline, MatchesCgOnMesh) {
  const auto a = spd(gen::grid2d(12, 12));
  const auto b = wavy(a.n());
  SkylineMatrix sky(a);
  sky.factor();
  std::vector<double> x_direct(b.size());
  sky.solve(b, x_direct);

  std::vector<double> x_cg(b.size(), 0.0);
  CgOptions opt;
  opt.rtol = 1e-12;
  pcg(a, b, x_cg, nullptr, opt);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(x_direct[i], x_cg[i], 1e-6);
  }
}

TEST(Skyline, SolveBeforeFactorThrows) {
  const auto a = spd(gen::path(4));
  SkylineMatrix sky(a);
  std::vector<double> b(4, 1.0), x(4);
  EXPECT_THROW(sky.solve(b, x), CheckError);
}

TEST(Skyline, DoubleFactorThrows) {
  const auto a = spd(gen::path(4));
  SkylineMatrix sky(a);
  sky.factor();
  EXPECT_THROW(sky.factor(), CheckError);
}

TEST(Skyline, IndefiniteMatrixRejected) {
  // -I is symmetric with full "envelope" but not PD.
  sparse::CooBuilder b(3);
  b.add(0, 0, -1.0);
  b.add(1, 1, -1.0);
  b.add(2, 2, -1.0);
  SkylineMatrix sky(b.to_csr(true));
  EXPECT_THROW(sky.factor(), CheckError);
}

TEST(Skyline, RcmShrinksFactorWorkByOrdersOfMagnitude) {
  // The paper's direct-method motivation, quantified.
  const auto scattered = gen::relabel_random(gen::grid2d(24, 24), 9);
  const auto labels = order::rcm_serial(scattered);
  const auto ordered = sparse::permute_symmetric(scattered, labels);

  SkylineMatrix sky_nat(spd(scattered));
  SkylineMatrix sky_rcm(spd(ordered));
  EXPECT_LT(sky_rcm.storage() * 10, sky_nat.storage());
  const auto flops_nat = sky_nat.factor();
  const auto flops_rcm = sky_rcm.factor();
  EXPECT_LT(flops_rcm * 50, flops_nat);

  // Both factorizations solve the same (permuted) physics correctly.
  const auto a = spd(ordered);
  const auto b = wavy(a.n());
  std::vector<double> x(b.size());
  sky_rcm.solve(b, x);
  std::vector<double> ax(b.size());
  spmv(a, x, ax);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(Skyline, PredictedFlopsMatchesActual) {
  const auto pattern = gen::relabel_random(gen::grid2d(10, 10), 4);
  const auto labels = sparse::identity_permutation(pattern.n());
  SkylineMatrix sky(spd(pattern));
  const auto actual = sky.factor();
  const auto predicted = SkylineMatrix::predicted_flops(pattern, labels);
  EXPECT_NEAR(predicted, static_cast<double>(actual), 1e-9);
}

TEST(Skyline, PatternOnlyMatrixRejected) {
  EXPECT_THROW(SkylineMatrix sky(gen::path(4)), CheckError);
}

// --- distributed CG ----------------------------------------------------------

class DistCgRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, DistCgRanks, ::testing::Values(1, 2, 3, 5, 8));

TEST_P(DistCgRanks, UnpreconditionedMatchesSequential) {
  const int p = GetParam();
  const auto a = spd(gen::grid2d(13, 11));
  const auto b = wavy(a.n());
  const auto run = run_dist_pcg(p, a, b, /*precondition=*/false);
  EXPECT_TRUE(run.result.converged);
  // Verify the residual directly.
  std::vector<double> ax(b.size());
  spmv(a, run.x, ax);
  double err = 0;
  for (std::size_t i = 0; i < b.size(); ++i) err = std::max(err, std::abs(ax[i] - b[i]));
  EXPECT_LT(err, 1e-5);
  // Iteration counts match the sequential solver (same math, fp-reordered
  // dots may shift it by a step or two).
  std::vector<double> x_seq(b.size(), 0.0);
  const auto seq = pcg(a, b, x_seq, nullptr);
  EXPECT_NEAR(run.result.iterations, seq.iterations, 2.0);
}

TEST_P(DistCgRanks, BlockJacobiMatchesSequentialBlocking) {
  const int p = GetParam();
  const auto a = spd(gen::relabel_random(gen::grid2d(12, 12), 3));
  const auto b = wavy(a.n());
  const auto run = run_dist_pcg(p, a, b, /*precondition=*/true);
  EXPECT_TRUE(run.result.converged);
  // The distributed preconditioner (one ILU(0) block per rank) equals the
  // sequential BlockJacobi with p blocks over the same balanced split.
  BlockJacobi pre(a, p);
  std::vector<double> x_seq(b.size(), 0.0);
  const auto seq = pcg(a, b, x_seq, &pre);
  EXPECT_NEAR(run.result.iterations, seq.iterations, 2.0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(run.x[i], x_seq[i], 1e-5);
  }
}

TEST_P(DistCgRanks, ChargesSolverPhase) {
  const int p = GetParam();
  const auto a = spd(gen::grid2d(8, 8));
  const auto b = wavy(a.n());
  const auto run = run_dist_pcg(p, a, b, true);
  const auto agg = run.report.aggregate(mps::Phase::kSolver);
  EXPECT_GT(agg.max.model_compute_seconds, 0.0);
  if (p > 1) {
    EXPECT_GT(agg.max.model_comm_seconds, 0.0);
    EXPECT_GT(agg.max.words, 0u);
  }
}

TEST(DistCg, RcmOrderingReducesHaloTraffic) {
  // The Figure-1 communication half, measured on the real distributed
  // solver: words moved per run shrink under RCM.
  const auto scattered = gen::relabel_random(gen::grid2d(20, 20), 8);
  const auto labels = order::rcm_serial(scattered);
  const auto ordered = sparse::permute_symmetric(scattered, labels);
  const auto b = wavy(scattered.n());
  CgOptions opt;
  opt.max_iterations = 30;  // fixed budget isolates per-iteration traffic
  opt.rtol = 0.0;
  const auto run_nat = run_dist_pcg(4, spd(scattered), b, false, opt);
  const auto run_rcm = run_dist_pcg(4, spd(ordered), b, false, opt);
  const auto words_nat = run_nat.report.aggregate(mps::Phase::kSolver).max.words;
  const auto words_rcm = run_rcm.report.aggregate(mps::Phase::kSolver).max.words;
  EXPECT_LT(words_rcm * 2, words_nat);
}

TEST(DistCg, ZeroRhs) {
  const auto a = spd(gen::grid2d(5, 5));
  std::vector<double> b(static_cast<std::size_t>(a.n()), 0.0);
  const auto run = run_dist_pcg(3, a, b, true);
  EXPECT_TRUE(run.result.converged);
  EXPECT_EQ(run.result.iterations, 0);
  for (const double v : run.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DistCg, MoreRanksThanRows) {
  const auto a = spd(gen::path(3));
  const auto b = wavy(3);
  const auto run = run_dist_pcg(5, a, b, true);  // two ranks own nothing
  EXPECT_TRUE(run.result.converged);
  std::vector<double> ax(3);
  spmv(a, run.x, ax);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
}

}  // namespace
}  // namespace drcm::solver
