// Tests for the 2D grid, the vector distribution math, and the
// dense/sparse distributed vectors.
#include <gtest/gtest.h>

#include "dist/dist_vector.hpp"
#include "dist/proc_grid.hpp"
#include "mpsim/runtime.hpp"

namespace drcm::dist {
namespace {

using mps::Comm;
using mps::Runtime;

TEST(VectorDist, ChunkBoundariesCoverExactly) {
  for (index_t n : {0, 1, 7, 100, 101, 1000}) {
    for (int q : {1, 2, 3, 4, 7}) {
      VectorDist d(n, q);
      EXPECT_EQ(d.chunk_lo(0), 0);
      EXPECT_EQ(d.chunk_lo(q), n);
      index_t total = 0;
      for (int c = 0; c < q; ++c) {
        EXPECT_GE(d.chunk_size(c), 0);
        total += d.chunk_size(c);
        // Balanced: sizes differ by at most 1.
        EXPECT_LE(std::abs(d.chunk_size(c) - n / q), 1);
      }
      EXPECT_EQ(total, n);
    }
  }
}

TEST(VectorDist, SubChunksPartitionChunks) {
  VectorDist d(103, 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(d.sub_lo(c, 0), d.chunk_lo(c));
    EXPECT_EQ(d.sub_lo(c, 4), d.chunk_lo(c + 1));
    for (int r = 0; r < 4; ++r) EXPECT_GE(d.sub_size(c, r), 0);
  }
}

TEST(VectorDist, OwnerMapsAreConsistentExhaustively) {
  for (index_t n : {1, 13, 64, 107}) {
    for (int q : {1, 2, 3, 5}) {
      VectorDist d(n, q);
      for (index_t g = 0; g < n; ++g) {
        const int c = d.owner_col(g);
        const int r = d.owner_row(g);
        ASSERT_GE(c, 0);
        ASSERT_LT(c, q);
        ASSERT_GE(r, 0);
        ASSERT_LT(r, q);
        // g lies inside the owned range of (r, c).
        const auto [lo, hi] = d.owned_range(r, c);
        EXPECT_LE(lo, g);
        EXPECT_LT(g, hi);
        EXPECT_EQ(d.owner_rank(g), r * q + c);
      }
    }
  }
}

TEST(ProcGrid, RequiresSquareWorld) {
  EXPECT_THROW(Runtime::run(2, [](Comm& world) { ProcGrid2D grid(world); }),
               CheckError);
  EXPECT_THROW(Runtime::run(8, [](Comm& world) { ProcGrid2D grid(world); }),
               CheckError);
}

TEST(ProcGrid, CoordinatesAndSubcommunicators) {
  Runtime::run(9, [](Comm& world) {
    ProcGrid2D grid(world);
    EXPECT_EQ(grid.q(), 3);
    EXPECT_EQ(grid.row(), world.rank() / 3);
    EXPECT_EQ(grid.col(), world.rank() % 3);
    EXPECT_EQ(grid.row_comm().size(), 3);
    EXPECT_EQ(grid.col_comm().size(), 3);
    // Row comm: all members share my row index.
    const auto rows = grid.row_comm().allgather(grid.row());
    for (const int r : rows) EXPECT_EQ(r, grid.row());
    const auto cols = grid.col_comm().allgather(grid.col());
    for (const int c : cols) EXPECT_EQ(c, grid.col());
    // Transpose partner is an involution.
    const int partner = grid.transpose_partner();
    EXPECT_EQ(grid.world_rank_of(partner % 3, partner / 3), world.rank());
  });
}

TEST(ProcGrid, LargestSquareHelper) {
  EXPECT_EQ(largest_square_grid(1), 1);
  EXPECT_EQ(largest_square_grid(3), 1);
  EXPECT_EQ(largest_square_grid(4), 4);
  EXPECT_EQ(largest_square_grid(24), 16);
  EXPECT_EQ(largest_square_grid(100), 100);
  EXPECT_THROW(largest_square_grid(0), CheckError);
}

class DistVectorGrids : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Grids, DistVectorGrids, ::testing::Values(1, 4, 9, 16));

TEST_P(DistVectorGrids, DenseVecRoundTrip) {
  const int p = GetParam();
  Runtime::run(p, [](Comm& world) {
    ProcGrid2D grid(world);
    VectorDist dist(57, grid.q());
    DistDenseVec v(dist, grid, kNoVertex);
    // Every rank writes g*10 into its owned range.
    for (index_t g = v.lo(); g < v.hi(); ++g) v.set(g, g * 10);
    const auto global = v.to_global(world);
    ASSERT_EQ(global.size(), 57u);
    for (index_t g = 0; g < 57; ++g) {
      EXPECT_EQ(global[static_cast<std::size_t>(g)], g * 10);
    }
  });
}

TEST_P(DistVectorGrids, SparseVecAssignValidatesOwnership) {
  const int p = GetParam();
  Runtime::run(p, [](Comm& world) {
    ProcGrid2D grid(world);
    VectorDist dist(40, grid.q());
    DistSpVec v(dist, grid);
    // Owned singleton is fine.
    v.assign({VecEntry{v.lo(), 1}});
    if (v.hi() - v.lo() >= 2) {
      EXPECT_THROW(v.assign({VecEntry{v.lo() + 1, 1}, VecEntry{v.lo(), 2}}),
                   CheckError);  // unsorted
    }
    if (world.size() > 1) {
      // Some rank does not own index 0.
      if (v.lo() > 0) {
        EXPECT_THROW(v.assign({VecEntry{0, 1}}), CheckError);
      }
    }
  });
}

TEST_P(DistVectorGrids, SparseVecGlobalNnzAndGather) {
  const int p = GetParam();
  Runtime::run(p, [](Comm& world) {
    ProcGrid2D grid(world);
    VectorDist dist(33, grid.q());
    DistSpVec v(dist, grid);
    // Each rank contributes every 3rd owned index.
    std::vector<VecEntry> mine;
    for (index_t g = v.lo(); g < v.hi(); ++g) {
      if (g % 3 == 0) mine.push_back(VecEntry{g, g + 100});
    }
    v.assign(mine);
    const index_t expected = (33 + 2) / 3;  // indices 0,3,...,30
    EXPECT_EQ(v.global_nnz(world), expected);
    const auto global = v.to_global(world);
    ASSERT_EQ(global.size(), static_cast<std::size_t>(expected));
    for (std::size_t i = 0; i < global.size(); ++i) {
      EXPECT_EQ(global[i].idx, static_cast<index_t>(3 * i));
      EXPECT_EQ(global[i].val, static_cast<index_t>(3 * i) + 100);
    }
  });
}

}  // namespace
}  // namespace drcm::dist
