// Tests for the execution-trace collector and the cost projection.
#include <gtest/gtest.h>

#include "order/rcm_serial.hpp"
#include "rcm/trace_model.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph_algo.hpp"

namespace drcm::rcm {
namespace {

namespace gen = sparse::gen;

TEST(Trace, PathTraceShape) {
  const auto a = gen::path(20);
  const auto tr = ExecutionTrace::collect(a);
  EXPECT_EQ(tr.n, 20);
  EXPECT_EQ(tr.components, 1);
  EXPECT_EQ(tr.pseudo_diameter, 19);
  // Ordering BFS has 20 levels of one vertex each.
  EXPECT_EQ(tr.ordering_levels.size(), 20u);
  for (const auto& l : tr.ordering_levels) EXPECT_EQ(l.frontier, 1);
}

TEST(Trace, SweepCountMatchesSerialStats) {
  for (int which = 0; which < 4; ++which) {
    const auto a = which == 0   ? gen::grid2d(10, 10)
                   : which == 1 ? gen::erdos_renyi(150, 4.0, 2)
                   : which == 2 ? gen::relabel_random(gen::grid3d(4, 4, 5), 3)
                                : gen::disjoint_union({gen::path(7), gen::cycle(8)});
    order::OrderingStats stats;
    order::rcm_serial(a, &stats);
    const auto tr = ExecutionTrace::collect(a);
    EXPECT_EQ(tr.components, stats.components) << which;
    EXPECT_EQ(tr.peripheral_sweeps, stats.peripheral_bfs_sweeps) << which;
  }
}

TEST(Trace, OrderingLevelsCoverEveryVertexOnce) {
  const auto a = gen::relabel_random(gen::grid2d(12, 9), 8);
  const auto tr = ExecutionTrace::collect(a);
  index_t total = 0;
  for (const auto& l : tr.ordering_levels) total += l.frontier;
  EXPECT_EQ(total, a.n());
  // Expansion totals the full edge count (each vertex expanded once).
  index_t expansion = 0;
  for (const auto& l : tr.ordering_levels) expansion += l.expansion;
  EXPECT_EQ(expansion, a.nnz());
}

TEST(Trace, PseudoDiameterMatchesGraphAlgo) {
  const auto a = gen::grid2d(15, 7);
  const auto tr = ExecutionTrace::collect(a);
  // Both run George-Liu with the same tie-breaks from the same seed rule
  // (min-degree vertex = a corner for this grid).
  EXPECT_EQ(tr.pseudo_diameter, sparse::pseudo_diameter(a, 0));
}

TEST(Trace, IsolatedVerticesAreComponents) {
  const auto a = gen::empty_graph(3);
  const auto tr = ExecutionTrace::collect(a);
  EXPECT_EQ(tr.components, 3);
  EXPECT_EQ(tr.pseudo_diameter, 0);
}

TEST(CostModel, SingleCoreIsPureCompute) {
  const auto tr = ExecutionTrace::collect(gen::grid2d(20, 20));
  const auto c = project_cost(tr, 1, 1);
  EXPECT_GT(c.total(), 0.0);
  EXPECT_DOUBLE_EQ(c.spmspv().comm, 0.0);
  EXPECT_DOUBLE_EQ(c.ordering_sort.comm, 0.0);
}

TEST(CostModel, ComputeShrinksWithCores) {
  const auto tr = ExecutionTrace::collect(gen::grid2d(30, 30));
  const auto c1 = project_cost(tr, 1, 1);
  const auto c64 = project_cost(tr, 64, 1);
  EXPECT_NEAR(c64.spmspv().compute, c1.spmspv().compute / 64.0, 1e-12);
}

TEST(CostModel, SortLatencyGrowsWithCores) {
  // The paper: "SORTPERM starts to dominate on high concurrency because it
  // performs an AllToAll among all processes".
  const auto tr = ExecutionTrace::collect(gen::relabel_random(gen::grid2d(40, 40), 1));
  const auto low = project_cost(tr, 24, 6);
  const auto high = project_cost(tr, 4056, 6);
  EXPECT_GT(high.ordering_sort.comm, low.ordering_sort.comm);
  // At the high end, sort communication outweighs its computation.
  EXPECT_GT(high.ordering_sort.comm, high.ordering_sort.compute);
}

TEST(CostModel, CommunicationCrossoverExists) {
  // Figure 5: computation dominates at low p; communication at high p.
  const auto tr = ExecutionTrace::collect(gen::relabel_random(gen::grid3d(12, 12, 12), 2));
  const auto low = project_cost(tr, 6, 6);
  const auto high = project_cost(tr, 4056, 6);
  EXPECT_GT(low.spmspv().compute, low.spmspv().comm);
  EXPECT_GT(high.spmspv().comm, high.spmspv().compute);
}

TEST(CostModel, HybridBeatsFlatAtScale) {
  // Figure 6: flat MPI is several times slower than 6-thread hybrid at
  // thousands of cores (the sort's alltoall spans 6x more processes).
  const auto tr = ExecutionTrace::collect(gen::relabel_random(gen::grid2d(64, 64), 3));
  const auto flat = project_cost(tr, 4056, 1);
  const auto hybrid = project_cost(tr, 4056, 6);
  EXPECT_GT(flat.total(), 2.0 * hybrid.total());
  // At a single core the two configurations coincide.
  const auto f1 = project_cost(tr, 1, 1);
  EXPECT_NEAR(f1.total(), project_cost(tr, 1, 1).total(), 1e-15);
}

TEST(CostModel, HighDiameterScalesWorse) {
  // Figure 4 narrative: ldoor-like (high diameter) stops scaling before
  // low-diameter graphs of similar size.
  const auto elongated = gen::grid3d(6, 6, 300);   // high diameter
  const auto compact = gen::grid3d(22, 22, 22);    // low diameter, similar n
  const auto tr_hi = ExecutionTrace::collect(elongated);
  const auto tr_lo = ExecutionTrace::collect(compact);
  const auto speedup = [](const ExecutionTrace& tr, int cores) {
    return project_cost(tr, 1, 1).total() / project_cost(tr, cores, 6).total();
  };
  EXPECT_GT(speedup(tr_lo, 1014), speedup(tr_hi, 1014));
}

TEST(CostModel, RejectsBadConfigurations) {
  const auto tr = ExecutionTrace::collect(gen::path(4));
  EXPECT_THROW(project_cost(tr, 0, 1), CheckError);
  EXPECT_THROW(project_cost(tr, 4, 0), CheckError);
  EXPECT_THROW(project_cost(tr, 4, 8), CheckError);
}

TEST(CostModel, BreakdownComponentsAreNonNegative) {
  const auto tr = ExecutionTrace::collect(gen::erdos_renyi(300, 8.0, 5));
  for (int cores : {1, 6, 24, 216, 1014}) {
    const auto c = project_cost(tr, cores, cores >= 6 ? 6 : 1);
    EXPECT_GE(c.peripheral_spmspv.total(), 0.0);
    EXPECT_GE(c.peripheral_other.total(), 0.0);
    EXPECT_GE(c.ordering_spmspv.total(), 0.0);
    EXPECT_GE(c.ordering_sort.total(), 0.0);
    EXPECT_GE(c.ordering_other.total(), 0.0);
    EXPECT_GT(c.total(), 0.0);
  }
}

}  // namespace
}  // namespace drcm::rcm
