// Degenerate graphs through the full ordered_solve pipeline: the shapes
// that stress every boundary condition at once — empty worlds, single
// vertices, multiple components, maximal-degree hubs, and graphs with no
// edges at all. Each must come out the other end with a valid permutation
// and a solution that actually solves the system, at every cell of the
// {1,4,9} simulated rank matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "dist_rank_matrix.hpp"
#include "rcm/rcm_driver.hpp"
#include "solver/spmv.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/permute.hpp"

namespace drcm::rcm {
namespace {

namespace gen = sparse::gen;

std::vector<double> mild_rhs(index_t n) {
  std::vector<double> b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i)] = 1.0 + static_cast<double>(i % 7);
  }
  return b;
}

double relative_residual(const sparse::CsrMatrix& a,
                         std::span<const double> b,
                         std::span<const double> x) {
  std::vector<double> ax(b.size(), 0.0);
  solver::spmv(a, x, ax);
  double rr = 0.0, bb = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double r = b[i] - ax[i];
    rr += r * r;
    bb += b[i] * b[i];
  }
  return bb == 0.0 ? std::sqrt(rr) : std::sqrt(rr / bb);
}

/// The shared exercise: run the pipeline, demand a permutation, a converged
/// solve, and a solution that satisfies the ORIGINAL system.
void expect_solves(const sparse::CsrMatrix& m, int p) {
  const auto b = mild_rhs(m.n());
  const auto run = run_ordered_solve(p, m, b, /*precondition=*/true);
  EXPECT_TRUE(sparse::is_valid_permutation(run.result.labels))
      << "p=" << p << " n=" << m.n();
  ASSERT_TRUE(run.result.cg.converged) << "p=" << p << " n=" << m.n();
  ASSERT_EQ(run.result.x.size(), b.size());
  EXPECT_LE(relative_residual(m, b, run.result.x), 1e-6)
      << "p=" << p << " n=" << m.n();
}

TEST(DegeneratePipeline, EmptyMatrixYieldsEmptyEverything) {
  const sparse::CsrMatrix m = sparse::CooBuilder(0).to_csr(true);
  for (const int p : dist::testing::rank_counts()) {
    const auto run = run_ordered_solve(p, m, {}, /*precondition=*/true);
    EXPECT_TRUE(run.result.labels.empty());
    EXPECT_TRUE(run.result.x.empty());
    EXPECT_TRUE(run.result.cg.converged);
    EXPECT_EQ(run.result.permuted_bandwidth, 0);
  }
}

TEST(DegeneratePipeline, SingletonSolvesItsOneEquation) {
  sparse::CooBuilder coo(1);
  coo.add(0, 0, 2.0);
  const auto m = coo.to_csr(true);
  const std::vector<double> b{3.0};
  for (const int p : dist::testing::rank_counts()) {
    const auto run = run_ordered_solve(p, m, b, /*precondition=*/true);
    ASSERT_EQ(run.result.labels.size(), 1u);
    EXPECT_EQ(run.result.labels[0], 0);
    ASSERT_TRUE(run.result.cg.converged);
    ASSERT_EQ(run.result.x.size(), 1u);
    EXPECT_NEAR(run.result.x[0], 1.5, 1e-12);
  }
}

TEST(DegeneratePipeline, DisconnectedComponentsAreOrderedAndSolved) {
  // Three components of very different shapes; the ordering loop must seed
  // each one and the solve must converge across all of them.
  const auto pattern = gen::disjoint_union(
      {gen::path(7), gen::grid2d(3, 3), gen::star(5)});
  const auto m = gen::with_laplacian_values(pattern, 0.05);
  for (const int p : dist::testing::rank_counts()) expect_solves(m, p);
}

TEST(DegeneratePipeline, StarHubSurvivesTheLevelKernels) {
  // One vertex of degree n-1: the worst skew the SORTPERM worker stripes
  // and the SpMSpV accumulators see.
  const auto m = gen::with_laplacian_values(gen::star(17), 0.05);
  for (const int p : dist::testing::rank_counts()) expect_solves(m, p);
}

TEST(DegeneratePipeline, AllIsolatedVerticesAreADiagonalSolve) {
  // No edges anywhere: every vertex is its own component, the level
  // kernels see empty frontiers, and the matrix is pure diagonal.
  const auto m = gen::with_laplacian_values(gen::empty_graph(12), 0.05);
  for (const int p : dist::testing::rank_counts()) expect_solves(m, p);
}

}  // namespace
}  // namespace drcm::rcm
