// Tests for permutation utilities and symmetric matrix permutation.
#include <gtest/gtest.h>

#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/permute.hpp"

namespace drcm::sparse {
namespace {

TEST(Permutation, ValidityChecks) {
  EXPECT_TRUE(is_valid_permutation(std::vector<index_t>{}));
  EXPECT_TRUE(is_valid_permutation(std::vector<index_t>{0}));
  EXPECT_TRUE(is_valid_permutation(std::vector<index_t>{2, 0, 1}));
  EXPECT_FALSE(is_valid_permutation(std::vector<index_t>{0, 0}));
  EXPECT_FALSE(is_valid_permutation(std::vector<index_t>{1, 2}));
  EXPECT_FALSE(is_valid_permutation(std::vector<index_t>{-1, 0}));
}

TEST(Permutation, InverseRoundTrip) {
  const std::vector<index_t> p{3, 1, 0, 2};
  const auto inv = inverse_permutation(p);
  EXPECT_EQ(inv, (std::vector<index_t>{2, 1, 3, 0}));
  EXPECT_EQ(inverse_permutation(inv), p);
}

TEST(Permutation, InverseRejectsNonPermutation) {
  EXPECT_THROW(inverse_permutation(std::vector<index_t>{0, 0}), CheckError);
}

TEST(Permutation, IdentityIsSelfInverse) {
  const auto id = identity_permutation(6);
  EXPECT_EQ(inverse_permutation(id), id);
}

TEST(Permutation, RandomIsValidAndSeedStable) {
  const auto p1 = random_permutation(100, 9);
  const auto p2 = random_permutation(100, 9);
  const auto p3 = random_permutation(100, 10);
  EXPECT_TRUE(is_valid_permutation(p1));
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
}

TEST(PermuteSymmetric, IdentityIsNoop) {
  const auto a = gen::grid2d(4, 5);
  const auto b = permute_symmetric(a, identity_permutation(a.n()));
  EXPECT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.n(); ++i) {
    const auto ra = a.row(i), rb = b.row(i);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t k = 0; k < ra.size(); ++k) EXPECT_EQ(ra[k], rb[k]);
  }
}

TEST(PermuteSymmetric, EntriesTravelCorrectly) {
  const auto a = gen::path(4);  // edges 0-1, 1-2, 2-3
  const std::vector<index_t> labels{3, 1, 2, 0};  // old -> new
  const auto b = permute_symmetric(a, labels);
  // Edge (0,1) -> (3,1); (1,2) -> (1,2); (2,3) -> (2,0).
  EXPECT_TRUE(b.has_entry(3, 1));
  EXPECT_TRUE(b.has_entry(1, 2));
  EXPECT_TRUE(b.has_entry(2, 0));
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_TRUE(b.is_pattern_symmetric());
}

TEST(PermuteSymmetric, ValuesFollowEntries) {
  CooBuilder c(3);
  c.add_symmetric(0, 1, 5.0);
  c.add_symmetric(1, 2, 7.0);
  const auto a = c.to_csr(true);
  const std::vector<index_t> labels{2, 0, 1};
  const auto b = permute_symmetric(a, labels);
  ASSERT_TRUE(b.has_values());
  // (0,1,5.0) -> (2,0); (1,2,7.0) -> (0,1).
  EXPECT_TRUE(b.has_entry(2, 0));
  const auto r0 = b.row(0);
  for (std::size_t k = 0; k < r0.size(); ++k) {
    if (r0[k] == 1) {
      EXPECT_DOUBLE_EQ(b.row_values(0)[k], 7.0);
    }
    if (r0[k] == 2) {
      EXPECT_DOUBLE_EQ(b.row_values(0)[k], 5.0);
    }
  }
}

TEST(PermuteSymmetric, RejectsBadLabels) {
  const auto a = gen::path(3);
  EXPECT_THROW(permute_symmetric(a, std::vector<index_t>{0, 1}), CheckError);
  EXPECT_THROW(permute_symmetric(a, std::vector<index_t>{0, 0, 1}), CheckError);
}

TEST(PermuteSymmetric, DoublePermutationComposes) {
  const auto a = gen::grid2d_9pt(5, 4);
  const auto p = random_permutation(a.n(), 1);
  const auto q = random_permutation(a.n(), 2);
  // Permuting by p then q equals permuting by q∘p.
  const auto b = permute_symmetric(permute_symmetric(a, p), q);
  std::vector<index_t> composed(static_cast<std::size_t>(a.n()));
  for (index_t v = 0; v < a.n(); ++v) {
    composed[static_cast<std::size_t>(v)] =
        q[static_cast<std::size_t>(p[static_cast<std::size_t>(v)])];
  }
  const auto c = permute_symmetric(a, composed);
  EXPECT_EQ(b.col_idx().size(), c.col_idx().size());
  for (index_t i = 0; i < b.n(); ++i) {
    const auto rb = b.row(i), rc = c.row(i);
    ASSERT_EQ(rb.size(), rc.size()) << "row " << i;
    for (std::size_t k = 0; k < rb.size(); ++k) EXPECT_EQ(rb[k], rc[k]);
  }
}

}  // namespace
}  // namespace drcm::sparse
