// The ordering cache of the reordering service: correctness of the hit
// path, collision resistance of the fingerprint, fault hygiene of the
// cache, and the steady-state zero-work contracts of a long stream.
//
//  * a repeat pattern HITS, skips every ordering collective (the ledger
//    says exactly zero ordering-phase crossings), and still produces a
//    solution bit-identical to the cold run and to run_ordered_solve;
//  * a hit serves a DIFFERENT rhs correctly (the cache keys the pattern,
//    not the problem);
//  * same-shape different-pattern requests MUST miss (n and nnz equal,
//    structure different), and ordering-salient options salt the key;
//  * a mid-solve rank death returns a structured kFault and never leaves
//    a poisoned cache entry behind;
//  * a 50-request stream of one pattern runs with zero workspace
//    reallocations and zero ordering crossings from request 3 on;
//  * eviction is cost/recency-weighted (an expensive ordering survives
//    cheap churn), an ordering-irrelevant seed does not split the key,
//    and unsorted CSR input is rejected before it can be fingerprinted.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "mpsim/fault.hpp"
#include "rcm/rcm_driver.hpp"
#include "service/service.hpp"
#include "sparse/generators.hpp"

namespace drcm::service {
namespace {

namespace gen = sparse::gen;

std::vector<double> wavy_rhs(index_t n, unsigned salt = 0) {
  std::vector<double> b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i)] =
        1.0 +
        0.5 * static_cast<double>(((i + salt) * 2654435761u) % 1000) / 1000.0;
  }
  return b;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "component " << i;
  }
}

TEST(ServiceCache, RepeatPatternHitsAndSolvesBitIdentically) {
  const auto m = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(16, 16), 5), 0.02);
  const auto b = wavy_rhs(m.n());

  ServiceOptions options;
  options.ranks = 4;
  ReorderingService service(options);

  OrderSolveRequest request;
  request.matrix = &m;
  request.b = b;

  const auto cold = service.submit(request);
  ASSERT_EQ(cold.status, RequestStatus::kOk);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.ordering_crossings, 0u);

  const auto warm = service.submit(request);
  ASSERT_EQ(warm.status, RequestStatus::kOk);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.ordering_crossings, 0u)
      << "a cache hit must skip every ordering collective";
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  EXPECT_EQ(warm.permuted_bandwidth, cold.permuted_bandwidth);
  EXPECT_EQ(warm.cg.iterations, cold.cg.iterations);
  expect_bitwise_equal(warm.x, cold.x);

  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_EQ(service.cache_misses(), 1u);
  EXPECT_EQ(service.cache_size(), 1u);

  // Both must equal the one-call pipeline on the same four ranks.
  const auto reference = rcm::run_ordered_solve(4, m, b);
  ASSERT_TRUE(reference.result.cg.converged);
  expect_bitwise_equal(cold.x, reference.result.x);

  // The ledgers are per request: the hit's report must show zero
  // crossings in all five ordering phases on every lane rank.
  for (const auto& rank : warm.report.ranks) {
    EXPECT_EQ(mps::ordering_crossings(rank), 0u);
  }
}

TEST(ServiceCache, HitServesADifferentRhsCorrectly) {
  const auto m = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(14, 15), 9), 0.02);
  const auto b1 = wavy_rhs(m.n(), 0);
  const auto b2 = wavy_rhs(m.n(), 77);

  ServiceOptions options;
  options.ranks = 4;
  ReorderingService service(options);

  OrderSolveRequest request;
  request.matrix = &m;
  request.b = b1;
  ASSERT_EQ(service.submit(request).status, RequestStatus::kOk);

  request.b = b2;
  const auto warm = service.submit(request);
  ASSERT_EQ(warm.status, RequestStatus::kOk);
  EXPECT_TRUE(warm.cache_hit);

  const auto reference = rcm::run_ordered_solve(4, m, b2);
  expect_bitwise_equal(warm.x, reference.result.x);
}

TEST(ServiceCache, SameShapeDifferentPatternMustMiss) {
  // Relabelings of one graph: identical n, identical nnz, different
  // structure. The structure hash must separate them — a false hit would
  // order matrix B with matrix A's labels and silently destroy the
  // bandwidth (or worse, the permutation property is the only thing the
  // solver would notice).
  const auto base = gen::grid2d(16, 16);
  const auto a = gen::with_laplacian_values(gen::relabel_random(base, 1), 0.02);
  const auto c = gen::with_laplacian_values(gen::relabel_random(base, 2), 0.02);
  ASSERT_EQ(a.n(), c.n());
  ASSERT_EQ(a.nnz(), c.nnz());
  const auto b = wavy_rhs(a.n());

  ServiceOptions options;
  options.ranks = 4;
  ReorderingService service(options);

  OrderSolveRequest ra;
  ra.matrix = &a;
  ra.b = b;
  OrderSolveRequest rc;
  rc.matrix = &c;
  rc.b = b;

  const auto first = service.submit(ra);
  const auto second = service.submit(rc);
  ASSERT_EQ(first.status, RequestStatus::kOk);
  ASSERT_EQ(second.status, RequestStatus::kOk);
  EXPECT_FALSE(second.cache_hit)
      << "same (n, nnz) with different structure must not collide";
  EXPECT_NE(first.fingerprint.hash, second.fingerprint.hash);
  EXPECT_EQ(service.cache_misses(), 2u);

  // Ordering-salient options salt the key: the load-balanced ordering of
  // the SAME pattern is a different labeling, so it must miss too …
  OrderSolveRequest balanced = ra;
  balanced.rcm.load_balance = true;
  const auto third = service.submit(balanced);
  ASSERT_EQ(third.status, RequestStatus::kOk);
  EXPECT_FALSE(third.cache_hit);

  // … as must a different balance seed; but repeating the exact salted
  // configuration hits.
  OrderSolveRequest reseeded = balanced;
  reseeded.rcm.seed = balanced.rcm.seed + 1;
  EXPECT_FALSE(service.submit(reseeded).cache_hit);
  EXPECT_TRUE(service.submit(balanced).cache_hit);
}

TEST(ServiceCache, FaultNeverPoisonsTheCache) {
  const auto a = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(13, 14), 4), 0.02);
  const auto c = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(13, 14), 8), 0.02);
  const auto b = wavy_rhs(a.n());

  mps::FaultPlan plan;
  ServiceOptions options;
  options.ranks = 4;
  options.faults = &plan;
  options.watchdog_seconds = 20.0;
  ReorderingService service(options);

  OrderSolveRequest ra;
  ra.matrix = &a;
  ra.b = b;
  OrderSolveRequest rc;
  rc.matrix = &c;
  rc.b = b;

  ASSERT_EQ(service.submit(ra).status, RequestStatus::kOk);
  ASSERT_EQ(service.cache_size(), 1u);

  // Kill rank 1 mid-ordering of pattern C's first submission. The request
  // must come back as a structured fault — and the cache must NOT have
  // gained an entry for C.
  plan.die_at(1, 10);
  const auto killed = service.submit(rc);
  EXPECT_EQ(killed.status, RequestStatus::kFault);
  EXPECT_NE(killed.error.find("rank-death"), std::string::npos)
      << killed.error;
  EXPECT_EQ(service.cache_size(), 1u)
      << "a faulted request must not leave a cache entry";

  // The retry (fault spent) is a MISS, completes, and only then caches;
  // a fourth submission hits and matches the fault-free reference.
  const auto retried = service.submit(rc);
  ASSERT_EQ(retried.status, RequestStatus::kOk);
  EXPECT_FALSE(retried.cache_hit);
  EXPECT_EQ(service.cache_size(), 2u);

  const auto warm = service.submit(rc);
  ASSERT_EQ(warm.status, RequestStatus::kOk);
  EXPECT_TRUE(warm.cache_hit);
  const auto reference = rcm::run_ordered_solve(4, c, b);
  expect_bitwise_equal(warm.x, reference.result.x);
}

TEST(ServiceCache, SteadyStateStreamRunsWithoutReallocationOrOrderingWork) {
  // A 50-request stream of one pattern (rhs varies): request 1 is the cold
  // miss that sizes every buffer, request 2's checkouts DETECT the growth
  // request 1 performed (capacity deltas are recorded at the buffer's next
  // checkout — see DistWorkspace), and from request 3 on the service must
  // run allocation-free and ordering-free: zero workspace reallocations,
  // zero ordering crossings, every request a hit.
  const auto m = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(12, 12), 6), 0.02);

  ServiceOptions options;
  options.ranks = 4;
  ReorderingService service(options);

  std::uint64_t reallocs_after_warmup = 0;
  std::vector<double> x2;
  for (int k = 1; k <= 50; ++k) {
    const auto b = wavy_rhs(m.n(), static_cast<unsigned>(k % 3));
    OrderSolveRequest request;
    request.matrix = &m;
    request.b = b;
    const auto resp = service.submit(request);
    ASSERT_EQ(resp.status, RequestStatus::kOk) << "request " << k;
    if (k == 1) {
      EXPECT_FALSE(resp.cache_hit);
      continue;
    }
    EXPECT_TRUE(resp.cache_hit) << "request " << k;
    EXPECT_EQ(resp.ordering_crossings, 0u) << "request " << k;
    if (k == 2) {
      x2 = resp.x;
      reallocs_after_warmup = service.workspace_reallocations();
      continue;
    }
    EXPECT_EQ(resp.workspace_reallocations, 0u)
        << "request " << k << " reallocated in the steady state";
    // Same rhs cycle as request 2 -> bitwise the same solution.
    if (k % 3 == 2 % 3) expect_bitwise_equal(resp.x, x2);
  }
  EXPECT_EQ(service.workspace_reallocations(), reallocs_after_warmup)
      << "the workspace ledger must be flat from request 3 on";
  EXPECT_EQ(service.cache_hits(), 49u);
  EXPECT_EQ(service.cache_misses(), 1u);
}

TEST(ServiceCache, CostRecencyEvictionKeepsTheExpensiveEntry) {
  // Capacity 2 with cost/recency eviction: BIG's ordering wall is orders
  // of magnitude above the small patterns', so when a third entry needs a
  // slot the victim is the cheap older entry — under the old FIFO policy
  // BIG (first in) would have been thrown away and recomputed.
  const auto big = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(48, 48), 1), 0.02);
  const auto s1 = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(6, 6), 2), 0.02);
  const auto s2 = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(6, 6), 3), 0.02);
  const auto b_big = wavy_rhs(big.n());
  const auto b_small = wavy_rhs(s1.n());

  ServiceOptions options;
  options.ranks = 4;
  options.cache_capacity = 2;
  options.enable_repair = false;  // isolate the eviction policy
  ReorderingService service(options);

  OrderSolveRequest rbig, rs1, rs2;
  rbig.matrix = &big;
  rbig.b = b_big;
  rs1.matrix = &s1;
  rs1.b = b_small;
  rs2.matrix = &s2;
  rs2.b = b_small;

  EXPECT_FALSE(service.submit(rbig).cache_hit);
  EXPECT_FALSE(service.submit(rs1).cache_hit);
  EXPECT_FALSE(service.submit(rs2).cache_hit);  // needs a slot
  EXPECT_EQ(service.cache_size(), 2u);
  EXPECT_TRUE(service.submit(rbig).cache_hit)
      << "the expensive ordering must survive the cheap churn";
  EXPECT_FALSE(service.submit(rs1).cache_hit)
      << "the cheap older entry was the cost/recency victim";

  ServiceOptions uncached = options;
  uncached.cache_capacity = 0;
  ReorderingService nocache(uncached);
  EXPECT_FALSE(nocache.submit(rs1).cache_hit);
  EXPECT_FALSE(nocache.submit(rs1).cache_hit);
  EXPECT_EQ(nocache.cache_size(), 0u);
}

TEST(ServiceCache, UnbalancedSeedIsNotSalient) {
  // Seed-salience audit (service/fingerprint.hpp): with load_balance off,
  // DistRcmOptions::seed never reaches the ordering — the peripheral
  // finder, CM levels and SORTPERM are seed-free deterministic. Two
  // differently-seeded unbalanced requests therefore compute the SAME
  // labeling and MUST share one cache slot; separate slots would just
  // recompute the identical ordering (the pre-audit behavior).
  const auto m = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(13, 13), 7), 0.02);
  const auto b = wavy_rhs(m.n());

  ServiceOptions options;
  options.ranks = 4;
  ReorderingService service(options);

  OrderSolveRequest first;
  first.matrix = &m;
  first.b = b;
  first.rcm.seed = 123;
  const auto cold = service.submit(first);
  ASSERT_EQ(cold.status, RequestStatus::kOk);
  EXPECT_FALSE(cold.cache_hit);

  OrderSolveRequest reseeded = first;
  reseeded.rcm.seed = 456;
  const auto warm = service.submit(reseeded);
  ASSERT_EQ(warm.status, RequestStatus::kOk);
  EXPECT_TRUE(warm.cache_hit)
      << "an ordering-irrelevant seed must not split the cache key";
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  EXPECT_EQ(service.cache_size(), 1u);
  expect_bitwise_equal(warm.x, cold.x);
}

TEST(ServiceCache, AlgorithmSaltsTheKeyAndGpsIgnoresPeripheralMode) {
  // Algorithm-salience audit (service/fingerprint.hpp), the portfolio twin
  // of UnbalancedSeedIsNotSalient:
  //  * the algorithm is ALWAYS salient — RCM, Sloan and GPS label the same
  //    pattern differently, so their entries must occupy distinct slots;
  //  * peripheral_mode is salient for kRcm (it moves the component roots,
  //    hence the labels) …
  //  * … but NOT for kGps, which never consumes the knob: two GPS requests
  //    differing only in peripheral_mode compute the identical ordering
  //    and must share ONE slot.
  const auto m = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(13, 13), 3), 0.02);
  const auto b = wavy_rhs(m.n());

  ServiceOptions options;
  options.ranks = 4;
  ReorderingService service(options);

  OrderSolveRequest rq;
  rq.matrix = &m;
  rq.b = b;

  const auto as_rcm = service.submit(rq);
  ASSERT_EQ(as_rcm.status, RequestStatus::kOk);
  EXPECT_FALSE(as_rcm.cache_hit);
  EXPECT_EQ(as_rcm.algorithm, rcm::OrderingAlgorithm::kRcm);
  EXPECT_FALSE(as_rcm.auto_selected);

  OrderSolveRequest sloan = rq;
  sloan.rcm.ordering.algorithm = rcm::OrderingAlgorithm::kSloan;
  const auto as_sloan = service.submit(sloan);
  ASSERT_EQ(as_sloan.status, RequestStatus::kOk);
  EXPECT_FALSE(as_sloan.cache_hit)
      << "a different algorithm is a different labeling: it must miss";
  EXPECT_NE(as_sloan.fingerprint.hash, as_rcm.fingerprint.hash);
  EXPECT_EQ(as_sloan.algorithm, rcm::OrderingAlgorithm::kSloan);
  EXPECT_TRUE(service.submit(sloan).cache_hit);

  // peripheral_mode splits kRcm slots …
  OrderSolveRequest bicriteria = rq;
  bicriteria.rcm.ordering.peripheral_mode =
      rcm::PeripheralMode::kBiCriteria;
  EXPECT_FALSE(service.submit(bicriteria).cache_hit)
      << "the peripheral mode moves the roots, so it salts RCM keys";
  EXPECT_TRUE(service.submit(bicriteria).cache_hit);

  // … but two GPS requests differing only in the mode share one slot.
  OrderSolveRequest gps = rq;
  gps.rcm.ordering.algorithm = rcm::OrderingAlgorithm::kGps;
  const auto gps_cold = service.submit(gps);
  ASSERT_EQ(gps_cold.status, RequestStatus::kOk);
  EXPECT_FALSE(gps_cold.cache_hit);
  OrderSolveRequest gps_mode = gps;
  gps_mode.rcm.ordering.peripheral_mode = rcm::PeripheralMode::kBiCriteria;
  const auto gps_warm = service.submit(gps_mode);
  ASSERT_EQ(gps_warm.status, RequestStatus::kOk);
  EXPECT_TRUE(gps_warm.cache_hit)
      << "GPS never consumes peripheral_mode: salting it would split "
         "identical orderings across slots";
  EXPECT_EQ(gps_warm.fingerprint, gps_cold.fingerprint);
  expect_bitwise_equal(gps_warm.x, gps_cold.x);
}

TEST(ServiceCache, AutoSharesTheSlotOfItsResolution) {
  // kAuto is resolved driver-side BEFORE salting, so an auto request and
  // an explicit request for its resolution are the same cache key — the
  // auto submission below must HIT the entry the explicit one inserted.
  const auto m = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(12, 13), 11), 0.02);
  const auto b = wavy_rhs(m.n());
  const auto choice = rcm::select_ordering(m.strip_diagonal());

  ServiceOptions options;
  options.ranks = 4;
  ReorderingService service(options);

  OrderSolveRequest explicit_rq;
  explicit_rq.matrix = &m;
  explicit_rq.b = b;
  explicit_rq.rcm.ordering.algorithm = choice.algorithm;
  ASSERT_EQ(service.submit(explicit_rq).status, RequestStatus::kOk);

  OrderSolveRequest auto_rq = explicit_rq;
  auto_rq.rcm.ordering.algorithm = rcm::OrderingAlgorithm::kAuto;
  const auto resp = service.submit(auto_rq);
  ASSERT_EQ(resp.status, RequestStatus::kOk);
  EXPECT_TRUE(resp.cache_hit)
      << "auto must resolve before salting and share the explicit slot";
  EXPECT_EQ(service.cache_size(), 1u);
  // The response audits the decision: resolved algorithm plus the proxies
  // it was derived from.
  EXPECT_TRUE(resp.auto_selected);
  EXPECT_EQ(resp.algorithm, choice.algorithm);
  EXPECT_EQ(resp.proxies.n, m.strip_diagonal().n());
  EXPECT_EQ(resp.proxies.bandwidth, choice.proxies.bandwidth);
  EXPECT_EQ(resp.proxies.components, choice.proxies.components);
}

TEST(ServiceCache, UnsortedCsrCannotReachTheFingerprint) {
  // The fingerprint walks each row assuming strictly sorted columns; an
  // unsorted CSR would be silently mis-fingerprinted (entries outside the
  // probed window skipped), letting two distinct patterns collide. The
  // CsrMatrix constructor rejects such input at ingestion — pinned here
  // so the fingerprint's precondition can never be relaxed by accident —
  // and fingerprint_pattern keeps its own in-walk sortedness check as
  // defense in depth.
  std::vector<nnz_t> row_ptr{0, 2, 3, 4};
  std::vector<index_t> unsorted_cols{2, 1, 0, 0};  // row 0: {2, 1}
  EXPECT_THROW(sparse::CsrMatrix(3, row_ptr, unsorted_cols), CheckError);

  std::vector<index_t> duplicate_cols{1, 1, 0, 0};  // row 0: {1, 1}
  EXPECT_THROW(sparse::CsrMatrix(3, row_ptr, duplicate_cols), CheckError);
}

}  // namespace
}  // namespace drcm::service
