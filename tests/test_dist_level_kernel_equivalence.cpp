// Randomized equivalence suite for the fused BFS level kernel: on
// Erdős–Rényi and grid graphs, under the {1,4,9} x {1,2,6} rank x thread
// matrix, the fused kernel, the unfused primitive chain, and both forced
// accumulator arms must produce bit-identical frontiers, levels and labels
// — including the degree-tie determinism the ordering quality contract
// rests on. The thread axis drives the hybrid node-level SpMSpV (per-
// thread SPAs / sort-merge stripes with a deterministic ordered merge), so
// every point of the matrix is held to the same serial reference.
//
// The sweep honors DRCM_TEST_RANKS / DRCM_TEST_THREADS (a single rank or
// thread count each) so CI can run the same suite once per configuration.
#include "dist/level_kernel.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "common/rng.hpp"
#include "dist_rank_matrix.hpp"
#include "dist/primitives.hpp"
#include "mpsim/runtime.hpp"
#include "order/rcm_serial.hpp"
#include "rcm/rcm_driver.hpp"
#include "sparse/generators.hpp"

namespace drcm::dist {
namespace {

using mps::Comm;
using mps::Runtime;
using sparse::CsrMatrix;
namespace gen = sparse::gen;

using drcm::dist::testing::rank_counts;
using drcm::dist::testing::thread_counts;

/// Plain serial BFS distances: the oracle for the level loop.
std::vector<index_t> serial_levels(const CsrMatrix& a, index_t root) {
  std::vector<index_t> lvl(static_cast<std::size_t>(a.n()), kNoVertex);
  lvl[static_cast<std::size_t>(root)] = 0;
  std::queue<index_t> q;
  q.push(root);
  while (!q.empty()) {
    const index_t u = q.front();
    q.pop();
    for (const index_t v : a.row(u)) {
      if (lvl[static_cast<std::size_t>(v)] == kNoVertex) {
        lvl[static_cast<std::size_t>(v)] = lvl[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return lvl;
}

/// The randomized graph pool: ER at several densities plus 2D/3D grids
/// (mass degree ties) and a randomly relabeled grid (scattered ownership).
CsrMatrix sweep_graph(u64 seed) {
  switch (seed % 6) {
    case 0: return gen::erdos_renyi(90 + 7 * static_cast<index_t>(seed % 5),
                                    3.0 + static_cast<double>(seed % 4), seed);
    case 1: return gen::erdos_renyi(140, 6.5, seed);
    case 2: return gen::grid2d(9 + static_cast<index_t>(seed % 4), 11);
    case 3: return gen::grid3d(4, 5, 4 + static_cast<index_t>(seed % 3));
    case 4: return gen::relabel_random(gen::grid2d(12, 10), seed);
    default: return gen::erdos_renyi(60, 2.0, seed);  // fragmented
  }
}

void expect_same_step(const LevelStepResult& a, const LevelStepResult& b,
                      const char* what, int p, u64 seed, index_t depth) {
  EXPECT_EQ(a.global_nnz, b.global_nnz)
      << what << " p=" << p << " seed=" << seed << " depth=" << depth;
  EXPECT_EQ(a.next.entries(), b.next.entries())
      << what << " p=" << p << " seed=" << seed << " depth=" << depth;
}

TEST(LevelKernelEquivalence, RandomizedBfsSweepAllPathsBitIdentical) {
  for (u64 seed = 1; seed <= 12; ++seed) {
    const auto a = sweep_graph(seed);
    if (a.n() == 0) continue;
    const auto root =
        static_cast<index_t>(splitmix64(seed) % static_cast<u64>(a.n()));
    const auto want = serial_levels(a, root);
    for (const int p : rank_counts()) {
      for (const int t : thread_counts()) {
      Runtime::run(p, [&](Comm& world) {
        ProcGrid2D grid(world);
        DistSpMat mat(grid, a);
        DistDenseVec levels(mat.vec_dist(), grid, kNoVertex);
        if (levels.owns(root)) levels.set(root, 0);
        DistSpVec frontier(mat.vec_dist(), grid);
        if (frontier.lo() <= root && root < frontier.hi()) {
          frontier.assign({VecEntry{root, 0}});
        }
        index_t depth = 0;
        while (true) {
          // The fused kernel under every arm, plus the unfused primitive
          // chain, on identical inputs. All four must agree bitwise.
          const auto fused = bfs_level_step(
              mat, frontier, levels, kNoVertex, grid,
              mps::Phase::kOrderingSpmspv, mps::Phase::kOrderingOther,
              SpmspvAccumulator::kAuto);
          const auto spa = bfs_level_step(
              mat, frontier, levels, kNoVertex, grid,
              mps::Phase::kOrderingSpmspv, mps::Phase::kOrderingOther,
              SpmspvAccumulator::kSpa);
          const auto merge = bfs_level_step(
              mat, frontier, levels, kNoVertex, grid,
              mps::Phase::kOrderingSpmspv, mps::Phase::kOrderingOther,
              SpmspvAccumulator::kSortMerge);
          const auto unfused = bfs_level_step_unfused(
              mat, frontier, levels, kNoVertex, grid,
              mps::Phase::kPeripheralSpmspv, mps::Phase::kPeripheralOther,
              SpmspvAccumulator::kAuto);
          expect_same_step(fused, spa, "fused-auto vs fused-spa", p, seed,
                           depth);
          expect_same_step(fused, merge, "fused-auto vs fused-sortmerge", p,
                           seed, depth);
          expect_same_step(fused, unfused, "fused vs unfused chain", p, seed,
                           depth);
          if (fused.global_nnz == 0) break;
          ++depth;
          std::vector<VecEntry> leveled(fused.next.entries().begin(),
                                        fused.next.entries().end());
          for (auto& e : leveled) e.val = depth;
          scatter_into_dense(levels, fused.next.sibling(std::move(leveled)),
                             world);
          frontier = fused.next;
        }
        const auto got = levels.to_global(world);
        if (world.rank() == 0) {
          EXPECT_EQ(got, want) << "levels vs serial BFS, p=" << p
                               << " t=" << t << " seed=" << seed;
        }
      }, {}, t);
      }
    }
  }
}

TEST(LevelKernelEquivalence, RandomFrontiersNotJustBfsFrontiers) {
  // BFS frontiers are special (values from a contiguous range, dense
  // support patterns); the kernel contract is broader. Drive random
  // supports with random values and random keep-sentinels through both
  // paths.
  for (u64 seed = 20; seed <= 26; ++seed) {
    const auto a = sweep_graph(seed);
    Rng rng(seed * 17);
    std::vector<VecEntry> global_frontier;
    for (index_t v = 0; v < a.n(); ++v) {
      if (rng.next_below(3) == 0) {
        global_frontier.push_back(
            VecEntry{v, static_cast<index_t>(rng.next_below(50))});
      }
    }
    // Mark a random subset "visited" so SELECT has real work.
    std::vector<index_t> mark(static_cast<std::size_t>(a.n()), kNoVertex);
    for (index_t v = 0; v < a.n(); ++v) {
      if (rng.next_below(4) == 0) mark[static_cast<std::size_t>(v)] = 7;
    }
    for (const int p : rank_counts()) {
      for (const int t : thread_counts()) {
      Runtime::run(p, [&](Comm& world) {
        ProcGrid2D grid(world);
        DistSpMat mat(grid, a);
        DistDenseVec dense(mat.vec_dist(), grid, kNoVertex);
        for (index_t g = dense.lo(); g < dense.hi(); ++g) {
          dense.set(g, mark[static_cast<std::size_t>(g)]);
        }
        DistSpVec x(mat.vec_dist(), grid);
        std::vector<VecEntry> mine;
        for (const auto& e : global_frontier) {
          if (e.idx >= x.lo() && e.idx < x.hi()) mine.push_back(e);
        }
        x.assign(mine);
        // Note: SET refreshes values from `dense` in both paths, so the
        // random values only exercise the publish plumbing; minima then
        // flow from the dense vector. That matches the BFS loops' usage.
        const auto fused = bfs_level_step(
            mat, x, dense, kNoVertex, grid, mps::Phase::kOrderingSpmspv,
            mps::Phase::kOrderingOther, SpmspvAccumulator::kSpa);
        const auto unfused = bfs_level_step_unfused(
            mat, x, dense, kNoVertex, grid, mps::Phase::kOrderingSpmspv,
            mps::Phase::kOrderingOther, SpmspvAccumulator::kSortMerge);
        expect_same_step(fused, unfused, "random frontier fused vs unfused",
                         p, seed * 100 + static_cast<u64>(t), 0);
      }, {}, t);
      }
    }
  }
}

TEST(LevelKernelEquivalence, FullOrderingDegreeTieDeterminism) {
  // RCM++ (Hou & Liu 2024) point: ordering quality is only trustworthy
  // with deterministic level-by-level tie-breaking. Regular graphs make
  // every degree compare equal, so the ordering is pure tie-breaking; it
  // must be bit-identical to serial RCM for every rank count and every
  // accumulator arm.
  const CsrMatrix graphs[] = {
      gen::cycle(48),                          // all degrees 2
      gen::grid2d(13, 13),                     // mass interior ties
      gen::relabel_random(gen::grid3d(4, 4, 6), 3),
      gen::disjoint_union({gen::cycle(9), gen::path(8), gen::star(6)}),
  };
  for (const auto& a : graphs) {
    const auto want = order::rcm_serial(a);
    for (const int p : rank_counts()) {
      for (const int t : thread_counts()) {
        for (const auto acc :
             {SpmspvAccumulator::kAuto, SpmspvAccumulator::kSpa,
              SpmspvAccumulator::kSortMerge}) {
          rcm::DistRcmOptions opt;
          opt.accumulator = acc;
          opt.threads = t;
          const auto run = rcm::run_dist_rcm(p, a, opt);
          EXPECT_EQ(run.labels, want)
              << "p=" << p << " t=" << t << " acc=" << static_cast<int>(acc);
        }
      }
    }
  }
}

TEST(LevelKernelEquivalence, AutoSelectResolvesByCrossover) {
  // The BENCH_1.json rule: kSpa once the frontier's local edge volume
  // reaches kScanUnit * local_rows, kSortMerge below.
  EXPECT_EQ(resolve_accumulator(SpmspvAccumulator::kAuto, 432.0, 8000),
            SpmspvAccumulator::kSortMerge);  // frontier 16 on the bench graph
  EXPECT_EQ(resolve_accumulator(SpmspvAccumulator::kAuto, 6912.0, 8000),
            SpmspvAccumulator::kSpa);  // frontier 256
  EXPECT_EQ(resolve_accumulator(SpmspvAccumulator::kAuto, 1000.0, 8000),
            SpmspvAccumulator::kSpa);  // exactly at the bar
  // Pinned arms pass through untouched.
  EXPECT_EQ(resolve_accumulator(SpmspvAccumulator::kSpa, 0.0, 8000),
            SpmspvAccumulator::kSpa);
  EXPECT_EQ(resolve_accumulator(SpmspvAccumulator::kSortMerge, 1e9, 8000),
            SpmspvAccumulator::kSortMerge);
}

TEST(LevelKernelEquivalence, EnvOverridePinsTheArm) {
  const auto a = gen::grid2d(10, 10);
  const auto run_used = [&]() {
    SpmspvAccumulator used{};
    Runtime::run(1, [&](Comm& world) {
      ProcGrid2D grid(world);
      DistSpMat mat(grid, a);
      DistDenseVec dense(mat.vec_dist(), grid, kNoVertex);
      DistSpVec x(mat.vec_dist(), grid);
      std::vector<VecEntry> all;
      for (index_t v = 0; v < a.n(); ++v) all.push_back(VecEntry{v, v});
      x.assign(all);
      const auto step = bfs_level_step(mat, x, dense, kNoVertex, grid,
                                       mps::Phase::kOrderingSpmspv,
                                       mps::Phase::kOrderingOther);
      used = step.used;
    });
    return used;
  };
  // Full frontier on a grid: the heuristic picks the SPA...
  EXPECT_EQ(run_used(), SpmspvAccumulator::kSpa);
  // ...but the environment override pins either arm without recompiling.
  ASSERT_EQ(setenv("DRCM_SPMSPV_ACC", "sortmerge", 1), 0);
  EXPECT_EQ(run_used(), SpmspvAccumulator::kSortMerge);
  ASSERT_EQ(setenv("DRCM_SPMSPV_ACC", "spa", 1), 0);
  EXPECT_EQ(run_used(), SpmspvAccumulator::kSpa);
  ASSERT_EQ(unsetenv("DRCM_SPMSPV_ACC"), 0);
}

TEST(LevelKernelEquivalence, ThreadsKnobResolvesThroughTheEnvironment) {
  // DistRcmOptions::threads: positive requests pass through; 0 falls back
  // to DRCM_THREADS, then to flat MPI.
  EXPECT_EQ(rcm::resolve_threads(4), 4);
  EXPECT_EQ(rcm::resolve_threads(0), 1);
  ASSERT_EQ(setenv("DRCM_THREADS", "6", 1), 0);
  EXPECT_EQ(rcm::resolve_threads(0), 6);
  EXPECT_EQ(rcm::resolve_threads(2), 2);  // explicit request wins
  ASSERT_EQ(unsetenv("DRCM_THREADS"), 0);
  EXPECT_EQ(rcm::resolve_threads(0), 1);
}

}  // namespace
}  // namespace drcm::dist
