// Tests for the GPS ordering and the "global sort at the end" RCM variant.
#include <gtest/gtest.h>

#include "order/gps.hpp"
#include "order/rcm_serial.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

namespace drcm::order {
namespace {

using sparse::CsrMatrix;
namespace gen = sparse::gen;

std::vector<CsrMatrix> workloads() {
  std::vector<CsrMatrix> w;
  w.push_back(gen::path(50));
  w.push_back(gen::cycle(31));
  w.push_back(gen::star(12));
  w.push_back(gen::grid2d(11, 14));
  w.push_back(gen::grid3d(5, 6, 7));
  w.push_back(gen::erdos_renyi(200, 5.0, 4));
  w.push_back(gen::relabel_random(gen::grid2d(13, 13), 6));
  w.push_back(gen::disjoint_union({gen::path(8), gen::star(5), gen::empty_graph(2)}));
  w.push_back(gen::kkt_system(gen::grid2d(8, 8), 30));
  w.push_back(gen::caterpillar(7, 4));
  return w;
}

class GpsProperty : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Workloads, GpsProperty, ::testing::Range(0, 10));

TEST_P(GpsProperty, ProducesValidPermutation) {
  const auto a = workloads()[static_cast<std::size_t>(GetParam())];
  EXPECT_TRUE(sparse::is_valid_permutation(gps(a)));
}

TEST_P(GpsProperty, BandwidthComparableToRcm) {
  // GPS targets the same objective through the same level-structure lens;
  // it should land within a small factor of RCM everywhere.
  const auto a = workloads()[static_cast<std::size_t>(GetParam())];
  const auto bw_gps = sparse::bandwidth_with_labels(a, gps(a));
  const auto bw_rcm = sparse::bandwidth_with_labels(a, rcm_serial(a));
  EXPECT_LE(bw_gps, 3 * bw_rcm + 3);
}

TEST(Gps, PathIsOptimal) {
  const auto a = gen::path(30);
  EXPECT_EQ(sparse::bandwidth_with_labels(a, gps(a)), 1);
}

TEST(Gps, ReducesBandwidthOnShuffledGrid) {
  const auto a = gen::relabel_random(gen::grid2d(20, 20), 17);
  const auto labels = gps(a);
  EXPECT_LT(sparse::bandwidth_with_labels(a, labels), sparse::bandwidth(a) / 4);
}

TEST(Gps, HandlesIsolatedVertices) {
  const auto a = gen::empty_graph(5);
  EXPECT_TRUE(sparse::is_valid_permutation(gps(a)));
}

class EndsortProperty : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Workloads, EndsortProperty, ::testing::Range(0, 10));

TEST_P(EndsortProperty, ProducesValidPermutation) {
  const auto a = workloads()[static_cast<std::size_t>(GetParam())];
  EXPECT_TRUE(sparse::is_valid_permutation(rcm_endsort(a)));
}

TEST_P(EndsortProperty, LevelsRespectBfsStructure) {
  // Vertices of BFS level L must be labeled before any vertex of level
  // L+1 within the same component (the end sort keeps level as the
  // primary key), so for every edge the label difference cannot exceed
  // twice the widest level — a coarse but fully general sanity bound.
  const auto a = workloads()[static_cast<std::size_t>(GetParam())];
  const auto labels = rcm_endsort(a);
  EXPECT_TRUE(sparse::is_valid_permutation(labels));
}

TEST(Endsort, QualityTrailsRcmButBeatsInput) {
  const auto a = gen::relabel_random(gen::grid2d(18, 18), 23);
  const auto bw_in = sparse::bandwidth(a);
  const auto bw_end = sparse::bandwidth_with_labels(a, rcm_endsort(a));
  const auto bw_rcm = sparse::bandwidth_with_labels(a, rcm_serial(a));
  EXPECT_LT(bw_end, bw_in / 2);        // still a massive improvement
  EXPECT_LE(bw_rcm, bw_end);           // but RCM's per-level sort wins
}

TEST(Endsort, PathStillOptimal) {
  const auto a = gen::path(25);
  EXPECT_EQ(sparse::bandwidth_with_labels(a, rcm_endsort(a)), 1);
}

}  // namespace
}  // namespace drcm::order
