// Batched execution of the reordering service: independent requests run
// CONCURRENTLY on disjoint square sub-grids (lanes) carved from the rank
// fleet by one split, with per-request ledgers and fault isolation.
//
//  * a batch of four on sixteen ranks equals four sequential submissions
//    on a four-rank service BIT FOR BIT (the lanes are 2x2 grids either
//    way, and lane concurrency may not perturb determinism);
//  * per-request reports are isolated: one SpmdReport per request, sized
//    to the lane, each with real work in it, lanes disjoint;
//  * a FaultPlan-killed request returns a structured kFault while every
//    batch peer completes bit-identically to a fault-free batch — and the
//    victim leaves no cache entry;
//  * more requests than lanes round-robin onto the available lanes
//    (max_lanes = 1 serializes the whole batch through one lane);
//  * duplicate patterns inside one batch COALESCE: the first occurrence
//    computes the ordering exactly once, twins wait a wave and are served
//    from the freshly inserted entry;
//  * a wave-end insert may never evict an entry a request of the same
//    batch was served from — the cache overflows capacity instead.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "mpsim/fault.hpp"
#include "rcm/rcm_driver.hpp"
#include "service/service.hpp"
#include "sparse/generators.hpp"

namespace drcm::service {
namespace {

namespace gen = sparse::gen;

std::vector<double> wavy_rhs(index_t n, unsigned salt = 0) {
  std::vector<double> b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i)] =
        1.0 +
        0.5 * static_cast<double>(((i + salt) * 2654435761u) % 1000) / 1000.0;
  }
  return b;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "component " << i;
  }
}

struct BatchFixture {
  std::vector<sparse::CsrMatrix> matrices;
  std::vector<std::vector<double>> rhs;
  std::vector<OrderSolveRequest> requests;

  explicit BatchFixture(int count) {
    matrices.reserve(static_cast<std::size_t>(count));
    rhs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      matrices.push_back(gen::with_laplacian_values(
          gen::relabel_random(gen::grid2d(11 + i, 12), 40 + i), 0.02));
      rhs.push_back(wavy_rhs(matrices.back().n(), static_cast<unsigned>(i)));
    }
    requests.resize(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      requests[static_cast<std::size_t>(i)].matrix =
          &matrices[static_cast<std::size_t>(i)];
      requests[static_cast<std::size_t>(i)].b = rhs[static_cast<std::size_t>(i)];
    }
  }
};

TEST(ServiceBatch, MatchesSequentialSubmissionBitForBit) {
  BatchFixture fixture(4);

  ServiceOptions wide;
  wide.ranks = 16;  // four concurrent 2x2 lanes
  ReorderingService batch_service(wide);
  const auto batch = batch_service.submit_batch(fixture.requests);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch_service.launches(), 1);

  ServiceOptions narrow;
  narrow.ranks = 4;  // one 2x2 lane, requests one after another
  ReorderingService seq_service(narrow);

  std::vector<bool> lane_seen(4, false);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(batch[i].status, RequestStatus::kOk) << "request " << i;
    EXPECT_FALSE(batch[i].cache_hit);
    EXPECT_EQ(batch[i].lane_ranks, 4);
    ASSERT_GE(batch[i].lane, 0);
    ASSERT_LT(batch[i].lane, 4);
    EXPECT_FALSE(lane_seen[static_cast<std::size_t>(batch[i].lane)])
        << "two requests shared lane " << batch[i].lane;
    lane_seen[static_cast<std::size_t>(batch[i].lane)] = true;

    const auto seq = seq_service.submit(fixture.requests[i]);
    ASSERT_EQ(seq.status, RequestStatus::kOk);
    EXPECT_EQ(batch[i].fingerprint, seq.fingerprint);
    EXPECT_EQ(batch[i].permuted_bandwidth, seq.permuted_bandwidth);
    EXPECT_EQ(batch[i].cg.iterations, seq.cg.iterations);
    expect_bitwise_equal(batch[i].x, seq.x);
  }
}

TEST(ServiceBatch, PerRequestLedgersAreIsolatedAndSizedToTheLane) {
  BatchFixture fixture(4);
  ServiceOptions options;
  options.ranks = 16;
  ReorderingService service(options);
  const auto responses = service.submit_batch(fixture.requests);

  for (std::size_t i = 0; i < responses.size(); ++i) {
    const auto& resp = responses[i];
    ASSERT_EQ(resp.status, RequestStatus::kOk);
    ASSERT_EQ(resp.report.ranks.size(), 4u) << "one recorder per lane rank";
    // Every lane rank did real, attributed work on this request alone:
    // a miss has ordering crossings, a redistribution, and a solve.
    for (const auto& rank : resp.report.ranks) {
      EXPECT_GT(mps::ordering_crossings(rank), 0u) << "request " << i;
      EXPECT_GT(rank.phase(mps::Phase::kRedistribute).barrier_crossings, 0u);
      EXPECT_GT(rank.phase(mps::Phase::kSolver).barrier_crossings, 0u);
      EXPECT_GT(rank.peak_resident_elements(), 0u);
    }
    std::uint64_t max_crossings = 0;
    for (const auto& rank : resp.report.ranks) {
      max_crossings = std::max(max_crossings, mps::ordering_crossings(rank));
    }
    EXPECT_EQ(resp.ordering_crossings, max_crossings);
  }
  // The cumulative ledger saw the whole fleet.
  EXPECT_EQ(service.cumulative_report().ranks.size(), 16u);
}

TEST(ServiceBatch, KilledRequestFailsAloneWhilePeersCompleteBitIdentically) {
  BatchFixture fixture(4);

  // Fault-free reference batch on an identical fresh service.
  ServiceOptions clean;
  clean.ranks = 16;
  ReorderingService reference(clean);
  const auto want = reference.submit_batch(fixture.requests);

  // World rank 5 = lane 1, lane rank 1; its 10th collective lands inside
  // request 1's ordering. The fleet is poisoned, the driver attributes the
  // death to request 1, and relaunches the survivors from its checkpoints.
  mps::FaultPlan plan;
  plan.die_at(5, 10);
  ServiceOptions faulty;
  faulty.ranks = 16;
  faulty.faults = &plan;
  faulty.watchdog_seconds = 20.0;
  ReorderingService service(faulty);
  const auto got = service.submit_batch(fixture.requests);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_GE(service.launches(), 2);

  EXPECT_EQ(got[1].status, RequestStatus::kFault);
  EXPECT_NE(got[1].error.find("rank-death"), std::string::npos) << got[1].error;
  EXPECT_NE(got[1].error.find("rank 5"), std::string::npos) << got[1].error;
  EXPECT_TRUE(got[1].x.empty());

  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    ASSERT_EQ(got[i].status, RequestStatus::kOk) << "peer " << i;
    EXPECT_EQ(got[i].cg.iterations, want[i].cg.iterations);
    EXPECT_EQ(got[i].permuted_bandwidth, want[i].permuted_bandwidth);
    expect_bitwise_equal(got[i].x, want[i].x);
  }

  // The victim left no cache entry: its pattern misses, completes now that
  // the one-shot fault is spent, and matches the reference.
  EXPECT_EQ(service.cache_size(), 3u);
  // (No cross-geometry bit comparison: a lone submit runs on the full 4x4
  // fleet, a different reduction order than the batch's 2x2 lane.)
  const auto retried = service.submit(fixture.requests[1]);
  ASSERT_EQ(retried.status, RequestStatus::kOk);
  EXPECT_FALSE(retried.cache_hit);
  EXPECT_TRUE(retried.cg.converged);
  EXPECT_EQ(retried.permuted_bandwidth, want[1].permuted_bandwidth);
  EXPECT_EQ(service.cache_size(), 4u);
}

TEST(ServiceBatch, MoreRequestsThanRanksRoundRobinOntoLanes) {
  // Three requests on four ranks: three 1x1 lanes (one rank idles), each
  // request a single-rank pipeline — results must equal run_ordered_solve
  // at p = 1 exactly.
  BatchFixture fixture(3);
  ServiceOptions options;
  options.ranks = 4;
  ReorderingService service(options);
  const auto responses = service.submit_batch(fixture.requests);
  ASSERT_EQ(responses.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(responses[i].status, RequestStatus::kOk);
    EXPECT_EQ(responses[i].lane_ranks, 1);
    const auto want = rcm::run_ordered_solve(1, fixture.matrices[i],
                                             fixture.rhs[i]);
    expect_bitwise_equal(responses[i].x, want.result.x);
  }

  // max_lanes = 1: the same batch serializes through ONE full 2x2 lane
  // (round-robin queue of three on lane 0), equal to p = 4 references.
  ServiceOptions serial;
  serial.ranks = 4;
  serial.max_lanes = 1;
  ReorderingService one_lane(serial);
  const auto queued = one_lane.submit_batch(fixture.requests);
  EXPECT_EQ(one_lane.launches(), 1);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(queued[i].status, RequestStatus::kOk);
    EXPECT_EQ(queued[i].lane, 0);
    EXPECT_EQ(queued[i].lane_ranks, 4);
    const auto want = rcm::run_ordered_solve(4, fixture.matrices[i],
                                             fixture.rhs[i]);
    expect_bitwise_equal(queued[i].x, want.result.x);
  }
}

TEST(ServiceBatch, DuplicatePatternsInOneBatchComputeOnceAndCoalesce) {
  // Two requests for the SAME pattern: the first occurrence computes, the
  // twin is deferred a wave (coalescing) and served from the entry its
  // sibling inserted at wave end — the ordering runs EXACTLY once, and
  // the twin's ledger shows a pure hit (zero ordering crossings).
  const auto m = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(12, 13), 3), 0.02);
  const auto b = wavy_rhs(m.n());
  OrderSolveRequest request;
  request.matrix = &m;
  request.b = b;
  const std::vector<OrderSolveRequest> twice{request, request};

  ServiceOptions options;
  options.ranks = 16;
  ReorderingService service(options);
  const auto responses = service.submit_batch(twice);
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_EQ(responses[0].status, RequestStatus::kOk);
  ASSERT_EQ(responses[1].status, RequestStatus::kOk);
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_FALSE(responses[0].coalesced);
  EXPECT_TRUE(responses[1].cache_hit)
      << "the twin must be served from its sibling's ordering";
  EXPECT_TRUE(responses[1].coalesced);
  EXPECT_EQ(responses[1].ordering_crossings, 0u);
  EXPECT_EQ(responses[0].fingerprint, responses[1].fingerprint);
  expect_bitwise_equal(responses[0].x, responses[1].x);
  EXPECT_EQ(service.cache_size(), 1u);
  EXPECT_EQ(service.cache_misses(), 1u)
      << "duplicate patterns in one batch must compute the ordering once";
  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_EQ(service.coalesced_served(), 1u);
  EXPECT_EQ(service.launches(), 2) << "compute wave, then the serve wave";
  EXPECT_TRUE(service.submit(request).cache_hit);
}

TEST(ServiceBatch, WaveEndInsertNeverEvictsAnEntryTheBatchWasServedFrom) {
  // Capacity 1 with entry A resident. A batch of [hit-on-A, miss-B]:
  // B's wave-end insert needs a victim, but A was served to a request of
  // the SAME batch — it is pinned, and the cache briefly overflows
  // capacity rather than invalidate what a twin just read.
  const auto a = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(11, 12), 1), 0.02);
  const auto c = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(11, 12), 2), 0.02);
  const auto b = wavy_rhs(a.n());

  ServiceOptions options;
  options.ranks = 16;
  options.cache_capacity = 1;
  options.enable_repair = false;  // isolate the eviction policy
  ReorderingService service(options);

  OrderSolveRequest ra;
  ra.matrix = &a;
  ra.b = b;
  OrderSolveRequest rc;
  rc.matrix = &c;
  rc.b = b;

  EXPECT_FALSE(service.submit(ra).cache_hit);
  ASSERT_EQ(service.cache_size(), 1u);

  const std::vector<OrderSolveRequest> batch{ra, rc};
  const auto responses = service.submit_batch(batch);
  ASSERT_EQ(responses[0].status, RequestStatus::kOk);
  ASSERT_EQ(responses[1].status, RequestStatus::kOk);
  EXPECT_TRUE(responses[0].cache_hit);
  EXPECT_FALSE(responses[1].cache_hit);
  EXPECT_EQ(service.cache_size(), 2u)
      << "the insert must overflow capacity, not evict the served entry";
  EXPECT_TRUE(service.submit(ra).cache_hit) << "A survived its own batch";
  EXPECT_TRUE(service.submit(rc).cache_hit);
}

}  // namespace
}  // namespace drcm::service
