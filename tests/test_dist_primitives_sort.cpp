// Tests for the Table-I primitives and the distributed SORTPERM sorts.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "dist/primitives.hpp"
#include "dist/sortperm.hpp"
#include "mpsim/runtime.hpp"
#include "sparse/generators.hpp"

namespace drcm::dist {
namespace {

using mps::Comm;
using mps::Runtime;

class PrimGrids : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Grids, PrimGrids, ::testing::Values(1, 4, 9, 16));

/// Builds an aligned (sparse, dense) pair on a 2D grid for primitive tests.
struct Fixture {
  ProcGrid2D grid;
  VectorDist dist;
  DistDenseVec dense;
  DistSpVec sparse;

  Fixture(Comm& world, index_t n)
      : grid(world), dist(n, grid.q()), dense(dist, grid, kNoVertex),
        sparse(dist, grid) {}
};

TEST_P(PrimGrids, SelectKeepsOnlyMatches) {
  Runtime::run(GetParam(), [](Comm& world) {
    Fixture f(world, 41);
    // Dense: even indices visited (0), odd unvisited (-1).
    for (index_t g = f.dense.lo(); g < f.dense.hi(); ++g) {
      f.dense.set(g, g % 2 == 0 ? 0 : kNoVertex);
    }
    // Sparse: every owned index.
    std::vector<VecEntry> mine;
    for (index_t g = f.sparse.lo(); g < f.sparse.hi(); ++g) {
      mine.push_back(VecEntry{g, g});
    }
    f.sparse.assign(mine);
    const auto kept = select_where_equals(f.sparse, f.dense, kNoVertex, world);
    for (const auto& e : kept.entries()) EXPECT_EQ(e.idx % 2, 1);
    const index_t total = kept.global_nnz(world);
    EXPECT_EQ(total, 41 / 2);
  });
}

TEST_P(PrimGrids, ScatterAndGatherDense) {
  Runtime::run(GetParam(), [](Comm& world) {
    Fixture f(world, 29);
    std::vector<VecEntry> mine;
    for (index_t g = f.sparse.lo(); g < f.sparse.hi(); ++g) {
      if (g % 3 == 0) mine.push_back(VecEntry{g, g * 2});
    }
    f.sparse.assign(mine);
    scatter_into_dense(f.dense, f.sparse, world);
    for (index_t g = f.dense.lo(); g < f.dense.hi(); ++g) {
      EXPECT_EQ(f.dense.get(g), g % 3 == 0 ? g * 2 : kNoVertex);
    }
    // Now overwrite dense and gather back into the sparse values.
    for (index_t g = f.dense.lo(); g < f.dense.hi(); ++g) f.dense.set(g, g + 7);
    gather_from_dense(f.sparse, f.dense, world);
    for (const auto& e : f.sparse.entries()) EXPECT_EQ(e.val, e.idx + 7);
  });
}

TEST_P(PrimGrids, AddScalarShiftsValues) {
  Runtime::run(GetParam(), [](Comm& world) {
    Fixture f(world, 23);
    std::vector<VecEntry> mine;
    for (index_t g = f.sparse.lo(); g < f.sparse.hi(); ++g) {
      mine.push_back(VecEntry{g, 1});
    }
    f.sparse.assign(mine);
    add_scalar(f.sparse, 41, world);
    for (const auto& e : f.sparse.entries()) EXPECT_EQ(e.val, 42);
  });
}

TEST_P(PrimGrids, ReduceArgminFindsGlobalMinWithTies) {
  Runtime::run(GetParam(), [](Comm& world) {
    Fixture f(world, 37);
    // Dense "degrees": v -> 5 for v in {10, 20}, else 9. Support: all.
    std::vector<VecEntry> mine;
    for (index_t g = f.sparse.lo(); g < f.sparse.hi(); ++g) {
      f.dense.set(g, (g == 10 || g == 20) ? 5 : 9);
      mine.push_back(VecEntry{g, 0});
    }
    f.sparse.assign(mine);
    const auto [deg, v] = reduce_argmin(f.sparse, f.dense, world);
    EXPECT_EQ(deg, 5);
    EXPECT_EQ(v, 10);  // tie broken to the smaller id
  });
}

TEST_P(PrimGrids, ReduceArgminEmptySupport) {
  Runtime::run(GetParam(), [](Comm& world) {
    Fixture f(world, 12);
    const auto [deg, v] = reduce_argmin(f.sparse, f.dense, world);
    EXPECT_EQ(deg, kNoVertex);
    EXPECT_EQ(v, kNoVertex);
  });
}

TEST_P(PrimGrids, ArgminUnvisitedSkipsVisited) {
  Runtime::run(GetParam(), [](Comm& world) {
    Fixture f(world, 31);
    DistDenseVec key(f.dist, f.grid, 0);
    for (index_t g = f.dense.lo(); g < f.dense.hi(); ++g) {
      f.dense.set(g, g < 15 ? 1 : kNoVertex);  // first 15 visited
      key.set(g, 100 - g);                     // decreasing keys
    }
    const auto [k, v] = argmin_unvisited(f.dense, key, world);
    EXPECT_EQ(v, 30);  // smallest key among unvisited = largest id
    EXPECT_EQ(k, 70);
  });
}

TEST_P(PrimGrids, ArgminUnvisitedAllVisited) {
  Runtime::run(GetParam(), [](Comm& world) {
    Fixture f(world, 9);
    DistDenseVec key(f.dist, f.grid, 3);
    for (index_t g = f.dense.lo(); g < f.dense.hi(); ++g) f.dense.set(g, 1);
    const auto [k, v] = argmin_unvisited(f.dense, key, world);
    EXPECT_EQ(v, kNoVertex);
  });
}

// --- SORTPERM ---------------------------------------------------------------

/// Reference: positions of entries sorted by (parent, degree, idx).
std::vector<VecEntry> reference_positions(
    const std::vector<VecEntry>& frontier, const std::vector<index_t>& degs) {
  struct T {
    index_t parent, degree, idx;
  };
  std::vector<T> ts;
  for (const auto& e : frontier) {
    ts.push_back({e.val, degs[static_cast<std::size_t>(e.idx)], e.idx});
  }
  std::sort(ts.begin(), ts.end(), [](const T& a, const T& b) {
    if (a.parent != b.parent) return a.parent < b.parent;
    if (a.degree != b.degree) return a.degree < b.degree;
    return a.idx < b.idx;
  });
  std::vector<VecEntry> pos;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    pos.push_back(VecEntry{ts[i].idx, static_cast<index_t>(i)});
  }
  std::sort(pos.begin(), pos.end(),
            [](const VecEntry& a, const VecEntry& b) { return a.idx < b.idx; });
  return pos;
}

/// Runs one of the two SORTPERM variants on a synthetic frontier.
void sortperm_case(int p, bool bucket, index_t n, index_t label_lo,
                   index_t label_hi, u64 seed) {
  // Synthetic degrees and frontier with parent labels in [lo, hi).
  std::vector<index_t> degs(static_cast<std::size_t>(n));
  std::vector<VecEntry> frontier;
  Rng rng(seed);
  for (index_t v = 0; v < n; ++v) {
    degs[static_cast<std::size_t>(v)] =
        static_cast<index_t>(rng.next_below(5));  // many degree ties
    if (rng.next_below(100) < 60) {
      const auto parent = label_lo + static_cast<index_t>(rng.next_below(
                              static_cast<u64>(label_hi - label_lo)));
      frontier.push_back(VecEntry{v, parent});
    }
  }
  const auto want = reference_positions(frontier, degs);

  Runtime::run(p, [&](Comm& world) {
    ProcGrid2D grid(world);
    VectorDist dist(n, grid.q());
    DistDenseVec d(dist, grid, 0);
    for (index_t g = d.lo(); g < d.hi(); ++g) {
      d.set(g, degs[static_cast<std::size_t>(g)]);
    }
    DistSpVec x(dist, grid);
    std::vector<VecEntry> mine;
    for (const auto& e : frontier) {
      if (e.idx >= x.lo() && e.idx < x.hi()) mine.push_back(e);
    }
    x.assign(mine);
    const auto result = bucket ? sortperm_bucket(x, d, label_lo, label_hi, grid)
                               : sortperm_sample(x, d, grid);
    const auto got = result.to_global(world);
    if (world.rank() == 0) {
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].idx, want[i].idx) << i;
        EXPECT_EQ(got[i].val, want[i].val) << i;
      }
    }
  });
}

TEST_P(PrimGrids, BucketSortpermMatchesReference) {
  sortperm_case(GetParam(), /*bucket=*/true, 80, 100, 140, 1);
  sortperm_case(GetParam(), /*bucket=*/true, 80, 0, 1, 2);    // single label
  sortperm_case(GetParam(), /*bucket=*/true, 33, 7, 200, 3);  // wide range
}

TEST_P(PrimGrids, SampleSortpermMatchesReference) {
  sortperm_case(GetParam(), /*bucket=*/false, 80, 100, 140, 4);
  sortperm_case(GetParam(), /*bucket=*/false, 33, 7, 200, 5);
}

TEST_P(PrimGrids, SortpermEmptyFrontier) {
  Runtime::run(GetParam(), [](Comm& world) {
    ProcGrid2D grid(world);
    VectorDist dist(20, grid.q());
    DistDenseVec d(dist, grid, 1);
    DistSpVec x(dist, grid);
    const auto r1 = sortperm_bucket(x, d, 0, 5, grid);
    EXPECT_EQ(r1.global_nnz(world), 0);
    const auto r2 = sortperm_sample(x, d, grid);
    EXPECT_EQ(r2.global_nnz(world), 0);
  });
}

TEST(Sortperm, OutOfRangeParentLabelThrows) {
  Runtime::run(1, [](Comm& world) {
    ProcGrid2D grid(world);
    VectorDist dist(10, 1);
    DistDenseVec d(dist, grid, 1);
    DistSpVec x(dist, grid);
    x.assign({VecEntry{2, 99}});  // parent label outside [0, 5)
    EXPECT_THROW(sortperm_bucket(x, d, 0, 5, grid), CheckError);
  });
}

}  // namespace
}  // namespace drcm::dist
