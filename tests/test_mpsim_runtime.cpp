// Tests for the SPMD launcher: error propagation, poisoning, reports.
#include <gtest/gtest.h>

#include <stdexcept>

#include "mpsim/comm.hpp"
#include "mpsim/runtime.hpp"

namespace drcm::mps {
namespace {

TEST(Runtime, RunsBodyOncePerRank) {
  std::atomic<int> executions{0};
  Runtime::run(6, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 6);
    executions.fetch_add(1);
  });
  EXPECT_EQ(executions.load(), 6);
}

TEST(Runtime, RejectsNonPositiveRankCount) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), CheckError);
}

TEST(Runtime, PropagatesExceptionFromSingleRank) {
  EXPECT_THROW(
      Runtime::run(1, [](Comm&) { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

TEST(Runtime, FailingRankDoesNotDeadlockPeersInCollective) {
  // Rank 1 throws while every other rank is blocked in a barrier; the
  // runtime must poison the world and rethrow the ORIGINAL error.
  try {
    Runtime::run(4, [](Comm& comm) {
      if (comm.rank() == 1) throw std::runtime_error("original failure");
      comm.barrier();   // would deadlock without poisoning
      comm.barrier();
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "original failure");
  }
}

TEST(Runtime, PoisonReachesSubcommunicators) {
  try {
    Runtime::run(4, [](Comm& comm) {
      Comm sub = comm.split(comm.rank() % 2, comm.rank());
      if (comm.rank() == 3) throw std::logic_error("sub failure");
      sub.barrier();
      sub.barrier();
      sub.barrier();
    });
    FAIL() << "expected an exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "sub failure");
  }
}

TEST(Runtime, ReportHasOneRecorderPerRank) {
  const auto report = Runtime::run(5, [](Comm& comm) { comm.barrier(); });
  EXPECT_EQ(report.ranks.size(), 5u);
}

TEST(Runtime, ModeledMakespanSumsPhaseMaxima) {
  const auto report = Runtime::run(2, [](Comm& comm) {
    {
      PhaseScope scope(comm, Phase::kOrderingSpmspv);
      comm.charge_compute(comm.rank() == 0 ? 100.0 : 300.0);
    }
    {
      PhaseScope scope(comm, Phase::kOrderingSort);
      comm.charge_compute(comm.rank() == 0 ? 50.0 : 10.0);
    }
  });
  const double gamma = report.machine.gamma;
  // makespan = max(100,300)*gamma + max(50,10)*gamma (no comm charged).
  EXPECT_NEAR(report.modeled_makespan(), (300.0 + 50.0) * gamma, 1e-12);
}

TEST(Runtime, PhaseScopeRecordsWallTime) {
  const auto report = Runtime::run(1, [](Comm& comm) {
    PhaseScope scope(comm, Phase::kSolver);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  });
  EXPECT_GT(report.aggregate(Phase::kSolver).max.wall_seconds, 0.0);
}

TEST(Runtime, CustomMachineParamsArePropagated) {
  MachineParams mp;
  mp.gamma = 1.0;
  const auto report = Runtime::run(1, [](Comm& comm) {
    comm.charge_compute(2.5);
  }, mp);
  EXPECT_DOUBLE_EQ(report.aggregate(Phase::kOther).max.model_compute_seconds, 2.5);
}

TEST(Runtime, AggregateMeanAndMaxDiffer) {
  const auto report = Runtime::run(4, [](Comm& comm) {
    PhaseScope scope(comm, Phase::kSolver);
    comm.charge_compute(100.0 * (comm.rank() + 1));
  });
  const auto agg = report.aggregate(Phase::kSolver);
  EXPECT_DOUBLE_EQ(agg.max.compute_units, 400.0);
  EXPECT_DOUBLE_EQ(agg.mean.compute_units, 250.0);
}

TEST(Runtime, OversubscribedRankCountsComplete) {
  // 64 ranks on 2 cores: collectives must still terminate promptly.
  const auto report = Runtime::run(64, [](Comm& comm) {
    for (int i = 0; i < 3; ++i) {
      const auto sum = comm.allreduce(static_cast<std::int64_t>(1),
                                      [](std::int64_t a, std::int64_t b) { return a + b; });
      EXPECT_EQ(sum, 64);
    }
  });
  EXPECT_EQ(report.ranks.size(), 64u);
}

}  // namespace
}  // namespace drcm::mps
