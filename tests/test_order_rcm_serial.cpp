// Tests for the sequential CM/RCM reference implementations.
#include <gtest/gtest.h>

#include "order/rcm_serial.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

namespace drcm::order {
namespace {

using sparse::CsrMatrix;
namespace gen = sparse::gen;

TEST(RcmSerial, PathIsAlreadyOptimallyOrdered) {
  // RCM of a path relabels it end-to-end: the identity (or reversal) of the
  // natural order, with bandwidth 1.
  for (index_t n : {2, 3, 4, 17}) {
    const auto a = gen::path(n);
    const auto labels = rcm_serial(a);
    EXPECT_TRUE(sparse::is_valid_permutation(labels));
    EXPECT_EQ(sparse::bandwidth_with_labels(a, labels), 1) << "n=" << n;
    EXPECT_EQ(labels, sparse::identity_permutation(n)) << "n=" << n;
  }
}

TEST(RcmSerial, HandWorkedCycle4) {
  // Seed = vertex 0 (min degree, min id); George-Liu moves to vertex 2;
  // CM from 2 labels [3,1,0,2]; reversal gives [0,2,3,1].
  const auto a = gen::cycle(4);
  const auto cm = cm_serial(a);
  EXPECT_EQ(cm, (std::vector<index_t>{3, 1, 0, 2}));
  const auto rcm = rcm_serial(a);
  EXPECT_EQ(rcm, (std::vector<index_t>{0, 2, 3, 1}));
}

TEST(RcmSerial, StarCenterLabeledLast) {
  // CM from any leaf: leaf 0, center 1, rest by id; RCM flips so the center
  // gets label n-2.
  const auto a = gen::star(6);
  const auto rcm = rcm_serial(a);
  EXPECT_TRUE(sparse::is_valid_permutation(rcm));
  EXPECT_EQ(rcm[0], 6 - 2);  // center
}

TEST(RcmSerial, SingleVertexAndEmpty) {
  EXPECT_EQ(rcm_serial(gen::empty_graph(1)), (std::vector<index_t>{0}));
  EXPECT_TRUE(rcm_serial(gen::empty_graph(0)).empty());
  const auto iso = rcm_serial(gen::empty_graph(4));
  EXPECT_TRUE(sparse::is_valid_permutation(iso));
}

TEST(RcmSerial, DisconnectedComponentsAllLabeled) {
  const auto a = gen::disjoint_union({gen::path(5), gen::cycle(6), gen::star(4)});
  OrderingStats stats;
  const auto labels = rcm_serial(a, &stats);
  EXPECT_TRUE(sparse::is_valid_permutation(labels));
  EXPECT_EQ(stats.components, 3);
  EXPECT_GE(stats.peripheral_bfs_sweeps, 3);
}

TEST(RcmSerial, ReducesBandwidthOnShuffledGrid) {
  const auto natural = gen::grid2d(20, 20);
  const auto a = gen::relabel_random(natural, 13);
  const auto labels = rcm_serial(a);
  EXPECT_TRUE(sparse::is_valid_permutation(labels));
  const auto bw_before = sparse::bandwidth(a);
  const auto bw_after = sparse::bandwidth_with_labels(a, labels);
  EXPECT_LT(bw_after, bw_before / 4);  // orders of magnitude in practice
  EXPECT_LE(bw_after, 40);             // near the grid cross-section (20)
}

TEST(RcmSerial, BandwidthInsensitiveToInputLabeling) {
  // Quality should be roughly the same no matter how the input is labeled.
  const auto base = gen::grid2d_9pt(15, 12);
  const auto l1 = rcm_serial(base);
  const auto l2 = rcm_serial(gen::relabel_random(base, 3));
  const auto bw1 = sparse::bandwidth_with_labels(base, l1);
  const auto bw2 = sparse::bandwidth_with_labels(gen::relabel_random(base, 3), l2);
  EXPECT_LE(bw2, 2 * bw1 + 2);
  EXPECT_LE(bw1, 2 * bw2 + 2);
}

TEST(RcmSerial, ReverseLabelsValidatesInput) {
  std::vector<index_t> incomplete{0, kNoVertex};
  EXPECT_THROW(reverse_labels(incomplete), CheckError);
}

TEST(RcmSerial, NosortIsValidButNoBetter) {
  const auto a = gen::relabel_random(gen::grid2d(16, 16), 5);
  const auto plain = rcm_serial(a);
  const auto nosort = rcm_nosort(a);
  EXPECT_TRUE(sparse::is_valid_permutation(nosort));
  // The degree key can only help (this is a heuristic, but it holds on
  // mesh-like inputs; the ablation bench quantifies it).
  EXPECT_LE(sparse::bandwidth_with_labels(a, plain),
            sparse::bandwidth_with_labels(a, nosort) + 2);
}

// --- property sweeps --------------------------------------------------------

struct WorkloadCase {
  const char* name;
  CsrMatrix matrix;
};

std::vector<WorkloadCase> property_workloads() {
  std::vector<WorkloadCase> w;
  w.push_back({"path40", gen::path(40)});
  w.push_back({"cycle23", gen::cycle(23)});
  w.push_back({"star17", gen::star(17)});
  w.push_back({"complete9", gen::complete(9)});
  w.push_back({"caterpillar", gen::caterpillar(9, 3)});
  w.push_back({"grid2d", gen::grid2d(9, 13)});
  w.push_back({"grid2d9pt", gen::grid2d_9pt(8, 8)});
  w.push_back({"grid3d", gen::grid3d(5, 4, 6)});
  w.push_back({"grid3d27", gen::grid3d(4, 4, 4, gen::Stencil3d::k27)});
  w.push_back({"er_sparse", gen::erdos_renyi(150, 3.0, 7)});
  w.push_back({"er_dense", gen::erdos_renyi(80, 12.0, 8)});
  w.push_back({"rmat", gen::rmat(7, 6, 9)});
  w.push_back({"banded", gen::random_banded(120, 6, 0.4, 10)});
  w.push_back({"kkt", gen::kkt_system(gen::grid2d(8, 8), 30)});
  w.push_back({"shuffled_grid", gen::relabel_random(gen::grid2d(12, 12), 11)});
  w.push_back({"forest", gen::disjoint_union({gen::path(9), gen::caterpillar(4, 2),
                                              gen::empty_graph(3)})});
  return w;
}

class RcmWorkloadProperty : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Workloads, RcmWorkloadProperty,
                         ::testing::Range(0, 16));

TEST_P(RcmWorkloadProperty, ClassicAndLevelFormulationsCoincide) {
  // Algorithm 1 (queue) and Algorithm 3 executed serially (level + sortperm)
  // must give identical labelings under the shared tie-breaking rules.
  const auto w = property_workloads()[static_cast<std::size_t>(GetParam())];
  EXPECT_EQ(cm_serial(w.matrix), cm_classic(w.matrix)) << w.name;
}

TEST_P(RcmWorkloadProperty, RcmIsValidPermutation) {
  const auto w = property_workloads()[static_cast<std::size_t>(GetParam())];
  EXPECT_TRUE(sparse::is_valid_permutation(rcm_serial(w.matrix))) << w.name;
}

TEST_P(RcmWorkloadProperty, ReversalNeverHurtsProfile) {
  // George's theorem (Liu & Sherman): profile(RCM) <= profile(CM).
  const auto w = property_workloads()[static_cast<std::size_t>(GetParam())];
  const auto cm = cm_serial(w.matrix);
  auto rcm = cm;
  reverse_labels(rcm);
  EXPECT_LE(sparse::profile_with_labels(w.matrix, rcm),
            sparse::profile_with_labels(w.matrix, cm))
      << w.name;
}

TEST_P(RcmWorkloadProperty, BandwidthEqualForCmAndRcm) {
  // Reversal preserves |label(u)-label(v)| per edge.
  const auto w = property_workloads()[static_cast<std::size_t>(GetParam())];
  const auto cm = cm_serial(w.matrix);
  auto rcm = cm;
  reverse_labels(rcm);
  EXPECT_EQ(sparse::bandwidth_with_labels(w.matrix, cm),
            sparse::bandwidth_with_labels(w.matrix, rcm))
      << w.name;
}

TEST_P(RcmWorkloadProperty, LevelSetsRespectAdjacency) {
  // In a CM ordering, each vertex's labeled neighbors must form a
  // contiguous-enough pattern: no neighbor may be labeled before the
  // vertex's parent. Weak but fully general sanity invariant: for every
  // edge (u,v), |cm[u]-cm[v]| <= bandwidth.
  const auto w = property_workloads()[static_cast<std::size_t>(GetParam())];
  const auto cm = cm_serial(w.matrix);
  const auto bw = sparse::bandwidth_with_labels(w.matrix, cm);
  for (index_t u = 0; u < w.matrix.n(); ++u) {
    for (const index_t v : w.matrix.row(u)) {
      EXPECT_LE(std::abs(cm[static_cast<std::size_t>(u)] -
                         cm[static_cast<std::size_t>(v)]),
                bw);
    }
  }
}

}  // namespace
}  // namespace drcm::order
