// The sharded-label pipeline (DistRcmOptions::sharded_labels): the label
// vector — the last replicated O(n) structure inside the ranks — stays an
// O(n/p) slab end to end. Ordering returns a distributed vector,
// redistribution resolves labels through a two-sided window lookup (one
// extra O(n/q) alltoallv), and the rhs relabel becomes a local slab read.
//
// Contracts pinned here:
//  * dist_rcm_sharded's slab, gathered, equals dist_rcm bit for bit;
//  * ordered_solve under sharded_labels reproduces the replicated-label
//    path BIT FOR BIT (labels, bandwidth, iteration count, solution slabs)
//    across the {1,4,9,16} rank wall, load balancing on and off;
//  * the sharded route costs exactly two extra redistribute crossings
//    (kRedistribute = 8 vs the replicated one-shot's 6 at p = 4);
//  * the per-rank resident peak stays inside the sharded budget, which
//    carries an O(n/q) window term but NO O(n) term;
//  * sharded_labels without the one-shot redistribution is a structured
//    precondition failure, not a silent fallback.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "dist_rank_matrix.hpp"
#include "mpsim/runtime.hpp"
#include "rcm/rcm_driver.hpp"
#include "sparse/generators.hpp"

namespace drcm::rcm {
namespace {

using mps::Comm;
using mps::Runtime;
namespace gen = sparse::gen;

std::vector<double> wavy_rhs(index_t n) {
  std::vector<double> b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i)] =
        1.0 + 0.5 * static_cast<double>((i * 2654435761u) % 1000) / 1000.0;
  }
  return b;
}

TEST(ShardedLabels, DistRcmShardedGathersToTheReplicatedLabels) {
  for (const int p : dist::testing::rank_counts()) {
    for (const bool balance : {false, true}) {
      const auto adjacency = gen::relabel_random(gen::grid2d(15, 17), 11);
      DistRcmOptions options;
      options.load_balance = balance;
      Runtime::run(p, [&](Comm& world) {
        dist::ProcGrid2D grid(world);
        auto slab = dist_rcm_sharded(world, grid, adjacency, options);
        const auto gathered = slab.to_global(world);
        const auto replicated = dist_rcm(world, adjacency, options);
        EXPECT_EQ(gathered, replicated)
            << "p=" << p << " load_balance=" << balance;
      });
    }
  }
}

TEST(ShardedLabels, OrderedSolveBitIdenticalAcrossTheRankWall) {
  for (const int p : dist::testing::rank_counts_wall()) {
    for (const bool balance : {false, true}) {
      const auto m = gen::with_laplacian_values(
          gen::relabel_random(gen::grid2d(18, 19), 7), 0.02);
      const auto b = wavy_rhs(m.n());
      solver::CgOptions cg;
      cg.rtol = 1e-8;
      DistRcmOptions sharded;
      sharded.sharded_labels = true;
      sharded.load_balance = balance;
      DistRcmOptions replicated;
      replicated.load_balance = balance;

      std::vector<std::vector<double>> sharded_slabs(
          static_cast<std::size_t>(p));
      std::vector<std::vector<double>> replicated_slabs(
          static_cast<std::size_t>(p));
      OrderedSolveResult got;
      OrderedSolveResult want;
      Runtime::run(p, [&](Comm& world) {
        auto a = ordered_solve(world, m, b, true, sharded, cg);
        sharded_slabs[static_cast<std::size_t>(world.rank())] =
            std::move(a.x_local);
        auto c = ordered_solve(world, m, b, true, replicated, cg);
        replicated_slabs[static_cast<std::size_t>(world.rank())] =
            std::move(c.x_local);
        if (world.rank() == 0) {
          got = std::move(a);
          want = std::move(c);
        }
      });

      ASSERT_TRUE(got.cg.converged);
      ASSERT_TRUE(want.cg.converged);
      EXPECT_EQ(got.labels, want.labels)
          << "p=" << p << " load_balance=" << balance;
      EXPECT_EQ(got.permuted_bandwidth, want.permuted_bandwidth);
      EXPECT_EQ(got.cg.iterations, want.cg.iterations);
      for (int r = 0; r < p; ++r) {
        const auto& xs = sharded_slabs[static_cast<std::size_t>(r)];
        const auto& xr = replicated_slabs[static_cast<std::size_t>(r)];
        ASSERT_EQ(xs.size(), xr.size()) << "p=" << p << " rank " << r;
        for (std::size_t k = 0; k < xs.size(); ++k) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(xs[k]),
                    std::bit_cast<std::uint64_t>(xr[k]))
              << "p=" << p << " rank " << r << " slot " << k;
        }
      }
    }
  }
}

TEST(ShardedLabels, RedistributeCrossingsPinnedAtFourRanks) {
  // The price of never replicating the labels, in barrier crossings at
  // p = 4: the replicated one-shot route pays 6 in kRedistribute (fused
  // matrix alltoallv chain = 3, bandwidth allreduce = 1, rhs slab
  // exchange = 2, each collective two crossings except the fused chain's
  // three); the sharded route adds ONE label-window alltoallv (= 2) for a
  // pinned total of 8. Any drift here is a synchrony regression.
  const auto m = gen::with_laplacian_values(
      gen::relabel_random(gen::grid2d(14, 14), 3), 0.02);
  const auto b = wavy_rhs(m.n());
  for (const bool shard : {false, true}) {
    DistRcmOptions options;
    options.sharded_labels = shard;
    const auto report = Runtime::run(4, [&](Comm& world) {
      ordered_solve(world, m, b, true, options);
    });
    const std::uint64_t want = shard ? 8 : 6;
    for (std::size_t r = 0; r < report.ranks.size(); ++r) {
      EXPECT_EQ(report.ranks[r].phase(mps::Phase::kRedistribute)
                    .barrier_crossings,
                want)
          << "sharded=" << shard << " rank " << r;
    }
  }
}

TEST(ShardedLabels, ResidentPeakStaysInsideTheShardedBudget) {
  // External re-check of the ledger bound ordered_solve asserts
  // internally: one-shot terms plus the O(n/q) label windows — and no
  // O(n) term, which is the point of the satellite.
  const auto m = gen::with_laplacian_values(
      gen::relabel_random(gen::grid3d(5, 6, 7, gen::Stencil3d::k27), 2), 0.02);
  const auto b = wavy_rhs(m.n());
  for (const int p : dist::testing::rank_counts()) {
    DistRcmOptions options;
    options.sharded_labels = true;
    const auto report = Runtime::run(p, [&](Comm& world) {
      ordered_solve(world, m, b, true, options);
    });
    const auto q = static_cast<u64>(dist::grid_side_floor(p));
    const auto budget = 24 * static_cast<u64>(m.nnz()) / static_cast<u64>(p) +
                        48 * static_cast<u64>(m.n()) / static_cast<u64>(p) +
                        4096 + 16 * static_cast<u64>(m.n()) / q;
    EXPECT_LE(report.max_peak_resident(), budget) << "p=" << p;
  }
}

TEST(ShardedLabels, RequiresTheOneShotRedistribution) {
  const auto m = gen::with_laplacian_values(gen::grid2d(8, 8), 0.02);
  const auto b = wavy_rhs(m.n());
  DistRcmOptions options;
  options.sharded_labels = true;
  options.one_shot_redistribute = false;
  EXPECT_THROW(Runtime::run(4,
                            [&](Comm& world) {
                              ordered_solve(world, m, b, true, options);
                            }),
               CheckError);
}

}  // namespace
}  // namespace drcm::rcm
