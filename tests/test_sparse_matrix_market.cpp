// Matrix Market I/O: round-trips and malformed-input failure injection.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"

namespace drcm::sparse {
namespace {

TEST(MatrixMarket, ReadsSymmetricPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.n(), 3);
  EXPECT_EQ(a.nnz(), 4);  // mirrored
  EXPECT_TRUE(a.has_entry(0, 1));
  EXPECT_TRUE(a.has_entry(1, 0));
  EXPECT_FALSE(a.has_values());
}

TEST(MatrixMarket, ReadsGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 4.5\n"
      "1 2 -1\n"
      "2 1 -1\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 3);
  ASSERT_TRUE(a.has_values());
  EXPECT_DOUBLE_EQ(a.row_values(0)[0], 4.5);
}

TEST(MatrixMarket, RoundTripSymmetric) {
  const auto a = gen::with_laplacian_values(gen::grid2d(4, 4));
  std::stringstream buf;
  write_matrix_market(buf, a, /*as_symmetric=*/true);
  const auto b = read_matrix_market(buf);
  EXPECT_EQ(b.n(), a.n());
  EXPECT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.n(); ++i) {
    const auto ra = a.row(i), rb = b.row(i);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k], rb[k]);
      EXPECT_DOUBLE_EQ(a.row_values(i)[k], b.row_values(i)[k]);
    }
  }
}

TEST(MatrixMarket, RoundTripGeneralPattern) {
  const auto a = gen::erdos_renyi(50, 4.0, 8);
  std::stringstream buf;
  write_matrix_market(buf, a, /*as_symmetric=*/false);
  const auto b = read_matrix_market(buf);
  EXPECT_EQ(b.nnz(), a.nnz());
}

TEST(MatrixMarket, WriteSymmetricRejectsUnsymmetric) {
  CooBuilder c(2);
  c.add(0, 1);
  const auto a = c.to_csr(false);
  std::stringstream buf;
  EXPECT_THROW(write_matrix_market(buf, a, true), CheckError);
}

TEST(MatrixMarket, MalformedInputsThrowWithLineInfo) {
  const auto expect_fail = [](const char* text, const char* what) {
    std::istringstream in(text);
    EXPECT_THROW(read_matrix_market(in), CheckError) << what;
  };
  expect_fail("", "empty stream");
  expect_fail("%%NotMM matrix coordinate real general\n1 1 0\n", "banner");
  expect_fail("%%MatrixMarket tensor coordinate real general\n", "object");
  expect_fail("%%MatrixMarket matrix array real general\n", "format");
  expect_fail("%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
              "field");
  expect_fail("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
              "symmetry");
  expect_fail("%%MatrixMarket matrix coordinate real general\nnot a size\n",
              "size line");
  expect_fail("%%MatrixMarket matrix coordinate real general\n2 3 0\n",
              "rectangular");
  expect_fail("%%MatrixMarket matrix coordinate real general\n2 2 1\n",
              "truncated entries");
  expect_fail("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
              "out of range entry");
  expect_fail("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
              "missing value");
  expect_fail(
      "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n",
      "upper triangle in symmetric");
}

// Table-driven hardening sweep: every class of malformed file must produce
// a ParseError naming the offending line, never a bad matrix or a crash.
TEST(MatrixMarket, BadFilesThrowStructuredParseErrors) {
  struct BadFile {
    const char* name;
    const char* text;
    std::size_t line;          // expected ParseError::line()
    const char* what_substr;   // expected fragment of the message
  };
  const BadFile kCases[] = {
      {"empty stream", "", 0, "empty"},
      {"truncated header", "%%MatrixMarket matrix coordinate real\n1 1 0\n", 1,
       "truncated header"},
      {"missing size line", "%%MatrixMarket matrix coordinate real general\n",
       1, "missing size line"},
      {"comments then eof",
       "%%MatrixMarket matrix coordinate real general\n% only comments\n", 2,
       "missing size line"},
      {"size line garbage",
       "%%MatrixMarket matrix coordinate real general\n2 2 x\n", 2,
       "malformed entry count"},
      {"size line extra tokens",
       "%%MatrixMarket matrix coordinate real general\n2 2 1 7\n", 2,
       "bad size line"},
      {"row count overflow",
       "%%MatrixMarket matrix coordinate real general\n"
       "99999999999999999999999 99999999999999999999999 1\n1 1 1.0\n",
       2, "overflows"},
      {"entry index overflow",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n"
       "99999999999999999999999 1 1.0\n",
       3, "overflows"},
      {"negative dimensions",
       "%%MatrixMarket matrix coordinate real general\n-2 -2 1\n1 1 1.0\n", 2,
       "non-positive"},
      {"zero row index",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n", 3,
       "out of range"},
      {"column out of range",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 3 1.0\n", 3,
       "out of range"},
      {"duplicate entry",
       "%%MatrixMarket matrix coordinate real general\n2 2 3\n"
       "1 1 1.0\n1 2 2.0\n1 1 5.0\n",
       5, "duplicate entry"},
      {"duplicate diagonal in symmetric",
       "%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n"
       "1 1 1.0\n2 1 2.0\n1 1 4.0\n",
       5, "duplicate entry"},
      {"upper triangle declared symmetric",
       "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n", 3,
       "upper-triangle"},
      {"non-finite value",
       "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n", 3,
       "non-finite"},
      {"value overflow",
       "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1e999\n", 3,
       "non-finite"},
      {"malformed value",
       "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0x\n", 3,
       "malformed value"},
      {"trailing garbage on entry",
       "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0 oops\n",
       3, "trailing garbage"},
      {"more entries than declared",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n"
       "1 1 1.0\n2 2 1.0\n",
       4, "more entries"},
      {"truncated body",
       "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", 3,
       "unexpected end of file"},
  };
  for (const auto& c : kCases) {
    std::istringstream in(c.text);
    try {
      read_matrix_market(in);
      FAIL() << c.name << ": expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), c.line) << c.name;
      EXPECT_NE(std::string(e.what()).find(c.what_substr), std::string::npos)
          << c.name << ": got '" << e.what() << "'";
    }
  }
}

// CRLF files parse identically to LF files.
TEST(MatrixMarket, AcceptsCrlfLineEndings) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\r\n"
      "2 2 2\r\n"
      "1 1 4.0\r\n"
      "2 2 4.0\r\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.n(), 2);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.row_values(1)[0], 4.0);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/foo.mtx"), CheckError);
}

TEST(MatrixMarket, PatternFieldIgnoresValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const auto a = read_matrix_market(in);
  EXPECT_FALSE(a.has_values());
  EXPECT_TRUE(a.is_pattern_symmetric());
}

}  // namespace
}  // namespace drcm::sparse
