// Matrix Market I/O: round-trips and malformed-input failure injection.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"

namespace drcm::sparse {
namespace {

TEST(MatrixMarket, ReadsSymmetricPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.n(), 3);
  EXPECT_EQ(a.nnz(), 4);  // mirrored
  EXPECT_TRUE(a.has_entry(0, 1));
  EXPECT_TRUE(a.has_entry(1, 0));
  EXPECT_FALSE(a.has_values());
}

TEST(MatrixMarket, ReadsGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 4.5\n"
      "1 2 -1\n"
      "2 1 -1\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 3);
  ASSERT_TRUE(a.has_values());
  EXPECT_DOUBLE_EQ(a.row_values(0)[0], 4.5);
}

TEST(MatrixMarket, RoundTripSymmetric) {
  const auto a = gen::with_laplacian_values(gen::grid2d(4, 4));
  std::stringstream buf;
  write_matrix_market(buf, a, /*as_symmetric=*/true);
  const auto b = read_matrix_market(buf);
  EXPECT_EQ(b.n(), a.n());
  EXPECT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.n(); ++i) {
    const auto ra = a.row(i), rb = b.row(i);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k], rb[k]);
      EXPECT_DOUBLE_EQ(a.row_values(i)[k], b.row_values(i)[k]);
    }
  }
}

TEST(MatrixMarket, RoundTripGeneralPattern) {
  const auto a = gen::erdos_renyi(50, 4.0, 8);
  std::stringstream buf;
  write_matrix_market(buf, a, /*as_symmetric=*/false);
  const auto b = read_matrix_market(buf);
  EXPECT_EQ(b.nnz(), a.nnz());
}

TEST(MatrixMarket, WriteSymmetricRejectsUnsymmetric) {
  CooBuilder c(2);
  c.add(0, 1);
  const auto a = c.to_csr(false);
  std::stringstream buf;
  EXPECT_THROW(write_matrix_market(buf, a, true), CheckError);
}

TEST(MatrixMarket, MalformedInputsThrowWithLineInfo) {
  const auto expect_fail = [](const char* text, const char* what) {
    std::istringstream in(text);
    EXPECT_THROW(read_matrix_market(in), CheckError) << what;
  };
  expect_fail("", "empty stream");
  expect_fail("%%NotMM matrix coordinate real general\n1 1 0\n", "banner");
  expect_fail("%%MatrixMarket tensor coordinate real general\n", "object");
  expect_fail("%%MatrixMarket matrix array real general\n", "format");
  expect_fail("%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
              "field");
  expect_fail("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
              "symmetry");
  expect_fail("%%MatrixMarket matrix coordinate real general\nnot a size\n",
              "size line");
  expect_fail("%%MatrixMarket matrix coordinate real general\n2 3 0\n",
              "rectangular");
  expect_fail("%%MatrixMarket matrix coordinate real general\n2 2 1\n",
              "truncated entries");
  expect_fail("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
              "out of range entry");
  expect_fail("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
              "missing value");
  expect_fail(
      "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n",
      "upper triangle in symmetric");
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/foo.mtx"), CheckError);
}

TEST(MatrixMarket, PatternFieldIgnoresValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const auto a = read_matrix_market(in);
  EXPECT_FALSE(a.has_values());
  EXPECT_TRUE(a.is_pattern_symmetric());
}

}  // namespace
}  // namespace drcm::sparse
