// Structural-invariant tests for every synthetic generator.
#include <gtest/gtest.h>

#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph_algo.hpp"
#include "sparse/metrics.hpp"

namespace drcm::sparse {
namespace {

void expect_simple_symmetric(const CsrMatrix& a, const char* what) {
  EXPECT_TRUE(a.is_pattern_symmetric()) << what;
  EXPECT_FALSE(a.has_self_loops()) << what;
  EXPECT_FALSE(a.has_values()) << what;
}

TEST(Generators, PathStructure) {
  const auto a = gen::path(5);
  expect_simple_symmetric(a, "path");
  EXPECT_EQ(a.nnz(), 8);  // 4 edges, both directions
  EXPECT_EQ(a.degree(0), 1);
  EXPECT_EQ(a.degree(2), 2);
  EXPECT_EQ(connected_components(a).count, 1);
}

TEST(Generators, PathDegenerateSizes) {
  EXPECT_EQ(gen::path(0).n(), 0);
  EXPECT_EQ(gen::path(1).nnz(), 0);
  EXPECT_EQ(gen::cycle(2).nnz(), 2);  // single edge, no double edge
}

TEST(Generators, CycleIsTwoRegular) {
  const auto a = gen::cycle(8);
  expect_simple_symmetric(a, "cycle");
  for (index_t v = 0; v < 8; ++v) EXPECT_EQ(a.degree(v), 2);
}

TEST(Generators, StarDegrees) {
  const auto a = gen::star(7);
  expect_simple_symmetric(a, "star");
  EXPECT_EQ(a.degree(0), 6);
  for (index_t v = 1; v < 7; ++v) EXPECT_EQ(a.degree(v), 1);
}

TEST(Generators, CompleteGraph) {
  const auto a = gen::complete(5);
  expect_simple_symmetric(a, "complete");
  EXPECT_EQ(a.nnz(), 20);
  EXPECT_EQ(eccentricity(a, 3), 1);
}

TEST(Generators, CaterpillarCounts) {
  const auto a = gen::caterpillar(4, 3);
  expect_simple_symmetric(a, "caterpillar");
  EXPECT_EQ(a.n(), 16);
  EXPECT_EQ(a.nnz(), 2 * (3 + 12));  // 3 spine edges + 12 legs
  EXPECT_EQ(a.degree(0), 1 + 3);     // end of spine: 1 spine nbr + 3 legs
  EXPECT_EQ(a.degree(1), 2 + 3);
}

TEST(Generators, DisjointUnionKeepsComponents) {
  const auto a = gen::disjoint_union({gen::path(3), gen::cycle(4), gen::star(5)});
  expect_simple_symmetric(a, "union");
  EXPECT_EQ(a.n(), 12);
  EXPECT_EQ(connected_components(a).count, 3);
}

TEST(Generators, Grid2dStructure) {
  const auto a = gen::grid2d(4, 3);
  expect_simple_symmetric(a, "grid2d");
  EXPECT_EQ(a.n(), 12);
  // Edge count: (nx-1)*ny + nx*(ny-1) = 9 + 8 = 17.
  EXPECT_EQ(a.nnz(), 2 * 17);
  EXPECT_EQ(bandwidth(a), 3);  // ny
  EXPECT_EQ(connected_components(a).count, 1);
}

TEST(Generators, Grid2d9ptHasDiagonals) {
  const auto a = gen::grid2d_9pt(3, 3);
  expect_simple_symmetric(a, "grid2d_9pt");
  EXPECT_EQ(a.degree(4), 8);  // center touches all others
  EXPECT_TRUE(a.has_entry(0, 4));
}

TEST(Generators, Grid3d7ptDegrees) {
  const auto a = gen::grid3d(3, 3, 3, gen::Stencil3d::k7);
  expect_simple_symmetric(a, "grid3d-7");
  EXPECT_EQ(a.n(), 27);
  EXPECT_EQ(a.degree(13), 6);  // interior vertex
  EXPECT_EQ(a.degree(0), 3);   // corner
}

TEST(Generators, Grid3d27ptDegrees) {
  const auto a = gen::grid3d(3, 3, 3, gen::Stencil3d::k27);
  expect_simple_symmetric(a, "grid3d-27");
  EXPECT_EQ(a.degree(13), 26);  // interior vertex touches whole cube
  EXPECT_EQ(a.degree(0), 7);    // corner
}

TEST(Generators, Grid3dLineDegenerates) {
  const auto line = gen::grid3d(5, 1, 1);
  EXPECT_EQ(line.nnz(), gen::path(5).nnz());
  EXPECT_EQ(bandwidth(line), 1);
}

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
  const auto a = gen::erdos_renyi(300, 8.0, 42);
  const auto b = gen::erdos_renyi(300, 8.0, 42);
  const auto c = gen::erdos_renyi(300, 8.0, 43);
  expect_simple_symmetric(a, "erdos_renyi");
  EXPECT_EQ(a.nnz(), b.nnz());
  ASSERT_EQ(a.col_idx().size(), b.col_idx().size());
  EXPECT_TRUE(std::equal(a.col_idx().begin(), a.col_idx().end(),
                         b.col_idx().begin()));
  // Different seed -> different edge set (overwhelmingly likely).
  EXPECT_FALSE(a.nnz() == c.nnz() &&
               std::equal(a.col_idx().begin(), a.col_idx().end(),
                          c.col_idx().begin()));
  // Average degree within 25% of target.
  const double avg = static_cast<double>(a.nnz()) / static_cast<double>(a.n());
  EXPECT_NEAR(avg, 8.0, 2.0);
}

TEST(Generators, ErdosRenyiLowDiameter) {
  const auto a = gen::erdos_renyi(2000, 16.0, 1);
  EXPECT_LE(pseudo_diameter(a, 0), 6);  // nuclear-CI regime (paper: 5-7)
}

TEST(Generators, RmatPowerLaw) {
  const auto a = gen::rmat(10, 8, 5);
  expect_simple_symmetric(a, "rmat");
  EXPECT_EQ(a.n(), 1024);
  index_t dmax = 0;
  for (index_t v = 0; v < a.n(); ++v) dmax = std::max(dmax, a.degree(v));
  // Skewed degree distribution: hub degree far above the average.
  const double avg = static_cast<double>(a.nnz()) / static_cast<double>(a.n());
  EXPECT_GT(static_cast<double>(dmax), 4.0 * avg);
}

TEST(Generators, RmatRejectsBadParameters) {
  EXPECT_THROW(gen::rmat(0, 8, 1), CheckError);
  EXPECT_THROW(gen::rmat(5, 8, 1, 0.6, 0.3, 0.2), CheckError);  // a+b+c >= 1
}

TEST(Generators, RandomBandedRespectsBand) {
  const auto a = gen::random_banded(200, 7, 0.5, 11);
  expect_simple_symmetric(a, "banded");
  EXPECT_LE(bandwidth(a), 7);
  EXPECT_GT(a.nnz(), 0);
}

TEST(Generators, KktSystemStructure) {
  const auto h = gen::grid2d(10, 10);
  const auto k = gen::kkt_system(h, 50, 3);
  expect_simple_symmetric(k, "kkt");
  EXPECT_EQ(k.n(), 150);
  // Constraint rows only touch H columns (the (2,2) block is zero).
  for (index_t c = 100; c < 150; ++c) {
    for (const index_t j : k.row(c)) EXPECT_LT(j, 100);
  }
  EXPECT_EQ(connected_components(k).count, 1);
}

TEST(Generators, RelabelRandomPreservesStructure) {
  const auto a = gen::grid2d(8, 8);
  const auto b = gen::relabel_random(a, 3);
  expect_simple_symmetric(b, "relabeled");
  EXPECT_EQ(b.n(), a.n());
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_EQ(pseudo_diameter(b, 0), pseudo_diameter(a, 0));
  // Degree multiset is preserved.
  auto da = a.degrees(), db = b.degrees();
  std::sort(da.begin(), da.end());
  std::sort(db.begin(), db.end());
  EXPECT_EQ(da, db);
}

TEST(Generators, AddRandomLongEdgesGrows) {
  const auto a = gen::grid2d(20, 20);
  const auto b = gen::add_random_long_edges(a, 0.5, 17);
  expect_simple_symmetric(b, "long-edges");
  EXPECT_GT(b.nnz(), a.nnz());
  // Original edges survive.
  for (index_t i = 0; i < a.n(); ++i) {
    for (const index_t j : a.row(i)) EXPECT_TRUE(b.has_entry(i, j));
  }
}

TEST(Generators, SymmetrizeDirectedPattern) {
  CooBuilder c(3);
  c.add(0, 1);
  c.add(2, 1);
  const auto a = c.to_csr(false);
  EXPECT_FALSE(a.is_pattern_symmetric());
  const auto s = gen::symmetrize(a);
  EXPECT_TRUE(s.is_pattern_symmetric());
  EXPECT_EQ(s.nnz(), 4);
}

TEST(Generators, LaplacianValuesAreSpdShaped) {
  const auto pattern = gen::grid2d(5, 5);
  const auto a = gen::with_laplacian_values(pattern, 0.5);
  EXPECT_TRUE(a.has_values());
  EXPECT_TRUE(a.has_self_loops());
  EXPECT_EQ(a.nnz(), pattern.nnz() + a.n());
  // Row sums equal the shift (diagonal dominance margin).
  for (index_t i = 0; i < a.n(); ++i) {
    double sum = 0;
    for (const double v : a.row_values(i)) sum += v;
    EXPECT_NEAR(sum, 0.5, 1e-12);
  }
}

TEST(Generators, LaplacianRejectsSelfLoopedInput) {
  const auto pattern = gen::grid2d(3, 3);
  const auto withloops = gen::with_laplacian_values(pattern);
  EXPECT_THROW(gen::with_laplacian_values(withloops), CheckError);
}

}  // namespace
}  // namespace drcm::sparse
