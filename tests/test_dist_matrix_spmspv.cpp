// Tests for the 2D-distributed matrix and the (select2nd, min) SpMSpV,
// validated against a serial reference on many grids and workloads.
#include <gtest/gtest.h>

#include <map>

#include "dist/dist_matrix.hpp"
#include "dist/primitives.hpp"
#include "dist/spmspv.hpp"
#include "mpsim/runtime.hpp"
#include "sparse/generators.hpp"

namespace drcm::dist {
namespace {

using mps::Comm;
using mps::Runtime;
using sparse::CsrMatrix;
namespace gen = sparse::gen;

/// Serial reference: y[i] = min over frontier neighbors j of value(j).
std::map<index_t, index_t> reference_spmspv(
    const CsrMatrix& a, const std::vector<VecEntry>& frontier) {
  std::map<index_t, index_t> out;
  for (const auto& [j, val] : frontier) {
    for (const index_t i : a.row(j)) {
      auto [it, inserted] = out.emplace(i, val);
      if (!inserted && val < it->second) it->second = val;
    }
  }
  return out;
}

/// Builds the distributed frontier from a global entry list (each rank
/// keeps what it owns), runs SpMSpV, and gathers the result.
std::vector<VecEntry> run_spmspv(int p, const CsrMatrix& a,
                                 const std::vector<VecEntry>& frontier) {
  std::vector<VecEntry> global_out;
  Runtime::run(p, [&](Comm& world) {
    ProcGrid2D grid(world);
    DistSpMat mat(grid, a);
    DistSpVec x(mat.vec_dist(), grid);
    std::vector<VecEntry> mine;
    for (const auto& e : frontier) {
      if (e.idx >= x.lo() && e.idx < x.hi()) mine.push_back(e);
    }
    x.assign(mine);
    const auto y = spmspv_select2nd_min(mat, x, grid);
    const auto gathered = y.to_global(world);
    if (world.rank() == 0) global_out = gathered;
    // Every output entry must be locally owned.
    for (const auto& e : y.entries()) {
      EXPECT_TRUE(e.idx >= y.lo() && e.idx < y.hi());
    }
  });
  return global_out;
}

void expect_matches_reference(int p, const CsrMatrix& a,
                              const std::vector<VecEntry>& frontier,
                              const char* what) {
  const auto got = run_spmspv(p, a, frontier);
  const auto want = reference_spmspv(a, frontier);
  ASSERT_EQ(got.size(), want.size()) << what << " p=" << p;
  std::size_t i = 0;
  for (const auto& [idx, val] : want) {
    EXPECT_EQ(got[i].idx, idx) << what << " p=" << p;
    EXPECT_EQ(got[i].val, val) << what << " p=" << p;
    ++i;
  }
}

class DistMatrixGrids : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Grids, DistMatrixGrids, ::testing::Values(1, 4, 9, 16));

TEST_P(DistMatrixGrids, BlocksTileTheMatrix) {
  const int p = GetParam();
  const auto a = gen::grid2d_9pt(7, 6);
  Runtime::run(p, [&](Comm& world) {
    ProcGrid2D grid(world);
    DistSpMat mat(grid, a);
    EXPECT_EQ(mat.n(), a.n());
    EXPECT_EQ(mat.global_nnz(world), a.nnz());
    // Local block bounds come from the chunk boundaries.
    EXPECT_EQ(mat.row_lo(), mat.vec_dist().chunk_lo(grid.row()));
    EXPECT_EQ(mat.col_hi(), mat.vec_dist().chunk_lo(grid.col() + 1));
  });
}

TEST_P(DistMatrixGrids, DegreesMatchSerial) {
  const int p = GetParam();
  const auto a = gen::erdos_renyi(83, 5.0, 3);
  const auto want = a.degrees();
  Runtime::run(p, [&](Comm& world) {
    ProcGrid2D grid(world);
    DistSpMat mat(grid, a);
    const auto d = mat.degrees(grid);
    const auto got = d.to_global(world);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(got, want);
  });
}

TEST_P(DistMatrixGrids, SpmspvSingleSource) {
  const int p = GetParam();
  const auto a = gen::grid2d(6, 6);
  expect_matches_reference(p, a, {VecEntry{14, 0}}, "grid single");
}

TEST_P(DistMatrixGrids, SpmspvMultiSourceMinWins) {
  const int p = GetParam();
  const auto a = gen::grid2d(6, 6);
  // Two adjacent sources with different labels: shared neighbors must take
  // the minimum label (paper Fig. 2 semantics).
  expect_matches_reference(p, a, {VecEntry{14, 7}, VecEntry{15, 3}},
                           "grid multi");
}

TEST_P(DistMatrixGrids, SpmspvOnRandomGraphs) {
  const int p = GetParam();
  for (u64 seed : {1u, 2u}) {
    const auto a = gen::erdos_renyi(60, 6.0, seed);
    std::vector<VecEntry> frontier;
    for (index_t v = 0; v < a.n(); v += 5) {
      frontier.push_back(VecEntry{v, 100 - v});
    }
    expect_matches_reference(p, a, frontier, "er");
  }
}

TEST_P(DistMatrixGrids, SpmspvEmptyFrontier) {
  const int p = GetParam();
  const auto a = gen::grid2d(4, 4);
  const auto got = run_spmspv(p, a, {});
  EXPECT_TRUE(got.empty());
}

TEST_P(DistMatrixGrids, SpmspvIsolatedVertexYieldsNothing) {
  const int p = GetParam();
  const auto a = gen::disjoint_union({gen::empty_graph(3), gen::path(9)});
  const auto got = run_spmspv(p, a, {VecEntry{0, 5}});
  EXPECT_TRUE(got.empty());
}

TEST_P(DistMatrixGrids, SpmspvFullFrontierTouchesEverything) {
  const int p = GetParam();
  const auto a = gen::cycle(30);
  std::vector<VecEntry> frontier;
  for (index_t v = 0; v < 30; ++v) frontier.push_back(VecEntry{v, v});
  expect_matches_reference(p, a, frontier, "cycle full");
}

TEST_P(DistMatrixGrids, SpmspvChargesPhaseCosts) {
  const int p = GetParam();
  const auto a = gen::grid2d(8, 8);
  const auto report = Runtime::run(p, [&](Comm& world) {
    ProcGrid2D grid(world);
    DistSpMat mat(grid, a);
    DistSpVec x(mat.vec_dist(), grid);
    if (x.lo() <= 20 && 20 < x.hi()) {
      x.assign({VecEntry{20, 0}});
    }
    mps::PhaseScope scope(world, mps::Phase::kOrderingSpmspv);
    spmspv_select2nd_min(mat, x, grid);
  });
  const auto agg = report.aggregate(mps::Phase::kOrderingSpmspv);
  EXPECT_GT(agg.max.model_compute_seconds, 0.0);
  if (p > 1) {
    EXPECT_GT(agg.max.model_comm_seconds, 0.0);
  }
}

TEST_P(DistMatrixGrids, AccumulatorStrategiesAgree) {
  // The paper's kernel-design ablation: the dense SPA and the sort-merge
  // accumulator must produce identical sparse vectors on any input.
  const int p = GetParam();
  const auto a = gen::rmat(6, 6, 13);
  std::vector<VecEntry> frontier;
  for (index_t v = 0; v < a.n(); v += 3) frontier.push_back(VecEntry{v, v + 1});
  Runtime::run(p, [&](Comm& world) {
    ProcGrid2D grid(world);
    DistSpMat mat(grid, a);
    DistSpVec x(mat.vec_dist(), grid);
    std::vector<VecEntry> mine;
    for (const auto& e : frontier) {
      if (e.idx >= x.lo() && e.idx < x.hi()) mine.push_back(e);
    }
    x.assign(mine);
    const auto y_spa =
        spmspv_select2nd_min(mat, x, grid, SpmspvAccumulator::kSpa);
    const auto y_merge =
        spmspv_select2nd_min(mat, x, grid, SpmspvAccumulator::kSortMerge);
    ASSERT_EQ(y_spa.entries().size(), y_merge.entries().size());
    for (std::size_t k = 0; k < y_spa.entries().size(); ++k) {
      EXPECT_EQ(y_spa.entries()[k], y_merge.entries()[k]);
    }
  });
}

TEST(DistMatrix, MismatchedVectorDistributionThrows) {
  Runtime::run(4, [](Comm& world) {
    ProcGrid2D grid(world);
    DistSpMat mat(grid, gen::grid2d(5, 5));
    VectorDist wrong(7, grid.q());
    DistSpVec x(wrong, grid);
    EXPECT_THROW(spmspv_select2nd_min(mat, x, grid), CheckError);
  });
}

}  // namespace
}  // namespace drcm::dist
