// Tests for the per-rank DistWorkspace: the explicit replacement for the
// old `thread_local` SPA inside spmspv.cpp. Two properties are pinned:
// alternating kernels over matrices of different dimensions through ONE
// workspace never cross-contaminates results, and steady-state reuse
// (BFS level after BFS level) stops allocating after warm-up.
#include "dist/workspace.hpp"

#include <gtest/gtest.h>

#include "dist/dist_matrix.hpp"
#include "dist/spmspv.hpp"
#include "mpsim/runtime.hpp"
#include "rcm/dist_bfs.hpp"
#include "rcm/dist_rcm.hpp"
#include "sparse/generators.hpp"

namespace drcm::dist {
namespace {

using mps::Comm;
using mps::Runtime;
namespace gen = sparse::gen;

TEST(StampedSlots, ShrinkingReuseCannotSeeStaleState) {
  StampedSlots s;
  s.begin(100);
  for (std::size_t i = 0; i < 100; ++i) s.put_min(i, 7);
  // A later, smaller epoch: every slot starts dead even though the storage
  // still physically holds the previous epoch's values.
  s.begin(10);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FALSE(s.live(i));
  s.put_min(3, 5);
  s.put_min(3, 9);  // min-combine keeps 5
  EXPECT_TRUE(s.live(3));
  EXPECT_EQ(s.val[3], 5);
  EXPECT_FALSE(s.live(4));
}

TEST(StampedSlots, GrowthReportsReallocation) {
  StampedSlots s;
  EXPECT_TRUE(s.begin(8));
  EXPECT_FALSE(s.begin(8));
  EXPECT_FALSE(s.begin(4));
  EXPECT_TRUE(s.begin(16));
}

TEST(ThreadArms, StampedSlotsAreIsolatedBetweenThreads) {
  // Each hybrid thread accumulates into its own stamped SPA: a write
  // through arm t must be invisible to every other arm, and each arm keeps
  // its own min.
  DistWorkspace ws;
  auto spas = ws.thread_spas(3, 16);
  ASSERT_EQ(spas.size(), 3u);
  spas[0].put_min(5, 40);
  spas[1].put_min(5, 7);
  spas[1].put_min(5, 9);  // min-combine keeps 7
  EXPECT_TRUE(spas[0].live(5));
  EXPECT_TRUE(spas[1].live(5));
  EXPECT_FALSE(spas[2].live(5));
  EXPECT_EQ(spas[0].val[5], 40);
  EXPECT_EQ(spas[1].val[5], 7);
  EXPECT_FALSE(spas[0].live(6));
}

TEST(ThreadArms, CheckoutOpensAFreshEpochOnEveryArm) {
  // No cross-call state leakage: values written in one hybrid multiply
  // must be dead at the next checkout, including over a smaller row range
  // (the shrinking-matrix hazard the per-rank workspace exists to kill).
  DistWorkspace ws;
  auto spas = ws.thread_spas(2, 32);
  spas[0].put_min(3, 1);
  spas[1].put_min(3, 2);
  auto again = ws.thread_spas(2, 8);
  EXPECT_FALSE(again[0].live(3));
  EXPECT_FALSE(again[1].live(3));
  auto stripes = ws.thread_stripes(2);
  stripes[0].emit.push_back(VecEntry{1, 1});
  stripes[1].cursors.push_back(MergeCursor{{}, 0, 0});
  auto stripes_again = ws.thread_stripes(2);
  EXPECT_TRUE(stripes_again[0].emit.empty());
  EXPECT_TRUE(stripes_again[1].cursors.empty());
}

TEST(ThreadArms, TouchedRowListsClearAtCheckoutAndCountCapacity) {
  // The output-sensitive kSpa merge records first-touched rows per thread;
  // the lists must behave like every other stripe buffer: cleared at
  // checkout with capacity retained, growth observed by the realloc ledger.
  DistWorkspace ws;
  auto stripes = ws.thread_stripes(2);
  stripes[0].touched.assign(64, 5);
  stripes[1].gather.assign(32, 7);
  const auto touched_cap = stripes[0].touched.capacity();
  auto again = ws.thread_stripes(2);
  EXPECT_TRUE(again[0].touched.empty());
  EXPECT_TRUE(again[1].gather.empty());
  EXPECT_EQ(again[0].touched.capacity(), touched_cap);
  // The growth was observed at that checkout; steady reuse is then free.
  const u64 settled = ws.reallocations();
  auto steady = ws.thread_stripes(2);
  steady[0].touched.assign(64, 9);
  steady[1].gather.assign(32, 9);
  ws.thread_stripes(2);
  EXPECT_EQ(ws.reallocations(), settled);
}

TEST(ThreadArms, SparseAndDenseMergeRegimesEmitIdenticalEntries) {
  // The hybrid kSpa merge switches between the touched-row (sparse) and
  // dense-stripe scans on the team's touched total; both regimes — and
  // every thread count — must emit exactly the serial arm's output. A
  // 1-entry frontier exercises the sparse branch, the full frontier the
  // dense branch.
  const auto a = gen::grid3d(5, 5, 6);
  Runtime::run(1, [&](Comm& world) {
    ProcGrid2D grid(world);
    DistSpMat mat(grid, a);
    for (const index_t stride : {a.n(), index_t{7}, index_t{1}}) {
      std::vector<VecEntry> frontier;
      for (index_t v = 0; v < a.n(); v += stride) {
        frontier.push_back(VecEntry{v, a.n() - v});
      }
      DistWorkspace serial_ws;
      double w0 = 0;
      const auto want = spmspv_local_multiply(
          mat, frontier, SpmspvAccumulator::kSpa, serial_ws, &w0, nullptr, 1);
      for (const int threads : {2, 3, 6}) {
        DistWorkspace ws;
        double w1 = 0;
        const auto got = spmspv_local_multiply(
            mat, frontier, SpmspvAccumulator::kSpa, ws, &w1, nullptr, threads);
        ASSERT_EQ(got, want) << "threads=" << threads << " stride=" << stride;
        EXPECT_EQ(w1, w0);  // modeled units are thread-invariant
      }
    }
  });
}

TEST(ThreadArms, SortMergeStripeMergeProbesEachHeadOncePerRound) {
  // The hybrid kSortMerge stage-2b merge used to scan every stripe head
  // TWICE per emitted row (one pass to find the minimum, a second to
  // re-find and advance the winners): 2*E*S + S probes for E emitted rows
  // from S stripes. The single-pass merge is pinned at exactly (E + 1) * S
  // — each round reads each head once, and the last round discovers every
  // head exhausted — while emitting bit-identical entries.
  const auto a = gen::grid3d(5, 5, 6);
  Runtime::run(1, [&](Comm& world) {
    ProcGrid2D grid(world);
    DistSpMat mat(grid, a);
    for (const index_t stride : {a.n(), index_t{7}, index_t{1}}) {
      std::vector<VecEntry> frontier;
      for (index_t v = 0; v < a.n(); v += stride) {
        frontier.push_back(VecEntry{v, a.n() - v});
      }
      DistWorkspace serial_ws;
      double w0 = 0;
      const auto want =
          spmspv_local_multiply(mat, frontier, SpmspvAccumulator::kSortMerge,
                                serial_ws, &w0, nullptr, 1);
      for (const u64 threads : {2u, 3u, 6u}) {
        DistWorkspace ws;
        double w1 = 0;
        const auto got = spmspv_local_multiply(
            mat, frontier, SpmspvAccumulator::kSortMerge, ws, &w1, nullptr,
            static_cast<int>(threads));
        ASSERT_EQ(got, want) << "threads=" << threads << " stride=" << stride;
        const u64 emitted = static_cast<u64>(got.size());
        EXPECT_EQ(ws.merge_probes(), (emitted + 1) * threads)
            << "threads=" << threads << " stride=" << stride;
      }
    }
    // Degenerate frontier: zero emitted rows still cost one probe per
    // stripe (the round that discovers there is nothing to merge).
    DistWorkspace ws;
    double w = 0;
    const std::vector<VecEntry> empty;
    const auto got = spmspv_local_multiply(
        mat, empty, SpmspvAccumulator::kSortMerge, ws, &w, nullptr, 4);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(ws.merge_probes(), 4u);
  });
}

TEST(ThreadArms, ReallocAccountingAcrossThreadCountChanges) {
  // Growing the thread count allocates (and is counted); shrinking
  // retains the extra arms' storage and re-growing back must be free, so a
  // rank alternating hybrid and flat calls settles like any other buffer.
  DistWorkspace ws;
  const auto warm = [&](std::size_t threads) {
    auto spas = ws.thread_spas(threads, 64);
    auto stripes = ws.thread_stripes(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      spas[t].put_min(t, 1);
      stripes[t].emit.assign(16, VecEntry{0, 0});
      stripes[t].heap.assign(8, {0, 0});
    }
  };
  warm(6);
  warm(6);  // capacities observed at the second checkout
  const u64 settled = ws.reallocations();
  warm(2);  // shrink: arms 2..5 untouched, nothing may be counted
  EXPECT_EQ(ws.reallocations(), settled);
  warm(6);  // re-grow to a warm size: still free
  EXPECT_EQ(ws.reallocations(), settled);
  warm(8);  // genuinely new arms must be counted
  EXPECT_GT(ws.reallocations(), settled);
  warm(8);
  const u64 settled8 = ws.reallocations();
  warm(8);
  EXPECT_EQ(ws.reallocations(), settled8);
}

/// Frontier over every stride-th owned vertex, values distinct per vertex.
std::vector<VecEntry> owned_frontier(const DistSpVec& shape, index_t n,
                                     index_t stride) {
  std::vector<VecEntry> mine;
  for (index_t v = 0; v < n; v += stride) {
    if (v >= shape.lo() && v < shape.hi()) mine.push_back(VecEntry{v, n - v});
  }
  return mine;
}

class WorkspaceGrids : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Grids, WorkspaceGrids, ::testing::Values(1, 4));

TEST_P(WorkspaceGrids, TwoMatrixSizesAlternateWithoutCrossContamination) {
  // The hazard the workspace object fixes: under the thread_local SPA, a
  // big matrix inflated the shared buffer and a small matrix reused it
  // blind. Alternate SpMSpV calls of two differently-sized matrices
  // through ONE shared workspace and demand bit-identical results to
  // calls made with a fresh workspace each time.
  const int p = GetParam();
  const auto big = gen::grid3d(6, 5, 5);   // n = 150
  const auto small = gen::path(37);        // n = 37
  for (const int threads : {1, 3}) {  // flat and hybrid share the arms
    for (const auto acc :
         {SpmspvAccumulator::kSpa, SpmspvAccumulator::kSortMerge}) {
      Runtime::run(p, [&](Comm& world) {
        ProcGrid2D grid(world);
        DistSpMat mat_big(grid, big);
        DistSpMat mat_small(grid, small);
        DistSpVec x_big(mat_big.vec_dist(), grid);
        DistSpVec x_small(mat_small.vec_dist(), grid);
        DistWorkspace shared;
        for (int round = 0; round < 4; ++round) {
          x_big.assign(owned_frontier(x_big, big.n(), 2 + round));
          x_small.assign(owned_frontier(x_small, small.n(), 1 + round));
          for (bool use_big : {true, false, true}) {
            const auto& mat = use_big ? mat_big : mat_small;
            const auto& x = use_big ? x_big : x_small;
            const auto got = spmspv_select2nd_min(mat, x, grid, acc, &shared);
            DistWorkspace fresh;
            const auto want = spmspv_select2nd_min(mat, x, grid, acc, &fresh);
            ASSERT_EQ(got.entries(), want.entries())
                << "p=" << p << " threads=" << threads << " round=" << round
                << " big=" << use_big;
          }
        }
      }, {}, threads);
    }
  }
}

TEST_P(WorkspaceGrids, SteadyStateLevelsStopAllocatingAfterWarmup) {
  // One full BFS (every level shape the matrix can produce) warms every
  // buffer; a second identical traversal must not grow anything. Run flat
  // and hybrid: the per-thread arms must settle like every other buffer.
  const int p = GetParam();
  const auto a = gen::relabel_random(gen::grid2d(14, 14), 3);
  for (const int threads : {1, 6}) {
    Runtime::run(p, [&](Comm& world) {
      ProcGrid2D grid(world);
      DistSpMat mat(grid, a);
      const auto degrees = mat.degrees(grid);
      const auto run_both = [&] {
        DistDenseVec levels(mat.vec_dist(), grid, kNoVertex);
        rcm::dist_bfs(mat, 0, levels, grid, mps::Phase::kPeripheralSpmspv,
                      mps::Phase::kPeripheralOther);
        DistDenseVec labels(mat.vec_dist(), grid, kNoVertex);
        rcm::dist_cm_component(mat, degrees, labels, 0, 0, grid);
      };
      run_both();
      run_both();  // hybrid emit capacities can still be observed growing
      const u64 warm = grid.workspace().reallocations();
      EXPECT_GT(warm, 0u);
      run_both();
      run_both();
      EXPECT_EQ(grid.workspace().reallocations(), warm)
          << "steady-state BFS levels must reuse workspace buffers"
          << " (threads=" << threads << ")";
    }, {}, threads);
  }
}

TEST(Workspace, RouteBuffersKeepCapacityAcrossCheckouts) {
  DistWorkspace ws;
  auto& route = ws.entry_route(4);
  route[2].assign(100, VecEntry{0, 0});
  const auto cap = route[2].capacity();
  auto& again = ws.entry_route(4);
  EXPECT_EQ(&again, &route);
  EXPECT_TRUE(again[2].empty());
  EXPECT_EQ(again[2].capacity(), cap);
}

TEST(Workspace, ReallocationCounterSettles) {
  DistWorkspace ws;
  for (int i = 0; i < 3; ++i) {
    auto& s = ws.frontier_scratch();
    s.assign(64, VecEntry{1, 1});
    ws.index_scratch(128);
    ws.spa(256);
  }
  const u64 settled = ws.reallocations();
  for (int i = 0; i < 5; ++i) {
    auto& s = ws.frontier_scratch();
    s.assign(64, VecEntry{1, 1});
    ws.index_scratch(128);
    ws.spa(256);
  }
  EXPECT_EQ(ws.reallocations(), settled);
}

}  // namespace
}  // namespace drcm::dist
