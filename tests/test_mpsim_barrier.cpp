// Unit tests for the reusable SPMD barrier.
#include "mpsim/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace drcm::mps {
namespace {

TEST(Barrier, SingleParticipantNeverBlocks) {
  Barrier b(1);
  for (int i = 0; i < 100; ++i) b.arrive_and_wait();
  SUCCEED();
}

TEST(Barrier, RejectsNonPositiveParticipantCount) {
  EXPECT_THROW(Barrier(0), CheckError);
  EXPECT_THROW(Barrier(-3), CheckError);
}

TEST(Barrier, SynchronizesPhases) {
  // Each thread increments a counter, crosses the barrier, and checks that
  // every increment from the previous phase is visible.
  constexpr int kThreads = 8;
  constexpr int kPhases = 50;
  Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 1; phase <= kPhases; ++phase) {
        counter.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
        if (counter.load(std::memory_order_relaxed) < phase * kThreads) {
          failed.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kPhases);
}

TEST(Barrier, ReportsParticipantCount) {
  Barrier b(7);
  EXPECT_EQ(b.participants(), 7);
}

TEST(Barrier, ManyReusesSameBarrier) {
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        sum.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(), 500L * kThreads);
}

}  // namespace
}  // namespace drcm::mps
