// Tests for the OpenMP shared-memory RCM baseline and Sloan's ordering.
#include <gtest/gtest.h>

#include "order/rcm_serial.hpp"
#include "order/rcm_shared.hpp"
#include "order/sloan.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

namespace drcm::order {
namespace {

using sparse::CsrMatrix;
namespace gen = sparse::gen;

std::vector<CsrMatrix> workloads() {
  std::vector<CsrMatrix> w;
  w.push_back(gen::path(64));
  w.push_back(gen::grid2d(12, 17));
  w.push_back(gen::grid3d(6, 5, 7));
  w.push_back(gen::erdos_renyi(300, 6.0, 3));
  w.push_back(gen::rmat(8, 5, 4));
  w.push_back(gen::relabel_random(gen::grid2d(15, 15), 5));
  w.push_back(gen::disjoint_union({gen::path(11), gen::cycle(9), gen::star(6)}));
  w.push_back(gen::kkt_system(gen::grid2d(9, 9), 40));
  return w;
}

class SharedRcmProperty : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Workloads, SharedRcmProperty, ::testing::Range(0, 8));

TEST_P(SharedRcmProperty, MatchesSerialWithOneThread) {
  const auto a = workloads()[static_cast<std::size_t>(GetParam())];
  EXPECT_EQ(rcm_shared(a, 1), rcm_serial(a));
}

TEST_P(SharedRcmProperty, MatchesSerialWithTwoThreads) {
  const auto a = workloads()[static_cast<std::size_t>(GetParam())];
  EXPECT_EQ(rcm_shared(a, 2), rcm_serial(a));
}

TEST_P(SharedRcmProperty, MatchesSerialWithFourThreads) {
  const auto a = workloads()[static_cast<std::size_t>(GetParam())];
  EXPECT_EQ(rcm_shared(a, 4), rcm_serial(a));
}

TEST(SharedRcm, DefaultThreadCountWorks) {
  const auto a = gen::grid2d(20, 20);
  EXPECT_EQ(rcm_shared(a, 0), rcm_serial(a));
}

TEST(SharedRcm, EmptyAndTinyInputs) {
  EXPECT_TRUE(rcm_shared(gen::empty_graph(0), 2).empty());
  EXPECT_EQ(rcm_shared(gen::empty_graph(1), 2), (std::vector<index_t>{0}));
}

class SloanProperty : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Workloads, SloanProperty, ::testing::Range(0, 8));

TEST_P(SloanProperty, ProducesValidPermutation) {
  const auto a = workloads()[static_cast<std::size_t>(GetParam())];
  EXPECT_TRUE(sparse::is_valid_permutation(sloan(a)));
}

TEST(Sloan, ReducesProfileOnShuffledMesh) {
  const auto a = gen::relabel_random(gen::grid2d(20, 20), 21);
  const auto labels = sloan(a);
  EXPECT_LT(sparse::profile_with_labels(a, labels), sparse::profile(a) / 4);
}

TEST(Sloan, CompetitiveWithRcmOnMeshProfile) {
  // Sloan targets profile; it should be within a small factor of RCM
  // (and often better) on mesh problems.
  const auto a = gen::grid2d_9pt(18, 14);
  const auto ps = sparse::profile_with_labels(a, sloan(a));
  const auto pr = sparse::profile_with_labels(a, rcm_serial(a));
  EXPECT_LE(ps, 2 * pr);
}

TEST(Sloan, HandlesIsolatedVertices) {
  const auto a = gen::disjoint_union({gen::empty_graph(3), gen::path(4)});
  EXPECT_TRUE(sparse::is_valid_permutation(sloan(a)));
}

TEST(Sloan, RejectsNegativeWeights) {
  SloanOptions opt;
  opt.w1 = -1;
  EXPECT_THROW(sloan(gen::path(3), opt), CheckError);
}

TEST(Sloan, WeightsChangeTheOrdering) {
  // On a regular grid many weight ratios coincide (degrees are uniform), so
  // probe the two degenerate extremes: pure wavefront (w2=0) ignores the
  // distance field and pure distance (w1=0) ignores increments.
  const auto a = gen::relabel_random(gen::grid2d(12, 12), 2);
  SloanOptions wavefront_only;
  wavefront_only.w1 = 1;
  wavefront_only.w2 = 0;
  SloanOptions distance_only;
  distance_only.w1 = 0;
  distance_only.w2 = 1;
  const auto l1 = sloan(a, wavefront_only);
  const auto l2 = sloan(a, distance_only);
  EXPECT_TRUE(sparse::is_valid_permutation(l1));
  EXPECT_TRUE(sparse::is_valid_permutation(l2));
  EXPECT_NE(l1, l2);
  // The balanced default should beat both extremes on profile.
  const auto balanced = sloan(a);
  EXPECT_LE(sparse::profile_with_labels(a, balanced),
            sparse::profile_with_labels(a, l1));
  EXPECT_LE(sparse::profile_with_labels(a, balanced),
            sparse::profile_with_labels(a, l2));
}

}  // namespace
}  // namespace drcm::order
