// The ordering portfolio's walls: distributed Sloan and GPS bit-identical
// to their serial twins over grid sizes, the bi-criteria peripheral mode
// bit-identical and never costlier (in BFS sweeps) than George-Liu, the
// kAuto selector deterministic across grids, and every algorithm sane on
// degenerate inputs.
#include <gtest/gtest.h>

#include "order/gps.hpp"
#include "order/pseudo_peripheral.hpp"
#include "order/rcm_serial.hpp"
#include "order/sloan.hpp"
#include "rcm/ordering.hpp"
#include "rcm/rcm_driver.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

namespace drcm::rcm {
namespace {

using sparse::CsrMatrix;
namespace gen = sparse::gen;

CsrMatrix workload(int which) {
  switch (which) {
    case 0: return gen::path(37);
    case 1: return gen::cycle(24);
    case 2: return gen::star(15);
    case 3: return gen::grid2d(9, 11);
    case 4: return gen::grid2d_9pt(8, 7);
    case 5: return gen::grid3d(4, 5, 4);
    case 6: return gen::erdos_renyi(120, 5.0, 3);
    case 7: return gen::rmat(7, 5, 11);
    case 8: return gen::relabel_random(gen::grid2d(11, 11), 5);
    case 9: return gen::kkt_system(gen::grid2d(7, 7), 25);
    case 10:
      return gen::disjoint_union(
          {gen::path(9), gen::cycle(7), gen::empty_graph(4), gen::star(5)});
    case 11: return gen::caterpillar(8, 3);
    default: return gen::complete(10);
  }
}
constexpr int kNumWorkloads = 13;

DistRcmOptions with(OrderingAlgorithm algo,
                    PeripheralMode mode = PeripheralMode::kGeorgeLiu) {
  DistRcmOptions opt;
  opt.ordering.algorithm = algo;
  opt.ordering.peripheral_mode = mode;
  return opt;
}

// ---- Distributed Sloan wall -----------------------------------------

class DistSloanGrids
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    GridsAndWorkloads, DistSloanGrids,
    ::testing::Combine(::testing::Values(1, 4, 9),
                       ::testing::Range(0, kNumWorkloads)));

TEST_P(DistSloanGrids, BitIdenticalToSerialSloanLevels) {
  const auto [p, which] = GetParam();
  const auto a = workload(which);
  const auto want = order::sloan_levels(a);
  const auto run = run_dist_order(p, a, with(OrderingAlgorithm::kSloan));
  EXPECT_EQ(run.labels, want) << "workload " << which << " p=" << p;
  EXPECT_EQ(run.stats.algorithm, OrderingAlgorithm::kSloan);
}

TEST_P(DistSloanGrids, BiCriteriaModeStaysBitIdentical) {
  const auto [p, which] = GetParam();
  if (which % 3 != 0) GTEST_SKIP() << "subset is enough for the mode variant";
  const auto a = workload(which);
  const auto want =
      order::sloan_levels(a, {}, order::PeripheralMode::kBiCriteria);
  const auto run = run_dist_order(
      p, a, with(OrderingAlgorithm::kSloan, PeripheralMode::kBiCriteria));
  EXPECT_EQ(run.labels, want) << "workload " << which << " p=" << p;
}

TEST(DistSloan, ImprovesBandwidthAndIsAPermutation) {
  const auto a = gen::relabel_random(gen::grid2d(12, 12), 3);
  const auto run = run_dist_order(4, a, with(OrderingAlgorithm::kSloan));
  EXPECT_TRUE(sparse::is_valid_permutation(run.labels));
  EXPECT_LT(sparse::bandwidth_with_labels(a, run.labels),
            sparse::bandwidth(a));
}

// ---- Distributed GPS wall -------------------------------------------

class DistGpsGrids : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Grids, DistGpsGrids, ::testing::Values(1, 4, 9));

TEST_P(DistGpsGrids, BitIdenticalToSerialGps) {
  const int p = GetParam();
  for (int which : {0, 2, 3, 6, 8, 10}) {
    const auto a = workload(which);
    const auto run = run_dist_order(p, a, with(OrderingAlgorithm::kGps));
    EXPECT_EQ(run.labels, order::gps(a)) << "workload " << which;
    EXPECT_EQ(run.stats.algorithm, OrderingAlgorithm::kGps);
  }
}

// ---- Bi-criteria peripheral mode ------------------------------------

class BiCriteriaRcmGrids : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Grids, BiCriteriaRcmGrids,
                         ::testing::Values(1, 4, 9));

TEST_P(BiCriteriaRcmGrids, DistRcmMatchesSerialBiCriteria) {
  const int p = GetParam();
  for (int which = 0; which < kNumWorkloads; ++which) {
    const auto a = workload(which);
    const auto want = order::rcm_serial(a, nullptr,
                                        order::PeripheralMode::kBiCriteria);
    const auto run = run_dist_order(
        p, a, with(OrderingAlgorithm::kRcm, PeripheralMode::kBiCriteria));
    EXPECT_EQ(run.labels, want) << "workload " << which << " p=" << p;
  }
}

TEST(BiCriteria, NeverSweepsMoreThanGeorgeLiuAndSometimesLess) {
  // The RCM++ acceptance rule only continues iterating when BOTH criteria
  // improve, so sweeps(bi) <= sweeps(GL) on every input; and on at least
  // one suite workload it must actually save a sweep or shrink the level
  // count — the existence half of the acceptance criterion (CI re-gates
  // the same property from BENCH_5.json).
  bool improved_somewhere = false;
  for (int which = 0; which < kNumWorkloads; ++which) {
    const auto a = workload(which);
    order::OrderingStats gl, bi;
    order::rcm_serial(a, &gl, order::PeripheralMode::kGeorgeLiu);
    order::rcm_serial(a, &bi, order::PeripheralMode::kBiCriteria);
    EXPECT_LE(bi.peripheral_bfs_sweeps, gl.peripheral_bfs_sweeps)
        << "workload " << which;
    if (bi.peripheral_bfs_sweeps < gl.peripheral_bfs_sweeps ||
        bi.ordering_levels < gl.ordering_levels) {
      improved_somewhere = true;
    }
  }
  EXPECT_TRUE(improved_somewhere)
      << "bi-criteria must beat George-Liu on at least one suite workload";
}

TEST(BiCriteria, DistStatsMatchSerial) {
  const auto a = gen::relabel_random(gen::grid2d(13, 13), 7);
  order::OrderingStats serial;
  order::rcm_serial(a, &serial, order::PeripheralMode::kBiCriteria);
  const auto run = run_dist_order(
      4, a, with(OrderingAlgorithm::kRcm, PeripheralMode::kBiCriteria));
  EXPECT_EQ(run.stats.peripheral_bfs_sweeps, serial.peripheral_bfs_sweeps);
  EXPECT_EQ(run.stats.ordering_levels, serial.ordering_levels);
}

// ---- kAuto selector --------------------------------------------------

TEST(Selector, DeterministicAcrossGridSizes) {
  // The selector consumes matrix proxies only — never rank count or
  // timing — so the same matrix resolves to the same algorithm (and the
  // same labels) at every grid size.
  for (int which : {0, 3, 6, 10, 12}) {
    const auto a = workload(which);
    const auto r1 = run_dist_order(1, a, with(OrderingAlgorithm::kAuto));
    const auto r4 = run_dist_order(4, a, with(OrderingAlgorithm::kAuto));
    const auto r9 = run_dist_order(9, a, with(OrderingAlgorithm::kAuto));
    EXPECT_NE(r1.stats.algorithm, OrderingAlgorithm::kAuto);
    EXPECT_EQ(r1.stats.algorithm, r4.stats.algorithm) << "workload " << which;
    EXPECT_EQ(r4.stats.algorithm, r9.stats.algorithm) << "workload " << which;
    EXPECT_EQ(r1.labels, r4.labels) << "workload " << which;
    EXPECT_EQ(r4.labels, r9.labels) << "workload " << which;
  }
}

TEST(Selector, ResolutionMatchesSelectOrdering) {
  for (int which = 0; which < kNumWorkloads; ++which) {
    const auto a = workload(which);
    const auto choice = select_ordering(a);
    EXPECT_NE(choice.algorithm, OrderingAlgorithm::kAuto);
    const auto run = run_dist_order(4, a, with(OrderingAlgorithm::kAuto));
    EXPECT_EQ(run.stats.algorithm, choice.algorithm) << "workload " << which;
    // The resolved run is bit-identical to requesting the choice directly.
    const auto direct = run_dist_order(4, a, with(choice.algorithm));
    EXPECT_EQ(run.labels, direct.labels) << "workload " << which;
  }
}

TEST(Selector, ProxiesDescribeTheMatrix) {
  const auto a = gen::grid2d(10, 10);
  const auto p = ordering_proxies(a);
  EXPECT_EQ(p.n, a.n());
  EXPECT_EQ(p.nnz, a.nnz());
  EXPECT_EQ(p.bandwidth, sparse::bandwidth(a));
  EXPECT_EQ(p.components, 1);
  EXPECT_GT(p.avg_degree, 0.0);
  EXPECT_GT(p.rms_wavefront, 0.0);
}

// ---- Degenerate sweep: every algorithm, every grid -------------------

class DegenerateAlgorithms
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    AlgosAndGrids, DegenerateAlgorithms,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Values(1, 4)));

TEST_P(DegenerateAlgorithms, EmptySingletonStarAllOrder) {
  const auto [which_algo, p] = GetParam();
  const auto algo = static_cast<OrderingAlgorithm>(which_algo);
  const CsrMatrix degenerates[] = {gen::empty_graph(0), gen::empty_graph(1),
                                   gen::star(6), gen::empty_graph(5)};
  for (const auto& a : degenerates) {
    const auto run = run_dist_order(p, a, with(algo));
    EXPECT_TRUE(sparse::is_valid_permutation(run.labels))
        << "algo " << ordering_algorithm_name(algo) << " n=" << a.n();
    EXPECT_EQ(run.labels.size(), static_cast<std::size_t>(a.n()));
    EXPECT_NE(run.stats.algorithm, OrderingAlgorithm::kAuto);
  }
}

// ---- Wrapper contracts -----------------------------------------------

TEST(DistOrder, DistRcmIsPinnedToRcm) {
  // dist_rcm's name is its contract: even a spec asking for Sloan runs RCM.
  const auto a = gen::grid2d(8, 8);
  const auto rcm_labels = order::rcm_serial(a);
  const auto run = run_dist_rcm(4, a, with(OrderingAlgorithm::kSloan));
  EXPECT_EQ(run.labels, rcm_labels);
}

TEST(DistOrder, RecipeCaptureDeclinedOffRcmArm) {
  const auto a = gen::grid2d(6, 6);
  mps::Runtime::run(1, [&](mps::Comm& world) {
    OrderingRecipe recipe;
    EXPECT_THROW(dist_order(world, a, with(OrderingAlgorithm::kSloan), nullptr,
                            &recipe),
                 CheckError);
  });
}

TEST(DistOrder, RecoverableRunnerCoversThePortfolio) {
  // The recoverable pipeline's stage 1 goes through dist_order, so a Sloan
  // request survives the 3-stage checkpointed run end to end.
  const auto solver_matrix = gen::with_laplacian_values(gen::grid2d(7, 7));
  const std::vector<double> b(static_cast<std::size_t>(solver_matrix.n()),
                              1.0);
  OrderedSolveSpec spec;
  spec.matrix = &solver_matrix;
  spec.b = b;
  spec.rcm = with(OrderingAlgorithm::kSloan);
  const auto run = run_ordered_solve_recoverable(4, spec);
  EXPECT_EQ(run.result.labels,
            order::sloan_levels(solver_matrix.strip_diagonal()));
  EXPECT_EQ(run.result.cg.status, solver::SolveStatus::kConverged);
}

}  // namespace
}  // namespace drcm::rcm
