// Large randomized property sweep: the distributed RCM must agree
// bit-for-bit with the serial reference on arbitrary graphs — random
// structure, random density, random components, random grids.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "order/rcm_serial.hpp"
#include "order/rcm_shared.hpp"
#include "rcm/rcm_driver.hpp"
#include "rcm/trace_model.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

namespace drcm::rcm {
namespace {

namespace gen = sparse::gen;

/// A random graph drawn from a seeded family mix: meshes, random graphs,
/// power-law graphs, forests, with random relabeling and random extra
/// components.
sparse::CsrMatrix random_workload(u64 seed) {
  Rng rng(seed);
  const int family = static_cast<int>(rng.next_below(6));
  sparse::CsrMatrix base;
  switch (family) {
    case 0:
      base = gen::grid2d(5 + static_cast<index_t>(rng.next_below(10)),
                         5 + static_cast<index_t>(rng.next_below(10)));
      break;
    case 1:
      base = gen::grid3d(2 + static_cast<index_t>(rng.next_below(4)),
                         2 + static_cast<index_t>(rng.next_below(4)),
                         2 + static_cast<index_t>(rng.next_below(6)),
                         rng.next_below(2) ? gen::Stencil3d::k27
                                           : gen::Stencil3d::k7);
      break;
    case 2:
      base = gen::erdos_renyi(40 + static_cast<index_t>(rng.next_below(120)),
                              1.5 + 5.0 * rng.next_double(), rng.next_u64());
      break;
    case 3:
      base = gen::rmat(5 + static_cast<int>(rng.next_below(3)),
                       2 + static_cast<index_t>(rng.next_below(5)),
                       rng.next_u64());
      break;
    case 4:
      base = gen::caterpillar(3 + static_cast<index_t>(rng.next_below(10)),
                              static_cast<index_t>(rng.next_below(4)));
      break;
    default:
      base = gen::random_banded(60 + static_cast<index_t>(rng.next_below(100)),
                                2 + static_cast<index_t>(rng.next_below(8)),
                                0.2 + 0.6 * rng.next_double(), rng.next_u64());
      break;
  }
  if (rng.next_below(2)) base = gen::relabel_random(base, rng.next_u64());
  if (rng.next_below(3) == 0) {
    base = gen::disjoint_union(
        {base, gen::path(1 + static_cast<index_t>(rng.next_below(6))),
         gen::empty_graph(static_cast<index_t>(rng.next_below(3)))});
  }
  return base;
}

class RandomizedSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSweep, ::testing::Range(0, 24));

TEST_P(RandomizedSweep, DistEqualsSerialOnRandomGrid) {
  const auto seed = static_cast<u64>(GetParam());
  const auto a = random_workload(seed);
  Rng rng(seed ^ 0xabcdef);
  const int grids[] = {1, 4, 9, 16};
  const int p = grids[rng.next_below(4)];
  const auto want = order::rcm_serial(a);
  const auto run = run_dist_rcm(p, a);
  ASSERT_EQ(run.labels, want) << "seed " << seed << " p=" << p
                              << " n=" << a.n() << " nnz=" << a.nnz();
}

TEST_P(RandomizedSweep, SharedMemoryEqualsSerial) {
  const auto seed = static_cast<u64>(GetParam()) + 1000;
  const auto a = random_workload(seed);
  EXPECT_EQ(order::rcm_shared(a, 2), order::rcm_serial(a)) << "seed " << seed;
}

TEST_P(RandomizedSweep, ClassicFormulationAgrees) {
  const auto seed = static_cast<u64>(GetParam()) + 2000;
  const auto a = random_workload(seed);
  EXPECT_EQ(order::cm_classic(a), order::cm_serial(a)) << "seed " << seed;
}

TEST_P(RandomizedSweep, TraceStatsConsistent) {
  // The trace collector walks the same control flow as the orderings:
  // component and sweep counts must agree, and the ordering levels must
  // partition the vertex set.
  const auto seed = static_cast<u64>(GetParam()) + 3000;
  const auto a = random_workload(seed);
  order::OrderingStats stats;
  order::rcm_serial(a, &stats);
  const auto tr = ExecutionTrace::collect(a);
  EXPECT_EQ(tr.components, stats.components) << "seed " << seed;
  EXPECT_EQ(tr.peripheral_sweeps, stats.peripheral_bfs_sweeps)
      << "seed " << seed;
  index_t total = 0;
  for (const auto& l : tr.ordering_levels) total += l.frontier;
  EXPECT_EQ(total, a.n()) << "seed " << seed;
}

TEST_P(RandomizedSweep, LoadBalancedRunStaysValidAndGood) {
  const auto seed = static_cast<u64>(GetParam()) + 4000;
  const auto a = random_workload(seed);
  if (a.n() == 0) GTEST_SKIP();
  DistRcmOptions opt;
  opt.load_balance = true;
  opt.seed = seed;
  const auto run = run_dist_rcm(4, a, opt);
  ASSERT_TRUE(sparse::is_valid_permutation(run.labels)) << "seed " << seed;
}

}  // namespace
}  // namespace drcm::rcm
