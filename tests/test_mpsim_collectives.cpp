// Integration tests for every Comm collective, run on real thread-backed
// rank sets of several sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "mpsim/comm.hpp"
#include "mpsim/runtime.hpp"

namespace drcm::mps {
namespace {

class CollectivesTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 7, 9, 16));

TEST_P(CollectivesTest, BarrierCompletes) {
  Runtime::run(GetParam(), [](Comm& comm) {
    for (int i = 0; i < 10; ++i) comm.barrier();
  });
  SUCCEED();
}

TEST_P(CollectivesTest, BcastReplicatesRootVector) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    const int root = comm.size() - 1;
    std::vector<std::int64_t> data;
    if (comm.rank() == root) data = {10, 20, 30, 40};
    comm.bcast(data, root);
    ASSERT_EQ(data.size(), 4u);
    EXPECT_EQ(data[0], 10);
    EXPECT_EQ(data[3], 40);
  });
}

TEST_P(CollectivesTest, AllreduceSumAndMin) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    const std::int64_t r = comm.rank();
    const auto sum = comm.allreduce(r, [](std::int64_t a, std::int64_t b) {
      return a + b;
    });
    EXPECT_EQ(sum, static_cast<std::int64_t>(p) * (p - 1) / 2);
    const auto mn = comm.allreduce(r + 5, [](std::int64_t a, std::int64_t b) {
      return std::min(a, b);
    });
    EXPECT_EQ(mn, 5);
  });
}

TEST_P(CollectivesTest, AllreduceArgminPairIsDeterministic) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    // Every rank proposes the same degree; the tie must break to the
    // smallest vertex id on every rank identically.
    struct Cand {
      std::int64_t degree;
      std::int64_t vertex;
    };
    const Cand mine{42, 100 + comm.rank()};
    const Cand best = comm.allreduce(mine, [](const Cand& a, const Cand& b) {
      if (a.degree != b.degree) return a.degree < b.degree ? a : b;
      return a.vertex <= b.vertex ? a : b;
    });
    EXPECT_EQ(best.degree, 42);
    EXPECT_EQ(best.vertex, 100);
  });
}

TEST_P(CollectivesTest, AllgatherCollectsOnePerRank) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    const auto all = comm.allgather(static_cast<std::int64_t>(comm.rank() * comm.rank()));
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], static_cast<std::int64_t>(r) * r);
    }
  });
}

TEST_P(CollectivesTest, AllgathervConcatenatesInRankOrder) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    // Rank r contributes r copies of value r (rank 0 contributes nothing).
    std::vector<std::int64_t> local(static_cast<std::size_t>(comm.rank()),
                                    comm.rank());
    const auto all = comm.allgatherv(std::span<const std::int64_t>(local));
    std::vector<std::int64_t> expect;
    for (std::int64_t r = 0; r < p; ++r) {
      expect.insert(expect.end(), static_cast<std::size_t>(r), r);
    }
    EXPECT_EQ(all, expect);
  });
}

TEST_P(CollectivesTest, AlltoallvRoutesEveryPair) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    // Rank s sends {s*1000 + d} to destination d, plus d extra sentinels.
    std::vector<std::vector<std::int64_t>> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      auto& buf = send[static_cast<std::size_t>(d)];
      buf.push_back(comm.rank() * 1000 + d);
      buf.insert(buf.end(), static_cast<std::size_t>(d), -1);
    }
    std::vector<std::int64_t> counts;
    const auto recv = comm.alltoallv(send, &counts);
    ASSERT_EQ(static_cast<int>(counts.size()), p);
    std::size_t pos = 0;
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(counts[static_cast<std::size_t>(s)], 1 + comm.rank());
      EXPECT_EQ(recv[pos], s * 1000 + comm.rank());
      pos += static_cast<std::size_t>(counts[static_cast<std::size_t>(s)]);
    }
    EXPECT_EQ(pos, recv.size());
  });
}

TEST_P(CollectivesTest, ExscanSumIsExclusivePrefix) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    const auto prefix = comm.exscan_sum(static_cast<std::int64_t>(comm.rank() + 1));
    // Exclusive prefix of 1,2,3,... is r*(r+1)/2.
    const std::int64_t r = comm.rank();
    EXPECT_EQ(prefix, r * (r + 1) / 2);
  });
}

TEST_P(CollectivesTest, PairwiseExchangeWithReversalPartner) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    const int partner = comm.size() - 1 - comm.rank();
    std::vector<std::int64_t> send(3, comm.rank());
    const auto recv =
        comm.pairwise_exchange(partner, std::span<const std::int64_t>(send));
    ASSERT_EQ(recv.size(), 3u);
    EXPECT_EQ(recv[0], partner);
  });
}

TEST_P(CollectivesTest, SplitFormsRowGroups) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    // Split into pairs: color = rank/2.
    const int color = comm.rank() / 2;
    Comm sub = comm.split(color, comm.rank());
    const int expected_size =
        (color == p / 2) ? (p % 2 == 0 ? 2 : 1) : 2;
    EXPECT_EQ(sub.size(), expected_size);
    EXPECT_EQ(sub.rank(), comm.rank() % 2);
    // The sub-communicator must be fully functional.
    const auto sum = sub.allreduce(static_cast<std::int64_t>(1),
                                   [](std::int64_t a, std::int64_t b) { return a + b; });
    EXPECT_EQ(sum, expected_size);
  });
}

TEST_P(CollectivesTest, SplitRanksByKeyDescending) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    // All ranks in one group, keys reversed: new rank = p-1-old.
    Comm sub = comm.split(0, comm.size() - comm.rank());
    EXPECT_EQ(sub.size(), p);
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST_P(CollectivesTest, ConcurrentSubcommunicatorsDoNotInterfere) {
  const int p = GetParam();
  if (p < 4) GTEST_SKIP() << "needs at least 2 groups of 2";
  Runtime::run(p, [&](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    // Both groups run a long sequence of collectives concurrently.
    for (int i = 0; i < 25; ++i) {
      const auto all = sub.allgather(static_cast<std::int64_t>(comm.rank()));
      for (const auto v : all) {
        EXPECT_EQ(v % 2, comm.rank() % 2);
      }
    }
  });
}

TEST_P(CollectivesTest, ChargesCommCostsToCurrentPhase) {
  const int p = GetParam();
  auto report = Runtime::run(p, [&](Comm& comm) {
    {
      PhaseScope scope(comm, Phase::kOrderingSort);
      std::vector<std::vector<std::int64_t>> send(
          static_cast<std::size_t>(comm.size()));
      for (auto& buf : send) buf.assign(10, 1);
      comm.alltoallv(send);
    }
    comm.charge_compute(1000.0);  // lands in kOther
  });
  const auto sort = report.aggregate(Phase::kOrderingSort);
  const auto other = report.aggregate(Phase::kOther);
  if (p > 1) {
    EXPECT_GT(sort.max.model_comm_seconds, 0.0);
    EXPECT_GT(sort.max.messages, 0u);
  }
  EXPECT_DOUBLE_EQ(other.max.compute_units, 1000.0);
  EXPECT_GT(other.max.model_compute_seconds, 0.0);
  EXPECT_DOUBLE_EQ(sort.max.compute_units, 0.0);
}

TEST_P(CollectivesTest, EmptyContributionsAreLegal) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    std::vector<std::int64_t> empty;
    const auto gathered = comm.allgatherv(std::span<const std::int64_t>(empty));
    EXPECT_TRUE(gathered.empty());
    std::vector<std::vector<std::int64_t>> send(static_cast<std::size_t>(p));
    const auto recv = comm.alltoallv(send);
    EXPECT_TRUE(recv.empty());
  });
}

}  // namespace
}  // namespace drcm::mps
