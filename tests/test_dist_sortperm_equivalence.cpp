// The ablation contract behind bench/micro_sort: the paper's bucket
// SORTPERM and the sample-sort baseline are interchangeable — identical
// ranks on any frontier, including deterministic resolution of degree
// ties, so every measured difference between them is performance, never
// output.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dist/sortperm.hpp"
#include "mpsim/runtime.hpp"

namespace drcm::dist {
namespace {

using mps::Comm;
using mps::Runtime;

struct Frontier {
  index_t n = 0;
  index_t label_lo = 0;
  index_t label_hi = 0;
  std::vector<index_t> degrees;
  std::vector<VecEntry> entries;
};

/// Random frontier with parent labels in [label_lo, label_hi) and degrees
/// drawn from a small range so ties are everywhere.
Frontier random_frontier(index_t n, index_t label_lo, index_t label_hi,
                         index_t degree_range, int fill_percent, u64 seed) {
  Frontier f;
  f.n = n;
  f.label_lo = label_lo;
  f.label_hi = label_hi;
  f.degrees.resize(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (index_t v = 0; v < n; ++v) {
    f.degrees[static_cast<std::size_t>(v)] =
        static_cast<index_t>(rng.next_below(static_cast<u64>(degree_range)));
    if (rng.next_below(100) < static_cast<u64>(fill_percent)) {
      const auto parent = label_lo + static_cast<index_t>(rng.next_below(
                              static_cast<u64>(label_hi - label_lo)));
      f.entries.push_back(VecEntry{v, parent});
    }
  }
  return f;
}

/// Runs one SORTPERM variant and returns the replicated ranked entries.
std::vector<VecEntry> run_variant(int p, const Frontier& f, bool bucket) {
  std::vector<VecEntry> out;
  Runtime::run(p, [&](Comm& world) {
    ProcGrid2D grid(world);
    VectorDist dist(f.n, grid.q());
    DistDenseVec d(dist, grid, 0);
    for (index_t g = d.lo(); g < d.hi(); ++g) {
      d.set(g, f.degrees[static_cast<std::size_t>(g)]);
    }
    DistSpVec x(dist, grid);
    std::vector<VecEntry> mine;
    for (const auto& e : f.entries) {
      if (e.idx >= x.lo() && e.idx < x.hi()) mine.push_back(e);
    }
    x.assign(mine);
    const auto r = bucket
                       ? sortperm_bucket(x, d, f.label_lo, f.label_hi, grid)
                       : sortperm_sample(x, d, grid);
    const auto gathered = r.to_global(world);
    if (world.rank() == 0) out = gathered;
  });
  return out;
}

class EquivalenceGrids : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Grids, EquivalenceGrids, ::testing::Values(1, 4, 9, 16));

TEST_P(EquivalenceGrids, IdenticalRanksOnRandomFrontiers) {
  const int p = GetParam();
  for (u64 seed : {11u, 12u, 13u}) {
    const auto f = random_frontier(120, 500, 560, 4, 70, seed);
    const auto bucket = run_variant(p, f, true);
    const auto sample = run_variant(p, f, false);
    ASSERT_EQ(bucket.size(), sample.size()) << "seed " << seed;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      EXPECT_EQ(bucket[i], sample[i]) << "seed " << seed << " i=" << i;
    }
  }
}

TEST_P(EquivalenceGrids, DegreeTiesBreakIdentically) {
  // Every vertex has the same degree: the entire order inside a parent
  // bucket is decided by the index tie-break both variants must share.
  const int p = GetParam();
  const auto f = random_frontier(90, 0, 3, 1, 80, 21);
  const auto bucket = run_variant(p, f, true);
  const auto sample = run_variant(p, f, false);
  ASSERT_EQ(bucket.size(), sample.size());
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    EXPECT_EQ(bucket[i], sample[i]) << i;
  }
}

TEST_P(EquivalenceGrids, WideSparseLabelRange) {
  // Far more buckets than elements: most buckets empty, bucket routing
  // still must agree with the comparison baseline.
  const int p = GetParam();
  const auto f = random_frontier(60, 10, 900, 5, 30, 33);
  const auto bucket = run_variant(p, f, true);
  const auto sample = run_variant(p, f, false);
  ASSERT_EQ(bucket.size(), sample.size());
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    EXPECT_EQ(bucket[i], sample[i]) << i;
  }
}

TEST_P(EquivalenceGrids, RanksAreAPermutationOfPositions) {
  const int p = GetParam();
  const auto f = random_frontier(100, 7, 40, 3, 60, 44);
  const auto bucket = run_variant(p, f, true);
  ASSERT_EQ(bucket.size(), f.entries.size());
  std::vector<bool> seen(bucket.size(), false);
  for (const auto& e : bucket) {
    ASSERT_GE(e.val, 0);
    ASSERT_LT(e.val, static_cast<index_t>(bucket.size()));
    EXPECT_FALSE(seen[static_cast<std::size_t>(e.val)]) << "duplicate rank";
    seen[static_cast<std::size_t>(e.val)] = true;
  }
}

TEST(SortpermStripes, GiantBucketSplitsAcrossWorkers) {
  // The ROADMAP worker-stripe bug: bucket-granular dealing put a star
  // graph's whole leaf level — ONE parent bucket — on a single sort
  // worker. Elements are now dealt at (bucket, degree, owner-block) cell
  // granularity by exact start position, so the giant bucket spreads over
  // a contiguous worker range: no stripe may exceed ~2x the mean.
  for (const int p : {4, 9}) {
    const index_t n = 1 + 48 * static_cast<index_t>(p);
    Runtime::run(p, [&](Comm& world) {
      ProcGrid2D grid(world);
      VectorDist dist(n, grid.q());
      // A star-graph level: the center (vertex 0) was labeled 0; every
      // leaf joins the next level with parent label 0 and degree 1 — one
      // giant bucket full of degree ties.
      DistDenseVec degrees(dist, grid, 1);
      if (degrees.owns(0)) degrees.set(0, n - 1);
      DistSpVec x(dist, grid);
      std::vector<VecEntry> mine;
      for (index_t v = std::max<index_t>(1, x.lo()); v < x.hi(); ++v) {
        mine.push_back(VecEntry{v, 0});
      }
      x.assign(mine);
      index_t stripe = 0;
      const auto r = sortperm_bucket(x, degrees, 0, 1, grid, nullptr, &stripe);
      const auto stripes = world.allgather(stripe);
      index_t total = 0, largest = 0;
      for (const auto s : stripes) {
        total += s;
        largest = std::max(largest, s);
      }
      EXPECT_EQ(total, n - 1);
      const double mean = static_cast<double>(total) / p;
      EXPECT_LE(static_cast<double>(largest), 2.0 * mean + 1.0)
          << "p=" << p << ": one worker still holds the giant bucket";
      // Exactness ride-along: within the single (bucket, degree) run the
      // order is by index, so leaf v must receive rank v - 1.
      for (const auto& e : r.entries()) {
        EXPECT_EQ(e.val, e.idx - 1) << "p=" << p;
      }
    });
  }
}

TEST(SortpermStripes, SingleCellLevelStillSpreadsAcrossWorkers) {
  // Worse than a giant bucket: a level whose elements all sit in ONE
  // rank's owned range with one parent label and uniform degree is a
  // single indivisible histogram cell. Position-proportional dealing
  // (cell start + within-cell ordinal, owner-computable) still spreads it
  // in balanced stripes.
  for (const int p : {4, 9}) {
    const index_t n = 40 * static_cast<index_t>(p);
    const index_t m = 35;  // within block 0's owned range (40 elements)
    Runtime::run(p, [&](Comm& world) {
      ProcGrid2D grid(world);
      VectorDist dist(n, grid.q());
      DistDenseVec degrees(dist, grid, 3);
      DistSpVec x(dist, grid);
      std::vector<VecEntry> mine;
      for (index_t v = x.lo(); v < std::min(m, x.hi()); ++v) {
        mine.push_back(VecEntry{v, 5});
      }
      x.assign(mine);
      index_t stripe = 0;
      const auto r =
          sortperm_bucket(x, degrees, 5, 6, grid, nullptr, &stripe);
      const auto stripes = world.allgather(stripe);
      index_t total = 0, largest = 0;
      for (const auto s : stripes) {
        total += s;
        largest = std::max(largest, s);
      }
      EXPECT_EQ(total, m);
      EXPECT_LE(largest, total / p + 1)
          << "p=" << p << ": stripes must be the balanced partition";
      for (const auto& e : r.entries()) {
        EXPECT_EQ(e.val, e.idx) << "p=" << p;  // index order within the cell
      }
    });
  }
}

TEST(SortpermStripes, SingleRankReportsItsWholeFrontier) {
  Runtime::run(1, [&](Comm& world) {
    ProcGrid2D grid(world);
    VectorDist dist(30, grid.q());
    DistDenseVec degrees(dist, grid, 2);
    DistSpVec x(dist, grid);
    std::vector<VecEntry> mine;
    for (index_t v = 0; v < 30; v += 2) mine.push_back(VecEntry{v, 0});
    x.assign(mine);
    index_t stripe = -1;
    sortperm_bucket(x, degrees, 0, 1, grid, nullptr, &stripe);
    EXPECT_EQ(stripe, 15);
  });
}

TEST(SortpermEquivalence, DeterministicAcrossRuns) {
  const auto f = random_frontier(80, 100, 130, 4, 65, 55);
  const auto first = run_variant(4, f, true);
  const auto second = run_variant(4, f, true);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << i;
  }
}

}  // namespace
}  // namespace drcm::dist
