// Tests for the George-Liu pseudo-peripheral vertex finder.
#include <gtest/gtest.h>

#include "order/pseudo_peripheral.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph_algo.hpp"

namespace drcm::order {
namespace {

namespace gen = sparse::gen;

TEST(Peripheral, PathFindsAnEndpoint) {
  const auto a = gen::path(30);
  const auto r = pseudo_peripheral_vertex(a, 15);
  EXPECT_TRUE(r.vertex == 0 || r.vertex == 29);
  EXPECT_EQ(r.eccentricity, 29);
  EXPECT_GE(r.bfs_sweeps, 2);
}

TEST(Peripheral, AlreadyPeripheralStartStillVerifies) {
  const auto a = gen::path(10);
  const auto r = pseudo_peripheral_vertex(a, 0);
  EXPECT_EQ(r.eccentricity, 9);
  // One sweep to see ecc, one from the far end (candidate) to confirm.
  EXPECT_GE(r.bfs_sweeps, 2);
}

TEST(Peripheral, IsolatedVertex) {
  const auto a = gen::empty_graph(3);
  const auto r = pseudo_peripheral_vertex(a, 1);
  EXPECT_EQ(r.vertex, 1);
  EXPECT_EQ(r.eccentricity, 0);
}

TEST(Peripheral, CompleteGraphAnyVertex) {
  const auto a = gen::complete(8);
  const auto r = pseudo_peripheral_vertex(a, 3);
  EXPECT_EQ(r.eccentricity, 1);
}

TEST(Peripheral, OutOfRangeStartThrows) {
  const auto a = gen::path(4);
  EXPECT_THROW(pseudo_peripheral_vertex(a, 4), CheckError);
  EXPECT_THROW(pseudo_peripheral_vertex(a, -1), CheckError);
}

TEST(Peripheral, StaysWithinStartComponent) {
  const auto a = gen::disjoint_union({gen::path(5), gen::path(50)});
  const auto r = pseudo_peripheral_vertex(a, 2);  // start in the small path
  EXPECT_LT(r.vertex, 5);
  EXPECT_EQ(r.eccentricity, 4);
}

TEST(Peripheral, EccentricityIsAchievedByTheVertex) {
  // Result invariant: reported eccentricity equals the true BFS depth.
  for (u64 seed : {1u, 2u, 3u, 4u}) {
    const auto a = gen::erdos_renyi(120, 4.0, seed);
    const auto r = pseudo_peripheral_vertex(a, 0);
    EXPECT_EQ(r.eccentricity, sparse::eccentricity(a, r.vertex)) << seed;
  }
}

TEST(Peripheral, NeverWorseThanStartEccentricity) {
  for (u64 seed : {10u, 20u, 30u}) {
    const auto a = gen::erdos_renyi(150, 5.0, seed);
    const auto r = pseudo_peripheral_vertex(a, 7);
    EXPECT_GE(r.eccentricity, sparse::eccentricity(a, 7)) << seed;
  }
}

TEST(Peripheral, GridReachesNearDiameter) {
  const auto a = gen::grid2d(12, 9);
  const auto r = pseudo_peripheral_vertex(a, 5 * 9 + 4);  // center-ish
  // True diameter is (12-1)+(9-1) = 19; George-Liu gets >= 19 on grids
  // because corner vertices have degree 2 (min in their level).
  EXPECT_GE(r.eccentricity, 19);
}

}  // namespace
}  // namespace drcm::order
