// Unit + property tests for bandwidth / profile metrics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

namespace drcm::sparse {
namespace {

TEST(Metrics, PathHasBandwidthOne) {
  const auto a = gen::path(10);
  EXPECT_EQ(bandwidth(a), 1);
  EXPECT_EQ(profile(a), 9);  // every row after the first contributes 1
}

TEST(Metrics, CycleClosesTheBand) {
  const auto a = gen::cycle(10);
  EXPECT_EQ(bandwidth(a), 9);  // edge {0, 9}
}

TEST(Metrics, EmptyGraphHasZeroEverything) {
  const auto a = gen::empty_graph(5);
  EXPECT_EQ(bandwidth(a), 0);
  EXPECT_EQ(profile(a), 0);
  EXPECT_EQ(row_bandwidths(a), (std::vector<index_t>(5, 0)));
}

TEST(Metrics, CompleteGraphBandwidth) {
  const auto a = gen::complete(6);
  EXPECT_EQ(bandwidth(a), 5);
  // Row i contributes i (first nonzero is column 0 for i>0).
  EXPECT_EQ(profile(a), 0 + 1 + 2 + 3 + 4 + 5);
}

TEST(Metrics, RowBandwidthsMatchDefinition) {
  const auto a = gen::grid2d(3, 3);  // vertex (x,y) = x*3+y
  const auto beta = row_bandwidths(a);
  // Vertex 4 (center) neighbors {1, 3, 5, 7}: beta_4 = 4 - 1 = 3.
  EXPECT_EQ(beta[4], 3);
  // Vertex 0 has no smaller neighbor.
  EXPECT_EQ(beta[0], 0);
}

TEST(Metrics, WithLabelsMatchesMaterializedPermutation) {
  const auto a = gen::grid2d_9pt(7, 5);
  for (u64 seed : {1u, 2u, 3u}) {
    const auto labels = random_permutation(a.n(), seed);
    const auto b = permute_symmetric(a, labels);
    EXPECT_EQ(bandwidth_with_labels(a, labels), bandwidth(b)) << "seed " << seed;
    EXPECT_EQ(profile_with_labels(a, labels), profile(b)) << "seed " << seed;
  }
}

TEST(Metrics, IdentityLabelsMatchPlainMetrics) {
  const auto a = gen::grid3d(4, 5, 3);
  const auto id = identity_permutation(a.n());
  EXPECT_EQ(bandwidth_with_labels(a, id), bandwidth(a));
  EXPECT_EQ(profile_with_labels(a, id), profile(a));
}

TEST(Metrics, BandwidthBoundsProfile) {
  // profile <= n * bandwidth for any symmetric pattern.
  const auto a = gen::erdos_renyi(200, 6.0, 99);
  EXPECT_LE(profile(a), a.n() * bandwidth(a));
}

TEST(Metrics, RandomRelabelUsuallyInflatesBandwidth) {
  const auto a = gen::grid2d(30, 30);  // bandwidth 30 in natural order
  const auto shuffled = gen::relabel_random(a, 7);
  EXPECT_GT(bandwidth(shuffled), bandwidth(a));
}

TEST(Metrics, LabelsSizeMismatchThrows) {
  const auto a = gen::path(4);
  std::vector<index_t> labels{0, 1, 2};
  EXPECT_THROW(bandwidth_with_labels(a, labels), CheckError);
  EXPECT_THROW(profile_with_labels(a, labels), CheckError);
}

// Property sweep: metrics invariant under reversal permutation.
class MetricsReversalProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsReversalProperty,
                         ::testing::Range(0, 8));

TEST_P(MetricsReversalProperty, BandwidthInvariantUnderReversal) {
  const auto seed = static_cast<u64>(GetParam());
  const auto a = gen::erdos_renyi(120, 5.0, seed);
  std::vector<index_t> rev(static_cast<std::size_t>(a.n()));
  for (index_t i = 0; i < a.n(); ++i) {
    rev[static_cast<std::size_t>(i)] = a.n() - 1 - i;
  }
  // Reversing the ordering mirrors the matrix about the anti-diagonal:
  // |label(u) - label(v)| is unchanged for every edge, so bandwidth is
  // invariant. (Profile is NOT: that asymmetry is exactly why Reverse CM
  // can beat CM, per George's theorem.)
  EXPECT_EQ(bandwidth_with_labels(a, rev), bandwidth(a));
}

TEST(Metrics, ProfileNotInvariantUnderReversalOnStar) {
  // Star with center 0: natural profile is n(n-1)/2; with the center
  // relabeled last it collapses to n-1. Documents the asymmetry above.
  const index_t n = 10;
  const auto a = gen::star(n);
  std::vector<index_t> rev(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) rev[static_cast<std::size_t>(i)] = n - 1 - i;
  EXPECT_EQ(profile(a), n * (n - 1) / 2);
  EXPECT_EQ(profile_with_labels(a, rev), n - 1);
}

}  // namespace
}  // namespace drcm::sparse
