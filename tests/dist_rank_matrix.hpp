// The simulated rank x thread sweep shared by the rank-parameterized
// distributed equivalence suites. DRCM_TEST_RANKS (a single positive rank
// count) pins the rank axis to one configuration and DRCM_TEST_THREADS (a
// single positive hybrid thread count) the thread axis — the knobs the CI
// matrix sets to {1,4,9} x {1,2,6}; unset, each axis runs its full sweep,
// so a plain local run covers the whole rank x thread matrix. One copy of
// the contract so every suite honors the environment identically.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace drcm::dist::testing {

inline std::vector<int> rank_counts() {
  if (const char* env = std::getenv("DRCM_TEST_RANKS")) {
    const int p = std::atoi(env);
    EXPECT_GT(p, 0) << "DRCM_TEST_RANKS must be a positive rank count";
    return {p > 0 ? p : 1};
  }
  return {1, 4, 9};
}

/// The extended rank wall of the redistribution equivalence suite: the CI
/// counts plus p = 16, the first size where the 1D row-block cut (p ways)
/// is strictly finer than every 2D chunk cut (q = 4 ways) on all axes.
/// DRCM_TEST_RANKS pins it to one cell exactly like rank_counts().
inline std::vector<int> rank_counts_wall() {
  if (const char* env = std::getenv("DRCM_TEST_RANKS")) {
    const int p = std::atoi(env);
    EXPECT_GT(p, 0) << "DRCM_TEST_RANKS must be a positive rank count";
    return {p > 0 ? p : 1};
  }
  return {1, 4, 9, 16};
}

/// The hybrid threads-per-rank axis: 1 = flat MPI (the serial local
/// multiply), 2 = the smallest real OpenMP split, 6 = the paper's hybrid
/// configuration. Every point must produce output bit-identical to flat.
inline std::vector<int> thread_counts() {
  if (const char* env = std::getenv("DRCM_TEST_THREADS")) {
    const int t = std::atoi(env);
    EXPECT_GT(t, 0) << "DRCM_TEST_THREADS must be a positive thread count";
    return {t > 0 ? t : 1};
  }
  return {1, 2, 6};
}

}  // namespace drcm::dist::testing
