// The simulated-rank sweep shared by the rank-parameterized distributed
// equivalence suites: DRCM_TEST_RANKS (a single positive rank count, the
// knob the CI matrix sets to 1/4/9) pins the sweep to one configuration;
// unset, the full {1, 4, 9} grid sweep runs. One copy of the contract so
// every suite honors the environment variable identically.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace drcm::dist::testing {

inline std::vector<int> rank_counts() {
  if (const char* env = std::getenv("DRCM_TEST_RANKS")) {
    const int p = std::atoi(env);
    EXPECT_GT(p, 0) << "DRCM_TEST_RANKS must be a positive rank count";
    return {p > 0 ? p : 1};
  }
  return {1, 4, 9};
}

}  // namespace drcm::dist::testing
