// Unit tests for the alpha-beta-gamma cost model formulas, plus the
// barrier-crossing ledger that pins the fused kernels' synchrony budgets:
// 3 crossings per BFS level (vs the unfused chain's 8) and 5 per whole
// ordering level (vs 3 + SORTPERM's 6 = 9) — and the trace model's
// analytic crossing prediction against a real p=4 run's ledger.
#include "mpsim/cost_model.hpp"

#include <gtest/gtest.h>

#include "dist/level_kernel.hpp"
#include "dist/sortperm.hpp"
#include "mpsim/runtime.hpp"
#include "rcm/rcm_driver.hpp"
#include "rcm/trace_model.hpp"
#include "service/service.hpp"
#include "sparse/generators.hpp"
#include "sparse/pattern_delta.hpp"

namespace drcm::mps {
namespace {

MachineParams simple_params() {
  MachineParams p;
  p.alpha = 1.0;   // 1 second per message: costs readable in the tests
  p.beta = 0.01;   // per word
  p.gamma = 0.001; // per work unit
  return p;
}

TEST(CostModel, SingleRankCollectivesAreFree) {
  CostModel m(simple_params());
  EXPECT_DOUBLE_EQ(m.barrier(1).seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.bcast(1, 100).seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.allreduce(1, 1).seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.allgatherv(1, 100).seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.alltoallv(1, 100, 100).seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.exscan(1, 1).seconds, 0.0);
}

TEST(CostModel, BarrierIsLogDepth) {
  CostModel m(simple_params());
  EXPECT_EQ(m.barrier(2).messages, 1u);
  EXPECT_EQ(m.barrier(4).messages, 2u);
  EXPECT_EQ(m.barrier(5).messages, 3u);
  EXPECT_EQ(m.barrier(1024).messages, 10u);
}

TEST(CostModel, AllgathervIsLinearInRanks) {
  // The paper's T_SpMSpV has an alpha*sqrt(p) per-iteration latency term:
  // allgatherv on a q-rank (sub)communicator must cost (q-1) messages.
  CostModel m(simple_params());
  EXPECT_EQ(m.allgatherv(8, 0).messages, 7u);
  EXPECT_EQ(m.allgatherv(32, 0).messages, 31u);
  EXPECT_NEAR(m.allgatherv(8, 1000).seconds, 7.0 + 0.01 * 1000, 1e-12);
}

TEST(CostModel, AlltoallvChargesMaxDirection) {
  CostModel m(simple_params());
  const auto c1 = m.alltoallv(4, 100, 900);
  const auto c2 = m.alltoallv(4, 900, 100);
  EXPECT_DOUBLE_EQ(c1.seconds, c2.seconds);
  EXPECT_EQ(c1.words, 900u);
  EXPECT_NEAR(c1.seconds, 3.0 + 0.01 * 900, 1e-12);
}

TEST(CostModel, AllreduceIsTwiceTreeDepth) {
  CostModel m(simple_params());
  EXPECT_EQ(m.allreduce(16, 1).messages, 8u);
  EXPECT_NEAR(m.allreduce(16, 1).seconds, 8 * (1.0 + 0.01), 1e-12);
}

TEST(CostModel, ComputeSecondsScalesWithGamma) {
  CostModel m(simple_params());
  EXPECT_NEAR(m.compute_seconds(1e6), 1000.0, 1e-9);
}

TEST(CostModel, PairwiseIsOneMessage) {
  CostModel m(simple_params());
  const auto c = m.pairwise(500);
  EXPECT_EQ(c.messages, 1u);
  EXPECT_NEAR(c.seconds, 1.0 + 5.0, 1e-12);
}

TEST(CostModel, RejectsInvalidCommunicatorSize) {
  CostModel m(simple_params());
  EXPECT_THROW(m.barrier(0), CheckError);
}

TEST(CostModel, CommCostAccumulates) {
  CommCost a{1.0, 2, 3};
  CommCost b{0.5, 1, 7};
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds, 1.5);
  EXPECT_EQ(a.messages, 3u);
  EXPECT_EQ(a.words, 10u);
}

TEST(CrossingLedger, EveryCollectiveIsTwoCrossingsBarrierIsOne) {
  const auto report = Runtime::run(4, [](Comm& world) {
    {
      PhaseScope scope(world, Phase::kSolver);
      world.barrier();  // 1 crossing
    }
    {
      PhaseScope scope(world, Phase::kOther);
      world.allreduce(1, [](int a, int b) { return a + b; });  // 2 crossings
      world.allgatherv(std::span<const int>{});                // 2 crossings
    }
  });
  EXPECT_EQ(report.aggregate(Phase::kSolver).max.barrier_crossings, 1u);
  EXPECT_EQ(report.aggregate(Phase::kOther).max.barrier_crossings, 4u);
}

TEST(CrossingLedger, FusedLevelKernelChargesAtMostThreeCrossingsPerLevel) {
  // The tentpole claim: one BFS level through dist::bfs_level_step costs
  // THREE barrier crossings; the unfused primitive chain (gather ->
  // SpMSpV's allgatherv + alltoallv + pairwise -> SELECT -> emptiness
  // allreduce) costs eight. Distinct phases isolate each path's ledger.
  const auto a = sparse::gen::grid2d(8, 8);
  const auto report = Runtime::run(4, [&](Comm& world) {
    dist::ProcGrid2D grid(world);
    dist::DistSpMat mat(grid, a);
    dist::DistDenseVec levels(mat.vec_dist(), grid, kNoVertex);
    if (levels.owns(27)) levels.set(27, 0);
    dist::DistSpVec frontier(mat.vec_dist(), grid);
    if (frontier.lo() <= 27 && 27 < frontier.hi()) {
      frontier.assign({dist::VecEntry{27, 0}});
    }
    dist::bfs_level_step(mat, frontier, levels, kNoVertex, grid,
                         Phase::kOrderingSpmspv, Phase::kOrderingOther);
    dist::bfs_level_step_unfused(mat, frontier, levels, kNoVertex, grid,
                                 Phase::kPeripheralSpmspv,
                                 Phase::kPeripheralOther);
  });
  const auto fused =
      report.aggregate(Phase::kOrderingSpmspv).max.barrier_crossings +
      report.aggregate(Phase::kOrderingOther).max.barrier_crossings;
  const auto unfused =
      report.aggregate(Phase::kPeripheralSpmspv).max.barrier_crossings +
      report.aggregate(Phase::kPeripheralOther).max.barrier_crossings;
  EXPECT_EQ(fused, 3u) << "the fused kernel's synchrony budget";
  EXPECT_EQ(unfused, 8u) << "the unfused chain's per-level baseline";
}

TEST(CrossingLedger, FusedOrderingLevelIsAtMostFiveCrossings) {
  // The ordering-level tentpole: one WHOLE Cuthill-McKee ordering level
  // (BFS level + SORTPERM + label scatter) through dist::cm_level_step
  // costs FIVE barrier crossings — three for the level kernel head, two
  // for the fused sort tail — while the unfused reference pays the level
  // kernel's 3 plus the standalone SORTPERM's 6 (allgatherv + two
  // alltoallvs) = 9. Distinct phases isolate each path's ledger; the
  // unfused arm parks its sort crossings on kSolver.
  const auto a = sparse::gen::grid2d(8, 8);
  const auto report = Runtime::run(4, [&](Comm& world) {
    dist::ProcGrid2D grid(world);
    dist::DistSpMat mat(grid, a);
    const auto degrees = mat.degrees(grid);
    dist::DistSpVec frontier(mat.vec_dist(), grid);
    if (frontier.lo() <= 27 && 27 < frontier.hi()) {
      frontier.assign({dist::VecEntry{27, 0}});
    }
    dist::DistDenseVec labels_f(mat.vec_dist(), grid, kNoVertex);
    if (labels_f.owns(27)) labels_f.set(27, 0);
    dist::cm_level_step(mat, frontier, labels_f, degrees, /*label_lo=*/0,
                        /*label_hi=*/1, /*next_label=*/1, grid,
                        Phase::kOrderingSpmspv, Phase::kOrderingSort,
                        Phase::kOrderingOther);
    dist::DistDenseVec labels_u(mat.vec_dist(), grid, kNoVertex);
    if (labels_u.owns(27)) labels_u.set(27, 0);
    dist::cm_level_step_unfused(mat, frontier, labels_u, degrees, 0, 1, 1,
                                grid, Phase::kPeripheralSpmspv,
                                Phase::kSolver, Phase::kPeripheralOther);
  });
  const auto fused =
      report.aggregate(Phase::kOrderingSpmspv).max.barrier_crossings +
      report.aggregate(Phase::kOrderingSort).max.barrier_crossings +
      report.aggregate(Phase::kOrderingOther).max.barrier_crossings;
  const auto unfused_sort =
      report.aggregate(Phase::kSolver).max.barrier_crossings;
  const auto unfused =
      report.aggregate(Phase::kPeripheralSpmspv).max.barrier_crossings +
      report.aggregate(Phase::kPeripheralOther).max.barrier_crossings +
      unfused_sort;
  EXPECT_LE(fused, 5u) << "the fused ordering level's synchrony contract";
  EXPECT_EQ(fused, 5u) << "3 level-kernel crossings + 2 sort crossings";
  EXPECT_EQ(report.aggregate(Phase::kOrderingSort).max.barrier_crossings, 2u);
  EXPECT_EQ(unfused_sort, 6u) << "the standalone SORTPERM's three collectives";
  EXPECT_EQ(unfused, 9u) << "the unfused ordering level's baseline";
}

TEST(CrossingLedger, TerminalOrderingLevelSkipsTheSortTail) {
  // When the count superstep reports an empty next level, every rank skips
  // supersteps 4-5 uniformly: the termination level costs the plain level
  // kernel's 3 crossings and touches neither the sort ledger nor labels.
  const auto a = sparse::gen::path(2);
  const auto report = Runtime::run(4, [&](Comm& world) {
    dist::ProcGrid2D grid(world);
    dist::DistSpMat mat(grid, a);
    const auto degrees = mat.degrees(grid);
    dist::DistDenseVec labels(mat.vec_dist(), grid, kNoVertex);
    if (labels.owns(0)) labels.set(0, 0);
    if (labels.owns(1)) labels.set(1, 1);
    dist::DistSpVec frontier(mat.vec_dist(), grid);
    if (frontier.lo() <= 1 && 1 < frontier.hi()) {
      frontier.assign({dist::VecEntry{1, 1}});
    }
    const auto step = dist::cm_level_step(
        mat, frontier, labels, degrees, /*label_lo=*/1, /*label_hi=*/2,
        /*next_label=*/2, grid, Phase::kOrderingSpmspv, Phase::kOrderingSort,
        Phase::kOrderingOther);
    EXPECT_EQ(step.global_nnz, 0);
  });
  EXPECT_EQ(report.aggregate(Phase::kOrderingSpmspv).max.barrier_crossings,
            3u);
  EXPECT_EQ(report.aggregate(Phase::kOrderingSort).max.barrier_crossings, 0u);
}

TEST(CrossingLedger, TraceModelPredictsTheRealLedger) {
  // The trace model prices the fused kernels per level; its predicted
  // Peripheral:* and Ordering:* crossing counts must match the mpsim
  // ledger of a real p=4 run EXACTLY — every collective of the algorithm
  // is accounted for analytically.
  const sparse::CsrMatrix graphs[] = {
      sparse::gen::grid2d(8, 8),
      sparse::gen::erdos_renyi(120, 4.0, 7),  // possibly multi-component
      sparse::gen::star(17),
  };
  for (const auto& a : graphs) {
    const auto run = rcm::run_dist_rcm(4, a);
    std::uint64_t ordering = 0, peripheral = 0;
    for (const auto phase : {Phase::kOrderingSpmspv, Phase::kOrderingSort,
                             Phase::kOrderingOther}) {
      ordering += run.report.aggregate(phase).max.barrier_crossings;
    }
    for (const auto phase : {Phase::kPeripheralSpmspv, Phase::kPeripheralOther}) {
      peripheral += run.report.aggregate(phase).max.barrier_crossings;
    }
    const auto trace = rcm::ExecutionTrace::collect(a);
    const auto c = rcm::project_cost(trace, 4, 1);
    EXPECT_EQ(c.ordering_crossings(), ordering) << "n=" << a.n();
    EXPECT_EQ(c.peripheral_crossings(), peripheral) << "n=" << a.n();
  }
}

TEST(CrossingLedger, TraceModelPredictsTheHybridLedger) {
  // The hybrid pin, mirroring TraceModelPredictsTheRealLedger: a real p=4
  // run with 6 threads per rank (the paper's hybrid configuration) must
  // match project_cost(trace, 4*6 cores, 6 threads/process) — same P, so
  // the analytic crossing prediction is EXACTLY the hybrid run's ledger,
  // and three invariants tie the two cost paths together per phase:
  //   * crossings do not depend on the thread count (communication stays
  //     on one thread per rank),
  //   * modeled comm seconds are bitwise those of the flat run (identical
  //     collectives, identical payloads),
  //   * modeled compute seconds are the flat run's divided by 6 (the
  //     ledger's hybrid rule; the trace model divides by total cores).
  const sparse::CsrMatrix graphs[] = {
      sparse::gen::grid2d(8, 8),
      sparse::gen::erdos_renyi(120, 4.0, 7),  // possibly multi-component
      sparse::gen::star(17),
  };
  for (const auto& a : graphs) {
    rcm::DistRcmOptions flat_opt;
    flat_opt.threads = 1;  // pinned: DRCM_THREADS must not skew the baseline
    const auto flat = rcm::run_dist_rcm(4, a, flat_opt);
    rcm::DistRcmOptions hybrid_opt;
    hybrid_opt.threads = 6;
    const auto hybrid = rcm::run_dist_rcm(4, a, hybrid_opt);

    std::uint64_t ordering = 0, peripheral = 0;
    for (const auto phase : {Phase::kOrderingSpmspv, Phase::kOrderingSort,
                             Phase::kOrderingOther}) {
      ordering += hybrid.report.aggregate(phase).max.barrier_crossings;
    }
    for (const auto phase :
         {Phase::kPeripheralSpmspv, Phase::kPeripheralOther}) {
      peripheral += hybrid.report.aggregate(phase).max.barrier_crossings;
    }
    const auto trace = rcm::ExecutionTrace::collect(a);
    const auto c = rcm::project_cost(trace, 24, 6);
    EXPECT_EQ(c.ordering_crossings(), ordering) << "n=" << a.n();
    EXPECT_EQ(c.peripheral_crossings(), peripheral) << "n=" << a.n();

    for (const auto phase :
         {Phase::kPeripheralSpmspv, Phase::kPeripheralOther,
          Phase::kOrderingSpmspv, Phase::kOrderingSort,
          Phase::kOrderingOther}) {
      const auto& f = flat.report.aggregate(phase).max;
      const auto& h = hybrid.report.aggregate(phase).max;
      EXPECT_EQ(h.barrier_crossings, f.barrier_crossings)
          << "n=" << a.n() << " phase=" << static_cast<int>(phase);
      EXPECT_DOUBLE_EQ(h.model_comm_seconds, f.model_comm_seconds)
          << "n=" << a.n() << " phase=" << static_cast<int>(phase);
      EXPECT_EQ(h.compute_units, f.compute_units)
          << "the raw work ledger is threading-invariant, n=" << a.n();
      EXPECT_NEAR(h.model_compute_seconds, f.model_compute_seconds / 6.0,
                  1e-12 + f.model_compute_seconds * 1e-9)
          << "n=" << a.n() << " phase=" << static_cast<int>(phase);
    }
  }
}

TEST(CrossingLedger, OrderedSolvePerformsExactlyOneMatrixRedistribution) {
  // The one-shot tentpole pin: everything charged to Phase::kRedistribute
  // in an ordered_solve is ONE fused matrix alltoallv (2 crossings), the
  // folded bandwidth allreduce (2) and the rhs slab alltoallv (2) — six
  // crossings total, with the grid's communicator splits deliberately
  // constructed outside the phase. The legacy two-hop route pays one more
  // alltoallv (the permuted-2D hop) for eight. Any second matrix
  // redistribution sneaking into the pipeline moves these exact counts.
  const auto a = sparse::gen::with_laplacian_values(
      sparse::gen::relabel_random(sparse::gen::grid2d(10, 10), 3), 0.02);
  std::vector<double> b(static_cast<std::size_t>(a.n()));
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = 1.0 + static_cast<double>(i % 7);
  }
  rcm::DistRcmOptions one_shot;
  one_shot.one_shot_redistribute = true;
  const auto fused = rcm::run_ordered_solve(4, a, b, true, one_shot);
  EXPECT_EQ(fused.report.aggregate(Phase::kRedistribute).max.barrier_crossings,
            6u)
      << "one-shot: matrix alltoallv + bandwidth allreduce + rhs alltoallv";

  rcm::DistRcmOptions two_hop;
  two_hop.one_shot_redistribute = false;
  const auto legacy = rcm::run_ordered_solve(4, a, b, true, two_hop);
  EXPECT_EQ(legacy.report.aggregate(Phase::kRedistribute).max.barrier_crossings,
            8u)
      << "two-hop: permute alltoallv + allreduce + re-own + rhs alltoallv";
}

TEST(CrossingLedger, StandaloneSortpermCarriesThePackedHistogram) {
  // The standalone sortperm_bucket regression pin: its histogram exchange
  // rides the wire two-level packed (sortperm_pack_cells), like the fused
  // ordering level, instead of the naive 4-word (bucket, degree, block,
  // count) cells. Fixture: a FULL frontier of n = 128 vertices whose
  // degrees are all distinct (degree = vertex id), so every histogram
  // cell is a singleton and cells == elements == 128 — the degree-diverse
  // worst case the compaction exists for. Under the naive carry the
  // histogram allgatherv ALONE charges 4 * 128 = 512 words to every rank
  // before a single element moves; packed, the whole sort phase — carry
  // plus BOTH element alltoallvs (3-word deal records + 2-word ranked
  // results) — must come in UNDER that line. Reverting the carry breaks
  // this bound by the allgatherv alone.
  constexpr index_t kN = 128;
  constexpr index_t kBuckets = 4;
  const auto report = Runtime::run(4, [&](Comm& world) {
    dist::ProcGrid2D grid(world);
    dist::VectorDist vdist(kN, grid.q());
    dist::DistDenseVec degrees(vdist, grid, 0);
    for (index_t g = degrees.lo(); g < degrees.hi(); ++g) {
      degrees.set(g, g);  // all distinct: every cell a singleton
    }
    dist::DistSpVec frontier(vdist, grid);
    std::vector<dist::VecEntry> mine;
    for (index_t g = frontier.lo(); g < frontier.hi(); ++g) {
      mine.push_back(dist::VecEntry{g, g % kBuckets});
    }
    frontier.assign(mine);
    PhaseScope scope(world, Phase::kOrderingSort);
    const auto ranked =
        dist::sortperm_bucket(frontier, degrees, 0, kBuckets, grid);
    EXPECT_EQ(ranked.entries().size(), mine.size());
  });
  const auto& sort = report.aggregate(Phase::kOrderingSort).max;
  EXPECT_EQ(sort.barrier_crossings, 6u)
      << "standalone SORTPERM: histogram allgatherv + deal + scatter-back";
  EXPECT_GT(sort.words, 0u);
  EXPECT_LT(sort.words, 4u * static_cast<std::uint64_t>(kN))
      << "sort-phase words must undercut the naive histogram carry alone";
}

TEST(CrossingLedger, RepairHitIsPricedStrictlyBetweenHitAndCold) {
  // The incremental-repair pricing pin: on a near-miss pattern the
  // service's repair path must land strictly between the two existing
  // price points — a cache hit's ZERO ordering crossings and a cold
  // recompute's full BFS + SORTPERM bill. Fixture: a two-component graph
  // with the delta confined to the small component, so the big component
  // reuses (peripheral search + every level step skipped) and the plan is
  // deterministically profitable. plan_repair's conservative margin
  // arithmetic (+6 per reused component, +5*(cone_level-1) - 2 per cone,
  // -2 per recompute) guarantees the strict inequality whenever a repair
  // is scheduled; this test keeps that guarantee tied to the ledger.
  // Window-aligned sizes (n = 400, window width 25): the small component
  // fills windows 14..15 exactly, so its dirty windows never bleed onto
  // the big component's rows.
  const auto big = sparse::gen::grid2d(14, 25);
  const auto small = sparse::gen::grid2d(5, 10);
  const auto adjacency = sparse::gen::disjoint_union({big, small});
  const auto delta = sparse::random_pattern_delta(adjacency, 1, 0, 42,
                                                  big.n(), adjacency.n());
  const auto base = sparse::gen::with_laplacian_values(adjacency, 0.02);
  const auto perturbed = sparse::gen::with_laplacian_values(
      sparse::apply_pattern_delta(adjacency, delta), 0.02);
  std::vector<double> b(static_cast<std::size_t>(base.n()));
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = 1.0 + static_cast<double>(i % 7);
  }

  service::ServiceOptions options;
  options.ranks = 4;
  service::ReorderingService service(options);

  service::OrderSolveRequest seed_rq;
  seed_rq.matrix = &base;
  seed_rq.b = b;
  const auto cold_base = service.submit(seed_rq);
  ASSERT_EQ(cold_base.status, service::RequestStatus::kOk);
  EXPECT_GT(cold_base.ordering_crossings, 0u);

  service::OrderSolveRequest delta_rq;
  delta_rq.matrix = &perturbed;
  delta_rq.b = b;
  const auto repaired = service.submit(delta_rq);
  ASSERT_EQ(repaired.status, service::RequestStatus::kOk);
  ASSERT_TRUE(repaired.repair_hit) << "the fixture must schedule a repair";

  service::ServiceOptions cold_options;
  cold_options.ranks = 4;
  cold_options.enable_repair = false;
  service::ReorderingService cold(cold_options);
  const auto reference = cold.submit(delta_rq);
  ASSERT_EQ(reference.status, service::RequestStatus::kOk);

  EXPECT_GT(repaired.ordering_crossings, 0u)
      << "a repair is not a hit: the cone re-level pays real collectives";
  EXPECT_LT(repaired.ordering_crossings, reference.ordering_crossings)
      << "a repair hit must cost strictly fewer ordering-phase crossings "
         "than the cold recompute it replaced";

  const auto rehit = service.submit(delta_rq);
  ASSERT_EQ(rehit.status, service::RequestStatus::kOk);
  EXPECT_TRUE(rehit.cache_hit);
  EXPECT_EQ(rehit.ordering_crossings, 0u);
}

TEST(CostModel, DefaultParametersAreSane) {
  // Guards against accidental unit mix-ups in the calibrated constants:
  // latency must dominate per-word cost, which must dominate per-op cost.
  MachineParams p;
  EXPECT_GT(p.alpha, p.beta);
  EXPECT_GT(p.beta, 0.0);
  EXPECT_GT(p.gamma, 0.0);
  EXPECT_GT(p.cores_per_node, 0);
}

}  // namespace
}  // namespace drcm::mps
