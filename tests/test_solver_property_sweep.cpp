// Randomized property sweeps across the solver stack: skyline Cholesky,
// sequential and distributed CG must all solve the same random SPD systems
// to the same answer, and the distributed peripheral finder must track the
// serial one on arbitrary graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "mpsim/runtime.hpp"
#include "order/pseudo_peripheral.hpp"
#include "rcm/dist_peripheral.hpp"
#include "solver/cg.hpp"
#include "solver/dist_cg.hpp"
#include "solver/skyline.hpp"
#include "solver/spmv.hpp"
#include "sparse/generators.hpp"

namespace drcm::solver {
namespace {

namespace gen = sparse::gen;

sparse::CsrMatrix random_spd(u64 seed) {
  Rng rng(seed);
  sparse::CsrMatrix pattern;
  switch (rng.next_below(4)) {
    case 0:
      pattern = gen::grid2d(4 + static_cast<index_t>(rng.next_below(10)),
                            4 + static_cast<index_t>(rng.next_below(10)));
      break;
    case 1:
      pattern = gen::erdos_renyi(30 + static_cast<index_t>(rng.next_below(80)),
                                 2.0 + 4.0 * rng.next_double(), rng.next_u64());
      break;
    case 2:
      pattern = gen::random_geometric(
          60 + static_cast<index_t>(rng.next_below(150)),
          0.08 + 0.08 * rng.next_double(), rng.next_u64());
      break;
    default:
      pattern = gen::random_banded(50 + static_cast<index_t>(rng.next_below(80)),
                                   2 + static_cast<index_t>(rng.next_below(6)),
                                   0.5, rng.next_u64());
      break;
  }
  if (rng.next_below(2)) pattern = gen::relabel_random(pattern, rng.next_u64());
  // Shift keeps the system comfortably SPD for the direct factorization.
  return gen::with_laplacian_values(pattern, 0.2 + rng.next_double());
}

std::vector<double> random_rhs(index_t n, u64 seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_double() * 2.0 - 1.0;
  return b;
}

double max_residual(const sparse::CsrMatrix& a, std::span<const double> x,
                    std::span<const double> b) {
  std::vector<double> ax(b.size());
  spmv(a, x, ax);
  double err = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    err = std::max(err, std::abs(ax[i] - b[i]));
  }
  return err;
}

class SolverSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SolverSweep, ::testing::Range(0, 12));

TEST_P(SolverSweep, SkylineSolvesRandomSpdSystems) {
  const auto seed = static_cast<u64>(GetParam());
  const auto a = random_spd(seed);
  const auto b = random_rhs(a.n(), seed + 1);
  SkylineMatrix sky(a);
  sky.factor();
  std::vector<double> x(b.size());
  sky.solve(b, x);
  EXPECT_LT(max_residual(a, x, b), 1e-7) << "seed " << seed;
}

TEST_P(SolverSweep, SequentialAndDistributedCgAgree) {
  const auto seed = static_cast<u64>(GetParam()) + 100;
  const auto a = random_spd(seed);
  const auto b = random_rhs(a.n(), seed + 1);
  Rng rng(seed + 2);
  const int p = 1 + static_cast<int>(rng.next_below(6));
  const bool precondition = rng.next_below(2) == 0;

  std::vector<double> x_seq(b.size(), 0.0);
  CgOptions opt;
  opt.rtol = 1e-10;
  BlockJacobi pre(a, p);
  const auto seq = pcg(a, b, x_seq, precondition ? &pre : nullptr, opt);
  const auto dist = run_dist_pcg(p, a, b, precondition, opt);

  ASSERT_TRUE(seq.converged) << "seed " << seed;
  ASSERT_TRUE(dist.result.converged) << "seed " << seed << " p=" << p;
  EXPECT_LT(max_residual(a, dist.x, b), 1e-6) << "seed " << seed;
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(dist.x[i], x_seq[i], 1e-5) << "seed " << seed << " i=" << i;
  }
}

TEST_P(SolverSweep, DistPeripheralMatchesSerialOnRandomGraphs) {
  const auto seed = static_cast<u64>(GetParam()) + 200;
  Rng rng(seed);
  auto a = gen::erdos_renyi(40 + static_cast<index_t>(rng.next_below(100)),
                            1.0 + 4.0 * rng.next_double(), rng.next_u64());
  if (rng.next_below(2)) a = gen::relabel_random(a, rng.next_u64());
  const auto start = static_cast<index_t>(rng.next_below(static_cast<u64>(a.n())));
  const auto want = order::pseudo_peripheral_vertex(a, start);
  const int grids[] = {1, 4, 9};
  const int p = grids[rng.next_below(3)];
  mps::Runtime::run(p, [&](mps::Comm& world) {
    dist::ProcGrid2D grid(world);
    dist::DistSpMat mat(grid, a);
    const auto degrees = mat.degrees(grid);
    const auto got = rcm::dist_pseudo_peripheral(mat, degrees, start, grid);
    EXPECT_EQ(got.vertex, want.vertex) << "seed " << seed;
    EXPECT_EQ(got.eccentricity, want.eccentricity) << "seed " << seed;
    EXPECT_EQ(got.bfs_sweeps, want.bfs_sweeps) << "seed " << seed;
  });
}

}  // namespace
}  // namespace drcm::solver
