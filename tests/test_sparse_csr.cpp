// Unit tests for CSR storage and the COO builder.
#include <gtest/gtest.h>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace drcm::sparse {
namespace {

CsrMatrix tiny_triangle() {
  // 0-1, 1-2, 0-2 triangle.
  CooBuilder b(3);
  b.add_symmetric(0, 1);
  b.add_symmetric(1, 2);
  b.add_symmetric(0, 2);
  return b.to_csr(false);
}

TEST(Csr, DefaultIsEmpty) {
  CsrMatrix a;
  EXPECT_EQ(a.n(), 0);
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a.has_values());
}

TEST(Csr, TriangleBasics) {
  const auto a = tiny_triangle();
  EXPECT_EQ(a.n(), 3);
  EXPECT_EQ(a.nnz(), 6);
  EXPECT_EQ(a.degree(0), 2);
  EXPECT_EQ(a.degree(1), 2);
  EXPECT_EQ(a.degree(2), 2);
  EXPECT_TRUE(a.has_entry(0, 1));
  EXPECT_TRUE(a.has_entry(2, 0));
  EXPECT_TRUE(a.is_pattern_symmetric());
  EXPECT_FALSE(a.has_self_loops());
}

TEST(Csr, RowsAreSortedSpans) {
  const auto a = tiny_triangle();
  const auto r0 = a.row(0);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0], 1);
  EXPECT_EQ(r0[1], 2);
}

TEST(Csr, DegreesVector) {
  const auto a = tiny_triangle();
  const auto d = a.degrees();
  EXPECT_EQ(d, (std::vector<index_t>{2, 2, 2}));
}

TEST(Csr, ValidatesRowPtr) {
  EXPECT_THROW(CsrMatrix(2, {0, 1}, {0}), CheckError);          // short row_ptr
  EXPECT_THROW(CsrMatrix(1, {0, 2}, {0}), CheckError);          // bad nnz
  EXPECT_THROW(CsrMatrix(1, {1, 1}, {}), CheckError);           // not starting at 0
  EXPECT_THROW(CsrMatrix(2, {0, 1, 2}, {0, 5}), CheckError);    // col out of range
  EXPECT_THROW(CsrMatrix(2, {0, 2, 2}, {1, 0}), CheckError);    // unsorted row
  EXPECT_THROW(CsrMatrix(2, {0, 2, 2}, {1, 1}), CheckError);    // duplicate col
  EXPECT_THROW(CsrMatrix(1, {0, 1}, {0}, {1.0, 2.0}), CheckError);  // bad values
}

TEST(Csr, StripDiagonalRemovesSelfLoops) {
  CooBuilder b(3);
  b.add(0, 0, 4.0);
  b.add_symmetric(0, 1, -1.0);
  b.add(1, 1, 4.0);
  b.add(2, 2, 4.0);
  const auto a = b.to_csr(true);
  EXPECT_TRUE(a.has_self_loops());
  EXPECT_TRUE(a.has_values());
  const auto g = a.strip_diagonal();
  EXPECT_FALSE(g.has_self_loops());
  EXPECT_EQ(g.nnz(), 2);
  EXPECT_FALSE(g.has_values());
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Csr, PatternDropsValues) {
  CooBuilder b(2);
  b.add_symmetric(0, 1, 3.5);
  const auto a = b.to_csr(true);
  EXPECT_TRUE(a.has_values());
  EXPECT_FALSE(a.pattern().has_values());
  EXPECT_EQ(a.pattern().nnz(), a.nnz());
}

TEST(Coo, SumsDuplicates) {
  CooBuilder b(2);
  b.add(0, 1, 1.5);
  b.add(0, 1, 2.5);
  b.add(1, 0, 4.0);
  const auto a = b.to_csr(true);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.row_values(0)[0], 4.0);
  EXPECT_DOUBLE_EQ(a.row_values(1)[0], 4.0);
}

TEST(Coo, PatternCollapsesDuplicates) {
  CooBuilder b(2);
  b.add(0, 1);
  b.add(0, 1);
  b.add(0, 1);
  const auto a = b.to_csr(false);
  EXPECT_EQ(a.nnz(), 1);
}

TEST(Coo, RejectsOutOfRange) {
  CooBuilder b(2);
  EXPECT_THROW(b.add(2, 0), CheckError);
  EXPECT_THROW(b.add(0, -1), CheckError);
}

TEST(Coo, EmptyBuilderYieldsEmptyMatrix) {
  CooBuilder b(4);
  const auto a = b.to_csr();
  EXPECT_EQ(a.n(), 4);
  EXPECT_EQ(a.nnz(), 0);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(a.degree(i), 0);
}

TEST(Coo, UnsymmetricPatternDetected) {
  CooBuilder b(3);
  b.add(0, 1);
  const auto a = b.to_csr(false);
  EXPECT_FALSE(a.is_pattern_symmetric());
}

TEST(Coo, LargeRandomRoundTripCounts) {
  // Row sums of the builder must match CSR row degrees.
  CooBuilder b(100);
  std::vector<int> expect(100, 0);
  for (index_t i = 0; i < 100; ++i) {
    for (index_t j = 0; j < 100; j += (i % 7) + 1) {
      if (i != j) {
        b.add(i, j);
        ++expect[static_cast<std::size_t>(i)];
      }
    }
  }
  const auto a = b.to_csr(false);
  for (index_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.degree(i), expect[static_cast<std::size_t>(i)]) << "row " << i;
  }
}

}  // namespace
}  // namespace drcm::sparse
