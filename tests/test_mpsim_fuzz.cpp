// Randomized stress tests for the communicator: random payload sizes,
// random collective sequences, random splits — validated against local
// reference computations.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "mpsim/runtime.hpp"

namespace drcm::mps {
namespace {

class CollectiveFuzz : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveFuzz, ::testing::Range(0, 10));

TEST_P(CollectiveFuzz, RandomPayloadAllgatherv) {
  const auto seed = static_cast<u64>(GetParam());
  Rng sizes_rng(seed);
  const int p = 2 + static_cast<int>(sizes_rng.next_below(7));
  // Predetermine every rank's payload so all ranks can verify the result.
  std::vector<std::vector<std::int64_t>> payloads(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto len = sizes_rng.next_below(50);
    for (u64 i = 0; i < len; ++i) {
      payloads[static_cast<std::size_t>(r)].push_back(
          static_cast<std::int64_t>(sizes_rng.next_u64() % 1000));
    }
  }
  std::vector<std::int64_t> expect;
  for (const auto& pl : payloads) expect.insert(expect.end(), pl.begin(), pl.end());

  Runtime::run(p, [&](Comm& world) {
    const auto& mine = payloads[static_cast<std::size_t>(world.rank())];
    const auto all = world.allgatherv(std::span<const std::int64_t>(mine));
    EXPECT_EQ(all, expect);
  });
}

TEST_P(CollectiveFuzz, RandomAlltoallvRoundTrip) {
  const auto seed = static_cast<u64>(GetParam()) + 100;
  Rng rng(seed);
  const int p = 2 + static_cast<int>(rng.next_below(7));
  Runtime::run(p, [&](Comm& world) {
    // Rank s sends to d a block of (s*1000 + d) repeated (s+d) % 5 times.
    std::vector<std::vector<std::int64_t>> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      send[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>((world.rank() + d) % 5),
          world.rank() * 1000 + d);
    }
    std::vector<std::int64_t> counts;
    const auto recv = world.alltoallv(send, &counts);
    std::size_t pos = 0;
    for (int s = 0; s < p; ++s) {
      const auto expect_count = static_cast<std::int64_t>((s + world.rank()) % 5);
      ASSERT_EQ(counts[static_cast<std::size_t>(s)], expect_count);
      for (std::int64_t k = 0; k < expect_count; ++k) {
        EXPECT_EQ(recv[pos++], s * 1000 + world.rank());
      }
    }
  });
}

TEST_P(CollectiveFuzz, MixedCollectiveSequence) {
  // A randomized but rank-agreed sequence of collectives; every step's
  // result is independently checkable.
  const auto seed = static_cast<u64>(GetParam()) + 200;
  Rng script_rng(seed);
  const int p = 2 + static_cast<int>(script_rng.next_below(5));
  std::vector<int> script;
  for (int step = 0; step < 20; ++step) {
    script.push_back(static_cast<int>(script_rng.next_below(4)));
  }
  Runtime::run(p, [&](Comm& world) {
    for (const int op : script) {
      switch (op) {
        case 0: {
          const auto sum = world.allreduce(
              static_cast<std::int64_t>(world.rank()),
              [](std::int64_t a, std::int64_t b) { return a + b; });
          EXPECT_EQ(sum, static_cast<std::int64_t>(p) * (p - 1) / 2);
          break;
        }
        case 1: {
          std::vector<std::int64_t> data;
          if (world.rank() == 0) data = {7, 8, 9};
          world.bcast(data, 0);
          ASSERT_EQ(data.size(), 3u);
          EXPECT_EQ(data[2], 9);
          break;
        }
        case 2: {
          const auto pre = world.exscan_sum(static_cast<std::int64_t>(2));
          EXPECT_EQ(pre, 2 * world.rank());
          break;
        }
        default: {
          world.barrier();
          break;
        }
      }
    }
  });
}

TEST_P(CollectiveFuzz, NestedSplitsFormConsistentGroups) {
  const auto seed = static_cast<u64>(GetParam()) + 300;
  Rng rng(seed);
  const int p = 4 + static_cast<int>(rng.next_below(9));
  Runtime::run(p, [&](Comm& world) {
    // Split by parity, then split each half by quarters; sizes must add up.
    Comm half = world.split(world.rank() % 2, world.rank());
    Comm quarter = half.split(half.rank() % 2, half.rank());
    const auto total = quarter.allreduce(
        static_cast<std::int64_t>(1),
        [](std::int64_t a, std::int64_t b) { return a + b; });
    EXPECT_EQ(total, quarter.size());
    // Sum of group sizes across all quarters equals the world size.
    const auto groups = world.allgather(quarter.size());
    EXPECT_EQ(static_cast<int>(groups.size()), p);
    for (const int g : groups) EXPECT_GE(g, 1);
  });
}

TEST(CollectiveFuzz, LongRandomSequenceUnderOversubscription) {
  // 25 ranks on 2 cores running 60 mixed collectives: exercises barrier
  // generation wraparound and heavy contention.
  Runtime::run(25, [](Comm& world) {
    for (int i = 0; i < 60; ++i) {
      const auto v = world.allgather(static_cast<std::int64_t>(world.rank() + i));
      EXPECT_EQ(v[0], static_cast<std::int64_t>(i));
    }
  });
}

}  // namespace
}  // namespace drcm::mps
