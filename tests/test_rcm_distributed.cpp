// Integration tests for the distributed RCM core: bit-identical agreement
// with the serial reference on every grid size, every workload class.
#include <gtest/gtest.h>

#include "mpsim/runtime.hpp"
#include "order/pseudo_peripheral.hpp"
#include "order/rcm_serial.hpp"
#include "rcm/dist_peripheral.hpp"
#include "rcm/rcm_driver.hpp"
#include "sparse/generators.hpp"
#include "sparse/metrics.hpp"
#include "sparse/permute.hpp"

namespace drcm::rcm {
namespace {

using mps::Comm;
using mps::Runtime;
using sparse::CsrMatrix;
namespace gen = sparse::gen;

CsrMatrix workload(int which) {
  switch (which) {
    case 0: return gen::path(37);
    case 1: return gen::cycle(24);
    case 2: return gen::star(15);
    case 3: return gen::grid2d(9, 11);
    case 4: return gen::grid2d_9pt(8, 7);
    case 5: return gen::grid3d(4, 5, 4);
    case 6: return gen::erdos_renyi(120, 5.0, 3);
    case 7: return gen::rmat(7, 5, 11);
    case 8: return gen::relabel_random(gen::grid2d(11, 11), 5);
    case 9: return gen::kkt_system(gen::grid2d(7, 7), 25);
    case 10:
      return gen::disjoint_union(
          {gen::path(9), gen::cycle(7), gen::empty_graph(4), gen::star(5)});
    case 11: return gen::caterpillar(8, 3);
    default: return gen::complete(10);
  }
}
constexpr int kNumWorkloads = 13;

class DistRcmMatchesSerial
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    GridsAndWorkloads, DistRcmMatchesSerial,
    ::testing::Combine(::testing::Values(1, 4, 9, 16),
                       ::testing::Range(0, kNumWorkloads)));

TEST_P(DistRcmMatchesSerial, BitIdenticalLabels) {
  const auto [p, which] = GetParam();
  const auto a = workload(which);
  const auto want = order::rcm_serial(a);
  const auto run = run_dist_rcm(p, a);
  EXPECT_EQ(run.labels, want) << "workload " << which << " p=" << p;
}

TEST_P(DistRcmMatchesSerial, SampleSortGivesSameOrdering) {
  const auto [p, which] = GetParam();
  if (which % 4 != 0) GTEST_SKIP() << "subset is enough for the sort variant";
  const auto a = workload(which);
  DistRcmOptions opt;
  opt.sort = SortKind::kSampleSort;
  const auto run = run_dist_rcm(p, a, opt);
  EXPECT_EQ(run.labels, order::rcm_serial(a));
}

TEST(DistRcm, ComponentAndSweepStatsMatchSerial) {
  const auto a = gen::disjoint_union({gen::path(20), gen::grid2d(6, 6),
                                      gen::empty_graph(2)});
  order::OrderingStats serial_stats;
  order::rcm_serial(a, &serial_stats);
  const auto run = run_dist_rcm(4, a);
  EXPECT_EQ(run.stats.components, serial_stats.components);
  EXPECT_EQ(run.stats.peripheral_bfs_sweeps, serial_stats.peripheral_bfs_sweeps);
}

TEST(DistRcm, QualityInsensitiveToGridSize) {
  // Paper claim: ordering quality "remains insensitive to the degree of
  // concurrency". Ours is bit-identical, hence exactly insensitive.
  const auto a = gen::relabel_random(gen::grid2d(14, 14), 9);
  const auto l1 = run_dist_rcm(1, a).labels;
  const auto l4 = run_dist_rcm(4, a).labels;
  const auto l16 = run_dist_rcm(16, a).labels;
  EXPECT_EQ(l1, l4);
  EXPECT_EQ(l4, l16);
  EXPECT_LT(sparse::bandwidth_with_labels(a, l1), sparse::bandwidth(a));
}

TEST(DistRcm, LoadBalancePermutationMapsBack) {
  const auto a = gen::relabel_random(gen::grid2d(10, 10), 4);
  DistRcmOptions opt;
  opt.load_balance = true;
  opt.seed = 77;
  const auto run = run_dist_rcm(4, a, opt);
  // Result is a valid labeling of the ORIGINAL matrix...
  EXPECT_TRUE(sparse::is_valid_permutation(run.labels));
  // ...equal to serial RCM on the relabeled matrix mapped back.
  const auto balance = sparse::random_permutation(a.n(), 77);
  const auto relabeled = sparse::permute_symmetric(a, balance);
  const auto serial = order::rcm_serial(relabeled);
  std::vector<index_t> want(static_cast<std::size_t>(a.n()));
  for (index_t v = 0; v < a.n(); ++v) {
    want[static_cast<std::size_t>(v)] =
        serial[static_cast<std::size_t>(balance[static_cast<std::size_t>(v)])];
  }
  EXPECT_EQ(run.labels, want);
  // Quality is comparable to the unbalanced run (not identical: different
  // tie-breaks), and far better than the input ordering.
  const auto bw = sparse::bandwidth_with_labels(a, run.labels);
  EXPECT_LT(bw, sparse::bandwidth(a) / 2);
}

TEST(DistRcm, RejectsSelfLoopedInput) {
  const auto solver_matrix = gen::with_laplacian_values(gen::path(6));
  EXPECT_THROW(run_dist_rcm(1, solver_matrix), CheckError);
  // The intended route: strip the diagonal first.
  const auto run = run_dist_rcm(1, solver_matrix.strip_diagonal());
  EXPECT_TRUE(sparse::is_valid_permutation(run.labels));
}

TEST(DistRcm, ReportCarriesPhaseBreakdown) {
  const auto a = gen::grid2d(12, 12);
  const auto run = run_dist_rcm(4, a);
  const auto& rep = run.report;
  // All of the paper's Figure-4 phases must have been exercised.
  EXPECT_GT(rep.aggregate(mps::Phase::kPeripheralSpmspv).max.model_total(), 0.0);
  EXPECT_GT(rep.aggregate(mps::Phase::kPeripheralOther).max.model_total(), 0.0);
  EXPECT_GT(rep.aggregate(mps::Phase::kOrderingSpmspv).max.model_total(), 0.0);
  EXPECT_GT(rep.aggregate(mps::Phase::kOrderingSort).max.model_total(), 0.0);
  EXPECT_GT(rep.aggregate(mps::Phase::kOrderingOther).max.model_total(), 0.0);
  EXPECT_GT(rep.modeled_makespan(), 0.0);
}

class DistPeripheralGrids : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Grids, DistPeripheralGrids,
                         ::testing::Values(1, 4, 9, 16));

TEST_P(DistPeripheralGrids, MatchesSerialFinder) {
  const int p = GetParam();
  for (int which : {0, 3, 6, 8, 11}) {
    const auto a = workload(which);
    const auto want = order::pseudo_peripheral_vertex(a, 0);
    Runtime::run(p, [&](Comm& world) {
      dist::ProcGrid2D grid(world);
      dist::DistSpMat mat(grid, a);
      const auto degrees = mat.degrees(grid);
      const auto got = dist_pseudo_peripheral(mat, degrees, 0, grid);
      EXPECT_EQ(got.vertex, want.vertex) << "workload " << which;
      EXPECT_EQ(got.eccentricity, want.eccentricity) << "workload " << which;
      EXPECT_EQ(got.bfs_sweeps, want.bfs_sweeps) << "workload " << which;
    });
  }
}

}  // namespace
}  // namespace drcm::rcm
